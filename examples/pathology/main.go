// Pathology: reproduce the paper's Figure 1 narrative — the repair
// pathology. Under an undo-log scheme (LogTM-SE), an aborting
// transaction spends time in a software handler restoring old values
// while its signatures keep NACKing everyone else, so the surrounding
// transactions pile up behind the roll-back. SUV-TM's flash abort
// removes that window.
//
// The workload makes the window visible: coarse transactions with large
// write-sets over a hot region, so aborts are frequent and roll-backs
// long.
//
//	go run ./examples/pathology
//
// To see the pathology with your own eyes, profile one scheme:
//
//	go run ./examples/pathology -profile LogTM-SE \
//	    -chrome-trace pathology.json -interval-csv pathology.csv
//
// then load pathology.json into https://ui.perfetto.dev (or
// chrome://tracing) — each core is a track, committed attempts are
// green spans, aborted attempts red — and plot the per-interval abort
// column of pathology.csv over time.
package main

import (
	"flag"
	"fmt"
	"os"

	"suvtm"
)

func main() {
	var (
		profile  = flag.String("profile", "", "also profile one scheme (e.g. LogTM-SE) with the flags below")
		chromeTr = flag.String("chrome-trace", "", "write the profiled run as Chrome trace-event JSON")
		seriesCS = flag.String("interval-csv", "", "write the profiled run's per-interval time series as CSV")
		interval = flag.Uint64("sample-interval", 5000, "sampling interval in simulated cycles")
	)
	flag.Parse()

	const (
		cores     = 16
		hotLines  = 96
		txPerCore = 12
		writes    = 48
	)

	build := func() (*suvtm.Memory, *suvtm.Allocator, []suvtm.Program) {
		memory := suvtm.NewMemory()
		alloc := suvtm.NewAllocator(0x10_0000, 1<<30)
		region := suvtm.NewRegion(alloc, hotLines)
		progs := make([]suvtm.Program, cores)
		for c := 0; c < cores; c++ {
			b := suvtm.NewBuilder()
			state := uint64(c)*0x9e3779b97f4a7c15 + 11
			next := func(n int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int((state >> 33) % uint64(n))
			}
			for i := 0; i < txPerCore; i++ {
				b.Begin(0)
				for k := 0; k < writes; k++ {
					addr := region.WordAddr(next(hotLines), k%8)
					b.Load(0, addr)
					b.AddImm(0, 1)
					b.Store(addr, 0)
					if k%8 == 7 {
						b.Compute(40)
					}
				}
				b.Commit()
				b.Compute(100)
			}
			b.Barrier(0)
			progs[c] = b.Build()
		}
		return memory, alloc, progs
	}

	type row struct {
		scheme   suvtm.Scheme
		cycles   suvtm.Cycles
		aborting suvtm.Cycles
		stalled  suvtm.Cycles
		aborts   uint64
	}
	var rows []row
	for _, s := range []suvtm.Scheme{suvtm.LogTMSE, suvtm.FasTM, suvtm.SUVTM} {
		memory, alloc, progs := build()
		vm, err := suvtm.NewVM(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pathology:", err)
			os.Exit(1)
		}
		m := suvtm.NewMachine(suvtm.DefaultConfig(cores), vm, progs, memory, alloc)
		res, err := m.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pathology:", err)
			os.Exit(1)
		}
		rows = append(rows, row{
			scheme:   s,
			cycles:   res.Cycles,
			aborting: res.Breakdown.Cycles[suvtm.Aborting],
			stalled:  res.Breakdown.Cycles[suvtm.Stalled],
			aborts:   res.Counters.TxAborted,
		})
	}

	fmt.Println("The repair pathology (Figure 1): coarse write-sets + high contention")
	fmt.Printf("%-9s %12s %12s %12s %8s\n", "scheme", "exec cycles", "Aborting", "Stalled", "aborts")
	for _, r := range rows {
		fmt.Printf("%-9s %12d %12d %12d %8d\n", r.scheme, r.cycles, r.aborting, r.stalled, r.aborts)
	}
	base, suv := rows[0], rows[len(rows)-1]
	fmt.Printf("\nLogTM-SE spends %dx more cycles rolling back than SUV-TM;\n", ratio(base.aborting, suv.aborting))
	fmt.Printf("the stalls behind those roll-backs make it %.2fx slower overall.\n",
		float64(base.cycles)/float64(suv.cycles))

	if *profile != "" {
		memory, alloc, progs := build()
		vm, err := suvtm.NewVM(suvtm.Scheme(*profile))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pathology:", err)
			os.Exit(1)
		}
		m := suvtm.NewMachine(suvtm.DefaultConfig(cores), vm, progs, memory, alloc)
		col := suvtm.NewMetricsCollector(*interval)
		m.EnableMetrics(col)
		var ct *suvtm.ChromeTrace
		if *chromeTr != "" {
			ct = suvtm.NewChromeTrace()
			col.AttachChromeTrace(ct)
			m.SetTracer(suvtm.NewTraceRecorder(1).Stream(ct))
		}
		if _, err := m.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "pathology:", err)
			os.Exit(1)
		}
		fmt.Printf("\nprofiled %s:\n", *profile)
		if ct != nil {
			writeFile(*chromeTr, "Chrome trace", func(f *os.File) error { return ct.WriteJSON(f) })
		}
		if *seriesCS != "" {
			series := col.Series()
			writeFile(*seriesCS, "interval series", func(f *os.File) error { return series.WriteCSV(f) })
		}
	}
}

// writeFile creates path and fills it with write, exiting on error.
func writeFile(path, what string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathology:", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s: %s\n", what, path)
}

func ratio(a, b suvtm.Cycles) suvtm.Cycles {
	if b == 0 {
		return a
	}
	return a / b
}
