// Bank: build a custom transactional workload with the public Builder
// API — concurrent money transfers over shared accounts — run it on the
// simulated CMP under SUV-TM, and verify the serializability invariant
// (total balance conservation) against the architectural memory view.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"os"

	"suvtm"
)

const (
	cores     = 8
	accounts  = 32
	transfers = 200
	initial   = 1_000
)

func main() {
	memory := suvtm.NewMemory()
	alloc := suvtm.NewAllocator(0x10_0000, 1<<30)

	// One account per cache line (word 0 holds the balance).
	region := suvtm.NewRegion(alloc, accounts)
	for i := 0; i < accounts; i++ {
		memory.Write(region.WordAddr(i, 0), initial)
	}

	// Each core transfers random amounts between random accounts; the
	// (from, to, amount) triples are baked into the trace so replays
	// after aborts are exact.
	progs := make([]suvtm.Program, cores)
	for c := 0; c < cores; c++ {
		b := suvtm.NewBuilder()
		state := uint64(c)*2654435761 + 1
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		for i := 0; i < transfers; i++ {
			from := next(accounts)
			to := (from + 1 + next(accounts-1)) % accounts
			amount := int64(1 + next(50))
			b.Begin(0)
			b.Load(0, region.WordAddr(from, 0))
			b.AddImm(0, -amount)
			b.Store(region.WordAddr(from, 0), 0)
			b.Load(1, region.WordAddr(to, 0))
			b.AddImm(1, amount)
			b.Store(region.WordAddr(to, 0), 1)
			b.Commit()
			b.Compute(25)
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}

	vm, err := suvtm.NewVM(suvtm.SUVTM)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
	machine := suvtm.NewMachine(suvtm.DefaultConfig(cores), vm, progs, memory, alloc)
	res, err := machine.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}

	arch := machine.ArchMem()
	var total int64
	for i := 0; i < accounts; i++ {
		total += int64(arch.Read(region.WordAddr(i, 0)))
	}
	fmt.Printf("%d cores x %d transfers over %d accounts under SUV-TM\n", cores, transfers, accounts)
	fmt.Printf("  execution: %d cycles, %d commits, %d aborts (%.1f%%)\n",
		res.Cycles, res.Counters.TxCommitted, res.Counters.TxAborted, 100*res.Counters.AbortRatio())
	fmt.Printf("  redirect:  %d entries added, %d redirect-backs\n",
		res.Counters.RedirectEntriesAdd, res.Counters.RedirectBacks)
	fmt.Printf("  balance:   %d (expected %d)\n", total, accounts*initial)
	if total != accounts*initial {
		fmt.Fprintln(os.Stderr, "bank: MONEY LEAKED — serializability violated")
		os.Exit(1)
	}
	fmt.Println("  invariant: OK — every transfer committed atomically")
}
