// Hwcost: explore the hardware cost of SUV's first-level redirect table
// with the CACTI-style analytical model — how big can the table grow
// before it no longer fits a single cycle at 1.2 GHz, and what the
// Section V-C overheads look like at different core counts.
//
//	go run ./examples/hwcost
package main

import (
	"fmt"
	"os"

	"suvtm"
)

func main() {
	fmt.Println("Single-cycle budget for a fully-associative redirect table at 1.2 GHz:")
	fmt.Printf("%6s  %8s  %10s  %8s\n", "nm", "entries", "access ns", "cycles")
	for _, nm := range []int{90, 65, 45, 32} {
		for _, entries := range []int{128, 256, 512, 1024, 2048} {
			est, err := suvtm.EstimateTable(nm, entries, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hwcost:", err)
				os.Exit(1)
			}
			marker := ""
			if est.CyclesAt(1.2) == 1 {
				marker = "  <- single cycle"
			}
			fmt.Printf("%6d  %8d  %10.3f  %8d%s\n", nm, entries, est.AccessNs, est.CyclesAt(1.2), marker)
		}
	}

	fmt.Println("\nSection V-C overheads as the CMP scales (45 nm, 1.2 GHz):")
	fmt.Printf("%6s  %14s  %12s  %12s\n", "cores", "storage/core", "max power", "table area")
	for _, cores := range []int{4, 8, 16, 32, 64} {
		cost, err := suvtm.SUVHardwareCost(cores, 1.2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwcost:", err)
			os.Exit(1)
		}
		fmt.Printf("%6d  %11.3f KiB  %10.2f W  %9.2f mm2\n",
			cores, cost.PerCoreBytes/1024, cost.MaxPowerW, cost.TotalTableAreaM2)
	}
	fmt.Println("\nAt the paper's 16-core design point the table costs 1.2% of a Rock")
	fmt.Println("processor's TDP and 0.6% of its silicon area — feasible in hardware.")
}
