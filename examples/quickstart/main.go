// Quickstart: run one STAMP-analogue application under the three
// version-management schemes of the paper's Figure 6 and compare their
// execution-time breakdowns.
//
//	go run ./examples/quickstart [app]
package main

import (
	"fmt"
	"os"

	"suvtm"
)

func main() {
	app := "intruder"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	fmt.Printf("running %q on a simulated 16-core CMP under three HTM schemes...\n\n", app)

	schemes := []suvtm.Scheme{suvtm.LogTMSE, suvtm.FasTM, suvtm.SUVTM}
	var base *suvtm.Outcome
	for _, s := range schemes {
		out, err := suvtm.Run(suvtm.Spec{App: app, Scheme: s, Scale: 0.5})
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		if out.CheckErr != nil {
			fmt.Fprintln(os.Stderr, "quickstart: invariant violated:", out.CheckErr)
			os.Exit(1)
		}
		if base == nil {
			base = out
		}
		speedup := float64(base.Cycles)/float64(out.Cycles) - 1
		fmt.Printf("%-9s %9d cycles  (%+6.1f%% vs %s)\n", s, out.Cycles, 100*speedup, schemes[0])
		fmt.Printf("          commits=%d aborts=%d (%.1f%% abort ratio)\n",
			out.Counters.TxCommitted, out.Counters.TxAborted, 100*out.Counters.AbortRatio())
		fmt.Printf("          %s\n\n", out.Breakdown.String())
	}
	fmt.Println("SUV-TM needs exactly one data update per transactional store —")
	fmt.Println("no undo-log writes, no abort-time repair — so its Aborting")
	fmt.Println("component all but vanishes and isolation windows shrink.")
}
