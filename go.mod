module suvtm

go 1.22
