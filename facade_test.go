package suvtm_test

import (
	"strings"
	"testing"

	"suvtm"
)

// TestRunSpec exercises the top-level Run entry point.
func TestRunSpec(t *testing.T) {
	out, err := suvtm.Run(suvtm.Spec{App: "counter", Scheme: suvtm.SUVTM, Cores: 4, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if out.CheckErr != nil {
		t.Fatal(out.CheckErr)
	}
	if out.Cycles == 0 || out.Counters.TxCommitted == 0 {
		t.Fatalf("empty result: %+v", out.Result)
	}
	if out.Breakdown.Total() == 0 {
		t.Fatal("no breakdown")
	}
}

// TestRunManyOrder checks outcomes come back in spec order.
func TestRunManyOrder(t *testing.T) {
	specs := []suvtm.Spec{
		{App: "counter", Scheme: suvtm.LogTMSE, Cores: 2, Scale: 0.1},
		{App: "bank", Scheme: suvtm.SUVTM, Cores: 2, Scale: 0.1},
		{App: "private", Scheme: suvtm.FasTM, Cores: 2, Scale: 0.1},
	}
	outs, err := suvtm.RunMany(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Spec.App != specs[i].App || out.Spec.Scheme != specs[i].Scheme {
			t.Fatalf("outcome %d out of order: %s/%s", i, out.Spec.App, out.Spec.Scheme)
		}
	}
}

// TestCustomMachine drives the Builder/Machine API end to end.
func TestCustomMachine(t *testing.T) {
	memory := suvtm.NewMemory()
	alloc := suvtm.NewAllocator(0x100000, 1<<30)
	region := suvtm.NewRegion(alloc, 2)
	b := suvtm.NewBuilder()
	b.Begin(0)
	b.LoadImm(0, 5)
	b.Store(region.WordAddr(0, 0), 0)
	b.AddImm(0, 2)
	b.Store(region.WordAddr(1, 3), 0)
	b.Commit()
	b.Barrier(0)
	vm, err := suvtm.NewVM(suvtm.SUVTM)
	if err != nil {
		t.Fatal(err)
	}
	m := suvtm.NewMachine(suvtm.DefaultConfig(2), vm, []suvtm.Program{b.Build()}, memory, alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TxCommitted != 1 {
		t.Fatalf("commits = %d", res.Counters.TxCommitted)
	}
	arch := m.ArchMem()
	if arch.Read(region.WordAddr(0, 0)) != 5 || arch.Read(region.WordAddr(1, 3)) != 7 {
		t.Fatal("values wrong through ArchMem")
	}
}

// TestSchemeList verifies NewVM covers every scheme and rejects unknowns.
func TestSchemeList(t *testing.T) {
	for _, s := range []suvtm.Scheme{suvtm.LogTMSE, suvtm.FasTM, suvtm.SUVTM, suvtm.DynTM, suvtm.DynTMSUV} {
		vm, err := suvtm.NewVM(s)
		if err != nil {
			t.Fatalf("NewVM(%s): %v", s, err)
		}
		if vm.Name() != string(s) {
			t.Fatalf("NewVM(%s).Name() = %s", s, vm.Name())
		}
	}
	if _, err := suvtm.NewVM("nonsense"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestAppLists checks the registry surface.
func TestAppLists(t *testing.T) {
	stamp := suvtm.StampApps()
	if len(stamp) != 8 {
		t.Fatalf("StampApps = %v", stamp)
	}
	all := strings.Join(suvtm.Apps(), ",")
	for _, want := range []string{"bayes", "counter", "bank", "private", "yada"} {
		if !strings.Contains(all, want) {
			t.Fatalf("Apps() missing %s: %s", want, all)
		}
	}
}

// TestHardwareModelFacade checks the re-exported cost model.
func TestHardwareModelFacade(t *testing.T) {
	est, err := suvtm.EstimateTable(45, 512, 22)
	if err != nil {
		t.Fatal(err)
	}
	if est.AccessNs <= 0 || est.CyclesAt(1.2) != 1 {
		t.Fatalf("estimate = %+v", est)
	}
	cost, err := suvtm.SUVHardwareCost(16, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if cost.PerCoreBytes != 1920 {
		t.Fatalf("per-core bytes = %v", cost.PerCoreBytes)
	}
}

// TestUnknownAppErrors checks error plumbing.
func TestUnknownAppErrors(t *testing.T) {
	if _, err := suvtm.Run(suvtm.Spec{App: "nope", Scheme: suvtm.SUVTM}); err == nil {
		t.Fatal("unknown app accepted")
	}
}
