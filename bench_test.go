// Benchmarks that regenerate every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// at a reduced workload scale (simulations are deterministic, so the
// numbers are stable across iterations) and reports the simulated-cycle
// metrics the paper plots; `go test -bench=. -benchmem` prints them all.
//
// Full-scale versions of the same experiments are driven by
// cmd/stampbench and cmd/sweep; EXPERIMENTS.md records paper-vs-measured
// at scale 1.0.
package suvtm_test

import (
	"fmt"
	"testing"

	"suvtm"
	"suvtm/internal/cactimodel"
	"suvtm/internal/experiments"
	"suvtm/internal/workload"
)

// benchScale keeps a full -bench=. run to roughly a minute.
const benchScale = 0.15

// BenchmarkTable1AbortRatios measures the abort ratios of the eight
// STAMP-analogue applications under the LogTM-SE baseline (the measured
// companion to the paper's Table I survey).
func BenchmarkTable1AbortRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1, err := experiments.RunTable1(experiments.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var worst float64
			for _, app := range t1.Measured.Apps {
				r := t1.Measured.Get(app, experiments.LogTMSE).Counters.AbortRatio()
				if r > worst {
					worst = r
				}
			}
			b.ReportMetric(100*worst, "max-abort-%")
		}
	}
}

// BenchmarkTable4WorkloadGen measures generator throughput for all eight
// applications (Table IV characteristics are printed by stampbench).
func BenchmarkTable4WorkloadGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range workload.StampApps {
			gen, err := workload.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			memory := suvtm.NewMemory()
			alloc := suvtm.NewAllocator(0x100000, 1<<33)
			app := gen(workload.GenConfig{Cores: 16, Seed: 1, Scale: benchScale}, alloc, memory)
			if app.TotalOps() == 0 {
				b.Fatal("empty app")
			}
		}
	}
}

// BenchmarkFig6 runs one (application, scheme) simulation per
// sub-benchmark — the full matrix is the paper's Figure 6 — and reports
// simulated cycles and the abort ratio.
func BenchmarkFig6(b *testing.B) {
	for _, app := range workload.StampApps {
		for _, scheme := range experiments.Fig6Schemes {
			b.Run(fmt.Sprintf("%s/%s", app, scheme), func(b *testing.B) {
				var out *experiments.Outcome
				var err error
				for i := 0; i < b.N; i++ {
					out, err = suvtm.Run(suvtm.Spec{App: app, Scheme: scheme, Scale: benchScale})
					if err != nil {
						b.Fatal(err)
					}
					if out.CheckErr != nil {
						b.Fatal(out.CheckErr)
					}
				}
				b.ReportMetric(float64(out.Cycles), "sim-cycles")
				b.ReportMetric(100*out.Counters.AbortRatio(), "abort-%")
			})
		}
	}
}

// BenchmarkFig6Headline runs the whole Figure 6 matrix and reports the
// paper's headline speedups (SUV-TM over LogTM-SE and FasTM).
func BenchmarkFig6Headline(b *testing.B) {
	var fig *experiments.Fig6
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.RunFig6(experiments.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*fig.MeanSpeedup(experiments.LogTMSE, experiments.SUVTM, false), "vs-logtm-%")
	b.ReportMetric(100*fig.MeanSpeedup(experiments.FasTM, experiments.SUVTM, false), "vs-fastm-%")
	b.ReportMetric(100*fig.MeanSpeedup(experiments.LogTMSE, experiments.SUVTM, true), "vs-logtm-hc-%")
	b.ReportMetric(100*fig.MeanSpeedup(experiments.FasTM, experiments.SUVTM, true), "vs-fastm-hc-%")
}

// BenchmarkTable5Overflows runs the overflow-statistics experiment on
// the three coarse-grained applications and reports how many transaction
// attempts overflowed the L1 data cache vs the redirect table.
func BenchmarkTable5Overflows(b *testing.B) {
	var t5 *experiments.Table5
	var err error
	for i := 0; i < b.N; i++ {
		t5, err = experiments.RunTable5(experiments.Options{Scale: 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	var cacheOv, tableOv uint64
	for _, app := range t5.Mtx.Apps {
		cacheOv += t5.Mtx.Get(app, experiments.LogTMSE).Counters.CacheOverflowTx
		tableOv += t5.Mtx.Get(app, experiments.SUVTM).Counters.TableOverflowTx
	}
	b.ReportMetric(float64(cacheOv), "cache-overflow-tx")
	b.ReportMetric(float64(tableOv), "table-overflow-tx")
}

// BenchmarkFig7 sweeps the first-level redirect-table size and reports
// the miss rate and normalized execution time at each point.
func BenchmarkFig7(b *testing.B) {
	for _, size := range experiments.Fig7Sizes {
		size := size
		b.Run(fmt.Sprintf("entries-%d", size), func(b *testing.B) {
			var out *experiments.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				out, err = suvtm.Run(suvtm.Spec{
					App: "yada", Scheme: suvtm.SUVTM, Scale: benchScale,
					Tweak: func(cfg *suvtm.MachineConfig) { cfg.Redirect.L1Entries = size },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Cycles), "sim-cycles")
			b.ReportMetric(100*out.Counters.RedirectL1MissRate(), "L1-table-miss-%")
		})
	}
}

// BenchmarkFig8Size sweeps the shared second-level table size.
func BenchmarkFig8Size(b *testing.B) {
	for _, size := range experiments.Fig8Sizes {
		size := size
		b.Run(fmt.Sprintf("entries-%d", size), func(b *testing.B) {
			var out *experiments.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				out, err = suvtm.Run(suvtm.Spec{
					App: "yada", Scheme: suvtm.SUVTM, Scale: benchScale,
					Tweak: func(cfg *suvtm.MachineConfig) { cfg.Redirect.L2Entries = size },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Cycles), "sim-cycles")
		})
	}
}

// BenchmarkFig8Latency sweeps the second-level table access latency.
func BenchmarkFig8Latency(b *testing.B) {
	for _, lat := range experiments.Fig8Latencies {
		lat := lat
		b.Run(fmt.Sprintf("latency-%d", lat), func(b *testing.B) {
			var out *experiments.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				out, err = suvtm.Run(suvtm.Spec{
					App: "yada", Scheme: suvtm.SUVTM, Scale: benchScale,
					Tweak: func(cfg *suvtm.MachineConfig) { cfg.Redirect.L2Latency = lat },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Cycles), "sim-cycles")
		})
	}
}

// BenchmarkFig9 runs one (application, DynTM variant) simulation per
// sub-benchmark — the paper's Figure 9 — and reports simulated cycles.
func BenchmarkFig9(b *testing.B) {
	for _, app := range workload.StampApps {
		for _, scheme := range experiments.Fig9Schemes {
			b.Run(fmt.Sprintf("%s/%s", app, scheme), func(b *testing.B) {
				var out *experiments.Outcome
				var err error
				for i := 0; i < b.N; i++ {
					out, err = suvtm.Run(suvtm.Spec{App: app, Scheme: scheme, Scale: benchScale})
					if err != nil {
						b.Fatal(err)
					}
					if out.CheckErr != nil {
						b.Fatal(out.CheckErr)
					}
				}
				b.ReportMetric(float64(out.Cycles), "sim-cycles")
				b.ReportMetric(float64(out.Counters.LazyTx), "lazy-tx")
			})
		}
	}
}

// BenchmarkFig9Headline runs the whole Figure 9 matrix and reports the
// DynTM+SUV speedups.
func BenchmarkFig9Headline(b *testing.B) {
	var fig *experiments.Fig9
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.RunFig9(experiments.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*fig.MeanSpeedup(experiments.DynTM, experiments.DynTMSUV, false), "vs-dyntm-%")
	b.ReportMetric(100*fig.MeanSpeedup(experiments.DynTM, experiments.DynTMSUV, true), "vs-dyntm-hc-%")
}

// BenchmarkTable6Processors exercises the static processor table
// rendering (Table VI).
func BenchmarkTable6Processors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if cactimodel.RenderTable6() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable7CactiModel evaluates the analytical hardware model at
// every technology node (Table VII) and reports the 45 nm access time.
func BenchmarkTable7CactiModel(b *testing.B) {
	var access float64
	for i := 0; i < b.N; i++ {
		for _, n := range cactimodel.Nodes {
			est, err := cactimodel.FullyAssociative(n.Nm, 512, 64)
			if err != nil {
				b.Fatal(err)
			}
			if n.Nm == 45 {
				access = est.AccessNs
			}
		}
	}
	b.ReportMetric(access, "45nm-access-ns")
}

// BenchmarkFig1IsolationWindows measures the mean writer isolation
// window per scheme — the paper's Figure 1 mechanism, quantified.
func BenchmarkFig1IsolationWindows(b *testing.B) {
	var fig *experiments.Fig1
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.RunFig1(experiments.Options{Scale: benchScale, Apps: []string{"yada", "bayes"}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.MeanWindow("yada", experiments.LogTMSE), "logtm-window-cyc")
	b.ReportMetric(fig.MeanWindow("yada", experiments.SUVTM), "suv-window-cyc")
}

// BenchmarkScaling runs the weak-scaling study (extra experiment): SUV's
// shorter isolation windows must hold efficiency as cores grow.
func BenchmarkScaling(b *testing.B) {
	var sc *experiments.Scaling
	var err error
	for i := 0; i < b.N; i++ {
		sc, err = experiments.RunScaling("intruder",
			[]experiments.Scheme{experiments.LogTMSE, experiments.SUVTM},
			[]int{1, 4, 16}, 1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sc.Efficiency(experiments.LogTMSE)[2], "logtm-eff-16c")
	b.ReportMetric(sc.Efficiency(experiments.SUVTM)[2], "suv-eff-16c")
}

// BenchmarkTable3Machine measures raw simulator throughput on the
// Table III configuration (simulated cycles per wall-clock second),
// the "how fast is this simulator" number.
func BenchmarkTable3Machine(b *testing.B) {
	var cycles float64
	for i := 0; i < b.N; i++ {
		out, err := suvtm.Run(suvtm.Spec{App: "vacation", Scheme: suvtm.SUVTM, Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		cycles += float64(out.Cycles)
	}
	b.ReportMetric(cycles/float64(b.N), "sim-cycles/run")
}
