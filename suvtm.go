// Package suvtm is a library-level reproduction of "SUV: A Novel
// Single-Update Version-Management Scheme for Hardware Transactional
// Memory Systems" (Yan, Jiang, Feng, Tian, Tan — IPDPS Workshops 2012).
//
// It bundles an execution-driven, cycle-approximate 16-core CMP
// simulator (MESI directory coherence over a 4x4 mesh, 32KB/8MB cache
// hierarchy — Table III of the paper), four hardware-transactional-
// memory version-management schemes (LogTM-SE, FasTM, SUV-TM, DynTM with
// and without SUV), eight STAMP-analogue transactional workloads, and
// the experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// # Quick start
//
//	res, err := suvtm.Run(suvtm.Spec{App: "intruder", Scheme: suvtm.SUVTM})
//	if err != nil { ... }
//	fmt.Println(res.Cycles, res.Breakdown.String())
//
// Custom workloads are assembled with a Builder and executed on a
// Machine directly; see examples/bank.
package suvtm

import (
	"io"

	"suvtm/internal/cactimodel"
	"suvtm/internal/experiments"
	"suvtm/internal/faults"
	"suvtm/internal/forensics"
	"suvtm/internal/htm"
	"suvtm/internal/mem"
	"suvtm/internal/metrics"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/trace"
	"suvtm/internal/workload"
)

// Scheme identifies a version-management scheme.
type Scheme = experiments.Scheme

// The schemes the paper evaluates.
const (
	// LogTMSE is the eager undo-log baseline (Yen et al., HPCA 2007).
	LogTMSE = experiments.LogTMSE
	// FasTM keeps speculative values in the L1 for fast aborts
	// (Lupon et al., PACT 2009).
	FasTM = experiments.FasTM
	// SUVTM is the paper's single-update redirect scheme.
	SUVTM = experiments.SUVTM
	// DynTM is the adaptive eager/lazy design (Lupon et al., MICRO 2010).
	DynTM = experiments.DynTM
	// DynTMSUV is DynTM with SUV as its version manager (the paper's D+S).
	DynTMSUV = experiments.DynTMSUV
)

// Spec describes one simulation run; see experiments.Spec.
type Spec = experiments.Spec

// Outcome is a completed run; see experiments.Outcome.
type Outcome = experiments.Outcome

// Options parameterize a multi-run experiment.
type Options = experiments.Options

// Run executes one application under one scheme on the simulated CMP.
func Run(spec Spec) (*Outcome, error) { return experiments.Run(spec) }

// RunMany executes specs concurrently on a worker pool with the default
// fleet options: per-worker machine arenas, the content-addressed run
// cache for pure specs, and longest-expected-first dispatch. The first
// simulation error stops further dispatch; already-computed outcomes are
// returned alongside the error.
func RunMany(specs []Spec) ([]*Outcome, error) { return experiments.RunMany(specs) }

// Fleet-throughput layer: batches share per-worker machine arenas, pure
// runs are memoized in a content-addressed cache (optionally persisted
// on disk and spot-checked against live re-runs), and dispatch is
// longest-expected-first so stragglers start early.
type (
	// BatchOptions tune one batch (worker count, cache/arena/scheduling
	// opt-outs, keep-going error handling, progress streaming).
	BatchOptions = experiments.BatchOptions
	// FleetStats are the process-wide cache/arena/scheduler counters.
	FleetStats = experiments.FleetStats
	// FleetProgress is one deterministic, count-based progress snapshot
	// streamed to BatchOptions.OnProgress while a batch runs.
	FleetProgress = experiments.FleetProgress
	// SchemeProgress is one scheme's running totals within a snapshot.
	SchemeProgress = experiments.SchemeProgress
)

// RunManyWith is RunMany with explicit batch options.
func RunManyWith(specs []Spec, o BatchOptions) ([]*Outcome, error) {
	return experiments.RunManyWith(specs, o)
}

// RunCached executes one spec through the run cache: a repeated pure
// spec is served from memory (or the on-disk tier) instead of being
// re-simulated. Specs requesting metrics, traces or fault injection
// bypass the cache.
func RunCached(spec Spec) (*Outcome, error) { return experiments.RunCached(spec) }

// SetRunCacheDir attaches a persistent on-disk tier (entries live under
// dir/v<version>/); the empty string detaches it.
func SetRunCacheDir(dir string) error { return experiments.SetRunCacheDir(dir) }

// SetRunCacheVerify arms spot-check mode: the first and every Nth cache
// hit is re-simulated and compared; divergence fails the run. 0 disables.
func SetRunCacheVerify(everyN int) { experiments.SetRunCacheVerify(everyN) }

// ResetRunCache drops the in-memory tier and zeroes the fleet counters
// (the on-disk tier, if configured, is kept).
func ResetRunCache() error { return experiments.ResetRunCache() }

// FleetSnapshot returns the current fleet counters.
func FleetSnapshot() FleetStats { return experiments.FleetSnapshot() }

// Experiment entry points, one per table/figure of the paper.
var (
	// RunFig6 reproduces Figure 6 (LogTM-SE vs FasTM vs SUV-TM).
	RunFig6 = experiments.RunFig6
	// RunFig9 reproduces Figure 9 (DynTM vs DynTM+SUV).
	RunFig9 = experiments.RunFig9
	// RunFig7 sweeps the first-level redirect-table size.
	RunFig7 = experiments.RunFig7
	// RunFig8Size sweeps the second-level table size.
	RunFig8Size = experiments.RunFig8Size
	// RunFig8Latency sweeps the second-level table latency.
	RunFig8Latency = experiments.RunFig8Latency
	// RunTable1 measures abort ratios (Table I companion).
	RunTable1 = experiments.RunTable1
	// RunTable5 measures overflow statistics (Table V).
	RunTable5 = experiments.RunTable5
)

// Workload construction: programs are register-machine traces delimited
// by Begin/Commit, built with a Builder and run on a Machine.
type (
	// Builder assembles a per-core Program.
	Builder = workload.Builder
	// Program is one core's instruction stream.
	Program = workload.Program
	// App is a generated application with invariants.
	App = workload.App
	// GenConfig parameterizes workload generators.
	GenConfig = workload.GenConfig
	// Region is a run of cache lines backing a shared structure.
	Region = workload.Region
)

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return workload.NewBuilder() }

// StampApps lists the eight STAMP-analogue applications.
func StampApps() []string { return append([]string(nil), workload.StampApps...) }

// Apps lists every registered workload generator.
func Apps() []string { return workload.Names() }

// Machine-level access for custom simulations.
type (
	// MachineConfig carries the Table III CMP parameters.
	MachineConfig = htm.Config
	// Machine is one simulated CMP.
	Machine = htm.Machine
	// MachineResult aggregates a run.
	MachineResult = htm.Result
	// VersionManager is the scheme plug-in interface.
	VersionManager = htm.VersionManager
	// Breakdown is the per-component cycle attribution of Figure 6.
	Breakdown = stats.Breakdown
	// Counters are the event counters of a run.
	Counters = stats.Counters
	// Memory is the value-accurate simulated memory.
	Memory = mem.Memory
	// Allocator lays out the simulated address space.
	Allocator = mem.Allocator
	// Cycles counts simulated clock cycles.
	Cycles = sim.Cycles
)

// Component is one slice of the execution-time breakdown (Figure 6).
type Component = stats.Component

// The breakdown components, in the paper's order.
const (
	NoTrans    = stats.NoTrans
	Trans      = stats.Trans
	Barrier    = stats.Barrier
	Backoff    = stats.Backoff
	Stalled    = stats.Stalled
	Wasted     = stats.Wasted
	Aborting   = stats.Aborting
	Committing = stats.Committing
)

// DefaultConfig returns the paper's Table III configuration.
func DefaultConfig(cores int) MachineConfig { return htm.DefaultConfig(cores) }

// NewVM constructs a version manager for a scheme.
func NewVM(s Scheme) (VersionManager, error) { return experiments.NewVM(s) }

// NewMachine builds a simulated CMP executing one program per core.
func NewMachine(cfg MachineConfig, vm VersionManager, programs []Program, memory *Memory, alloc *Allocator) *Machine {
	return htm.New(cfg, vm, programs, memory, alloc)
}

// NewMemory returns an empty simulated memory image.
func NewMemory() *Memory { return mem.NewMemory() }

// NewAllocator returns a bump allocator over [base, base+size).
func NewAllocator(base uint64, size uint64) *Allocator { return mem.NewAllocator(base, size) }

// NewRegion allocates a region of n cache lines.
func NewRegion(alloc *Allocator, n int) Region { return workload.NewRegion(alloc, n) }

// Observability: the metrics layer samples a run into a time series,
// summarizes it as a JSON snapshot, and exports transaction lifecycles
// as a Chrome trace (Perfetto / chrome://tracing). Enable per run via
// Spec.SampleInterval / Spec.Metrics / Spec.ChromeTrace, or attach a
// collector to a Machine directly with Machine.EnableMetrics.
type (
	// MetricsCollector gathers counters, gauges, histograms and the
	// interval-sampled time series of one run.
	MetricsCollector = metrics.Collector
	// MetricsSnapshot is the end-of-run state of every instrument.
	MetricsSnapshot = metrics.Snapshot
	// MetricsSeries is the interval-sampled time series (CSV-exportable).
	MetricsSeries = metrics.Series
	// MetricsHistogram is a log₂-bucketed histogram.
	MetricsHistogram = metrics.Histogram
	// ChromeTrace accumulates Chrome trace-event JSON.
	ChromeTrace = metrics.ChromeTrace
	// TraceRecorder is the bounded lifecycle-event ring buffer.
	TraceRecorder = trace.Recorder
)

// NewMetricsCollector returns a collector sampling every interval cycles
// (0 disables the time series; snapshot and histograms still work).
func NewMetricsCollector(interval Cycles) *MetricsCollector {
	return metrics.NewCollector(interval)
}

// NewChromeTrace returns an empty Chrome trace-event builder; stream a
// machine's lifecycle events into it with NewTraceRecorder(n).Stream(ct).
func NewChromeTrace() *ChromeTrace { return metrics.NewChromeTrace() }

// NewTraceRecorder returns a lifecycle-event recorder keeping the last
// capacity events.
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// Conflict forensics: the provenance layer classifies every NACK and
// remote kill as true sharing vs signature false positive (the holder's
// precise read/write sets are the oracle), builds the abort-causality
// graph (killer→victim edges, cascades, friendly fire) and renders
// cycle-loss profiles as folded stacks. Enable per run via
// Spec.Forensics, or attach a collector directly with
// Machine.EnableForensics; compare schemes with RunForensics.
type (
	// ForensicsCollector gathers conflict provenance during a run.
	ForensicsCollector = forensics.Collector
	// ForensicsReport is the end-of-run conflict report (JSON- and
	// folded-stack-exportable).
	ForensicsReport = forensics.Report
	// ForensicsOptions tunes a RunForensics comparison.
	ForensicsOptions = experiments.ForensicsOptions
	// ForensicsCompare holds one app's reports across schemes.
	ForensicsCompare = experiments.ForensicsCompare
)

// NewForensicsCollector returns an empty conflict-provenance collector
// for a machine with the given core count.
func NewForensicsCollector(cores int) *ForensicsCollector {
	return forensics.NewCollector(cores)
}

// RunForensics runs one app under each scheme (default: all five) with
// conflict forensics attached and returns the per-scheme reports.
func RunForensics(app string, schemes []Scheme, opt ForensicsOptions) (*ForensicsCompare, error) {
	return experiments.RunForensics(app, schemes, opt)
}

// Robustness: the deterministic chaos layer injects seeded, replayable
// fault plans (NACK storms, mesh delay/duplication, signature
// saturation, redirect pressure, pool exhaustion) into a run, armed
// alongside the forward-progress escalation ladder. Enable per run via
// Spec.FaultPlan/FaultSeed (or Spec.Faults for an exact decoded plan),
// or sweep every scheme x plan x seed with RunChaos.
type (
	// FaultPlan is a named, ordered schedule of fault windows.
	FaultPlan = faults.Plan
	// FaultEvent is one fault window of a plan.
	FaultEvent = faults.Event
	// FaultKind classifies a fault window.
	FaultKind = faults.Kind
	// FaultInjector drives a plan through one run.
	FaultInjector = faults.Injector
	// ChaosOptions configures a chaos sweep.
	ChaosOptions = experiments.ChaosOptions
	// Chaos is a completed sweep (Verify checks its acceptance gates).
	Chaos = experiments.Chaos
	// WatchdogError reports a tripped cycle watchdog with per-core
	// diagnostic snapshots (match with errors.As).
	WatchdogError = htm.WatchdogError
	// DeadlockError reports a drained event queue with unfinished cores.
	DeadlockError = htm.DeadlockError
	// InvariantError reports a periodic invariant-checker violation.
	InvariantError = htm.InvariantError
)

// Typed failure classes for errors.Is.
var (
	// ErrWatchdog matches any watchdog trip.
	ErrWatchdog = htm.ErrWatchdog
	// ErrDeadlock matches any deadlock detection.
	ErrDeadlock = htm.ErrDeadlock
)

// FaultPlanNames lists the built-in chaos plan generators.
func FaultPlanNames() []string { return faults.BuiltinNames() }

// BuildFaultPlan derives a built-in plan deterministically from a seed.
func BuildFaultPlan(name string, seed uint64, cores int) (*FaultPlan, error) {
	return faults.Builtin(name, seed, cores)
}

// DecodeFaultPlan parses a plan from its line-oriented text format.
func DecodeFaultPlan(r io.Reader) (*FaultPlan, error) { return faults.Decode(r) }

// EncodeFaultPlan writes a plan in the text format (golden corpora).
func EncodeFaultPlan(w io.Writer, p *FaultPlan) error { return faults.Encode(w, p) }

// RunChaos sweeps schemes x fault plans x seeds, optionally running every
// cell twice to prove bit-identical replay.
func RunChaos(opts ChaosOptions) (*Chaos, error) { return experiments.RunChaos(opts) }

// Hardware-cost model (Tables VI/VII and Section V-C).
type (
	// HWEstimate is a CACTI-style estimate of a fully-associative table.
	HWEstimate = cactimodel.Estimate
	// HWCost aggregates the Section V-C per-core and chip overheads.
	HWCost = cactimodel.SUVCost
)

// EstimateTable models a fully-associative redirect table at a
// technology node (90/65/45/32 nm).
func EstimateTable(nm, entries, entryBits int) (HWEstimate, error) {
	return cactimodel.FullyAssociative(nm, entries, entryBits)
}

// SUVHardwareCost computes the Section V-C overhead summary.
func SUVHardwareCost(cores int, clockGHz float64) (HWCost, error) {
	return cactimodel.SectionVC(cores, clockGHz, 2048, 2048, 512, 22)
}
