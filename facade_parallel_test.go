package suvtm_test

import (
	"reflect"
	"testing"

	"suvtm"
)

// TestParallelFacadeBitIdentical pins the facade-level contract of the
// deterministic window engine: Spec.Shards is a host-throughput knob
// only. Every shard count must yield the same result surface as the
// sequential engine — cycles, breakdowns, counters, SUV pool footprint
// — and the workload's serializability check must keep holding.
func TestParallelFacadeBitIdentical(t *testing.T) {
	spec := suvtm.Spec{App: "sessionstore", Scheme: suvtm.SUVTM, Cores: 4, Scale: 0.2}
	want, err := suvtm.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.CheckErr != nil {
		t.Fatal(want.CheckErr)
	}
	for _, k := range []int{1, 4} {
		s := spec
		s.Shards = k
		got, err := suvtm.Run(s)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if got.CheckErr != nil {
			t.Fatalf("shards=%d: %v", k, got.CheckErr)
		}
		if got.Cycles != want.Cycles || got.Breakdown != want.Breakdown ||
			got.Counters != want.Counters || !reflect.DeepEqual(got.PerCore, want.PerCore) ||
			got.PoolPages != want.PoolPages || got.RedirectEn != want.RedirectEn {
			t.Errorf("shards=%d diverged from sequential (%d vs %d cycles)",
				k, got.Cycles, want.Cycles)
		}
	}
}
