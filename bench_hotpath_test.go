// Host-throughput benchmarks and the BENCH_hotpath.json regression
// harness. Unlike bench_test.go (which reports simulated-cycle metrics,
// the paper's numbers), these measure how fast the simulator itself runs
// on the host — simulated megacycles per wall-clock second — so hot-path
// regressions show up as a drop in Mcycles/s or a jump in allocs/op.
//
// Regenerate the checked-in baseline with:
//
//	BENCH_HOTPATH=BENCH_hotpath.json go test -run TestWriteBench -v .
package suvtm_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"suvtm"
	"suvtm/internal/coherence"
	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// steadyStateSpec is the fixed configuration the hot-path benchmarks
// simulate: a full 16-core machine under the paper's own scheme, busy
// enough that the run spends its time in the data plane (loads, stores,
// directory, redirect), not in setup.
var steadyStateSpec = suvtm.Spec{App: "vacation", Scheme: suvtm.SUVTM, Scale: 0.4}

// parallelSteadySpec is the window engine's steady-state workload: the
// sessionstore app's request loops are exactly the long core-local
// instruction chains the engine extracts. The parallel benchmark runs
// it at Shards=4; its baseline twin runs the same spec on the
// sequential engine, and their Mcycles/s ratio is the speedup recorded
// in BENCH_hotpath.json.
var parallelSteadySpec = suvtm.Spec{App: "sessionstore", Scheme: suvtm.SUVTM, Cores: 8, Scale: 1.0}

// benchMachine returns a benchmark running one whole simulation of spec
// per iteration, reporting host throughput as simulated Mcycles per
// wall-second — the "how fast is this simulator" number the perf
// trajectory tracks.
func benchMachine(spec suvtm.Spec) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var simCycles float64
		for i := 0; i < b.N; i++ {
			out, err := suvtm.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			simCycles += float64(out.Cycles)
		}
		secs := b.Elapsed().Seconds()
		if secs > 0 {
			b.ReportMetric(simCycles/1e6/secs, "Mcycles/s")
		}
	}
}

// benchMachineSteady is benchMachine on the fleet's warm path: each
// iteration runs a seed-varied batch of the spec through RunManyWith
// (one worker, cache bypassed), so the per-worker machine arena
// amortizes cache/directory construction exactly as a real sweep does
// and the number measures engine throughput, not setup.
func benchMachineSteady(spec suvtm.Spec) func(b *testing.B) {
	const batch = 8
	specs := make([]suvtm.Spec, batch)
	for i := range specs {
		s := spec
		s.Seed = uint64(i + 1)
		specs[i] = s
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		var simCycles float64
		for i := 0; i < b.N; i++ {
			outs, err := suvtm.RunManyWith(specs, suvtm.BatchOptions{Jobs: 1, NoCache: true})
			if err != nil {
				b.Fatal(err)
			}
			for _, out := range outs {
				simCycles += float64(out.Cycles)
			}
		}
		secs := b.Elapsed().Seconds()
		if secs > 0 {
			b.ReportMetric(simCycles/1e6/secs, "Mcycles/s")
		}
	}
}

// BenchmarkMachineSteadyState is the classic sequential-engine number.
func BenchmarkMachineSteadyState(b *testing.B) { benchMachine(steadyStateSpec)(b) }

// BenchmarkMachineSteadyStateSequential runs the window engine's
// steady-state spec on the sequential engine through the same warm
// harness — the denominator of the speedup ratio in BENCH_hotpath.json.
func BenchmarkMachineSteadyStateSequential(b *testing.B) {
	benchMachineSteady(parallelSteadySpec)(b)
}

// BenchmarkMachineSteadyStateParallel is the same measurement with the
// deterministic parallel window engine engaged (Shards=4; the fleet
// clamps the effective shard count to the host, and results stay
// bit-identical to the sequential engine either way).
func BenchmarkMachineSteadyStateParallel(b *testing.B) {
	spec := parallelSteadySpec
	spec.Shards = 4
	benchMachineSteady(spec)(b)
}

// parallelConflictSpec is the window engine's conflict-heavy workload:
// intruderscan alternates barrier-fenced private-buffer sweeps (the
// phase the cross-core certified-miss tier parallelizes) with
// intruder-style bursts on a shared queue and dictionary (the phase
// that aborts often and must run on the sequential pocket loop). The
// pair below pins how much of that mix the engine recovers.
var parallelConflictSpec = suvtm.Spec{App: "intruderscan", Scheme: suvtm.SUVTM, Cores: 8, Scale: 1.0}

// BenchmarkMachineConflictSequential is the conflict pair's sequential
// baseline — the denominator of its speedup ratio.
func BenchmarkMachineConflictSequential(b *testing.B) {
	benchMachineSteady(parallelConflictSpec)(b)
}

// BenchmarkMachineConflictParallel runs the conflict workload with the
// window engine engaged at Shards=4.
func BenchmarkMachineConflictParallel(b *testing.B) {
	spec := parallelConflictSpec
	spec.Shards = 4
	benchMachineSteady(spec)(b)
}

// TestHotPathAllocsParallelEngine pins the warm-path allocation budget
// of a window-engine run. testing.AllocsPerRun is unusable here — it
// forces GOMAXPROCS to 1, which routes parrun.Run onto its inline path
// — so the test measures the Mallocs delta across warm RunManyWith
// batches directly. The budget covers everything a warm fleet worker
// allocates per run (outcome, result, check closure, engine scratch the
// arena could not retain); the parallel engine itself must stay at
// effectively zero thanks to the ParArena and the pooled parrun workers.
func TestHotPathAllocsParallelEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget needs full-length runs")
	}
	spec := parallelSteadySpec
	spec.Shards = 4
	const batch = 8
	specs := make([]suvtm.Spec, batch)
	for i := range specs {
		s := spec
		s.Seed = uint64(i + 1)
		specs[i] = s
	}
	run := func() {
		if _, err := suvtm.RunManyWith(specs, suvtm.BatchOptions{Jobs: 1, NoCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the fleet arena, the ParArena and the parrun pool
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 2
	for i := 0; i < rounds; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perRun := float64(after.Mallocs-before.Mallocs) / (rounds * batch)
	t.Logf("parallel warm path: %.0f allocs/run", perRun)
	if perRun > 1500 {
		t.Fatalf("parallel warm path allocates %.0f objects/run, budget is 1500 — a hot path grew an allocation", perRun)
	}
}

// benchMemoryLine, benchDirectoryRoundtrip and benchLineSet mirror the
// package-local micro-benchmarks (internal/mem, internal/coherence,
// internal/sim) so TestWriteBench can record all four hot structures in
// one JSON baseline without exporting test helpers.
func benchMemoryLine(b *testing.B) {
	m := mem.NewMemory()
	const lines = 1 << 12
	var vals [sim.WordsPerLine]sim.Word
	for i := range vals {
		vals[i] = sim.Word(i)
	}
	for line := sim.Line(0); line < lines; line++ {
		m.WriteLine(line, vals)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink sim.Word
	for i := 0; i < b.N; i++ {
		line := sim.Line(i) & (lines - 1)
		addr := sim.AddrOf(line)
		m.Write(addr, sim.Word(i))
		sink += m.Read(addr)
		m.WriteLine(line, vals)
		got := m.ReadLine(line)
		sink += got[0]
	}
	_ = sink
}

func benchDirectoryRoundtrip(b *testing.B) {
	d := coherence.NewDirectory(16)
	const lines = 1 << 12
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		line := sim.Line(i) & (lines - 1)
		d.AddSharer(line, i&15)
		d.AddSharer(line, (i+1)&15)
		d.SetOwner(line, (i+2)&15)
		sink += d.Owner(line)
		d.Drop(line, (i+2)&15)
	}
	_ = sink
}

func benchLineSet(b *testing.B) {
	s := sim.NewLineSet()
	for i := sim.Line(0); i < 64; i++ {
		s.Add(i * 13)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Clear()
		for j := sim.Line(0); j < 64; j++ {
			s.Add(j * 13)
		}
		for j := sim.Line(0); j < 64; j++ {
			if !s.Has(j * 13) {
				b.Fatal("lost a line")
			}
		}
	}
}

// benchRecord is one benchmark's entry in BENCH_hotpath.json.
type benchRecord struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  float64 `json:"allocs_per_op"`
	BytesOp   float64 `json:"bytes_per_op"`
	McyclesPS float64 `json:"mcycles_per_sec,omitempty"`
	// Shards is the window-engine shard count the benchmark requested
	// (0 = sequential engine); Speedup is its Mcycles/s over the
	// sequential run of the same spec.
	Shards  int     `json:"shards,omitempty"`
	Speedup float64 `json:"speedup,omitempty"`
}

// benchDump is the schema of BENCH_hotpath.json.
type benchDump struct {
	Written   string        `json:"written"`
	GoVersion string        `json:"go_version"`
	Results   []benchRecord `json:"results"`
}

// TestWriteBench regenerates BENCH_hotpath.json. It is opt-in (set
// BENCH_HOTPATH to the output path) so a plain `go test ./...` stays
// fast and side-effect free.
func TestWriteBench(t *testing.T) {
	path := os.Getenv("BENCH_HOTPATH")
	if path == "" {
		t.Skip("set BENCH_HOTPATH=<output path> to write the hot-path benchmark baseline")
	}
	dump := benchDump{
		Written:   time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	record := func(name string, fn func(b *testing.B)) benchRecord {
		runtime.GC() // keep earlier benchmarks' garbage out of this one's timing
		res := testing.Benchmark(fn)
		rec := benchRecord{
			Name:     name,
			NsPerOp:  float64(res.NsPerOp()),
			AllocsOp: float64(res.AllocsPerOp()),
			BytesOp:  float64(res.AllocedBytesPerOp()),
		}
		if v, ok := res.Extra["Mcycles/s"]; ok {
			rec.McyclesPS = v
		}
		dump.Results = append(dump.Results, rec)
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, %.0f B/op, %.1f Mcycles/s",
			name, rec.NsPerOp, rec.AllocsOp, rec.BytesOp, rec.McyclesPS)
		return rec
	}
	record("BenchmarkMemoryLine", benchMemoryLine)
	record("BenchmarkDirectoryRoundtrip", benchDirectoryRoundtrip)
	record("BenchmarkLineSet", benchLineSet)
	record("BenchmarkMachineSteadyState", BenchmarkMachineSteadyState)
	// The parallel pair: same spec on the sequential engine and on the
	// window engine, so the baseline pins the speedup ratio, not just
	// two unrelated throughput numbers.
	seq := record("BenchmarkMachineSteadyStateSequential", BenchmarkMachineSteadyStateSequential)
	record("BenchmarkMachineSteadyStateParallel", BenchmarkMachineSteadyStateParallel)
	par := &dump.Results[len(dump.Results)-1]
	par.Shards = 4
	if seq.McyclesPS > 0 {
		par.Speedup = par.McyclesPS / seq.McyclesPS
		t.Logf("parallel speedup: %.2fx", par.Speedup)
	}
	// The conflict pair: same ratio discipline on the workload whose
	// windows must coexist with abort-heavy sequential pockets.
	cseq := record("BenchmarkMachineConflictSequential", BenchmarkMachineConflictSequential)
	record("BenchmarkMachineConflictParallel", BenchmarkMachineConflictParallel)
	cpar := &dump.Results[len(dump.Results)-1]
	cpar.Shards = 4
	if cseq.McyclesPS > 0 {
		cpar.Speedup = cpar.McyclesPS / cseq.McyclesPS
		t.Logf("conflict speedup: %.2fx", cpar.Speedup)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&dump); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(dump.Results))
}
