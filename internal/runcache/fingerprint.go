package runcache

import (
	"crypto/sha256"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"

	"suvtm/internal/htm"
)

// CanonicalConfig renders a fully resolved machine configuration as a
// canonical text encoding: every field in declared order as name=value,
// recursing into nested structs. Field *names* are part of the encoding
// on purpose — adding, renaming or reordering a Config field changes the
// text (and so every fingerprint), which the golden-digest test turns
// into a forced, explicit Version bump instead of silently serving
// outcomes computed under a different machine model.
func CanonicalConfig(cfg htm.Config) string {
	var sb strings.Builder
	writeCanonical(&sb, reflect.ValueOf(cfg))
	return sb.String()
}

// writeCanonical emits one value. Only the kinds htm.Config actually
// uses are supported; a new field of an unsupported kind (map, slice,
// func, pointer...) panics loudly at fingerprint time rather than
// encoding ambiguously.
func writeCanonical(sb *strings.Builder, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		sb.WriteByte('{')
		for i := 0; i < v.NumField(); i++ {
			sb.WriteString(t.Field(i).Name)
			sb.WriteByte('=')
			writeCanonical(sb, v.Field(i))
			sb.WriteByte(';')
		}
		sb.WriteByte('}')
	case reflect.Bool:
		sb.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		sb.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		sb.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		sb.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		sb.WriteString(strconv.Quote(v.String()))
	default:
		panic(fmt.Sprintf("runcache: cannot canonically encode kind %s (%s) — extend writeCanonical and bump Version", v.Kind(), v.Type()))
	}
}

// KeyOf digests one resolved run: the workload identity (app, scheme,
// cores, seed, scale), the machine configuration after every default and
// Spec.Tweak has been applied, and the canonical fault-plan text
// (faults.EncodeString; empty for fault-free runs). Two specs that
// resolve to the same KeyOf produce bit-identical simulations.
func KeyOf(app, scheme string, cores int, seed uint64, scale float64, cfg htm.Config, faultPlanText string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "suvtm-runcache/v%d\n", Version)
	fmt.Fprintf(h, "app=%s\nscheme=%s\ncores=%d\nseed=%d\nscale=%s\n",
		app, scheme, cores, seed, strconv.FormatFloat(scale, 'g', -1, 64))
	io.WriteString(h, "config=")
	io.WriteString(h, CanonicalConfig(cfg))
	io.WriteString(h, "\nfaults=")
	io.WriteString(h, faultPlanText)
	var k Key
	h.Sum(k[:0])
	return k
}
