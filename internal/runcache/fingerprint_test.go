package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"strings"
	"testing"

	"suvtm/internal/htm"
)

// goldenDefaultConfigDigest pins the canonical encoding of the paper's
// Table III configuration (htm.DefaultConfig(16)).
//
// IF THIS TEST FAILS you changed the shape or defaults of htm.Config.
// That is allowed — but cached outcomes computed under the old machine
// model must never be served for the new one, so you must:
//  1. bump runcache.Version, and
//  2. update this constant to the new digest the failure message prints.
const goldenDefaultConfigDigest = "c234f7dc0d97edb9014dc0362e3f8d82d63fc68f59d696d039ead4f2140e050e"

func TestGoldenConfigDigest(t *testing.T) {
	text := CanonicalConfig(htm.DefaultConfig(16))
	sum := sha256.Sum256([]byte(text))
	got := hex.EncodeToString(sum[:])
	if got != goldenDefaultConfigDigest {
		t.Fatalf("htm.Config canonical fingerprint changed:\n  got  %s\n  want %s\ncanonical text: %s\n\nA Config shape/default change invalidates every cached outcome: bump runcache.Version AND update goldenDefaultConfigDigest (see the constant's comment).",
			got, goldenDefaultConfigDigest, text)
	}
}

// TestCanonicalConfigNamesFields guards the property the golden test
// relies on: the encoding spells out field names in declared order, so
// a renamed or newly added field cannot produce the same text.
func TestCanonicalConfigNamesFields(t *testing.T) {
	text := CanonicalConfig(htm.DefaultConfig(16))
	typ := reflect.TypeOf(htm.Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if !strings.Contains(text, name+"=") {
			t.Errorf("canonical encoding is missing field %q", name)
		}
	}
}

// TestKeySensitivity perturbs each top-level Config field (plus every
// non-config key component) and checks the fingerprint moves.
func TestKeySensitivity(t *testing.T) {
	base := htm.DefaultConfig(16)
	baseKey := KeyOf("intruder", "SUV-TM", 16, 1, 1.0, base, "")

	v := reflect.ValueOf(&base).Elem()
	for i := 0; i < v.NumField(); i++ {
		cfg := htm.DefaultConfig(16)
		f := reflect.ValueOf(&cfg).Elem().Field(i)
		if !mutate(f) {
			t.Fatalf("don't know how to mutate field %s (kind %s) — extend the test", v.Type().Field(i).Name, f.Kind())
		}
		if KeyOf("intruder", "SUV-TM", 16, 1, 1.0, cfg, "") == baseKey {
			t.Errorf("mutating Config.%s did not change the fingerprint", v.Type().Field(i).Name)
		}
	}

	if KeyOf("vacation", "SUV-TM", 16, 1, 1.0, base, "") == baseKey {
		t.Error("app does not affect the fingerprint")
	}
	if KeyOf("intruder", "LogTM-SE", 16, 1, 1.0, base, "") == baseKey {
		t.Error("scheme does not affect the fingerprint")
	}
	if KeyOf("intruder", "SUV-TM", 8, 1, 1.0, base, "") == baseKey {
		t.Error("cores do not affect the fingerprint")
	}
	if KeyOf("intruder", "SUV-TM", 16, 2, 1.0, base, "") == baseKey {
		t.Error("seed does not affect the fingerprint")
	}
	if KeyOf("intruder", "SUV-TM", 16, 1, 0.5, base, "") == baseKey {
		t.Error("scale does not affect the fingerprint")
	}
	if KeyOf("intruder", "SUV-TM", 16, 1, 1.0, base, "plan nack-storm\n") == baseKey {
		t.Error("fault-plan text does not affect the fingerprint")
	}
}

// mutate flips the first mutable leaf of v, recursing into structs.
func mutate(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if mutate(v.Field(i)) {
				return true
			}
		}
		return false
	case reflect.Bool:
		v.SetBool(!v.Bool())
		return true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
		return true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
		return true
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
		return true
	case reflect.String:
		v.SetString(v.String() + "x")
		return true
	}
	return false
}
