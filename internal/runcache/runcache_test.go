package runcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"suvtm/internal/stats"
)

func testEntry(cycles uint64) *Entry {
	e := &Entry{
		Cycles:     cycles,
		PerCore:    make([]stats.Breakdown, 2),
		PoolPages:  3,
		RedirectEn: 7,
	}
	e.Breakdown.Cycles[stats.Trans] = cycles / 2
	e.Counters.TxCommitted = 42
	return e
}

func testKey(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestMemoryTier(t *testing.T) {
	c := New()
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	e := testEntry(1000)
	if err := c.Put(k, e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !got.Equal(e) {
		t.Fatalf("Get after Put: ok=%v entry=%+v", ok, got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 || s.DiskWrites != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	k, e := testKey(2), testEntry(2000)
	if err := c.Put(k, e); err != nil {
		t.Fatal(err)
	}
	path := c.EntryPath(k)
	if !strings.Contains(path, filepath.Join(dir, fmt.Sprintf("v%d", Version))) {
		t.Fatalf("entry path %q is not under the versioned dir", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry not on disk: %v", err)
	}

	// A second cache over the same dir must serve the entry from disk.
	c2 := New()
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(k)
	if !ok || !got.Equal(e) {
		t.Fatalf("disk read back: ok=%v entry=%+v", ok, got)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The disk hit was promoted: a second Get stays in memory.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry lost")
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Hits != 2 {
		t.Fatalf("stats after promotion = %+v", s)
	}
}

// TestCorruptEntries checks every corruption mode degrades to a miss
// (live re-run) instead of an error: garbage bytes, truncation, a
// version mismatch, and a key mismatch (misplaced file).
func TestCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	seed := New()
	if err := seed.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	k, e := testKey(3), testEntry(3000)
	if err := seed.Put(k, e); err != nil {
		t.Fatal(err)
	}
	path := seed.EntryPath(k)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"garbage":   []byte("not json at all"),
		"truncated": valid[:len(valid)/2],
		"empty":     nil,
	}
	var de diskEntry
	if err := json.Unmarshal(valid, &de); err != nil {
		t.Fatal(err)
	}
	de.Version = Version + 1
	cases["version-mismatch"], _ = json.Marshal(de)
	de.Version = Version
	de.Key = strings.Repeat("ab", 32)
	cases["key-mismatch"], _ = json.Marshal(de)

	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			c := New()
			if err := c.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(k); ok {
				t.Fatal("corrupt entry was served")
			}
			s := c.Stats()
			if s.Corrupt != 1 || s.Misses != 1 {
				t.Fatalf("stats = %+v", s)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry was not removed: %v", err)
			}
			// The slot is reusable: a fresh Put serves again.
			if err := c.Put(k, e); err != nil {
				t.Fatal(err)
			}
			c2 := New()
			if err := c2.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			if got, ok := c2.Get(k); !ok || !got.Equal(e) {
				t.Fatal("rewrite after corruption did not take")
			}
		})
	}
}

// TestAtomicWrite checks no partially-written entry file is ever left
// visible under the final name: the directory holds only complete
// entries (plus possibly temp files, which Get never reads).
func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				k := testKey(byte(i*20 + j))
				if err := c.Put(k, testEntry(uint64(j))); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	entries, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", de.Name())
		}
		data, err := os.ReadFile(filepath.Join(c.Dir(), de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var env diskEntry
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("entry %s is not complete JSON: %v", de.Name(), err)
		}
	}
	if len(entries) != 160 {
		t.Fatalf("expected 160 entries, found %d", len(entries))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := testKey(byte(i % 32))
				if e, ok := c.Get(k); ok {
					if e.Counters.TxCommitted != 42 {
						t.Error("torn entry")
						return
					}
				} else {
					c.Put(k, testEntry(uint64(i)))
				}
				c.Bypass()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 32 {
		t.Fatalf("expected 32 entries, got %d", c.Len())
	}
	if got := c.Stats().Bypasses; got != 8*200 {
		t.Fatalf("bypasses = %d", got)
	}
}

func TestEntryEqual(t *testing.T) {
	a, b := testEntry(10), testEntry(10)
	if !a.Equal(b) {
		t.Fatal("identical entries unequal")
	}
	b.PerCore[1].Cycles[stats.Wasted] = 1
	if a.Equal(b) {
		t.Fatal("per-core divergence not detected")
	}
	b = testEntry(11)
	if a.Equal(b) {
		t.Fatal("cycle divergence not detected")
	}
	if a.Equal(nil) {
		t.Fatal("nil comparison")
	}
}

// TestConcurrentWritersSharedDir models two cache tenants (two
// processes in real life, two Cache instances here) pounding one disk
// directory: overlapping writers on the same and different keys, a
// reader racing them, and a pre-planted corrupt entry that must be
// evicted — never served — while the writers run. Exercises the
// O_EXCL per-writer temp names: without them, interleaved writes into
// a shared temp file would publish torn entries.
func TestConcurrentWritersSharedDir(t *testing.T) {
	dir := t.TempDir()
	a, b := New(), New()
	if err := a.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := b.SetDir(dir); err != nil {
		t.Fatal(err)
	}

	// Plant a corrupt entry under a key both tenants will read.
	corrupt := testKey(200)
	if err := os.WriteFile(a.EntryPath(corrupt), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	const keys = 8
	const rounds = 25
	var wg sync.WaitGroup
	for _, c := range []*Cache{a, b} {
		wg.Add(1)
		go func(c *Cache) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < keys; i++ {
					k := testKey(byte(i))
					if err := c.Put(k, testEntry(uint64(1000+i))); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
				if _, ok := c.Get(corrupt); ok {
					t.Error("corrupt entry was served")
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() { // a cold reader racing the writers sees whole entries only
		defer wg.Done()
		r := New()
		if err := r.SetDir(dir); err != nil {
			t.Error(err)
			return
		}
		for n := 0; n < keys*rounds; n++ {
			k := testKey(byte(n % keys))
			if e, ok := r.Get(k); ok && e.Cycles != uint64(1000+n%keys) {
				t.Errorf("torn entry for key %d: cycles=%d", n%keys, e.Cycles)
				return
			}
		}
	}()
	wg.Wait()

	if got := a.Stats().Corrupt + b.Stats().Corrupt; got == 0 {
		t.Error("corrupt entry was never detected")
	}
	// The eviction leaves the slot rewritable: a fresh Put round-trips.
	if err := a.Put(corrupt, testEntry(7)); err != nil {
		t.Fatal(err)
	}
	fresh := New()
	if err := fresh.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if e, ok := fresh.Get(corrupt); !ok || e.Cycles != 7 {
		t.Fatalf("rewritten entry not served: ok=%v", ok)
	}
	// No temp litter: every .tmp-* either renamed into place or removed.
	ents, err := os.ReadDir(a.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", de.Name())
		}
	}
}
