// Package runcache is a content-addressed outcome cache for pure
// simulator runs. Every simulation is bit-deterministic for a given
// resolved configuration (app, scheme, cores, seed, scale, the fully
// resolved htm.Config, and — when present — the canonical fault-plan
// text), so an outcome may be served from a previous identical run
// instead of re-simulating: repeated points inside one campaign (Fig 7
// and Fig 8 share their default-geometry baseline) dedup through the
// in-process tier, and an optional versioned on-disk tier survives
// across processes.
//
// Only *pure* runs belong here: specs requesting traces, metrics,
// Chrome traces or fault injection carry outputs that live outside the
// cached entry and must bypass the cache (the experiments layer
// enforces this).
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"suvtm/internal/sim"
	"suvtm/internal/stats"
)

// Version is the cache schema/fingerprint version. Bump it whenever the
// canonical fingerprint or the Entry schema changes meaning (a new
// htm.Config field, a new counter with timing effect, ...): old on-disk
// entries then land in a different directory and are never served. The
// golden-digest test in fingerprint_test.go fails when htm.Config
// changes shape, forcing exactly this bump.
const Version = 3

// Key is the content address of one resolved run.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (also the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Entry is the cached outcome of one pure run: everything a campaign
// consumer reads from a successful, invariant-clean simulation.
type Entry struct {
	Cycles     sim.Cycles        `json:"cycles"`
	Breakdown  stats.Breakdown   `json:"breakdown"`
	PerCore    []stats.Breakdown `json:"per_core"`
	Counters   stats.Counters    `json:"counters"`
	PoolPages  uint64            `json:"pool_pages"`
	RedirectEn int               `json:"redirect_entries"`
}

// Equal reports whether two entries are bit-identical — the comparison
// -cache-verify uses to cross-check a cached outcome against a live
// re-simulation.
func (e *Entry) Equal(o *Entry) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Cycles != o.Cycles || e.Breakdown != o.Breakdown ||
		e.Counters != o.Counters || e.PoolPages != o.PoolPages ||
		e.RedirectEn != o.RedirectEn || len(e.PerCore) != len(o.PerCore) {
		return false
	}
	for i := range e.PerCore {
		if e.PerCore[i] != o.PerCore[i] {
			return false
		}
	}
	return true
}

// Stats counts the cache's activity. All fields are cumulative.
type Stats struct {
	Hits     uint64 // entries served (memory or disk tier)
	Misses   uint64 // lookups that fell through to a live run
	Bypasses uint64 // specs that skipped the cache (impure runs)
	Stores   uint64 // entries written to the memory tier

	DiskHits   uint64 // hits satisfied by reading the disk tier
	DiskWrites uint64 // entries persisted to the disk tier
	Corrupt    uint64 // unreadable/mismatched disk entries discarded
}

// Cache is a two-tier content-addressed store: an always-on in-process
// map and an optional on-disk directory (SetDir). Safe for concurrent
// use. Entries handed out by Get are shared and must be treated as
// immutable.
type Cache struct {
	mu    sync.Mutex
	mem   map[Key]*Entry
	dir   string // versioned subdirectory; "" = memory tier only
	stats Stats
}

// New returns an empty cache with no disk tier.
func New() *Cache { return &Cache{mem: make(map[Key]*Entry)} }

// SetDir attaches (or, with "", detaches) the on-disk tier rooted at
// dir. Entries live under dir/v<Version>/, so a fingerprint-version bump
// abandons stale entries instead of serving them.
func (c *Cache) SetDir(dir string) error {
	if dir == "" {
		c.mu.Lock()
		c.dir = ""
		c.mu.Unlock()
		return nil
	}
	vdir := filepath.Join(dir, fmt.Sprintf("v%d", Version))
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	c.mu.Lock()
	c.dir = vdir
	c.mu.Unlock()
	return nil
}

// Dir returns the active versioned disk directory ("" when disabled).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// EntryPath returns where key's entry lives (or would live) on disk.
// Empty when no disk tier is attached.
func (c *Cache) EntryPath(k Key) string {
	dir := c.Dir()
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, k.String()+".json")
}

// Get returns the cached entry for k, consulting the memory tier first
// and then the disk tier. A disk hit is promoted into the memory tier.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	if e, ok := c.mem[k]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return e, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		if e, ok := c.loadDisk(k, dir); ok {
			c.mu.Lock()
			c.mem[k] = e
			c.stats.Hits++
			c.stats.DiskHits++
			c.mu.Unlock()
			return e, true
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Peek reports whether k is resident in either tier without counting a
// hit or a miss (admission probes must not skew the cache statistics).
// A disk-resident entry is promoted into the memory tier exactly like
// Get; a corrupt disk entry is still evicted and counted.
func (c *Cache) Peek(k Key) bool {
	c.mu.Lock()
	_, ok := c.mem[k]
	dir := c.dir
	c.mu.Unlock()
	if ok {
		return true
	}
	if dir == "" {
		return false
	}
	e, ok := c.loadDisk(k, dir)
	if ok {
		c.mu.Lock()
		c.mem[k] = e
		c.mu.Unlock()
	}
	return ok
}

// Put stores e under k in the memory tier and, when attached, the disk
// tier (atomically: temp file + rename, so a concurrent reader never
// sees a truncated entry). A disk-write failure degrades the cache, not
// the run — the entry stays served from memory and the error is
// returned for callers that care.
func (c *Cache) Put(k Key, e *Entry) error {
	c.mu.Lock()
	c.mem[k] = e
	c.stats.Stores++
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return nil
	}
	if err := c.storeDisk(k, e, dir); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.DiskWrites++
	c.mu.Unlock()
	return nil
}

// Bypass records a spec that skipped the cache.
func (c *Cache) Bypass() {
	c.mu.Lock()
	c.stats.Bypasses++
	c.mu.Unlock()
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of memory-tier entries (tests).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// diskEntry is the on-disk JSON envelope. Version and Key are stored
// redundantly (the directory and filename already encode them) so a
// misplaced or hand-edited file is detected as corrupt rather than
// silently served.
type diskEntry struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Entry   *Entry `json:"entry"`
}

// loadDisk reads k's entry from dir. A missing file is a plain miss; an
// unreadable, truncated or mismatched file counts as corrupt, is
// best-effort removed so the next run rewrites it, and also misses —
// corruption degrades to a live re-run, never to an error.
func (c *Cache) loadDisk(k Key, dir string) (*Entry, bool) {
	path := filepath.Join(dir, k.String()+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.markCorrupt(path)
		}
		return nil, false
	}
	var de diskEntry
	if err := json.Unmarshal(data, &de); err != nil ||
		de.Version != Version || de.Key != k.String() || de.Entry == nil {
		c.markCorrupt(path)
		return nil, false
	}
	return de.Entry, true
}

func (c *Cache) markCorrupt(path string) {
	os.Remove(path) // best effort; a live run will rewrite it
	c.mu.Lock()
	c.stats.Corrupt++
	c.mu.Unlock()
}

// tmpSeq disambiguates temp files created by this process; combined
// with the pid in the name it makes every temp path unique across all
// concurrent writers sharing one cache directory.
var tmpSeq atomic.Uint64

// createTemp opens a collision-free temp file in dir. The name embeds
// the pid and a process-local sequence number and the file is opened
// with O_EXCL, so two processes (or two caches in one process) pointed
// at the same directory can never interleave writes into one temp file
// — each rename then publishes a complete entry or nothing.
func createTemp(dir, stem string) (*os.File, error) {
	for {
		name := filepath.Join(dir, fmt.Sprintf(".tmp-%d-%d-%s", os.Getpid(), tmpSeq.Add(1), stem))
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			return f, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		// A leftover from a previous crashed process with a recycled
		// pid; the sequence number advances, so the loop terminates.
	}
}

// storeDisk writes k's entry atomically: marshal, write an exclusive
// per-process temp file in the same directory, rename into place.
func (c *Cache) storeDisk(k Key, e *Entry, dir string) error {
	data, err := json.Marshal(diskEntry{Version: Version, Key: k.String(), Entry: e})
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := createTemp(dir, k.String()[:16])
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(dir, k.String()+".json"))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", werr)
	}
	return nil
}
