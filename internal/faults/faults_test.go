package faults

import (
	"reflect"
	"strings"
	"testing"

	"suvtm/internal/sim"
)

func TestBuiltinDeterministic(t *testing.T) {
	for _, name := range BuiltinNames() {
		for seed := uint64(1); seed <= 3; seed++ {
			a, err := Builtin(name, seed, 16)
			if err != nil {
				t.Fatalf("Builtin(%q, %d): %v", name, seed, err)
			}
			b, err := Builtin(name, seed, 16)
			if err != nil {
				t.Fatalf("Builtin(%q, %d) second call: %v", name, seed, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("Builtin(%q, %d) not deterministic", name, seed)
			}
			if len(a.Events) == 0 {
				t.Errorf("Builtin(%q, %d) generated no events", name, seed)
			}
			for i, e := range a.Events {
				if e.Core >= 16 {
					t.Errorf("Builtin(%q, %d) event %d targets core %d of 16", name, seed, i, e.Core)
				}
			}
		}
	}
	// Distinct seeds should give distinct schedules.
	a, _ := Builtin("mixed", 1, 16)
	b, _ := Builtin("mixed", 2, 16)
	if reflect.DeepEqual(a, b) {
		t.Error("Builtin(mixed) identical across seeds 1 and 2")
	}
}

func TestBuiltinErrors(t *testing.T) {
	if _, err := Builtin("no-such-plan", 1, 16); err == nil {
		t.Error("unknown plan name accepted")
	}
	if _, err := Builtin("mixed", 1, 0); err == nil {
		t.Error("zero core count accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		p, err := Builtin(name, 7, 16)
		if err != nil {
			t.Fatal(err)
		}
		text, err := EncodeString(p)
		if err != nil {
			t.Fatalf("Encode(%q): %v", name, err)
		}
		got, err := DecodeString(text)
		if err != nil {
			t.Fatalf("Decode(%q): %v\ntext:\n%s", name, err, text)
		}
		if !reflect.DeepEqual(p, got) {
			t.Errorf("round trip of %q changed the plan\nbefore: %+v\nafter:  %+v", name, p, got)
		}
		// Encode is a fixed point on decoded plans.
		text2, err := EncodeString(got)
		if err != nil {
			t.Fatal(err)
		}
		if text != text2 {
			t.Errorf("Encode not a fixed point for %q", name)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"not-a-header",
		"plan p\nbogus-kind at=1 dur=2",
		"plan p\nnack-storm at=1",       // missing dur
		"plan p\nnack-storm dur=2",      // missing at
		"plan p\nnack-storm at=1 dur=0", // zero duration
		"plan p\nnack-storm at=x dur=2", // bad number
		"plan p\nnack-storm at=1 dur=2 core=-2",
		"plan p\nnack-storm at=1 dur=2 zap=3",
		"plan p\nnack-storm at=1 dur=2 core",
	}
	for _, in := range cases {
		if _, err := DecodeString(in); err == nil {
			t.Errorf("Decode accepted malformed input %q", in)
		}
	}
}

func TestDecodeCommentsAndWildcard(t *testing.T) {
	p, err := DecodeString("# a comment\nplan demo\n\nnack-storm at=10 dur=5 core=*\nmesh-delay at=20 dur=5 core=3 mag=100\n")
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{Name: "demo", Events: []Event{
		{Kind: NACKStorm, At: 10, Dur: 5, Core: -1},
		{Kind: MeshDelay, At: 20, Dur: 5, Core: 3, Magnitude: 100},
	}}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("got %+v want %+v", p, want)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		got, ok := kindByName(name)
		if !ok || got != k {
			t.Errorf("kindByName(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if !strings.HasPrefix(NumKinds.String(), "Kind(") {
		t.Error("out-of-range kind should stringify as Kind(n)")
	}
}

func TestInjectorWindows(t *testing.T) {
	p := &Plan{Name: "t", Events: []Event{
		{Kind: NACKStorm, At: 100, Dur: 50, Core: 2},
		{Kind: MeshDelay, At: 120, Dur: 100, Core: -1, Magnitude: 300},
		{Kind: MeshDelay, At: 150, Dur: 10, Core: 1, Magnitude: 700},
		{Kind: SigSaturate, At: 400, Dur: 20, Core: -1},
	}}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)

	if tr := in.Advance(50); tr != nil {
		t.Fatalf("Advance(50) = %v, want nil", tr)
	}
	if in.NACKFor(2) {
		t.Error("NACK active before window opens")
	}

	tr := in.Advance(100)
	if len(tr) != 1 || !tr[0].Opened || tr[0].Event.Kind != NACKStorm {
		t.Fatalf("Advance(100) = %v, want one NACKStorm open", tr)
	}
	if !in.NACKFor(2) || in.NACKFor(3) {
		t.Error("NACK storm should cover core 2 only")
	}

	in.Advance(155)
	// Both delay windows open: the all-cores 300 and core 1's 700.
	if d := in.MeshDelayFor(1); d != 700 {
		t.Errorf("MeshDelayFor(1) = %d, want 700 (max of open windows)", d)
	}
	if d := in.MeshDelayFor(5); d != 300 {
		t.Errorf("MeshDelayFor(5) = %d, want 300", d)
	}

	if in.NACKFor(2) {
		t.Error("NACK storm (ends at 150) still active at 155")
	}
	tr = in.Advance(165)
	// Core 1's short delay window (ends at 160) closes.
	closed := 0
	for _, x := range tr {
		if !x.Opened {
			closed++
		}
	}
	if closed != 1 {
		t.Fatalf("Advance(165) closed %d windows, want 1 (%v)", closed, tr)
	}
	if d := in.MeshDelayFor(1); d != 300 {
		t.Errorf("after close, MeshDelayFor(1) = %d, want 300", d)
	}

	// Sleeping far past a window reports both its open and its close.
	tr = in.Advance(10_000)
	var sawOpen, sawClose bool
	for _, x := range tr {
		if x.Event.Kind == SigSaturate {
			if x.Opened {
				sawOpen = true
			} else {
				sawClose = true
			}
		}
	}
	if !sawOpen || !sawClose {
		t.Errorf("skipped-over window must still report open+close: %v", tr)
	}
	if !in.Done() {
		t.Error("injector not Done after final window")
	}
	st := in.Stats()
	if st.Opened != 4 || st.Closed != 4 {
		t.Errorf("stats = %+v, want 4 opened / 4 closed", st)
	}
	if st.PerKind[MeshDelay] != 2 {
		t.Errorf("PerKind[MeshDelay] = %d, want 2", st.PerKind[MeshDelay])
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if tr := in.Advance(100); tr != nil {
		t.Error("nil injector Advance should return nil")
	}
	if in.NACKFor(0) || in.MeshDupFor(0) || in.SaturatedFor(0) || in.SaturatedAny() || in.Pressured() {
		t.Error("nil injector reported an active fault")
	}
	if d := in.MeshDelayFor(0); d != 0 {
		t.Error("nil injector reported a mesh delay")
	}
	if pen, on := in.PoolExhausted(); on || pen != 0 {
		t.Error("nil injector reported pool exhaustion")
	}
	if !in.Done() {
		t.Error("nil injector should be Done")
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Error("nil injector has non-zero stats")
	}
	if NewInjector(nil) != nil {
		t.Error("NewInjector(nil) should be nil")
	}
}

func TestInjectorReplayIdentical(t *testing.T) {
	p, err := Builtin("mixed", 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]Transition, Stats) {
		in := NewInjector(p)
		var all []Transition
		for now := sim.Cycles(0); now < p.Horizon()+1000; now += 137 {
			all = append(all, in.Advance(now)...)
		}
		return all, in.Stats()
	}
	a, as := run()
	b, bs := run()
	if !reflect.DeepEqual(a, b) || as != bs {
		t.Error("two injector walks over the same plan diverged")
	}
	if as.Opened != uint64(len(p.Events)) || as.Closed != as.Opened {
		t.Errorf("stats %+v do not cover all %d events", as, len(p.Events))
	}
}

func TestPlanHorizon(t *testing.T) {
	p := &Plan{}
	if p.Horizon() != 0 {
		t.Error("empty plan has non-zero horizon")
	}
	p.Events = []Event{{Kind: NACKStorm, At: 10, Dur: 5, Core: -1}, {Kind: NACKStorm, At: 2, Dur: 100, Core: -1}}
	if h := p.Horizon(); h != 102 {
		t.Errorf("Horizon = %d, want 102", h)
	}
}
