package faults

import "suvtm/internal/sim"

// Injector walks a Plan alongside the machine's event loop. The machine
// calls Advance at each event-loop step with the (monotonically
// non-decreasing) simulated time; Advance reports the windows that opened
// or closed so the machine can apply level-type faults and trace them,
// and the per-access query methods answer from the currently-open window
// set. The Injector draws no randomness of its own — all nondeterminism
// lives in the Plan — so a run replays bit-identically.
//
// A nil *Injector is a valid "no faults" injector: Advance returns nil
// and every query reports the benign answer, mirroring the nil-receiver
// idiom of *trace.Recorder and *metrics.Collector.
type Injector struct {
	plan  *Plan
	next  int     // index of the next not-yet-opened event
	open  []Event // currently-open windows
	now   sim.Cycles
	stats Stats
}

// Stats summarizes injector activity for the end-of-run report.
type Stats struct {
	Opened  uint64           // windows opened so far
	Closed  uint64           // windows closed so far
	PerKind [NumKinds]uint64 // windows opened, by kind
}

// Transition reports one window opening or closing during an Advance.
type Transition struct {
	Event  Event
	Opened bool // true = window opened, false = window closed
}

// NewInjector returns an injector over a normalized plan. A nil plan
// yields a nil (no-op) injector.
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{plan: p}
}

// Stats returns the activity counters so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Done reports whether every window in the plan has opened and closed.
func (in *Injector) Done() bool {
	return in == nil || (in.next == len(in.plan.Events) && len(in.open) == 0)
}

// Advance moves simulated time forward to now and returns the windows
// that opened or closed on the way, closings first (a window whose end
// equals another's start is closed before the other opens). It returns
// nil — allocating nothing — when no window state changes, which is the
// overwhelmingly common case.
func (in *Injector) Advance(now sim.Cycles) []Transition {
	if in == nil {
		return nil
	}
	in.now = now
	if len(in.open) == 0 && (in.next >= len(in.plan.Events) || in.plan.Events[in.next].At > now) {
		return nil
	}
	var trans []Transition
	// Close expired windows. Order within the open set is insertion
	// (= plan) order, kept stable by the filter below.
	kept := in.open[:0]
	for _, e := range in.open {
		if e.End() <= now {
			trans = append(trans, Transition{Event: e, Opened: false})
			in.stats.Closed++
		} else {
			kept = append(kept, e)
		}
	}
	in.open = kept
	// Open windows whose start has been reached. A window may open and
	// expire within the same Advance step (the machine slept past it);
	// it still reports both transitions so counters and traces see it.
	for in.next < len(in.plan.Events) && in.plan.Events[in.next].At <= now {
		e := in.plan.Events[in.next]
		in.next++
		in.stats.Opened++
		in.stats.PerKind[e.Kind]++
		trans = append(trans, Transition{Event: e, Opened: true})
		if e.End() <= now {
			trans = append(trans, Transition{Event: e, Opened: false})
			in.stats.Closed++
		} else {
			in.open = append(in.open, e)
		}
	}
	return trans
}

// active reports whether any open window of the kind covers core
// (windows with Core == -1 cover every core; query core -1 to ask
// "any core").
func (in *Injector) active(kind Kind, core int) bool {
	if in == nil {
		return false
	}
	for _, e := range in.open {
		if e.Kind == kind && (e.Core == -1 || core == -1 || e.Core == core) {
			return true
		}
	}
	return false
}

// magnitude returns the largest Magnitude among open windows of the kind
// covering core, and whether any is open.
func (in *Injector) magnitude(kind Kind, core int) (sim.Cycles, bool) {
	if in == nil {
		return 0, false
	}
	var best sim.Cycles
	found := false
	for _, e := range in.open {
		if e.Kind == kind && (e.Core == -1 || core == -1 || e.Core == core) {
			found = true
			if e.Magnitude > best {
				best = e.Magnitude
			}
		}
	}
	return best, found
}

// MeshDelayFor returns the extra interconnect delay (cycles) currently
// afflicting requests from core, 0 when none.
func (in *Injector) MeshDelayFor(core int) sim.Cycles {
	d, _ := in.magnitude(MeshDelay, core)
	return d
}

// MeshDupFor reports whether requests from core are currently duplicated.
func (in *Injector) MeshDupFor(core int) bool { return in.active(MeshDup, core) }

// SaturatedFor reports whether core's signatures are currently forced
// saturated. SaturatedAny reports whether any core's are (the machine
// uses it for the shared redirect summary signature).
func (in *Injector) SaturatedFor(core int) bool { return in.active(SigSaturate, core) }

// SaturatedAny reports whether any saturation window is open.
func (in *Injector) SaturatedAny() bool { return in.active(SigSaturate, -1) }

// Pressured reports whether the first-level redirect table is under
// injected entry pressure.
func (in *Injector) Pressured() bool { return in.active(RedirectPressure, -1) }

// PoolExhausted reports whether the preserved pool is exhausted, and the
// per-allocation software-reclamation penalty while it is.
func (in *Injector) PoolExhausted() (sim.Cycles, bool) {
	return in.magnitude(PoolExhaust, -1)
}

// NACKFor reports whether core is currently inside a NACK storm.
func (in *Injector) NACKFor(core int) bool { return in.active(NACKStorm, core) }
