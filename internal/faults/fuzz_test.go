package faults

import (
	"reflect"
	"testing"
)

// FuzzPlanCodec feeds arbitrary text through Decode and, for every input
// that parses, asserts the round-trip law: Encode(Decode(x)) must decode
// to the same plan, and Encode must be a fixed point on it.
func FuzzPlanCodec(f *testing.F) {
	for _, name := range BuiltinNames() {
		p, err := Builtin(name, 1, 8)
		if err != nil {
			f.Fatal(err)
		}
		text, err := EncodeString(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(text)
	}
	f.Add("plan p\nnack-storm at=1 dur=2 core=*\n")
	f.Add("# comment\nplan x\nmesh-delay at=0 dur=1 core=0 mag=9\n")
	f.Add("plan empty\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := DecodeString(text)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		enc, err := EncodeString(p)
		if err != nil {
			t.Fatalf("decoded plan failed to encode: %v", err)
		}
		p2, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("encoded plan failed to decode: %v\ntext:\n%s", err, enc)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed plan:\nbefore: %+v\nafter:  %+v", p, p2)
		}
		enc2, err := EncodeString(p2)
		if err != nil {
			t.Fatal(err)
		}
		if enc != enc2 {
			t.Fatalf("Encode not a fixed point:\nfirst:\n%s\nsecond:\n%s", enc, enc2)
		}
	})
}
