package faults

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"suvtm/internal/sim"
)

// The plan text format is line-oriented and diff-friendly, one window per
// line, so golden fault plans can live in testdata and be read in a code
// review:
//
//	plan <name>
//	<kind> at=<cycle> dur=<cycles> core=<id|*> [mag=<cycles>]
//
// Blank lines and lines starting with '#' are ignored. Encode always
// normalizes first, so Encode(Decode(Encode(p))) is a fixed point.

// Encode writes the plan in the text format.
func Encode(w io.Writer, p *Plan) error {
	if err := p.Normalize(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "plan %s\n", p.Name)
	for _, e := range p.Events {
		core := "*"
		if e.Core >= 0 {
			core = strconv.Itoa(e.Core)
		}
		fmt.Fprintf(bw, "%s at=%d dur=%d core=%s", e.Kind, e.At, e.Dur, core)
		if e.Magnitude != 0 {
			fmt.Fprintf(bw, " mag=%d", e.Magnitude)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// EncodeString renders the plan as text (panics only on a plan Normalize
// rejects; use Encode for error handling).
func EncodeString(p *Plan) (string, error) {
	var sb strings.Builder
	if err := Encode(&sb, p); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Decode parses a plan from the text format.
func Decode(r io.Reader) (*Plan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	p := &Plan{}
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if !sawHeader {
			if fields[0] != "plan" || len(fields) != 2 {
				return nil, fmt.Errorf("faults: line %d: want \"plan <name>\" header, got %q", lineNo, line)
			}
			p.Name = fields[1]
			sawHeader = true
			continue
		}
		kind, ok := kindByName(fields[0])
		if !ok {
			return nil, fmt.Errorf("faults: line %d: unknown fault kind %q", lineNo, fields[0])
		}
		e := Event{Kind: kind, Core: -1}
		var sawAt, sawDur bool
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("faults: line %d: malformed field %q", lineNo, f)
			}
			switch key {
			case "at", "dur", "mag":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: line %d: bad %s value %q", lineNo, key, val)
				}
				switch key {
				case "at":
					e.At, sawAt = sim.Cycles(n), true
				case "dur":
					e.Dur, sawDur = sim.Cycles(n), true
				case "mag":
					e.Magnitude = sim.Cycles(n)
				}
			case "core":
				if val == "*" {
					e.Core = -1
					break
				}
				n, err := strconv.ParseUint(val, 10, 31)
				if err != nil {
					return nil, fmt.Errorf("faults: line %d: bad core %q", lineNo, val)
				}
				e.Core = int(n)
			default:
				return nil, fmt.Errorf("faults: line %d: unknown field %q", lineNo, key)
			}
		}
		if !sawAt || !sawDur {
			return nil, fmt.Errorf("faults: line %d: event needs at= and dur=", lineNo)
		}
		p.Events = append(p.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("faults: reading plan: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("faults: empty plan text (missing \"plan <name>\" header)")
	}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeString parses a plan from text.
func DecodeString(s string) (*Plan, error) {
	return Decode(strings.NewReader(s))
}
