// Package faults is the deterministic chaos layer of the simulated CMP:
// a seeded, replayable Plan of adversity — interconnect message delay and
// duplication, Bloom-signature saturation storms, redirect-table entry
// pressure, preserved-pool exhaustion, and spurious NACK storms — opened
// and closed at exact simulated cycles by an Injector the HTM machine
// consults at its injection points. Because a Plan is pure data derived
// from a seed and the Injector holds no randomness of its own, any run
// replays bit-identically from (plan, machine seed).
package faults

import (
	"fmt"
	"sort"

	"suvtm/internal/sim"
)

// Kind classifies a fault event.
type Kind uint8

// The fault kinds the injector knows how to apply.
const (
	// MeshDelay delays every directory request issued by the target
	// core(s) by Magnitude cycles, exercising the protocol-level timeout
	// and bounded-retry path in internal/coherence.
	MeshDelay Kind = iota
	// MeshDup duplicates directory requests: the home slice processes the
	// request twice (idempotently) and the duplicate costs an extra
	// directory access.
	MeshDup
	// SigSaturate forces the target core(s)' read/write signatures — and
	// the machine-wide redirect summary signature — to answer "maybe" for
	// every address (a saturation storm of false positives).
	SigSaturate
	// RedirectPressure makes the first-level redirect table refuse to pin
	// new entries, forcing every transaction through SUV's degenerated
	// software-structure overflow path.
	RedirectPressure
	// PoolExhaust marks the preserved redirect pool exhausted: every
	// allocation runs software reclamation and pays Magnitude extra
	// cycles instead of wedging.
	PoolExhaust
	// NACKStorm injects spurious NACKs: every memory access by the target
	// core(s) is refused and retried for the window's duration.
	NACKStorm
	// NumKinds bounds the Kind enum.
	NumKinds
)

var kindNames = [NumKinds]string{
	"mesh-delay", "mesh-dup", "sig-saturate", "redirect-pressure",
	"pool-exhaust", "nack-storm",
}

// String names the kind.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// kindByName resolves a kind name (inverse of String).
func kindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one fault window: Kind is active on Core (-1 = every core)
// from cycle At for Dur cycles. Magnitude is a kind-specific intensity:
// delay cycles for MeshDelay, reclamation cycles for PoolExhaust, and
// unused (0) elsewhere.
type Event struct {
	Kind      Kind
	At        sim.Cycles
	Dur       sim.Cycles
	Core      int
	Magnitude sim.Cycles
}

// End returns the first cycle at which the window is no longer active.
func (e Event) End() sim.Cycles { return e.At + e.Dur }

// Plan is a named, ordered schedule of fault events. Events must be
// sorted by At (Normalize enforces this); a Plan is pure data and safe to
// share between concurrent runs, each of which owns its own Injector.
type Plan struct {
	Name   string
	Events []Event
}

// Normalize sorts the events into injection order (by start cycle, ties
// broken on kind then core for determinism) and validates them.
func (p *Plan) Normalize() error {
	sort.SliceStable(p.Events, func(i, j int) bool {
		a, b := p.Events[i], p.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Core < b.Core
	})
	for i, e := range p.Events {
		if e.Kind >= NumKinds {
			return fmt.Errorf("faults: event %d: unknown kind %d", i, e.Kind)
		}
		if e.Dur == 0 {
			return fmt.Errorf("faults: event %d: zero-duration window", i)
		}
		if e.Core < -1 {
			return fmt.Errorf("faults: event %d: bad core %d", i, e.Core)
		}
	}
	return nil
}

// Horizon returns the cycle at which the last window closes (0 for an
// empty plan).
func (p *Plan) Horizon() sim.Cycles {
	var h sim.Cycles
	for _, e := range p.Events {
		if e.End() > h {
			h = e.End()
		}
	}
	return h
}

// BuiltinNames lists the built-in plan generators, in a fixed order.
func BuiltinNames() []string {
	return []string{
		"nack-storm", "mesh-delay", "mesh-dup", "sig-storm",
		"redirect-pressure", "pool-exhaust", "mixed",
	}
}

// Builtin generates one of the named built-in plans for a machine with
// the given core count, deterministically from seed. Window placement,
// targets and magnitudes are drawn from a private RNG, so distinct seeds
// give distinct — but individually replayable — adversity schedules.
func Builtin(name string, seed uint64, cores int) (*Plan, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("faults: bad core count %d", cores)
	}
	rng := sim.NewRNG(seed ^ 0xfa0175)
	p := &Plan{Name: name}
	// Window starts are spread over the first 60k cycles — early enough
	// that even heavily reduced-scale chaos runs (tens of thousands of
	// cycles) live through real adversity, while longer runs simply get
	// all of it up front. The first window of each group is forced into
	// the opening stretch so every plan bites from the start.
	const span = 60_000
	windows := func(kind Kind, n int, minDur, maxDur, magLo, magHi sim.Cycles, perCore bool) {
		for i := 0; i < n; i++ {
			at := sim.Cycles(rng.Uint64n(span))
			if i == 0 {
				at = sim.Cycles(rng.Uint64n(span / 8))
			}
			dur := minDur + sim.Cycles(rng.Uint64n(uint64(maxDur-minDur+1)))
			core := -1
			if perCore {
				core = rng.Intn(cores)
			}
			var mag sim.Cycles
			if magHi > 0 {
				mag = magLo + sim.Cycles(rng.Uint64n(uint64(magHi-magLo+1)))
			}
			p.Events = append(p.Events, Event{Kind: kind, At: at, Dur: dur, Core: core, Magnitude: mag})
		}
	}
	switch name {
	case "nack-storm":
		windows(NACKStorm, 4, 2_000, 6_000, 0, 0, false)
		windows(NACKStorm, 6, 1_000, 5_000, 0, 0, true)
	case "mesh-delay":
		windows(MeshDelay, 6, 3_000, 10_000, 200, 2_000, false)
		windows(MeshDelay, 6, 2_000, 8_000, 500, 4_000, true)
	case "mesh-dup":
		windows(MeshDup, 8, 4_000, 15_000, 0, 0, false)
	case "sig-storm":
		windows(SigSaturate, 3, 1_000, 3_000, 0, 0, false)
		windows(SigSaturate, 5, 500, 2_000, 0, 0, true)
	case "redirect-pressure":
		windows(RedirectPressure, 5, 3_000, 12_000, 0, 0, false)
	case "pool-exhaust":
		windows(PoolExhaust, 5, 3_000, 12_000, 100, 400, false)
	case "mixed":
		windows(NACKStorm, 2, 1_000, 4_000, 0, 0, true)
		windows(MeshDelay, 2, 2_000, 6_000, 200, 1_500, false)
		windows(MeshDup, 2, 2_000, 6_000, 0, 0, false)
		windows(SigSaturate, 2, 500, 1_500, 0, 0, false)
		windows(RedirectPressure, 2, 2_000, 8_000, 0, 0, false)
		windows(PoolExhaust, 2, 2_000, 8_000, 100, 300, false)
	default:
		return nil, fmt.Errorf("faults: unknown built-in plan %q", name)
	}
	if err := p.Normalize(); err != nil {
		return nil, err
	}
	return p, nil
}
