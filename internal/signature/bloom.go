package signature

import (
	"math/bits"

	"suvtm/internal/sim"
)

// Bloom is a plain Bloom-filter signature over cache-line addresses, used
// as the per-core read and write signatures for eager conflict detection.
// Adding is idempotent; the only way to remove addresses is Clear (which
// is what commit and abort do to the read/write signatures).
type Bloom struct {
	kind HashKind
	bits uint32
	word []uint64
	// saturated, when set, makes the signature answer as if every bit
	// were 1 — the fault injector's saturation storm. It is a virtual
	// overlay: the underlying bits keep tracking the real address set
	// (so clearing the flag restores exact behavior) and Clear does not
	// reset it (only the injector window does). Saturation can only
	// produce extra false positives, never false negatives, so it
	// degrades performance without endangering correctness.
	saturated bool
}

// NewBloom creates a signature with the given number of bits (a power of
// two, at least 64 for the H3 family; Figure 5 tests use 8 bits).
func NewBloom(numBits uint32, kind HashKind) *Bloom {
	if numBits == 0 || numBits&(numBits-1) != 0 {
		panic("signature: bloom size must be a positive power of two")
	}
	words := (numBits + 63) / 64
	return &Bloom{kind: kind, bits: numBits, word: make([]uint64, words)}
}

// Bits returns the signature width in bits.
func (b *Bloom) Bits() uint32 { return b.bits }

// Add inserts line into the signature.
//
//suv:hotpath
func (b *Bloom) Add(line sim.Line) {
	var idx [NumHashes]uint32
	hashIndices(b.kind, line, b.bits, &idx)
	for _, i := range idx {
		b.word[i/64] |= 1 << (i % 64)
	}
}

// SetSaturated forces (or releases) the saturated overlay; see the field
// comment.
func (b *Bloom) SetSaturated(on bool) { b.saturated = on }

// Saturated reports whether the saturation overlay is active.
func (b *Bloom) Saturated() bool { return b.saturated }

// Test reports whether line may be in the signature (false positives are
// possible, false negatives are not).
//
//suv:hotpath
func (b *Bloom) Test(line sim.Line) bool {
	if b.saturated {
		return true
	}
	for n := 0; n < NumHashes; n++ { // lazy probes: most misses die on hash 0
		i := indexN(b.kind, line, b.bits, n)
		if b.word[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// TestIdx is Test with the bit indices precomputed by Indices (which
// must have used this signature's kind and size).
//
//suv:hotpath
func (b *Bloom) TestIdx(idx *[NumHashes]uint32) bool {
	if b.saturated {
		return true
	}
	for _, i := range idx {
		if b.word[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// Kind returns the signature's hash family.
func (b *Bloom) Kind() HashKind { return b.kind }

// Clear flash-clears the signature (transaction begin/commit/abort).
func (b *Bloom) Clear() {
	for i := range b.word {
		b.word[i] = 0
	}
}

// Clone returns an independent copy (LogTM-Nested saves signature
// snapshots per nesting frame so an open-nested commit can restore the
// pre-frame state, releasing the inner transaction's isolation).
func (b *Bloom) Clone() *Bloom {
	out := &Bloom{kind: b.kind, bits: b.bits, word: make([]uint64, len(b.word))}
	copy(out.word, b.word)
	return out
}

// CopyFrom overwrites this signature with other's contents.
func (b *Bloom) CopyFrom(other *Bloom) {
	if b.bits != other.bits {
		panic("signature: CopyFrom of differently sized signatures")
	}
	copy(b.word, other.word)
}

// Or merges other into b (used for the LogTM-SE style summary signature
// on thread suspension, and for merging the write signature into the
// redirect summary signature at commit).
func (b *Bloom) Or(other *Bloom) {
	if b.bits != other.bits {
		panic("signature: Or of differently sized signatures")
	}
	for i := range b.word {
		b.word[i] |= other.word[i]
	}
}

// Intersects reports whether the two signatures share any set bit. This
// is the signature-to-signature test used for lazy commit validation.
func (b *Bloom) Intersects(other *Bloom) bool {
	if b.bits != other.bits {
		panic("signature: Intersects of differently sized signatures")
	}
	// A saturated side behaves as all-ones: it intersects anything that
	// represents at least one address. Two empty, unsaturated signatures
	// never intersect, saturated peer or not.
	if b.saturated || other.saturated {
		if b.saturated && other.saturated {
			return true
		}
		if b.saturated {
			return !other.Empty()
		}
		return !b.Empty()
	}
	for i := range b.word {
		if b.word[i]&other.word[i] != 0 {
			return true
		}
	}
	return false
}

// PopCount returns the number of set bits (diagnostics, fill-rate tests).
func (b *Bloom) PopCount() int {
	n := 0
	for _, w := range b.word {
		n += bits.OnesCount64(w)
	}
	return n
}

// FillRatio returns the fraction of set bits (1 under the saturation
// overlay, which answers as all-ones).
func (b *Bloom) FillRatio() float64 {
	if b.saturated {
		return 1
	}
	return float64(b.PopCount()) / float64(b.bits)
}

// AliasRate returns the signature's predicted false-positive
// probability at its current fill: the chance that all NumHashes probe
// bits of an address never added are set, (fill)^NumHashes under the
// independent-bit approximation. Conflict forensics samples it at each
// observed false positive, putting measured and predicted aliasing side
// by side.
func (b *Bloom) AliasRate() float64 {
	r := b.FillRatio()
	p := 1.0
	for i := 0; i < NumHashes; i++ {
		p *= r
	}
	return p
}

// Empty reports whether no bit is set.
func (b *Bloom) Empty() bool {
	for _, w := range b.word {
		if w != 0 {
			return false
		}
	}
	return true
}

// BitString renders the low n bits MSB-first, for Figure 5 style tests.
func (b *Bloom) BitString(n uint32) string {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		bit := n - 1 - i
		if b.word[bit/64]&(1<<(bit%64)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
