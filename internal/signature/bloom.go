package signature

import (
	"math/bits"

	"suvtm/internal/sim"
)

// Bloom is a plain Bloom-filter signature over cache-line addresses, used
// as the per-core read and write signatures for eager conflict detection.
// Adding is idempotent; the only way to remove addresses is Clear (which
// is what commit and abort do to the read/write signatures).
type Bloom struct {
	kind HashKind
	bits uint32
	word []uint64
}

// NewBloom creates a signature with the given number of bits (a power of
// two, at least 64 for the H3 family; Figure 5 tests use 8 bits).
func NewBloom(numBits uint32, kind HashKind) *Bloom {
	if numBits == 0 || numBits&(numBits-1) != 0 {
		panic("signature: bloom size must be a positive power of two")
	}
	words := (numBits + 63) / 64
	return &Bloom{kind: kind, bits: numBits, word: make([]uint64, words)}
}

// Bits returns the signature width in bits.
func (b *Bloom) Bits() uint32 { return b.bits }

// Add inserts line into the signature.
func (b *Bloom) Add(line sim.Line) {
	var idx [NumHashes]uint32
	hashIndices(b.kind, line, b.bits, &idx)
	for _, i := range idx {
		b.word[i/64] |= 1 << (i % 64)
	}
}

// Test reports whether line may be in the signature (false positives are
// possible, false negatives are not).
func (b *Bloom) Test(line sim.Line) bool {
	var idx [NumHashes]uint32
	hashIndices(b.kind, line, b.bits, &idx)
	for _, i := range idx {
		if b.word[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear flash-clears the signature (transaction begin/commit/abort).
func (b *Bloom) Clear() {
	for i := range b.word {
		b.word[i] = 0
	}
}

// Clone returns an independent copy (LogTM-Nested saves signature
// snapshots per nesting frame so an open-nested commit can restore the
// pre-frame state, releasing the inner transaction's isolation).
func (b *Bloom) Clone() *Bloom {
	out := &Bloom{kind: b.kind, bits: b.bits, word: make([]uint64, len(b.word))}
	copy(out.word, b.word)
	return out
}

// CopyFrom overwrites this signature with other's contents.
func (b *Bloom) CopyFrom(other *Bloom) {
	if b.bits != other.bits {
		panic("signature: CopyFrom of differently sized signatures")
	}
	copy(b.word, other.word)
}

// Or merges other into b (used for the LogTM-SE style summary signature
// on thread suspension, and for merging the write signature into the
// redirect summary signature at commit).
func (b *Bloom) Or(other *Bloom) {
	if b.bits != other.bits {
		panic("signature: Or of differently sized signatures")
	}
	for i := range b.word {
		b.word[i] |= other.word[i]
	}
}

// Intersects reports whether the two signatures share any set bit. This
// is the signature-to-signature test used for lazy commit validation.
func (b *Bloom) Intersects(other *Bloom) bool {
	if b.bits != other.bits {
		panic("signature: Intersects of differently sized signatures")
	}
	for i := range b.word {
		if b.word[i]&other.word[i] != 0 {
			return true
		}
	}
	return false
}

// PopCount returns the number of set bits (diagnostics, fill-rate tests).
func (b *Bloom) PopCount() int {
	n := 0
	for _, w := range b.word {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b *Bloom) Empty() bool {
	for _, w := range b.word {
		if w != 0 {
			return false
		}
	}
	return true
}

// BitString renders the low n bits MSB-first, for Figure 5 style tests.
func (b *Bloom) BitString(n uint32) string {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		bit := n - 1 - i
		if b.word[bit/64]&(1<<(bit%64)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
