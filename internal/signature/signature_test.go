package signature

import (
	"testing"
	"testing/quick"

	"suvtm/internal/sim"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(lines []uint32) bool {
		b := NewBloom(2048, HashH3)
		for _, l := range lines {
			b.Add(sim.Line(l))
		}
		for _, l := range lines {
			if !b.Test(sim.Line(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomClear(t *testing.T) {
	b := NewBloom(256, HashH3)
	b.Add(1)
	b.Add(99)
	if b.Empty() {
		t.Fatal("empty after adds")
	}
	b.Clear()
	if !b.Empty() || b.Test(1) || b.Test(99) {
		t.Fatal("clear incomplete")
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	b := NewBloom(2048, HashH3)
	for i := sim.Line(0); i < 64; i++ {
		b.Add(i)
	}
	fp := 0
	const probes = 10000
	for i := sim.Line(1000000); i < 1000000+probes; i++ {
		if b.Test(i) {
			fp++
		}
	}
	// 64 lines x 2 hashes over 2048 bits: fill ~6%, expected fp ~0.4%.
	if rate := float64(fp) / probes; rate > 0.02 {
		t.Fatalf("false-positive rate %v too high", rate)
	}
}

func TestBloomOrAndIntersects(t *testing.T) {
	a := NewBloom(512, HashH3)
	b := NewBloom(512, HashH3)
	a.Add(10)
	b.Add(20)
	if a.Intersects(b) && a.PopCount() <= 2 && b.PopCount() <= 2 {
		// Possible only through aliasing; with distinct hash outputs the
		// sets should differ for these inputs.
		t.Log("unexpected aliasing between 10 and 20")
	}
	a.Or(b)
	if !a.Test(10) || !a.Test(20) {
		t.Fatal("Or lost members")
	}
	if !a.Intersects(b) {
		t.Fatal("superset does not intersect subset")
	}
}

func TestBloomSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	NewBloom(256, HashH3).Or(NewBloom(512, HashH3))
}

func TestBloomBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-power-of-two size")
		}
	}()
	NewBloom(100, HashH3)
}

// TestFig5Exact replays Figure 5 of the paper bit for bit: an 8-bit
// summary signature with H1(x) = x mod 8 and H2(x) = (x xor 2x) mod 8.
func TestFig5Exact(t *testing.T) {
	s := NewSummary(8, HashFig5)
	check := func(step, sig, once string) {
		t.Helper()
		if got := s.SigBitString(8); got != sig {
			t.Fatalf("%s: signature = %s, want %s", step, got, sig)
		}
		if got := s.OnceBitString(8); got != once {
			t.Fatalf("%s: bit-vector = %s, want %s", step, got, once)
		}
	}
	check("initialization", "00000000", "00000000")
	s.Add(1)
	check("adding @1", "00001010", "00001010")
	s.Add(3)
	check("adding @3", "00101010", "00100010")
	if !s.Test(1) {
		t.Fatal("inquiring @1 failed")
	}
	check("inquiring @1", "00101010", "00100010")
	s.Delete(1)
	check("deleting @1", "00101000", "00100000")
	// After deletion @1 must be gone but @3 must remain (bit 3 is shared
	// between H1(3) and H2(1), so it stays set — superset semantics).
	if s.Test(1) {
		t.Fatal("@1 still present after delete")
	}
	if !s.Test(3) {
		t.Fatal("@3 lost by deleting @1")
	}
}

func TestSummarySupersetUnderChurn(t *testing.T) {
	// Whatever the add/delete sequence, the summary must remain a
	// superset of the live set (no false negatives).
	f := func(ops []uint16) bool {
		s := NewSummary(256, HashH3)
		live := map[sim.Line]int{}
		for _, op := range ops {
			line := sim.Line(op % 97)
			if op%3 == 0 && live[line] > 0 {
				live[line]--
				s.Delete(line)
			} else {
				live[line]++
				s.Add(line)
			}
		}
		for line, n := range live {
			if n > 0 && !s.Test(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryAddDeleteRoundTrip(t *testing.T) {
	s := NewSummary(2048, HashH3)
	for i := sim.Line(0); i < 50; i++ {
		s.Add(i)
	}
	for i := sim.Line(0); i < 50; i++ {
		s.Delete(i)
	}
	// With low fill, most deletions should fully remove their address.
	present := 0
	for i := sim.Line(0); i < 50; i++ {
		if s.Test(i) {
			present++
		}
	}
	if present > 10 {
		t.Fatalf("%d of 50 deleted addresses still present", present)
	}
	s.Clear()
	for i := sim.Line(0); i < 50; i++ {
		if s.Test(i) {
			t.Fatal("Clear incomplete")
		}
	}
}

func TestBloomBitString(t *testing.T) {
	b := NewBloom(8, HashFig5)
	b.Add(1) // bits 1 and 3
	if got := b.BitString(8); got != "00001010" {
		t.Fatalf("BitString = %s", got)
	}
}
