// Package signature implements the address-set encodings of the paper:
// the 2 Kbit Bloom-filter read/write signatures used for eager conflict
// detection (Table III), and the redirect summary signature with its
// companion "written once" bit-vector that supports address removal as a
// Bloom counter (Figure 5).
//
// Signatures are conservative: membership tests may return false
// positives (which become the paper's "false conflicts" or wasteful
// redirect-table lookups) but never false negatives.
package signature

import "suvtm/internal/sim"

// HashKind selects the hash family for a signature.
type HashKind uint8

const (
	// HashH3 uses two independent multiply-xorshift hashes, approximating
	// the H3 hardware hash family used by LogTM-SE signatures.
	HashH3 HashKind = iota
	// HashFig5 uses the exact toy functions of the paper's Figure 5:
	// H1(x) = x mod m and H2(x) = (x xor 2x) mod m. It exists so tests can
	// replay the figure bit-for-bit.
	HashFig5
)

// NumHashes is the number of hash functions per signature (Figure 5 uses
// two; 2 Kbit Bloom filters with k=2 match the paper's configuration).
const NumHashes = 2

// Indices writes the NumHashes bit indices of line into idx. It is
// exported so a hot loop testing one line against many same-shaped
// signatures (eager conflict detection scans every core) can hash once
// and probe with Bloom.TestIdx. Signature sizes are enforced powers of
// two, so the reductions use masks; x&(bits-1) == x%bits bit-for-bit.
//
//suv:hotpath
func Indices(kind HashKind, line sim.Line, bits uint32, idx *[NumHashes]uint32) {
	switch kind {
	case HashFig5:
		mask := uint64(bits - 1)
		idx[0] = uint32(line & mask)
		idx[1] = uint32((line ^ (2 * line)) & mask)
	case HashH3:
		// Two rounds of a strong 64-bit mixer with distinct constants.
		mask := bits - 1
		h1 := mix(line * 0x9e3779b97f4a7c15)
		h2 := mix(line*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9)
		idx[0] = uint32(h1) & mask
		idx[1] = uint32(h2) & mask
	default:
		panic("signature: unknown HashKind")
	}
}

func hashIndices(kind HashKind, line sim.Line, bits uint32, idx *[NumHashes]uint32) {
	Indices(kind, line, bits, idx)
}

// indexN computes just the nth (0-based) of the NumHashes bit indices —
// the lazy form of Indices for membership tests: a sparse signature
// rejects most lines on the first probe, so computing the later hashes
// up front is wasted work on the hottest path in the simulator.
//
//suv:hotpath
func indexN(kind HashKind, line sim.Line, bits uint32, n int) uint32 {
	switch kind {
	case HashFig5:
		mask := uint64(bits - 1)
		if n == 0 {
			return uint32(line & mask)
		}
		return uint32((line ^ (2 * line)) & mask)
	case HashH3:
		mask := bits - 1
		if n == 0 {
			return uint32(mix(line*0x9e3779b97f4a7c15)) & mask
		}
		return uint32(mix(line*0xc2b2ae3d27d4eb4f+0x165667b19e3779f9)) & mask
	default:
		panic("signature: unknown HashKind")
	}
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}
