package signature

import "suvtm/internal/sim"

// Summary is the redirect summary signature of Section IV-B: a Bloom
// signature over the set of currently redirected addresses, paired with a
// bit-vector recording which signature bits were written exactly once.
// The pair works as a degenerate Bloom counter (Figure 5): an address can
// be removed by unsetting its unique bits, and incomplete removal only
// costs wasteful redirect-table lookups, never correctness, because the
// signature is allowed to represent a superset of redirected addresses.
//
// Every memory access — transactional or not, to support strong
// isolation — consults this structure first; a negative answer skips the
// redirect-table lookup entirely.
type Summary struct {
	kind HashKind
	bits uint32
	sig  []uint64 // the redirect summary signature
	once []uint64 // bits set by exactly one Add since they were last 0
	// saturated makes Test answer "maybe redirected" for every address
	// (the fault injector's saturation storm): every access pays a
	// wasteful redirect-table lookup, which is the documented cost of a
	// polluted summary — a superset is always safe. Add/Delete keep
	// maintaining the real bits underneath so behavior is exact again
	// the moment the flag drops, and Clear does not reset it.
	saturated bool
	// live counts the set signature bits, giving Test an O(1) negative
	// when no address is redirected — the common steady state, and the
	// one every single memory access starts from (strong isolation makes
	// Test a universal prefix of the load/store path).
	live int
}

// NewSummary creates a summary signature with numBits bits (a power of
// two). The paper's configuration is 2 Kbit signature + 2 Kbit vector.
func NewSummary(numBits uint32, kind HashKind) *Summary {
	if numBits == 0 || numBits&(numBits-1) != 0 {
		panic("signature: summary size must be a positive power of two")
	}
	words := (numBits + 63) / 64
	return &Summary{kind: kind, bits: numBits, sig: make([]uint64, words), once: make([]uint64, words)}
}

// Bits returns the signature width in bits.
func (s *Summary) Bits() uint32 { return s.bits }

// Add records that line is now redirected.
func (s *Summary) Add(line sim.Line) {
	var idx [NumHashes]uint32
	hashIndices(s.kind, line, s.bits, &idx)
	for _, i := range idx {
		w, b := i/64, uint64(1)<<(i%64)
		if s.sig[w]&b == 0 {
			s.sig[w] |= b
			s.once[w] |= b // first writer: the bit is unique
			s.live++
		} else {
			s.once[w] &^= b // second writer: no longer unique
		}
	}
}

// Delete removes line from the summary by unsetting its unique bits.
// Bits shared with other addresses are left set, so the summary remains
// a superset of the redirected set (Figure 5, "Deleting @1").
func (s *Summary) Delete(line sim.Line) {
	var idx [NumHashes]uint32
	hashIndices(s.kind, line, s.bits, &idx)
	for _, i := range idx {
		w, b := i/64, uint64(1)<<(i%64)
		if s.once[w]&b != 0 {
			s.sig[w] &^= b
			s.once[w] &^= b
			s.live--
		}
	}
}

// Test reports whether line may be redirected. A false result is
// definitive (no table lookup needed); a true result may be a false
// positive that costs a wasteful lookup.
func (s *Summary) Test(line sim.Line) bool {
	if s.saturated {
		return true
	}
	if s.live == 0 {
		return false
	}
	for n := 0; n < NumHashes; n++ { // lazy probes: most misses die on hash 0
		i := indexN(s.kind, line, s.bits, n)
		if s.sig[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// SetSaturated forces (or releases) the saturation overlay; see the
// field comment.
func (s *Summary) SetSaturated(on bool) { s.saturated = on }

// Saturated reports whether the saturation overlay is active.
func (s *Summary) Saturated() bool { return s.saturated }

// Clear resets both the signature and the bit-vector.
func (s *Summary) Clear() {
	for i := range s.sig {
		s.sig[i] = 0
		s.once[i] = 0
	}
	s.live = 0
}

// SigBitString renders the low n signature bits MSB-first (Figure 5 tests).
func (s *Summary) SigBitString(n uint32) string { return bitString(s.sig, n) }

// OnceBitString renders the low n bit-vector bits MSB-first (Figure 5 tests).
func (s *Summary) OnceBitString(n uint32) string { return bitString(s.once, n) }

func bitString(words []uint64, n uint32) string {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		bit := n - 1 - i
		if words[bit/64]&(1<<(bit%64)) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
