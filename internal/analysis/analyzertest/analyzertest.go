// Package analyzertest is a minimal stand-in for
// golang.org/x/tools/go/analysis/analysistest (which is not part of
// the toolchain-vendored x/tools subset this repo builds against). It
// type-checks directories of test sources as packages — under any
// import paths the caller chooses, which is how the suvlint analyzers'
// package-scope predicates (deterministic core, simulated machine) are
// exercised — runs an analyzer and its Requires DAG, and matches
// reported diagnostics against analysistest-style
//
//	// want "regexp" "another regexp"
//
// comments on the reporting line. Stdlib imports in test sources are
// type-checked from GOROOT source, so no export data is required.
//
// RunPkgs analyzes several packages in dependency order against one
// shared in-memory fact store, so interprocedural analyzers (peekpure's
// isPure facts) can be exercised across package boundaries exactly as
// the unitchecker driver propagates them.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// A Pkg names one directory of test sources and the import path to
// type-check it under.
type Pkg struct {
	Dir  string
	Path string
}

// Run analyzes the Go sources in dir as one package with the given
// import path and reports expectation mismatches through t.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	RunPkgs(t, a, Pkg{dir, pkgPath})
}

// RunPkgs analyzes the packages in order (earlier packages are
// importable by later ones, and analyzer facts flow the same way) and
// matches the union of diagnostics against every file's want comments.
func RunPkgs(t *testing.T, a *analysis.Analyzer, pkgs ...Pkg) {
	t.Helper()
	res, err := analyze(a, pkgs...)
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	checkExpectations(t, res.fset, res.files, res.diags)
}

// Diagnostics runs the analyzer and returns raw findings (for tests
// that assert on counts or message content directly).
func Diagnostics(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	res, err := analyze(a, Pkg{dir, pkgPath})
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	return res.diags
}

type analyzeResult struct {
	fset  *token.FileSet
	files []*ast.File
	diags []analysis.Diagnostic
}

// chainImporter serves packages type-checked earlier in the same
// analyze call by import path, falling back to GOROOT source for
// everything else.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// factStore is the in-memory analogue of the unitchecker's .facts
// files: facts are keyed by (object, fact type) and survive across the
// packages of one analyze call, which is exactly the lifetime
// cross-package fact propagation needs in tests.
type factStore struct {
	obj map[objFactKey]analysis.Fact
	pkg map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

func newFactStore() *factStore {
	return &factStore{obj: map[objFactKey]analysis.Fact{}, pkg: map[pkgFactKey]analysis.Fact{}}
}

// copyFact copies the stored fact's value into the caller's pointer,
// mirroring the decode step of the real drivers.
func copyFact(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

func analyze(a *analysis.Analyzer, pkgs ...Pkg) (*analyzeResult, error) {
	fset := token.NewFileSet()
	imp := chainImporter{
		local: map[string]*types.Package{},
		// The "source" importer type-checks stdlib dependencies from
		// GOROOT source, so tests need no compiled export data.
		std: importer.ForCompiler(fset, "source", nil),
	}
	facts := newFactStore()
	out := &analyzeResult{fset: fset}

	for _, p := range pkgs {
		entries, err := os.ReadDir(p.Dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no Go sources in %s", p.Dir)
		}

		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.Path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.Dir, err)
		}
		imp.local[p.Path] = pkg

		if err := runDAG(a, fset, files, pkg, info, facts, &out.diags); err != nil {
			return nil, err
		}
		out.files = append(out.files, files...)
	}
	return out, nil
}

// runDAG runs the analyzer and its Requires closure over one package;
// results are per-package, facts are shared through the store.
func runDAG(root *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *factStore, diags *[]analysis.Diagnostic) error {
	results := map[*analysis.Analyzer]any{}
	var run func(a *analysis.Analyzer) error
	run = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, dep := range a.Requires {
			if err := run(dep); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				*diags = append(*diags, d)
			},
			ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
				got, ok := facts.obj[objFactKey{obj, reflect.TypeOf(f)}]
				if ok {
					copyFact(f, got)
				}
				return ok
			},
			ExportObjectFact: func(obj types.Object, f analysis.Fact) {
				facts.obj[objFactKey{obj, reflect.TypeOf(f)}] = f
			},
			ImportPackageFact: func(p *types.Package, f analysis.Fact) bool {
				got, ok := facts.pkg[pkgFactKey{p, reflect.TypeOf(f)}]
				if ok {
					copyFact(f, got)
				}
				return ok
			},
			ExportPackageFact: func(f analysis.Fact) {
				facts.pkg[pkgFactKey{pkg, reflect.TypeOf(f)}] = f
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				var out []analysis.ObjectFact
				for k, f := range facts.obj {
					out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
				}
				return out
			},
			AllPackageFacts: func() []analysis.PackageFact {
				var out []analysis.PackageFact
				for k, f := range facts.pkg {
					out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
				}
				return out
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	return run(root)
}

var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkExpectations matches diagnostics against // want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	want := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					want[k] = append(want[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range want[k] {
			if re.MatchString(d.Message) {
				want[k] = append(want[k][:i], want[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	var leftover []string
	for k, res := range want {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: expected diagnostic matching %q was not reported", k.file, k.line, re))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}
