// Package analyzertest is a minimal stand-in for
// golang.org/x/tools/go/analysis/analysistest (which is not part of
// the toolchain-vendored x/tools subset this repo builds against). It
// type-checks one directory of test sources as a single package —
// under any import path the caller chooses, which is how the suvlint
// analyzers' package-scope predicates (deterministic core, simulated
// machine) are exercised — runs an analyzer and its Requires DAG, and
// matches reported diagnostics against analysistest-style
//
//	// want "regexp" "another regexp"
//
// comments on the reporting line. Stdlib imports in test sources are
// type-checked from GOROOT source, so no export data is required.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the Go sources in dir as one package with the given
// import path and reports expectation mismatches through t.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	diags, fset, files, err := analyze(dir, pkgPath, a)
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	checkExpectations(t, fset, files, diags)
}

// Diagnostics runs the analyzer and returns raw findings (for tests
// that assert on counts or message content directly).
func Diagnostics(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	diags, _, _, err := analyze(dir, pkgPath, a)
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	return diags
}

func analyze(dir, pkgPath string, a *analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go sources in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		// The "source" importer type-checks stdlib dependencies from
		// GOROOT source, so tests need no compiled export data.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", dir, err)
	}

	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]any{}
	var run func(a *analysis.Analyzer) error
	run = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, dep := range a.Requires {
			if err := run(dep); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { panic("facts unsupported") },
			ExportObjectFact:  func(types.Object, analysis.Fact) { panic("facts unsupported") },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { panic("facts unsupported") },
			ExportPackageFact: func(analysis.Fact) { panic("facts unsupported") },
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	if err := run(a); err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, files, nil
}

var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkExpectations matches diagnostics against // want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	want := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					want[k] = append(want[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range want[k] {
			if re.MatchString(d.Message) {
				want[k] = append(want[k][:i], want[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	var leftover []string
	for k, res := range want {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: expected diagnostic matching %q was not reported", k.file, k.line, re))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}
