// Package ssalite lowers type-checked function bodies into flat
// single-assignment effect summaries for the suvlint purity analyzers.
// It is a minimal stand-in for golang.org/x/tools/go/ssa and its
// buildssa analyzer glue (which are not part of the toolchain-vendored
// x/tools subset this repo builds against): instead of full SSA form it
// keeps exactly the information a side-effect certifier needs —
//
//   - every observable mutation a function performs, classified by the
//     region it targets (a global, heap memory reached through a
//     pointer, a map/slice element, a channel), with provenance so that
//     writes into memory the function itself allocated ("fresh" values,
//     the single-assignment part of the lowering) do not count;
//   - every call edge, split into statically resolved callees (which a
//     later interprocedural pass can chase, in-package or across
//     packages via analyzer facts) and dynamic calls (function values,
//     interface dispatch, type-parameter methods) that no static
//     analysis can certify.
//
// Like buildssa, the Analyzer exposes the lowered package as its result
// so downstream analyzers (peekpure) share one construction per
// package.
package ssalite

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// EffectKind classifies one observable side effect.
type EffectKind uint8

const (
	// StoreHeap is a store through a pointer into memory the function
	// did not allocate (receiver fields, *Machine/*Core state, any
	// pointed-to heap object).
	StoreHeap EffectKind = iota
	// StoreGlobal is an assignment to a package-level variable.
	StoreGlobal
	// MapWrite is an update or delete of a map the function did not
	// allocate.
	MapWrite
	// SliceWrite is a store into the backing array of a slice the
	// function did not allocate (including growth via append/copy).
	SliceWrite
	// ChanOp is any channel operation: send, receive, close, select.
	ChanOp
	// DynamicCall is a call no static analysis can resolve: a function
	// value, an interface method, or a type-parameter method.
	DynamicCall
	// GoSpawn is a go statement.
	GoSpawn
	// ImpureBuiltin is a builtin with observable effects (print,
	// println, recover) or an effectful use of one (clear/delete/copy
	// into shared state is classified as MapWrite/SliceWrite instead).
	ImpureBuiltin
	// UnsafeOp is a non-constant use of package unsafe (conversions
	// through unsafe.Pointer defeat all region reasoning).
	UnsafeOp
	// External marks a declaration without a body (assembly or
	// linkname): nothing can be proven about it.
	External
)

// An Effect is one observable side effect at a source position.
type Effect struct {
	Kind EffectKind
	Pos  token.Pos
	Desc string // human-readable, e.g. "stores to v.hits through receiver pointer"
}

// A Call is a statically resolved call edge. Callee is always the
// origin (uninstantiated) object so generic callees unify with their
// declarations and with analyzer facts.
type Call struct {
	Pos    token.Pos
	Callee *types.Func
}

// A Func is one declared function or method with its effect summary.
type Func struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Effects []Effect
	Calls   []Call
}

// A Pkg is the lowered package: every function declared in it, indexed
// by its (origin) object.
type Pkg struct {
	Funcs []*Func
	ByObj map[*types.Func]*Func
}

// Analyzer lowers the package being analyzed; its result is the *Pkg.
var Analyzer = &analysis.Analyzer{
	Name:       "ssalite",
	Doc:        "lower functions to single-assignment effect summaries for purity analysis",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf((*Pkg)(nil)),
	Run:        run,
}

func run(pass *analysis.Pass) (any, error) {
	pkg := &Pkg{ByObj: map[*types.Func]*Func{}}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		f := &Func{Obj: obj, Decl: decl}
		if decl.Body == nil {
			f.Effects = append(f.Effects, Effect{External, decl.Pos(),
				"is declared without a Go body (assembly or external linkage)"})
		} else {
			b := &builder{info: pass.TypesInfo, pkg: pass.Pkg, f: f}
			b.fresh = collectFresh(pass.TypesInfo, decl)
			ast.Inspect(decl.Body, b.visit)
		}
		pkg.Funcs = append(pkg.Funcs, f)
		pkg.ByObj[origin(obj)] = f
	})
	return pkg, nil
}

// origin maps an instantiated generic function/method to its
// declaration object (the identity for non-generic functions).
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// builder walks one function body emitting effects and call edges.
type builder struct {
	info  *types.Info
	pkg   *types.Package
	f     *Func
	fresh map[*types.Var]bool
}

func (b *builder) effect(k EffectKind, pos token.Pos, desc string) {
	b.f.Effects = append(b.f.Effects, Effect{k, pos, desc})
}

// visit is the ast.Inspect callback: it classifies every statement and
// expression form that can mutate observable state. Function literals
// are skipped — their bodies execute only when called, and calling a
// function value is itself a DynamicCall effect — except when invoked
// or deferred directly, in which case call() inlines them.
func (b *builder) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		return false
	case *ast.AssignStmt:
		if n.Tok != token.DEFINE {
			for _, lhs := range n.Lhs {
				b.lvalue(lhs)
			}
		}
		return true
	case *ast.IncDecStmt:
		b.lvalue(n.X)
		return true
	case *ast.SendStmt:
		b.effect(ChanOp, n.Pos(), "sends on channel "+types.ExprString(n.Chan))
		return true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			b.effect(ChanOp, n.Pos(), "receives from channel "+types.ExprString(n.X))
		}
		return true
	case *ast.SelectStmt:
		b.effect(ChanOp, n.Pos(), "selects over channel operations")
		return true
	case *ast.RangeStmt:
		if t := b.typeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				b.effect(ChanOp, n.Pos(), "ranges over channel "+types.ExprString(n.X))
			}
		}
		if n.Tok == token.ASSIGN {
			if n.Key != nil {
				b.lvalue(n.Key)
			}
			if n.Value != nil {
				b.lvalue(n.Value)
			}
		}
		return true
	case *ast.GoStmt:
		b.effect(GoSpawn, n.Pos(), "spawns a goroutine")
		return true
	case *ast.CallExpr:
		b.call(n)
		return true
	}
	return true
}

func (b *builder) typeOf(e ast.Expr) types.Type {
	return b.info.TypeOf(e)
}

// lvalue classifies an assignment target. Writes to the function's own
// variables (parameters, receiver variable, locals) are pure; the
// effects start where a write escapes the frame.
func (b *builder) lvalue(e ast.Expr) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj := b.info.Defs[e]
		if obj == nil {
			obj = b.info.Uses[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			b.effect(StoreGlobal, e.Pos(), "assigns to package-level variable "+v.Name())
		}
	case *ast.SelectorExpr:
		// Qualified package-level variable: pkg.Var = x.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := b.info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := b.info.Uses[e.Sel].(*types.Var); ok {
					b.effect(StoreGlobal, e.Pos(), "assigns to package-level variable "+id.Name+"."+v.Name())
				}
				return
			}
		}
		if sel := b.info.Selections[e]; sel != nil && sel.Indirect() {
			if !b.freshExpr(e.X) {
				b.effect(StoreHeap, e.Pos(), "stores to "+types.ExprString(e)+" through a pointer it did not allocate")
			}
			return
		}
		b.lvalue(e.X) // field of a value: the write lands wherever the value lives
	case *ast.IndexExpr:
		t := b.typeOf(e.X)
		if t == nil {
			b.effect(StoreHeap, e.Pos(), "stores through "+types.ExprString(e))
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			if !b.freshExpr(e.X) {
				b.effect(MapWrite, e.Pos(), "writes map "+types.ExprString(e.X))
			}
		case *types.Slice:
			if !b.freshExpr(e.X) {
				b.effect(SliceWrite, e.Pos(), "writes element of slice "+types.ExprString(e.X))
			}
		case *types.Pointer: // *[N]T auto-deref
			if !b.freshExpr(e.X) {
				b.effect(StoreHeap, e.Pos(), "stores through array pointer "+types.ExprString(e.X))
			}
		case *types.Array:
			b.lvalue(e.X)
		default:
			b.effect(StoreHeap, e.Pos(), "stores through "+types.ExprString(e))
		}
	case *ast.StarExpr:
		if !b.freshExpr(e.X) {
			b.effect(StoreHeap, e.Pos(), "stores through pointer "+types.ExprString(e.X))
		}
	default:
		b.effect(StoreHeap, e.Pos(), "stores through computed expression "+types.ExprString(e))
	}
}

// call classifies one call expression: conversions and pure builtins
// vanish, effectful builtins and dynamic calls become effects,
// immediately invoked or deferred function literals are inlined, and
// everything else becomes a static call edge.
func (b *builder) call(n *ast.CallExpr) {
	fun := ast.Unparen(n.Fun)

	// Type conversion T(x): pure, except through unsafe.Pointer.
	if tv, ok := b.info.Types[n.Fun]; ok && tv.IsType() {
		if isUnsafePointer(tv.Type) {
			b.effect(UnsafeOp, n.Pos(), "converts through unsafe.Pointer")
		}
		return
	}

	// Builtins (len, append, ...) and unsafe.* pseudo-functions.
	if id := builtinIdent(fun); id != nil {
		if bi, ok := b.info.Uses[id].(*types.Builtin); ok {
			b.builtin(bi.Name(), n)
			return
		}
	}

	// func(){...}() and defer func(){...}(): the literal runs on this
	// frame, so its effects are this function's effects.
	if lit, ok := fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, b.visit)
		return
	}

	fn := staticCallee(b.info, n)
	if fn == nil {
		b.effect(DynamicCall, n.Pos(), "calls "+types.ExprString(fun)+" through a function value")
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.Underlying().(*types.Pointer); ok {
			rt = p.Elem()
		}
		if types.IsInterface(rt.Underlying()) {
			b.effect(DynamicCall, n.Pos(), "dynamically dispatches interface method "+fn.Name())
			return
		}
		if _, ok := types.Unalias(rt).(*types.TypeParam); ok {
			b.effect(DynamicCall, n.Pos(), "dynamically dispatches type-parameter method "+fn.Name())
			return
		}
	}
	b.f.Calls = append(b.f.Calls, Call{n.Pos(), origin(fn)})
}

// builtin classifies a call to a builtin (or unsafe.*) function.
func (b *builder) builtin(name string, n *ast.CallExpr) {
	switch name {
	case "append":
		if len(n.Args) > 0 && !b.freshExpr(n.Args[0]) {
			b.effect(SliceWrite, n.Pos(), "appends to slice "+types.ExprString(n.Args[0])+" it did not allocate (may write a shared backing array)")
		}
	case "copy":
		if len(n.Args) > 0 && !b.freshExpr(n.Args[0]) {
			b.effect(SliceWrite, n.Pos(), "copies into "+types.ExprString(n.Args[0]))
		}
	case "clear":
		if len(n.Args) > 0 && !b.freshExpr(n.Args[0]) {
			b.effect(MapWrite, n.Pos(), "clears "+types.ExprString(n.Args[0]))
		}
	case "delete":
		if len(n.Args) > 0 && !b.freshExpr(n.Args[0]) {
			b.effect(MapWrite, n.Pos(), "deletes from map "+types.ExprString(n.Args[0]))
		}
	case "close":
		b.effect(ChanOp, n.Pos(), "closes a channel")
	case "print", "println", "recover":
		b.effect(ImpureBuiltin, n.Pos(), "calls builtin "+name)
	case "Sizeof", "Alignof", "Offsetof", "Add", "Slice", "SliceData", "String", "StringData":
		// unsafe.*: constant-folded uses (Sizeof of a concrete type)
		// are pure; anything that survives to runtime is an unsafe op.
		if b.info.Types[n].Value == nil {
			b.effect(UnsafeOp, n.Pos(), "uses unsafe."+name)
		}
	}
	// len, cap, make, new, min, max, complex, real, imag, panic: no
	// observable mutation of existing state.
}

// builtinIdent returns the identifier naming a builtin or unsafe.*
// pseudo-function callee, or nil.
func builtinIdent(fun ast.Expr) *ast.Ident {
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id // resolved below only if it names a builtin (unsafe.Sizeof)
		}
	}
	return nil
}

// staticCallee resolves the call's callee to a declared function or
// method, or nil for calls through function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

func isUnsafePointer(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

// collectFresh computes the function's fresh variables: locals declared
// in the body whose every assignment is a fresh allocation (new, make,
// &T{...}, a composite literal, or append to themselves) and whose
// address is never taken. Writes into memory reached through a fresh
// variable stay inside the frame until the value escapes — and if it
// escapes through a global or heap store, that store is its own effect.
//
// Parameters, the receiver, and named results are never fresh: their
// incoming values alias caller state, and this summary is
// flow-insensitive, so one external assignment anywhere poisons the
// variable everywhere. Function-literal bodies are included in the scan
// (a closure can reassign or alias an outer local even though its
// effects are not ours).
func collectFresh(info *types.Info, decl *ast.FuncDecl) map[*types.Var]bool {
	inBody := map[*types.Var]bool{}
	status := map[*types.Var]bool{} // true while every seen assignment is an allocation
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || !inBody[v] {
			return
		}
		ok = isAllocExpr(info, rhs) || isSelfAppend(info, id, rhs)
		if cur, seen := status[v]; seen {
			status[v] = cur && ok
		} else {
			status[v] = ok
		}
	}
	// First pass: which vars are declared inside the body (parameters
	// and named results live in the signature and never qualify).
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				inBody[v] = true
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						note(id, n.Rhs[i])
					}
				}
			} else { // multi-value: nothing on the RHS is an allocation form
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						note(id, nil)
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					note(name, n.Values[i])
				}
				// var x T with no initializer: zero value; a nil
				// map/slice/pointer cannot reach shared state, so it
				// does not kill freshness.
			}
		case *ast.UnaryExpr:
			// &x: the variable's address escapes this analysis.
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := objOf(info, id).(*types.Var); ok {
						status[v] = false
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if id, ok := ast.Unparen(n.Key).(*ast.Ident); ok {
					note(id, nil)
				}
				if n.Value != nil {
					if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
						note(id, nil)
					}
				}
			}
		}
		return true
	})
	out := map[*types.Var]bool{}
	for v, ok := range status {
		if ok {
			out[v] = true
		}
	}
	return out
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// isAllocExpr reports whether e yields freshly allocated (or nil)
// storage: new/make calls, composite literals and their addresses, nil,
// and type conversions of those.
func isAllocExpr(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new" || b.Name() == "make"
			}
		}
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return isAllocExpr(info, e.Args[0]) // T(nil), []T(x)…
		}
	}
	return false
}

// isSelfAppend reports the `s = append(s, ...)` shape, which preserves
// freshness: growth reallocates, in-place extension writes storage that
// was already fresh.
func isSelfAppend(info *types.Info, lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && objOf(info, arg) == objOf(info, lhs)
}

// freshExpr reports whether e denotes storage this function allocated:
// a fresh variable, an allocation expression, or the address of a local
// value variable (writing through &x writes x, which is ours).
func (b *builder) freshExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := objOf(b.info, e).(*types.Var); ok {
			return b.fresh[v]
		}
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
			return true
		}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if v, ok := objOf(b.info, id).(*types.Var); ok {
				// &x of a body-declared value variable: x itself is ours.
				if _, ptr := v.Type().Underlying().(*types.Pointer); !ptr {
					return v.Parent() != nil && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
				}
			}
		}
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return isAllocExpr(b.info, e)
	}
	return false
}
