package analysis

import (
	"fmt"
	"go/ast"
	"go/types"

	xanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotAllocAnalyzer reports allocation-introducing constructs inside
// functions annotated //suv:hotpath. The runtime AllocsPerRun==0 gates
// catch a regression only after the right benchmark runs; this analyzer
// names the offending construct at review time instead. It is
// deliberately intraprocedural and conservative: an amortized
// allocating slow path (table growth, error exits) belongs in its own
// un-annotated function, or carries //suv:allocok <reason>.
var HotAllocAnalyzer = &xanalysis.Analyzer{
	Name: "hotalloc",
	Doc: "report allocating constructs in //suv:hotpath functions\n\n" +
		"Flags, inside annotated functions: map/slice composite literals and\n" +
		"&T{...}, make/new, fmt.* calls, non-constant string concatenation,\n" +
		"string<->[]byte conversions, concrete-to-interface conversions,\n" +
		"appends to un-presized local slices, and func literals (closures).\n" +
		"Suppress an intentional allocation with //suv:allocok <reason>.",
	Requires:   []*xanalysis.Analyzer{inspect.Analyzer},
	ResultType: annotUseType,
	Run:        runHotAlloc,
}

func runHotAlloc(pass *xanalysis.Pass) (any, error) {
	use := newAnnotUse()
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	var annots fileAnnots
	ins.Preorder([]ast.Node{(*ast.File)(nil), (*ast.FuncDecl)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			annots = nil
			if !isTestFile(pass.Fset, n) {
				annots = collectAnnots(pass.Fset, n)
			}
		case *ast.FuncDecl:
			if annots == nil || !funcHotPath(n, use) || n.Body == nil {
				return
			}
			checkHotFunc(pass, use, annots, n)
		}
	})
	return use, nil
}

// checkHotFunc walks one annotated function body.
func checkHotFunc(pass *xanalysis.Pass, use *annotUse, annots fileAnnots, decl *ast.FuncDecl) {
	unpresized := collectUnpresizedSlices(pass.TypesInfo, decl.Body)

	flag := func(n ast.Node, format string, args ...any) {
		if annots.suppressed(pass, use, n.Pos(), "allocok") {
			return
		}
		pass.Reportf(n.Pos(), "hot path %s: %s (hoist the allocation out of the hot path or annotate //suv:allocok <reason>)",
			decl.Name.Name, fmt.Sprintf(format, args...))
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			flag(n, "func literal allocates a closure")
			return false // the closure body is not the hot path's frame
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				flag(n, "&%s composite literal escapes to the heap", typeLabel(pass.TypesInfo.TypeOf(lit)))
				return false
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				flag(n, "slice literal allocates backing storage")
			case *types.Map:
				flag(n, "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isStringExpr(pass.TypesInfo, n) && pass.TypesInfo.Types[n].Value == nil {
				flag(n, "string concatenation allocates")
				return false
			}
		case *ast.AssignStmt:
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isStringExpr(pass.TypesInfo, n.Lhs[0]) {
				flag(n, "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(pass, flag, unpresized, n)
		}
		return true
	})
}

func checkHotCall(pass *xanalysis.Pass, flag func(ast.Node, string, ...any), unpresized map[types.Object]bool, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins and conversions first: they have no *types.Func callee.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call, "make allocates %s", typeLabel(info.TypeOf(call.Args[0])))
			case "new":
				flag(call, "new(%s) allocates", typeLabel(info.TypeOf(call.Args[0])))
			case "append":
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && unpresized[info.Uses[base]] {
					flag(call, "append to un-presized slice %s may grow the backing array; presize with make(..., n) outside the hot path", base.Name)
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Explicit conversion T(x).
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		checkConversion(flag, call, dst, src, info.Types[call.Args[0]].Value != nil)
		return
	}

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		flag(call, "fmt.%s allocates (formats through reflection into fresh storage)", fn.Name())
		return
	}

	// Concrete values passed as interface parameters are boxed.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case call.Ellipsis.IsValid() && i == len(call.Args)-1:
			continue // s... spreads an existing slice; no boxing here
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkConversion(flag, arg, pt, info.TypeOf(arg), info.Types[arg].Value != nil)
	}
}

// checkConversion flags a concrete-to-interface conversion that boxes
// its operand. Pointer-shaped values (pointers, chans, maps, funcs,
// unsafe.Pointer) ride in the interface word without allocating, and
// constants are folded, so neither is flagged. string<->[]byte/[]rune
// conversions copy and are flagged too.
func checkConversion(flag func(ast.Node, string, ...any), n ast.Node, dst, src types.Type, srcConst bool) {
	if dst == nil || src == nil || srcConst {
		return
	}
	if isStringBytesConv(dst, src) {
		flag(n, "%s(%s) conversion copies its operand", typeLabel(dst), typeLabel(src))
		return
	}
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if src.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	flag(n, "concrete %s converted to interface %s may allocate a box", typeLabel(src), typeLabel(dst))
}

func isStringBytesConv(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isStringType(t)
}

// collectUnpresizedSlices finds local slice variables born without
// capacity — `var x []T`, `x := []T{}`, `x := []T(nil)` — which an
// append in the hot path would have to grow. Locals initialized from
// make(...), parameters, and fields are presumed presized/reused.
func collectUnpresizedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(nameExpr ast.Expr, init ast.Expr) {
		id, ok := nameExpr.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		switch init := ast.Unparen(init).(type) {
		case nil:
			out[obj] = true // var x []T
		case *ast.CompositeLit:
			if len(init.Elts) == 0 {
				out[obj] = true // x := []T{}
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[init.Fun]; ok && tv.IsType() {
				out[obj] = true // x := []T(nil)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				mark(n.Lhs[i], n.Rhs[i])
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						mark(name, vs.Values[i])
					} else {
						mark(name, nil)
					}
				}
			}
		}
		return true
	})
	return out
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
