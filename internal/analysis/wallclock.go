package analysis

import (
	"go/ast"

	xanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// WallClockAnalyzer bans host state inside the simulated machine.
// Every run must be a pure function of (config, seed): time advances
// only as simulated cycles, randomness only through sim.RNG streams,
// and configuration only through explicit Config/Spec fields. Reading
// the host clock, the global math/rand source, or the process
// environment from any internal package other than the exempt ones
// (hostprof, runcache's disk tier, the suvd daemon, the lint tooling)
// makes replay and the content-addressed run cache silently wrong.
var WallClockAnalyzer = &xanalysis.Analyzer{
	Name: "wallclock",
	Doc: "ban wall-clock time, global rand, and environment in the simulated machine\n\n" +
		"time.Now/Since/Until, the global math/rand(/v2) source, and\n" +
		"os.Getenv/LookupEnv/Environ are only permitted in internal/hostprof,\n" +
		"internal/runcache, internal/suvd, and cmd/; simulator packages must\n" +
		"derive all state from (config, seed, cycle count).",
	Requires: []*xanalysis.Analyzer{inspect.Analyzer},
	Run:      runWallClock,
}

// wallClockBanned maps import path -> banned package-level functions.
// A nil set bans every package-level function except the explicitly
// allowed constructors (which take an explicit, seedable source).
var wallClockBanned = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"os":           {"Getenv": true, "LookupEnv": true, "Environ": true},
	"math/rand":    nil,
	"math/rand/v2": nil,
}

// wallClockAllowedRand lists math/rand(/v2) constructors that are fine:
// they operate on an explicit caller-seeded source, not the global one.
var wallClockAllowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runWallClock(pass *xanalysis.Pass) (any, error) {
	if !inSimulatedMachine(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	var skipFile bool
	ins.Preorder([]ast.Node{(*ast.File)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			skipFile = isTestFile(pass.Fset, n)
		case *ast.CallExpr:
			if skipFile {
				return
			}
			fn := calleeFunc(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			path := fn.Pkg().Path()
			banned, ok := wallClockBanned[path]
			if !ok {
				return
			}
			if _, isPkgFunc := calleeIsPkgFunc(pass.TypesInfo, n, path); !isPkgFunc {
				return // methods on rand.Rand etc. use an explicit source
			}
			name := fn.Name()
			if banned == nil {
				if wallClockAllowedRand[name] {
					return
				}
			} else if !banned[name] {
				return
			}
			pass.Reportf(n.Pos(), "host state in simulated machine: %s.%s is banned in %s (only internal/hostprof, internal/runcache, internal/suvd, and cmd/ may touch host state); derive time from simulated cycles and randomness from sim.RNG", path, name, pass.Pkg.Path())
		}
	})
	return nil, nil
}
