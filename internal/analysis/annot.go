package analysis

import (
	"go/ast"
	"go/token"
	"reflect"
	"strings"

	xanalysis "golang.org/x/tools/go/analysis"
)

// An annotUse records which //suv: directives did real work during one
// analyzer's pass: a directive is "used" when it suppressed a finding,
// armed a check (//suv:hotpath), or was itself reported (a bare
// directive missing its justification). Every suppression-consuming
// analyzer returns its annotUse as the pass result so the stalesuppress
// analyzer can flag, in both unitchecker and vet-tool driver modes, any
// annotation that no longer does anything.
type annotUse struct {
	used map[token.Pos]bool
}

func newAnnotUse() *annotUse { return &annotUse{used: map[token.Pos]bool{}} }

func (u *annotUse) mark(pos token.Pos) {
	if u != nil {
		u.used[pos] = true
	}
}

// annotUseType is the shared ResultType of the suppression-consuming
// analyzers.
var annotUseType = reflect.TypeOf((*annotUse)(nil))

// A directive is one parsed //suv: line annotation.
type directive struct {
	name   string // e.g. "orderinsensitive"
	reason string // justification text after the name; may be empty
	pos    token.Pos
}

// fileAnnots indexes a file's //suv: directives by source line.
type fileAnnots map[int][]directive

// collectAnnots parses every //suv: comment in file. Directives look
// like "//suv:name reason..." with no space before the name.
func collectAnnots(fset *token.FileSet, file *ast.File) fileAnnots {
	out := fileAnnots{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//suv:")
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(text, " ")
			// A follow-on comment ("//suv:x reason // note") is not part
			// of the justification.
			reason, _, _ = strings.Cut(reason, "//")
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], directive{
				name:   strings.TrimSpace(name),
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// suppressed reports whether a finding at pos is covered by a `name`
// directive on the same line or the line directly above. Directives
// without a justification do not suppress; instead they are themselves
// reported (once, at the directive) so that every annotation in the
// tree carries an auditable reason. Either way the directive did work
// this pass, so it is marked used for stalesuppress.
func (fa fileAnnots) suppressed(pass *xanalysis.Pass, use *annotUse, pos token.Pos, name string) bool {
	line := pass.Fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range fa[l] {
			if d.name != name {
				continue
			}
			use.mark(d.pos)
			if d.reason == "" {
				pass.Reportf(d.pos, "//suv:%s annotation requires a justification (write //suv:%s <reason>)", name, name)
				continue
			}
			return true
		}
	}
	return false
}

// funcHotPath reports whether decl's doc comment carries //suv:hotpath,
// and marks the directive used (it armed the hot-path check for this
// function) when it does.
func funcHotPath(decl *ast.FuncDecl, use *annotUse) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, "//suv:hotpath") {
			use.mark(c.Pos())
			return true
		}
	}
	return false
}

// isTestFile reports whether file was parsed from a _test.go file; the
// determinism and allocation contracts bind simulator code, not tests.
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.File(file.Pos()).Name(), "_test.go")
}
