// Package analysis implements suvlint, the repo's static-analysis
// suite. It enforces at compile/review time the three properties the
// test suite can only probe at runtime:
//
//   - bit-identical replay: every simulated run must be a pure function
//     of (config, seed). detmap bans non-deterministic map iteration in
//     the deterministic core; wallclock bans host state (wall-clock
//     time, global rand, environment) inside the simulated machine.
//   - allocation-free hot paths: hotalloc turns the runtime
//     AllocsPerRun==0 probes into per-construct diagnostics for every
//     function annotated //suv:hotpath.
//   - enum exhaustiveness: exhaustive requires switches over the repo's
//     enum-like types (cache-line states, fault kinds, redirect states,
//     trace kinds, ...) to cover every declared constant or carry a
//     default that panics.
//   - the LocalPeeker purity contract: peekpure proves, over ssalite
//     single-assignment effect summaries with interprocedural isPure
//     facts, that every PeekLoad/PeekStore/PeekDirOp method performs no
//     observable mutation — the property the parallel window engine's
//     chain certification silently depends on.
//   - suppression hygiene: stalesuppress cross-references every //suv:
//     directive against the findings it suppressed or the checks it
//     armed this run, and flags annotations that no longer do anything
//     (plus unknown directive names).
//
// The analyzers are built on golang.org/x/tools/go/analysis and run
// under "go vet -vettool" via cmd/suvlint (which also self-drives, so
// "go run ./cmd/suvlint ./..." works directly).
//
// # Annotations
//
// Findings are suppressed by //suv: line directives, each of which must
// carry a justification (the analyzers reject bare annotations, so
// every suppression is auditable):
//
//	//suv:orderinsensitive <why order cannot leak into simulated state>
//	//suv:allocok <why this allocation is acceptable on the hot path>
//	//suv:nonexhaustive <why this switch intentionally ignores values>
//	//suv:peekimpure <why this mutation cannot be observed via a peek>
//	//suv:hotpath          (on a function doc comment; enables hotalloc)
//
// A suppression directive applies to the source line it sits on or the
// line directly below it. An annotation that stops matching any finding
// is itself a finding (stalesuppress), so the set in tree cannot rot.
package analysis

import (
	"strings"

	xanalysis "golang.org/x/tools/go/analysis"
)

// Analyzers returns the full suvlint suite in a stable order.
func Analyzers() []*xanalysis.Analyzer {
	return []*xanalysis.Analyzer{
		DetMapAnalyzer,
		WallClockAnalyzer,
		HotAllocAnalyzer,
		ExhaustiveAnalyzer,
		PeekPureAnalyzer,
		StaleSuppressAnalyzer,
	}
}

// detCorePkgs lists the deterministic core: every package whose
// behaviour is part of the simulated machine state or of canonical
// outputs derived from it (runcache fingerprints, experiments
// rendering). Map-iteration order in these packages can silently break
// bit-identical replay, poison run-cache keys, or scramble golden
// tables, so detmap patrols them.
var detCorePkgs = []string{
	"suvtm/internal/sim",
	"suvtm/internal/bank",
	"suvtm/internal/mem",
	"suvtm/internal/coherence",
	"suvtm/internal/interconnect",
	"suvtm/internal/redirect",
	"suvtm/internal/signature",
	"suvtm/internal/htm",
	"suvtm/internal/parrun",
	"suvtm/internal/forensics",
	"suvtm/internal/workload",
	"suvtm/internal/runcache",
	"suvtm/internal/experiments",
}

// hostStateExemptPkgs lists the packages allowed to touch host state
// (wall-clock time, environment, global rand): the host profiler, the
// run cache's disk tier, the suvd daemon (HTTP timeouts, retry backoff,
// and request latency are host-side concerns by construction), and the
// suvlint tooling itself. Everything else under suvtm/internal is part
// of the simulated machine and must derive all state from
// (config, seed, cycle count).
var hostStateExemptPkgs = []string{
	"suvtm/internal/hostprof",
	"suvtm/internal/runcache",
	"suvtm/internal/suvd",
	"suvtm/internal/analysis",
}

func inDetCore(path string) bool { return inPkgSet(path, detCorePkgs) }

func inSimulatedMachine(path string) bool {
	if !strings.HasPrefix(path, "suvtm/internal/") {
		return false
	}
	return !inPkgSet(path, hostStateExemptPkgs)
}

func inPkgSet(path string, set []string) bool {
	for _, p := range set {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
