package analysis_test

import (
	"testing"

	"suvtm/internal/analysis"
	"suvtm/internal/analysis/analyzertest"
)

// Each analyzer runs over a testdata package type-checked under an
// import path chosen to land inside (or outside) the analyzer's scope,
// with expectations expressed as analysistest-style `// want` comments:
// positive findings, annotation suppressions, and clean-code negatives
// live side by side in the fixtures.

func TestDetMapCore(t *testing.T) {
	analyzertest.Run(t, "testdata/detmap/core", "suvtm/internal/sim", analysis.DetMapAnalyzer)
}

func TestDetMapOutsideCore(t *testing.T) {
	analyzertest.Run(t, "testdata/detmap/outside", "suvtm/internal/metrics", analysis.DetMapAnalyzer)
}

// TestDetMapParrun pins the parallel runner's membership in the
// deterministic core: a worker-results merge folded in map-iteration
// order is a goroutine-order dependence (it breaks the window engine's
// bit-identity guarantee), and the fixture shows both the firing shape
// and the canonical-order fixes that pass.
func TestDetMapParrun(t *testing.T) {
	analyzertest.Run(t, "testdata/detmap/parrun", "suvtm/internal/parrun", analysis.DetMapAnalyzer)
}

// TestDetMapBank pins the line→bank map's membership in the
// deterministic core: the banked directory and L2 promise bit-identical
// stats merges for every bank count, which holds only while per-bank
// state is visited in bank-ID order — never map-iteration order.
func TestDetMapBank(t *testing.T) {
	analyzertest.Run(t, "testdata/detmap/bank", "suvtm/internal/bank", analysis.DetMapAnalyzer)
}

func TestWallClockMachine(t *testing.T) {
	analyzertest.Run(t, "testdata/wallclock/machine", "suvtm/internal/htm", analysis.WallClockAnalyzer)
}

func TestWallClockExempt(t *testing.T) {
	analyzertest.Run(t, "testdata/wallclock/exempt", "suvtm/internal/hostprof", analysis.WallClockAnalyzer)
}

// TestWallClockSuvdExempt pins the daemon's exemption: suvd is host-side
// infrastructure (HTTP timeouts, retry backoff, latency histograms), so
// the same host-state sources that fire inside the machine are clean
// when the package is type-checked as suvtm/internal/suvd.
func TestWallClockSuvdExempt(t *testing.T) {
	diags := analyzertest.Diagnostics(t, "testdata/wallclock/machine", "suvtm/internal/suvd", analysis.WallClockAnalyzer)
	if len(diags) != 0 {
		t.Fatalf("wallclock fired in exempt suvtm/internal/suvd: %v", diags)
	}
}

// TestWallClockSuvdExemptionDoesNotLeak proves the simulated core stays
// patrolled around the suvd carve-out: the exemption is an exact path
// prefix, so sibling simulator packages still get findings.
func TestWallClockSuvdExemptionDoesNotLeak(t *testing.T) {
	for _, pkg := range []string{"suvtm/internal/sim", "suvtm/internal/experiments", "suvtm/internal/suvdx"} {
		diags := analyzertest.Diagnostics(t, "testdata/wallclock/machine", pkg, analysis.WallClockAnalyzer)
		if len(diags) == 0 {
			t.Errorf("wallclock did not fire in %s — the suvd exemption leaked", pkg)
		}
	}
}

func TestHotAlloc(t *testing.T) {
	analyzertest.Run(t, "testdata/hotalloc/hot", "suvtm/internal/mem", analysis.HotAllocAnalyzer)
}

func TestExhaustive(t *testing.T) {
	analyzertest.Run(t, "testdata/exhaustive/enums", "suvtm/internal/mem", analysis.ExhaustiveAnalyzer)
}

// TestPeekPureScheme runs the purity certifier over a fake LocalPeeker
// package: receiver stores, map writes, impure callees, and dynamic
// calls fire; pure helpers, fresh-allocation scratch space, and
// justified //suv:peekimpure escapes stay silent.
func TestPeekPureScheme(t *testing.T) {
	analyzertest.Run(t, "testdata/peekpure/scheme", "suvtm/internal/htm/fakescheme", analysis.PeekPureAnalyzer)
}

// TestPeekPureFactsCrossPackage pins the interprocedural half of the
// contract: a helper proven pure in suvtm/internal/simx certifies a
// downstream Peek* caller through an exported isPure fact, while the
// helper that mutates package state stays uncertifiable.
func TestPeekPureFactsCrossPackage(t *testing.T) {
	analyzertest.RunPkgs(t, analysis.PeekPureAnalyzer,
		analyzertest.Pkg{Dir: "testdata/peekpure/helpers", Path: "suvtm/internal/simx"},
		analyzertest.Pkg{Dir: "testdata/peekpure/cross", Path: "suvtm/internal/htm/crossscheme"},
	)
}

// TestPeekPureScopeIsModuleSensitive pins that the contract binds this
// module only: the same violating sources are clean outside suvtm.
func TestPeekPureScopeIsModuleSensitive(t *testing.T) {
	diags := analyzertest.Diagnostics(t, "testdata/peekpure/scheme", "example.com/other", analysis.PeekPureAnalyzer)
	if len(diags) != 0 {
		t.Fatalf("peekpure fired outside the suvtm module: %v", diags)
	}
}

// TestStaleSuppress runs the suppression-hygiene analyzer over a
// deterministic-core fixture where live suppressions and armed
// //suv:hotpath annotations stay silent while refactored-away and
// unknown directives fire.
func TestStaleSuppress(t *testing.T) {
	analyzertest.Run(t, "testdata/stalesuppress/pkg", "suvtm/internal/sim", analysis.StaleSuppressAnalyzer)
}

// TestSuiteArmsV2Analyzers is the canary for the v2 suite: the driver
// list cmd/suvlint feeds to both protocols must include peekpure and
// stalesuppress, and each must actually fire on its broken fixture —
// a tree-wide green run proves nothing if the analyzer silently
// stopped matching.
func TestSuiteArmsV2Analyzers(t *testing.T) {
	armed := map[string]bool{}
	for _, a := range analysis.Analyzers() {
		armed[a.Name] = true
	}
	for _, name := range []string{"detmap", "wallclock", "hotalloc", "exhaustive", "peekpure", "stalesuppress"} {
		if !armed[name] {
			t.Errorf("analyzer %s missing from the suvlint suite", name)
		}
	}
	if n := len(analyzertest.Diagnostics(t, "testdata/peekpure/scheme", "suvtm/internal/htm/fakescheme", analysis.PeekPureAnalyzer)); n == 0 {
		t.Error("peekpure canary did not fire on the broken scheme fixture")
	}
	if n := len(analyzertest.Diagnostics(t, "testdata/stalesuppress/pkg", "suvtm/internal/sim", analysis.StaleSuppressAnalyzer)); n == 0 {
		t.Error("stalesuppress canary did not fire on the stale-annotation fixture")
	}
}

// TestDetMapScopeIsPackagePathSensitive pins the scope predicate: the
// same sources that fire inside suvtm/internal/sim are clean when the
// package sits outside the deterministic core.
func TestDetMapScopeIsPackagePathSensitive(t *testing.T) {
	diags := analyzertest.Diagnostics(t, "testdata/detmap/core", "suvtm/internal/hostprof", analysis.DetMapAnalyzer)
	if len(diags) != 0 {
		t.Fatalf("detmap fired outside the deterministic core: %v", diags)
	}
}

// TestWallClockScopeCoversWholeMachine pins that non-exempt simulator
// packages beyond the detmap core list (e.g. metrics) are still banned
// from host state.
func TestWallClockScopeCoversWholeMachine(t *testing.T) {
	diags := analyzertest.Diagnostics(t, "testdata/wallclock/machine", "suvtm/internal/metrics", analysis.WallClockAnalyzer)
	if len(diags) == 0 {
		t.Fatal("wallclock did not fire in suvtm/internal/metrics")
	}
}
