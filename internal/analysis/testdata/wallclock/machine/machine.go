// Package machine exercises wallclock inside the simulated machine
// (type-checked as suvtm/internal/htm).
package machine

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func readsHostClock() int64 {
	t := time.Now() // want `time.Now is banned`
	return t.Unix()
}

func measuresHostDuration(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since is banned`
}

func readsEnvironment() string {
	return os.Getenv("SUVTM_MODE") // want `os.Getenv is banned`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand.Intn is banned`
}

func globalRandV2() uint64 {
	return randv2.Uint64() // want `math/rand/v2.Uint64 is banned`
}

func seededSourceIsFine(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicit seedable source: no finding
	return r.Intn(10)                   // method on *rand.Rand: no finding
}

func cycleArithmeticIsFine(cycles uint64) time.Duration {
	return time.Duration(cycles) * time.Nanosecond // no host clock read
}
