// Package exempt exercises wallclock in an exempt package
// (type-checked as suvtm/internal/hostprof): host state is allowed.
package exempt

import (
	"os"
	"time"
)

func hostProfilingMayUseTheClock() (time.Time, string) {
	return time.Now(), os.Getenv("SUVTM_PROFILE") // exempt package: no finding
}
