// Package hot exercises hotalloc on annotated and un-annotated
// functions.
package hot

import "fmt"

type pair struct{ a, b int }

type sink interface{ accept() }

func (pair) accept() {}

func consume(s sink)    { s.accept() }
func consumeAny(v any)  { _ = v }
func consumePtr(p *int) { _ = p }

// lookup is the annotated hot path; every allocating construct in it
// is a finding.
//
//suv:hotpath
func lookup(keys []uint64, key uint64) int {
	for i, k := range keys {
		if k == key {
			return i
		}
	}
	msg := fmt.Sprintf("missing %d", key) // want `fmt.Sprintf allocates`
	_ = msg
	return -1
}

//suv:hotpath
func buildThings(n int, name string, b []byte) {
	s := []int{1, 2, 3} // want `slice literal allocates`
	_ = s
	m := map[int]int{} // want `map literal allocates`
	_ = m
	p := &pair{1, 2} // want `&hot.pair composite literal escapes`
	_ = p
	q := new(pair) // want `new\(hot.pair\) allocates`
	_ = q
	t := make([]int, n) // want `make allocates`
	_ = t
	label := name + "!" // want `string concatenation allocates`
	_ = label
	str := string(b) // want `string\(\[\]byte\) conversion copies`
	_ = str
}

//suv:hotpath
func appends(n int) []int {
	var grown []int
	for i := 0; i < n; i++ {
		grown = append(grown, i) // want `append to un-presized slice grown`
	}
	presized := make([]int, 0, 8) // want `make allocates`
	for i := 0; i < n; i++ {
		presized = append(presized, i) // presized: append itself not flagged
	}
	return presized
}

//suv:hotpath
func boxes(x pair, p *int) {
	consume(x)     // want `concrete hot.pair converted to interface hot.sink may allocate`
	consumeAny(7)  // constants fold: no finding
	consumePtr(p)  // pointer arg, pointer param: no finding
	consumeAny(p)  // pointers ride in the interface word: no finding
	var s sink = x // assignments are not flagged (rare on hot paths)
	_ = s
}

//suv:hotpath
func closures() func() int {
	n := 0
	f := func() int { n++; return n } // want `func literal allocates a closure`
	return f
}

//suv:hotpath
func justified() []int {
	//suv:allocok grow is amortized; table doubles at 3/4 load
	out := make([]int, 0, 4)
	return out
}

// coldPath is not annotated: nothing is flagged.
func coldPath() string {
	return fmt.Sprintf("%v", []int{1, 2, 3})
}
