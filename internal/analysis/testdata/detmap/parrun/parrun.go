// Package parrun exercises detmap over the parallel-runner idioms (the
// harness type-checks it as suvtm/internal/parrun): worker results must
// merge in a canonical order, and the natural-but-wrong shape — folding
// a results map in range order — is exactly a goroutine-order dependence
// detmap exists to catch.
package parrun

import (
	"maps"
	"slices"
)

// mergeByMapOrder is the bug: each worker deposits its result under its
// shard key and the merge folds them in map-iteration order. The fold
// below is order-sensitive (min ties broken by whoever came first), so
// two runs of the same simulation can disagree.
func mergeByMapOrder(results map[int]uint64) (first uint64) {
	for _, r := range results { // want `range over map in deterministic core`
		if first == 0 || r < first {
			first = r
		}
	}
	return first
}

// mergeUnsortedKeys is the same bug via the iterator helpers.
func mergeUnsortedKeys(results map[int]uint64) []uint64 {
	out := make([]uint64, 0, len(results))
	for _, k := range slices.Collect(maps.Keys(results)) { // want `maps.Keys in deterministic core`
		out = append(out, results[k])
	}
	return out
}

// mergeByShardIndex is the fix the window engine uses: results land in
// a slice indexed by shard, and the merge walks indices ascending — the
// canonical order exists by construction, no sort needed.
func mergeByShardIndex(results []uint64) (first uint64) {
	for _, r := range results { // slices are ordered: no finding
		if first == 0 || r < first {
			first = r
		}
	}
	return first
}

// mergeSortedKeys is the acceptable map-shaped fix: sort the keys
// before folding.
func mergeSortedKeys(results map[int]uint64) []uint64 {
	out := make([]uint64, 0, len(results))
	for _, k := range slices.Sorted(maps.Keys(results)) { // immediately sorted: no finding
		out = append(out, results[k])
	}
	return out
}
