// Package bank exercises detmap over the directory/L2 banking idioms
// (the harness type-checks it as suvtm/internal/bank): per-bank state
// must always be visited in bank-ID order — the banked structures
// promise bit-identical stats merges for every bank count, and a
// map-ordered walk over bank state is exactly the silent way to break
// that promise.
package bank

import (
	"maps"
	"slices"
)

// mergeStatsByMapOrder is the bug: per-bank counters keyed by bank ID,
// folded in map-iteration order. The fold is order-sensitive (first
// nonzero bank wins the tiebreak), so the merged stats — and any
// fingerprint over them — can differ between two identical runs.
func mergeStatsByMapOrder(perBank map[int]uint64) (first uint64) {
	for _, v := range perBank { // want `range over map in deterministic core`
		if first == 0 {
			first = v
		}
	}
	return first
}

// claimOrderFromMap is the same bug feeding the window certifier: bank
// claims collected from a map in iteration order would make the
// certified/fallback decision depend on runtime hash seeds.
func claimOrderFromMap(claims map[int]bool) []int {
	out := make([]int, 0, len(claims))
	for _, b := range slices.Collect(maps.Keys(claims)) { // want `maps.Keys in deterministic core`
		if claims[b] {
			out = append(out, b)
		}
	}
	return out
}

// mergeStatsByBankID is the fix the banked directory and L2 use: bank
// state lives in a slice indexed by bank ID and every merge walks it
// ascending — the canonical order exists by construction.
func mergeStatsByBankID(perBank []uint64) (total uint64) {
	for _, v := range perBank { // slices are ordered: no finding
		total += v
	}
	return total
}

// claimOrderSorted is the acceptable map-shaped fix: sort the bank IDs
// before deciding anything.
func claimOrderSorted(claims map[int]bool) []int {
	out := make([]int, 0, len(claims))
	for _, b := range slices.Sorted(maps.Keys(claims)) { // immediately sorted: no finding
		if claims[b] {
			out = append(out, b)
		}
	}
	return out
}
