// Package core exercises detmap inside a deterministic-core import
// path (the harness type-checks it as suvtm/internal/sim).
package core

import (
	"maps"
	"slices"
)

func rangesOverMap(m map[uint64]int) int {
	sum := 0
	for k, v := range m { // want `range over map in deterministic core`
		sum += int(k) + v
	}
	return sum
}

func rangesOverSlice(s []int) int {
	sum := 0
	for _, v := range s { // slices are ordered: no finding
		sum += v
	}
	return sum
}

func unsortedKeys(m map[uint64]int) []uint64 {
	return slices.Collect(maps.Keys(m)) // want `maps.Keys in deterministic core`
}

func sortedKeys(m map[uint64]int) []uint64 {
	return slices.Sorted(maps.Keys(m)) // immediately sorted: no finding
}

func annotatedRange(m map[uint64]int) int {
	sum := 0
	//suv:orderinsensitive integer addition commutes; no simulated state observes order
	for k := range m {
		sum += int(k)
	}
	return sum
}

func annotatedWithoutReason(m map[uint64]int) int {
	sum := 0
	//suv:orderinsensitive // want `annotation requires a justification`
	for k := range m { // want `range over map in deterministic core`
		sum += int(k)
	}
	return sum
}
