// Package outside exercises detmap outside the deterministic core
// (type-checked as suvtm/internal/metrics): map iteration is allowed.
package outside

func rangesOverMapFreely(m map[string]int) int {
	sum := 0
	for _, v := range m { // not in the deterministic core: no finding
		sum += v
	}
	return sum
}
