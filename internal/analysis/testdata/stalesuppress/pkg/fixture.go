// Package fixture exercises stale-suppression detection under the
// deterministic-core import path suvtm/internal/sim: live suppressions
// and armed //suv:hotpath annotations stay silent, while directives
// whose construct was refactored away — and unknown directive names —
// are findings.
package fixture

// stats maps counter names to values.
var stats = map[string]int{}

// Sum folds the counters; addition commutes, so the suppression below
// is live (it suppresses a real detmap finding) and must not be
// flagged stale.
func Sum() int {
	total := 0
	//suv:orderinsensitive addition commutes; iteration order cannot reach output
	for _, v := range stats {
		total += v
	}
	return total
}

// Reset carries a suppression that no longer matches anything: the map
// range it once justified was refactored into a clear().
func Reset() {
	//suv:orderinsensitive the range this justified is gone // want `stale //suv:orderinsensitive annotation`
	clear(stats)
}

// Tight is allocation-free now, so its old suppression is dead.
func Tight() int {
	//suv:allocok the interface boxing this justified was removed // want `stale //suv:allocok annotation`
	return 1
}

//suv:hotpath
func Inc(k string) {
	stats[k]++
}

//suv:hotpath // want `stale //suv:hotpath annotation`

// floating: the blank line above detaches the directive from any
// function, so it arms nothing.
var generation int

//suv:frobnicate tuned for speed // want `unknown //suv:frobnicate directive`
func Frob() {
	generation++
}
