// Package enums exercises the exhaustive analyzer.
package enums

type Color uint8

const (
	Red Color = iota
	Green
	Blue
)

// Crimson aliases Red's value; covering Red covers it.
const Crimson Color = 0

type Mode string

const (
	Eager Mode = "eager"
	Lazy  Mode = "lazy"
)

// plain is not enum-like (no constants of the type): never flagged.
type plain int

func covered(c Color) int {
	switch c {
	case Red:
		return 0
	case Green:
		return 1
	case Blue:
		return 2
	}
	return -1
}

func missingCase(c Color) int {
	switch c { // want `switch over enums.Color is not exhaustive: missing Blue`
	case Red, Green:
		return 0
	}
	return -1
}

func swallowingDefault(c Color) int {
	switch c { // want `missing Green.*default silently swallows`
	case Red, Blue:
		return 0
	default:
		return -1
	}
}

func panickingDefault(c Color) int {
	switch c {
	case Red:
		return 0
	default:
		panic("unknown color") // loud default: no finding
	}
}

func annotated(c Color) int {
	//suv:nonexhaustive only Red matters to this probe; others are counted elsewhere
	switch c {
	case Red:
		return 0
	}
	return -1
}

func stringEnum(m Mode) int {
	switch m { // want `switch over enums.Mode is not exhaustive: missing Lazy`
	case Eager:
		return 0
	}
	return -1
}

func nonEnum(p plain) int {
	switch p { // no constants of type plain: no finding
	case 1:
		return 1
	}
	return 0
}

func nonConstantCase(c Color, dynamic Color) int {
	switch c { // non-constant case: analyzer stays silent
	case dynamic:
		return 1
	}
	return 0
}
