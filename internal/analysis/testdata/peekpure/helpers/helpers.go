// Package simx is the upstream half of the cross-package fact fixture:
// peekpure analyzes it first, proves Mask pure, and exports an isPure
// fact; Record mutates package state and gets none. The downstream
// scheme package then certifies against those facts exactly as the
// unitchecker driver propagates them between vet runs.
package simx

// Mask is read-only arithmetic: proven pure, fact exported.
func Mask(line uint64) uint64 {
	return line & 0x3f
}

// total is package state; writing it is an observable effect.
var total int

// Record mutates a global: never certified.
func Record(line uint64) uint64 {
	total++
	return line
}
