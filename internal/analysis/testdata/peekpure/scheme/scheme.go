// Package fakescheme exercises the peekpure purity contract: methods
// named PeekLoad/PeekStore/PeekDirOp must be observably side-effect
// free, everything else may mutate freely. Positives, justified and
// bare //suv:peekimpure annotations, and clean shapes (pure helpers,
// fresh local allocation) live side by side.
package fakescheme

// Core mirrors the shape of the per-core state a scheme peeks.
type Core struct {
	ID   int
	hits int
}

// VM is a fake LocalPeeker implementation.
type VM struct {
	logged map[uint64]bool
	stats  [4]int
}

// pureHelper only reads; the fixpoint certifies it, so PeekLoad below
// stays clean.
func pureHelper(v *VM, line uint64) bool {
	return v.logged[line]
}

// PeekLoad calling a certified-pure helper is clean.
func (v *VM) PeekLoad(c *Core, line uint64) bool {
	return pureHelper(v, line)
}

// PeekStore mutates receiver state: the canonical violation.
func (v *VM) PeekStore(c *Core, line uint64) bool {
	v.stats[1]++ // want `PeekStore stores to v\.stats`
	return false
}

// PeekDirOp writes a map reachable from the receiver.
func (v *VM) PeekDirOp(c *Core, line uint64) bool {
	v.logged[line] = true // want `PeekDirOp writes map v\.logged`
	return true
}

// StoreLocal is not bound by the contract: mutation is fine here.
func (v *VM) StoreLocal(c *Core, line uint64) {
	v.stats[2]++
	c.hits++
}

// VM2 exercises the interprocedural direction inside one package.
type VM2 struct {
	st [2]int
}

func impureHelper(v *VM2) {
	v.st[0]++
}

// PeekLoad is flagged because its callee mutates, even though this
// body contains no store of its own.
func (v *VM2) PeekLoad(c *Core, line uint64) bool {
	impureHelper(v) // want `PeekLoad calls impureHelper, which stores to v\.st`
	return true
}

// PeekStore is clean: every write lands in memory this call allocated
// (fresh make/composite-literal provenance), so nothing is observable
// after it returns.
func (v *VM2) PeekStore(c *Core, line uint64) bool {
	scratch := make([]uint64, 0, 4)
	scratch = append(scratch, line)
	seen := map[uint64]bool{}
	seen[line] = true
	return len(scratch) == 1 && seen[line]
}

// VM3 exercises the escape hatch and dynamic dispatch.
type VM3 struct {
	prof [8]uint64
	fn   func(uint64) bool
}

// PeekStore carries a justified escape: suppressed, and the annotation
// counts as used for stalesuppress.
func (v *VM3) PeekStore(c *Core, line uint64) bool {
	//suv:peekimpure per-core scratch counter is invisible to simulated state and reset each window
	v.prof[0]++
	return false
}

// PeekDirOp carries a bare escape: it does not suppress, and is itself
// reported.
func (v *VM3) PeekDirOp(c *Core, line uint64) bool {
	//suv:peekimpure // want `//suv:peekimpure annotation requires a justification`
	v.prof[1]++ // want `PeekDirOp stores to v\.prof`
	return true
}

// PeekLoad through a function value cannot be certified statically.
func (v *VM3) PeekLoad(c *Core, line uint64) bool {
	f := v.fn
	return f(line) // want `PeekLoad calls f through a function value`
}
