// Package crossscheme is the downstream half of the cross-package fact
// fixture: its Peek* methods call helpers from suvtm/internal/simx,
// and certification hinges entirely on the isPure facts exported when
// that package was analyzed.
package crossscheme

import "suvtm/internal/simx"

type Core struct {
	ID int
}

type VM struct {
	bits uint64
}

// PeekLoad leans on a helper proven pure in another package: the
// imported fact certifies it, so this stays clean.
func (v *VM) PeekLoad(c *Core, line uint64) bool {
	return v.bits&(1<<simx.Mask(line)) != 0
}

// PeekStore calls the helper that mutates package state upstream; no
// fact was exported for it, so the call cannot be certified.
func (v *VM) PeekStore(c *Core, line uint64) bool {
	return simx.Record(line) != 0 // want `PeekStore calls simx\.Record, which is not proven side-effect-free`
}
