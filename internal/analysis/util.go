package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the static callee of call, or nil for calls
// through function values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeIsPkgFunc reports whether call statically resolves to a
// package-level function of the package with the given import path.
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (name string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", false
	}
	return fn.Name(), true
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
