package analysis_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSuvlintTreeIsFindingFree builds cmd/suvlint and runs it (via
// go vet -vettool, exactly as CI does) over the whole module: the tree
// must stay finding-free, so any new map iteration in the deterministic
// core, host-state read in the simulated machine, allocation on an
// annotated hot path, or non-exhaustive enum switch fails tier-1 here
// even when no runtime probe happens to exercise it.
func TestSuvlintTreeIsFindingFree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping whole-tree lint (builds and vets every package)")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "suvlint")

	build := exec.Command("go", "build", "-o", tool, "./cmd/suvlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building suvlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("suvlint reported findings (or failed): %v\n%s", err, out)
	}

	// The -json mode must emit well-formed JSON so CI annotation
	// tooling can consume findings; on a clean tree it is a stream of
	// empty per-package objects.
	vetJSON := exec.Command("go", "vet", "-vettool="+tool, "-json", "./internal/sim/")
	vetJSON.Dir = root
	out, err := vetJSON.Output()
	if err != nil {
		t.Fatalf("suvlint -json: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var per map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&per); err != nil {
			t.Fatalf("suvlint -json emitted malformed JSON: %v\n%s", err, out)
		}
		for pkg, byAnalyzer := range per {
			for analyzer, findings := range byAnalyzer {
				if len(findings) > 0 {
					t.Errorf("unexpected %s findings in %s: %+v", analyzer, pkg, findings)
				}
			}
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			t.Fatalf("no go.mod above %s", wd)
		}
	}
}
