package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"suvtm/internal/analysis/ssalite"

	xanalysis "golang.org/x/tools/go/analysis"
)

// isPure is the analyzer fact exported for every function proven
// observably side-effect-free, so purity crosses package boundaries:
// suvtm/internal/sim, signature, redirect, and htm helpers certified
// there let the scheme packages' Peek* methods certify here.
type isPure struct{}

func (*isPure) AFact()         {}
func (*isPure) String() string { return "pure" }

// peekMethods names the htm.LocalPeeker methods bound by the purity
// contract: the parallel window engine calls them during certification
// and relies on replaying the same access later producing the same
// result, which only holds if peeking mutated nothing.
var peekMethods = map[string]bool{
	"PeekLoad":  true,
	"PeekStore": true,
	"PeekDirOp": true,
}

// pureStdPkgs is a tiny allowlist of std packages whose exported
// functions are side-effect-free by construction; no facts exist for
// std, so calls into these are accepted without proof. Kept minimal on
// purpose — peek chains should not grow std dependencies casually.
var pureStdPkgs = map[string]bool{
	"math/bits": true,
}

// PeekPureAnalyzer certifies the LocalPeeker purity contract: every
// method named PeekLoad/PeekStore/PeekDirOp must perform no observable
// mutation — no stores to the receiver, *Machine, *Core, or any heap
// state reachable from them; no map/slice/channel writes; no calls to
// functions not themselves proven pure. The proof is interprocedural:
// an optimistic fixpoint over the ssalite effect summaries inside each
// package, with isPure facts carrying certification across package
// boundaries in dependency order.
var PeekPureAnalyzer = &xanalysis.Analyzer{
	Name: "peekpure",
	Doc: "certify LocalPeeker Peek* methods observably side-effect-free\n\n" +
		"The parallel window engine certifies core-local chains by peeking\n" +
		"the scheme (PeekLoad/PeekStore/PeekDirOp) and replaying the access\n" +
		"later; any mutation during the peek silently breaks bit-identical\n" +
		"replay. This analyzer proves the peek call graph mutation-free via\n" +
		"ssalite effect summaries and cross-package isPure facts. Escape a\n" +
		"deliberate impurity with //suv:peekimpure <reason>.",
	Requires:   []*xanalysis.Analyzer{ssalite.Analyzer},
	FactTypes:  []xanalysis.Fact{(*isPure)(nil)},
	ResultType: annotUseType,
	Run:        runPeekPure,
}

func runPeekPure(pass *xanalysis.Pass) (any, error) {
	use := newAnnotUse()
	if p := pass.Pkg.Path(); p != "suvtm" && !strings.HasPrefix(p, "suvtm/") {
		return use, nil // the contract binds this module, not dependencies
	}
	spkg := pass.ResultOf[ssalite.Analyzer].(*ssalite.Pkg)

	posLabel := func(p token.Pos) string {
		pp := pass.Fset.Position(p)
		return fmt.Sprintf("%s:%d", filepath.Base(pp.Filename), pp.Line)
	}

	// calleeOK resolves a call edge that does not land on an analyzed
	// function of this package: std allowlist or an imported isPure fact.
	calleeOK := func(fn *types.Func) bool {
		if fn.Pkg() != nil && pureStdPkgs[fn.Pkg().Path()] {
			return true
		}
		return pass.ImportObjectFact(fn, &isPure{})
	}

	// Optimistic fixpoint: every function starts presumed pure; direct
	// effects and calls to impure callees knock functions out until the
	// impure set stops growing. reason records the first cause, for the
	// diagnostic on Peek* methods.
	impure := map[*ssalite.Func]string{}
	for changed := true; changed; {
		changed = false
		for _, f := range spkg.Funcs {
			if _, bad := impure[f]; bad {
				continue
			}
			if r := impureCause(spkg, impure, calleeOK, posLabel, f); r != "" {
				impure[f] = r
				changed = true
			}
		}
	}

	// Export facts for this package's proven-pure functions so
	// downstream packages can lean on them.
	for _, f := range spkg.Funcs {
		if _, bad := impure[f]; !bad {
			pass.ExportObjectFact(f.Obj, &isPure{})
		}
	}

	// Diagnostics: only Peek* methods are bound by the contract; every
	// root cause inside one is reported (or suppressed) individually so
	// a single //suv:peekimpure covers exactly one mutation site.
	annotsByFile := map[*ast.File]fileAnnots{}
	for _, f := range spkg.Funcs {
		if f.Decl.Recv == nil || !peekMethods[f.Decl.Name.Name] {
			continue
		}
		if _, bad := impure[f]; !bad {
			continue
		}
		file := enclosingFile(pass, f.Decl.Pos())
		if file == nil || isTestFile(pass.Fset, file) {
			continue
		}
		annots, ok := annotsByFile[file]
		if !ok {
			annots = collectAnnots(pass.Fset, file)
			annotsByFile[file] = annots
		}
		method := f.Decl.Name.Name
		for _, e := range f.Effects {
			if annots.suppressed(pass, use, e.Pos, "peekimpure") {
				continue
			}
			pass.Reportf(e.Pos, "%s %s (htm.LocalPeeker contract: peeks must be observably side-effect-free; make the mutation unreachable or annotate //suv:peekimpure <reason>)",
				method, e.Desc)
		}
		for _, c := range f.Calls {
			r, bad := calleeImpure(spkg, impure, calleeOK, c)
			if !bad {
				continue
			}
			if annots.suppressed(pass, use, c.Pos, "peekimpure") {
				continue
			}
			pass.Reportf(c.Pos, "%s calls %s (htm.LocalPeeker contract: peeks must be observably side-effect-free; certify the callee or annotate //suv:peekimpure <reason>)",
				method, r)
		}
	}
	return use, nil
}

// impureCause returns the first reason f is impure, or "" while it can
// still be presumed pure.
func impureCause(spkg *ssalite.Pkg, impure map[*ssalite.Func]string, calleeOK func(*types.Func) bool, posLabel func(token.Pos) string, f *ssalite.Func) string {
	if len(f.Effects) > 0 {
		e := f.Effects[0]
		return fmt.Sprintf("%s at %s", e.Desc, posLabel(e.Pos))
	}
	for _, c := range f.Calls {
		if r, bad := calleeImpure(spkg, impure, calleeOK, c); bad {
			return fmt.Sprintf("calls %s at %s", r, posLabel(c.Pos))
		}
	}
	return ""
}

// calleeImpure classifies one static call edge against the current
// fixpoint state: in-package callees by their summary, cross-package
// callees by fact or allowlist.
func calleeImpure(spkg *ssalite.Pkg, impure map[*ssalite.Func]string, calleeOK func(*types.Func) bool, c ssalite.Call) (string, bool) {
	if g, ok := spkg.ByObj[c.Callee]; ok {
		if r, bad := impure[g]; bad {
			return fmt.Sprintf("%s, which %s", c.Callee.Name(), r), true
		}
		return "", false
	}
	if calleeOK(c.Callee) {
		return "", false
	}
	return fmt.Sprintf("%s, which is not proven side-effect-free", qualifiedFuncName(c.Callee)), true
}

func qualifiedFuncName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return fmt.Sprintf("(%s).%s", typeLabel(recv.Type()), fn.Name())
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// enclosingFile finds the *ast.File containing pos.
func enclosingFile(pass *xanalysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
