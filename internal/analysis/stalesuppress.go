package analysis

import (
	"go/token"
	"sort"
	"strings"

	xanalysis "golang.org/x/tools/go/analysis"
)

// knownAnnots lists every directive the suite understands, mapped to
// the analyzer that consumes it. Anything else after //suv: is a typo
// that would otherwise silently suppress nothing forever.
var knownAnnots = map[string]string{
	"orderinsensitive": "detmap",
	"allocok":          "hotalloc",
	"nonexhaustive":    "exhaustive",
	"hotpath":          "hotalloc",
	"peekimpure":       "peekpure",
}

// StaleSuppressAnalyzer flags //suv: annotations that no longer do
// anything. Each suppression-consuming analyzer reports, via its pass
// result, the set of directives that suppressed a finding or armed a
// check during this run; a directive none of them touched is dead
// weight — the code it justified was refactored away, or the directive
// never matched in the first place — and silently rots the audit trail
// the justifications exist to provide. Because the accounting rides on
// analyzer results, it works identically under the unitchecker protocol
// (go vet -vettool) and the self-driving vet-tool mode of cmd/suvlint.
var StaleSuppressAnalyzer = &xanalysis.Analyzer{
	Name: "stalesuppress",
	Doc: "flag //suv: annotations that no longer suppress or arm anything\n\n" +
		"A //suv:orderinsensitive/allocok/nonexhaustive/peekimpure directive\n" +
		"must suppress at least one live finding, and //suv:hotpath must arm\n" +
		"hotalloc on a function; otherwise the annotation is stale — delete\n" +
		"it, or move it back next to the construct it justifies. Unknown\n" +
		"directive names are flagged as typos.",
	Requires: []*xanalysis.Analyzer{
		DetMapAnalyzer,
		HotAllocAnalyzer,
		ExhaustiveAnalyzer,
		PeekPureAnalyzer,
	},
	Run: runStaleSuppress,
}

func runStaleSuppress(pass *xanalysis.Pass) (any, error) {
	if p := pass.Pkg.Path(); p != "suvtm" && !strings.HasPrefix(p, "suvtm/") {
		return nil, nil // the contract binds this module, not dependencies
	}
	used := map[token.Pos]bool{}
	for _, res := range pass.ResultOf { // every required analyzer that reports usage
		if u, ok := res.(*annotUse); ok && u != nil {
			for pos := range u.used {
				used[pos] = true
			}
		}
	}

	names := make([]string, 0, len(knownAnnots))
	for name := range knownAnnots {
		names = append(names, name)
	}
	sort.Strings(names)
	known := strings.Join(names, ", ")

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		annots := collectAnnots(pass.Fset, file)
		lines := make([]int, 0, len(annots))
		for line := range annots {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, d := range annots[line] {
				consumer, ok := knownAnnots[d.name]
				if !ok {
					pass.Reportf(d.pos, "unknown //suv:%s directive suppresses nothing (known directives: %s)", d.name, known)
					continue
				}
				if !used[d.pos] {
					pass.Reportf(d.pos, "stale //suv:%s annotation: it no longer suppresses or arms any %s finding; delete it, or move it back next to the construct it justifies", d.name, consumer)
				}
			}
		}
	}
	return nil, nil
}
