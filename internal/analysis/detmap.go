package analysis

import (
	"go/ast"

	xanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetMapAnalyzer flags non-deterministic map iteration in the
// deterministic core. Go randomizes map iteration order per run, so a
// `range` over a map (or a maps.Keys/maps.Values sequence that is not
// immediately sorted) inside the simulated machine is the classic way
// to break bit-identical replay: the divergence only shows up as a
// mismatched golden digest or a poisoned runcache fingerprint long
// after the commit that introduced it.
var DetMapAnalyzer = &xanalysis.Analyzer{
	Name: "detmap",
	Doc: "flag map iteration in the deterministic core\n\n" +
		"Ranges over maps and unsorted maps.Keys/maps.Values calls in the\n" +
		"deterministic-core packages must either be rewritten over a sorted\n" +
		"key slice or carry //suv:orderinsensitive <reason> explaining why\n" +
		"iteration order cannot leak into simulated state or canonical output.",
	Requires:   []*xanalysis.Analyzer{inspect.Analyzer},
	ResultType: annotUseType,
	Run:        runDetMap,
}

func runDetMap(pass *xanalysis.Pass) (any, error) {
	use := newAnnotUse()
	if !inDetCore(pass.Pkg.Path()) {
		return use, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// maps.Keys/maps.Values results handed straight to slices.Sorted*
	// are deterministic; remember those call nodes so the CallExpr walk
	// below skips them.
	sortedArgs := map[ast.Node]bool{}
	nodeFilter := []ast.Node{(*ast.File)(nil), (*ast.RangeStmt)(nil), (*ast.CallExpr)(nil)}

	var annots fileAnnots
	var skipFile bool
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			skipFile = isTestFile(pass.Fset, n)
			if !skipFile {
				annots = collectAnnots(pass.Fset, n)
			}
		case *ast.RangeStmt:
			if skipFile || !isMapType(pass.TypesInfo.TypeOf(n.X)) {
				return
			}
			if annots.suppressed(pass, use, n.Pos(), "orderinsensitive") {
				return
			}
			pass.Reportf(n.Pos(), "range over map in deterministic core package %s: iteration order is randomized and can break bit-identical replay; iterate a sorted key slice or annotate //suv:orderinsensitive <reason>", pass.Pkg.Path())
		case *ast.CallExpr:
			if skipFile {
				return
			}
			if name, ok := calleeIsPkgFunc(pass.TypesInfo, n, "slices"); ok {
				switch name {
				case "Sorted", "SortedFunc", "SortedStableFunc":
					for _, arg := range n.Args {
						sortedArgs[ast.Unparen(arg)] = true
					}
				}
				return
			}
			name, ok := calleeIsPkgFunc(pass.TypesInfo, n, "maps")
			if !ok || (name != "Keys" && name != "Values") {
				return
			}
			if sortedArgs[n] || annots.suppressed(pass, use, n.Pos(), "orderinsensitive") {
				return
			}
			pass.Reportf(n.Pos(), "maps.%s in deterministic core package %s yields keys in randomized order; wrap in slices.Sorted or annotate //suv:orderinsensitive <reason>", name, pass.Pkg.Path())
		}
	})
	return use, nil
}
