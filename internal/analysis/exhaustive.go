package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	xanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ExhaustiveAnalyzer requires switches over the repo's enum-like types
// (coherence line states, HTM scheme modes, fault kinds, redirect
// entry states, trace kinds, ...) to cover every declared constant or
// to carry a default clause that panics. A silently-ignored new enum
// value is how "add a fault kind" or "add a line state" rots into a
// simulation that drops events without any test noticing.
var ExhaustiveAnalyzer = &xanalysis.Analyzer{
	Name: "exhaustive",
	Doc: "require switches over enum-like types to be exhaustive\n\n" +
		"A type is enum-like when it is a defined integer/string type with at\n" +
		"least two package-level constants. Switches over such a type must\n" +
		"either list every constant value, have a default that panics, or be\n" +
		"annotated //suv:nonexhaustive <reason>.",
	Requires:   []*xanalysis.Analyzer{inspect.Analyzer},
	ResultType: annotUseType,
	Run:        runExhaustive,
}

func runExhaustive(pass *xanalysis.Pass) (any, error) {
	use := newAnnotUse()
	if p := pass.Pkg.Path(); p != "suvtm" && !strings.HasPrefix(p, "suvtm/") {
		return use, nil // the contract binds this module, not dependencies
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	var annots fileAnnots
	var skipFile bool
	ins.Preorder([]ast.Node{(*ast.File)(nil), (*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			skipFile = isTestFile(pass.Fset, n)
			if !skipFile {
				annots = collectAnnots(pass.Fset, n)
			}
		case *ast.SwitchStmt:
			if skipFile || n.Tag == nil {
				return
			}
			checkSwitch(pass, use, annots, n)
		}
	})
	return use, nil
}

func checkSwitch(pass *xanalysis.Pass, use *annotUse, annots fileAnnots, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok {
		return
	}
	consts := enumConstants(named)
	if len(consts) < 2 {
		return
	}

	var defaultClause *ast.CaseClause
	var covered []constant.Value
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			v := pass.TypesInfo.Types[e].Value
			if v == nil {
				return // non-constant case: cannot reason about coverage
			}
			covered = append(covered, v)
		}
	}

	var missing []string
	for _, c := range consts {
		if !containsValue(covered, c.Val()) {
			missing = append(missing, c.Name())
			covered = append(covered, c.Val()) // aliases of one value report once
		}
	}
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil && clausePanics(pass.TypesInfo, defaultClause) {
		return
	}
	if annots.suppressed(pass, use, sw.Pos(), "nonexhaustive") {
		return
	}
	sort.Strings(missing)
	what := "add the missing cases or a default that panics"
	if defaultClause != nil {
		what = "the default silently swallows them; make it panic or add the cases"
	}
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s (%s, or annotate //suv:nonexhaustive <reason>)",
		typeLabel(named), strings.Join(missing, ", "), what)
}

// enumConstants returns the package-level constants declared with
// exactly type T in T's defining package, deduplicated by name.
func enumConstants(named *types.Named) []*types.Const {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	scope := obj.Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}

func containsValue(vals []constant.Value, v constant.Value) bool {
	for _, w := range vals {
		if constant.Compare(w, token.EQL, v) {
			return true
		}
	}
	return false
}

// clausePanics reports whether the clause body contains a call to the
// builtin panic (directly or nested in an if/block), which is the
// accepted way for a default to reject unknown enum values loudly.
func clausePanics(info *types.Info, cc *ast.CaseClause) bool {
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
						found = true
					}
				}
			}
			return !found
		})
	}
	return found
}
