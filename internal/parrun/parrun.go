// Package parrun provides the deterministic fork-join primitive under
// the parallel window engine: Run executes n index-addressed jobs on up
// to w host workers and returns only when all have finished.
//
// The determinism contract is structural, not scheduled: each job i may
// touch only state owned by index i (its shard's heap, its chain's core,
// its private result slot), so which worker executes which index — the
// only thing the host scheduler controls — cannot be observed in
// simulated state. Any cross-index effect must happen before Run is
// called or after it returns, in code that orders work by index. The
// suvlint detmap/wallclock analyzers patrol this package like the rest
// of the deterministic core.
//
// Workers are pooled process-wide: the first parallel Run starts
// GOMAXPROCS persistent goroutines that service all subsequent calls
// from every engine in the process. The window engine forms thousands
// of small windows per run, and spawning w-1 goroutines per window —
// the previous design — dominated its allocation profile; a persistent
// pool makes the steady-state cost of a fork-join zero allocations.
package parrun

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forcedWorkers, when positive, overrides the host-derived worker count.
// Test-only: it lets a single-CPU host drive the w>1 code path (and the
// race detector across it) that GOMAXPROCS would otherwise optimize
// away to an inline loop.
var forcedWorkers atomic.Int32

// SetForcedWorkersForTest overrides the worker count computed by
// Workers; pass 0 to restore host-derived behavior. It returns the
// previous override so tests can defer-restore.
func SetForcedWorkersForTest(w int) int {
	return int(forcedWorkers.Swap(int32(w)))
}

// Workers returns how many host workers to use for k logical shards:
// min(k, GOMAXPROCS), at least 1. Logical shards stay fixed by config —
// only the number of goroutines servicing them adapts to the host, so
// the same config produces the same simulation on any machine.
func Workers(k int) int {
	w := runtime.GOMAXPROCS(0)
	if forced := int(forcedWorkers.Load()); forced > 0 {
		w = forced
	}
	if w > k {
		w = k
	}
	if w < 1 {
		w = 1
	}
	return w
}

// job is one fork-join: helpers claim indices from the cursor until it
// passes n, then signal the WaitGroup. Jobs are pooled; a job is only
// returned to the pool by the caller of Run, after wg.Wait proved every
// helper is done touching it.
type job struct {
	fn     func(i int)
	n      int
	cursor atomic.Int64
	wg     sync.WaitGroup
}

func (j *job) work() {
	for {
		i := int(j.cursor.Add(1)) - 1
		if i >= j.n {
			return
		}
		j.fn(i)
	}
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// poolOnce guards the lazy start of the persistent worker pool; jobs is
// its feed. The buffer only smooths bursts — a blocked send just waits
// for a worker to come free, and cannot deadlock: job bodies never
// enqueue jobs themselves (Run's caller participates in its own join
// instead of blocking idle, so even w == GOMAXPROCS+1 helpers make
// progress through the caller).
var (
	poolOnce sync.Once
	jobs     chan *job
)

func startPool() {
	jobs = make(chan *job, 4*runtime.GOMAXPROCS(0))
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		go func() {
			for j := range jobs {
				j.work()
				j.wg.Done()
			}
		}()
	}
}

// Run executes fn(i) for every i in [0, n) and returns once all calls
// have completed. With w <= 1 (or a single job) it runs inline on the
// calling goroutine — zero overhead on single-core hosts. With w > 1 it
// enlists w-1 pooled workers that claim indices from a shared atomic
// cursor alongside the caller; claim order is scheduler-dependent,
// completion of Run is not, and fn's index-ownership contract keeps
// results identical either way.
func Run(w, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	poolOnce.Do(startPool)
	j := jobPool.Get().(*job)
	j.fn, j.n = fn, n
	j.cursor.Store(0)
	j.wg.Add(w - 1)
	for g := 1; g < w; g++ {
		jobs <- j
	}
	j.work()
	j.wg.Wait()
	j.fn = nil // do not retain the closure beyond the join
	jobPool.Put(j)
}
