// Package parrun provides the deterministic fork-join primitive under
// the parallel window engine: Run executes n index-addressed jobs on up
// to w host workers and returns only when all have finished.
//
// The determinism contract is structural, not scheduled: each job i may
// touch only state owned by index i (its shard's heap, its chain's core,
// its private result slot), so which worker executes which index — the
// only thing the host scheduler controls — cannot be observed in
// simulated state. Any cross-index effect must happen before Run is
// called or after it returns, in code that orders work by index. The
// suvlint detmap/wallclock analyzers patrol this package like the rest
// of the deterministic core.
package parrun

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forcedWorkers, when positive, overrides the host-derived worker count.
// Test-only: it lets a single-CPU host drive the w>1 code path (and the
// race detector across it) that GOMAXPROCS would otherwise optimize
// away to an inline loop.
var forcedWorkers atomic.Int32

// SetForcedWorkersForTest overrides the worker count computed by
// Workers; pass 0 to restore host-derived behavior. It returns the
// previous override so tests can defer-restore.
func SetForcedWorkersForTest(w int) int {
	return int(forcedWorkers.Swap(int32(w)))
}

// Workers returns how many host workers to use for k logical shards:
// min(k, GOMAXPROCS), at least 1. Logical shards stay fixed by config —
// only the number of goroutines servicing them adapts to the host, so
// the same config produces the same simulation on any machine.
func Workers(k int) int {
	w := runtime.GOMAXPROCS(0)
	if forced := int(forcedWorkers.Load()); forced > 0 {
		w = forced
	}
	if w > k {
		w = k
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(i) for every i in [0, n) and returns once all calls
// have completed. With w <= 1 (or a single job) it runs inline on the
// calling goroutine — zero overhead on single-core hosts. With w > 1 it
// spawns w-1 helper goroutines that claim indices from a shared atomic
// cursor; claim order is scheduler-dependent, completion of Run is not,
// and fn's index-ownership contract keeps results identical either way.
func Run(w, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 1; g < w; g++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
