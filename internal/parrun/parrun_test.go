package parrun

import (
	"runtime"
	"testing"
)

// TestParallelRunCoversAllIndices checks every index runs exactly once
// for inline, forced-multi-worker, and over-subscribed configurations.
func TestParallelRunCoversAllIndices(t *testing.T) {
	defer SetForcedWorkersForTest(SetForcedWorkersForTest(0))
	for _, w := range []int{0, 1, 2, 4, 100} {
		const n = 237
		hits := make([]int32, n)
		Run(w, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("w=%d: index %d ran %d times", w, i, h)
			}
		}
	}
	Run(4, 0, func(int) { t.Fatal("ran a job for n=0") })
}

// TestParallelRunResultsWorkerInvariant verifies the structural
// determinism contract: per-index results are identical whatever the
// worker count, because each job writes only its own slot.
func TestParallelRunResultsWorkerInvariant(t *testing.T) {
	defer SetForcedWorkersForTest(SetForcedWorkersForTest(0))
	const n = 512
	compute := func(w int) []int {
		out := make([]int, n)
		Run(w, n, func(i int) { out[i] = i*i + 7 })
		return out
	}
	want := compute(1)
	for _, w := range []int{2, 3, 8} {
		got := compute(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("w=%d: slot %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestParallelWorkersClamp pins the Workers policy: never above
// GOMAXPROCS (unless forced by a test), never above the shard count,
// never below 1.
func TestParallelWorkersClamp(t *testing.T) {
	defer SetForcedWorkersForTest(SetForcedWorkersForTest(0))
	host := runtime.GOMAXPROCS(0)
	for _, k := range []int{1, 2, 4, 1000} {
		w := Workers(k)
		if w < 1 || w > host || w > k {
			t.Fatalf("Workers(%d) = %d with GOMAXPROCS %d", k, w, host)
		}
	}
	if Workers(0) != 1 {
		t.Fatalf("Workers(0) = %d, want 1", Workers(0))
	}
	SetForcedWorkersForTest(3)
	if got := Workers(8); got != 3 {
		t.Fatalf("forced Workers(8) = %d, want 3", got)
	}
	if got := Workers(2); got != 2 {
		t.Fatalf("forced Workers(2) = %d, want clamp to 2", got)
	}
}
