package sim

// lineMapMinCap is the initial slot count of a LineMap.
const lineMapMinCap = 16

// LineMap is an open-addressed, linearly-probed map from cache-line
// numbers to small value types, built for the simulator's hot path: no
// per-entry heap allocation (values live inline in a flat slot array)
// and no tombstones (deletion backward-shifts the cluster, so probe
// chains never grow stale). It deliberately has no iteration order
// guarantee and no iterator at all — the redirect machinery only ever
// addresses entries by key, which is what keeps the simulation
// bit-identical to the map-based implementation it replaced.
//
// The zero value is ready to use.
type LineMap[V any] struct {
	keys []Line
	vals []V
	used []bool
	mask uint64
	n    int
}

// Len returns the number of live entries.
func (m *LineMap[V]) Len() int { return m.n }

// find returns the slot holding key, or ok=false.
//
//suv:hotpath
func (m *LineMap[V]) find(key Line) (uint64, bool) {
	if m.n == 0 {
		return 0, false
	}
	i := lineSetHash(key) & m.mask
	for m.used[i] {
		if m.keys[i] == key {
			return i, true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// Has reports whether key is present.
//
//suv:hotpath
func (m *LineMap[V]) Has(key Line) bool {
	_, ok := m.find(key)
	return ok
}

// Get returns the value for key (the zero value if absent).
//
//suv:hotpath
func (m *LineMap[V]) Get(key Line) (V, bool) {
	if i, ok := m.find(key); ok {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// Ref returns a pointer to key's value for in-place mutation, or nil if
// absent. The pointer is invalidated by the next Put or Delete.
//
//suv:hotpath
func (m *LineMap[V]) Ref(key Line) *V {
	if i, ok := m.find(key); ok {
		return &m.vals[i]
	}
	return nil
}

// Put inserts or overwrites key's value.
//
//suv:hotpath
func (m *LineMap[V]) Put(key Line, val V) {
	if i, ok := m.find(key); ok {
		m.vals[i] = val
		return
	}
	if len(m.keys) == 0 || (m.n+1)*4 > len(m.keys)*3 {
		m.grow()
	}
	i := lineSetHash(key) & m.mask
	for m.used[i] {
		i = (i + 1) & m.mask
	}
	m.keys[i], m.vals[i], m.used[i] = key, val, true
	m.n++
}

// Delete removes key, reporting whether it was present. The vacated
// slot is filled by backward-shifting the probe cluster, so lookups
// never trip over tombstones.
//
//suv:hotpath
func (m *LineMap[V]) Delete(key Line) bool {
	i, ok := m.find(key)
	if !ok {
		return false
	}
	var zero V
	j := i
	for {
		m.used[i] = false
		m.vals[i] = zero
		for {
			j = (j + 1) & m.mask
			if !m.used[j] {
				m.n--
				return true
			}
			// The element at j may move into the hole at i only if its
			// home slot precedes the hole in cyclic probe order.
			h := lineSetHash(m.keys[j]) & m.mask
			if ((j - h) & m.mask) >= ((j - i) & m.mask) {
				break
			}
		}
		m.keys[i], m.vals[i], m.used[i] = m.keys[j], m.vals[j], true
		i = j
	}
}

// ForEach visits every entry in slot order (NOT insertion order — no
// simulation decision may depend on it; it exists for audits and
// tests). fn must not mutate the map.
func (m *LineMap[V]) ForEach(fn func(Line, *V)) {
	for i, u := range m.used {
		if u {
			fn(m.keys[i], &m.vals[i])
		}
	}
}

// Clear removes every entry while keeping the slot arrays, so a map
// reused across simulations never re-grows past its high-water size.
// A cleared map behaves identically to a zero-value one: lookups miss,
// and the first Put probes exactly as it would in a fresh table.
func (m *LineMap[V]) Clear() {
	if m.n == 0 {
		return
	}
	var zero V
	for i := range m.used {
		m.used[i] = false
		m.vals[i] = zero
	}
	m.n = 0
}

// grow doubles the table and rehashes. This is the only allocating
// path; a map that has reached its high-water size never allocates
// again.
func (m *LineMap[V]) grow() {
	newCap := lineMapMinCap
	if len(m.keys) > 0 {
		newCap = 2 * len(m.keys)
	}
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	m.keys = make([]Line, newCap)
	m.vals = make([]V, newCap)
	m.used = make([]bool, newCap)
	m.mask = uint64(newCap - 1)
	for i, u := range oldUsed {
		if !u {
			continue
		}
		j := lineSetHash(oldKeys[i]) & m.mask
		for m.used[j] {
			j = (j + 1) & m.mask
		}
		m.keys[j], m.vals[j], m.used[j] = oldKeys[i], oldVals[i], true
	}
}
