package sim

// lineSetSmallCap is the inline tier's capacity. Most transactions touch
// only a handful of distinct lines (the paper's Table IV footprints), so
// the common case is a short linear scan with no hashing at all.
const lineSetSmallCap = 16

// lineSetMinTable is the open-addressed tier's initial capacity (slots).
const lineSetMinTable = 64

// LineSet is a precise set of cache-line numbers tuned for the HTM hot
// path. Small sets (up to lineSetSmallCap distinct lines) live in an
// inline array scanned linearly; the moment a set spills past that, the
// inline entries migrate into an open-addressed, linearly-probed hash
// table and membership becomes a single probe. Clear is a flash
// operation (epoch bump), so begin, commit and abort never free or
// reallocate storage — after warm-up the set performs zero heap
// allocations.
//
// The zero value is NOT ready to use; call NewLineSet.
type LineSet struct {
	small   [lineSetSmallCap]Line
	nSmall  int
	spilled bool // this epoch's members live in the table, not in small

	keys  []Line   // overflow slots
	marks []uint32 // slot live iff marks[i] == epoch
	epoch uint32
	mask  uint64 // len(keys) - 1

	n int // total distinct lines
}

// NewLineSet returns an empty line set. The hash table is lazily
// materialized on the first spill past the inline tier.
func NewLineSet() *LineSet {
	return &LineSet{epoch: 1}
}

// Len returns the number of distinct lines in the set.
func (s *LineSet) Len() int { return s.n }

// Has reports membership.
//
//suv:hotpath
func (s *LineSet) Has(line Line) bool {
	if s.spilled {
		return s.tableHas(line)
	}
	for i := 0; i < s.nSmall; i++ {
		if s.small[i] == line {
			return true
		}
	}
	return false
}

// Add inserts line; duplicates are ignored.
//
//suv:hotpath
func (s *LineSet) Add(line Line) {
	if s.Has(line) {
		return
	}
	if !s.spilled {
		if s.nSmall < lineSetSmallCap {
			s.small[s.nSmall] = line
			s.nSmall++
			s.n++
			return
		}
		// Spill: migrate the inline tier, then fall through to the table.
		s.spilled = true
		for i := 0; i < s.nSmall; i++ {
			s.tableAdd(s.small[i])
		}
	}
	s.tableAdd(line)
	s.n++
}

// Clear empties the set in O(1): the inline tier resets its length and
// the table's live marks are invalidated by bumping the epoch.
//
//suv:hotpath
func (s *LineSet) Clear() {
	s.nSmall = 0
	s.spilled = false
	s.n = 0
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: stale marks could alias
		clear(s.marks)
		s.epoch = 1
	}
}

// ForEach visits every line: insertion order while inline, slot order
// after a spill. fn must not mutate the set.
func (s *LineSet) ForEach(fn func(Line)) {
	if !s.spilled {
		for i := 0; i < s.nSmall; i++ {
			fn(s.small[i])
		}
		return
	}
	for i, m := range s.marks {
		if m == s.epoch {
			fn(s.keys[i])
		}
	}
}

// MinCommon returns the smallest line present in both sets, or ok=false
// when they are disjoint. Taking the minimum makes the witness
// deterministic regardless of either set's iteration order, so conflict
// forensics can attribute a signature-level intersection to a concrete
// line without perturbing replay stability.
func (s *LineSet) MinCommon(o *LineSet) (Line, bool) {
	if o == nil || s == nil {
		return 0, false
	}
	// Scan the smaller set, probe the larger.
	a, b := s, o
	if b.n < a.n {
		a, b = b, a
	}
	var best Line
	found := false
	a.ForEach(func(l Line) {
		if b.Has(l) && (!found || l < best) {
			best, found = l, true
		}
	})
	return best, found
}

// Clone returns an independent copy (nested-transaction snapshots).
func (s *LineSet) Clone() *LineSet {
	out := NewLineSet()
	s.ForEach(out.Add)
	return out
}

// lineSetHash spreads line over the table (Fibonacci multiplicative
// hashing).
func lineSetHash(line Line) uint64 {
	return line * 0x9E3779B97F4A7C15
}

//suv:hotpath
func (s *LineSet) tableHas(line Line) bool {
	if len(s.keys) == 0 {
		return false
	}
	i := lineSetHash(line) & s.mask
	for s.marks[i] == s.epoch {
		if s.keys[i] == line {
			return true
		}
		i = (i + 1) & s.mask
	}
	return false
}

// tableAdd inserts a line known to be absent into the table, growing it
// at 3/4 load. Callers maintain s.n, which (post-spill) equals the
// table's live count — during the migration loop it over-counts by the
// lines not yet moved, which only makes the growth check conservative.
//
//suv:hotpath
func (s *LineSet) tableAdd(line Line) {
	live := s.n
	if len(s.keys) == 0 || live+1 > 3*len(s.keys)/4 {
		s.grow()
	}
	i := lineSetHash(line) & s.mask
	for s.marks[i] == s.epoch {
		i = (i + 1) & s.mask
	}
	s.keys[i] = line
	s.marks[i] = s.epoch
}

// grow doubles the table and rehashes its live slots. This is the only
// allocating path; once a core has seen its largest write set the table
// never grows again.
func (s *LineSet) grow() {
	newCap := lineSetMinTable
	if len(s.keys) > 0 {
		newCap = 2 * len(s.keys)
	}
	oldKeys, oldMarks := s.keys, s.marks
	s.keys = make([]Line, newCap)
	s.marks = make([]uint32, newCap)
	s.mask = uint64(newCap - 1)
	oldEpoch := s.epoch
	s.epoch = 1
	for i, m := range oldMarks {
		if m == oldEpoch {
			j := lineSetHash(oldKeys[i]) & s.mask
			for s.marks[j] == s.epoch {
				j = (j + 1) & s.mask
			}
			s.keys[j] = oldKeys[i]
			s.marks[j] = s.epoch
		}
	}
}

// TableCap returns the hash tier's slot count (tests, sizing
// diagnostics).
func (s *LineSet) TableCap() int { return len(s.keys) }
