package sim

import (
	"math/rand"
	"testing"
)

// TestParallelShardedHeapOrder drives a ShardedHeap and a plain
// ReadyHeap with the same random push/pop script for several shard
// counts and requires the pop sequences to be identical: the global
// (cycle, id) order must be independent of K.
func TestParallelShardedHeapOrder(t *testing.T) {
	const ids = 16
	for _, k := range []int{1, 2, 3, 4, 16, 64} {
		rng := rand.New(rand.NewSource(42))
		var ref ReadyHeap
		var sh ShardedHeap
		sh.Reset(ids, k, func(id int) int { return id * k / ids })
		for step := 0; step < 2000; step++ {
			if ref.Len() == 0 || rng.Intn(3) != 0 {
				at := Cycles(rng.Intn(50))
				id := rng.Intn(ids)
				ref.Push(at, id)
				sh.Push(at, id)
			} else {
				wa, wi := ref.Pop()
				ga, gi := sh.Pop()
				if wa != ga || wi != gi {
					t.Fatalf("k=%d step %d: pop = (%d,%d), want (%d,%d)", k, step, ga, gi, wa, wi)
				}
			}
			if ref.Len() != sh.Len() {
				t.Fatalf("k=%d: Len mismatch %d vs %d", k, sh.Len(), ref.Len())
			}
		}
		for ref.Len() > 0 {
			wa, wi := ref.Pop()
			ga, gi := sh.Pop()
			if wa != ga || wi != gi {
				t.Fatalf("k=%d drain: pop = (%d,%d), want (%d,%d)", k, ga, gi, wa, wi)
			}
		}
	}
}

// TestParallelShardedHeapRemove checks entry removal on both heap
// flavors: removing a queued (at, id) preserves order among survivors,
// and removing something absent reports false without disturbing state.
func TestParallelShardedHeapRemove(t *testing.T) {
	var h ReadyHeap
	h.Push(5, 1)
	h.Push(3, 2)
	h.Push(9, 0)
	h.Push(3, 0)
	if h.Remove(4, 2) {
		t.Fatal("removed an entry that was never pushed")
	}
	if !h.Remove(3, 2) {
		t.Fatal("failed to remove (3,2)")
	}
	wantAt := []Cycles{3, 5, 9}
	wantID := []int{0, 1, 0}
	for i := range wantAt {
		at, id := h.Pop()
		if at != wantAt[i] || id != wantID[i] {
			t.Fatalf("pop %d = (%d,%d), want (%d,%d)", i, at, id, wantAt[i], wantID[i])
		}
	}

	var sh ShardedHeap
	sh.Reset(8, 4, func(id int) int { return id / 2 })
	for id := 0; id < 8; id++ {
		sh.Push(Cycles(10+id), id)
	}
	if sh.Remove(99, 5) {
		t.Fatal("removed phantom sharded entry")
	}
	if !sh.Remove(15, 5) {
		t.Fatal("failed to remove sharded (15,5)")
	}
	if sh.Len() != 7 {
		t.Fatalf("Len = %d after remove, want 7", sh.Len())
	}
	prev := Cycles(0)
	for sh.Len() > 0 {
		at, id := sh.Pop()
		if at < prev {
			t.Fatalf("out of order pop at (%d,%d)", at, id)
		}
		if id == 5 {
			t.Fatal("removed entry resurfaced")
		}
		prev = at
	}
}

// TestParallelShardedHeapReset verifies Reset drops stale entries and
// rebinds ownership, including the k > n clamp.
func TestParallelShardedHeapReset(t *testing.T) {
	var sh ShardedHeap
	sh.Reset(4, 2, func(id int) int { return id / 2 })
	sh.Push(1, 0)
	sh.Push(2, 3)
	sh.Reset(4, 8, func(id int) int { return id })
	if sh.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", sh.Len())
	}
	if sh.Shards() != 4 {
		t.Fatalf("Shards = %d, want clamp to 4", sh.Shards())
	}
	for id := 0; id < 4; id++ {
		if sh.ShardFor(id) != id {
			t.Fatalf("ShardFor(%d) = %d", id, sh.ShardFor(id))
		}
	}
	if _, _, ok := sh.Peek(); ok {
		t.Fatal("Peek found entries in a reset heap")
	}
}
