package sim

// ReadyHeap is a binary min-heap of (cycle, id) pairs used by the engine
// to pick the next core to step. Ties on cycle break on the lower id so
// simulations are deterministic.
type ReadyHeap struct {
	items []readyItem
}

type readyItem struct {
	at Cycles
	id int
}

// Len reports the number of queued entries.
func (h *ReadyHeap) Len() int { return len(h.items) }

// Push queues id to become ready at cycle at.
func (h *ReadyHeap) Push(at Cycles, id int) {
	h.items = append(h.items, readyItem{at, id})
	h.up(len(h.items) - 1)
}

// Pop removes and returns the entry with the smallest (cycle, id).
// It panics on an empty heap.
func (h *ReadyHeap) Pop() (at Cycles, id int) {
	if len(h.items) == 0 {
		panic("sim: Pop on empty ReadyHeap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top.at, top.id
}

// Remove deletes the first queued entry equal to (at, id), restoring
// the heap order, and reports whether one was found. The linear search
// is fine for the window engine's use: heaps hold at most one entry per
// core and removals happen once per window, not per event.
func (h *ReadyHeap) Remove(at Cycles, id int) bool {
	for i := range h.items {
		if h.items[i].at == at && h.items[i].id == id {
			last := len(h.items) - 1
			h.items[i] = h.items[last]
			h.items = h.items[:last]
			if i < last {
				h.down(i)
				h.up(i)
			}
			return true
		}
	}
	return false
}

// Peek returns the smallest entry without removing it.
func (h *ReadyHeap) Peek() (at Cycles, id int, ok bool) {
	if len(h.items) == 0 {
		return 0, 0, false
	}
	return h.items[0].at, h.items[0].id, true
}

func (h *ReadyHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

func (h *ReadyHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *ReadyHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
