// Package sim provides the base scalar types and deterministic primitives
// (pseudo-random numbers, ready-time priority queue) shared by every layer
// of the CMP simulator: cycle counts, byte addresses, cache-line numbers
// and machine words.
//
// The simulator is execution-driven and cycle-approximate. All components
// express time in Cycles of the simulated 1.2 GHz in-order core clock
// (Table III of the paper).
package sim

// Cycles counts simulated processor clock cycles.
type Cycles = uint64

// Addr is a byte address in the simulated physical address space.
type Addr = uint64

// Word is the value stored at an 8-byte-aligned address.
type Word = uint64

// Line identifies a 64-byte cache line (Addr >> LineShift).
type Line = uint64

const (
	// LineShift is log2 of the coherence/conflict granularity (64 bytes,
	// per Section IV-B of the paper: "SUV-TM detects conflicts at the
	// granularity of a cache-line (i.e., 64 bytes)").
	LineShift = 6
	// LineBytes is the cache-line size in bytes.
	LineBytes = 1 << LineShift
	// WordsPerLine is the number of 8-byte words per cache line.
	WordsPerLine = LineBytes / 8
)

// LineOf returns the cache line containing addr.
func LineOf(addr Addr) Line { return addr >> LineShift }

// AddrOf returns the base byte address of line.
func AddrOf(line Line) Addr { return line << LineShift }

// WordAddr aligns addr down to an 8-byte word boundary.
func WordAddr(addr Addr) Addr { return addr &^ 7 }
