package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64* by Vigna). Every simulated component that needs
// randomness owns its own seeded RNG so that simulations are exactly
// reproducible regardless of execution order of other components.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	// Scramble the seed with splitmix64 so that nearby seeds give
	// unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	r.state = z ^ (z >> 31)
	if r.state == 0 {
		r.state = 1
	}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Range returns a pseudo-random int in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Fork derives a new independent generator from this one, used to hand a
// private stream to a sub-component without perturbing the parent stream
// more than one draw.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
