package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	var h ReadyHeap
	h.Push(5, 1)
	h.Push(3, 2)
	h.Push(7, 0)
	h.Push(3, 1)
	wantAt := []Cycles{3, 3, 5, 7}
	wantID := []int{1, 2, 1, 0}
	for i := range wantAt {
		at, id := h.Pop()
		if at != wantAt[i] || id != wantID[i] {
			t.Fatalf("pop %d = (%d,%d), want (%d,%d)", i, at, id, wantAt[i], wantID[i])
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not empty: %d", h.Len())
	}
}

func TestHeapPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty heap did not panic")
		}
	}()
	var h ReadyHeap
	h.Pop()
}

func TestHeapPeek(t *testing.T) {
	var h ReadyHeap
	if _, _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
	h.Push(9, 3)
	at, id, ok := h.Peek()
	if !ok || at != 9 || id != 3 {
		t.Fatalf("Peek = (%d,%d,%v)", at, id, ok)
	}
	if h.Len() != 1 {
		t.Fatal("Peek consumed the entry")
	}
}

// TestHeapSortsArbitraryInput property-checks that popping yields a
// non-decreasing (cycle, id) sequence equal to the sorted input.
func TestHeapSortsArbitraryInput(t *testing.T) {
	f := func(entries []uint32) bool {
		var h ReadyHeap
		type pair struct {
			at Cycles
			id int
		}
		var want []pair
		for i, e := range entries {
			at := Cycles(e % 1000)
			id := i % 16
			h.Push(at, id)
			want = append(want, pair{at, id})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].id < want[j].id
		})
		for _, w := range want {
			at, id := h.Pop()
			if at != w.at || id != w.id {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLineHelpers(t *testing.T) {
	addr := Addr(0x1234567)
	line := LineOf(addr)
	if AddrOf(line) != addr&^(LineBytes-1) {
		t.Fatalf("AddrOf(LineOf) mismatch")
	}
	if WordAddr(0x1235) != 0x1230 {
		t.Fatalf("WordAddr alignment wrong: %#x", WordAddr(0x1235))
	}
	if WordsPerLine != 8 {
		t.Fatalf("WordsPerLine = %d", WordsPerLine)
	}
}
