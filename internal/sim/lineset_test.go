package sim

import "testing"

// TestLineSetOracle drives the hybrid set against a map oracle with a
// random add/has/clear mix, at working-set sizes that exercise both the
// inline tier and the overflow table (including growth and epoch reuse).
func TestLineSetOracle(t *testing.T) {
	s := NewLineSet()
	oracle := make(map[Line]struct{})
	rng := NewRNG(99)
	for i := 0; i < 200000; i++ {
		// Small key range forces duplicates; occasional wide keys force
		// hash spreading.
		line := Line(rng.Uint64n(512))
		if rng.Uint64n(64) == 0 {
			line = rng.Uint64() | 1<<40
		}
		switch rng.Uint64n(8) {
		case 0:
			s.Clear()
			clear(oracle)
		case 1, 2, 3:
			s.Add(line)
			oracle[line] = struct{}{}
		default:
			_, want := oracle[line]
			if got := s.Has(line); got != want {
				t.Fatalf("step %d: Has(%#x) = %v, oracle %v", i, line, got, want)
			}
		}
		if s.Len() != len(oracle) {
			t.Fatalf("step %d: Len = %d, oracle %d", i, s.Len(), len(oracle))
		}
	}
	// Final sweep: every oracle member present, ForEach visits each once.
	seen := make(map[Line]int)
	s.ForEach(func(l Line) { seen[l]++ })
	if len(seen) != len(oracle) {
		t.Fatalf("ForEach visited %d lines, oracle %d", len(seen), len(oracle))
	}
	for l, n := range seen {
		if n != 1 {
			t.Fatalf("ForEach visited %#x %d times", l, n)
		}
		if _, ok := oracle[l]; !ok {
			t.Fatalf("ForEach visited %#x not in oracle", l)
		}
	}
}

// TestLineSetClone checks snapshot independence (nested-frame saves).
func TestLineSetClone(t *testing.T) {
	s := NewLineSet()
	for i := Line(0); i < 40; i++ { // spills past the inline tier
		s.Add(i * 7)
	}
	c := s.Clone()
	s.Add(1000)
	c.Add(2000)
	if s.Has(2000) || !s.Has(1000) || c.Has(1000) || !c.Has(2000) {
		t.Fatal("clone not independent")
	}
	if c.Len() != 41 || s.Len() != 41 {
		t.Fatalf("lens: s=%d c=%d, want 41", s.Len(), c.Len())
	}
	s.Clear()
	if c.Len() != 41 {
		t.Fatal("clearing the source disturbed the clone")
	}
}

// TestLineSetEpochWrap forces the uint32 epoch to wrap and checks no
// stale marks resurrect.
func TestLineSetEpochWrap(t *testing.T) {
	s := NewLineSet()
	for i := Line(0); i < 2*lineSetSmallCap; i++ {
		s.Add(i)
	}
	s.epoch = ^uint32(0) - 1 // two bumps from wrapping
	s.Clear()
	s.Clear()
	if s.Len() != 0 || s.Has(3) || s.Has(lineSetSmallCap+1) {
		t.Fatal("stale members survived the epoch wrap")
	}
	s.Add(7)
	if !s.Has(7) || s.Len() != 1 {
		t.Fatal("set unusable after epoch wrap")
	}
}

// TestLineSetHotPathAllocs asserts the steady-state transactional
// pattern — clear at begin, add/has during the attempt — allocates
// nothing once the overflow table has reached its high-water mark.
func TestLineSetHotPathAllocs(t *testing.T) {
	s := NewLineSet()
	for i := Line(0); i < 100; i++ { // warm the table to its final size
		s.Add(i * 13)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.Clear()
		for i := Line(0); i < 100; i++ {
			s.Add(i * 13)
			if !s.Has(i * 13) {
				t.Fatal("lost a line")
			}
		}
		_ = s.Len()
	}); allocs != 0 {
		t.Fatalf("line-set hot path allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkLineSet measures the per-op cost of the transactional
// pattern: flash clear, then a mixed add/has working set.
func BenchmarkLineSet(b *testing.B) {
	s := NewLineSet()
	for i := Line(0); i < 64; i++ {
		s.Add(i * 13)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Clear()
		for j := Line(0); j < 64; j++ {
			s.Add(j * 13)
		}
		for j := Line(0); j < 64; j++ {
			if !s.Has(j * 13) {
				b.Fatal("lost a line")
			}
		}
	}
}

// BenchmarkLineSetMap is the map-based reference point the rewrite
// replaced (kept so the win stays measurable in one -bench run).
func BenchmarkLineSetMap(b *testing.B) {
	s := make(map[Line]struct{}, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(s)
		for j := Line(0); j < 64; j++ {
			s[j*13] = struct{}{}
		}
		for j := Line(0); j < 64; j++ {
			if _, ok := s[j*13]; !ok {
				b.Fatal("lost a line")
			}
		}
	}
}
