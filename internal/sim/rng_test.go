package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestRNGSeedIndependence(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between nearby seeds", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRangeInclusive(t *testing.T) {
	r := NewRNG(11)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		seenLo = seenLo || v == 3
		seenHi = seenHi || v == 5
	}
	if !seenLo || !seenHi {
		t.Fatal("Range never produced an endpoint")
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) rate = %v", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Fork()
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("fork mirrors parent")
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}
