package sim

// ShardedHeap partitions the engine's ready queue into K per-shard
// binary heaps so the parallel window engine can push and pop entries
// for different shards without sharing mutable state. The global pop
// order — smallest (cycle, id) across all shards — is identical to a
// single ReadyHeap's order for every K, which is what keeps sharded
// scheduling bit-compatible with the sequential engine.
//
// Shard ownership is fixed up front by Reset: entry ids (core IDs) map
// to shards through a caller-supplied pure function, so the assignment
// can never depend on host scheduling.
type ShardedHeap struct {
	shards []ReadyHeap
	owner  []int // id -> shard index
}

// Reset configures the heap for n ids across k shards, dropping any
// queued entries. shardOf must be a pure function of its argument.
func (s *ShardedHeap) Reset(n, k int, shardOf func(id int) int) {
	if k < 1 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	if cap(s.shards) >= k {
		s.shards = s.shards[:k]
	} else {
		s.shards = make([]ReadyHeap, k)
	}
	for i := range s.shards {
		s.shards[i].items = s.shards[i].items[:0]
	}
	if cap(s.owner) >= n {
		s.owner = s.owner[:n]
	} else {
		s.owner = make([]int, n)
	}
	for id := 0; id < n; id++ {
		sh := shardOf(id)
		if sh < 0 || sh >= k {
			sh = 0
		}
		s.owner[id] = sh
	}
}

// Shards reports the configured shard count.
func (s *ShardedHeap) Shards() int { return len(s.shards) }

// ShardFor reports which shard owns id's entries.
func (s *ShardedHeap) ShardFor(id int) int { return s.owner[id] }

// Shard exposes shard i's private heap so a worker bound to that shard
// can push and pop locally during a window without synchronization.
func (s *ShardedHeap) Shard(i int) *ReadyHeap { return &s.shards[i] }

// Len reports the total number of queued entries across all shards.
func (s *ShardedHeap) Len() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].Len()
	}
	return n
}

// Push queues id to become ready at cycle at, on id's owning shard.
func (s *ShardedHeap) Push(at Cycles, id int) {
	s.shards[s.owner[id]].Push(at, id)
}

// Pop removes and returns the globally smallest (cycle, id) entry by
// scanning the K shard tops. Ties on cycle break on the lower id, the
// same total order as ReadyHeap, so results cannot depend on K.
// It panics if every shard is empty.
func (s *ShardedHeap) Pop() (at Cycles, id int) {
	best := -1
	var bestAt Cycles
	bestID := 0
	for i := range s.shards {
		a, d, ok := s.shards[i].Peek()
		if !ok {
			continue
		}
		if best < 0 || a < bestAt || (a == bestAt && d < bestID) {
			best, bestAt, bestID = i, a, d
		}
	}
	if best < 0 {
		panic("sim: Pop on empty ShardedHeap")
	}
	return s.shards[best].Pop()
}

// Peek returns the globally smallest entry without removing it.
func (s *ShardedHeap) Peek() (at Cycles, id int, ok bool) {
	best := -1
	var bestAt Cycles
	bestID := 0
	for i := range s.shards {
		a, d, k := s.shards[i].Peek()
		if !k {
			continue
		}
		if best < 0 || a < bestAt || (a == bestAt && d < bestID) {
			best, bestAt, bestID = i, a, d
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return bestAt, bestID, true
}

// Remove deletes the entry (at, id) from id's owning shard. It reports
// whether such an entry was present.
func (s *ShardedHeap) Remove(at Cycles, id int) bool {
	return s.shards[s.owner[id]].Remove(at, id)
}

// ForEach calls fn for every queued entry. The visit order is the
// shards' internal array order, NOT (cycle, id) order; callers must be
// order-insensitive (the window engine folds entries into per-id
// minima and counts).
func (s *ShardedHeap) ForEach(fn func(at Cycles, id int)) {
	for i := range s.shards {
		for _, it := range s.shards[i].items {
			fn(it.at, it.id)
		}
	}
}
