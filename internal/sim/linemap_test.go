package sim

import "testing"

// TestLineMapOracle drives LineMap against a Go map with a random
// put/get/delete mix. The narrow key range forces dense clusters, so
// backward-shift deletion is exercised constantly; occasional wide keys
// exercise hash spreading and growth.
func TestLineMapOracle(t *testing.T) {
	var m LineMap[uint64]
	oracle := make(map[Line]uint64)
	rng := NewRNG(7)
	for i := 0; i < 200000; i++ {
		line := Line(rng.Uint64n(256))
		if rng.Uint64n(64) == 0 {
			line = rng.Uint64() | 1<<40
		}
		switch rng.Uint64n(8) {
		case 0, 1, 2:
			v := rng.Uint64()
			m.Put(line, v)
			oracle[line] = v
		case 3, 4:
			gotOK := m.Delete(line)
			_, wantOK := oracle[line]
			if gotOK != wantOK {
				t.Fatalf("step %d: Delete(%#x) = %v, oracle %v", i, line, gotOK, wantOK)
			}
			delete(oracle, line)
		default:
			got, gotOK := m.Get(line)
			want, wantOK := oracle[line]
			if gotOK != wantOK || got != want {
				t.Fatalf("step %d: Get(%#x) = %d,%v, oracle %d,%v", i, line, got, gotOK, want, wantOK)
			}
		}
		if m.Len() != len(oracle) {
			t.Fatalf("step %d: Len = %d, oracle %d", i, m.Len(), len(oracle))
		}
	}
	for k, want := range oracle {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final: Get(%#x) = %d,%v, oracle %d", k, got, ok, want)
		}
	}
}

// TestLineMapRef checks in-place mutation through the returned pointer.
func TestLineMapRef(t *testing.T) {
	var m LineMap[[2]int]
	if m.Ref(9) != nil {
		t.Fatal("Ref on empty map not nil")
	}
	m.Put(9, [2]int{1, 2})
	m.Ref(9)[1] = 99
	if v, _ := m.Get(9); v != [2]int{1, 99} {
		t.Fatalf("mutation through Ref lost: %v", v)
	}
}

// TestLineMapHotPathAllocs asserts the steady-state put/get/delete
// cycle allocates nothing once the table has reached its working size.
func TestLineMapHotPathAllocs(t *testing.T) {
	var m LineMap[int32]
	for i := Line(0); i < 64; i++ {
		m.Put(i*3, int32(i))
	}
	if allocs := testing.AllocsPerRun(200, func() {
		m.Put(1000, 5)
		if !m.Has(1000) {
			t.Fatal("lost key")
		}
		m.Delete(1000)
		_, _ = m.Get(7)
	}); allocs != 0 {
		t.Fatalf("line-map hot path allocates %.1f objects/op, want 0", allocs)
	}
}
