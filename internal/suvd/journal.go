package suvd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// The journal is suvd's write-ahead log: every accepted job is recorded
// (and fsync'd) before the client sees 202, and every terminal state is
// recorded when the job finishes. On restart, accepted records without
// a matching done record are exactly the jobs a crash interrupted, and
// they are re-enqueued. Replay is idempotent because the run cache
// makes re-execution of already-completed work a lookup.
//
// Each record is one line: "crc32c-hex8 json\n", the checksum taken
// over the JSON bytes. A crash mid-append leaves a torn final line;
// replay detects it (short line, bad CRC, or bad JSON), truncates the
// file back to the last whole record, and carries on. Torn tails are
// the only corruption a crash can produce — anything invalid before the
// last record is disk rot, which replay also truncates at (recording
// how many bytes were dropped, surfaced via /healthz).

// Record kinds.
const (
	recAccepted = "accepted"
	recDone     = "done"
)

// Terminal job statuses as journaled in a done record.
const (
	statusCompleted  = "completed"
	statusFailed     = "failed"
	statusDeadLetter = "deadletter"
)

// Record is one journal entry.
type Record struct {
	Seq    uint64       `json:"seq"`
	Kind   string       `json:"kind"` // recAccepted | recDone
	ID     string       `json:"id"`
	Client string       `json:"client,omitempty"`
	Runs   []RunRequest `json:"runs,omitempty"`   // accepted only
	Status string       `json:"status,omitempty"` // done only
	Error  string       `json:"error,omitempty"`  // done only
}

// JournalStats summarizes a journal's replay and activity.
type JournalStats struct {
	Path         string `json:"path"`
	Appended     uint64 `json:"appended"`      // records written this process
	Replayed     uint64 `json:"replayed"`      // whole records read at open
	Incomplete   int    `json:"incomplete"`    // accepted-without-done at open
	DroppedBytes int64  `json:"dropped_bytes"` // torn/corrupt tail truncated at open
}

// errJournalCrash is the injected mid-append crash (chaos harness): the
// append wrote a deliberate partial record and the journal is dead, as
// if the process had been killed during the write.
var errJournalCrash = errors.New("suvd: injected journal crash mid-append")

// Journal is the append-only WAL. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	stats   JournalStats
	nextSeq uint64
	// crashAt, when > 0, makes the crashAt-th Append of this process
	// write only half its line and fail with errJournalCrash.
	crashAt uint64
	crashed bool
}

// OpenJournal opens (creating if needed) the WAL at path, replays it,
// and returns the journal positioned for appending plus the incomplete
// jobs — accepted records with no done record, in acceptance order.
func OpenJournal(path string) (*Journal, []*Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("suvd: journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("suvd: journal: %w", err)
	}
	j := &Journal{f: f, nextSeq: 1}
	j.stats.Path = path

	valid := int64(0) // bytes covered by whole, checksummed records
	pending := make(map[string]*Record)
	order := []string{}
	for len(data) > int(valid) {
		rest := data[valid:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		rec, ok := parseRecord(rest[:nl])
		if !ok {
			break // torn or rotten line; truncate here
		}
		valid += int64(nl) + 1
		j.stats.Replayed++
		if rec.Seq >= j.nextSeq {
			j.nextSeq = rec.Seq + 1
		}
		switch rec.Kind {
		case recAccepted:
			if _, dup := pending[rec.ID]; !dup {
				pending[rec.ID] = rec
				order = append(order, rec.ID)
			}
		case recDone:
			delete(pending, rec.ID)
		default:
			// Unknown kind from a future schema: ignore the record but
			// keep its bytes — it was whole and checksummed.
		}
	}
	if dropped := int64(len(data)) - valid; dropped > 0 {
		j.stats.DroppedBytes = dropped
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("suvd: journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("suvd: journal: %w", err)
	}
	incomplete := make([]*Record, 0, len(pending))
	for _, id := range order {
		if rec, ok := pending[id]; ok {
			incomplete = append(incomplete, rec)
		}
	}
	j.stats.Incomplete = len(incomplete)
	return j, incomplete, nil
}

// parseRecord validates one framed line (without its newline).
func parseRecord(line []byte) (*Record, bool) {
	// "xxxxxxxx <json>" — 8 hex digits, a space, at least "{}".
	if len(line) < 11 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	rec := new(Record)
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, false
	}
	return rec, true
}

// frame renders a record as its on-disk line.
func frame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// Append assigns the record its sequence number, writes the framed
// line, and fsyncs before returning — once Append returns nil, the
// record survives kill -9. A nil journal (ephemeral daemon) accepts
// everything and remembers nothing.
func (j *Journal) Append(rec *Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed {
		return errJournalCrash
	}
	rec.Seq = j.nextSeq
	line, err := frame(rec)
	if err != nil {
		return fmt.Errorf("suvd: journal: %w", err)
	}
	if j.crashAt > 0 && j.stats.Appended+1 == j.crashAt {
		// Injected kill mid-append: half a line lands on disk, then the
		// journal is dead. Replay must drop exactly this torn tail.
		j.crashed = true
		j.f.Write(line[:len(line)/2])
		j.f.Sync()
		return errJournalCrash
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("suvd: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("suvd: journal: %w", err)
	}
	j.nextSeq++
	j.stats.Appended++
	return nil
}

// Compact rewrites the journal to exactly the given records (the
// incomplete jobs at startup), atomically: temp file in the same
// directory, fsync, rename over the original, directory fsync. Bounds
// journal growth across restarts without ever losing an accepted job.
func (j *Journal) Compact(keep []*Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed {
		return errJournalCrash
	}
	dir := filepath.Dir(j.stats.Path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("suvd: journal: %w", err)
	}
	seq := uint64(1)
	for _, rec := range keep {
		r := *rec
		r.Seq = seq
		seq++
		line, err := frame(&r)
		if err == nil {
			_, err = tmp.Write(line)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("suvd: journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("suvd: journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("suvd: journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.stats.Path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("suvd: journal: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	old := j.f
	f, err := os.OpenFile(j.stats.Path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("suvd: journal: reopening after compact: %w", err)
	}
	j.f = f
	old.Close()
	j.nextSeq = seq
	return nil
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
