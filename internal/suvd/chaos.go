package suvd

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Faults is the daemon's deterministic chaos harness: count-based fault
// injection for the HTTP path, the workers, and the journal. Everything
// is every-Nth, never probabilistic or wall-clock-gated, so a chaos
// scenario is a pure function of the request/attempt sequence and
// replays identically — the same discipline internal/faults applies to
// the simulated machine, applied to the daemon itself.
type Faults struct {
	// SlowEvery delays every Nth HTTP request by SlowBy before handling
	// (0 = off). Models a slow dependency or GC pause in front of the
	// admission path; the loadtest's latency gates see it.
	SlowEvery int
	SlowBy    time.Duration
	// FailEvery rejects every Nth HTTP request with a 500 before it
	// reaches the daemon (0 = off). Models an flaky ingress.
	FailEvery int
	// PanicEvery panics inside every Nth job attempt (0 = off) — the
	// "dropped worker". recover() in runOnce must convert it into a
	// retryable WorkerPanicError, so the job survives via the retry
	// ladder.
	PanicEvery int
	// ErrorEvery fails every Nth job attempt with ErrInjected, the
	// retryable transient (0 = off).
	ErrorEvery int
	// JournalCrashAt kills the journal mid-append on the Nth record of
	// the process (0 = off): half the line lands on disk and every
	// later append fails, as if the daemon had been kill -9'd during
	// the write. Replay must drop the torn tail and resume.
	JournalCrashAt int

	// Sleep is the delay hook (nil = the server's Sleep).
	Sleep func(time.Duration)

	requests atomic.Uint64
	attempts atomic.Uint64
	injected atomic.Uint64
}

// Injected returns how many faults have fired (all kinds).
func (f *Faults) Injected() uint64 {
	if f == nil {
		return 0
	}
	return f.injected.Load()
}

// Middleware wraps next with the HTTP-path faults.
func (f *Faults) Middleware(next http.Handler) http.Handler {
	if f == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := f.requests.Add(1)
		if f.SlowEvery > 0 && n%uint64(f.SlowEvery) == 0 {
			f.injected.Add(1)
			f.Sleep(f.SlowBy)
		}
		if f.FailEvery > 0 && n%uint64(f.FailEvery) == 0 {
			f.injected.Add(1)
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "injected ingress fault"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// beforeRun fires the worker faults at the top of a job attempt. A
// PanicEvery hit panics (the attempt's recover() converts it); an
// ErrorEvery hit returns the retryable transient.
func (f *Faults) beforeRun() error {
	if f == nil {
		return nil
	}
	n := f.attempts.Add(1)
	if f.PanicEvery > 0 && n%uint64(f.PanicEvery) == 0 {
		f.injected.Add(1)
		panic("suvd: injected worker panic (dropped worker)")
	}
	if f.ErrorEvery > 0 && n%uint64(f.ErrorEvery) == 0 {
		f.injected.Add(1)
		return ErrInjected
	}
	return nil
}
