package suvd

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestEndToEndFleetRunner exercises the daemon against the real fleet
// engine: submit, simulate, summarize; resubmission is served from the
// run cache; and a degraded daemon still admits cache-resident work.
// Seeds are kept in a distinctive range so the shared fleet cache never
// collides with the stub-runner tests' specs.
func TestEndToEndFleetRunner(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, EscalateAfter: 1000})
	h := s.Handler()

	rec := submit(t, h, jobBody("e2e", 1001, 1002))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	var resp struct{ ID string }
	json.Unmarshal(rec.Body.Bytes(), &resp)
	waitIdle(t, s)

	var js JobStatus
	json.Unmarshal(get(t, h, "/v1/jobs/"+resp.ID).Body.Bytes(), &js)
	if js.State != "completed" {
		t.Fatalf("job = %+v, want completed", js)
	}
	if len(js.Results) != 2 {
		t.Fatalf("results = %+v, want 2", js.Results)
	}
	for i, r := range js.Results {
		if r.Cycles == 0 || r.Commits == 0 {
			t.Errorf("run %d has empty outcome: %+v", i, r)
		}
		if r.CacheHit {
			t.Errorf("run %d claims a cache hit on a cold cache", i)
		}
	}
	first := js.Results

	// Resubmission of identical pure specs is a cache lookup — the
	// idempotence that makes journal replay safe.
	rec = submit(t, h, jobBody("e2e", 1001, 1002))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", rec.Code)
	}
	json.Unmarshal(rec.Body.Bytes(), &resp)
	waitIdle(t, s)
	json.Unmarshal(get(t, h, "/v1/jobs/"+resp.ID).Body.Bytes(), &js)
	if js.State != "completed" {
		t.Fatalf("resubmitted job = %+v, want completed", js)
	}
	for i, r := range js.Results {
		if !r.CacheHit {
			t.Errorf("resubmitted run %d missed the cache", i)
		}
		if r.Cycles != first[i].Cycles {
			t.Errorf("cached run %d diverged: %d cycles, first run had %d", i, r.Cycles, first[i].Cycles)
		}
	}

	// Degraded mode: force the ladder to shed-uncached. Cache-resident
	// work is still admitted; work that would simulate is shed.
	s.ladder.mu.Lock()
	s.ladder.stepLocked(ShedUncached, "test")
	s.ladder.mu.Unlock()
	if rec := submit(t, h, jobBody("e2e", 1001, 1002)); rec.Code != http.StatusAccepted {
		t.Errorf("cached job shed in degraded mode: %d", rec.Code)
	}
	if rec := submit(t, h, jobBody("e2e", 1099)); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("uncached job admitted in degraded mode: %d", rec.Code)
	}
	waitIdle(t, s)
}
