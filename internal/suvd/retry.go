package suvd

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"suvtm/internal/experiments"
)

// Runner executes one job's specs. The default is the fleet engine;
// tests and the chaos harness substitute stubs to model slow, flaky,
// or panicking work without simulating.
type Runner func(ctx context.Context, specs []experiments.Spec, opts experiments.BatchOptions) ([]*experiments.Outcome, error)

// fleetRunner is the production Runner: the batch engine with arenas,
// run cache, LPT dispatch, and context-cancelable dispatch.
func fleetRunner(ctx context.Context, specs []experiments.Spec, opts experiments.BatchOptions) ([]*experiments.Outcome, error) {
	opts.Context = ctx
	return experiments.RunManyWith(specs, opts)
}

// execute drives one job through the retry ladder: attempt, classify,
// back off, re-attempt, until success, a non-retryable failure, or the
// attempt budget runs out (dead-letter). It runs on a worker goroutine.
func (s *Server) execute(jb *job) {
	jb.mu.Lock()
	jb.state = JobRunning
	jb.mu.Unlock()
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
		jb.mu.Lock()
		jb.attempts = attempt
		jb.mu.Unlock()
		results, err := s.runOnce(jb, attempt)
		if err == nil {
			s.finishJob(jb, JobCompleted, "", results)
			s.observeJobLatency(time.Since(start))
			return
		}
		lastErr = err
		if !Retryable(err) {
			break
		}
		if attempt < s.cfg.MaxAttempts {
			s.counters.retries.Add(1)
			s.cfg.Sleep(s.backoff(attempt))
		}
	}
	state := JobFailed
	if Retryable(lastErr) {
		// The error class could have healed but the budget is spent:
		// park on the dead-letter list instead of silently failing.
		state = JobDeadLetter
	}
	s.finishJob(jb, state, lastErr.Error(), nil)
	s.observeJobLatency(time.Since(start))
}

// runOnce is a single attempt: chaos injection point, per-job deadline,
// panic containment, batch execution, outcome summarization.
func (s *Server) runOnce(jb *job, attempt int) (results []RunSummary, err error) {
	defer func() {
		if r := recover(); r != nil {
			// A panic inside the attempt (chaos-injected dropped worker,
			// or a bug in spec handling) becomes a typed, retryable error
			// carrying its post-mortem instead of killing the daemon.
			s.counters.panics.Add(1)
			err = &WorkerPanicError{
				JobID: jb.id, Attempt: attempt,
				Value: fmt.Sprint(r), Stack: string(debug.Stack()),
			}
		}
	}()
	if f := s.cfg.Faults; f != nil {
		if ferr := f.beforeRun(); ferr != nil {
			return nil, ferr
		}
	}
	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	}
	defer cancel()

	specs := jb.specs()
	cached := make([]bool, len(specs))
	for i := range specs {
		cached[i] = experiments.Cached(specs[i])
	}
	outs, err := s.runner(ctx, specs, experiments.BatchOptions{
		OnProgress:    jb.publish,
		ProgressEvery: s.cfg.ProgressEvery,
	})
	if err != nil {
		if ctx.Err() == context.DeadlineExceeded {
			return nil, &DeadlineError{JobID: jb.id, Timeout: s.cfg.JobTimeout}
		}
		return nil, err
	}
	for i, out := range outs {
		if i >= len(jb.runs) {
			break
		}
		sum := RunSummary{
			App: jb.runs[i].App, Scheme: jb.runs[i].Scheme, CacheHit: cached[i],
		}
		if out != nil && out.Result != nil {
			sum.Cycles = uint64(out.Cycles)
			sum.Commits = out.Counters.TxCommitted
			sum.Aborts = out.Counters.TxAborted
		}
		results = append(results, sum)
	}
	return results, nil
}

// backoff returns the sleep before re-attempting after attempt n
// (1-based): base<<(n-1), capped, plus up to 50% jitter drawn from the
// server's seeded stream — exponential enough to relieve a struggling
// dependency, jittered enough that retries from many jobs don't
// synchronize, deterministic for a fixed seed and attempt sequence.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBase
	for i := 1; i < attempt && d < s.cfg.RetryCap; i++ {
		d *= 2
	}
	if d > s.cfg.RetryCap {
		d = s.cfg.RetryCap
	}
	s.rngMu.Lock()
	j := s.rng.Float64()
	s.rngMu.Unlock()
	return d + time.Duration(float64(d)*0.5*j)
}
