package suvd

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"suvtm/internal/experiments"
)

// TestRunLoadSmoke drives the loadtest ramp at roughly 2x admission
// capacity against a live daemon: the overload must come back as fast
// 429/503s (never errors), latency must stay bounded, and every
// accepted job must complete — the zero-dropped-work invariant.
func TestRunLoadSmoke(t *testing.T) {
	slow := func(ctx context.Context, specs []experiments.Spec, opts experiments.BatchOptions) ([]*experiments.Outcome, error) {
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return make([]*experiments.Outcome, len(specs)), nil
	}
	s := newTestServer(t, Config{
		Workers: 2, QueueCapacity: 4, PerClientCap: 1 << 20,
		Runner: slow,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stages := []Stage{
		{RPS: 100, Duration: 150 * time.Millisecond},
		{RPS: 400, Duration: 150 * time.Millisecond},
	}
	res, err := RunLoad(LoadConfig{
		BaseURL: ts.URL,
		Stages:  stages,
		SLO:     SLO{MaxP99: 5 * time.Second, MaxErrorRate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("SLO violations under healthy overload: %v", res.Violations)
	}
	total := 0
	for _, st := range res.Stages {
		if st.Sent != st.Accepted+st.Backpressured+st.Shed+st.Errors {
			t.Errorf("stage %d rps: %d sent != %d accepted + %d backpressured + %d shed + %d errors",
				st.RPS, st.Sent, st.Accepted, st.Backpressured, st.Shed, st.Errors)
		}
		if st.Errors != 0 {
			t.Errorf("stage %d rps: %d hard errors — overload must be 429/503, never 5xx", st.RPS, st.Errors)
		}
		if st.Sent == 0 {
			t.Errorf("stage %d rps sent nothing", st.RPS)
		}
		total += st.Sent
	}
	if res.Accepted == 0 || res.Accepted == total {
		t.Errorf("accepted %d of %d — expected partial admission under 2x overload", res.Accepted, total)
	}

	waitIdle(t, s)
	snap := s.Snapshot()
	if snap.Completed != uint64(res.Accepted) {
		t.Errorf("accepted %d but completed %d — accepted jobs were dropped under load",
			res.Accepted, snap.Completed)
	}

	out := res.Render()
	if !strings.Contains(out, "SLO: PASS") || !strings.Contains(out, "429") {
		t.Errorf("render missing expected fields:\n%s", out)
	}
}

// TestRunLoadSLOGate pins that a violated latency gate fails the run.
func TestRunLoadSLOGate(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: instantRunner})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := RunLoad(LoadConfig{
		BaseURL: ts.URL,
		Stages:  []Stage{{RPS: 50, Duration: 100 * time.Millisecond}},
		SLO:     SLO{MaxP99: time.Nanosecond}, // unmeetable
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() || len(res.Violations) == 0 {
		t.Fatalf("nanosecond p99 SLO passed: %+v", res)
	}
	if !strings.Contains(res.Render(), "SLO: FAIL") {
		t.Errorf("render does not surface the failure:\n%s", res.Render())
	}
}

func TestRunLoadConfigErrors(t *testing.T) {
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunLoad(LoadConfig{BaseURL: "http://x"}); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := RunLoad(LoadConfig{BaseURL: "http://x", Stages: []Stage{{RPS: 0, Duration: time.Second}}}); err == nil {
		t.Error("zero-RPS stage accepted")
	}
}
