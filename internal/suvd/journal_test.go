package suvd

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.wal")
}

func acceptedRec(id string) *Record {
	return &Record{Kind: recAccepted, ID: id, Client: "c",
		Runs: []RunRequest{{App: "intruder", Scheme: "SUV-TM", Cores: 4, Scale: 0.05}}}
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, incomplete, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(incomplete) != 0 {
		t.Fatalf("fresh journal has %d incomplete jobs", len(incomplete))
	}
	for _, id := range []string{"j-1", "j-2", "j-3"} {
		if err := j.Append(acceptedRec(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(&Record{Kind: recDone, ID: "j-2", Status: statusCompleted}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, incomplete, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(incomplete) != 2 || incomplete[0].ID != "j-1" || incomplete[1].ID != "j-3" {
		t.Fatalf("incomplete = %+v, want j-1, j-3 in order", incomplete)
	}
	if incomplete[0].Runs[0].App != "intruder" {
		t.Errorf("replayed run lost its spec: %+v", incomplete[0].Runs)
	}
}

// pendingAfter computes the expected incomplete set for a prefix of the
// record sequence — the oracle for the truncation table and fuzz tests.
func pendingAfter(recs []*Record) []string {
	state := map[string]bool{}
	order := []string{}
	for _, r := range recs {
		switch r.Kind {
		case recAccepted:
			if _, ok := state[r.ID]; !ok {
				state[r.ID] = true
				order = append(order, r.ID)
			}
		case recDone:
			state[r.ID] = false
		}
	}
	var want []string
	for _, id := range order {
		if state[id] {
			want = append(want, id)
		}
	}
	return want
}

// TestJournalTruncationEveryBoundary is the crash-recovery table test:
// a journal truncated at every record boundary (a kill -9 exactly
// between appends) must replay exactly the incomplete jobs implied by
// the surviving prefix.
func TestJournalTruncationEveryBoundary(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	seq := []*Record{
		acceptedRec("j-1"),
		acceptedRec("j-2"),
		{Kind: recDone, ID: "j-1", Status: statusCompleted},
		acceptedRec("j-3"),
		{Kind: recDone, ID: "j-3", Status: statusDeadLetter, Error: "boom"},
		acceptedRec("j-4"),
		{Kind: recDone, ID: "j-2", Status: statusFailed, Error: "x"},
	}
	boundaries := []int64{0}
	for _, rec := range seq {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fi.Size())
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for i, off := range boundaries {
		tpath := filepath.Join(t.TempDir(), "trunc.wal")
		if err := os.WriteFile(tpath, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		tj, incomplete, err := OpenJournal(tpath)
		if err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
		want := pendingAfter(seq[:i])
		var got []string
		for _, rec := range incomplete {
			got = append(got, rec.ID)
		}
		if len(got) != len(want) {
			t.Fatalf("boundary %d: incomplete = %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("boundary %d: incomplete = %v, want %v", i, got, want)
			}
		}
		// The reopened journal accepts appends and they replay too.
		if err := tj.Append(acceptedRec("j-99")); err != nil {
			t.Fatalf("boundary %d: append after replay: %v", i, err)
		}
		tj.Close()
		_, again, err := OpenJournal(tpath)
		if err != nil {
			t.Fatalf("boundary %d: reopen: %v", i, err)
		}
		if len(again) != len(want)+1 || again[len(again)-1].ID != "j-99" {
			t.Fatalf("boundary %d: post-append replay lost records", i)
		}
	}
}

// TestJournalTornTail pins mid-record truncation (kill -9 mid-write):
// the torn bytes are dropped and counted, whole records survive.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(acceptedRec("j-1"))
	j.Append(acceptedRec("j-2"))
	j.Close()
	data, _ := os.ReadFile(path)
	firstEnd := bytes.IndexByte(data, '\n') + 1
	for _, cut := range []int{firstEnd + 1, firstEnd + 5, len(data) - 1} {
		tpath := filepath.Join(t.TempDir(), "torn.wal")
		os.WriteFile(tpath, data[:cut], 0o644)
		tj, incomplete, err := OpenJournal(tpath)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(incomplete) != 1 || incomplete[0].ID != "j-1" {
			t.Fatalf("cut %d: incomplete = %+v, want [j-1]", cut, incomplete)
		}
		if tj.Stats().DroppedBytes != int64(cut-firstEnd) {
			t.Errorf("cut %d: dropped %d bytes, want %d", cut, tj.Stats().DroppedBytes, cut-firstEnd)
		}
		tj.Close()
	}
}

// TestJournalCrashMidAppend drives the chaos harness's injected
// journal kill: half a line lands on disk, later appends fail, and
// replay resumes with the torn tail dropped.
func TestJournalCrashMidAppend(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.crashAt = 3
	if err := j.Append(acceptedRec("j-1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(acceptedRec("j-2")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(acceptedRec("j-3")); err == nil || !errors.Is(err, errJournalCrash) {
		t.Fatalf("third append err = %v, want injected crash", err)
	}
	if err := j.Append(acceptedRec("j-4")); !errors.Is(err, errJournalCrash) {
		t.Fatalf("post-crash append err = %v, want crash", err)
	}
	j.Close()

	nj, incomplete, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(incomplete) != 2 || incomplete[0].ID != "j-1" || incomplete[1].ID != "j-2" {
		t.Fatalf("incomplete after crash = %+v, want [j-1 j-2]", incomplete)
	}
	if nj.Stats().DroppedBytes == 0 {
		t.Error("torn half-record was not counted as dropped")
	}
	nj.Close()
}

func TestJournalCompact(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		id := "j-" + string(rune('A'+i%26))
		j.Append(acceptedRec(id))
		j.Append(&Record{Kind: recDone, ID: id, Status: statusCompleted})
	}
	j.Append(acceptedRec("j-keep"))
	j.Close()
	big, _ := os.Stat(path)

	j2, incomplete, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Compact(incomplete); err != nil {
		t.Fatal(err)
	}
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() {
		t.Errorf("compact did not shrink: %d -> %d bytes", big.Size(), small.Size())
	}
	// Appends continue after compaction and replay still works.
	if err := j2.Append(&Record{Kind: recDone, ID: "j-keep", Status: statusCompleted}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, incomplete, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(incomplete) != 0 {
		t.Fatalf("incomplete after compact+done = %+v, want none", incomplete)
	}
}

// FuzzJournalTruncate: an arbitrarily truncated journal (any byte
// offset, not just record boundaries) must open without error and
// replay exactly the incomplete jobs of its longest whole-record
// prefix.
func FuzzJournalTruncate(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		f.Fatal(err)
	}
	seq := []*Record{
		acceptedRec("j-1"),
		{Kind: recDone, ID: "j-1", Status: statusCompleted},
		acceptedRec("j-2"),
		acceptedRec("j-3"),
		{Kind: recDone, ID: "j-3", Status: statusFailed, Error: "e"},
	}
	var ends []int64
	for _, rec := range seq {
		j.Append(rec)
		fi, _ := os.Stat(path)
		ends = append(ends, fi.Size())
	}
	j.Close()
	full, _ := os.ReadFile(path)
	f.Add(0)
	f.Add(len(full))
	f.Add(len(full) / 2)
	f.Fuzz(func(t *testing.T, cut int) {
		if cut < 0 || cut > len(full) {
			t.Skip()
		}
		tpath := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(tpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tj, incomplete, err := OpenJournal(tpath)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		defer tj.Close()
		// Longest whole-record prefix covered by cut.
		n := 0
		for n < len(ends) && ends[n] <= int64(cut) {
			n++
		}
		want := pendingAfter(seq[:n])
		if len(incomplete) != len(want) {
			t.Fatalf("cut %d: %d incomplete, want %d", cut, len(incomplete), len(want))
		}
		for i := range want {
			if incomplete[i].ID != want[i] {
				t.Fatalf("cut %d: incomplete[%d] = %s, want %s", cut, i, incomplete[i].ID, want[i])
			}
		}
	})
}
