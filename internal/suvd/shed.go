package suvd

import (
	"fmt"
	"sync"
)

// State is the daemon's degradation level. The ladder only ever moves
// one step at a time, and every transition is recorded and exported.
type State uint8

const (
	// Normal: all valid work is admitted (subject to queue and client
	// caps).
	Normal State = iota
	// ShedUncached: sustained overload; jobs that would simulate (not
	// fully servable from the run cache) are shed with 503. Cached work
	// — the cheap kind — is still admitted.
	ShedUncached
	// CacheOnly: deeper overload; only fully cache-resident jobs are
	// admitted. The simulator is effectively paused for new work while
	// the backlog drains.
	CacheOnly
	// Draining: SIGTERM/Close. Nothing is admitted; in-flight jobs
	// finish, queued jobs are left to the journal for the next start.
	Draining
)

// String renders the state for /healthz, /readyz, logs and metrics.
func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case ShedUncached:
		return "shed-uncached"
	case CacheOnly:
		return "cache-only"
	case Draining:
		return "draining"
	default:
		panic(fmt.Sprintf("suvd: unknown state %d", uint8(s)))
	}
}

// Transition is one recorded ladder movement.
type Transition struct {
	Seq    int    `json:"seq"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

// shedLadder decides the daemon's degradation state from queue
// occupancy. It is count-based, not wall-clock-based: pressure is a
// saturating counter fed by admission-time occupancy observations —
// EscalateAfter consecutive sightings at or above HighWater step the
// ladder up, EscalateAfter consecutive sightings at or below LowWater
// step it down — so tests (and replayed chaos scenarios) drive it
// deterministically with a known request sequence.
type shedLadder struct {
	mu            sync.Mutex
	state         State
	pressure      int // >0 building toward escalation, <0 toward relief
	escalateAfter int
	high, low     float64
	transitions   []Transition
}

func newShedLadder(cfg Config) *shedLadder {
	return &shedLadder{
		escalateAfter: cfg.EscalateAfter,
		high:          cfg.HighWater,
		low:           cfg.LowWater,
	}
}

// observe feeds one admission-time occupancy reading (queued/capacity,
// where a reading taken at a full-queue rejection is >= 1) and returns
// the state admission should apply.
func (l *shedLadder) observe(occupancy float64) State {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state == Draining {
		return Draining
	}
	switch {
	case occupancy >= l.high:
		if l.pressure < 0 {
			l.pressure = 0
		}
		l.pressure++
	case occupancy <= l.low:
		if l.pressure > 0 {
			l.pressure = 0
		}
		l.pressure--
	default:
		l.pressure = 0
	}
	if l.pressure >= l.escalateAfter && l.state < CacheOnly {
		l.stepLocked(l.state+1, fmt.Sprintf("occupancy >= %.2f for %d admissions", l.high, l.pressure))
		l.pressure = 0
	} else if l.pressure <= -l.escalateAfter && l.state > Normal {
		l.stepLocked(l.state-1, fmt.Sprintf("occupancy <= %.2f for %d admissions", l.low, -l.pressure))
		l.pressure = 0
	}
	return l.state
}

// drain forces the terminal state; there is no way back.
func (l *shedLadder) drain() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state != Draining {
		l.stepLocked(Draining, "drain requested")
	}
}

func (l *shedLadder) stepLocked(to State, reason string) {
	l.transitions = append(l.transitions, Transition{
		Seq: len(l.transitions) + 1, From: l.state.String(), To: to.String(), Reason: reason,
	})
	l.state = to
}

// State returns the current degradation state.
func (l *shedLadder) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Transitions returns a copy of the recorded ladder history.
func (l *shedLadder) Transitions() []Transition {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Transition(nil), l.transitions...)
}
