package suvd

import (
	"fmt"
	"sync"

	"suvtm/internal/experiments"
	"suvtm/internal/workload"
)

// RunRequest is one simulation in a job, the wire mirror of the pure
// subset of experiments.Spec. Only pure fields are accepted: purity is
// what makes journal replay idempotent (a re-executed completed run is
// a cache lookup) and what the cache-only degraded mode can serve.
type RunRequest struct {
	App    string  `json:"app"`
	Scheme string  `json:"scheme"`
	Cores  int     `json:"cores,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
}

// Spec converts the wire run to an experiments.Spec.
func (r RunRequest) Spec() experiments.Spec {
	return experiments.Spec{
		App:    r.App,
		Scheme: experiments.Scheme(r.Scheme),
		Cores:  r.Cores,
		Seed:   r.Seed,
		Scale:  r.Scale,
	}
}

// validate rejects a run that could never execute, so admission fails
// fast with 400 instead of journaling a job doomed to dead-letter.
func (r RunRequest) validate() error {
	if _, err := workload.Get(r.App); err != nil {
		return fmt.Errorf("unknown app %q", r.App)
	}
	if _, err := experiments.NewVM(experiments.Scheme(r.Scheme)); err != nil {
		return fmt.Errorf("unknown scheme %q", r.Scheme)
	}
	if r.Cores < 0 || r.Seed > 1<<62 || r.Scale < 0 {
		return fmt.Errorf("negative cores/scale or out-of-range seed")
	}
	return nil
}

// JobRequest is the submission body of POST /v1/jobs.
type JobRequest struct {
	// Client identifies the tenant for per-client concurrency caps
	// ("" = the remote address).
	Client string       `json:"client,omitempty"`
	Runs   []RunRequest `json:"runs"`
}

// JobState is a job's lifecycle position.
type JobState uint8

const (
	// JobQueued: accepted, journaled, waiting for a worker.
	JobQueued JobState = iota
	// JobRunning: a worker is executing (or retrying) the batch.
	JobRunning
	// JobCompleted: every run finished and the outcome summary is
	// available.
	JobCompleted
	// JobFailed: a non-retryable error (bad simulation, deadline).
	JobFailed
	// JobDeadLetter: retries exhausted on a retryable error; the job is
	// parked on the dead-letter list for inspection.
	JobDeadLetter
)

// String renders the state for the API.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobCompleted:
		return "completed"
	case JobFailed:
		return "failed"
	case JobDeadLetter:
		return "deadletter"
	default:
		panic(fmt.Sprintf("suvd: unknown job state %d", uint8(s)))
	}
}

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	switch s {
	case JobQueued, JobRunning:
		return false
	case JobCompleted, JobFailed, JobDeadLetter:
		return true
	default:
		panic(fmt.Sprintf("suvd: unknown job state %d", uint8(s)))
	}
}

// RunSummary is the per-run slice of a completed job's outcome.
type RunSummary struct {
	App      string `json:"app"`
	Scheme   string `json:"scheme"`
	Cycles   uint64 `json:"cycles"`
	Commits  uint64 `json:"commits"`
	Aborts   uint64 `json:"aborts"`
	CacheHit bool   `json:"cache_hit"`
}

// JobStatus is the API view of a job (GET /v1/jobs/{id} and the
// elements of GET /v1/jobs).
type JobStatus struct {
	ID       string                     `json:"id"`
	Client   string                     `json:"client"`
	State    string                     `json:"state"`
	Runs     int                        `json:"runs"`
	Attempts int                        `json:"attempts"`
	Error    string                     `json:"error,omitempty"`
	Results  []RunSummary               `json:"results,omitempty"`
	Progress *experiments.FleetProgress `json:"progress,omitempty"`
}

// job is the server-side job record.
type job struct {
	id     string
	client string
	runs   []RunRequest

	mu       sync.Mutex
	state    JobState
	attempts int
	errText  string
	results  []RunSummary
	progress *experiments.FleetProgress
	watchers []chan streamMsg
	done     chan struct{} // closed on terminal state
}

// streamMsg is one NDJSON line of a job stream: either a progress
// rollup or the terminal status.
type streamMsg struct {
	JobID    string                     `json:"job_id"`
	State    string                     `json:"state"`
	Progress *experiments.FleetProgress `json:"progress,omitempty"`
	Error    string                     `json:"error,omitempty"`
	Final    bool                       `json:"final,omitempty"`
}

func newJob(id, client string, runs []RunRequest) *job {
	return &job{id: id, client: client, runs: runs, done: make(chan struct{})}
}

func (j *job) specs() []experiments.Spec {
	specs := make([]experiments.Spec, len(j.runs))
	for i, r := range j.runs {
		specs[i] = r.Spec()
	}
	return specs
}

// status snapshots the job for the API.
func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.id, Client: j.client, State: j.state.String(),
		Runs: len(j.runs), Attempts: j.attempts, Error: j.errText,
	}
	st.Results = append(st.Results, j.results...)
	if j.progress != nil {
		p := *j.progress
		st.Progress = &p
	}
	return st
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// publish fans a progress rollup out to stream watchers. Slow watchers
// lose intermediate rollups (the channel is buffered and sends are
// non-blocking) but never the terminal message, which is delivered via
// the done channel and a final status read.
func (j *job) publish(p experiments.FleetProgress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = &p
	msg := streamMsg{JobID: j.id, State: j.state.String(), Progress: &p}
	for _, w := range j.watchers {
		select {
		case w <- msg:
		default:
		}
	}
}

// watch registers a stream watcher; the returned cancel must be called
// when the stream ends.
func (j *job) watch() (<-chan streamMsg, func()) {
	ch := make(chan streamMsg, 16)
	j.mu.Lock()
	j.watchers = append(j.watchers, ch)
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel
}
