package suvd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"suvtm/internal/experiments"
	"suvtm/internal/metrics"
)

// serverCounters are the daemon's cumulative event counts, exported on
// /metrics and /healthz.
type serverCounters struct {
	requests       atomic.Uint64
	accepted       atomic.Uint64
	completed      atomic.Uint64
	failed         atomic.Uint64
	deadLettered   atomic.Uint64
	retries        atomic.Uint64
	panics         atomic.Uint64
	rejectedQueue  atomic.Uint64 // 429: queue full
	rejectedClient atomic.Uint64 // 429: per-client cap
	shed           atomic.Uint64 // 503: ladder shed uncached work
	rejectedDrain  atomic.Uint64 // 503: draining
	journalErrors  atomic.Uint64
	replayed       atomic.Uint64 // jobs re-enqueued from the journal
}

// Server is the suvd daemon: admission control in front of a bounded
// queue, a worker pool driving the fleet engine, the WAL, and the
// shedding ladder. Construct with New, serve Handler, stop with Close.
type Server struct {
	cfg     Config
	runner  Runner
	journal *Journal
	ladder  *shedLadder
	queue   chan *job

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu          sync.Mutex
	jobs        map[string]*job
	order       []string // submission order (replayed jobs first)
	perClient   map[string]int
	queued      int // accepted, not yet picked up by a worker
	inflight    int // being executed right now
	nextID      uint64
	draining    bool
	deadLetters []string

	rngMu sync.Mutex
	rng   *rand.Rand

	latMu  sync.Mutex
	reqLat *metrics.Histogram // request latency, microseconds
	jobLat *metrics.Histogram // accepted-to-terminal job latency, microseconds

	counters serverCounters
}

// New builds the server: opens and replays the journal, re-enqueues
// incomplete jobs, compacts the WAL, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var journal *Journal
	var incomplete []*Record
	if cfg.Journal != "" {
		var err error
		journal, incomplete, err = OpenJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		if cfg.Faults != nil && cfg.Faults.JournalCrashAt > 0 {
			journal.crashAt = uint64(cfg.Faults.JournalCrashAt)
		}
	}
	// Replayed jobs must all fit: the queue is sized to the configured
	// capacity or the backlog, whichever is larger.
	capQ := cfg.QueueCapacity
	if len(incomplete) > capQ {
		capQ = len(incomplete)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		runner:    cfg.Runner,
		journal:   journal,
		ladder:    newShedLadder(cfg),
		queue:     make(chan *job, capQ),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*job),
		perClient: make(map[string]int),
		rng:       rand.New(rand.NewSource(int64(cfg.RetrySeed))),
		reqLat:    metrics.NewHistogram("suvd.request.latency", "us"),
		jobLat:    metrics.NewHistogram("suvd.job.latency", "us"),
	}
	if s.runner == nil {
		s.runner = fleetRunner
	}
	if cfg.Faults != nil && cfg.Faults.Sleep == nil {
		cfg.Faults.Sleep = s.cfg.Sleep
	}
	for _, rec := range incomplete {
		jb := newJob(rec.ID, rec.Client, rec.Runs)
		s.jobs[jb.id] = jb
		s.order = append(s.order, jb.id)
		s.perClient[jb.client]++
		s.queued++
		if n := idNumber(rec.ID); n >= s.nextID {
			s.nextID = n
		}
		s.counters.replayed.Add(1)
		s.queue <- jb
	}
	// Bound WAL growth: after replay the file holds only the backlog.
	if err := journal.Compact(incomplete); err != nil && !errors.Is(err, errJournalCrash) {
		journal.Close()
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// idNumber extracts the numeric suffix of a job id ("j-42" -> 42).
func idNumber(id string) uint64 {
	n, _ := strconv.ParseUint(strings.TrimPrefix(id, "j-"), 10, 64)
	return n
}

// worker pulls jobs until the queue closes. During drain, pulled jobs
// are abandoned un-run: their accepted records stay in the journal, so
// the next daemon generation replays them.
func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.mu.Lock()
		s.queued--
		if s.draining {
			s.mu.Unlock()
			continue
		}
		s.inflight++
		s.mu.Unlock()
		s.execute(jb)
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}
}

// Admit validates and admits one job request, returning the accepted
// job or an admission error (ErrDraining, ErrShed, ErrClientCap,
// ErrQueueFull). retryAfter is the backoff hint in seconds for the
// 429/503 responses.
func (s *Server) Admit(req JobRequest, remote string) (jb *job, retryAfter int, err error) {
	client := req.Client
	if client == "" {
		client = remote
	}
	if len(req.Runs) == 0 {
		return nil, 0, fmt.Errorf("suvd: job has no runs")
	}
	if len(req.Runs) > s.cfg.MaxRuns {
		return nil, 0, fmt.Errorf("suvd: job has %d runs, cap is %d", len(req.Runs), s.cfg.MaxRuns)
	}
	for i, r := range req.Runs {
		if verr := r.validate(); verr != nil {
			return nil, 0, fmt.Errorf("suvd: run %d: %w", i, verr)
		}
	}
	// Probe cache residency outside the lock: the shed ladder admits
	// only cache-servable work when degraded.
	allCached := true
	for _, r := range req.Runs {
		if !experiments.Cached(r.Spec()) {
			allCached = false
			break
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.counters.rejectedDrain.Add(1)
		return nil, s.retryAfterLocked(), ErrDraining
	}
	occ := float64(s.queued) / float64(s.cfg.QueueCapacity)
	if s.queued >= s.cfg.QueueCapacity {
		occ = 1.0 + 1.0/float64(s.cfg.QueueCapacity)
	}
	state := s.ladder.observe(occ)
	switch state {
	case Normal:
	case ShedUncached, CacheOnly:
		// Both rungs shed work that would simulate; they differ in how
		// they relax (CacheOnly needs sustained relief to step down
		// through ShedUncached first).
		if !allCached {
			s.counters.shed.Add(1)
			return nil, s.retryAfterLocked(), ErrShed
		}
	case Draining:
		s.counters.rejectedDrain.Add(1)
		return nil, s.retryAfterLocked(), ErrDraining
	default:
		panic(fmt.Sprintf("suvd: unknown shed state %d", uint8(state)))
	}
	if s.perClient[client] >= s.cfg.PerClientCap {
		s.counters.rejectedClient.Add(1)
		return nil, s.retryAfterLocked(), ErrClientCap
	}
	if s.queued >= s.cfg.QueueCapacity {
		s.counters.rejectedQueue.Add(1)
		return nil, s.retryAfterLocked(), ErrQueueFull
	}
	s.nextID++
	jb = newJob(fmt.Sprintf("j-%d", s.nextID), client, req.Runs)
	// WAL before ack: the fsync'd accepted record is what makes the 202
	// a durable promise. Appending under the admission lock keeps WAL
	// order identical to acceptance order (deterministic replay) and
	// makes the fsync the natural admission rate limiter.
	if jerr := s.journal.Append(&Record{Kind: recAccepted, ID: jb.id, Client: client, Runs: req.Runs}); jerr != nil {
		s.counters.journalErrors.Add(1)
		s.nextID--
		return nil, 0, fmt.Errorf("suvd: journal append: %w", jerr)
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	s.perClient[client]++
	s.queued++
	s.counters.accepted.Add(1)
	// Cannot block: queued <= QueueCapacity <= cap(queue), all under mu.
	s.queue <- jb
	return jb, 0, nil
}

// retryAfterLocked estimates seconds until a slot frees: queue depth
// over worker count, floored at 1.
func (s *Server) retryAfterLocked() int {
	ra := 1 + s.queued/max(1, s.cfg.Workers)
	if ra > 60 {
		ra = 60
	}
	return ra
}

// finishJob journals the terminal record, publishes it to watchers, and
// releases the client slot.
func (s *Server) finishJob(jb *job, state JobState, errText string, results []RunSummary) {
	var status string
	switch state {
	case JobCompleted:
		status = statusCompleted
		s.counters.completed.Add(1)
	case JobFailed:
		status = statusFailed
		s.counters.failed.Add(1)
	case JobDeadLetter:
		status = statusDeadLetter
		s.counters.deadLettered.Add(1)
	case JobQueued, JobRunning:
		panic("suvd: finishJob called with non-terminal state " + state.String())
	default:
		panic(fmt.Sprintf("suvd: unknown job state %d", uint8(state)))
	}
	if err := s.journal.Append(&Record{Kind: recDone, ID: jb.id, Status: status, Error: errText}); err != nil {
		// The job still finishes: a dead journal costs replay
		// idempotence (the job re-runs next start — a cache lookup),
		// never correctness.
		s.counters.journalErrors.Add(1)
	}
	jb.mu.Lock()
	jb.state = state
	jb.errText = errText
	jb.results = results
	final := streamMsg{JobID: jb.id, State: state.String(), Error: errText, Final: true}
	for _, w := range jb.watchers {
		select {
		case w <- final:
		default:
		}
	}
	close(jb.done)
	jb.mu.Unlock()
	s.mu.Lock()
	s.perClient[jb.client]--
	if s.perClient[jb.client] <= 0 {
		delete(s.perClient, jb.client)
	}
	if state == JobDeadLetter {
		s.deadLetters = append(s.deadLetters, jb.id)
	}
	s.mu.Unlock()
}

// BeginDrain flips the daemon into its terminal state: admission
// rejects everything with 503, workers finish their in-flight job and
// abandon the rest of the queue to the journal.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()
	s.ladder.drain()
}

// Close drains and waits for in-flight jobs up to DrainTimeout; past
// it, in-flight batches are context-canceled and given one more
// DrainTimeout before Close gives up.
func (s *Server) Close() error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.cancelAll()
		select {
		case <-done:
		case <-time.After(s.cfg.DrainTimeout):
			return fmt.Errorf("suvd: drain timeout: in-flight jobs did not stop")
		}
	}
	s.cancelAll()
	return s.journal.Close()
}

// WaitIdle blocks until no job is queued or in flight (or ctx ends).
// Tests and the loadtest driver use it to assert zero dropped jobs.
func (s *Server) WaitIdle(ctx context.Context) error {
	for {
		s.mu.Lock()
		idle := s.queued == 0 && s.inflight == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// State returns the shedding ladder's current state.
func (s *Server) State() State { return s.ladder.State() }

// Stats is the /healthz body: daemon state, counters, queue and journal
// health, and the full shed-transition history.
type Stats struct {
	State       string       `json:"state"`
	Ready       bool         `json:"ready"`
	Queued      int          `json:"queued"`
	Inflight    int          `json:"inflight"`
	Capacity    int          `json:"capacity"`
	Workers     int          `json:"workers"`
	Accepted    uint64       `json:"accepted"`
	Completed   uint64       `json:"completed"`
	Failed      uint64       `json:"failed"`
	DeadLetters uint64       `json:"deadletters"`
	Retries     uint64       `json:"retries"`
	Panics      uint64       `json:"panics"`
	Rejected429 uint64       `json:"rejected_429"`
	Shed503     uint64       `json:"shed_503"`
	Replayed    uint64       `json:"replayed"`
	Journal     JournalStats `json:"journal"`
	Transitions []Transition `json:"transitions,omitempty"`
}

// Snapshot collects the current daemon stats.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	queued, inflight := s.queued, s.inflight
	s.mu.Unlock()
	state := s.ladder.State()
	return Stats{
		State:       state.String(),
		Ready:       state != Draining,
		Queued:      queued,
		Inflight:    inflight,
		Capacity:    s.cfg.QueueCapacity,
		Workers:     s.cfg.Workers,
		Accepted:    s.counters.accepted.Load(),
		Completed:   s.counters.completed.Load(),
		Failed:      s.counters.failed.Load(),
		DeadLetters: s.counters.deadLettered.Load(),
		Retries:     s.counters.retries.Load(),
		Panics:      s.counters.panics.Load(),
		Rejected429: s.counters.rejectedQueue.Load() + s.counters.rejectedClient.Load(),
		Shed503:     s.counters.shed.Load() + s.counters.rejectedDrain.Load(),
		Replayed:    s.counters.replayed.Load(),
		Journal:     s.journal.Stats(),
		Transitions: s.ladder.Transitions(),
	}
}

func (s *Server) observeJobLatency(d time.Duration) {
	s.latMu.Lock()
	s.jobLat.Observe(uint64(d.Microseconds()))
	s.latMu.Unlock()
}

// ---------------------------------------------------------------------
// HTTP surface.

// Handler returns the daemon's HTTP handler, instrumented and (when
// Config.Faults is set) wrapped in the chaos middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/deadletters", s.handleDeadLetters)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	var h http.Handler = s.instrument(mux)
	if s.cfg.Faults != nil {
		h = s.cfg.Faults.Middleware(h)
	}
	return h
}

// instrument counts requests and records request latency.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.counters.requests.Add(1)
		start := time.Now()
		next.ServeHTTP(w, r)
		s.latMu.Lock()
		s.reqLat.Observe(uint64(time.Since(start).Microseconds()))
		s.latMu.Unlock()
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad JSON: " + err.Error()})
		return
	}
	jb, retryAfter, err := s.Admit(req, r.RemoteAddr)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClientCap):
			code = http.StatusTooManyRequests
		case errors.Is(err, ErrShed), errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, errJournalCrash):
			code = http.StatusInternalServerError
		}
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		}
		writeJSON(w, code, errorBody{Error: err.Error(), RetryAfter: retryAfter})
		return
	}
	s.mu.Lock()
	depth := s.queued
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": jb.id, "state": "queued", "queue_depth": depth,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	jb, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	return jb, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, jb.status())
}

// handleStream serves the job's NDJSON stream: the current status
// first, then FleetProgress rollups as the batch advances, then the
// terminal record. The connection closes when the job reaches a
// terminal state or the client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	ch, cancel := jb.watch()
	defer cancel()
	// Current status first, so a late subscriber is never blind.
	st := jb.status()
	enc.Encode(streamMsg{JobID: jb.id, State: st.State, Progress: st.Progress, Error: st.Error, Final: terminalName(st.State)})
	flush()
	if jb.terminalNow() {
		return
	}
	for {
		select {
		case msg := <-ch:
			enc.Encode(msg)
			flush()
			if msg.Final {
				return
			}
		case <-jb.done:
			// Drain anything buffered, then emit the terminal line.
			for {
				select {
				case msg := <-ch:
					enc.Encode(msg)
					flush()
					if msg.Final {
						return
					}
					continue
				default:
				}
				break
			}
			st := jb.status()
			enc.Encode(streamMsg{JobID: jb.id, State: st.State, Error: st.Error, Final: true})
			flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// terminalNow reports whether the job has already finished.
func (j *job) terminalNow() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

// terminalName maps an API state string back to terminality (for the
// initial stream line, which is built from a JobStatus snapshot).
func terminalName(name string) bool {
	switch name {
	case "completed", "failed", "deadletter":
		return true
	}
	return false
}

func (s *Server) handleDeadLetters(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.deadLetters))
	for _, id := range s.deadLetters {
		if jb, ok := s.jobs[id]; ok {
			list = append(list, jb.status())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

// handleHealthz is liveness: 200 as long as the process serves, with
// the full Stats body (including the shed-transition history).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleReadyz is readiness: 200 while the daemon accepts any work
// (degraded modes included — they still serve cached jobs), 503 once
// draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	code := http.StatusOK
	if !snap.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"state": snap.State, "ready": snap.Ready})
}

// handleMetrics serves the daemon's counters, gauges and latency
// histograms — plus the fleet-layer cache counters — in the Prometheus
// text exposition format via metrics.Snapshot.WriteProm.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued, inflight := s.queued, s.inflight
	s.mu.Unlock()
	fs := experiments.FleetSnapshot()
	js := s.journal.Stats()
	s.latMu.Lock()
	hists := []metrics.HistogramSnapshot{s.reqLat.Snapshot(), s.jobLat.Snapshot()}
	s.latMu.Unlock()
	snap := &metrics.Snapshot{
		Meta: map[string]string{"service": "suvd"},
		Counters: map[string]uint64{
			"suvd.http.requests":     s.counters.requests.Load(),
			"suvd.jobs.accepted":     s.counters.accepted.Load(),
			"suvd.jobs.completed":    s.counters.completed.Load(),
			"suvd.jobs.failed":       s.counters.failed.Load(),
			"suvd.jobs.deadletter":   s.counters.deadLettered.Load(),
			"suvd.jobs.retries":      s.counters.retries.Load(),
			"suvd.jobs.panics":       s.counters.panics.Load(),
			"suvd.jobs.replayed":     s.counters.replayed.Load(),
			"suvd.reject.queue_full": s.counters.rejectedQueue.Load(),
			"suvd.reject.client_cap": s.counters.rejectedClient.Load(),
			"suvd.reject.shed":       s.counters.shed.Load(),
			"suvd.reject.draining":   s.counters.rejectedDrain.Load(),
			"suvd.journal.appended":  js.Appended,
			"suvd.journal.replayed":  js.Replayed,
			"suvd.journal.errors":    s.counters.journalErrors.Load(),
			"fleet.cache.hits":       fs.Hits,
			"fleet.cache.disk_hits":  fs.DiskHits,
			"fleet.cache.misses":     fs.Misses,
			"fleet.cache.bypasses":   fs.Bypasses,
			"fleet.cache.corrupt":    fs.Corrupt,
			"fleet.arena.reuses":     fs.ArenaReuses,
		},
		Gauges: map[string]float64{
			"suvd.queue.depth":    float64(queued),
			"suvd.queue.capacity": float64(s.cfg.QueueCapacity),
			"suvd.jobs.inflight":  float64(inflight),
			"suvd.shed.state":     float64(s.ladder.State()),
		},
		Histograms: hists,
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap.WriteProm(w)
}
