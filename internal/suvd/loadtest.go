package suvd

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"time"

	"suvtm/internal/metrics"
)

// The loadtest driver ramps request rate against a running daemon in
// stages and gates the result on latency SLOs — the cliff-analysis
// companion to the admission-control design: as offered load crosses
// admission capacity the daemon must degrade into fast 429/503s with
// bounded latency, not into an unbounded queue with a latency cliff.

// Stage is one rung of the RPS ramp.
type Stage struct {
	RPS      int
	Duration time.Duration
}

// SLO are the gates applied per stage. 429 (backpressure) and 503
// (shedding) are healthy overload responses and never count as errors;
// the latency gate covers every response, because a rejection that
// takes seconds is as much an outage as a slow accept.
type SLO struct {
	// MaxP99 bounds the per-stage p99 response latency (0 = ungated).
	MaxP99 time.Duration
	// MaxErrorRate bounds transport failures and 5xx-other-than-503 as
	// a fraction of sent requests (0 = no errors tolerated).
	MaxErrorRate float64
}

// LoadConfig parameterizes a run of the driver.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// Client is the HTTP client (nil = a 10s-timeout client).
	Client *http.Client
	// Stages is the RPS ramp, driven in order.
	Stages []Stage
	// Body produces the i-th submission payload (nil = a minimal
	// single-run job; real drivers vary apps and seeds here).
	Body func(i int) []byte
	// SLO gates the result.
	SLO SLO
}

// StageResult is the measured outcome of one ramp stage.
type StageResult struct {
	RPS           int           `json:"rps"`
	Sent          int           `json:"sent"`
	Accepted      int           `json:"accepted"`      // 202
	Backpressured int           `json:"backpressured"` // 429
	Shed          int           `json:"shed"`          // 503
	Errors        int           `json:"errors"`        // transport + other 5xx/4xx
	P50           time.Duration `json:"p50"`
	P95           time.Duration `json:"p95"`
	P99           time.Duration `json:"p99"`
	Max           time.Duration `json:"max"`
}

// LoadResult is the full ramp outcome.
type LoadResult struct {
	Stages     []StageResult `json:"stages"`
	Accepted   int           `json:"accepted"`
	Violations []string      `json:"violations,omitempty"`
}

// Passed reports whether every stage met the SLO.
func (r *LoadResult) Passed() bool { return len(r.Violations) == 0 }

// Render returns the per-stage table the cmd/suvd -loadtest mode
// prints.
func (r *LoadResult) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%6s %6s %6s %6s %6s %6s %10s %10s %10s\n",
		"rps", "sent", "202", "429", "503", "err", "p50", "p99", "max")
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "%6d %6d %6d %6d %6d %6d %10v %10v %10v\n",
			st.RPS, st.Sent, st.Accepted, st.Backpressured, st.Shed, st.Errors,
			st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	if r.Passed() {
		fmt.Fprintf(&b, "SLO: PASS (%d accepted)\n", r.Accepted)
	} else {
		fmt.Fprintf(&b, "SLO: FAIL\n")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String()
}

// RunLoad drives the ramp and applies the SLO gates. It returns an
// error only for configuration problems; SLO failures land in
// LoadResult.Violations so the caller can render the table before
// deciding to fail.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("suvd: loadtest: BaseURL required")
	}
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("suvd: loadtest: no stages")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	body := cfg.Body
	if body == nil {
		body = func(i int) []byte {
			return fmt.Appendf(nil, `{"client":"loadtest","runs":[{"app":"intruder","scheme":"SUV-TM","cores":4,"seed":%d,"scale":0.05}]}`, 1+i%8)
		}
	}
	res := &LoadResult{}
	seq := 0
	for _, stage := range cfg.Stages {
		if stage.RPS <= 0 || stage.Duration <= 0 {
			return nil, fmt.Errorf("suvd: loadtest: stage needs positive RPS and duration")
		}
		sr := StageResult{RPS: stage.RPS}
		hist := metrics.NewHistogram("lat", "us")
		var mu sync.Mutex
		var wg sync.WaitGroup
		interval := time.Second / time.Duration(stage.RPS)
		deadline := time.Now().Add(stage.Duration)
		for next := time.Now(); next.Before(deadline); next = next.Add(interval) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			i := seq
			seq++
			sr.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				resp, err := client.Post(cfg.BaseURL+"/v1/jobs", "application/json", bytes.NewReader(body(i)))
				lat := time.Since(start)
				mu.Lock()
				defer mu.Unlock()
				hist.Observe(uint64(lat.Microseconds()))
				if lat > sr.Max {
					sr.Max = lat
				}
				if err != nil {
					sr.Errors++
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					sr.Accepted++
				case http.StatusTooManyRequests:
					sr.Backpressured++
				case http.StatusServiceUnavailable:
					sr.Shed++
				default:
					sr.Errors++
				}
			}()
		}
		wg.Wait()
		sr.P50 = time.Duration(hist.Quantile(0.50)) * time.Microsecond
		sr.P95 = time.Duration(hist.Quantile(0.95)) * time.Microsecond
		sr.P99 = time.Duration(hist.Quantile(0.99)) * time.Microsecond
		res.Stages = append(res.Stages, sr)
		res.Accepted += sr.Accepted

		if cfg.SLO.MaxP99 > 0 && sr.P99 > cfg.SLO.MaxP99 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("stage %d rps: p99 %v > SLO %v", sr.RPS, sr.P99, cfg.SLO.MaxP99))
		}
		if sr.Sent > 0 {
			rate := float64(sr.Errors) / float64(sr.Sent)
			if rate > cfg.SLO.MaxErrorRate {
				res.Violations = append(res.Violations,
					fmt.Sprintf("stage %d rps: error rate %.3f > SLO %.3f", sr.RPS, rate, cfg.SLO.MaxErrorRate))
			}
		}
	}
	return res, nil
}
