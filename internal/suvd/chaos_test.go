package suvd

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"suvtm/internal/experiments"
)

// countingRunner completes instantly and counts executions per job id
// (keyed by the first run's seed, which tests keep unique per job).
type countingRunner struct {
	mu   sync.Mutex
	runs map[uint64]int
}

func newCountingRunner() *countingRunner {
	return &countingRunner{runs: map[uint64]int{}}
}

func (c *countingRunner) run(ctx context.Context, specs []experiments.Spec, opts experiments.BatchOptions) ([]*experiments.Outcome, error) {
	c.mu.Lock()
	c.runs[specs[0].Seed]++
	c.mu.Unlock()
	return make([]*experiments.Outcome, len(specs)), nil
}

func (c *countingRunner) count(seed uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs[seed]
}

// TestCrashRecoveryExactlyOnce is the headline chaos scenario: the
// journal is killed mid-append of a done record (as if the daemon took
// kill -9 during the write), the daemon "restarts", and across both
// generations every accepted job completes — with no completed job
// re-executed.
func TestCrashRecoveryExactlyOnce(t *testing.T) {
	path := journalPath(t)
	cr := newCountingRunner()

	// Generation A. Process appends: #1 accepted j-1, #2 done j-1,
	// #3 accepted j-2, #4 done j-2 (torn mid-write by the injected
	// crash). Workers=1 serializes jobs so the append order is fixed.
	sa := newTestServer(t, Config{
		Workers: 1, Journal: path,
		Runner: cr.run,
		Faults: &Faults{JournalCrashAt: 4},
	})
	ha := sa.Handler()
	ids := map[uint64]string{}
	for _, seed := range []uint64{1, 2} {
		rec := submit(t, ha, jobBody("c", seed))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("seed %d: %d %s", seed, rec.Code, rec.Body)
		}
		var resp struct{ ID string }
		json.Unmarshal(rec.Body.Bytes(), &resp)
		ids[seed] = resp.ID
		waitIdle(t, sa) // serialize: job finishes (and journals) before the next submit
	}
	// Both jobs completed from generation A's point of view...
	if snap := sa.Snapshot(); snap.Completed != 2 {
		t.Fatalf("gen A completed = %d, want 2", snap.Completed)
	}
	// ...but the journal died writing j-2's done record.
	if got := sa.counters.journalErrors.Load(); got != 1 {
		t.Fatalf("gen A journal errors = %d, want 1 (torn done record)", got)
	}
	// With a dead journal the 202 promise cannot be made durable, so
	// admission refuses rather than lying.
	if rec := submit(t, ha, jobBody("c", 3)); rec.Code != http.StatusInternalServerError {
		t.Fatalf("submit on dead journal: %d, want 500", rec.Code)
	}
	sa.Close() // the "crash": stop the process with the WAL torn

	// Generation B replays the torn WAL: j-1 has its done record and
	// stays finished; j-2's done record is the torn tail, so it is
	// exactly the job that re-runs.
	sb := newTestServer(t, Config{Workers: 1, Journal: path, Runner: cr.run})
	waitIdle(t, sb)
	snap := sb.Snapshot()
	if snap.Replayed != 1 {
		t.Fatalf("gen B replayed = %d, want 1 (only the torn job)", snap.Replayed)
	}
	if snap.Completed != 1 {
		t.Fatalf("gen B completed = %d, want 1", snap.Completed)
	}
	var js JobStatus
	json.Unmarshal(get(t, sb.Handler(), "/v1/jobs/"+ids[2]).Body.Bytes(), &js)
	if js.State != "completed" {
		t.Fatalf("replayed job %s = %s, want completed", ids[2], js.State)
	}
	if got := cr.count(1); got != 1 {
		t.Errorf("durably-completed job executed %d times, want 1 (no re-run)", got)
	}
	if got := cr.count(2); got != 2 {
		t.Errorf("torn job executed %d times across generations, want 2 (gen A + replay)", got)
	}

	// Generation C: nothing left to replay — recovery converged.
	sc := newTestServer(t, Config{Workers: 1, Journal: path, Runner: cr.run})
	if snap := sc.Snapshot(); snap.Replayed != 0 {
		t.Errorf("gen C replayed = %d, want 0", snap.Replayed)
	}
}

// TestChaosScenarioDeterministic runs an identical chaos scenario twice
// — slow + failing ingress, panicking and flaky workers, fixed request
// sequence — and requires identical observable outcomes. The harness is
// count-based, so a chaos run is a pure function of the sequence.
func TestChaosScenarioDeterministic(t *testing.T) {
	type outcome struct {
		accepted, completed, deadLettered uint64
		retries, panics                   uint64
		injected                          uint64
		http500                           int
		states                            string
	}
	runScenario := func() outcome {
		cr := newCountingRunner()
		s := newTestServer(t, Config{
			Workers: 1, MaxAttempts: 2, RetryBase: time.Microsecond, RetrySeed: 42,
			EscalateAfter: 1000,
			Runner:        cr.run,
			Faults: &Faults{
				SlowEvery: 3, SlowBy: time.Microsecond,
				FailEvery:  5,
				PanicEvery: 4,
				ErrorEvery: 7,
			},
		})
		h := s.Handler()
		var o outcome
		for seed := uint64(1); seed <= 12; seed++ {
			rec := submit(t, h, jobBody("c", seed))
			if rec.Code == http.StatusInternalServerError {
				o.http500++
			}
			waitIdle(t, s) // serialize attempts so the fault sequence is fixed
		}
		var list []JobStatus
		json.Unmarshal(get(t, h, "/v1/jobs").Body.Bytes(), &list)
		states := make([]string, len(list))
		for i, js := range list {
			states[i] = js.State
		}
		o.states = strings.Join(states, ",")
		snap := s.Snapshot()
		o.accepted, o.completed, o.deadLettered = snap.Accepted, snap.Completed, snap.DeadLetters
		o.retries, o.panics = snap.Retries, snap.Panics
		o.injected = s.cfg.Faults.Injected()
		return o
	}
	a, b := runScenario(), runScenario()
	if a != b {
		t.Fatalf("chaos scenario diverged between identical runs:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
	if a.http500 == 0 || a.panics == 0 || a.injected == 0 {
		t.Errorf("scenario injected no faults (%+v) — chaos knobs are dead", a)
	}
	if a.accepted != a.completed+a.deadLettered {
		t.Errorf("accepted %d != completed %d + deadlettered %d: a job vanished",
			a.accepted, a.completed, a.deadLettered)
	}
}

// TestShedLadderUnit drives the ladder through both rungs and back as a
// pure state machine, including the terminal drain.
func TestShedLadderUnit(t *testing.T) {
	l := newShedLadder(Config{EscalateAfter: 2, HighWater: 0.75, LowWater: 0.25}.withDefaults())
	if l.State() != Normal {
		t.Fatal("ladder not born normal")
	}
	l.observe(1.0)
	if st := l.observe(1.0); st != ShedUncached {
		t.Fatalf("after 2 high: %v, want shed-uncached", st)
	}
	l.observe(1.0)
	if st := l.observe(1.0); st != CacheOnly {
		t.Fatalf("after 4 high: %v, want cache-only", st)
	}
	// The ladder tops out at CacheOnly: more pressure cannot reach
	// Draining, which only drain() enters.
	l.observe(1.0)
	if st := l.observe(1.0); st != CacheOnly {
		t.Fatalf("pressure past cache-only: %v, want cache-only", st)
	}
	// Mid-band observations reset pressure; relief steps down one rung
	// at a time.
	l.observe(0.5)
	l.observe(0.0)
	if st := l.observe(0.0); st != ShedUncached {
		t.Fatalf("after relief: %v, want shed-uncached", st)
	}
	l.observe(0.0)
	if st := l.observe(0.0); st != Normal {
		t.Fatalf("after more relief: %v, want normal", st)
	}
	l.drain()
	if st := l.observe(0.0); st != Draining {
		t.Fatalf("after drain: %v, want draining (terminal)", st)
	}
	trs := l.Transitions()
	want := []string{"shed-uncached", "cache-only", "shed-uncached", "normal", "draining"}
	if len(trs) != len(want) {
		t.Fatalf("transitions %+v, want %v", trs, want)
	}
	for i, tr := range trs {
		if tr.To != want[i] || tr.Seq != i+1 {
			t.Errorf("transition %d = %+v, want to=%s seq=%d", i, tr, want[i], i+1)
		}
	}
}

// TestStateStringsExhaustive pins the string forms the API exposes and
// the panic on unknown values that the exhaustive lint discipline
// expects.
func TestStateStringsExhaustive(t *testing.T) {
	wantShed := map[State]string{
		Normal: "normal", ShedUncached: "shed-uncached",
		CacheOnly: "cache-only", Draining: "draining",
	}
	for st, want := range wantShed {
		if st.String() != want {
			t.Errorf("State(%d) = %q, want %q", st, st.String(), want)
		}
	}
	wantJob := map[JobState]string{
		JobQueued: "queued", JobRunning: "running", JobCompleted: "completed",
		JobFailed: "failed", JobDeadLetter: "deadletter",
	}
	for st, want := range wantJob {
		if st.String() != want {
			t.Errorf("JobState(%d) = %q, want %q", st, st.String(), want)
		}
		if got := terminalName(st.String()); got != st.terminal() {
			t.Errorf("terminalName(%q) = %v, terminal() = %v", st.String(), got, st.terminal())
		}
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on an unknown value did not panic", name)
			}
		}()
		f()
	}
	mustPanic("State.String", func() { _ = State(99).String() })
	mustPanic("JobState.String", func() { _ = JobState(99).String() })
	mustPanic("JobState.terminal", func() { _ = JobState(99).terminal() })
}
