package suvd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"suvtm/internal/experiments"
)

// instantRunner completes every spec immediately with empty outcomes.
func instantRunner(ctx context.Context, specs []experiments.Spec, opts experiments.BatchOptions) ([]*experiments.Outcome, error) {
	return make([]*experiments.Outcome, len(specs)), nil
}

// blockingRunner parks every attempt until release is closed, signaling
// each arrival on started (buffered, non-blocking).
type blockingRunner struct {
	started chan string
	release chan struct{}
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, specs []experiments.Spec, opts experiments.BatchOptions) ([]*experiments.Outcome, error) {
	select {
	case b.started <- "":
	default:
	}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return make([]*experiments.Outcome, len(specs)), nil
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {} // no real backoff sleeps in tests
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submit(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func jobBody(client string, seeds ...uint64) string {
	runs := make([]string, len(seeds))
	for i, seed := range seeds {
		runs[i] = fmt.Sprintf(`{"app":"intruder","scheme":"SUV-TM","cores":2,"seed":%d,"scale":0.02}`, seed)
	}
	return fmt.Sprintf(`{"client":%q,"runs":[%s]}`, client, strings.Join(runs, ","))
}

func waitIdle(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("server never went idle: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: instantRunner, MaxRuns: 2})
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"no runs", `{"client":"c","runs":[]}`},
		{"unknown app", `{"runs":[{"app":"nope","scheme":"SUV-TM"}]}`},
		{"unknown scheme", `{"runs":[{"app":"intruder","scheme":"nope"}]}`},
		{"negative scale", `{"runs":[{"app":"intruder","scheme":"SUV-TM","scale":-1}]}`},
		{"too many runs", jobBody("c", 1, 2, 3)},
	}
	for _, tc := range cases {
		if rec := submit(t, h, tc.body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rec.Code, rec.Body)
		}
	}
	if got := s.counters.accepted.Load(); got != 0 {
		t.Errorf("accepted %d invalid jobs", got)
	}
}

// TestBackpressureQueueFull pins the 429 path: a full bounded queue
// rejects with Retry-After instead of queueing unboundedly, and every
// accepted job still completes once capacity frees.
func TestBackpressureQueueFull(t *testing.T) {
	br := newBlockingRunner()
	s := newTestServer(t, Config{
		Workers: 1, QueueCapacity: 2, PerClientCap: 64,
		// High EscalateAfter keeps the shed ladder out of this test.
		EscalateAfter: 1000,
		Runner:        br.run,
	})
	h := s.Handler()

	// One job occupies the worker...
	if rec := submit(t, h, jobBody("a", 1)); rec.Code != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", rec.Code, rec.Body)
	}
	<-br.started
	// ...two fill the queue...
	for i := uint64(2); i <= 3; i++ {
		if rec := submit(t, h, jobBody("a", i)); rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	// ...and the next is backpressured.
	rec := submit(t, h, jobBody("a", 4))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 without a useful Retry-After (%q)", ra)
	}
	var eb errorBody
	json.Unmarshal(rec.Body.Bytes(), &eb)
	if eb.RetryAfter < 1 {
		t.Errorf("429 body retry_after = %d, want >= 1", eb.RetryAfter)
	}
	if got := s.counters.rejectedQueue.Load(); got != 1 {
		t.Errorf("rejectedQueue = %d, want 1", got)
	}

	close(br.release)
	waitIdle(t, s)
	if snap := s.Snapshot(); snap.Completed != 3 || snap.Completed != snap.Accepted {
		t.Errorf("accepted %d, completed %d — accepted jobs were dropped", snap.Accepted, snap.Completed)
	}
}

// TestBackpressurePerClientCap pins tenant isolation: one client at its
// cap gets 429 while another client is still admitted.
func TestBackpressurePerClientCap(t *testing.T) {
	br := newBlockingRunner()
	s := newTestServer(t, Config{
		Workers: 1, QueueCapacity: 64, PerClientCap: 2,
		EscalateAfter: 1000,
		Runner:        br.run,
	})
	h := s.Handler()
	for i := uint64(1); i <= 2; i++ {
		if rec := submit(t, h, jobBody("tenant-a", i)); rec.Code != http.StatusAccepted {
			t.Fatalf("tenant-a submit %d: %d", i, rec.Code)
		}
	}
	if rec := submit(t, h, jobBody("tenant-a", 3)); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant-a over cap: %d, want 429", rec.Code)
	}
	if rec := submit(t, h, jobBody("tenant-b", 3)); rec.Code != http.StatusAccepted {
		t.Fatalf("tenant-b blocked by tenant-a's cap: %d", rec.Code)
	}
	if got := s.counters.rejectedClient.Load(); got != 1 {
		t.Errorf("rejectedClient = %d, want 1", got)
	}
	close(br.release)
	waitIdle(t, s)
}

// TestRetryLadderDeadLetter: a job whose every attempt fails with a
// retryable transient burns its attempt budget through jittered backoff
// and lands on the dead-letter list — visible, not silently dropped.
func TestRetryLadderDeadLetter(t *testing.T) {
	var mu sync.Mutex
	var sleeps []time.Duration
	s := newTestServer(t, Config{
		Workers: 1, MaxAttempts: 3,
		RetryBase: time.Millisecond, RetryCap: time.Second, RetrySeed: 7,
		Runner: instantRunner,
		Faults: &Faults{ErrorEvery: 1},
		Sleep: func(d time.Duration) {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
		},
	})
	h := s.Handler()
	rec := submit(t, h, jobBody("c", 1))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	var resp struct{ ID string }
	json.Unmarshal(rec.Body.Bytes(), &resp)
	waitIdle(t, s)

	st := get(t, h, "/v1/jobs/"+resp.ID)
	var js JobStatus
	json.Unmarshal(st.Body.Bytes(), &js)
	if js.State != "deadletter" || js.Attempts != 3 {
		t.Fatalf("job = %+v, want deadletter after 3 attempts", js)
	}
	if !strings.Contains(js.Error, "injected transient") {
		t.Errorf("dead-letter lost its cause: %q", js.Error)
	}
	if got := s.counters.retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2", sleeps)
	}
	// base 1ms: attempt 1 backs off in [1ms, 1.5ms], attempt 2 in
	// [2ms, 3ms] — exponential with bounded jitter.
	if sleeps[0] < time.Millisecond || sleeps[0] > 3*time.Millisecond/2 {
		t.Errorf("first backoff %v outside [1ms, 1.5ms]", sleeps[0])
	}
	if sleeps[1] < 2*time.Millisecond || sleeps[1] > 3*time.Millisecond {
		t.Errorf("second backoff %v outside [2ms, 3ms]", sleeps[1])
	}

	dl := get(t, h, "/v1/deadletters")
	var list []JobStatus
	json.Unmarshal(dl.Body.Bytes(), &list)
	if len(list) != 1 || list[0].ID != resp.ID {
		t.Errorf("deadletters = %+v, want [%s]", list, resp.ID)
	}
}

// TestWorkerPanicRecovered: an injected worker panic (the "dropped
// worker") is contained by the attempt's recover(), converted into a
// retryable error, and the job completes on the next attempt.
func TestWorkerPanicRecovered(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, MaxAttempts: 3, RetryBase: time.Microsecond,
		Runner: instantRunner,
		Faults: &Faults{PanicEvery: 2}, // attempt #2 of the process panics
	})
	h := s.Handler()
	r1 := submit(t, h, jobBody("c", 1)) // attempt 1: clean
	r2 := submit(t, h, jobBody("c", 2)) // attempt 2 panics, attempt 3 retries clean
	if r1.Code != http.StatusAccepted || r2.Code != http.StatusAccepted {
		t.Fatalf("submits: %d, %d", r1.Code, r2.Code)
	}
	waitIdle(t, s)
	snap := s.Snapshot()
	if snap.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (panic not recovered?)", snap.Completed)
	}
	if snap.Panics != 1 || snap.Retries != 1 {
		t.Errorf("panics = %d, retries = %d, want 1, 1", snap.Panics, snap.Retries)
	}
	var resp struct{ ID string }
	json.Unmarshal(r2.Body.Bytes(), &resp)
	var js JobStatus
	json.Unmarshal(get(t, h, "/v1/jobs/"+resp.ID).Body.Bytes(), &js)
	if js.State != "completed" || js.Attempts != 2 {
		t.Errorf("panicked job = %+v, want completed on attempt 2", js)
	}
}

// TestJobDeadline: a job over its deadline fails without retry (the
// budget is spent) with a typed deadline error.
func TestJobDeadline(t *testing.T) {
	br := newBlockingRunner() // never released: only ctx ends it
	s := newTestServer(t, Config{
		Workers: 1, JobTimeout: 5 * time.Millisecond, MaxAttempts: 3,
		Runner: br.run,
	})
	h := s.Handler()
	rec := submit(t, h, jobBody("c", 1))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	var resp struct{ ID string }
	json.Unmarshal(rec.Body.Bytes(), &resp)
	waitIdle(t, s)
	var js JobStatus
	json.Unmarshal(get(t, h, "/v1/jobs/"+resp.ID).Body.Bytes(), &js)
	if js.State != "failed" || js.Attempts != 1 {
		t.Fatalf("timed-out job = %+v, want failed on attempt 1", js)
	}
	if !strings.Contains(js.Error, "deadline") {
		t.Errorf("error %q does not name the deadline", js.Error)
	}
}

// TestShedLadderUnderPressure drives the full degradation round trip at
// the HTTP surface: sustained full-queue admissions escalate to
// shed-uncached (503 for uncached work), sustained relief steps back to
// normal — every transition visible on /healthz.
func TestShedLadderUnderPressure(t *testing.T) {
	br := newBlockingRunner()
	s := newTestServer(t, Config{
		Workers: 1, QueueCapacity: 2, PerClientCap: 64,
		EscalateAfter: 2, HighWater: 0.75, LowWater: 0.25,
		Runner: br.run,
	})
	h := s.Handler()
	// Saturate: one running (wait for the worker to take it, so the
	// queue count is deterministic), two queued.
	if rec := submit(t, h, jobBody("a", 1)); rec.Code != http.StatusAccepted {
		t.Fatalf("submit 1: %d", rec.Code)
	}
	<-br.started
	for i := uint64(2); i <= 3; i++ {
		if rec := submit(t, h, jobBody("a", i)); rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, rec.Code)
		}
	}
	// First full-queue observation: still normal, backpressured 429.
	if rec := submit(t, h, jobBody("a", 4)); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit 4: %d, want 429", rec.Code)
	}
	// Second consecutive observation escalates to shed-uncached, and the
	// triggering request is itself shed with 503.
	if rec := submit(t, h, jobBody("a", 5)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("full-queue submit 5: %d, want 503 (ladder escalated)", rec.Code)
	}
	if st := s.State(); st != ShedUncached {
		t.Fatalf("state after sustained pressure = %v, want shed-uncached", st)
	}
	// Degraded: uncached work is shed with 503 even though readiness
	// holds (cached work would still be served).
	rec := submit(t, h, jobBody("a", 6))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("uncached submit in degraded mode: %d, want 503", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("readyz in degraded mode: %d, want 200 (still serving cached)", rec.Code)
	}

	close(br.release)
	waitIdle(t, s)
	// Relief: queue empty. The first shed observation builds relief
	// pressure (still 503); the second steps the ladder down and admits.
	if rec := submit(t, h, jobBody("a", 7)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("first relief submit: %d, want 503 (still degraded)", rec.Code)
	}
	if rec := submit(t, h, jobBody("a", 8)); rec.Code != http.StatusAccepted {
		t.Fatalf("second relief submit: %d, want 202 (recovered)", rec.Code)
	}
	if st := s.State(); st != Normal {
		t.Errorf("state after relief = %v, want normal", st)
	}
	var stats Stats
	json.Unmarshal(get(t, h, "/healthz").Body.Bytes(), &stats)
	if len(stats.Transitions) != 2 {
		t.Fatalf("transitions = %+v, want up + down", stats.Transitions)
	}
	if stats.Transitions[0].To != "shed-uncached" || stats.Transitions[1].To != "normal" {
		t.Errorf("transition history wrong: %+v", stats.Transitions)
	}
	waitIdle(t, s)
}

// TestDrainAbandonsQueueToJournal is the SIGTERM path: draining rejects
// new work with 503, finishes the in-flight job, leaves queued jobs to
// the journal, and a next-generation server replays exactly those.
func TestDrainAbandonsQueueToJournal(t *testing.T) {
	path := journalPath(t)
	br := newBlockingRunner()
	s := newTestServer(t, Config{
		Workers: 1, QueueCapacity: 8, Journal: path,
		EscalateAfter: 1000,
		Runner:        br.run,
		DrainTimeout:  5 * time.Second,
	})
	h := s.Handler()
	ids := make([]string, 0, 3)
	for i := uint64(1); i <= 3; i++ {
		rec := submit(t, h, jobBody("a", i))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, rec.Code)
		}
		var resp struct{ ID string }
		json.Unmarshal(rec.Body.Bytes(), &resp)
		ids = append(ids, resp.ID)
	}
	<-br.started // job 1 in flight, jobs 2 and 3 queued

	s.BeginDrain()
	if rec := submit(t, h, jobBody("a", 9)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", rec.Code)
	}
	close(br.release) // let the in-flight job finish
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var js JobStatus
	json.Unmarshal(get(t, h, "/v1/jobs/"+ids[0]).Body.Bytes(), &js)
	if js.State != "completed" {
		t.Errorf("in-flight job %s = %s, want completed (drain must not kill it)", ids[0], js.State)
	}

	// Next generation: the journal hands back exactly the abandoned jobs.
	s2 := newTestServer(t, Config{Workers: 1, Journal: path, Runner: instantRunner})
	waitIdle(t, s2)
	snap := s2.Snapshot()
	if snap.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2 (the queued jobs)", snap.Replayed)
	}
	if snap.Completed != 2 {
		t.Fatalf("completed = %d, want 2 — an accepted job was dropped", snap.Completed)
	}
	for _, id := range ids[1:] {
		var js JobStatus
		json.Unmarshal(get(t, s2.Handler(), "/v1/jobs/"+id).Body.Bytes(), &js)
		if js.State != "completed" {
			t.Errorf("replayed job %s = %s, want completed", id, js.State)
		}
	}
}

// TestStreamNDJSON covers the streaming surface end to end over a real
// connection: initial status, FleetProgress rollups, terminal line.
func TestStreamNDJSON(t *testing.T) {
	progressed := make(chan struct{})
	release := make(chan struct{})
	s := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, specs []experiments.Spec, opts experiments.BatchOptions) ([]*experiments.Outcome, error) {
			opts.OnProgress(experiments.FleetProgress{Done: 1, Total: len(specs)})
			close(progressed)
			<-release
			opts.OnProgress(experiments.FleetProgress{Done: len(specs), Total: len(specs)})
			return make([]*experiments.Outcome, len(specs)), nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := strings.NewReader(jobBody("c", 1, 2))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ ID string }
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	<-progressed

	stream, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	dec := json.NewDecoder(stream.Body)
	var first streamMsg
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	if first.JobID != sub.ID || first.Progress == nil || first.Progress.Done != 1 {
		t.Fatalf("first stream line = %+v, want running with progress 1/2", first)
	}
	close(release)
	var last streamMsg
	for {
		var msg streamMsg
		if err := dec.Decode(&msg); err != nil {
			t.Fatalf("stream ended before terminal line: %v (last %+v)", err, last)
		}
		last = msg
		if msg.Final {
			break
		}
	}
	if last.State != "completed" {
		t.Errorf("terminal stream line = %+v, want completed", last)
	}
}

// TestMetricsExposition: /metrics serves the daemon counters, queue
// gauges and latency histograms in Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: instantRunner})
	h := s.Handler()
	submit(t, h, jobBody("c", 1))
	waitIdle(t, s)
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`suv_suvd_jobs_accepted{service="suvd"} 1`,
		`suv_suvd_jobs_completed{service="suvd"} 1`,
		"# TYPE suv_suvd_queue_depth gauge",
		"# TYPE suv_suvd_request_latency histogram",
		"# TYPE suv_suvd_job_latency histogram",
		"# TYPE suv_fleet_cache_hits counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestJobNotFound(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: instantRunner})
	h := s.Handler()
	if rec := get(t, h, "/v1/jobs/j-404"); rec.Code != http.StatusNotFound {
		t.Errorf("missing job: %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/v1/jobs/j-404/stream"); rec.Code != http.StatusNotFound {
		t.Errorf("missing job stream: %d, want 404", rec.Code)
	}
}

// TestListJobs pins submission-order listing across states.
func TestListJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Runner: instantRunner})
	h := s.Handler()
	for i := uint64(1); i <= 3; i++ {
		submit(t, h, jobBody("c", i))
	}
	waitIdle(t, s)
	var list []JobStatus
	json.Unmarshal(get(t, h, "/v1/jobs").Body.Bytes(), &list)
	if len(list) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list))
	}
	for i, js := range list {
		if js.State != "completed" {
			t.Errorf("job %d state %s, want completed", i, js.State)
		}
	}
}
