// Package suvd is the long-running simulation service around the fleet
// engine: an HTTP/JSON daemon that accepts batches of run specs,
// executes them through experiments.RunManyWith over the
// content-addressed run cache, and streams per-scheme FleetProgress
// rollups as NDJSON.
//
// The package is organized around four robustness mechanisms, each
// independently testable:
//
//   - admission control + backpressure (server.go): a bounded job queue
//     with per-client concurrency caps. Over-capacity submissions get
//     429 + Retry-After instead of queueing unboundedly; the queue's
//     channel buffer is the hard bound.
//   - crash-safe job journal (journal.go): an append-only WAL of
//     accepted/done records with CRC-framed, fsync'd appends. A killed
//     daemon replays incomplete jobs on restart — idempotent, because
//     the run cache turns re-execution of completed work into lookups.
//   - retry/timeout ladder (retry.go): per-job deadlines, worker
//     recover() converting panics into typed errors with stack
//     post-mortems, bounded retries with seeded jittered exponential
//     backoff, then a dead-letter list.
//   - graceful degradation (shed.go): a count-based load-shedding
//     ladder — shed uncached work first, degrade to cache-only mode
//     under sustained overload, drain in-flight jobs on SIGTERM — with
//     every transition visible via /healthz, /readyz and /metrics.
//
// chaos.go is a deterministic fault-injecting middleware for the daemon
// itself (slow handlers, dropped workers, mid-journal crashes);
// loadtest.go is an RPS-ramp driver with latency-SLO gates.
//
// suvd is host-side infrastructure, exempt from the suvlint wallclock
// ban (see internal/analysis); the simulated machine it drives stays
// patrolled.
package suvd

import (
	"errors"
	"fmt"
	"runtime"
	"time"
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the default named in its comment.
type Config struct {
	// Workers is the number of concurrent job executors (0 = half of
	// GOMAXPROCS, min 1 — each job is itself a parallel batch).
	Workers int
	// QueueCapacity bounds the number of accepted-but-not-running jobs
	// (0 = 64). Admission beyond it returns 429 + Retry-After.
	QueueCapacity int
	// PerClientCap bounds one client's queued+running jobs (0 = 8).
	PerClientCap int
	// MaxRuns bounds the runs in a single job (0 = 256).
	MaxRuns int
	// MaxAttempts is the per-job execution budget before the job is
	// dead-lettered (0 = 3). Only retryable failures (worker panics,
	// injected transients) consume extra attempts.
	MaxAttempts int
	// JobTimeout is the per-job deadline (0 = none). A timed-out job
	// fails without retry: the deadline budget is already spent.
	JobTimeout time.Duration
	// RetryBase and RetryCap shape the backoff ladder: attempt n sleeps
	// base<<(n-1) capped at RetryCap, plus up to 50% seeded jitter
	// (base 0 = 50ms, cap 0 = 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetrySeed seeds the jitter stream (0 = 1), so a chaos scenario
	// replays with identical backoff choices.
	RetrySeed uint64
	// DrainTimeout bounds how long Close waits for in-flight jobs after
	// BeginDrain (0 = 30s); past it, in-flight batches are canceled via
	// their context and abandoned to the journal.
	DrainTimeout time.Duration

	// EscalateAfter is how many consecutive pressure observations move
	// the shedding ladder one step (0 = 3); HighWater/LowWater are the
	// queue-occupancy ratios that build and relieve pressure
	// (0 = 0.75 / 0.25).
	EscalateAfter int
	HighWater     float64
	LowWater      float64

	// Journal is the WAL path ("" = ephemeral: no crash safety, used by
	// tests and throwaway instances).
	Journal string

	// ProgressEvery is the completed-run granularity of streamed
	// FleetProgress rollups (0 = 1).
	ProgressEvery int

	// Runner executes one job's specs (nil = the fleet engine,
	// experiments.RunManyWith). Tests and the chaos harness substitute
	// stubs here.
	Runner Runner
	// Sleep is the backoff sleep hook (nil = time.Sleep).
	Sleep func(time.Duration)
	// Faults, when non-nil, arms the deterministic chaos harness.
	Faults *Faults
}

// withDefaults resolves every zero field.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.PerClientCap <= 0 {
		c.PerClientCap = 8
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 256
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 3
	}
	if c.HighWater <= 0 {
		c.HighWater = 0.75
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.25
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Typed admission/execution errors. Admission errors map to HTTP
// statuses in server.go; execution errors drive the retry ladder.
var (
	// ErrQueueFull: the bounded queue is at capacity (429).
	ErrQueueFull = errors.New("suvd: job queue full")
	// ErrClientCap: the client is at its concurrency cap (429).
	ErrClientCap = errors.New("suvd: per-client concurrency cap reached")
	// ErrShed: the shedding ladder rejected uncached work (503).
	ErrShed = errors.New("suvd: load shed: uncached work rejected in degraded mode")
	// ErrDraining: the daemon is draining and accepts nothing (503).
	ErrDraining = errors.New("suvd: draining")
	// ErrInjected is the chaos harness's retryable transient.
	ErrInjected = errors.New("suvd: injected transient fault")
)

// WorkerPanicError is a panic captured inside a job attempt, converted
// into a typed, retryable error carrying its post-mortem.
type WorkerPanicError struct {
	JobID   string
	Attempt int
	Value   string
	Stack   string
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("suvd: worker panic on job %s attempt %d: %s", e.JobID, e.Attempt, e.Value)
}

// DeadlineError is a job that exceeded its per-job deadline. Not
// retryable: the budget is spent.
type DeadlineError struct {
	JobID   string
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("suvd: job %s exceeded its %v deadline", e.JobID, e.Timeout)
}

// Retryable classifies an execution error for the retry ladder: worker
// panics and injected transients may heal on retry; deadline
// exhaustion, cancellation, and deterministic simulator errors do not.
func Retryable(err error) bool {
	var wp *WorkerPanicError
	if errors.As(err, &wp) {
		return true
	}
	return errors.Is(err, ErrInjected)
}
