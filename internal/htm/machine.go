package htm

import (
	"fmt"

	"suvtm/internal/coherence"
	"suvtm/internal/faults"
	"suvtm/internal/forensics"
	"suvtm/internal/interconnect"
	"suvtm/internal/mem"
	"suvtm/internal/metrics"
	"suvtm/internal/redirect"
	"suvtm/internal/signature"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/trace"
	"suvtm/internal/workload"
)

// Machine is one simulated CMP running one application under one
// version-management scheme. It is single-goroutine and fully
// deterministic for a given (Config, programs, seed); experiments run
// many machines concurrently, one goroutine each.
type Machine struct {
	cfg    Config
	Memory *mem.Memory
	Alloc  *mem.Allocator
	L2     *mem.Cache
	Dir    *coherence.Directory
	Mesh   *interconnect.Mesh
	Cores  []*Core
	VM     VersionManager

	// SUV machinery (always constructed; only SUV-based schemes use it).
	Redirect *redirect.Redirect
	Summary  *signature.Summary

	tracer  *trace.Recorder
	metrics *metrics.Collector
	obs     *observer
	fx      *forensics.Collector

	heap            sim.ReadyHeap
	now             sim.Cycles
	barriers        map[uint32]*barrierState
	commitBusyUntil sim.Cycles
	finished        int
	participants    int // cores with a non-empty program (barrier quorum)

	// Robustness layer (see progress.go): the fault injector driving a
	// chaos plan, the pool-exhaustion reclamation penalty currently in
	// force, the global serialization token (-1 = free) with the cores
	// parked on it, and the next periodic invariant check.
	faults       *faults.Injector
	poolPenalty  sim.Cycles
	tokenCore    int
	tokenWaiting []int
	nextCheckAt  sim.Cycles

	// par is the deterministic parallel window engine (parallel.go),
	// non-nil only while a Shards>=1 run is using it; prePar is the
	// arena its scratch is drawn from and returned to (Prebuilt.Par).
	par    *parEngine
	prePar *ParArena
}

type barrierState struct {
	arrived int
	waiting []int
}

// Result is the outcome of one simulation run.
type Result struct {
	Cycles    sim.Cycles // wall-clock of the slowest core
	Breakdown stats.Breakdown
	PerCore   []stats.Breakdown
	Counters  stats.Counters
}

// Prebuilt carries reusable machine components a campaign worker retains
// across consecutive simulations: the coherence directory, the redirect
// state and the cache models, whose page tables and way arrays dominate
// per-run allocation (the 8 MB L2 alone). NewWith resets every provided
// component before use, so a machine built on a warm arena is
// bit-identical to a cold one; nil fields are constructed fresh.
type Prebuilt struct {
	Dir      *coherence.Directory
	Redirect *redirect.Redirect
	L2       *mem.Cache
	L1s      []*mem.Cache // per-core; shorter slices fall back to fresh L1s
	// Par retains the parallel window engine's scratch (sharded heaps,
	// per-core window parts, bank claim tables) across runs; nil builds
	// fresh on first sharded run. Purely host-side state: reuse cannot
	// affect simulated results.
	Par *ParArena
}

// New builds a machine executing one program per core under vm. Programs
// beyond cfg.Cores are rejected; fewer programs leave the extra cores
// idle. Memory and alloc must be the ones the workload generator used.
func New(cfg Config, vm VersionManager, programs []workload.Program, memory *mem.Memory, alloc *mem.Allocator) *Machine {
	return NewWith(cfg, vm, programs, memory, alloc, Prebuilt{})
}

// NewWith is New with an arena of reusable components (see Prebuilt).
func NewWith(cfg Config, vm VersionManager, programs []workload.Program, memory *mem.Memory, alloc *mem.Allocator, pre Prebuilt) *Machine {
	if len(programs) > cfg.Cores {
		panic(fmt.Sprintf("htm: %d programs for %d cores", len(programs), cfg.Cores))
	}
	// One line→bank map serves the directory and the L2: the bank bits
	// are the top log2(banks) bits of the L2 set index, so "bank b" names
	// the same address stripe in both structures and one claim in the
	// window engine covers both.
	banks := cfg.resolvedBanks()
	bankShift := uint(0)
	for 1<<bankShift < cfg.L2.Sets()/banks {
		bankShift++
	}
	dir := pre.Dir
	if dir == nil {
		dir = coherence.NewDirectoryBanked(cfg.Cores, banks, bankShift)
	} else {
		dir.ResetBanked(cfg.Cores, banks, bankShift)
	}
	rd := pre.Redirect
	if rd == nil {
		rd = redirect.New(cfg.Redirect, alloc)
	} else {
		rd.Reset(cfg.Redirect, alloc)
	}
	l2cfg := cfg.L2
	l2cfg.Banks = banks
	l2 := pre.L2
	if l2 == nil {
		l2 = mem.NewCache(l2cfg)
	} else {
		l2.Reset(l2cfg)
	}
	m := &Machine{
		cfg:       cfg,
		Memory:    memory,
		Alloc:     alloc,
		L2:        l2,
		Dir:       dir,
		Mesh:      interconnect.NewMesh(cfg.Cores, cfg.WireLatency, cfg.RouteLatency),
		VM:        vm,
		Redirect:  rd,
		Summary:   signature.NewSummary(cfg.SigBits, signature.HashH3),
		barriers:  make(map[uint32]*barrierState),
		tokenCore: -1,
	}
	m.prePar = pre.Par
	m.Dir.Retry = coherence.RetryPolicy{Timeout: cfg.ProtocolTimeout, MaxRetries: cfg.MeshMaxRetries}
	rng := sim.NewRNG(cfg.Seed)
	for i := 0; i < cfg.Cores; i++ {
		var l1 *mem.Cache
		if i < len(pre.L1s) && pre.L1s[i] != nil {
			l1 = pre.L1s[i]
			l1.Reset(cfg.L1)
		} else {
			l1 = mem.NewCache(cfg.L1)
		}
		c := &Core{
			ID:        i,
			abortedBy: -1,
			doom: doomInfo{
				killer: forensics.NoCore, killerSite: forensics.NoSite,
				line: forensics.NoLine,
			},
			RNG:       rng.Fork(),
			L1:        l1,
			TLB:       mem.NewTLB(cfg.TLBEntries),
			ReadSig:   signature.NewBloom(cfg.SigBits, signature.HashH3),
			WriteSig:  signature.NewBloom(cfg.SigBits, signature.HashH3),
			readSet:   sim.NewLineSet(),
			writeSet:  sim.NewLineSet(),
		}
		c.writtenTargets = sim.NewLineSet()
		if i < len(programs) {
			c.Prog = programs[i]
		}
		if len(c.Prog.Ops) > 0 {
			m.participants++
		}
		m.Cores = append(m.Cores, c)
	}
	vm.Init(m)
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetTracer attaches an event recorder (nil detaches). Attach before
// Run; tracing begins immediately.
func (m *Machine) SetTracer(r *trace.Recorder) { m.tracer = r }

// Tracer returns the attached recorder (possibly nil).
func (m *Machine) Tracer() *trace.Recorder { return m.tracer }

// ArchMem returns the architectural view of memory: reads resolve
// through the committed redirect map, so callers see the value a program
// load would return at each address. Use it for post-run invariant
// checks; it is the identity for schemes that never redirect.
func (m *Machine) ArchMem() *ArchView { return &ArchView{m: m} }

// ArchView adapts the machine's physical memory plus redirect state into
// a workload.MemReader. It memoizes the last line's redirect resolution
// (invariant checks scan regions word by word, so 7 of 8 reads hit the
// memo); create a fresh view after the redirect state changes.
type ArchView struct {
	m        *Machine
	lastLine sim.Line
	lastTgt  sim.Line
	memoOK   bool
}

// Read returns the architectural value at addr.
func (v *ArchView) Read(addr sim.Addr) sim.Word {
	line := sim.LineOf(addr)
	if !v.memoOK || line != v.lastLine {
		v.lastLine, v.lastTgt, v.memoOK = line, v.m.Redirect.Resolve(-1, line), true
	}
	return v.m.Memory.Read(sim.AddrOf(v.lastTgt) | (addr & (sim.LineBytes - 1)))
}

// Now returns the current simulated cycle.
func (m *Machine) Now() sim.Cycles { return m.now }

// Run executes all programs to completion and returns the aggregated
// result. It fails if the watchdog fires or the cores deadlock on a
// mismatched barrier.
func (m *Machine) Run() (*Result, error) {
	if m.parallelEligible() {
		return m.runParallel()
	}
	for i, c := range m.Cores {
		if c.atEnd() {
			c.status = statusFinished
			m.finished++
			continue
		}
		m.heap.Push(0, i)
	}
	for m.heap.Len() > 0 {
		at, id := m.heap.Pop()
		if m.cfg.MaxCycles > 0 && at > m.cfg.MaxCycles {
			m.now = at
			return nil, m.failRun(&WatchdogError{MaxCycles: m.cfg.MaxCycles, At: at, Cores: m.snapshotCores()})
		}
		m.now = at
		if m.faults != nil {
			m.advanceFaults(at)
		}
		if err := m.maybeCheckInvariants(at); err != nil {
			return nil, m.failRun(err)
		}
		m.metrics.Tick(at)
		m.step(m.Cores[id])
	}
	if m.finished != len(m.Cores) {
		return nil, m.failRun(&DeadlockError{Finished: m.finished, Total: len(m.Cores), At: m.now, Cores: m.snapshotCores()})
	}
	return m.buildResult(), nil
}

// buildResult aggregates the per-core breakdowns into the run result
// once every core has finished; both engines end through it.
func (m *Machine) buildResult() *Result {
	res := &Result{PerCore: make([]stats.Breakdown, len(m.Cores))}
	var end sim.Cycles
	for _, c := range m.Cores {
		if c.finishedAt > end {
			end = c.finishedAt
		}
	}
	for i, c := range m.Cores {
		// A core that finished early waits at the final join (the paper's
		// Barrier component includes it).
		c.Breakdown.Add(stats.Barrier, end-c.finishedAt)
		res.PerCore[i] = c.Breakdown
		res.Breakdown.AddAll(&c.Breakdown)
		res.Counters.Add(&c.Counters)
	}
	res.Cycles = end
	if m.obs != nil {
		m.obs.finish(m, end)
	}
	return res
}

// failRun finalizes a failed run before the error propagates: the
// metrics collector flushes its trailing interval and builds the
// snapshot breakouts, so the diagnostics (time series, histograms,
// Chrome trace via the streaming sink) survive the failure instead of
// being lost with the *Result that never materialized.
func (m *Machine) failRun(err error) error {
	if m.obs != nil {
		m.obs.finish(m, m.now)
	}
	return err
}

// step advances one core by one operation (or one engine event).
func (m *Machine) step(c *Core) {
	//suv:nonexhaustive statusRunning and statusTokenWait fall through to the main dispatch below the switch
	switch c.status {
	case statusFinished:
		return
	case statusAborting:
		m.finishAbort(c)
		return
	case statusBarrier:
		// Barrier cores are woken by the releaser with status reset;
		// a stale heap entry can be ignored.
		return
	case statusLazyCommitWait:
		c.status = statusRunning
		if c.abortPending && c.InTx() {
			// A committer doomed us while we waited for the token.
			c.Counters.RemoteAborts++
			m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.RemoteKill,
				Line: c.doom.line, Other: c.abortedBy})
			m.startAbort(c, 0)
			return
		}
		m.doCommit(c)
		return
	}
	if c.abortPending && c.InTx() && !c.suspended {
		c.Counters.RemoteAborts++
		m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.RemoteKill,
			Line: c.doom.line, Other: c.abortedBy})
		m.startAbort(c, 0)
		return
	}
	op := c.op()
	switch op.Kind {
	case workload.OpCompute:
		m.finishOp(c, sim.Cycles(op.N))
	case workload.OpLoadImm:
		c.Regs[op.Reg] = op.Val
		m.finishOp(c, 1)
	case workload.OpAddImm:
		c.Regs[op.Reg] += op.Val
		m.finishOp(c, 1)
	case workload.OpAddReg:
		c.Regs[op.Reg] += c.Regs[op.Reg2]
		m.finishOp(c, 1)
	case workload.OpLoad:
		m.doLoad(c, op)
	case workload.OpStore:
		m.doStore(c, op.Addr, c.Regs[op.Reg])
	case workload.OpStoreImm:
		m.doStore(c, op.Addr, op.Val)
	case workload.OpBegin:
		m.doBegin(c, op.N)
	case workload.OpCommit:
		c.commitAdvance = 1
		m.doCommit(c)
	case workload.OpCommitOpen:
		c.commitAdvance = 1 + int(op.N)
		m.doCommitOpen(c, int(op.N))
	case workload.OpBarrier:
		m.doBarrier(c, op.N)
	case workload.OpSuspend:
		if !c.TxActive() {
			panic(fmt.Sprintf("htm: core %d: suspend outside an active transaction", c.ID))
		}
		c.suspended = true
		m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.Suspend, Other: -1})
		m.finishOp(c, sim.Cycles(op.N))
	case workload.OpResume:
		if !c.suspended {
			panic(fmt.Sprintf("htm: core %d: resume without suspend", c.ID))
		}
		c.suspended = false
		m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.Resume, Other: -1})
		// The context-switch cost belongs to the resuming transaction.
		m.finishOp(c, sim.Cycles(op.N))
	default:
		panic(fmt.Sprintf("htm: core %d: unknown op %v", c.ID, op))
	}
}

// finishOp charges lat for the current op (minimum one cycle: the cores
// are in-order single-issue), advances the PC and reschedules the core.
func (m *Machine) finishOp(c *Core, lat sim.Cycles) {
	if lat == 0 {
		lat = 1
	}
	m.chargeTx(c, lat)
	c.PC++
	if c.compRemaining > 0 {
		c.compRemaining--
		if c.compRemaining == 0 {
			m.nextCompensation(c)
		}
	}
	m.requeue(c, lat)
}

// nextCompensation jumps to the next queued compensating action, or back
// to the aborted transaction's begin when all have run.
func (m *Machine) nextCompensation(c *Core) {
	if len(c.compQueue) > 0 {
		r := c.compQueue[0]
		c.compQueue = c.compQueue[1:]
		c.PC = r.pc
		c.compRemaining = r.n
		return
	}
	c.PC = c.afterCompPC
}

// chargeTx attributes lat to the transaction attempt (resolved to Trans
// or Wasted later) or to NoTrans outside transactions. Work done while
// the transaction's thread is suspended belongs to the other thread and
// is NoTrans.
func (m *Machine) chargeTx(c *Core, lat sim.Cycles) {
	if c.TxActive() {
		c.attemptCyc += lat
	} else {
		c.Breakdown.Add(stats.NoTrans, lat)
	}
}

// requeue schedules the core's next step after lat cycles, or marks it
// finished when the program is exhausted.
func (m *Machine) requeue(c *Core, lat sim.Cycles) {
	if c.atEnd() {
		c.status = statusFinished
		c.finishedAt = m.now + lat
		m.finished++
		return
	}
	m.heap.Push(m.now+lat, c.ID)
}

// modeOf returns the conflict-detection mode of c's current transaction.
func (m *Machine) modeOf(c *Core) ExecMode {
	if !c.InTx() {
		return ModeNone
	}
	return m.VM.Mode(c)
}
