package htm

import (
	"fmt"

	"suvtm/internal/mem"
	"suvtm/internal/parrun"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// This file implements the deterministic parallel engine for a single
// run (Config.Shards >= 1): conservative time-window sharding with
// mesh-latency lookahead.
//
// The sequential engine is one global event loop: pop the earliest
// (cycle, core) event, step that core by one operation, push its
// continuation. The parallel engine keeps that loop — every operation
// that can touch shared state (cache fills, directory traffic, NACKs,
// begins/commits/aborts, barriers, the token ladder) still executes
// through it, one event at a time, in exactly the sequential order. What
// it adds is the *window*: a scan phase proves, before anything runs,
// that every core's next H-minAt cycles consist purely of core-local
// operations (register ops, computes, L1-hit loads, L1-Modified-hit
// stores the scheme's LocalPeeker certifies); those instruction chains
// then execute concurrently, one shard of cores per worker, each with a
// private clock, and merge back in canonical core-ID order.
//
// Soundness rests on three facts:
//
//  1. Core-locality: a certified operation reads and writes only state
//     owned by its core (registers, L1 LRU/dirty bits, signatures,
//     counters) plus flat-memory words on lines the core holds Modified
//     — which MESI makes exclusive — or reads of lines it holds at all.
//     Operations of different cores therefore commute within a window,
//     so any interleaving — including concurrent execution — produces
//     the state the sequential order would.
//  2. Horizon safety: H never exceeds the cycle of the earliest
//     possibly-unsafe event of ANY core (each chain's scan stops at the
//     first op it cannot certify; cores that are aborting, parked, or
//     mid-compensation bound H at their next event), and chains execute
//     strictly below H. No shared-state event can interleave a window.
//  3. Classification stability: certified ops never mutate any
//     classification input (summary signature, first-touch maps, L1
//     contents — LRU touches reorder ways but evict nothing), so the
//     scan's verdict still holds when the chain executes, and the
//     chain's own exec-time re-classification agrees with the scan.
//
// The mesh's physical lookahead (interconnect.Mesh.Lookahead, >= one
// hop: no cross-tile effect propagates faster) is the window floor: a
// horizon nearer than that can never beat the sequential loop, so such
// attempts are rejected before any chain runs, and rejection cost is
// kept down by an exponential event-count backoff.
//
// Shards partition cores by contiguous mesh blocks (Mesh.ShardOf); the
// shard count is a pure function of Config, while the number of host
// workers servicing them adapts to GOMAXPROCS (parrun.Workers) without
// observable effect — worker goroutines only ever touch state owned by
// the shards they process, and results merge in core-ID order.

const (
	// parWindowSpan caps how far past the earliest pending event one
	// window may reach, bounding scan work per attempt. The engine
	// rarely scans this far: the adaptive span (parEngine.span) tracks
	// how large windows actually come out, so certification work stays
	// proportional to executed work instead of to this ceiling.
	parWindowSpan sim.Cycles = 8192
	// parScanOpsCap bounds ops scanned per chain per attempt.
	parScanOpsCap = 8192
	// parMinWindowOps rejects windows whose scanned chains carry fewer
	// total ops than this: below it, the fixed cost of forming a window
	// (queue fold, scan, fork/join, merge) exceeds what the sequential
	// loop would spend just executing the ops.
	parMinWindowOps = 48
	// parMinBackoff/parMaxBackoff bound the exponential event-count
	// backoff between failed window attempts.
	parMinBackoff = 8
	parMaxBackoff = 4096
	// parVerifyChains re-certifies every chained op at execution time and
	// cross-checks its latency against the scan's prediction. The checks
	// are redundant while classification stability (soundness fact 3)
	// holds — and they roughly double the per-op cost of a chain — so
	// they are compiled out; flip the constant when touching peekOp, a
	// LocalPeeker, or any sequential fast path they mirror.
	parVerifyChains = false
)

// parEngine is the per-run state of the parallel engine.
type parEngine struct {
	sh      sim.ShardedHeap
	peeker  LocalPeeker
	shards  int     // logical shard count (clamped Config.Shards)
	workers int     // host workers servicing the shards
	coresBy [][]int // shard -> core IDs, ascending
	parts   []parPart
	order   []int      // scratch: candidate cores by ascending event time
	span    sim.Cycles // adaptive scan horizon (see tryWindow)

	windows  uint64 // windows executed
	chainOps uint64 // ops executed inside windows
	seqSteps uint64 // events executed by the sequential pocket loop
	attempts uint64 // window attempts (incl. rejected)
	scanOps  uint64 // ops certified by scans (incl. rejected attempts)
}

// parPart is one core's scratch state for the current window attempt.
type parPart struct {
	at    sim.Cycles // earliest pending event
	count int        // pending events in the queue
	take  bool       // participates in the window
	fin   bool       // chain ran to program end
	endT  sim.Cycles // chain clock after the window
	ops   int        // ops the chain executed
}

// ParallelStats reports what the parallel engine did during a run; all
// zeros when the run used the sequential engine.
type ParallelStats struct {
	Shards   int
	Workers  int
	Windows  uint64
	ChainOps uint64
	SeqSteps uint64
	Attempts uint64
	ScanOps  uint64 // certification work, including overscan past the final horizon
}

// ParallelStats returns the engine's counters for the last/current Run.
func (m *Machine) ParallelStats() ParallelStats {
	if m.par == nil {
		return ParallelStats{}
	}
	return ParallelStats{
		Shards: m.par.shards, Workers: m.par.workers,
		Windows: m.par.windows, ChainOps: m.par.chainOps,
		SeqSteps: m.par.seqSteps, Attempts: m.par.attempts,
		ScanOps: m.par.scanOps,
	}
}

// parallelEligible reports whether this run may use the window engine:
// Shards requested, a scheme that can certify core-local accesses, and
// none of the observers whose callbacks are keyed to the global event
// loop (fault plans, tracing, metrics, forensics, periodic invariant
// checks, the always-check debug aid). Ineligible runs take the
// sequential loop and are bit-identical by construction.
func (m *Machine) parallelEligible() bool {
	if m.cfg.Shards < 1 {
		return false
	}
	if m.faults != nil || m.tracer != nil || m.metrics != nil || m.obs != nil || m.fx.Enabled() {
		return false
	}
	if m.cfg.CheckInterval != 0 || debugAlwaysCheck {
		return false
	}
	_, ok := m.VM.(LocalPeeker)
	return ok
}

// runParallel is Run's parallel twin: the same event loop, with window
// execution spliced between sequential pockets.
func (m *Machine) runParallel() (*Result, error) {
	p := &parEngine{peeker: m.VM.(LocalPeeker)}
	m.par = p
	k := m.cfg.Shards
	if k > len(m.Cores) {
		k = len(m.Cores)
	}
	p.shards = k
	p.workers = parrun.Workers(k)
	p.sh.Reset(len(m.Cores), k, func(id int) int { return m.Mesh.ShardOf(id, k) })
	p.coresBy = make([][]int, p.sh.Shards())
	for id := range m.Cores {
		s := p.sh.ShardFor(id)
		p.coresBy[s] = append(p.coresBy[s], id)
	}
	p.parts = make([]parPart, len(m.Cores))
	p.order = make([]int, 0, len(m.Cores))
	p.span = 4 * m.Mesh.Lookahead()

	for i, c := range m.Cores {
		if c.atEnd() {
			c.status = statusFinished
			m.finished++
			continue
		}
		p.sh.Push(0, i)
	}
	backoff := parMinBackoff
	seqBudget := 0
	for {
		// Everything the sequential steps staged on m.heap moves to the
		// sharded queue (the 13 push sites all route through m.heap, so
		// nothing else needs to know which engine is running).
		for m.heap.Len() > 0 {
			at, id := m.heap.Pop()
			p.sh.Push(at, id)
		}
		if p.sh.Len() == 0 {
			break
		}
		// The serialization-token ladder wants the strictly sequential
		// order its irrevocability argument was written against, so
		// windows pause while a token is outstanding.
		if seqBudget <= 0 && m.tokenCore < 0 {
			if m.tryWindow() {
				backoff = parMinBackoff
				continue
			}
			seqBudget = backoff
			backoff *= 2
			if backoff > parMaxBackoff {
				backoff = parMaxBackoff
			}
		}
		at, id := p.sh.Pop()
		if m.cfg.MaxCycles > 0 && at > m.cfg.MaxCycles {
			m.now = at
			return nil, m.failRun(&WatchdogError{MaxCycles: m.cfg.MaxCycles, At: at, Cores: m.snapshotCores()})
		}
		m.now = at
		m.step(m.Cores[id])
		p.seqSteps++
		seqBudget--
	}
	if m.finished != len(m.Cores) {
		return nil, m.failRun(&DeadlockError{Finished: m.finished, Total: len(m.Cores), At: m.now, Cores: m.snapshotCores()})
	}
	return m.buildResult(), nil
}

// tryWindow attempts one conservative time window: compute the horizon
// H, and if it clears the mesh lookahead and carries enough work,
// execute every certified chain below H concurrently. Returns false —
// having changed nothing — when the window is rejected.
func (m *Machine) tryWindow() bool {
	p := m.par
	p.attempts++
	minAt, _, ok := p.sh.Peek()
	if !ok {
		return false
	}
	// The scan horizon adapts to how large windows actually come out
	// (span is updated after every success), with 2x headroom so a
	// growing window isn't capped twice in a row. Without this, every
	// attempt would certify chains out to parWindowSpan and then throw
	// almost all of that work away when another core's first unsafe op
	// pins the horizon a few hundred cycles out.
	la := m.Mesh.Lookahead()
	span := 2 * p.span
	if span > parWindowSpan {
		span = parWindowSpan
	}
	if span < la {
		span = la
	}
	capped := true
	bound := minAt + span
	if m.cfg.MaxCycles > 0 && bound > m.cfg.MaxCycles+1 {
		// Chains start ops at t < bound <= MaxCycles+1, so no chain ever
		// executes an op the sequential watchdog would have refused.
		bound = m.cfg.MaxCycles + 1
		capped = false
	}
	if bound < minAt+la {
		return false
	}

	// Pass 1: fold the queue into per-core (earliest, count) and mark
	// the cores whose chains may be scanned. Cores in any engine-driven
	// state (aborting, doom pending, compensation replay, a duplicated
	// queue entry) bound the horizon at their next event instead.
	parts := p.parts
	for i := range parts {
		parts[i] = parPart{}
	}
	p.sh.ForEach(func(at sim.Cycles, id int) {
		e := &parts[id]
		if e.count == 0 || at < e.at {
			e.at = at
		}
		e.count++
	})
	for id, c := range m.Cores {
		e := &parts[id]
		if e.count == 0 {
			continue
		}
		if e.count != 1 || c.status != statusRunning || c.abortPending || c.compRemaining > 0 {
			if e.at < bound {
				bound = e.at
			}
			continue
		}
		e.take = true
	}
	if bound < minAt+la {
		return false
	}

	// Pass 2: scan each candidate chain up to the current bound,
	// shrinking the bound to the earliest uncertified op found anywhere.
	// Candidates go in ascending event-time order (ties by core ID —
	// deterministic), so the chain most likely to pin the bound is
	// scanned first: when the earliest pending op is itself uncertified
	// — the common state right after a window — the attempt dies after
	// one peek instead of after fully scanning every other chain.
	order := p.order[:0]
	for id := range m.Cores {
		if parts[id].take {
			order = append(order, id)
		}
	}
	for i := 1; i < len(order); i++ { // insertion sort: tiny, allocation-free
		for j := i; j > 0 && parts[order[j]].at < parts[order[j-1]].at; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	totalOps := 0
	for _, id := range order {
		e := &parts[id]
		park, ops := m.scanChain(m.Cores[id], e.at, bound)
		totalOps += ops
		if park < bound {
			bound = park
			if bound < minAt+la {
				return false
			}
		}
	}
	if totalOps < parMinWindowOps {
		return false
	}
	h := bound
	if capped && h == minAt+span {
		p.span = span // chains outran the horizon: double the next scan
	} else {
		p.span = (p.span + (h - minAt) + 1) / 2 // track the real window size
	}

	// Commit to the window: pull participating chains out of the queue.
	// (The earliest core always participates: were it ineligible, pass 1
	// would have pinned bound to minAt and the lookahead gate fired.)
	n := 0
	for id := range m.Cores {
		e := &parts[id]
		e.take = e.take && e.at < h
		if e.take {
			p.sh.Remove(e.at, id)
			n++
		}
	}
	if n == 0 {
		return false
	}

	// Execute: one worker per shard; each worker advances only cores of
	// its shard and pushes continuations onto its shard's private heap,
	// so no two goroutines ever share mutable state.
	parrun.Run(p.workers, len(p.coresBy), func(s int) {
		sh := p.sh.Shard(s)
		for _, id := range p.coresBy[s] {
			e := &parts[id]
			if !e.take {
				continue
			}
			end, fin, ops := m.execChain(m.Cores[id], e.at, h)
			e.endT, e.fin, e.ops = end, fin, ops
			if !fin {
				sh.Push(end, id)
			}
		}
	})

	// Merge in canonical core-ID order. (Today's merge is commutative —
	// a finish count and op totals — but the order is load-bearing
	// documentation: any future cross-core effect folds in here.)
	for id := range parts {
		e := &parts[id]
		if !e.take {
			continue
		}
		if e.fin {
			m.finished++
		}
		p.chainOps += uint64(e.ops)
	}
	p.windows++
	return true
}

// scanChain walks c's program from its pending event at cycle `at`,
// certifying ops until the first one it cannot, the bound, or the op
// cap. It returns the cycle the chain is certified through (no unsafe
// op of c's starts below it) and how many ops it saw.
func (m *Machine) scanChain(c *Core, at, bound sim.Cycles) (park sim.Cycles, ops int) {
	t := at
	pc := c.PC
	prog := c.Prog.Ops
	n := len(prog)
	for t < bound {
		if pc >= n {
			// The chain finishes inside the window: no constraint beyond.
			m.par.scanOps += uint64(ops)
			return bound, ops
		}
		// Pure-register ops — the bulk of an instruction-grain trace —
		// classify inline; the arms must return exactly what peekOp's
		// matching cases return (execChain's parVerifyChains mode checks
		// that agreement op by op). Only memory and engine ops pay the
		// peekOp call.
		var lat sim.Cycles
		if k := prog[pc].Kind; k-workload.OpLoadImm <= workload.OpAddReg-workload.OpLoadImm {
			lat = 1
		} else if k == workload.OpCompute {
			lat = sim.Cycles(prog[pc].N)
			if lat == 0 {
				lat = 1
			}
		} else {
			var safe bool
			lat, safe = m.peekOp(c, pc)
			if !safe {
				m.par.scanOps += uint64(ops)
				return t, ops
			}
			if lat == 0 {
				lat = 1
			}
		}
		t += lat
		pc++
		ops++
		if ops >= parScanOpsCap {
			m.par.scanOps += uint64(ops)
			return t, ops
		}
	}
	m.par.scanOps += uint64(ops)
	return t, ops
}

// peekOp classifies the op at pc without side effects: can it run as
// part of a core-local chain, and at exactly what latency? Both the
// scan and the exec phases use this single classifier, so they cannot
// disagree. The conditions mirror the sequential fast paths verbatim:
// an L1-hit load, an L1-Modified-hit store to an already-materialized
// word, with the scheme certifying its own part via LocalPeeker.
func (m *Machine) peekOp(c *Core, pc int) (lat sim.Cycles, safe bool) {
	op := c.Prog.Ops[pc]
	//suv:nonexhaustive every op kind not listed is handled by the sequential loop via the default arm
	switch op.Kind {
	case workload.OpCompute:
		return sim.Cycles(op.N), true
	case workload.OpLoadImm, workload.OpAddImm, workload.OpAddReg:
		return 1, true
	case workload.OpLoad:
		pk := m.par.peeker.PeekLoad(m, c, sim.LineOf(op.Addr))
		if !pk.OK {
			return 0, false
		}
		if _, hit := c.L1.Peek(pk.Target); !hit {
			return 0, false
		}
		return pk.Lat + m.cfg.L1Latency, true
	case workload.OpStore, workload.OpStoreImm:
		line := sim.LineOf(op.Addr)
		if c.TxActive() && m.modeOf(c) == ModeLazy {
			return 0, false
		}
		pk := m.par.peeker.PeekStore(m, c, line)
		if !pk.OK {
			return 0, false
		}
		if state, hit := c.L1.Peek(pk.Target); !hit || state != mem.Modified {
			return 0, false
		}
		if !m.Memory.Written(translatedAddr(pk.Target, op.Addr)) {
			// A first-ever store materializes its backing page and
			// footprint bit — shared structures — so it runs sequentially.
			return 0, false
		}
		return pk.Lat + m.cfg.L1Latency, true
	default:
		// Begin/Commit/CommitOpen/Barrier/Suspend/Resume and anything
		// new: engine events, never part of a chain.
		return 0, false
	}
}

// execChain runs c's certified instruction chain with a private clock
// from t strictly below the horizon h, replicating the sequential
// step/finishOp paths for exactly the op shapes peekOp certifies. It
// returns the chain's clock, whether the program finished, and the op
// count.
func (m *Machine) execChain(c *Core, t, h sim.Cycles) (sim.Cycles, bool, int) {
	ops := 0
	for t < h {
		var want sim.Cycles
		if parVerifyChains {
			var safe bool
			want, safe = m.peekOp(c, c.PC)
			if !safe {
				// Unreachable while classification stability holds (the
				// scan certified this chain through h).
				panic(fmt.Sprintf("htm: core %d pc %d: chained op decertified between scan and exec", c.ID, c.PC))
			}
		}
		op := c.op()
		var lat sim.Cycles
		//suv:nonexhaustive peekOp certified this op as one of the chain-executable kinds; the default arm guards the contract
		switch op.Kind {
		case workload.OpCompute:
			lat = sim.Cycles(op.N)
		case workload.OpLoadImm:
			c.Regs[op.Reg] = op.Val
			lat = 1
		case workload.OpAddImm:
			c.Regs[op.Reg] += op.Val
			lat = 1
		case workload.OpAddReg:
			c.Regs[op.Reg] += c.Regs[op.Reg2]
			lat = 1
		case workload.OpLoad:
			lat = m.execLoad(c, op)
		case workload.OpStore:
			lat = m.execStore(c, op.Addr, c.Regs[op.Reg], t)
		case workload.OpStoreImm:
			lat = m.execStore(c, op.Addr, op.Val, t)
		default:
			panic(fmt.Sprintf("htm: parallel chain reached non-local op %v", op))
		}
		if lat == 0 {
			lat = 1
		}
		if parVerifyChains && lat != want && want != 0 {
			panic(fmt.Sprintf("htm: core %d op %v: chain latency %d != certified %d", c.ID, op, lat, want))
		}
		// finishOp, minus the compensation ladder peekOp's eligibility
		// gate excluded (compRemaining == 0 for every chain).
		if c.TxActive() {
			c.attemptCyc += lat
		} else {
			c.Breakdown.Add(stats.NoTrans, lat)
		}
		c.PC++
		ops++
		if c.atEnd() {
			c.status = statusFinished
			c.finishedAt = t + lat
			return t + lat, true, ops
		}
		t += lat
	}
	return t, false, ops
}

// execLoad is doLoad's L1-hit fast path for certified loads: LRU touch,
// then the scheme's LoadLocal — the exact observable effects of
// Translate+Load on an access PeekLoad certified, without re-walking the
// filters the scan already cleared. Under parVerifyChains the full
// scheme path runs instead, so a new LocalPeeker implementation can be
// validated against it.
func (m *Machine) execLoad(c *Core, op workloadOp) sim.Cycles {
	line := sim.LineOf(op.Addr)
	var val sim.Word
	var lat sim.Cycles
	if parVerifyChains {
		target, tlat := m.VM.Translate(m, c, line, false)
		if target != line {
			panic(fmt.Sprintf("htm: core %d: certified load of line %d translated to %d", c.ID, line, target))
		}
		c.L1.Lookup(target)
		var vlat sim.Cycles
		val, vlat = m.VM.Load(m, c, op.Addr, translatedAddr(target, op.Addr))
		lat = tlat + vlat
	} else {
		c.L1.Lookup(line)
		val, lat = m.par.peeker.LoadLocal(m, c, op.Addr)
	}
	c.Counters.L1Hits++
	c.Regs[op.Reg] = val
	if c.TxActive() {
		c.trackRead(line)
	}
	return lat + m.cfg.L1Latency
}

// execStore is doStore's exclusive-L1-hit fast path for certified
// stores, with the scheme work routed through StoreLocal (or the full
// path under parVerifyChains, as for execLoad). The lazy-victim
// broadcast of the sequential path is skipped: LocalPeeker implementers
// certify Mode never returns ModeLazy, so the broadcast can have no
// victims.
func (m *Machine) execStore(c *Core, addr sim.Addr, val sim.Word, t sim.Cycles) sim.Cycles {
	line := sim.LineOf(addr)
	var lat sim.Cycles
	if parVerifyChains {
		target, tlat := m.VM.Translate(m, c, line, true)
		if target != line {
			panic(fmt.Sprintf("htm: core %d: certified store of line %d translated to %d", c.ID, line, target))
		}
		c.L1.Lookup(target)
		finalLine, slat := m.VM.Store(m, c, addr, val)
		if finalLine != target {
			panic(fmt.Sprintf("htm: core %d: certified store moved line %d -> %d", c.ID, target, finalLine))
		}
		lat = tlat + slat
	} else {
		c.L1.Lookup(line)
		lat = m.par.peeker.StoreLocal(m, c, addr, val)
	}
	c.Counters.L1Hits++
	if c.TxActive() {
		if c.windowStart == 0 {
			c.windowStart = t + 1
		}
		c.trackWrite(line)
		c.writtenTargets.Add(line)
	}
	c.L1.MarkDirty(line)
	return lat + m.cfg.L1Latency
}
