package htm

import (
	"fmt"

	"suvtm/internal/bank"
	"suvtm/internal/mem"
	"suvtm/internal/parrun"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// This file implements the deterministic parallel engine for a single
// run (Config.Shards >= 1): conservative time-window sharding with
// mesh-latency lookahead.
//
// The sequential engine is one global event loop: pop the earliest
// (cycle, core) event, step that core by one operation, push its
// continuation. The parallel engine keeps that loop — every operation
// that can touch shared state in a way the scans below cannot certify
// (NACKs, begins/commits/aborts, barriers, the token ladder) still
// executes through it, one event at a time, in exactly the sequential
// order. What it adds is the *window*: a scan phase proves, before
// anything runs, that every core's next H-minAt cycles consist purely
// of certified operations; those instruction chains then execute
// concurrently, one shard of cores per worker, each with a private
// clock, and merge back in canonical core-ID order.
//
// Certified operations come in two tiers:
//
//   - Core-local (pass 2): register ops, computes, L1-hit loads,
//     L1-Modified-hit stores the scheme's LocalPeeker certifies. These
//     touch only state owned by their core.
//   - Cross-core (pass 3): L1 misses and Shared→Modified upgrades whose
//     coherence footprint — the home directory bank, the L2 bank under
//     it, and the banks of every possible L1 victim — this core CLAIMS
//     for the window through per-bank epoch stamps (bank.Stamps). The
//     directory and the L2 are partitioned into independent banks by one
//     shared line→bank map, so a claimed fill's directory update, L2
//     lookup/insert and victim write-back all land in banks no other
//     chain of the window touches. Cross-core certification additionally
//     requires that no core holds an open transaction (so conflict
//     detection, NACKs and signature updates are all provably dead) and
//     that the op's classification inputs are still clean (the dirty-set
//     marks below).
//
// Soundness rests on three facts:
//
//  1. Footprint ownership: a certified op reads and writes only state
//     owned by its core (registers, L1, signatures, counters), memory
//     words certified word-written (disjoint across cores: a word write
//     needs the line Modified in L1 or absent from every other L1 and
//     unshared in the directory — both parked otherwise), and — for
//     pass-3 ops — directory/L2 banks its chain claimed. Ops of
//     different cores therefore commute within a window, so any
//     interleaving produces the state the sequential order would.
//  2. Horizon safety: H never exceeds the cycle of the earliest
//     possibly-unsafe event of ANY core (each chain's scan stops at the
//     first op it cannot certify; cores that are aborting, parked, or
//     mid-compensation bound H at their next event), and chains execute
//     strictly below H. No shared-state event can interleave a window.
//     This depends on the scan's latency predictions being EXACT: the
//     chain clock at execution time must reach each op at the cycle the
//     scan certified it for, or an op past the certified prefix could
//     run. Every arm of peekOp mirrors its sequential twin's latency
//     verbatim for this reason.
//  3. Classification stability: a certified op must not invalidate the
//     scan's verdict on any LATER op. Core-local ops never mutate any
//     classification input (summary signature, first-touch maps, L1
//     contents — LRU touches reorder ways but evict nothing). Cross-core
//     ops DO mutate classification inputs — a fill changes its L1 set's
//     contents, an upgrade flips Shared to Modified, an L2 insert
//     changes its set — so certifying one marks the mutated L1 set
//     (l1Dirty) and L2 sets (l2Ins) with the attempt's epoch, and every
//     later op whose classification depends on a marked set parks —
//     with one exact exception: the mark records WHICH line the fill
//     installed and in which state (l1Fill), so a later op on that very
//     line is classified against the tracked state instead of the stale
//     L1 (a read-modify-write sweep would otherwise park at every
//     store). A second fill into a marked set always parks, so the
//     tracked line can never be evicted mid-chain and the record stays
//     exact for the whole attempt.
//     Marks and claims from chains that later park anyway are retained:
//     that is conservative only.
//
// The mesh's physical lookahead (interconnect.Mesh.Lookahead, >= one
// hop: no cross-tile effect propagates faster) is the window floor: a
// horizon nearer than that can never beat the sequential loop, so such
// attempts are rejected before any chain runs, and rejection cost is
// kept down by an exponential event-count backoff.
//
// Shards partition cores by contiguous mesh blocks (Mesh.ShardOf); the
// shard count is a pure function of Config, while the number of host
// workers servicing them adapts to GOMAXPROCS (parrun.Workers) without
// observable effect — worker goroutines only ever touch state owned by
// the shards they process, and results merge in core-ID order.

const (
	// parWindowSpan caps how far past the earliest pending event one
	// window may reach, bounding scan work per attempt. The engine
	// rarely scans this far: the adaptive span (parEngine.span) tracks
	// how large windows actually come out, so certification work stays
	// proportional to executed work instead of to this ceiling.
	parWindowSpan sim.Cycles = 8192
	// parScanOpsCap bounds ops scanned per chain per attempt.
	parScanOpsCap = 8192
	// parMinWindowOps rejects windows whose scanned chains carry fewer
	// total ops than this: below it, the fixed cost of forming a window
	// (queue fold, scan, fork/join, merge) exceeds what the sequential
	// loop would spend just executing the ops.
	parMinWindowOps = 48
	// parMinBackoff/parMaxBackoff bound the exponential event-count
	// backoff between failed window attempts.
	parMinBackoff = 8
	parMaxBackoff = 4096
)

// parVerifyChains records every scanned op's certified latency and
// cross-checks it against what execution actually charges, and routes
// hit-path scheme work through the full VM path instead of the Local
// twins. The checks are redundant while horizon safety (soundness
// fact 2) holds — and they cost memory and time per chain — so they
// default off. It is a variable, not a constant, so the CI-exercised
// TestParallelVerifyChains can arm it (via SetParVerifyChainsForTest,
// always outside Run, so the toggle is race-clean) as the runtime
// counterpart of the static peekpure certification; flip it when
// touching peekOp, a LocalPeeker, or any sequential fast path they
// mirror.
var parVerifyChains = false

// parkCause classifies why a scan parked a chain at an op — equivalently,
// which subsystem forced a window attempt back onto the sequential loop.
type parkCause uint8

const (
	// parkNone marks a certified op (no park).
	parkNone parkCause = iota
	// parkEngine: the op belongs to the engine (begin, commit, barrier,
	// suspend/resume), or the core is in an engine-driven state (abort,
	// compensation replay) that pins the horizon at its next event.
	parkEngine
	// parkScheme: the version-management scheme declined to certify its
	// part of the access (redirected line, first transactional touch,
	// lazy mode).
	parkScheme
	// parkCrossCore: the access crosses core boundaries in a way the
	// bank claims cannot cover — another core holds the line, its bank
	// is claimed by another chain, a transaction is open somewhere, or a
	// dirty-set mark invalidated its classification.
	parkCrossCore
)

// parEngine is the engine's scratch state, owned by a ParArena and wired
// to one Machine per run by resetFor.
type parEngine struct {
	m       *Machine
	sh      sim.ShardedHeap
	peeker  LocalPeeker
	shards  int     // logical shard count (clamped Config.Shards)
	workers int     // host workers servicing the shards
	coresBy [][]int // shard -> core IDs, ascending
	parts   []parPart
	order   []int      // scratch: candidate cores by ascending event time
	span    sim.Cycles // adaptive scan horizon (see tryWindow)

	// Cross-core certification state, reset per attempt (claims.Begin /
	// nextEpoch). One claim space covers directory bank b and L2 bank b:
	// both are keyed by the same line→bank map.
	claims  bank.Stamps
	epoch   uint32
	l1Dirty []uint32 // cores × L1 sets: marks for sets a certified fill/upgrade mutates
	l1Fill  []uint64 // line<<1|modified the marked set's fill installed (valid iff l1Dirty holds the epoch)
	l1Sets  int
	l2Ins   []uint32 // L2 sets a certified miss may insert into (fills + victim write-backs)
	noTx    bool     // no core holds an open transaction at this attempt

	// Window-execution plumbing for the persistent worker pool: shardFn
	// is allocated once per arena and reads the current window's horizon
	// from execH (Run is a barrier, so one window is in flight at a time).
	execH   sim.Cycles
	shardFn func(int)

	// verifyLat records each scanned chain's per-op certified latencies
	// (parVerifyChains only), so execution can cross-check its own
	// latencies without re-running peekOp — whose dirty-set marks would
	// misread the re-peek of the very op that set them.
	verifyLat [][]sim.Cycles

	windows  uint64 // windows executed
	chainOps uint64 // ops executed inside windows
	seqSteps uint64 // events executed by the sequential pocket loop
	attempts uint64 // window attempts (incl. rejected)
	scanOps  uint64 // ops certified by scans (incl. rejected attempts)

	// Rejected attempts by the cause that pinned the final horizon, plus
	// the too-small rejection (enough certified ops were found, just not
	// parMinWindowOps of them).
	fbEngine uint64
	fbScheme uint64
	fbCross  uint64
	fbSmall  uint64
}

// ParArena owns the parallel window engine's scratch — sharded heap
// storage, per-core window parts, bank claim tables, dirty-set marks —
// so a campaign worker can carry it across consecutive runs
// (Prebuilt.Par). All of it is host-side bookkeeping: reuse cannot
// affect simulated results.
type ParArena struct {
	eng parEngine
}

// ParArena returns the arena holding this machine's parallel-engine
// scratch (creating an empty one if the machine never ran sharded).
// Pass it back through Prebuilt.Par to make the next sharded run reuse
// the allocations.
func (m *Machine) ParArena() *ParArena {
	if m.prePar == nil {
		m.prePar = &ParArena{}
	}
	return m.prePar
}

// resetFor rewires the engine to m, reusing every slice the previous
// run left in the arena.
func (p *parEngine) resetFor(m *Machine) {
	k := m.cfg.Shards
	if k > len(m.Cores) {
		k = len(m.Cores)
	}
	p.m = m
	p.peeker = m.VM.(LocalPeeker)
	p.shards = k
	p.workers = parrun.Workers(k)
	p.sh.Reset(len(m.Cores), k, func(id int) int { return m.Mesh.ShardOf(id, k) })
	n := p.sh.Shards()
	if cap(p.coresBy) >= n {
		p.coresBy = p.coresBy[:n]
		for i := range p.coresBy {
			p.coresBy[i] = p.coresBy[i][:0]
		}
	} else {
		p.coresBy = make([][]int, n)
	}
	for id := range m.Cores {
		s := p.sh.ShardFor(id)
		p.coresBy[s] = append(p.coresBy[s], id)
	}
	if cap(p.parts) >= len(m.Cores) {
		p.parts = p.parts[:len(m.Cores)]
	} else {
		p.parts = make([]parPart, len(m.Cores))
	}
	if cap(p.order) < len(m.Cores) {
		p.order = make([]int, 0, len(m.Cores))
	}
	p.span = 4 * m.Mesh.Lookahead()

	p.claims.Reset(m.L2.Banks())
	p.l1Sets = m.cfg.L1.Sets()
	if need := len(m.Cores) * p.l1Sets; cap(p.l1Dirty) >= need {
		p.l1Dirty = p.l1Dirty[:need]
		clear(p.l1Dirty)
		p.l1Fill = p.l1Fill[:need] // stale entries are dead: their dirty marks were just cleared
	} else {
		p.l1Dirty = make([]uint32, need)
		p.l1Fill = make([]uint64, need)
	}
	if need := m.cfg.L2.Sets(); cap(p.l2Ins) >= need {
		p.l2Ins = p.l2Ins[:need]
		clear(p.l2Ins)
	} else {
		p.l2Ins = make([]uint32, need)
	}
	p.epoch = 0
	if parVerifyChains && len(p.verifyLat) < len(m.Cores) {
		p.verifyLat = make([][]sim.Cycles, len(m.Cores))
	}
	if p.shardFn == nil {
		// p is owned by its arena and stable across runs, so the closure
		// is allocated once per arena, not once per window or run.
		p.shardFn = p.runShard
	}

	p.windows, p.chainOps, p.seqSteps, p.attempts, p.scanOps = 0, 0, 0, 0, 0
	p.fbEngine, p.fbScheme, p.fbCross, p.fbSmall = 0, 0, 0, 0
}

// nextEpoch starts a fresh dirty-set epoch for a window attempt. A wrap
// of the uint32 epoch counter clears the mark arrays so stale marks from
// 2^32 attempts ago cannot read as current.
func (p *parEngine) nextEpoch() {
	p.epoch++
	if p.epoch == 0 {
		clear(p.l1Dirty)
		clear(p.l2Ins)
		p.epoch = 1
	}
}

//suv:hotpath
func (p *parEngine) l1SetDirty(c *Core, line sim.Line) bool {
	return p.l1Dirty[c.ID*p.l1Sets+c.L1.SetIndex(line)] == p.epoch
}

//suv:hotpath
func (p *parEngine) markL1Dirty(c *Core, line sim.Line, modified bool) {
	idx := c.ID*p.l1Sets + c.L1.SetIndex(line)
	p.l1Dirty[idx] = p.epoch
	f := uint64(line) << 1
	if modified {
		f |= 1
	}
	p.l1Fill[idx] = f
}

// l1FillOf returns the line a certified op installed (or upgraded) in
// the marked set this attempt, and whether it left it Modified. Only
// meaningful when l1SetDirty is true for the same set.
//
//suv:hotpath
func (p *parEngine) l1FillOf(c *Core, line sim.Line) (sim.Line, bool) {
	f := p.l1Fill[c.ID*p.l1Sets+c.L1.SetIndex(line)]
	return sim.Line(f >> 1), f&1 != 0
}

// parPart is one core's scratch state for the current window attempt.
type parPart struct {
	at    sim.Cycles // earliest pending event
	count int        // pending events in the queue
	take  bool       // participates in the window
	fin   bool       // chain ran to program end
	endT  sim.Cycles // chain clock after the window
	ops   int        // ops the chain executed
}

// ParallelStats reports what the parallel engine did during a run; all
// zeros when the run used the sequential engine.
type ParallelStats struct {
	Shards   int
	Banks    int // directory/L2 banks backing the cross-core claims
	Workers  int
	Windows  uint64
	ChainOps uint64
	SeqSteps uint64
	Attempts uint64
	ScanOps  uint64 // certification work, including overscan past the final horizon

	// Rejected window attempts by the subsystem that pinned the horizon
	// below the lookahead floor, plus the attempts that certified a
	// window but fewer than parMinWindowOps ops. Attempts - Windows -
	// (sum of the four) is the residue of trivial rejections (empty
	// queue, watchdog cap).
	FallbackEngine    uint64
	FallbackScheme    uint64
	FallbackCrossCore uint64
	FallbackSmall     uint64
}

// ParallelStats returns the engine's counters for the last/current Run.
func (m *Machine) ParallelStats() ParallelStats {
	if m.par == nil {
		return ParallelStats{}
	}
	return ParallelStats{
		Shards: m.par.shards, Banks: m.L2.Banks(), Workers: m.par.workers,
		Windows: m.par.windows, ChainOps: m.par.chainOps,
		SeqSteps: m.par.seqSteps, Attempts: m.par.attempts,
		ScanOps:        m.par.scanOps,
		FallbackEngine: m.par.fbEngine, FallbackScheme: m.par.fbScheme,
		FallbackCrossCore: m.par.fbCross, FallbackSmall: m.par.fbSmall,
	}
}

// parallelEligible reports whether this run may use the window engine:
// Shards requested, a scheme that can certify core-local accesses, and
// none of the observers whose callbacks are keyed to the global event
// loop (fault plans, tracing, metrics, forensics, periodic invariant
// checks, the always-check debug aid). Ineligible runs take the
// sequential loop and are bit-identical by construction.
func (m *Machine) parallelEligible() bool {
	if m.cfg.Shards < 1 {
		return false
	}
	if m.faults != nil || m.tracer != nil || m.metrics != nil || m.obs != nil || m.fx.Enabled() {
		return false
	}
	if m.cfg.CheckInterval != 0 || debugAlwaysCheck {
		return false
	}
	_, ok := m.VM.(LocalPeeker)
	return ok
}

// runParallel is Run's parallel twin: the same event loop, with window
// execution spliced between sequential pockets. Its scratch lives in the
// machine's ParArena, so campaign workers that pass the arena between
// runs (Prebuilt.Par) pay no per-run engine allocation.
func (m *Machine) runParallel() (*Result, error) {
	p := &m.ParArena().eng
	p.resetFor(m)
	m.par = p

	for i, c := range m.Cores {
		if c.atEnd() {
			c.status = statusFinished
			m.finished++
			continue
		}
		p.sh.Push(0, i)
	}
	backoff := parMinBackoff
	seqBudget := 0
	for {
		// Everything the sequential steps staged on m.heap moves to the
		// sharded queue (the 13 push sites all route through m.heap, so
		// nothing else needs to know which engine is running).
		for m.heap.Len() > 0 {
			at, id := m.heap.Pop()
			p.sh.Push(at, id)
		}
		if p.sh.Len() == 0 {
			break
		}
		// The serialization-token ladder wants the strictly sequential
		// order its irrevocability argument was written against, so
		// windows pause while a token is outstanding.
		if seqBudget <= 0 && m.tokenCore < 0 {
			if m.tryWindow() {
				backoff = parMinBackoff
				continue
			}
			seqBudget = backoff
			backoff *= 2
			if backoff > parMaxBackoff {
				backoff = parMaxBackoff
			}
		}
		at, id := p.sh.Pop()
		if m.cfg.MaxCycles > 0 && at > m.cfg.MaxCycles {
			m.now = at
			return nil, m.failRun(&WatchdogError{MaxCycles: m.cfg.MaxCycles, At: at, Cores: m.snapshotCores()})
		}
		m.now = at
		m.step(m.Cores[id])
		p.seqSteps++
		seqBudget--
	}
	if m.finished != len(m.Cores) {
		return nil, m.failRun(&DeadlockError{Finished: m.finished, Total: len(m.Cores), At: m.now, Cores: m.snapshotCores()})
	}
	return m.buildResult(), nil
}

// fallback attributes a rejected window attempt to the cause that pinned
// its final horizon.
func (p *parEngine) fallback(cause parkCause) {
	switch cause { //suv:nonexhaustive parkNone never reaches here; parkEngine and anything new count as engine-structural fallbacks
	case parkScheme:
		p.fbScheme++
	case parkCrossCore:
		p.fbCross++
	default:
		p.fbEngine++
	}
}

// tryWindow attempts one conservative time window: compute the horizon
// H, and if it clears the mesh lookahead and carries enough work,
// execute every certified chain below H concurrently. Returns false —
// having changed nothing simulated — when the window is rejected.
func (m *Machine) tryWindow() bool {
	p := m.par
	p.attempts++
	minAt, _, ok := p.sh.Peek()
	if !ok {
		return false
	}
	// The scan horizon adapts to how large windows actually come out
	// (span is updated after every success), with 2x headroom so a
	// growing window isn't capped twice in a row. Without this, every
	// attempt would certify chains out to parWindowSpan and then throw
	// almost all of that work away when another core's first unsafe op
	// pins the horizon a few hundred cycles out.
	la := m.Mesh.Lookahead()
	span := 2 * p.span
	if span > parWindowSpan {
		span = parWindowSpan
	}
	if span < la {
		span = la
	}
	capped := true
	bound := minAt + span
	if m.cfg.MaxCycles > 0 && bound > m.cfg.MaxCycles+1 {
		// Chains start ops at t < bound <= MaxCycles+1, so no chain ever
		// executes an op the sequential watchdog would have refused.
		bound = m.cfg.MaxCycles + 1
		capped = false
	}
	if bound < minAt+la {
		return false
	}

	// Arm the cross-core certification state for this attempt: fresh
	// bank claims, fresh dirty-set epoch, and the machine-wide no-open-
	// transaction gate (InTx cannot change inside a window — begins and
	// commits are engine events — so one check covers the whole attempt).
	p.claims.Begin()
	p.nextEpoch()
	p.noTx = true
	for _, c := range m.Cores {
		if c.InTx() {
			p.noTx = false
			break
		}
	}

	// Pass 1: fold the queue into per-core (earliest, count) and mark
	// the cores whose chains may be scanned. Cores in any engine-driven
	// state (aborting, doom pending, compensation replay, a duplicated
	// queue entry) bound the horizon at their next event instead.
	boundCause := parkEngine
	parts := p.parts
	for i := range parts {
		parts[i] = parPart{}
	}
	p.sh.ForEach(func(at sim.Cycles, id int) {
		e := &parts[id]
		if e.count == 0 || at < e.at {
			e.at = at
		}
		e.count++
	})
	for id, c := range m.Cores {
		e := &parts[id]
		if e.count == 0 {
			continue
		}
		if e.count != 1 || c.status != statusRunning || c.abortPending || c.compRemaining > 0 {
			if e.at < bound {
				bound = e.at
			}
			continue
		}
		e.take = true
	}
	if bound < minAt+la {
		p.fallback(boundCause)
		return false
	}

	// Pass 2+3: scan each candidate chain up to the current bound,
	// shrinking the bound to the earliest uncertified op found anywhere.
	// Candidates go in ascending event-time order (ties by core ID —
	// deterministic, which also makes the bank-claim contest
	// deterministic), so the chain most likely to pin the bound is
	// scanned first: when the earliest pending op is itself uncertified
	// — the common state right after a window — the attempt dies after
	// one peek instead of after fully scanning every other chain.
	order := p.order[:0]
	for id := range m.Cores {
		if parts[id].take {
			order = append(order, id)
		}
	}
	for i := 1; i < len(order); i++ { // insertion sort: tiny, allocation-free
		for j := i; j > 0 && parts[order[j]].at < parts[order[j-1]].at; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	totalOps := 0
	for _, id := range order {
		e := &parts[id]
		park, ops, cause := m.scanChain(m.Cores[id], e.at, bound)
		totalOps += ops
		if park < bound {
			bound = park
			if cause != parkNone {
				boundCause = cause
			}
			if bound < minAt+la {
				p.fallback(boundCause)
				return false
			}
		}
	}
	if totalOps < parMinWindowOps {
		if capped && bound == minAt+span {
			// Every chain certified clean out to the span cap, yet the
			// window still carries too few ops: they are long-latency
			// (a miss-heavy sweep). Scan farther next attempt — without
			// this the span only ever grows after a SUCCESS, and a
			// workload whose ops each cost tens of cycles could never
			// have one at the initial four-hop span.
			p.span = span
		}
		p.fbSmall++
		return false
	}
	h := bound
	if capped && h == minAt+span {
		p.span = span // chains outran the horizon: double the next scan
	} else {
		p.span = (p.span + (h - minAt) + 1) / 2 // track the real window size
	}

	// Commit to the window: pull participating chains out of the queue.
	// (The earliest core always participates: were it ineligible, pass 1
	// would have pinned bound to minAt and the lookahead gate fired.)
	n := 0
	for id := range m.Cores {
		e := &parts[id]
		e.take = e.take && e.at < h
		if e.take {
			p.sh.Remove(e.at, id)
			n++
		}
	}
	if n == 0 {
		return false
	}

	// Execute: one worker per shard; each worker advances only cores of
	// its shard and pushes continuations onto its shard's private heap,
	// so no two goroutines ever share mutable state — chains touching
	// directory/L2 banks hold exclusive window claims on them.
	p.execH = h
	parrun.Run(p.workers, len(p.coresBy), p.shardFn)

	// Merge in canonical core-ID order; the directory and L2 fold their
	// per-bank stats in bank-ID order (Stats()). (Today's merge here is
	// commutative — a finish count and op totals — but the order is
	// load-bearing documentation: any future cross-core effect folds in
	// here.)
	for id := range parts {
		e := &parts[id]
		if !e.take {
			continue
		}
		if e.fin {
			m.finished++
		}
		p.chainOps += uint64(e.ops)
	}
	p.windows++
	return true
}

// runShard is the worker body for one window: advance every
// participating core of shard s and push continuations on the shard's
// private heap. It reads the window horizon from execH, set by tryWindow
// before the fork.
func (p *parEngine) runShard(s int) {
	m, h := p.m, p.execH
	sh := p.sh.Shard(s)
	for _, id := range p.coresBy[s] {
		e := &p.parts[id]
		if !e.take {
			continue
		}
		end, fin, ops := m.execChain(m.Cores[id], e.at, h)
		e.endT, e.fin, e.ops = end, fin, ops
		if !fin {
			sh.Push(end, id)
		}
	}
}

// scanChain walks c's program from its pending event at cycle `at`,
// certifying ops until the first one it cannot, the bound, or the op
// cap. It returns the cycle the chain is certified through (no unsafe
// op of c's starts below it), how many ops it saw, and — when it parked
// — why.
func (m *Machine) scanChain(c *Core, at, bound sim.Cycles) (park sim.Cycles, ops int, cause parkCause) {
	t := at
	pc := c.PC
	prog := c.Prog.Ops
	n := len(prog)
	if parVerifyChains {
		m.par.verifyLat[c.ID] = m.par.verifyLat[c.ID][:0]
	}
	for t < bound {
		if pc >= n {
			// The chain finishes inside the window: no constraint beyond.
			m.par.scanOps += uint64(ops)
			return bound, ops, parkNone
		}
		// Pure-register ops — the bulk of an instruction-grain trace —
		// classify inline; the arms must return exactly what peekOp's
		// matching cases return (execChain's parVerifyChains mode checks
		// that agreement op by op). Only memory and engine ops pay the
		// peekOp call.
		var lat sim.Cycles
		if k := prog[pc].Kind; k-workload.OpLoadImm <= workload.OpAddReg-workload.OpLoadImm {
			lat = 1
		} else if k == workload.OpCompute {
			lat = sim.Cycles(prog[pc].N)
			if lat == 0 {
				lat = 1
			}
		} else {
			var why parkCause
			lat, why = m.peekOp(c, pc)
			if why != parkNone {
				m.par.scanOps += uint64(ops)
				return t, ops, why
			}
			if lat == 0 {
				lat = 1
			}
		}
		if parVerifyChains {
			m.par.verifyLat[c.ID] = append(m.par.verifyLat[c.ID], lat)
		}
		t += lat
		pc++
		ops++
		if ops >= parScanOpsCap {
			m.par.scanOps += uint64(ops)
			return t, ops, parkNone
		}
	}
	m.par.scanOps += uint64(ops)
	return t, ops, parkNone
}

// peekOp classifies the op at pc without side effects on simulated
// state: can it run as part of a certified chain, and at exactly what
// latency? (It may claim banks and set dirty-set marks — host-side
// attempt state.) Both the scan and the exec phases use this single
// classifier, so they cannot disagree. The hit arms mirror the
// sequential fast paths verbatim; misses and upgrades go through the
// pass-3 certifiers below.
func (m *Machine) peekOp(c *Core, pc int) (lat sim.Cycles, cause parkCause) {
	op := c.Prog.Ops[pc]
	//suv:nonexhaustive every op kind not listed is handled by the sequential loop via the default arm
	switch op.Kind {
	case workload.OpCompute:
		return sim.Cycles(op.N), parkNone
	case workload.OpLoadImm, workload.OpAddImm, workload.OpAddReg:
		return 1, parkNone
	case workload.OpLoad:
		pk := m.par.peeker.PeekLoad(m, c, sim.LineOf(op.Addr))
		if !pk.OK {
			return 0, parkScheme
		}
		if m.par.l1SetDirty(c, pk.Target) {
			// An earlier certified fill mutated this L1 set, so the hit/miss
			// classification below would read stale contents — except for
			// the tracked fill line itself, which is a plain hit in
			// whatever state the fill left it.
			if fl, _ := m.par.l1FillOf(c, pk.Target); fl == pk.Target {
				return pk.Lat + m.cfg.L1Latency, parkNone
			}
			return 0, parkCrossCore
		}
		if _, hit := c.L1.Peek(pk.Target); !hit {
			return m.peekMissLoad(c, pk)
		}
		return pk.Lat + m.cfg.L1Latency, parkNone
	case workload.OpStore, workload.OpStoreImm:
		line := sim.LineOf(op.Addr)
		if c.TxActive() && m.modeOf(c) == ModeLazy {
			return 0, parkScheme
		}
		pk := m.par.peeker.PeekStore(m, c, line)
		if !pk.OK {
			return 0, parkScheme
		}
		if !m.Memory.Written(translatedAddr(pk.Target, op.Addr)) {
			// A first-ever store materializes its backing page and
			// footprint bit — shared structures — so it runs sequentially.
			return 0, parkCrossCore
		}
		if m.par.l1SetDirty(c, pk.Target) {
			fl, mod := m.par.l1FillOf(c, pk.Target)
			if fl != pk.Target {
				return 0, parkCrossCore
			}
			if mod {
				// The chain already owns the line Modified: a plain hit.
				return pk.Lat + m.cfg.L1Latency, parkNone
			}
			return m.peekUpgradeOwnFill(c, pk)
		}
		state, hit := c.L1.Peek(pk.Target)
		if !hit || state != mem.Modified {
			return m.peekMissStore(c, pk, hit)
		}
		return pk.Lat + m.cfg.L1Latency, parkNone
	default:
		// Begin/Commit/CommitOpen/Barrier/Suspend/Resume and anything
		// new: engine events, never part of a chain.
		return 0, parkEngine
	}
}

// claimVictims certifies the install side of a fill into c's L1 set for
// line: whatever way Insert later evicts, its directory drop and its
// write-back (dirty victims re-enter the L2) stay inside banks this
// chain owns, its L2 set is marked so later classifications in the
// attempt cannot trust it, and it is not speculative (spec evictions
// call into the scheme mid-window). The enumeration is conservative —
// it claims every valid way of the set, not the one LRU will pick — so
// certification can never depend on predicting the victim.
func (p *parEngine) claimVictims(c *Core, line sim.Line) bool {
	m := p.m
	ok := true
	c.L1.ForEachWayOf(line, func(way sim.Line, state mem.LineState, dirty, spec bool) {
		if !ok {
			return
		}
		// One claim covers the way's directory bank and L2 bank: both
		// structures share the line→bank map.
		if spec || !p.claims.Claim(m.L2.BankOf(way), c.ID) {
			ok = false
			return
		}
		p.l2Ins[m.L2.SetIndex(way)] = p.epoch
	})
	return ok
}

// peekMissLoad certifies a load miss for cross-core window execution:
// the fill's whole coherence footprint — home directory bank, L2 bank,
// victim banks — must be claimable by this chain, no other core may own
// the line Modified, and no core may be in a transaction (which makes
// acquire's conflict detection provably dead). The latency mirrors
// doLoad/acquire's miss path exactly; see soundness fact 2.
func (m *Machine) peekMissLoad(c *Core, pk AccessPeek) (sim.Cycles, parkCause) {
	p := m.par
	line := pk.Target
	if !p.noTx {
		return 0, parkCrossCore
	}
	pkd := p.peeker.PeekDirOp(m, c, line, false)
	if !pkd.OK {
		return 0, parkScheme
	}
	if owner := m.Dir.Owner(line); owner >= 0 && owner != c.ID {
		// Cache-to-cache transfer: would touch the owner's L1.
		return 0, parkCrossCore
	}
	if !p.claims.Claim(m.L2.BankOf(line), c.ID) {
		return 0, parkCrossCore
	}
	if !p.claimVictims(c, line) {
		return 0, parkCrossCore
	}
	set := m.L2.SetIndex(line)
	if p.l2Ins[set] == p.epoch {
		// An earlier certified insert mutated this L2 set; the Peek
		// below would classify against stale contents.
		return 0, parkCrossCore
	}
	lat := pk.Lat + pkd.Lat + m.Mesh.RoundTrip(c.ID, m.Mesh.HomeTile(line)) + m.cfg.DirLatency
	if _, l2hit := m.L2.Peek(line); l2hit {
		lat += m.cfg.L2Latency
	} else {
		lat += m.cfg.MemLatency
		p.l2Ins[set] = p.epoch // the fill will insert into this set
	}
	p.markL1Dirty(c, line, false) // loads fill Shared
	return lat, parkNone
}

// peekMissStore certifies a store miss or a Shared→Modified upgrade.
// On top of peekMissLoad's conditions, no OTHER core may hold the line
// at all (else acquire would invalidate its copy — a cross-core L1
// write). The upgrade case (hit with a non-Modified state) skips the L2
// branch: data is already present, only the directory changes — but it
// still dirties the L1 set, because flipping the state to Modified
// changes how a later store to the line would classify, and with it the
// chain's timing.
func (m *Machine) peekMissStore(c *Core, pk AccessPeek, hit bool) (sim.Cycles, parkCause) {
	p := m.par
	line := pk.Target
	if !p.noTx {
		return 0, parkCrossCore
	}
	pkd := p.peeker.PeekDirOp(m, c, line, true)
	if !pkd.OK {
		return 0, parkScheme
	}
	if owner := m.Dir.Owner(line); owner >= 0 && owner != c.ID {
		return 0, parkCrossCore
	}
	if m.Dir.Sharers(line)&^(1<<uint(c.ID)) != 0 {
		return 0, parkCrossCore
	}
	if !p.claims.Claim(m.L2.BankOf(line), c.ID) {
		return 0, parkCrossCore
	}
	lat := pk.Lat + pkd.Lat + m.Mesh.RoundTrip(c.ID, m.Mesh.HomeTile(line)) + m.cfg.DirLatency
	if !hit {
		if !p.claimVictims(c, line) {
			return 0, parkCrossCore
		}
		set := m.L2.SetIndex(line)
		if p.l2Ins[set] == p.epoch {
			return 0, parkCrossCore
		}
		if _, l2hit := m.L2.Peek(line); l2hit {
			lat += m.cfg.L2Latency
		} else {
			lat += m.cfg.MemLatency
			p.l2Ins[set] = p.epoch
		}
	}
	p.markL1Dirty(c, line, true)
	return lat, parkNone
}

// peekUpgradeOwnFill certifies a Shared→Modified upgrade on the line the
// chain's own certified load fill installed earlier in this attempt (the
// read-modify-write sweep pattern). The directory still shows the
// pre-fill state, but the fill's only directory effect is adding c as a
// sharer, so the owner/sharer reads below yield the same verdict the
// exec-time upgrade will compute. noTx necessarily held already: dirty
// marks only exist downstream of a certified cross-core op. The latency
// mirrors acquire's upgrade arm — a directory round trip, no data
// movement, no victims.
func (m *Machine) peekUpgradeOwnFill(c *Core, pk AccessPeek) (sim.Cycles, parkCause) {
	p := m.par
	line := pk.Target
	pkd := p.peeker.PeekDirOp(m, c, line, true)
	if !pkd.OK {
		return 0, parkScheme
	}
	if owner := m.Dir.Owner(line); owner >= 0 && owner != c.ID {
		return 0, parkCrossCore
	}
	if m.Dir.Sharers(line)&^(1<<uint(c.ID)) != 0 {
		return 0, parkCrossCore
	}
	if !p.claims.Claim(m.L2.BankOf(line), c.ID) {
		return 0, parkCrossCore
	}
	lat := pk.Lat + pkd.Lat + m.Mesh.RoundTrip(c.ID, m.Mesh.HomeTile(line)) + m.cfg.DirLatency
	p.markL1Dirty(c, line, true)
	return lat, parkNone
}

// execChain runs c's certified instruction chain with a private clock
// from t strictly below the horizon h, replicating the sequential
// step/finishOp paths for exactly the op shapes peekOp certifies. It
// returns the chain's clock, whether the program finished, and the op
// count. Hit-vs-miss dispatch re-peeks the L1; the dirty-set marks
// guarantee the answer matches what the scan saw.
func (m *Machine) execChain(c *Core, t, h sim.Cycles) (sim.Cycles, bool, int) {
	ops := 0
	for t < h {
		var want sim.Cycles
		if parVerifyChains {
			if vl := m.par.verifyLat[c.ID]; ops < len(vl) {
				want = vl[ops]
			}
		}
		op := c.op()
		var lat sim.Cycles
		switch op.Kind {
		case workload.OpCompute:
			lat = sim.Cycles(op.N)
		case workload.OpLoadImm:
			c.Regs[op.Reg] = op.Val
			lat = 1
		case workload.OpAddImm:
			c.Regs[op.Reg] += op.Val
			lat = 1
		case workload.OpAddReg:
			c.Regs[op.Reg] += c.Regs[op.Reg2]
			lat = 1
		case workload.OpLoad:
			if _, hit := c.L1.Peek(sim.LineOf(op.Addr)); hit {
				lat = m.execLoad(c, op)
			} else {
				lat = m.execMissLoad(c, op)
			}
		case workload.OpStore:
			lat = m.execAnyStore(c, op.Addr, c.Regs[op.Reg], t)
		case workload.OpStoreImm:
			lat = m.execAnyStore(c, op.Addr, op.Val, t)
		default:
			panic(fmt.Sprintf("htm: parallel chain reached non-local op %v", op))
		}
		if lat == 0 {
			lat = 1
		}
		if parVerifyChains && lat != want && want != 0 {
			panic(fmt.Sprintf("htm: core %d op %v: chain latency %d != certified %d", c.ID, op, lat, want))
		}
		// finishOp, minus the compensation ladder peekOp's eligibility
		// gate excluded (compRemaining == 0 for every chain).
		if c.TxActive() {
			c.attemptCyc += lat
		} else {
			c.Breakdown.Add(stats.NoTrans, lat)
		}
		c.PC++
		ops++
		if c.atEnd() {
			c.status = statusFinished
			c.finishedAt = t + lat
			return t + lat, true, ops
		}
		t += lat
	}
	return t, false, ops
}

// execAnyStore dispatches a certified store to its hit or miss twin by
// re-peeking the L1 state, mirroring peekOp's classification.
func (m *Machine) execAnyStore(c *Core, addr sim.Addr, val sim.Word, t sim.Cycles) sim.Cycles {
	if state, hit := c.L1.Peek(sim.LineOf(addr)); hit && state == mem.Modified {
		return m.execStore(c, addr, val, t)
	}
	return m.execMissStore(c, addr, val)
}

// execLoad is doLoad's L1-hit fast path for certified loads: LRU touch,
// then the scheme's LoadLocal — the exact observable effects of
// Translate+Load on an access PeekLoad certified, without re-walking the
// filters the scan already cleared. Under parVerifyChains the full
// scheme path runs instead, so a new LocalPeeker implementation can be
// validated against it.
func (m *Machine) execLoad(c *Core, op workloadOp) sim.Cycles {
	line := sim.LineOf(op.Addr)
	var val sim.Word
	var lat sim.Cycles
	if parVerifyChains {
		target, tlat := m.VM.Translate(m, c, line, false)
		if target != line {
			panic(fmt.Sprintf("htm: core %d: certified load of line %d translated to %d", c.ID, line, target))
		}
		c.L1.Lookup(target)
		var vlat sim.Cycles
		val, vlat = m.VM.Load(m, c, op.Addr, translatedAddr(target, op.Addr))
		lat = tlat + vlat
	} else {
		c.L1.Lookup(line)
		val, lat = m.par.peeker.LoadLocal(m, c, op.Addr)
	}
	c.Counters.L1Hits++
	c.Regs[op.Reg] = val
	if c.TxActive() {
		c.trackRead(line)
	}
	return lat + m.cfg.L1Latency
}

// execMissLoad is doLoad's fill path for certified cross-core loads.
// acquire runs UNCHANGED — directory read, L2 lookup/fill, victim
// handling through installL1 — because the scan's bank claims make its
// entire footprint exclusive to this chain for the window, and the
// machine-wide no-transaction gate makes its conflict detection a
// provable no-op. The scheme contributes through its certified twins
// (DirOpLocal, LoadLocal).
func (m *Machine) execMissLoad(c *Core, op workloadOp) sim.Cycles {
	line := sim.LineOf(op.Addr)
	flat, holder := m.acquire(c, line, line, false)
	if holder != nil {
		panic(fmt.Sprintf("htm: core %d: certified fill of line %d found a conflict holder", c.ID, line))
	}
	dlat := m.par.peeker.DirOpLocal(m, c, line, false)
	val, vlat := m.par.peeker.LoadLocal(m, c, op.Addr)
	c.Regs[op.Reg] = val
	// doLoad's trackRead tail is dead here: cross-core certification
	// requires no open transactions machine-wide.
	return flat + dlat + vlat
}

// execMissStore is doStore's fill/upgrade path for certified cross-core
// stores, under the same exclusivity argument as execMissLoad. The
// sequential path's transactional tails, lazy-reader broadcast and
// serialization-token guard are all provably dead: no core is in a
// transaction and no token is outstanding while windows run.
func (m *Machine) execMissStore(c *Core, addr sim.Addr, val sim.Word) sim.Cycles {
	line := sim.LineOf(addr)
	flat, holder := m.acquire(c, line, line, true)
	if holder != nil {
		panic(fmt.Sprintf("htm: core %d: certified store fill of line %d found a conflict holder", c.ID, line))
	}
	dlat := m.par.peeker.DirOpLocal(m, c, line, true)
	slat := m.par.peeker.StoreLocal(m, c, addr, val)
	c.L1.MarkDirty(line)
	return flat + dlat + slat
}

// execStore is doStore's exclusive-L1-hit fast path for certified
// stores, with the scheme work routed through StoreLocal (or the full
// path under parVerifyChains, as for execLoad). The lazy-victim
// broadcast of the sequential path is skipped: LocalPeeker implementers
// certify Mode never returns ModeLazy, so the broadcast can have no
// victims.
func (m *Machine) execStore(c *Core, addr sim.Addr, val sim.Word, t sim.Cycles) sim.Cycles {
	line := sim.LineOf(addr)
	var lat sim.Cycles
	if parVerifyChains {
		target, tlat := m.VM.Translate(m, c, line, true)
		if target != line {
			panic(fmt.Sprintf("htm: core %d: certified store of line %d translated to %d", c.ID, line, target))
		}
		c.L1.Lookup(target)
		finalLine, slat := m.VM.Store(m, c, addr, val)
		if finalLine != target {
			panic(fmt.Sprintf("htm: core %d: certified store moved line %d -> %d", c.ID, target, finalLine))
		}
		lat = tlat + slat
	} else {
		c.L1.Lookup(line)
		lat = m.par.peeker.StoreLocal(m, c, addr, val)
	}
	c.Counters.L1Hits++
	if c.TxActive() {
		if c.windowStart == 0 {
			c.windowStart = t + 1
		}
		c.trackWrite(line)
		c.writtenTargets.Add(line)
	}
	c.L1.MarkDirty(line)
	return lat + m.cfg.L1Latency
}
