package htm

import (
	"suvtm/internal/forensics"
	"suvtm/internal/mem"
	"suvtm/internal/signature"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// coreStatus is the engine-visible state of a core.
type coreStatus uint8

const (
	statusRunning        coreStatus = iota
	statusAborting                  // consuming the abort roll-back window
	statusBarrier                   // blocked on a barrier
	statusLazyCommitWait            // waiting for the commit token / validation
	statusTokenWait                 // parked at a begin while another core holds the serialization token
	statusFinished
)

// doomInfo is the provenance of a doom decision: who killed this
// transaction, at which line, through which mechanism, and whether the
// decision came from a signature hit confirmed (or not) by the precise
// sets. It is carried from the doom site to the abort that consumes it,
// which is where the forensics layer and the remote-kill trace read it.
// Purely observational: no simulation decision may depend on it.
type doomInfo struct {
	killer     int
	killerSite uint32
	line       sim.Line
	cause      forensics.Cause
	// sigHit marks the doom decision as a signature-reported conflict to
	// classify (true conflict vs false positive). Dooms whose signature
	// decision was already classified at the triggering NACK leave it
	// false to keep each decision counted exactly once.
	sigHit  bool
	precise bool
}

// clearDoom resets the provenance to "no doom recorded".
func (d *doomInfo) clear() {
	d.killer = forensics.NoCore
	d.killerSite = forensics.NoSite
	d.line = forensics.NoLine
	d.cause = forensics.CauseNone
	d.sigHit = false
	d.precise = false
}

// compRange locates a registered compensating action in the program: n
// ops starting at pc, run if the enclosing transaction aborts after an
// open-nested child committed.
type compRange struct {
	pc int
	n  int
}

// TxFrame is one (possibly nested) open transaction: the register
// checkpoint taken by begin_transaction plus the program counter to
// return to on abort. Nested frames additionally snapshot the
// signatures and precise sets at begin (LogTM-Nested style), so an
// open-nested commit can restore them — releasing the child's isolation
// while the parent keeps its own.
type TxFrame struct {
	BeginPC int
	Site    uint32
	Regs    [workload.NumRegs]sim.Word

	savedReadSig  *signature.Bloom // nil for the outermost frame
	savedWriteSig *signature.Bloom
	savedReadSet  *sim.LineSet
	savedWriteSet *sim.LineSet
	comps         []compRange // compensations registered by open-committed children
}

// Core is one simulated in-order core: its program, register file,
// caches, signatures, transaction stack and statistics.
type Core struct {
	ID   int
	Prog workload.Program
	PC   int
	Regs [workload.NumRegs]sim.Word
	RNG  *sim.RNG

	L1  *mem.Cache
	TLB *mem.TLB

	// Transactional state. ReadSig/WriteSig are cumulative over the whole
	// nest (supersets are safe); precise sets back the signatures for
	// false-positive accounting and lazy-victim detection.
	Frames   []TxFrame
	ReadSig  *signature.Bloom
	WriteSig *signature.Bloom
	readSet  *sim.LineSet
	writeSet *sim.LineSet
	// writtenTargets are the physical lines written this attempt (equal
	// to writeSet except under SUV, whose stores land in the preserved
	// pool). An eviction of one of these marks transactional data
	// overflow (Table V).
	writtenTargets *sim.LineSet
	Timestamp      sim.Cycles // outermost begin time; kept across retries so old transactions win
	hasTimestamp   bool
	possibleCyc    bool // this core NACKed an older transaction (LogTM cycle avoidance)
	consecAborts   int
	attemptCyc     sim.Cycles // transactional work this attempt (Trans on commit, Wasted on abort)
	attemptStart   sim.Cycles // cycle of this attempt's outermost begin (metrics)
	overflowedL1   bool       // a written line was evicted this attempt (Table V)
	abortPending   bool       // a committing lazy transaction killed us
	abortedBy      int        // core whose commit doomed us (abortPending), or -1
	doom           doomInfo   // provenance of the pending (or imminent) abort
	// windowStart is the cycle of this attempt's first write acquisition
	// (0 = none yet); the isolation window closes when commit completes
	// or the abort roll-back finishes.
	windowStart sim.Cycles
	// suspended means the transaction's thread is descheduled
	// (Section IV-C): its signatures stay in force — the summary-
	// signature mechanism — while the core runs other, non-transactional
	// work. Remote aborts are deferred until the thread is rescheduled.
	suspended bool

	status     coreStatus
	barrierID  uint32
	barrierAt  sim.Cycles // arrival time (Barrier attribution)
	abortEndAt sim.Cycles // end of the abort roll-back window
	finishedAt sim.Cycles

	// Forward-progress monitoring (see progress.go): when this core last
	// committed (0 = never), when it parked waiting for the serialization
	// token, and whether its current struggle already counted a
	// starvation escalation.
	lastCommitAt sim.Cycles
	tokenParkAt  sim.Cycles
	escalated    bool

	// Compensation execution state (open nesting): after an abort, the
	// queued compensating actions run as plain code before the restart.
	compQueue     []compRange
	compRemaining int
	afterCompPC   int
	commitAdvance int // ops to skip when the pending commit completes

	Breakdown stats.Breakdown
	Counters  stats.Counters
}

// InTx reports whether the core has an open transaction (suspended or
// not — its signatures are in force either way).
func (c *Core) InTx() bool { return len(c.Frames) > 0 }

// TxActive reports whether the core is currently executing inside its
// transaction. While the transaction's thread is suspended the core runs
// other work, whose accesses are non-transactional; the filler must not
// touch the suspended transaction's write-set (the OS schedules
// unrelated work).
func (c *Core) TxActive() bool { return len(c.Frames) > 0 && !c.suspended }

// DoomTx marks the core's current transaction for abort at its next
// step. Version managers use it when a lazy transaction's speculative
// state overflows the hardware that holds it (a self-inflicted kill:
// the core itself is recorded as the killer).
func (c *Core) DoomTx() {
	if c.InTx() {
		c.doomBy(c.ID, c.txSite(), forensics.NoLine, forensics.CauseOverflow, false, false)
	}
}

// doomBy marks the core's transaction for abort on behalf of killer
// (a committing lazy transaction, a non-transactional store, the
// older-wins policy, a token grant), remembering who for the trace and
// the full provenance for the forensics layer.
func (c *Core) doomBy(killer int, killerSite uint32, line sim.Line, cause forensics.Cause, sigHit, precise bool) {
	c.abortPending = true
	c.abortedBy = killer
	c.doom = doomInfo{
		killer: killer, killerSite: killerSite, line: line,
		cause: cause, sigHit: sigHit, precise: precise,
	}
}

// txSite returns the core's outermost begin site, or NoSite outside a
// transaction.
func (c *Core) txSite() uint32 {
	if len(c.Frames) > 0 {
		return c.Frames[0].Site
	}
	return forensics.NoSite
}

// Depth returns the transaction nesting depth (the TM nest counter).
func (c *Core) Depth() int { return len(c.Frames) }

// InReadSet reports precise read-set membership (no aliasing).
func (c *Core) InReadSet(line sim.Line) bool {
	return c.readSet.Has(line)
}

// InWriteSet reports precise write-set membership (no aliasing).
func (c *Core) InWriteSet(line sim.Line) bool {
	return c.writeSet.Has(line)
}

// WriteSetSize returns the number of distinct lines written this attempt.
func (c *Core) WriteSetSize() int { return c.writeSet.Len() }

// trackRead records line in the read signature and precise set.
func (c *Core) trackRead(line sim.Line) {
	c.ReadSig.Add(line)
	c.readSet.Add(line)
}

// trackWrite records line in the write signature and precise set.
func (c *Core) trackWrite(line sim.Line) {
	c.WriteSig.Add(line)
	c.writeSet.Add(line)
}

// clearTxState resets all transactional bookkeeping (after the outermost
// commit or a full abort).
func (c *Core) clearTxState() {
	c.Frames = c.Frames[:0]
	c.ReadSig.Clear()
	c.WriteSig.Clear()
	c.readSet.Clear()
	c.writeSet.Clear()
	c.writtenTargets.Clear()
	c.attemptCyc = 0
	c.overflowedL1 = false
	c.abortPending = false
	c.abortedBy = -1
	c.doom.clear()
	c.possibleCyc = false
	c.suspended = false
	c.windowStart = 0
}

// Suspended reports whether the core's transaction is descheduled.
func (c *Core) Suspended() bool { return c.suspended }

// op returns the current instruction.
func (c *Core) op() workload.Op { return c.Prog.Ops[c.PC] }

// atEnd reports whether the program is exhausted.
func (c *Core) atEnd() bool { return c.PC >= len(c.Prog.Ops) }
