package htm

import (
	"fmt"
	"slices"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// CheckCoherence audits the global coherence state and returns the
// first violated invariant, or nil. It is a debugging facility for the
// simulator itself (used by tests; O(total cached lines)):
//
//  1. single-writer: at most one cache holds any line Modified, and the
//     directory agrees on who;
//  2. directory-cache agreement: every cached copy is tracked by the
//     directory, and every directory-tracked copy exists;
//  3. no Modified line coexists with Shared copies elsewhere.
func (m *Machine) CheckCoherence() error {
	type holder struct {
		core  int
		state mem.LineState
	}
	copies := make(map[sim.Line][]holder)
	for _, c := range m.Cores {
		c.L1.ForEach(func(line sim.Line, state mem.LineState, dirty, spec bool) {
			copies[line] = append(copies[line], holder{c.ID, state})
		})
	}
	// Audit lines in sorted order so that, when several invariants are
	// violated at once, every run (and every replay) reports the same
	// first error.
	lines := make([]sim.Line, 0, len(copies))
	//suv:orderinsensitive keys are collected then sorted before any check runs
	for line := range copies {
		lines = append(lines, line)
	}
	slices.Sort(lines)
	for _, line := range lines {
		hs := copies[line]
		modified := -1
		shared := 0
		for _, h := range hs {
			//suv:nonexhaustive only the sharing states matter here; Invalid lines are not visited by ForEach
			switch h.state {
			case mem.Modified:
				if modified >= 0 {
					return fmt.Errorf("line %#x: cores %d and %d both Modified", line, modified, h.core)
				}
				modified = h.core
			case mem.Shared:
				shared++
			}
		}
		if modified >= 0 && shared > 0 {
			return fmt.Errorf("line %#x: Modified in core %d alongside %d Shared copies", line, modified, shared)
		}
		if modified >= 0 && m.Dir.Owner(line) != modified {
			return fmt.Errorf("line %#x: core %d Modified but directory owner is %d", line, modified, m.Dir.Owner(line))
		}
		for _, h := range hs {
			if h.state == mem.Shared && m.Dir.Sharers(line)&(1<<uint(h.core)) == 0 && m.Dir.Owner(line) != h.core {
				return fmt.Errorf("line %#x: core %d holds Shared copy unknown to the directory", line, h.core)
			}
		}
	}
	return nil
}
