package htm

import (
	"suvtm/internal/faults"
	"suvtm/internal/forensics"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/trace"
)

// This file is the machine's forward-progress and fault-injection layer:
// the escalation ladder that replaces the old single-threshold watchdog
// (boosted backoff -> global serialization token -> watchdog backstop),
// the application of injected fault windows to the substrate, and the
// periodic invariant checker.
//
// Token-mode correctness argument: granting the token dooms every other
// in-transaction core, and any core that later reaches an outermost
// begin parks until release. Doomed cores abort through the normal path
// (releasing their signatures), suspended ones as soon as their filler
// work resumes them, so every conflict against the holder drains in
// bounded time. The holder itself is immune to the three remote-doom
// sites and to possible-cycle self-abort — it can only stall, never die
// (a self-inflicted DoomTx from speculative-buffer overflow remains
// allowed: it is the scheme's own degradation trigger and the selector
// does not repeat the choice). The holder therefore commits, releasing
// the token and waking the parked cores.

// SetFaults attaches a fault injector driving a chaos plan (nil runs
// fault-free). Attach before Run.
func (m *Machine) SetFaults(in *faults.Injector) { m.faults = in }

// FaultStats returns the injector's activity counters (zero when no
// injector is attached).
func (m *Machine) FaultStats() faults.Stats { return m.faults.Stats() }

// PoolReclaimPenalty returns the current per-allocation software
// reclamation cost while the preserved pool is exhausted (0 otherwise).
// Version managers charge it on stores whose StoreOutcome reports
// PoolReclaim.
func (m *Machine) PoolReclaimPenalty() sim.Cycles { return m.poolPenalty }

// advanceFaults moves the injector to now and applies every window that
// opened or closed: level-type faults (signature saturation, redirect
// pressure, pool exhaustion) are recomputed from the full open-window
// set, and each transition is traced.
func (m *Machine) advanceFaults(now sim.Cycles) {
	trans := m.faults.Advance(now)
	if len(trans) == 0 {
		return
	}
	kind := trace.FaultOff
	for _, t := range trans {
		if t.Opened {
			kind = trace.FaultOn
		} else {
			kind = trace.FaultOff
		}
		core := t.Event.Core
		traceCore := core
		if traceCore < 0 {
			traceCore = 0 // the recorder needs a core; Other carries the real target
		}
		m.tracer.Record(trace.Event{Cycle: now, Core: traceCore, Kind: kind,
			Other: core, Info: uint64(t.Event.Kind)})
	}
	// Recompute level state from the surviving window set (several
	// windows of one kind may overlap; only the union matters).
	for _, c := range m.Cores {
		sat := m.faults.SaturatedFor(c.ID)
		c.ReadSig.SetSaturated(sat)
		c.WriteSig.SetSaturated(sat)
	}
	m.Summary.SetSaturated(m.faults.SaturatedAny())
	m.Redirect.SetPressure(m.faults.Pressured())
	pen, exhausted := m.faults.PoolExhausted()
	m.Redirect.Pool().SetExhausted(exhausted)
	m.poolPenalty = pen
}

// injectedNACK refuses c's memory access when an injected NACK storm
// covers it: the access is charged a stalled round-trip and retried,
// exactly like a real NACK but with no holder. The serialization-token
// holder is immune — an irrevocable transaction's requests must land —
// which is also what lets time-based escalation rescue a core starved by
// a long storm. Returns true when the access was refused.
func (m *Machine) injectedNACK(c *Core) bool {
	if !m.faults.NACKFor(c.ID) || m.tokenCore == c.ID {
		return false
	}
	c.Counters.InjectedNACKs++
	c.Counters.NACKsReceived++
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.NACK,
		Line: sim.LineOf(0), Other: -1})
	lat := m.cfg.DirLatency + m.cfg.RetryInterval
	if m.fx.Enabled() {
		// No holder and no signature: an injected refusal never enters the
		// true-vs-false-positive accounting, only the stall profile.
		m.fx.NACK(forensics.NACKEvent{
			Cycle: m.now, Requester: c.ID, Holder: forensics.NoCore,
			Line: forensics.NoLine, Cause: forensics.CauseInjected,
			ReqSite: c.txSite(), HoldSite: forensics.NoSite,
			Stall: lat,
		})
	}
	c.Breakdown.Add(stats.Stalled, lat)
	m.maybeEscalate(c)
	m.heap.Push(m.now+lat, c.ID)
	return true
}

// meshRequestLatency returns the effective latency of a directory
// request with nominal cost base, routing it through the retry protocol
// when a fault window delays or duplicates c's messages.
func (m *Machine) meshRequestLatency(c *Core, base sim.Cycles) sim.Cycles {
	if m.faults == nil {
		return base
	}
	injected := m.faults.MeshDelayFor(c.ID)
	var dupCost sim.Cycles
	if m.faults.MeshDupFor(c.ID) {
		dupCost = m.cfg.DirLatency
	}
	if injected == 0 && dupCost == 0 {
		return base
	}
	before := m.Dir.RetryStats
	lat := m.Dir.Deliver(base, injected, dupCost)
	c.Counters.MeshTimeouts += m.Dir.RetryStats.Timeouts.Value() - before.Timeouts.Value()
	c.Counters.MeshRetries += m.Dir.RetryStats.Retries.Value() - before.Retries.Value()
	c.Counters.MeshDuplicates += m.Dir.RetryStats.Duplicates.Value() - before.Duplicates.Value()
	return lat
}

// starving reports whether c's current transaction has crossed a
// hopelessness threshold: too many consecutive aborts, or too long
// inside one transaction without committing (the timestamp is kept
// across retries, so it dates the whole struggle).
func (m *Machine) starving(c *Core) bool {
	if m.cfg.HopelessAborts > 0 && c.consecAborts >= m.cfg.HopelessAborts {
		return true
	}
	return m.cfg.StarveThreshold > 0 && c.hasTimestamp &&
		m.now >= c.Timestamp+m.cfg.StarveThreshold
}

// maybeEscalate grants c the global serialization token if it is
// starving and the token is free. Called wherever a transaction loses
// another round: after an abort, on a NACK stall, on an injected NACK.
func (m *Machine) maybeEscalate(c *Core) {
	if m.tokenCore >= 0 || !m.starving(c) {
		return
	}
	m.grantToken(c)
}

// grantToken enters hopeless-transaction mode for c: every other
// in-transaction core is doomed (it aborts through the normal path,
// releasing its isolation), and cores reaching an outermost begin park
// until release. c runs irrevocably — see the immunity guards in
// handleNACK, doStore and killLazyReaders.
func (m *Machine) grantToken(c *Core) {
	m.tokenCore = c.ID
	c.Counters.TokenGrants++
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.TokenAcquire,
		Other: -1, Info: uint64(c.consecAborts)})
	for _, h := range m.Cores {
		if h != c && h.InTx() && !h.abortPending {
			// A token kill is forward-progress policy, not a data
			// conflict: no line, no signature decision.
			h.doomBy(c.ID, c.txSite(), forensics.NoLine, forensics.CauseToken, false, false)
		}
	}
}

// releaseToken exits hopeless-transaction mode (the holder committed):
// parked cores wake on the next cycle and resume their begins.
func (m *Machine) releaseToken(c *Core) {
	m.tokenCore = -1
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.TokenRelease, Other: -1})
	wake := m.now + 1
	for _, wid := range m.tokenWaiting {
		w := m.Cores[wid]
		if w.status != statusTokenWait {
			continue
		}
		w.Breakdown.Add(stats.Stalled, wake-w.tokenParkAt)
		w.status = statusRunning
		m.heap.Push(wake, w.ID)
	}
	m.tokenWaiting = m.tokenWaiting[:0]
}

// parkAtBegin parks c when another core holds the serialization token
// and c is about to open an outermost transaction. In-transaction and
// suspended cores are never parked — they were doomed at grant (or will
// defer the doom until resume) and must keep stepping to drain. Returns
// true when the core parked.
func (m *Machine) parkAtBegin(c *Core) bool {
	if m.tokenCore < 0 || m.tokenCore == c.ID || c.InTx() {
		return false
	}
	c.status = statusTokenWait
	c.tokenParkAt = m.now
	m.tokenWaiting = append(m.tokenWaiting, c.ID)
	return true
}

// backoffWindow computes the randomization window for the retry after
// the consecAborts-th consecutive abort: the classic clamped exponential
// (shift capped at 8, window capped at max), escalating to boosted
// windows beyond max once consecAborts reaches boostAt (0 disables the
// boost). base = 0 disables backoff entirely.
func backoffWindow(base, max sim.Cycles, consecAborts, boostAt int) sim.Cycles {
	if base == 0 || consecAborts <= 0 {
		return 0
	}
	if boostAt > 0 && consecAborts >= boostAt && max > 0 {
		// Boosted backoff: a starving transaction's rivals are beaten by
		// widening the window beyond the normal cap, doubling per further
		// abort up to 64x.
		extra := uint(consecAborts - boostAt + 1)
		if extra > 6 {
			extra = 6
		}
		return max << extra
	}
	shift := consecAborts - 1
	if shift > 8 {
		shift = 8
	}
	window := base << uint(shift)
	if max > 0 && window > max {
		window = max
	}
	return window
}

// maybeCheckInvariants runs the periodic cross-structure audit when due:
// coherence (directory vs. L1 states) and redirect (tables vs. pool vs.
// transient journals). The first violation aborts the run with a typed
// *InvariantError.
func (m *Machine) maybeCheckInvariants(at sim.Cycles) error {
	if m.cfg.CheckInterval == 0 || at < m.nextCheckAt {
		return nil
	}
	m.nextCheckAt = at + m.cfg.CheckInterval
	if err := m.CheckCoherence(); err != nil {
		return &InvariantError{At: at, Check: "coherence", Err: err}
	}
	if err := m.Redirect.Audit(); err != nil {
		return &InvariantError{At: at, Check: "redirect", Err: err}
	}
	return nil
}
