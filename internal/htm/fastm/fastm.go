// Package fastm implements the FasTM version manager (Lupon et al., PACT
// 2009): eager conflict detection like LogTM-SE, but speculative values
// are confined to the L1 cache while the L2 keeps the pre-transaction
// version. The first speculative write to a dirty line writes it back to
// the L2 first; commit flash-clears the speculative bits; abort
// flash-invalidates the speculative lines so the old version is refetched
// on demand — fast, unless a speculative line is evicted, in which case
// the transaction degenerates to LogTM-SE behaviour (software log +
// software abort walk).
package fastm

import (
	"suvtm/internal/htm"
	"suvtm/internal/sim"
	"suvtm/internal/workload"
)

const logRegionLines = 4096

type coreState struct {
	shadow     map[sim.Line][sim.WordsPerLine]sim.Word // pre-tx values ("L2 copy")
	order      []sim.Line                              // shadow insertion order (degenerate walk)
	marks      []int
	degenerate bool
	logBase    workload.Region
	logPos     int
}

// VM is the FasTM version manager.
type VM struct {
	st []coreState
}

// New returns a FasTM version manager.
func New() *VM { return &VM{} }

// Name implements htm.VersionManager.
func (v *VM) Name() string { return "FasTM" }

// Init allocates the per-core fallback log regions.
func (v *VM) Init(m *htm.Machine) {
	v.st = make([]coreState, len(m.Cores))
	for i := range v.st {
		v.st[i] = coreState{
			shadow:  make(map[sim.Line][sim.WordsPerLine]sim.Word),
			logBase: workload.NewRegion(m.Alloc, logRegionLines),
		}
	}
}

// Mode implements htm.VersionManager: FasTM is always eager.
func (v *VM) Mode(c *htm.Core) htm.ExecMode {
	if !c.InTx() {
		return htm.ModeNone
	}
	return htm.ModeEager
}

// Begin opens a frame.
func (v *VM) Begin(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	s.marks = append(s.marks, len(s.order))
	return 2
}

// Translate is the identity.
func (v *VM) Translate(m *htm.Machine, c *htm.Core, line sim.Line, write bool) (sim.Line, sim.Cycles) {
	return line, 0
}

// Load reads the current value (speculative values live in place in the
// flat memory model; the shadow map plays the L2's role of keeping the
// old version for abort).
func (v *VM) Load(m *htm.Machine, c *htm.Core, addr, targetAddr sim.Addr) (sim.Word, sim.Cycles) {
	return m.Memory.Read(addr), 0
}

// Store preserves the pre-transaction line on first touch. While the
// transaction has not degenerated this costs a write-back of the old
// dirty line to the L2 (FasTM's one data movement); after degeneration it
// pays LogTM-SE's logging cost instead.
func (v *VM) Store(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) (sim.Line, sim.Cycles) {
	line := sim.LineOf(addr)
	var lat sim.Cycles
	if c.TxActive() {
		s := &v.st[c.ID]
		if _, seen := s.shadow[line]; !seen {
			s.shadow[line] = m.Memory.ReadLine(line)
			s.order = append(s.order, line)
			if s.degenerate {
				lat += 1
				lat += m.AccessPrivate(c, s.logBase.Line(s.logPos%logRegionLines), true)
				s.logPos++
				c.Counters.UndoLogEntries++
			} else {
				if c.L1.IsDirty(line) {
					// Push the committed version down to the L2 before the
					// first speculative write.
					lat += m.Config().L2Latency
					c.Counters.Writebacks++
					c.L1.ClearDirty(line)
				}
				c.L1.MarkSpec(line, true)
			}
		}
	}
	m.Memory.Write(addr, val)
	return line, lat
}

// CommitOuter flash-clears the speculative bits: the L1 values become the
// committed version in place.
func (v *VM) CommitOuter(m *htm.Machine, c *htm.Core) sim.Cycles {
	c.L1.FlashClearSpec()
	v.reset(c.ID)
	return m.Config().CommitLatency
}

// CommitNested merges the innermost frame.
func (v *VM) CommitNested(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	s.marks = s.marks[:len(s.marks)-1]
	return 1
}

// CommitOpen publishes the innermost frame: its lines stop being
// speculative (their in-place values are now the committed version) and
// their shadow copies are dropped, so a parent abort leaves them alone.
func (v *VM) CommitOpen(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	mark := s.marks[len(s.marks)-1]
	for _, line := range s.order[mark:] {
		delete(s.shadow, line)
		c.L1.MarkSpec(line, false)
	}
	s.order = s.order[:mark]
	s.marks = s.marks[:len(s.marks)-1]
	return m.Config().CommitLatency
}

// Abort restores the pre-transaction values. The fast path
// flash-invalidates the speculative L1 lines (the old version is safe in
// the L2 and refetched on demand); a degenerated transaction walks its
// records in software like LogTM-SE.
func (v *VM) Abort(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	cfg := m.Config()
	for _, line := range s.order {
		m.Memory.WriteLine(line, s.shadow[line])
	}
	var lat sim.Cycles
	if s.degenerate {
		for _, line := range c.L1.FlashInvalidateSpec() {
			m.Dir.Drop(line, c.ID)
		}
		lat = cfg.TrapLatency
		c.Counters.SoftwareTraps++
		for i := len(s.order) - 1; i >= 0; i-- {
			lat += cfg.LogWalkPerLine
			lat += m.AccessPrivate(c, s.logBase.Line(i%logRegionLines), false)
			lat += m.AccessPrivate(c, s.order[i], true)
			c.Counters.UndoLogRestores++
		}
	} else {
		c.L1.FlashInvalidateSpec()
		for _, line := range s.order {
			m.Dir.Drop(line, c.ID)
		}
		lat = cfg.FastAbortFixed
	}
	v.reset(c.ID)
	return lat
}

// OnSpecEviction degenerates the transaction to LogTM-SE: once a
// speculative line leaves the L1 the flash abort can no longer restore
// everything, so the remaining stores are logged and a future abort goes
// through the software handler.
func (v *VM) OnSpecEviction(m *htm.Machine, c *htm.Core, line sim.Line) {
	v.st[c.ID].degenerate = true
}

// PeekLoad implements htm.LocalPeeker: FasTM loads are always in-place,
// zero-extra-latency word reads (Translate is the identity).
func (v *VM) PeekLoad(m *htm.Machine, c *htm.Core, line sim.Line) htm.AccessPeek {
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// PeekStore implements htm.LocalPeeker: a store is core-local unless it
// is the first transactional touch of the line, which snapshots the
// pre-transaction version (and, degenerate or not, pays a write-back or
// logging latency). Already shadowed lines — and all non-transactional
// stores — write in place. A certified store never mutates the shadow
// map, so the classification is stable across the window.
func (v *VM) PeekStore(m *htm.Machine, c *htm.Core, line sim.Line) htm.AccessPeek {
	if c.TxActive() {
		if _, seen := v.st[c.ID].shadow[line]; !seen {
			return htm.AccessPeek{}
		}
	}
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// PeekDirOp implements htm.LocalPeeker: FasTM keeps no per-line
// state at the directory or the L2, so every coherence request is
// scheme-neutral and carries no extra latency.
func (v *VM) PeekDirOp(m *htm.Machine, c *htm.Core, line sim.Line, write bool) htm.AccessPeek {
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// DirOpLocal implements htm.LocalPeeker: nothing to do (see PeekDirOp).
func (v *VM) DirOpLocal(m *htm.Machine, c *htm.Core, line sim.Line, write bool) sim.Cycles {
	return 0
}

// LoadLocal implements htm.LocalPeeker: Translate is the identity and a
// load is a plain in-place word read.
func (v *VM) LoadLocal(m *htm.Machine, c *htm.Core, addr sim.Addr) (sim.Word, sim.Cycles) {
	return m.Memory.Read(addr), 0
}

// StoreLocal implements htm.LocalPeeker: a certified store is either
// non-transactional or to an already-shadowed line, so the first-touch
// branch of Store is dead and only the in-place write remains.
func (v *VM) StoreLocal(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) sim.Cycles {
	m.Memory.Write(addr, val)
	return 0
}

func (v *VM) reset(id int) {
	s := &v.st[id]
	clear(s.shadow)
	s.order = s.order[:0]
	s.marks = s.marks[:0]
	s.degenerate = false
	s.logPos = 0
}
