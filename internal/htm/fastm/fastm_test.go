package fastm_test

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/fastm"
	"suvtm/internal/mem"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

func run(t *testing.T, cfg htm.Config, progs []workload.Program, memory *mem.Memory, alloc *mem.Allocator) (*htm.Machine, *htm.Result) {
	t.Helper()
	m := htm.New(cfg, fastm.New(), progs, memory, alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

// TestDirtyLineWritebackBeforeSpecWrite: the first speculative write to
// a line this core dirtied earlier must push the committed version to
// the L2 first (FasTM's per-line data movement).
func TestDirtyLineWritebackBeforeSpecWrite(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	region := workload.NewRegion(alloc, 1)
	addr := region.WordAddr(0, 0)
	b := workload.NewBuilder()
	b.StoreImm(addr, 5) // non-transactional: line becomes dirty in L1
	b.Begin(0)
	b.StoreImm(addr, 6) // first speculative write: write-back required
	b.Commit()
	b.Barrier(0)
	_, res := run(t, htm.DefaultConfig(1), []workload.Program{b.Build()}, memory, alloc)
	if res.Counters.Writebacks == 0 {
		t.Fatal("no write-back before the first speculative write to a dirty line")
	}
}

// TestFastAbortConstantCost: pre-overflow FasTM aborts are flash
// operations whose cost does not scale with the write set.
func TestFastAbortConstantCost(t *testing.T) {
	measure := func(writes int) uint64 {
		memory := mem.NewMemory()
		alloc := mem.NewAllocator(0x100000, 1<<30)
		region := workload.NewRegion(alloc, writes)
		hot := workload.NewRegion(alloc, 1)
		b0 := workload.NewBuilder()
		for i := 0; i < 6; i++ {
			b0.Begin(0)
			for k := 0; k < writes; k++ {
				b0.StoreImm(region.WordAddr(k, 0), 1)
			}
			b0.Load(0, hot.WordAddr(0, 0))
			b0.AddImm(0, 1)
			b0.Store(hot.WordAddr(0, 0), 0)
			b0.Commit()
			b0.Compute(10)
		}
		b0.Barrier(0)
		b1 := workload.NewBuilder()
		for i := 0; i < 120; i++ {
			b1.Begin(0)
			b1.Load(0, hot.WordAddr(0, 0))
			b1.AddImm(0, 1)
			b1.Compute(60)
			b1.Store(hot.WordAddr(0, 0), 0)
			b1.Commit()
		}
		b1.Barrier(0)
		m := htm.New(htm.DefaultConfig(2), fastm.New(), []workload.Program{b0.Build(), b1.Build()}, memory, alloc)
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if res.Counters.TxAborted == 0 {
			t.Skip("no aborts")
		}
		return res.Breakdown.Cycles[stats.Aborting] / res.Counters.TxAborted
	}
	small := measure(4)
	large := measure(48)
	if large > small*2 {
		t.Fatalf("fast abort scaled with write set: %d vs %d cycles/abort", small, large)
	}
}

// TestAbortRestoresValuesAndInvalidates: aborted speculative values
// vanish; the pre-transaction version is re-read afterwards.
func TestAbortRestoresValues(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	region := workload.NewRegion(alloc, 2)
	hot := workload.NewRegion(alloc, 1)
	memory.Write(region.WordAddr(0, 0), 500)
	mkProg := func(id int) workload.Program {
		b := workload.NewBuilder()
		for i := 0; i < 40; i++ {
			b.Begin(0)
			b.Load(0, hot.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Compute(20)
			b.Store(hot.WordAddr(0, 0), 0)
			if id == 0 {
				b.Load(1, region.WordAddr(0, 0))
				b.AddImm(1, 1)
				b.Store(region.WordAddr(0, 0), 1)
			}
			b.Commit()
		}
		b.Barrier(0)
		return b.Build()
	}
	m, res := run(t, htm.DefaultConfig(2), []workload.Program{mkProg(0), mkProg(1)}, memory, alloc)
	if res.Counters.TxAborted == 0 {
		t.Fatal("no aborts")
	}
	if got := m.ArchMem().Read(region.WordAddr(0, 0)); got != 540 {
		t.Fatalf("value = %d, want 540 (40 committed increments over 500)", got)
	}
	if got := m.ArchMem().Read(hot.WordAddr(0, 0)); got != 80 {
		t.Fatalf("hot = %d, want 80", got)
	}
}

// TestDegenerationPreservesCorrectness: with an L1 too small for the
// write set, FasTM degenerates to logging but values stay exact.
func TestDegenerationPreservesCorrectness(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	cfg := htm.DefaultConfig(2)
	cfg.L1 = mem.CacheConfig{SizeBytes: 8 * sim.LineBytes, Ways: 2}
	region := workload.NewRegion(alloc, 24)
	hot := workload.NewRegion(alloc, 1)
	progs := make([]workload.Program, 2)
	for c := range progs {
		b := workload.NewBuilder()
		for i := 0; i < 10; i++ {
			b.Begin(0)
			b.Load(0, hot.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Store(hot.WordAddr(0, 0), 0)
			for k := 0; k < 24; k++ {
				b.Load(1, region.WordAddr(k, c))
				b.AddImm(1, 1)
				b.Store(region.WordAddr(k, c), 1)
			}
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	m, res := run(t, cfg, progs, memory, alloc)
	if res.Counters.SpecLineEvicted == 0 {
		t.Fatal("no degeneration with an 8-line L1")
	}
	var sum uint64
	for k := 0; k < 24; k++ {
		sum += m.ArchMem().Read(region.WordAddr(k, 0)) + m.ArchMem().Read(region.WordAddr(k, 1))
	}
	if sum != 2*10*24 {
		t.Fatalf("region sum = %d, want %d", sum, 2*10*24)
	}
	if got := m.ArchMem().Read(hot.WordAddr(0, 0)); got != 20 {
		t.Fatalf("hot = %d, want 20", got)
	}
}

// TestCommitFlashClearsSpec: after a commit no speculative lines remain.
func TestCommitFlashClearsSpec(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	region := workload.NewRegion(alloc, 8)
	b := workload.NewBuilder()
	b.Begin(0)
	for k := 0; k < 8; k++ {
		b.StoreImm(region.WordAddr(k, 0), 1)
	}
	b.Commit()
	b.Barrier(0)
	m, _ := run(t, htm.DefaultConfig(1), []workload.Program{b.Build()}, memory, alloc)
	if n := m.Cores[0].L1.CountSpec(); n != 0 {
		t.Fatalf("%d speculative lines after commit", n)
	}
}

func TestName(t *testing.T) {
	if fastm.New().Name() != "FasTM" {
		t.Fatal("wrong name")
	}
}
