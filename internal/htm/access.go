package htm

import (
	"suvtm/internal/forensics"
	"suvtm/internal/mem"
	"suvtm/internal/signature"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/trace"
)

var debugAlwaysCheck = false

// translatedAddr rebases addr into the translated target line, keeping
// the in-line offset.
func translatedAddr(target sim.Line, addr sim.Addr) sim.Addr {
	return sim.AddrOf(target) | (addr & (sim.LineBytes - 1))
}

// doLoad executes a load op: SUV address translation, coherence fetch
// with eager conflict detection on the program address, then the
// scheme's value read.
func (m *Machine) doLoad(c *Core, op workloadOp) {
	if m.injectedNACK(c) {
		return
	}
	line := sim.LineOf(op.Addr)
	target, tlat := m.VM.Translate(m, c, line, false)
	flat, holder := m.acquire(c, target, line, false)
	if holder != nil {
		m.handleNACK(c, holder, line, tlat+flat, false)
		return
	}
	val, vlat := m.VM.Load(m, c, op.Addr, translatedAddr(target, op.Addr))
	c.Regs[op.Reg] = val
	if c.TxActive() {
		c.trackRead(line)
	}
	m.finishOp(c, tlat+flat+vlat)
}

// doStore executes a store op. Eager transactions and non-transactional
// code acquire exclusive permission first; lazy transactions fetch a
// shared copy (conflict-checked against eager holders only) and let the
// scheme buffer or redirect the value.
func (m *Machine) doStore(c *Core, addr sim.Addr, val sim.Word) {
	if m.injectedNACK(c) {
		return
	}
	line := sim.LineOf(addr)
	lazy := c.TxActive() && m.modeOf(c) == ModeLazy
	target, tlat := m.VM.Translate(m, c, line, true)

	var flat sim.Cycles
	var holder *Core
	if lazy {
		flat, holder = m.acquire(c, target, line, false) // shared fill, invisible write
	} else {
		flat, holder = m.acquire(c, target, line, true)
	}
	if holder != nil {
		m.handleNACK(c, holder, line, tlat+flat, true)
		return
	}
	if !c.TxActive() && m.tokenCore >= 0 && m.tokenCore != c.ID {
		// The serialization-token holder is irrevocable: a durable store
		// that would doom it (strong isolation against its lazy
		// speculation) stalls and retries instead, before the value lands.
		h := m.Cores[m.tokenCore]
		if m.modeOf(h) == ModeLazy && !h.abortPending &&
			(h.ReadSig.Test(line) || h.WriteSig.Test(line)) {
			m.handleNACK(c, h, line, tlat+flat, true)
			return
		}
	}

	finalLine, slat := m.VM.Store(m, c, addr, val)
	if finalLine != target {
		// The version manager moved the data (SUV first store or
		// redirect-back): install the new line exclusively. The data
		// arrived with the fetch above, so this is bookkeeping only.
		m.takeOwnership(c, finalLine)
	}
	if c.TxActive() {
		if c.windowStart == 0 {
			c.windowStart = m.now + 1 // first write acquisition opens the window
		}
		c.trackWrite(line)
		c.writtenTargets.Add(finalLine)
	} else {
		// A non-transactional store is immediately durable: lazy
		// transactions that speculatively read or wrote the line cannot
		// serialize around it (strong isolation). The serialization-token
		// holder cannot be doomed here: the pre-store guard above stalled
		// this storer before its value could land.
		var idx [signature.NumHashes]uint32
		signature.Indices(c.ReadSig.Kind(), line, c.ReadSig.Bits(), &idx)
		for _, h := range m.Cores {
			if h != c && m.modeOf(h) == ModeLazy && !h.abortPending &&
				(h.ReadSig.TestIdx(&idx) || h.WriteSig.TestIdx(&idx)) {
				// The doom is a signature decision at a known line; the
				// victim's precise sets say whether it was true sharing or
				// aliasing.
				precise := h.readSet.Has(line) || h.writeSet.Has(line)
				h.doomBy(c.ID, forensics.NoSite, line, forensics.CauseNonTxStore, true, precise)
			}
		}
	}
	if !lazy && finalLine == target {
		c.L1.MarkDirty(finalLine)
	}
	m.finishOp(c, tlat+flat+slat)
}

// acquire obtains target in c's L1 — exclusively when write is true —
// performing eager conflict detection on confLine at the directory.
// On a conflict it returns the latency spent plus the NACKing core and
// leaves all coherence state unchanged.
func (m *Machine) acquire(c *Core, target, confLine sim.Line, write bool) (sim.Cycles, *Core) {
	state, hit := c.L1.Peek(target)
	if hit && (!write || state == mem.Modified) && !debugAlwaysCheck {
		c.L1.Lookup(target) // LRU touch
		c.Counters.L1Hits++
		return m.cfg.L1Latency, nil
	}
	if hit && (!write || state == mem.Modified) {
		if holder := m.conflictHolder(c, confLine, write); holder != nil {
			return m.cfg.L1Latency, holder
		}
		c.L1.Lookup(target)
		c.Counters.L1Hits++
		return m.cfg.L1Latency, nil
	}

	// Coherence request to the line's home directory slice, routed
	// through the protocol retry layer when a fault window delays or
	// duplicates this core's messages.
	home := m.Mesh.HomeTile(target)
	lat := m.meshRequestLatency(c, m.Mesh.RoundTrip(c.ID, home)+m.cfg.DirLatency)
	if holder := m.conflictHolder(c, confLine, write); holder != nil {
		return lat, holder
	}
	if !hit {
		c.Counters.L1Misses++
	}

	owner := m.Dir.Owner(target)
	switch {
	case owner >= 0 && owner != c.ID:
		// Cache-to-cache transfer from the modified owner.
		oc := m.Cores[owner]
		lat += m.Mesh.RoundTrip(home, owner) + m.cfg.L1Latency
		if write {
			m.invalidateCopy(oc, target)
		} else {
			oc.L1.SetState(target, mem.Shared)
			m.Dir.Downgrade(target, owner)
			c.Counters.Writebacks++ // owner writes the dirty line back
		}
	case !hit:
		if _, l2hit := m.L2.Lookup(target); l2hit {
			lat += m.cfg.L2Latency
			c.Counters.L2Hits++
		} else {
			lat += m.cfg.MemLatency
			c.Counters.L2Misses++
			m.L2.Insert(target, mem.Shared, false)
		}
	default:
		// Upgrade from Shared: data already present, invalidations only.
	}
	if write {
		// The sharer set is unchanged since the pre-switch directory read:
		// the owner branch only drops the owner (never a sharer), so the
		// zero-alloc iteration here sees exactly the pre-fill sharers.
		var worst sim.Cycles
		m.Dir.ForEachSharer(target, func(s int) {
			if s == c.ID {
				return
			}
			if l := m.Mesh.RoundTrip(home, s); l > worst {
				worst = l
			}
			m.invalidateCopy(m.Cores[s], target)
		})
		lat += worst
		m.Dir.SetOwner(target, c.ID)
		m.installL1(c, target, mem.Modified)
	} else {
		m.Dir.AddSharer(target, c.ID)
		if hit {
			c.L1.Lookup(target)
		} else {
			m.installL1(c, target, mem.Shared)
		}
	}
	return lat, nil
}

// invalidateCopy removes target from victim's L1 (a remote GETM or an
// ownership move). Lazy transactions that speculatively used the line
// are NOT doomed here: an in-flight write is not durable yet, so their
// reads may still serialize before it. Conflicting lazy speculation dies
// at the writer's commit, when killLazyReaders broadcasts against the
// victims' signatures (which, unlike cached copies, survive eviction).
func (m *Machine) invalidateCopy(victim *Core, target sim.Line) {
	if _, present := victim.L1.Peek(target); !present {
		m.Dir.Drop(target, victim.ID)
		return
	}
	wasDirty, _ := victim.L1.Invalidate(target)
	if wasDirty {
		victim.Counters.Writebacks++
	}
	victim.Counters.Invalidations++
	m.Dir.Drop(target, victim.ID)
}

// installL1 fills target into c's L1, handling the victim: dirty victims
// write back, speculative victims signal transactional overflow to the
// scheme, and victims belonging to the current write-set flag Table V
// data overflow.
func (m *Machine) installL1(c *Core, target sim.Line, state mem.LineState) {
	v := c.L1.Insert(target, state, true)
	if !v.Valid {
		return
	}
	if v.Dirty {
		c.Counters.Writebacks++
		m.L2.Insert(v.Line, mem.Shared, false)
	}
	m.Dir.Drop(v.Line, c.ID)
	if c.InTx() {
		if c.writtenTargets.Has(v.Line) {
			c.overflowedL1 = true
		}
	}
	if v.Spec {
		c.Counters.SpecLineEvicted++
		m.VM.OnSpecEviction(m, c, v.Line)
	}
}

// takeOwnership installs finalLine exclusively in c's L1 and invalidates
// stale copies elsewhere (pool-line reuse) without charging latency: the
// data travelled with the triggering fetch.
func (m *Machine) takeOwnership(c *Core, finalLine sim.Line) {
	owner := m.Dir.Owner(finalLine)
	if owner >= 0 && owner != c.ID {
		m.invalidateCopy(m.Cores[owner], finalLine)
	}
	m.Dir.ForEachSharer(finalLine, func(s int) {
		if s != c.ID {
			m.invalidateCopy(m.Cores[s], finalLine)
		}
	})
	m.Dir.SetOwner(finalLine, c.ID)
	m.installL1(c, finalLine, mem.Modified)
	c.L1.MarkDirty(finalLine)
}

// conflictHolder returns the first core whose eager transaction's
// signatures conflict with an access to line (write: read or write set;
// read: write set only). Lazy transactions are invisible here — they
// resolve at commit.
func (m *Machine) conflictHolder(requester *Core, line sim.Line, write bool) *Core {
	// Every core's signatures share one shape, so hash the line once and
	// probe each filter with the precomputed indices.
	var idx [signature.NumHashes]uint32
	signature.Indices(requester.WriteSig.Kind(), line, requester.WriteSig.Bits(), &idx)
	for _, h := range m.Cores {
		if h == requester || !h.InTx() {
			continue
		}
		if m.VM.Mode(h) != ModeEager {
			continue
		}
		if h.WriteSig.TestIdx(&idx) || (write && h.ReadSig.TestIdx(&idx)) {
			return h
		}
	}
	return nil
}

// handleNACK implements the Stall policy with LogTM's distributed
// possible-cycle detection: the requester stalls and retries; a holder
// that NACKs an older transaction raises its possible-cycle flag; a
// requester whose own flag is raised aborts itself when NACKed by an
// older transaction.
func (m *Machine) handleNACK(c, holder *Core, line sim.Line, lat sim.Cycles, write bool) {
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.NACK, Line: line, Other: holder.ID})
	c.Counters.NACKsReceived++
	holder.Counters.NACKsSent++
	// The signature reported this conflict; the holder's precise sets say
	// whether it was true sharing or Bloom aliasing.
	precise := holder.InWriteSet(line) || (write && holder.InReadSet(line))
	if !precise {
		c.Counters.FalsePositive++
	}
	requesterEager := c.TxActive() && m.modeOf(c) == ModeEager
	if m.cfg.Policy == PolicyOlderWins && requesterEager &&
		m.older(c, holder) && !holder.abortPending && holder.status == statusRunning &&
		holder.ID != m.tokenCore {
		// Alternative policy: the receiving core aborts its transaction
		// to guarantee the older requester's execution (counted as a
		// remote abort when the holder processes it). The serialization-
		// token holder is irrevocable and never doomed. The signature
		// decision is classified by this NACK event, so the doom carries
		// sigHit=false to keep it counted once.
		holder.doomBy(c.ID, c.txSite(), line, forensics.CauseOlderWins, false, precise)
	} else if requesterEager {
		if m.older(c, holder) {
			holder.possibleCyc = true
		}
		if c.possibleCyc && m.older(holder, c) && c.ID != m.tokenCore {
			// Possible-cycle self-abort — except for the token holder,
			// which only ever stalls (the cores it waits on are doomed or
			// parked, so the stall drains; aborting it would forfeit the
			// very guarantee the token exists to provide).
			m.fxNACK(c, holder, line, write, lat, forensics.CauseCycle, precise)
			c.doom = doomInfo{
				killer: holder.ID, killerSite: holder.txSite(), line: line,
				cause: forensics.CauseCycle, sigHit: false, precise: precise,
			}
			c.Breakdown.Add(stats.Stalled, lat)
			c.Counters.CycleAborts++
			m.startAbort(c, lat)
			return
		}
	}
	m.fxNACK(c, holder, line, write, lat+m.cfg.RetryInterval, forensics.CauseEagerNACK, precise)
	if c.InTx() {
		// A stall is another lost round: it may push this transaction
		// over a starvation threshold.
		m.maybeEscalate(c)
	}
	c.Breakdown.Add(stats.Stalled, lat+m.cfg.RetryInterval)
	m.heap.Push(m.now+lat+m.cfg.RetryInterval, c.ID)
}

// older reports whether a's transaction is older than b's (smaller
// timestamp; ties break on core id). Cores without a transactional
// timestamp are treated as youngest.
func (m *Machine) older(a, b *Core) bool {
	if !a.hasTimestamp {
		return false
	}
	if !b.hasTimestamp {
		return true
	}
	if a.Timestamp != b.Timestamp {
		return a.Timestamp < b.Timestamp
	}
	return a.ID < b.ID
}

// AccessPrivate models a cache access to a core-private line (undo log,
// software structures) with no conflict detection: L1 hit, or fill from
// L2/memory.
func (m *Machine) AccessPrivate(c *Core, line sim.Line, write bool) sim.Cycles {
	state, hit := c.L1.Peek(line)
	if hit && (!write || state == mem.Modified) {
		c.L1.Lookup(line)
		c.Counters.L1Hits++
		return m.cfg.L1Latency
	}
	c.Counters.L1Misses++
	lat := m.cfg.L1Latency
	if _, l2hit := m.L2.Lookup(line); l2hit {
		lat += m.cfg.L2Latency
		c.Counters.L2Hits++
	} else {
		lat += m.cfg.MemLatency
		c.Counters.L2Misses++
		m.L2.Insert(line, mem.Shared, false)
	}
	if write {
		// Register exclusive ownership so later remote GETMs invalidate
		// this copy; without it a stale Modified line could take the
		// no-check L1-hit fast path and breach isolation.
		m.Dir.ForEachSharer(line, func(s int) {
			if s != c.ID {
				m.invalidateCopy(m.Cores[s], line)
			}
		})
		if o := m.Dir.Owner(line); o >= 0 && o != c.ID {
			m.invalidateCopy(m.Cores[o], line)
		}
		m.Dir.SetOwner(line, c.ID)
		m.installL1(c, line, mem.Modified)
		c.L1.MarkDirty(line)
	} else {
		m.Dir.AddSharer(line, c.ID)
		m.installL1(c, line, mem.Shared)
	}
	return lat
}

// SetDebugAlwaysCheck forces every access through the directory conflict
// check (bisection aid for isolation-invariant bugs; tests only).
func SetDebugAlwaysCheck(v bool) { debugAlwaysCheck = v }
