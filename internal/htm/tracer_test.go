package htm_test

import (
	"strings"
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/trace"
	"suvtm/internal/workload"
)

// TestMachineTracing attaches a recorder and checks the lifecycle events
// of a contended run appear in order.
func TestMachineTracing(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 1)
	progs := make([]workload.Program, 2)
	for c := range progs {
		b := workload.NewBuilder()
		for i := 0; i < 20; i++ {
			b.Begin(0)
			b.Load(0, region.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Compute(20)
			b.Store(region.WordAddr(0, 0), 0)
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	rec := trace.NewRecorder(4096)
	m := htm.New(htm.DefaultConfig(2), logtmse.New(), progs, r.memory, r.alloc)
	m.SetTracer(rec)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	var begins, commits, aborts, nacks uint64
	lastCycle := uint64(0)
	for _, e := range evs {
		if e.Cycle < lastCycle {
			t.Fatalf("events out of order at %v", e)
		}
		lastCycle = e.Cycle
		switch e.Kind {
		case trace.Begin:
			begins++
		case trace.Commit:
			commits++
		case trace.Abort:
			aborts++
		case trace.NACK:
			nacks++
		}
	}
	if commits != res.Counters.TxCommitted {
		t.Fatalf("traced %d commits, counted %d", commits, res.Counters.TxCommitted)
	}
	if aborts != res.Counters.TxAborted {
		t.Fatalf("traced %d aborts, counted %d", aborts, res.Counters.TxAborted)
	}
	if begins != res.Counters.TxStarted {
		t.Fatalf("traced %d begins, counted %d", begins, res.Counters.TxStarted)
	}
	if nacks == 0 {
		t.Fatal("no NACKs traced under contention")
	}
	if !strings.Contains(rec.Dump(), "commit") {
		t.Fatal("dump missing commits")
	}
}
