package htm_test

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/dyntm"
	"suvtm/internal/htm/fastm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/mem"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// allVMs returns one fresh instance of every scheme.
func allVMs() map[string]func() htm.VersionManager {
	return map[string]func() htm.VersionManager{
		"LogTM-SE":  func() htm.VersionManager { return logtmse.New() },
		"FasTM":     func() htm.VersionManager { return fastm.New() },
		"SUV-TM":    func() htm.VersionManager { return suvtm.New() },
		"DynTM":     func() htm.VersionManager { return dyntm.New() },
		"DynTM+SUV": func() htm.VersionManager { return dyntm.NewWithSUV() },
	}
}

type rig struct {
	memory *mem.Memory
	alloc  *mem.Allocator
}

func newRig() *rig {
	return &rig{memory: mem.NewMemory(), alloc: mem.NewAllocator(0x100000, 1<<30)}
}

func (r *rig) run(t *testing.T, vm htm.VersionManager, cores int, progs []workload.Program) (*htm.Machine, *htm.Result) {
	t.Helper()
	cfg := htm.DefaultConfig(cores)
	cfg.MaxCycles = 200_000_000
	m := htm.New(cfg, vm, progs, r.memory, r.alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

// TestConservation checks the accounting invariant: every cycle of every
// core is attributed to exactly one breakdown component, so per-core
// totals all equal the machine's final cycle count.
func TestConservation(t *testing.T) {
	for name, mk := range allVMs() {
		t.Run(name, func(t *testing.T) {
			r := newRig()
			region := workload.NewRegion(r.alloc, 8)
			progs := make([]workload.Program, 4)
			for c := range progs {
				b := workload.NewBuilder()
				for i := 0; i < 40; i++ {
					b.Begin(0)
					addr := region.WordAddr((i+c)%8, 0)
					b.Load(0, addr)
					b.AddImm(0, 1)
					b.Store(addr, 0)
					b.Commit()
					b.Compute(7)
				}
				b.Barrier(0)
				progs[c] = b.Build()
			}
			_, res := r.run(t, mk(), 4, progs)
			for i, bd := range res.PerCore {
				if bd.Total() != res.Cycles {
					t.Errorf("core %d attributed %d cycles, machine ran %d", i, bd.Total(), res.Cycles)
				}
			}
		})
	}
}

// TestDeterminism: identical configuration and seed must give identical
// cycle counts and breakdowns.
func TestDeterminism(t *testing.T) {
	build := func() (*htm.Machine, *rig) {
		r := newRig()
		region := workload.NewRegion(r.alloc, 4)
		progs := make([]workload.Program, 8)
		for c := range progs {
			b := workload.NewBuilder()
			for i := 0; i < 30; i++ {
				b.Begin(0)
				addr := region.WordAddr(i%4, 0)
				b.Load(0, addr)
				b.AddImm(0, 1)
				b.Store(addr, 0)
				b.Commit()
			}
			b.Barrier(0)
			progs[c] = b.Build()
		}
		cfg := htm.DefaultConfig(8)
		return htm.New(cfg, suvtm.New(), progs, r.memory, r.alloc), r
	}
	m1, _ := build()
	m2, _ := build()
	r1, err1 := m1.Run()
	r2, err2 := m2.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v %v", err1, err2)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("non-deterministic: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
	if r1.Breakdown != r2.Breakdown {
		t.Fatalf("non-deterministic breakdowns")
	}
}

// TestRegisterCheckpoint: registers modified inside an aborted attempt
// must be restored, so the committed value is exactly one increment.
func TestRegisterCheckpoint(t *testing.T) {
	// Two cores hammer one word so aborts are certain; each transaction
	// computes r0 = load + 1 and the final value must be the exact count
	// of commits even though attempts clobber r0 repeatedly.
	r := newRig()
	region := workload.NewRegion(r.alloc, 1)
	addr := region.WordAddr(0, 0)
	progs := make([]workload.Program, 2)
	for c := range progs {
		b := workload.NewBuilder()
		b.LoadImm(2, 7777) // canary register, set before all transactions
		for i := 0; i < 50; i++ {
			b.Begin(0)
			b.Load(0, addr)
			b.AddImm(0, 1)
			b.Compute(25)
			b.Store(addr, 0)
			b.Commit()
		}
		// Store the canary: if abort restore damaged r2 this mismatches.
		b.StoreImm(region.WordAddr(0, 1), 0)
		b.Store(region.WordAddr(0, 2), 2)
		b.Barrier(0)
		progs[c] = b.Build()
	}
	m, res := r.run(t, logtmse.New(), 2, progs)
	if res.Counters.TxAborted == 0 {
		t.Fatal("expected aborts under contention")
	}
	if got := m.ArchMem().Read(addr); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if got := m.ArchMem().Read(region.WordAddr(0, 2)); got != 7777 {
		t.Fatalf("canary register corrupted: %d", got)
	}
}

// TestDeadlockResolvedByCycleAbort: two cores acquire two lines in
// opposite order — the Stall policy alone would deadlock; possible-cycle
// detection must abort one and let both finish.
func TestDeadlockResolvedByCycleAbort(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 2)
	a0, a1 := region.WordAddr(0, 0), region.WordAddr(1, 0)
	mkProg := func(first, second sim.Addr) workload.Program {
		b := workload.NewBuilder()
		for i := 0; i < 20; i++ {
			b.Begin(0)
			b.Load(0, first)
			b.AddImm(0, 1)
			b.Store(first, 0)
			b.Compute(60) // widen the window so lock order inverts
			b.Load(1, second)
			b.AddImm(1, 1)
			b.Store(second, 1)
			b.Commit()
		}
		b.Barrier(0)
		return b.Build()
	}
	m, res := r.run(t, logtmse.New(), 2, []workload.Program{mkProg(a0, a1), mkProg(a1, a0)})
	if res.Counters.CycleAborts == 0 {
		t.Fatal("no cycle aborts despite opposite acquisition order")
	}
	if got := m.ArchMem().Read(a0); got != 40 {
		t.Fatalf("a0 = %d, want 40", got)
	}
	if got := m.ArchMem().Read(a1); got != 40 {
		t.Fatalf("a1 = %d, want 40", got)
	}
}

// TestStrongIsolation: a transaction that reads the same word twice must
// never observe an intervening non-transactional store (strong
// isolation), under every scheme.
func TestStrongIsolation(t *testing.T) {
	const iters = 50
	for name, mk := range allVMs() {
		t.Run(name, func(t *testing.T) {
			r := newRig()
			region := workload.NewRegion(r.alloc, 1)
			check := workload.NewRegion(r.alloc, 2*iters/8+2)
			addr := region.WordAddr(0, 0)
			// Core 0 reads addr twice inside each transaction, with a gap
			// a racing store could slip into, and records both values.
			b0 := workload.NewBuilder()
			for i := 0; i < iters; i++ {
				b0.Begin(0)
				b0.Load(0, addr)
				b0.Compute(40)
				b0.Load(1, addr)
				b0.Commit()
				b0.Store(check.WordAddr((2*i)/8, (2*i)%8), 0)
				b0.Store(check.WordAddr((2*i+1)/8, (2*i+1)%8), 1)
			}
			b0.Barrier(0)
			// Core 1 fires plain stores at the word.
			b1 := workload.NewBuilder()
			for i := 0; i < 3*iters; i++ {
				b1.StoreImm(addr, sim.Word(1000+i))
				b1.Compute(11)
			}
			b1.Barrier(0)
			m, _ := r.run(t, mk(), 2, []workload.Program{b0.Build(), b1.Build()})
			arch := m.ArchMem()
			for i := 0; i < iters; i++ {
				v0 := arch.Read(check.WordAddr((2*i)/8, (2*i)%8))
				v1 := arch.Read(check.WordAddr((2*i+1)/8, (2*i+1)%8))
				if v0 != v1 {
					t.Fatalf("iteration %d: transaction observed %d then %d (strong isolation breached)", i, v0, v1)
				}
			}
		})
	}
}

// TestNestedTransactions: closed nesting with the nest counter — a
// nested commit keeps everything transactional until the outer commit.
func TestNestedTransactions(t *testing.T) {
	for name, mk := range allVMs() {
		t.Run(name, func(t *testing.T) {
			r := newRig()
			region := workload.NewRegion(r.alloc, 2)
			b := workload.NewBuilder()
			for i := 0; i < 10; i++ {
				b.Begin(0)
				b.Load(0, region.WordAddr(0, 0))
				b.AddImm(0, 1)
				b.Store(region.WordAddr(0, 0), 0)
				b.Begin(1) // nested
				b.Load(1, region.WordAddr(1, 0))
				b.AddImm(1, 1)
				b.Store(region.WordAddr(1, 0), 1)
				b.Commit() // inner
				b.Commit() // outer
			}
			b.Barrier(0)
			m, res := r.run(t, mk(), 1, []workload.Program{b.Build()})
			if m.ArchMem().Read(region.WordAddr(0, 0)) != 10 || m.ArchMem().Read(region.WordAddr(1, 0)) != 10 {
				t.Fatal("nested transaction values wrong")
			}
			if res.Counters.TxCommitted != 10 {
				t.Fatalf("outer commits = %d, want 10", res.Counters.TxCommitted)
			}
		})
	}
}

// TestBarrierSynchronizes: a slow core must make fast cores accumulate
// Barrier time, and all cores proceed together.
func TestBarrierSynchronizes(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 2)
	fast := workload.NewBuilder()
	fast.Compute(10).Barrier(0)
	fast.StoreImm(region.WordAddr(0, 0), 1)
	fast.Barrier(1)
	slow := workload.NewBuilder()
	slow.Compute(5000).Barrier(0)
	slow.StoreImm(region.WordAddr(1, 0), 1)
	slow.Barrier(1)
	_, res := r.run(t, logtmse.New(), 2, []workload.Program{fast.Build(), slow.Build()})
	if res.PerCore[0].Cycles[stats.Barrier] < 4000 {
		t.Fatalf("fast core barrier time = %d, want ~4990", res.PerCore[0].Cycles[stats.Barrier])
	}
}

// TestFasTMDegeneration: with a tiny L1, speculative lines are evicted
// and FasTM must fall back to LogTM-SE software aborts.
func TestFasTMDegeneration(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 64)
	hot := workload.NewRegion(r.alloc, 1)
	progs := make([]workload.Program, 2)
	for c := range progs {
		b := workload.NewBuilder()
		for i := 0; i < 12; i++ {
			b.Begin(0)
			// Conflict-prone word first, then a write-set bigger than the
			// small L1 so speculative lines spill.
			b.Load(0, hot.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Store(hot.WordAddr(0, 0), 0)
			for k := 0; k < 48; k++ {
				b.StoreImm(region.WordAddr(k, c), 1)
			}
			b.Compute(50)
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	cfg := htm.DefaultConfig(2)
	cfg.L1 = mem.CacheConfig{SizeBytes: 16 * sim.LineBytes, Ways: 2} // 1 KB L1
	cfg.MaxCycles = 100_000_000
	m := htm.New(cfg, fastm.New(), progs, r.memory, r.alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Counters.SpecLineEvicted == 0 {
		t.Fatal("no speculative evictions despite tiny L1")
	}
	if res.Counters.CacheOverflowTx == 0 {
		t.Fatal("no transactions counted as cache-overflowed")
	}
	if got := m.ArchMem().Read(hot.WordAddr(0, 0)); got != 24 {
		t.Fatalf("hot counter = %d, want 24", got)
	}
	// Degenerated transactions log their post-overflow stores like
	// LogTM-SE (aborts may still happen before the overflow point, so
	// software traps are not guaranteed — the logging is).
	if res.Counters.UndoLogEntries == 0 {
		t.Fatal("degenerated transactions wrote no undo records")
	}
}

// TestWatchdogFires: an impossible barrier quorum must be reported as a
// deadlock rather than hanging.
func TestDeadlockDetected(t *testing.T) {
	r := newRig()
	b0 := workload.NewBuilder()
	b0.Barrier(0)
	b1 := workload.NewBuilder()
	b1.Barrier(1) // mismatched id: nobody ever completes barrier 0 or 1
	cfg := htm.DefaultConfig(2)
	m := htm.New(cfg, logtmse.New(), []workload.Program{b0.Build(), b1.Build()}, r.memory, r.alloc)
	if _, err := m.Run(); err == nil {
		t.Fatal("mismatched barriers did not error")
	}
}

// TestIdleCoresAllowed: fewer programs than cores must still finish.
func TestIdleCoresAllowed(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 1)
	b := workload.NewBuilder()
	b.Begin(0)
	b.StoreImm(region.WordAddr(0, 0), 42)
	b.Commit()
	b.Barrier(0)
	m, res := r.run(t, suvtm.New(), 4, []workload.Program{b.Build()})
	if res.Counters.TxCommitted != 1 {
		t.Fatalf("commits = %d", res.Counters.TxCommitted)
	}
	if m.ArchMem().Read(region.WordAddr(0, 0)) != 42 {
		t.Fatal("value lost")
	}
}

// TestDynTMSelectorAdapts: a high-conflict site must migrate to lazy
// mode under DynTM.
func TestDynTMSelectorAdapts(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 1)
	addr := region.WordAddr(0, 0)
	progs := make([]workload.Program, 8)
	for c := range progs {
		b := workload.NewBuilder()
		for i := 0; i < 60; i++ {
			b.Begin(0)
			b.Load(0, addr)
			b.AddImm(0, 1)
			b.Compute(20)
			b.Store(addr, 0)
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	m, res := r.run(t, dyntm.New(), 8, progs)
	if res.Counters.LazyTx == 0 {
		t.Fatal("selector never chose lazy despite constant conflicts")
	}
	if got := m.ArchMem().Read(addr); got != 480 {
		t.Fatalf("counter = %d, want 480", got)
	}
}

// TestFastPathEquivalence: the L1-hit fast path (no conflict check) must
// produce the same architectural memory as checking conflicts on every
// access.
func TestFastPathEquivalence(t *testing.T) {
	final := func(always bool) map[sim.Addr]sim.Word {
		htm.SetDebugAlwaysCheck(always)
		defer htm.SetDebugAlwaysCheck(false)
		r := newRig()
		region := workload.NewRegion(r.alloc, 4)
		progs := make([]workload.Program, 4)
		for c := range progs {
			rng := sim.NewRNG(uint64(c) + 5)
			b := workload.NewBuilder()
			for i := 0; i < 40; i++ {
				b.Begin(0)
				for k := 0; k < 3; k++ {
					addr := region.WordAddr(rng.Intn(4), rng.Intn(8))
					b.Load(0, addr)
					b.AddImm(0, 1)
					b.Store(addr, 0)
				}
				b.Commit()
			}
			b.Barrier(0)
			progs[c] = b.Build()
		}
		cfg := htm.DefaultConfig(4)
		m := htm.New(cfg, logtmse.New(), progs, r.memory, r.alloc)
		if _, err := m.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		out := make(map[sim.Addr]sim.Word)
		for i := 0; i < 4; i++ {
			for w := 0; w < 8; w++ {
				a := region.WordAddr(i, w)
				out[a] = m.ArchMem().Read(a)
			}
		}
		return out
	}
	fast := final(false)
	checked := final(true)
	for a, v := range checked {
		if fast[a] != v {
			t.Fatalf("addr %#x: fast path %d, always-check %d", a, fast[a], v)
		}
	}
}
