package htm

import "suvtm/internal/sim"

// ExecMode is how a transaction detects conflicts and manages versions.
type ExecMode uint8

const (
	// ModeNone means the core has no active transaction.
	ModeNone ExecMode = iota
	// ModeEager transactions acquire isolation at access time: their
	// signatures NACK conflicting requests until commit or abort.
	ModeEager
	// ModeLazy transactions (DynTM) run invisibly — their writes are
	// buffered or redirected privately — and resolve conflicts at commit
	// via arbitration and write-set validation.
	ModeLazy
)

// String names the mode.
func (m ExecMode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeEager:
		return "eager"
	case ModeLazy:
		return "lazy"
	}
	return "ExecMode(?)"
}

// VersionManager is the scheme plug-in interface. The Machine drives the
// coherence protocol, conflict detection and the engine; the
// VersionManager decides where transactional data lives (undo log,
// speculative L1 lines, redirect pool), what each operation costs, and
// how commit and abort transform memory.
//
// Call ordering for a transactional store: Translate (address filter and
// redirect-table walk, pre-permission) -> machine conflict check and
// coherence fetch -> Store (version-management transition and the actual
// value write). Loads use Translate -> fetch -> Load.
type VersionManager interface {
	// Name returns the scheme name used in reports ("LogTM-SE", ...).
	Name() string

	// Init is called once after the Machine is fully constructed.
	Init(m *Machine)

	// Mode reports how c's current transaction detects conflicts.
	// It must return ModeNone when c is not in a transaction.
	Mode(c *Core) ExecMode

	// Begin opens a transaction frame (outermost or nested) and returns
	// the cycles the hardware spends (register checkpoint, signature
	// setup). The frame has already been pushed on c.Frames.
	Begin(m *Machine, c *Core) sim.Cycles

	// Translate maps a program line to the physical line the access must
	// use (SUV redirect filtering and table walk; identity elsewhere),
	// returning lookup latency. It must have no transactional side
	// effects: a NACKed access will call it again on retry.
	Translate(m *Machine, c *Core, line sim.Line, write bool) (sim.Line, sim.Cycles)

	// Load returns the value of addr for c, given the translated
	// targetAddr (lazy schemes consult their write buffer first), plus
	// any version-management latency beyond the cache access.
	Load(m *Machine, c *Core, addr, targetAddr sim.Addr) (sim.Word, sim.Cycles)

	// Store performs the version-management action for a store by c
	// (undo logging, speculative marking, redirect transition, write
	// buffering), writes the value, and returns the physical line that
	// now holds the data (for L1 installation) plus extra latency.
	// For eager modes the machine has already acquired exclusive
	// permission for the *pre-transition* target line.
	Store(m *Machine, c *Core, addr sim.Addr, val sim.Word) (sim.Line, sim.Cycles)

	// CommitOuter finalizes c's outermost transaction (the machine has
	// already performed lazy arbitration/validation if applicable) and
	// returns the version-management commit latency.
	CommitOuter(m *Machine, c *Core) sim.Cycles

	// CommitNested merges c's innermost nested frame into its parent.
	CommitNested(m *Machine, c *Core) sim.Cycles

	// CommitOpen publishes c's innermost nested frame immediately (open
	// nesting, Section IV-C): its version-management effects become
	// durable even though the parent is still speculative. The machine
	// separately restores the parent's signatures and registers the
	// compensating action.
	CommitOpen(m *Machine, c *Core) sim.Cycles

	// Abort rolls back every open frame of c's transaction and returns
	// the roll-back latency; the machine keeps c's isolation (signatures)
	// in force for that whole duration — the repair-pathology window.
	Abort(m *Machine, c *Core) sim.Cycles

	// OnSpecEviction tells the scheme a speculative line was evicted from
	// c's L1 during a transaction (FasTM degenerates to LogTM-SE).
	OnSpecEviction(m *Machine, c *Core, line sim.Line)
}
