package htm

import "suvtm/internal/sim"

// ExecMode is how a transaction detects conflicts and manages versions.
type ExecMode uint8

const (
	// ModeNone means the core has no active transaction.
	ModeNone ExecMode = iota
	// ModeEager transactions acquire isolation at access time: their
	// signatures NACK conflicting requests until commit or abort.
	ModeEager
	// ModeLazy transactions (DynTM) run invisibly — their writes are
	// buffered or redirected privately — and resolve conflicts at commit
	// via arbitration and write-set validation.
	ModeLazy
)

// String names the mode.
func (m ExecMode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeEager:
		return "eager"
	case ModeLazy:
		return "lazy"
	}
	return "ExecMode(?)"
}

// VersionManager is the scheme plug-in interface. The Machine drives the
// coherence protocol, conflict detection and the engine; the
// VersionManager decides where transactional data lives (undo log,
// speculative L1 lines, redirect pool), what each operation costs, and
// how commit and abort transform memory.
//
// Call ordering for a transactional store: Translate (address filter and
// redirect-table walk, pre-permission) -> machine conflict check and
// coherence fetch -> Store (version-management transition and the actual
// value write). Loads use Translate -> fetch -> Load.
type VersionManager interface {
	// Name returns the scheme name used in reports ("LogTM-SE", ...).
	Name() string

	// Init is called once after the Machine is fully constructed.
	Init(m *Machine)

	// Mode reports how c's current transaction detects conflicts.
	// It must return ModeNone when c is not in a transaction.
	Mode(c *Core) ExecMode

	// Begin opens a transaction frame (outermost or nested) and returns
	// the cycles the hardware spends (register checkpoint, signature
	// setup). The frame has already been pushed on c.Frames.
	Begin(m *Machine, c *Core) sim.Cycles

	// Translate maps a program line to the physical line the access must
	// use (SUV redirect filtering and table walk; identity elsewhere),
	// returning lookup latency. It must have no transactional side
	// effects: a NACKed access will call it again on retry.
	Translate(m *Machine, c *Core, line sim.Line, write bool) (sim.Line, sim.Cycles)

	// Load returns the value of addr for c, given the translated
	// targetAddr (lazy schemes consult their write buffer first), plus
	// any version-management latency beyond the cache access.
	Load(m *Machine, c *Core, addr, targetAddr sim.Addr) (sim.Word, sim.Cycles)

	// Store performs the version-management action for a store by c
	// (undo logging, speculative marking, redirect transition, write
	// buffering), writes the value, and returns the physical line that
	// now holds the data (for L1 installation) plus extra latency.
	// For eager modes the machine has already acquired exclusive
	// permission for the *pre-transition* target line.
	Store(m *Machine, c *Core, addr sim.Addr, val sim.Word) (sim.Line, sim.Cycles)

	// CommitOuter finalizes c's outermost transaction (the machine has
	// already performed lazy arbitration/validation if applicable) and
	// returns the version-management commit latency.
	CommitOuter(m *Machine, c *Core) sim.Cycles

	// CommitNested merges c's innermost nested frame into its parent.
	CommitNested(m *Machine, c *Core) sim.Cycles

	// CommitOpen publishes c's innermost nested frame immediately (open
	// nesting, Section IV-C): its version-management effects become
	// durable even though the parent is still speculative. The machine
	// separately restores the parent's signatures and registers the
	// compensating action.
	CommitOpen(m *Machine, c *Core) sim.Cycles

	// Abort rolls back every open frame of c's transaction and returns
	// the roll-back latency; the machine keeps c's isolation (signatures)
	// in force for that whole duration — the repair-pathology window.
	Abort(m *Machine, c *Core) sim.Cycles

	// OnSpecEviction tells the scheme a speculative line was evicted from
	// c's L1 during a transaction (FasTM degenerates to LogTM-SE).
	OnSpecEviction(m *Machine, c *Core, line sim.Line)
}

// AccessPeek is a LocalPeeker's answer for one prospective access: the
// physical line the access will use and the exact scheme latency it
// will charge (Translate plus Load/Store), valid only when OK is true.
type AccessPeek struct {
	Target sim.Line
	Lat    sim.Cycles
	OK     bool
}

// LocalPeeker is the optional VersionManager extension that powers the
// parallel window engine (parallel.go). PeekLoad/PeekStore answer, with
// NO side effects of any kind, whether an access by c to line would be
// purely core-local under the scheme: Translate would touch nothing but
// c's own counters, Load/Store would touch nothing but c's own state
// and the (already materialized) word in flat memory, and the combined
// scheme latency would be exactly Lat with the data landing on exactly
// Target. Any access the scheme cannot certify — redirected lines,
// first-touch transactional stores, anything that walks shared tables —
// must answer OK=false; the engine then runs it sequentially. Certified
// accesses are identity-mapped: an OK answer carries Target == line
// (the execution fast path relies on it, and parVerifyChains checks it).
//
// The contract has two more clauses the engine's soundness depends on:
// the classification inputs (summary signature, per-core first-touch
// maps, L1 contents) must never be mutated by an access the peeker
// certified, and Mode must never return ModeLazy (the engine skips the
// sequential path's lazy-victim broadcast on certified non-transactional
// stores). Schemes that cannot promise this simply do not implement the
// interface and always run sequentially.
type LocalPeeker interface {
	PeekLoad(m *Machine, c *Core, line sim.Line) AccessPeek
	PeekStore(m *Machine, c *Core, line sim.Line) AccessPeek

	// LoadLocal and StoreLocal are the execution-side twins of the peeks:
	// they perform a certified access with exactly the observable effects
	// (counters, memory words, latency) the full Translate+Load/Store
	// path would have on it, but without re-walking the filters the peek
	// already cleared — the peek's verdict still holds at execution time
	// because certified ops never mutate classification inputs. The
	// engine only calls them for accesses the matching peek certified in
	// the same window; parVerifyChains routes execution through the full
	// scheme path instead, which is the switch to flip when validating a
	// new implementation. Both return the extra scheme latency beyond the
	// L1 hit — which must equal the AccessPeek.Lat the peek reported.
	LoadLocal(m *Machine, c *Core, addr sim.Addr) (sim.Word, sim.Cycles)
	StoreLocal(m *Machine, c *Core, addr sim.Addr, val sim.Word) sim.Cycles

	// PeekDirOp and DirOpLocal extend the contract to the engine's
	// cross-core tier: a certified L1 miss or upgrade routes one
	// coherence request through the line's home directory bank and
	// possibly the L2 bank under it. PeekDirOp answers — with no side
	// effects — whether the scheme permits that request inside a window
	// (no scheme metadata may hang off the line's directory/L2 path) and
	// what extra scheme latency the request carries; DirOpLocal is the
	// execution twin, performing any scheme-side effect of a certified
	// request and returning that same latency. Today every scheme folds
	// its directory-op costs into Translate/Load/Store, so all three
	// implementations answer Lat 0 and DirOpLocal returns 0; the seam
	// exists so a scheme with bank-local directory state can join
	// cross-core windows without the engine changing. The Target of a
	// certified answer is the line itself (identity, as for the peeks).
	PeekDirOp(m *Machine, c *Core, line sim.Line, write bool) AccessPeek
	DirOpLocal(m *Machine, c *Core, line sim.Line, write bool) sim.Cycles
}
