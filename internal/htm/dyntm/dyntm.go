// Package dyntm implements DynTM (Lupon et al., MICRO 2010): a
// dynamically adaptable HTM whose history-based selector picks, per
// static transaction site, either eager execution (conflicts resolved at
// access time, FasTM-style version management in the original design) or
// lazy execution (invisible writes, commit-time arbitration and write-set
// merge — the Figure 9 "Committing" component). The paper's D+S variant
// replaces the version-management half with SUV, which keeps the
// selector but makes both the eager stores and the lazy commit merge
// single-update flash operations.
package dyntm

import (
	"suvtm/internal/htm"
	"suvtm/internal/htm/fastm"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/sim"
)

// predictLazyAt is the saturating-counter threshold above which a site
// runs lazy (abort-prone sites benefit from cheap lazy aborts).
const predictLazyAt = 2

type coreState struct {
	mode htm.ExecMode // mode of the current transaction
}

// VM is the DynTM version manager.
type VM struct {
	name      string
	eager     htm.VersionManager
	lazy      htm.VersionManager
	st        []coreState
	predictor map[uint32]int8
}

// New returns the original DynTM: FasTM version management for eager
// transactions, write-buffered lazy transactions with commit-time merge.
func New() *VM {
	return &VM{name: "DynTM", eager: fastm.New(), lazy: newLazyBuffered()}
}

// NewWithSUV returns the paper's D+S configuration: DynTM's selector and
// conflict machinery with SUV as the version manager in both modes.
func NewWithSUV() *VM {
	s := suvtm.New()
	return &VM{name: "DynTM+SUV", eager: s, lazy: s}
}

// Name implements htm.VersionManager.
func (v *VM) Name() string { return v.name }

// Init implements htm.VersionManager.
func (v *VM) Init(m *htm.Machine) {
	v.st = make([]coreState, len(m.Cores))
	v.predictor = make(map[uint32]int8)
	v.eager.Init(m)
	if v.lazy != v.eager {
		v.lazy.Init(m)
	}
}

// Mode reports the selected mode of c's current transaction.
func (v *VM) Mode(c *htm.Core) htm.ExecMode {
	if !c.InTx() {
		return htm.ModeNone
	}
	return v.st[c.ID].mode
}

// vm returns the version manager handling c's current (or non-)
// transactional state.
func (v *VM) vm(c *htm.Core) htm.VersionManager {
	if c.InTx() && v.st[c.ID].mode == htm.ModeLazy {
		return v.lazy
	}
	return v.eager
}

// Begin consults the history-based selector on the outermost frame and
// routes the transaction to the chosen mode.
func (v *VM) Begin(m *htm.Machine, c *htm.Core) sim.Cycles {
	if c.Depth() == 1 {
		site := c.Frames[0].Site
		if v.predictor[site] >= predictLazyAt {
			v.st[c.ID].mode = htm.ModeLazy
			c.Counters.LazyTx++
		} else {
			v.st[c.ID].mode = htm.ModeEager
			c.Counters.EagerTx++
		}
	}
	return v.vm(c).Begin(m, c)
}

// Translate routes through the active mode's version manager.
func (v *VM) Translate(m *htm.Machine, c *htm.Core, line sim.Line, write bool) (sim.Line, sim.Cycles) {
	return v.vm(c).Translate(m, c, line, write)
}

// Load routes through the active mode's version manager.
func (v *VM) Load(m *htm.Machine, c *htm.Core, addr, targetAddr sim.Addr) (sim.Word, sim.Cycles) {
	return v.vm(c).Load(m, c, addr, targetAddr)
}

// Store routes through the active mode's version manager.
func (v *VM) Store(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) (sim.Line, sim.Cycles) {
	return v.vm(c).Store(m, c, addr, val)
}

// CommitOuter finalizes the transaction and trains the selector toward
// eager (commits are the common case the mode should optimize).
func (v *VM) CommitOuter(m *htm.Machine, c *htm.Core) sim.Cycles {
	site := c.Frames[0].Site
	if v.predictor[site] > 0 {
		v.predictor[site]--
	}
	return v.vm(c).CommitOuter(m, c)
}

// CommitNested merges the innermost frame in the active mode.
func (v *VM) CommitNested(m *htm.Machine, c *htm.Core) sim.Cycles {
	return v.vm(c).CommitNested(m, c)
}

// CommitOpen publishes the innermost frame in the active mode.
func (v *VM) CommitOpen(m *htm.Machine, c *htm.Core) sim.Cycles {
	return v.vm(c).CommitOpen(m, c)
}

// Abort rolls back in the active mode and trains the selector toward
// lazy (abort-prone sites want cheap aborts).
func (v *VM) Abort(m *htm.Machine, c *htm.Core) sim.Cycles {
	site := c.Frames[0].Site
	if v.predictor[site] < 3 {
		v.predictor[site]++
	}
	return v.vm(c).Abort(m, c)
}

// OnSpecEviction routes the overflow signal to the active mode.
func (v *VM) OnSpecEviction(m *htm.Machine, c *htm.Core, line sim.Line) {
	v.vm(c).OnSpecEviction(m, c, line)
}
