package dyntm_test

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/dyntm"
	"suvtm/internal/mem"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

func run(t *testing.T, vm htm.VersionManager, progs []workload.Program, memory *mem.Memory, alloc *mem.Allocator, cores int) (*htm.Machine, *htm.Result) {
	t.Helper()
	cfg := htm.DefaultConfig(cores)
	cfg.MaxCycles = 200_000_000
	m := htm.New(cfg, vm, progs, memory, alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

// contendedCounter builds a workload whose single site aborts constantly,
// forcing the selector toward lazy mode.
func contendedCounter(alloc *mem.Allocator, cores, iters int) ([]workload.Program, workload.Region) {
	region := workload.NewRegion(alloc, 1)
	progs := make([]workload.Program, cores)
	for c := 0; c < cores; c++ {
		b := workload.NewBuilder()
		for i := 0; i < iters; i++ {
			b.Begin(0)
			b.Load(0, region.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Compute(20)
			b.Store(region.WordAddr(0, 0), 0)
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	return progs, region
}

// TestSelectorLearnsLazy: a conflict-heavy site must migrate to lazy
// execution; a conflict-free site must stay eager.
func TestSelectorLearnsLazy(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	progs, region := contendedCounter(alloc, 8, 50)
	m, res := run(t, dyntm.New(), progs, memory, alloc, 8)
	if res.Counters.LazyTx == 0 {
		t.Fatal("contended site never ran lazy")
	}
	if res.Counters.EagerTx == 0 {
		t.Fatal("no transaction ran eager (the first attempts must)")
	}
	if got := m.ArchMem().Read(region.WordAddr(0, 0)); got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
}

// TestConflictFreeSiteStaysEager: without aborts the selector never
// leaves eager mode.
func TestConflictFreeSiteStaysEager(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	progs := make([]workload.Program, 4)
	for c := range progs {
		region := workload.NewRegion(alloc, 4) // private per core
		b := workload.NewBuilder()
		for i := 0; i < 30; i++ {
			b.Begin(0)
			b.StoreImm(region.WordAddr(i%4, 0), uint64(i))
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	_, res := run(t, dyntm.New(), progs, memory, alloc, 4)
	if res.Counters.LazyTx != 0 {
		t.Fatalf("%d transactions ran lazy without conflicts", res.Counters.LazyTx)
	}
}

// TestLazyCommitMerge: original DynTM's lazy commits pay a per-line
// merge that shows up as Committing time and merge counters.
func TestLazyCommitMerge(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	progs, _ := contendedCounter(alloc, 8, 60)
	_, res := run(t, dyntm.New(), progs, memory, alloc, 8)
	if res.Counters.LazyCommitMerges == 0 {
		t.Fatal("no lazy commit merges")
	}
	if res.Breakdown.Cycles[stats.Committing] == 0 {
		t.Fatal("no Committing time attributed")
	}
}

// TestSUVLazyCommitsWithoutMerge: D+S lazy commits are flash operations —
// no per-line merges, near-zero Committing beyond arbitration.
func TestSUVLazyCommitsWithoutMerge(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	progs, region := contendedCounter(alloc, 8, 60)
	m, res := run(t, dyntm.NewWithSUV(), progs, memory, alloc, 8)
	if res.Counters.LazyTx == 0 {
		t.Fatal("selector never went lazy")
	}
	if res.Counters.LazyCommitMerges != 0 {
		t.Fatalf("%d merge lines under SUV lazy commit", res.Counters.LazyCommitMerges)
	}
	if got := m.ArchMem().Read(region.WordAddr(0, 0)); got != 480 {
		t.Fatalf("counter = %d, want 480", got)
	}
}

// TestMixedModeCorrectness: two sites — one contended (goes lazy), one
// private (stays eager) — interleaved in the same transactionally
// correct program.
func TestMixedModeCorrectness(t *testing.T) {
	for _, mk := range []func() htm.VersionManager{func() htm.VersionManager { return dyntm.New() }, func() htm.VersionManager { return dyntm.NewWithSUV() }} {
		memory := mem.NewMemory()
		alloc := mem.NewAllocator(0x100000, 1<<30)
		shared := workload.NewRegion(alloc, 1)
		progs := make([]workload.Program, 6)
		privates := make([]workload.Region, 6)
		for c := range progs {
			privates[c] = workload.NewRegion(alloc, 2)
			b := workload.NewBuilder()
			for i := 0; i < 40; i++ {
				b.Begin(0) // contended site
				b.Load(0, shared.WordAddr(0, 0))
				b.AddImm(0, 1)
				b.Compute(15)
				b.Store(shared.WordAddr(0, 0), 0)
				b.Commit()
				b.Begin(1) // private site
				b.Load(0, privates[c].WordAddr(0, 0))
				b.AddImm(0, 1)
				b.Store(privates[c].WordAddr(0, 0), 0)
				b.Commit()
			}
			b.Barrier(0)
			progs[c] = b.Build()
		}
		m, res := run(t, mk(), progs, memory, alloc, 6)
		if got := m.ArchMem().Read(shared.WordAddr(0, 0)); got != 240 {
			t.Fatalf("%s: shared = %d, want 240", m.VM.Name(), got)
		}
		for c := range privates {
			if got := m.ArchMem().Read(privates[c].WordAddr(0, 0)); got != 40 {
				t.Fatalf("%s: private[%d] = %d, want 40", m.VM.Name(), c, got)
			}
		}
		_ = res
	}
}

// TestLazyOverflowSurvives: a lazy transaction larger than the
// speculative L1 must still commit (VTM-style overflow), paying extra
// merge cost.
func TestLazyOverflowSurvives(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	cfg := htm.DefaultConfig(4)
	cfg.L1 = mem.CacheConfig{SizeBytes: 16 * 64, Ways: 2}
	cfg.MaxCycles = 200_000_000
	shared := workload.NewRegion(alloc, 1)
	big := workload.NewRegion(alloc, 48)
	progs := make([]workload.Program, 4)
	for c := range progs {
		b := workload.NewBuilder()
		for i := 0; i < 15; i++ {
			b.Begin(0)
			b.Load(0, shared.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Compute(20)
			b.Store(shared.WordAddr(0, 0), 0)
			for k := 0; k < 48; k++ {
				b.Load(1, big.WordAddr(k, c%8))
				b.AddImm(1, 1)
				b.Store(big.WordAddr(k, c%8), 1)
			}
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	m := htm.New(cfg, dyntm.New(), progs, memory, alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Counters.LazyTx > 0 && res.Counters.SpecLineEvicted == 0 {
		t.Log("note: no lazy overflow exercised (selector stayed eager)")
	}
	if got := m.ArchMem().Read(shared.WordAddr(0, 0)); got != 60 {
		t.Fatalf("shared = %d, want 60", got)
	}
	var sum uint64
	for k := 0; k < 48; k++ {
		for w := 0; w < 8; w++ {
			sum += m.ArchMem().Read(big.WordAddr(k, w))
		}
	}
	if sum != 4*15*48 {
		t.Fatalf("big-region sum = %d, want %d", sum, 4*15*48)
	}
}

func TestNames(t *testing.T) {
	if dyntm.New().Name() != "DynTM" || dyntm.NewWithSUV().Name() != "DynTM+SUV" {
		t.Fatal("wrong names")
	}
}
