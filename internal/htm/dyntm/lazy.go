package dyntm

import (
	"suvtm/internal/htm"
	"suvtm/internal/sim"
)

// lazyBuffered is original DynTM's lazy version manager: transactional
// stores are buffered invisibly (speculative L1 lines plus a hardware
// write buffer), loads snoop the buffer, commit merges the write-set into
// memory line by line (the Figure 9 "Committing" cost) and abort simply
// discards the buffer.
type lazyBuffered struct {
	st []lazyState
}

type lazyState struct {
	buf     map[sim.Addr]sim.Word
	lines   map[sim.Line]struct{}
	spilled map[sim.Line]struct{} // speculative lines evicted to the overflow structure
}

func newLazyBuffered() *lazyBuffered { return &lazyBuffered{} }

// Name implements htm.VersionManager.
func (v *lazyBuffered) Name() string { return "DynTM-lazy" }

// Init implements htm.VersionManager.
func (v *lazyBuffered) Init(m *htm.Machine) {
	v.st = make([]lazyState, len(m.Cores))
	for i := range v.st {
		v.st[i] = lazyState{
			buf:     make(map[sim.Addr]sim.Word),
			lines:   make(map[sim.Line]struct{}),
			spilled: make(map[sim.Line]struct{}),
		}
	}
}

// Mode is unused: the wrapping DynTM selector reports the mode.
func (v *lazyBuffered) Mode(c *htm.Core) htm.ExecMode {
	if !c.InTx() {
		return htm.ModeNone
	}
	return htm.ModeLazy
}

// Begin opens a lazy transaction (flat nesting: the buffer spans frames).
func (v *lazyBuffered) Begin(m *htm.Machine, c *htm.Core) sim.Cycles { return 1 }

// Translate is the identity: lazy writes hide in the buffer, not at
// alternate addresses.
func (v *lazyBuffered) Translate(m *htm.Machine, c *htm.Core, line sim.Line, write bool) (sim.Line, sim.Cycles) {
	return line, 0
}

// Load snoops the write buffer before memory.
func (v *lazyBuffered) Load(m *htm.Machine, c *htm.Core, addr, targetAddr sim.Addr) (sim.Word, sim.Cycles) {
	if val, ok := v.st[c.ID].buf[sim.WordAddr(addr)]; ok {
		return val, 0
	}
	return m.Memory.Read(addr), 0
}

// Store buffers the value invisibly and pins the line speculatively in
// the L1; memory is untouched until commit.
func (v *lazyBuffered) Store(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) (sim.Line, sim.Cycles) {
	line := sim.LineOf(addr)
	if !c.TxActive() {
		m.Memory.Write(addr, val)
		return line, 0
	}
	s := &v.st[c.ID]
	s.buf[sim.WordAddr(addr)] = val
	s.lines[line] = struct{}{}
	c.L1.MarkSpec(line, true)
	return line, 0
}

// CommitOuter merges the buffered write-set into memory, paying the
// per-line merge cost that shows up as "Committing" in Figure 9. Lines
// that overflowed the speculative L1 merge from the software overflow
// structure at second-level latency.
func (v *lazyBuffered) CommitOuter(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	//suv:orderinsensitive distinct word addresses; Memory.Write commutes across distinct words and the merge cost depends only on set sizes
	for addr, val := range s.buf {
		m.Memory.Write(addr, val)
	}
	lines := len(s.lines)
	c.Counters.LazyCommitMerges += uint64(lines)
	lat := m.Config().CommitLatency + m.Config().LazyMergePerLn*sim.Cycles(lines) +
		m.Config().L2Latency*sim.Cycles(len(s.spilled))
	c.L1.FlashClearSpec()
	v.reset(c.ID)
	return lat
}

// CommitNested is a merge no-op (flat buffer).
func (v *lazyBuffered) CommitNested(m *htm.Machine, c *htm.Core) sim.Cycles { return 1 }

// CommitOpen degrades to a closed nested commit under write buffering:
// a lazy transaction is invisible until its own commit, so an open
// child's effects cannot publish early without breaking the buffer's
// invisibility. The compensating action still registers (it only runs
// if the parent aborts, in which case the buffered writes vanished and
// the compensation is a no-op on memory the child never published).
func (v *lazyBuffered) CommitOpen(m *htm.Machine, c *htm.Core) sim.Cycles { return 1 }

// Abort discards the buffer: nothing ever reached memory.
func (v *lazyBuffered) Abort(m *htm.Machine, c *htm.Core) sim.Cycles {
	for _, line := range c.L1.FlashInvalidateSpec() {
		m.Dir.Drop(line, c.ID)
	}
	v.reset(c.ID)
	return m.Config().FastAbortFixed
}

// OnSpecEviction spills the evicted speculative line to the software
// overflow structure (VTM/XTM-style lazy virtualization): the
// transaction survives but its commit merge pays extra for every
// spilled line.
func (v *lazyBuffered) OnSpecEviction(m *htm.Machine, c *htm.Core, line sim.Line) {
	v.st[c.ID].spilled[line] = struct{}{}
}

func (v *lazyBuffered) reset(id int) {
	s := &v.st[id]
	clear(s.buf)
	clear(s.lines)
	clear(s.spilled)
}
