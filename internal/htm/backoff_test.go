package htm

import (
	"testing"

	"suvtm/internal/sim"
)

// TestBackoffWindow pins the randomized-backoff window math: the classic
// clamped exponential (shift capped at 8, window capped at BackoffMax)
// and the boosted escalation beyond the cap, including the degenerate
// configurations (backoff disabled, no cap, boost disabled).
func TestBackoffWindow(t *testing.T) {
	const base, max = 40, 8192
	cases := []struct {
		name         string
		base, max    sim.Cycles
		consecAborts int
		boostAt      int
		want         sim.Cycles
	}{
		{"first abort", base, max, 1, 0, 40},
		{"second abort doubles", base, max, 2, 0, 80},
		{"exponential growth", base, max, 6, 0, 40 << 5},
		{"cap reached", base, max, 9, 0, 8192},
		{"shift clamps at 8", base, max, 30, 0, 8192},
		{"shift clamp without cap", base, 0, 30, 0, 40 << 8},
		{"no cap grows freely", base, 0, 9, 0, 40 << 8},
		{"zero base disables backoff", 0, max, 5, 0, 0},
		{"zero aborts yields no window", base, max, 0, 0, 0},
		{"negative aborts yields no window", base, max, -1, 0, 0},

		// Boosted backoff: at boostAt consecutive aborts the window jumps
		// past the cap and doubles per further abort, saturating at 64x.
		{"below boost threshold is classic", base, max, 23, 24, 8192},
		{"boost entry doubles the cap", base, max, 24, 24, 8192 << 1},
		{"boost keeps doubling", base, max, 26, 24, 8192 << 3},
		{"boost saturates at 64x", base, max, 29, 24, 8192 << 6},
		{"boost stays saturated", base, max, 200, 24, 8192 << 6},
		{"boost disabled by zero threshold", base, max, 200, 0, 8192},
		{"boost needs a cap to scale", base, 0, 30, 24, 40 << 8},
		{"boosted zero base still disabled", 0, max, 30, 24, 0},
	}
	for _, tc := range cases {
		if got := backoffWindow(tc.base, tc.max, tc.consecAborts, tc.boostAt); got != tc.want {
			t.Errorf("%s: backoffWindow(%d, %d, %d, %d) = %d, want %d",
				tc.name, tc.base, tc.max, tc.consecAborts, tc.boostAt, got, tc.want)
		}
	}
}

// TestBackoffWindowMatchesLadderDisabled checks that an armed ladder
// (WithProgressLadder) leaves every window below its boost threshold
// identical to the disabled ladder — the fault-free schedule only
// diverges once a rung actually engages.
func TestBackoffWindowMatchesLadderDisabled(t *testing.T) {
	cfg := DefaultConfig(4)
	armed := cfg.WithProgressLadder()
	for consec := 0; consec < armed.BoostAborts; consec++ {
		plain := backoffWindow(cfg.BackoffBase, cfg.BackoffMax, consec, cfg.BoostAborts)
		boosted := backoffWindow(armed.BackoffBase, armed.BackoffMax, consec, armed.BoostAborts)
		if plain != boosted {
			t.Fatalf("consec=%d: armed ladder window %d differs from disabled %d",
				consec, boosted, plain)
		}
	}
}
