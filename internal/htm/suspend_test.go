package htm_test

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// TestSuspendedTxKeepsIsolation: while a transaction's thread is
// descheduled (Section IV-C), its signatures stay in force — a
// conflicting access by another core must stall for the whole suspension
// window, and the transaction must commit correctly afterwards.
func TestSuspendedTxKeepsIsolation(t *testing.T) {
	for name, mk := range map[string]func() htm.VersionManager{
		"LogTM-SE": func() htm.VersionManager { return logtmse.New() },
		"SUV-TM":   func() htm.VersionManager { return suvtm.New() },
	} {
		t.Run(name, func(t *testing.T) {
			r := newRig()
			shared := workload.NewRegion(r.alloc, 1)
			osWork := workload.NewRegion(r.alloc, 4)
			addr := shared.WordAddr(0, 0)

			// Core 0: begin a transaction, write the shared word, get
			// descheduled for a long stretch of unrelated OS work, resume
			// and commit.
			b0 := workload.NewBuilder()
			b0.Begin(0)
			b0.Load(0, addr)
			b0.AddImm(0, 100)
			b0.Store(addr, 0)
			b0.Suspend(80)
			for k := 0; k < 20; k++ { // the other thread's work
				b0.Load(1, osWork.WordAddr(k%4, k%8))
				b0.Compute(200)
			}
			b0.Resume(80)
			b0.Load(0, addr)
			b0.AddImm(0, 1)
			b0.Store(addr, 0)
			b0.Commit()
			b0.Barrier(0)

			// Core 1: one plain increment that conflicts with the
			// suspended transaction and must wait for its commit.
			b1 := workload.NewBuilder()
			b1.Compute(500) // let core 0 suspend first
			b1.Load(0, addr)
			b1.AddImm(0, 1)
			b1.Store(addr, 0)
			b1.Barrier(0)

			m, res := r.run(t, mk(), 2, []workload.Program{b0.Build(), b1.Build()})
			// Serializable outcomes: tx(+101) then +1, or +1 then tx(+101).
			if got := m.ArchMem().Read(addr); got != 102 {
				t.Fatalf("value = %d, want 102", got)
			}
			// Core 1 must have stalled behind the suspension window.
			if res.PerCore[1].Cycles[stats.Stalled] < 1000 {
				t.Fatalf("core 1 stalled only %d cycles — suspension did not hold isolation",
					res.PerCore[1].Cycles[stats.Stalled])
			}
			if res.Counters.TxCommitted != 1 {
				t.Fatalf("commits = %d", res.Counters.TxCommitted)
			}
		})
	}
}

// TestSuspendedWindowIsNonTransactional: work done during the suspension
// window is the other thread's and must be attributed to NoTrans, not to
// the transaction attempt.
func TestSuspendedWindowIsNonTransactional(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 1)
	b := workload.NewBuilder()
	b.Begin(0)
	b.StoreImm(region.WordAddr(0, 0), 1)
	b.Suspend(10)
	b.Compute(5000) // other thread
	b.Resume(10)
	b.Commit()
	b.Barrier(0)
	_, res := r.run(t, suvtm.New(), 1, []workload.Program{b.Build()})
	if res.PerCore[0].Cycles[stats.NoTrans] < 5000 {
		t.Fatalf("NoTrans = %d, want >= 5000 (suspension window misattributed)",
			res.PerCore[0].Cycles[stats.NoTrans])
	}
	if res.PerCore[0].Cycles[stats.Trans] > 2000 {
		t.Fatalf("Trans = %d — other thread's work charged to the transaction",
			res.PerCore[0].Cycles[stats.Trans])
	}
}

// TestSuspendOutsideTxPanics: the trace language rejects malformed
// suspension.
func TestSuspendOutsideTxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Suspend outside a transaction did not panic")
		}
	}()
	workload.NewBuilder().Suspend(10)
}
