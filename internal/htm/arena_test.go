package htm_test

import (
	"reflect"
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/mem"
	"suvtm/internal/sim"
	"suvtm/internal/workload"
)

const (
	arenaHeapBase = sim.Addr(0x10_0000)
	arenaHeapSize = uint64(1 << 30)
)

// arenaRun generates app at the given geometry and runs it on the
// supplied memory/allocator, threading pre through NewWith.
func arenaRun(t *testing.T, app string, vm htm.VersionManager, cores int, scale float64,
	memory *mem.Memory, alloc *mem.Allocator, pre htm.Prebuilt) (*htm.Machine, *htm.Result) {
	t.Helper()
	gen, err := workload.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	a := gen(workload.GenConfig{Cores: cores, Seed: 1, Scale: scale}, alloc, memory)
	cfg := htm.DefaultConfig(cores)
	m := htm.NewWith(cfg, vm, a.Programs, memory, alloc, pre)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	return m, res
}

// TestArenaReuseBitIdentical is the acceptance gate for machine-arena
// reuse: a run on recycled memory, directory and redirect state — left
// dirty by a different app, scheme and core count — must be
// bit-identical to a cold run, both in its Result (cycles, breakdowns,
// counters) and in the final simulated memory image.
func TestArenaReuseBitIdentical(t *testing.T) {
	const cores, scale = 4, 0.1

	// Cold reference run.
	coldMem := mem.NewMemory()
	coldAlloc := mem.NewAllocator(arenaHeapBase, arenaHeapSize)
	_, want := arenaRun(t, "intruder", suvtm.New(), cores, scale, coldMem, coldAlloc, htm.Prebuilt{})
	wantImage := coldMem.Snapshot()

	// Dirty the arena with a different app, scheme AND geometry (8
	// cores), then reset everything and replay the reference spec on the
	// reused state. The geometry change exercises the partial-reallocate
	// paths of Directory.Reset and Redirect.Reset.
	arenaMem := mem.NewMemory()
	arenaAlloc := mem.NewAllocator(arenaHeapBase, arenaHeapSize)
	first, _ := arenaRun(t, "vacation", logtmse.New(), 8, scale, arenaMem, arenaAlloc, htm.Prebuilt{})
	pre := htm.Prebuilt{Dir: first.Dir, Redirect: first.Redirect}

	arenaMem.Reset()
	arenaAlloc.Reset(arenaHeapBase, arenaHeapSize)
	reused, got := arenaRun(t, "intruder", suvtm.New(), cores, scale, arenaMem, arenaAlloc, pre)

	if reused.Dir != first.Dir || reused.Redirect != first.Redirect {
		t.Fatal("NewWith did not reuse the prebuilt directory/redirect state")
	}
	if got.Cycles != want.Cycles {
		t.Errorf("cycles: reused %d, cold %d", got.Cycles, want.Cycles)
	}
	if got.Breakdown != want.Breakdown {
		t.Errorf("breakdown diverged:\nreused %+v\ncold   %+v", got.Breakdown, want.Breakdown)
	}
	if got.Counters != want.Counters {
		t.Errorf("counters diverged:\nreused %+v\ncold   %+v", got.Counters, want.Counters)
	}
	if !reflect.DeepEqual(got.PerCore, want.PerCore) {
		t.Error("per-core breakdowns diverged")
	}
	gotImage := arenaMem.Snapshot()
	if len(gotImage) != len(wantImage) {
		t.Fatalf("memory image size: reused %d words, cold %d words", len(gotImage), len(wantImage))
	}
	for addr, w := range wantImage {
		if gotImage[addr] != w {
			t.Fatalf("memory image diverged at %#x: reused %#x, cold %#x", addr, gotImage[addr], w)
		}
	}
}

// TestArenaReuseAcrossSchemes cycles one arena through every scheme on
// the same app and checks each run matches its cold twin — the pattern
// a figure sweep produces.
func TestArenaReuseAcrossSchemes(t *testing.T) {
	const cores, scale = 4, 0.05
	vms := []struct {
		name string
		mk   func() htm.VersionManager
	}{
		{"SUV-TM", func() htm.VersionManager { return suvtm.New() }},
		{"LogTM-SE", func() htm.VersionManager { return logtmse.New() }},
		{"SUV-TM-again", func() htm.VersionManager { return suvtm.New() }},
	}
	arenaMem := mem.NewMemory()
	arenaAlloc := mem.NewAllocator(arenaHeapBase, arenaHeapSize)
	var pre htm.Prebuilt
	for _, v := range vms {
		coldMem := mem.NewMemory()
		coldAlloc := mem.NewAllocator(arenaHeapBase, arenaHeapSize)
		_, want := arenaRun(t, "kmeans", v.mk(), cores, scale, coldMem, coldAlloc, htm.Prebuilt{})

		if pre.Dir != nil {
			arenaMem.Reset()
			arenaAlloc.Reset(arenaHeapBase, arenaHeapSize)
		}
		m, got := arenaRun(t, "kmeans", v.mk(), cores, scale, arenaMem, arenaAlloc, pre)
		pre = htm.Prebuilt{Dir: m.Dir, Redirect: m.Redirect}

		if got.Cycles != want.Cycles || got.Counters != want.Counters {
			t.Errorf("%s: reused run diverged (cycles %d vs %d)", v.name, got.Cycles, want.Cycles)
		}
		if !reflect.DeepEqual(coldMem.Snapshot(), arenaMem.Snapshot()) {
			t.Errorf("%s: memory image diverged", v.name)
		}
	}
}
