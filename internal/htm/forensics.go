package htm

import (
	"suvtm/internal/forensics"
	"suvtm/internal/sim"
)

// This file is the machine's seam into the conflict-forensics layer.
// The collector is attached before Run and fed from the conflict paths
// (handleNACK, lazyArbitrate, injectedNACK, startAbort); detached it is
// a nil pointer and every hook is a single nil check. The hooks are
// strictly observational — they read simulation state but never change
// it — so a run is bit-identical with forensics on or off.

// EnableForensics attaches a conflict-provenance collector (nil leaves
// forensics disabled). Attach before Run.
func (m *Machine) EnableForensics(fx *forensics.Collector) { m.fx = fx }

// Forensics returns the attached collector (possibly nil).
func (m *Machine) Forensics() *forensics.Collector { return m.fx }

// fxWants reports whether any observational consumer (forensics or the
// event tracer) needs conflict provenance this run. Witness extraction
// for signature-to-signature kills is skipped entirely when nobody will
// read it.
//
//suv:hotpath
func (m *Machine) fxWants() bool { return m.fx != nil || m.tracer != nil }

// fxNACK feeds one refused request to the collector.
//
//suv:hotpath
func (m *Machine) fxNACK(c, holder *Core, line sim.Line, write bool, stall sim.Cycles, cause forensics.Cause, precise bool) {
	if m.fx == nil {
		return
	}
	kind := forensics.Read
	if write {
		kind = forensics.Write
	}
	ev := forensics.NACKEvent{
		Cycle:     m.now,
		Requester: c.ID,
		Holder:    holder.ID,
		Line:      line,
		Kind:      kind,
		Cause:     cause,
		ReqSite:   c.txSite(),
		HoldSite:  holder.txSite(),
		SigHit:    true,
		Precise:   precise,
		Stall:     stall,
		Sharers:   m.Dir.HolderCount(line),
	}
	if !precise {
		ev.AliasRate = maxf(holder.WriteSig.AliasRate(), holder.ReadSig.AliasRate())
	}
	m.fx.NACK(ev)
}

// fxAbort feeds one aborting attempt to the collector, consuming the
// doom provenance recorded at the kill site.
//
//suv:hotpath
func (m *Machine) fxAbort(c *Core) {
	if m.fx == nil {
		return
	}
	m.fx.Abort(forensics.AbortEvent{
		Cycle:        m.now,
		Victim:       c.ID,
		Killer:       c.doom.killer,
		Line:         c.doom.line,
		Cause:        c.doom.cause,
		VictimSite:   c.txSite(),
		KillerSite:   c.doom.killerSite,
		SigHit:       c.doom.sigHit,
		Precise:      c.doom.precise,
		Wasted:       c.attemptCyc,
		AttemptStart: c.attemptStart,
	})
}

// commitWitness extracts a deterministic (line, confirmed) witness for
// a write-signature-vs-victim intersection: the smallest line the
// committer's precise write set shares with the victim's precise read
// or write set, or (NoLine, false) when the sets are disjoint — a pure
// signature false positive.
func commitWitness(committer, victim *Core) (sim.Line, bool) {
	lr, okr := committer.writeSet.MinCommon(victim.readSet)
	lw, okw := committer.writeSet.MinCommon(victim.writeSet)
	switch {
	case okr && okw:
		if lw < lr {
			return lw, true
		}
		return lr, true
	case okr:
		return lr, true
	case okw:
		return lw, true
	}
	return forensics.NoLine, false
}

// maxf returns the larger float (deterministic: no NaNs in play).
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
