package htm_test

import (
	"reflect"
	"runtime"
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/fastm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/mem"
	"suvtm/internal/parrun"
	"suvtm/internal/workload"
)

// parRun generates app and runs it with the given shard count,
// returning the machine, result, and final memory image.
func parRun(t *testing.T, app string, vm htm.VersionManager, cores int, scale float64, shards int) (*htm.Machine, *htm.Result, *mem.Memory) {
	t.Helper()
	return parRunBanked(t, app, vm, cores, scale, shards, 0)
}

// parRunBanked is parRun with an explicit directory/L2 bank count.
func parRunBanked(t *testing.T, app string, vm htm.VersionManager, cores int, scale float64, shards, banks int) (*htm.Machine, *htm.Result, *mem.Memory) {
	t.Helper()
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(arenaHeapBase, arenaHeapSize)
	gen, err := workload.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	a := gen(workload.GenConfig{Cores: cores, Seed: 1, Scale: scale}, alloc, memory)
	cfg := htm.DefaultConfig(cores)
	cfg.Shards = shards
	cfg.Banks = banks
	m := htm.New(cfg, vm, a.Programs, memory, alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s shards=%d: %v", app, shards, err)
	}
	if err := a.Check(m.ArchMem()); err != nil {
		t.Fatalf("%s shards=%d: %v", app, shards, err)
	}
	return m, res, memory
}

// TestParallelBitIdentical is the acceptance gate for the parallel
// window engine: for every scheme with a LocalPeeker and a spread of
// workloads, a run at each shard count must be bit-identical to the
// sequential engine — same Result (cycles, aggregate and per-core
// breakdowns, counters) and same final memory image, word for word.
func TestParallelBitIdentical(t *testing.T) {
	shardCounts := []int{1, 2, 4, runtime.NumCPU()}
	// Force multiple workers even on small hosts so -race runs exercise
	// real cross-goroutine windows.
	prev := parrun.SetForcedWorkersForTest(4)
	defer parrun.SetForcedWorkersForTest(prev)

	cases := []struct {
		app    string
		scheme string
		mk     func() htm.VersionManager
		cores  int
		scale  float64
	}{
		{"sessionstore", "SUV-TM", func() htm.VersionManager { return suvtm.New() }, 4, 0.2},
		{"sessionstore", "LogTM-SE", func() htm.VersionManager { return logtmse.New() }, 4, 0.2},
		{"sessionstore", "FasTM", func() htm.VersionManager { return fastm.New() }, 4, 0.2},
		{"vacation", "SUV-TM", func() htm.VersionManager { return suvtm.New() }, 4, 0.1},
		{"intruder", "LogTM-SE", func() htm.VersionManager { return logtmse.New() }, 4, 0.1},
		{"kmeans", "FasTM", func() htm.VersionManager { return fastm.New() }, 4, 0.1},
		{"bank", "SUV-TM", func() htm.VersionManager { return suvtm.New() }, 8, 0.2},
		{"genome", "SUV-TM", func() htm.VersionManager { return suvtm.New() }, 8, 0.05},
	}
	for _, tc := range cases {
		t.Run(tc.app+"/"+tc.scheme, func(t *testing.T) {
			_, want, seqMem := parRun(t, tc.app, tc.mk(), tc.cores, tc.scale, 0)
			wantImage := seqMem.Snapshot()
			for _, k := range shardCounts {
				m, got, parMem := parRun(t, tc.app, tc.mk(), tc.cores, tc.scale, k)
				if got.Cycles != want.Cycles {
					t.Errorf("shards=%d: cycles %d, sequential %d", k, got.Cycles, want.Cycles)
				}
				if got.Breakdown != want.Breakdown {
					t.Errorf("shards=%d: breakdown diverged:\npar %+v\nseq %+v", k, got.Breakdown, want.Breakdown)
				}
				if got.Counters != want.Counters {
					t.Errorf("shards=%d: counters diverged:\npar %+v\nseq %+v", k, got.Counters, want.Counters)
				}
				if !reflect.DeepEqual(got.PerCore, want.PerCore) {
					t.Errorf("shards=%d: per-core breakdowns diverged", k)
				}
				gotImage := parMem.Snapshot()
				if len(gotImage) != len(wantImage) {
					t.Fatalf("shards=%d: memory image %d words, sequential %d", k, len(gotImage), len(wantImage))
				}
				for addr, w := range wantImage {
					if gotImage[addr] != w {
						t.Fatalf("shards=%d: memory diverged at %#x: par %#x, seq %#x", k, addr, gotImage[addr], w)
					}
				}
				ps := m.ParallelStats()
				if ps.Shards == 0 {
					t.Fatalf("shards=%d: parallel engine did not engage", k)
				}
			}
		})
	}
}

// TestParallelBitIdenticalBanks is the bank-count half of the identity
// gate: Banks, like Shards, is a host-structure knob, so for a fixed
// workload every (shards, banks) combination must reproduce the
// sequential default-bank run bit for bit — fewer banks may only cost
// window certifications (more fallbacks), never change a simulated
// cycle. intruderscan is the adversarial case: its layout deliberately
// stresses bank placement, so any banking leak shows up here first.
func TestParallelBitIdenticalBanks(t *testing.T) {
	prev := parrun.SetForcedWorkersForTest(4)
	defer parrun.SetForcedWorkersForTest(prev)

	cases := []struct {
		app   string
		cores int
		scale float64
	}{
		{"sessionstore", 4, 0.2},
		{"intruderscan", 4, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.app, func(t *testing.T) {
			_, want, seqMem := parRun(t, tc.app, suvtm.New(), tc.cores, tc.scale, 0)
			wantImage := seqMem.Snapshot()
			for _, banks := range []int{1, 2, 4, 8, 16} {
				for _, shards := range []int{0, 4} {
					m, got, parMem := parRunBanked(t, tc.app, suvtm.New(), tc.cores, tc.scale, shards, banks)
					if got.Cycles != want.Cycles {
						t.Errorf("banks=%d shards=%d: cycles %d, reference %d", banks, shards, got.Cycles, want.Cycles)
					}
					if got.Counters != want.Counters {
						t.Errorf("banks=%d shards=%d: counters diverged:\ngot %+v\nref %+v", banks, shards, got.Counters, want.Counters)
					}
					if !reflect.DeepEqual(got.PerCore, want.PerCore) {
						t.Errorf("banks=%d shards=%d: per-core breakdowns diverged", banks, shards)
					}
					gotImage := parMem.Snapshot()
					for addr, w := range wantImage {
						if gotImage[addr] != w {
							t.Fatalf("banks=%d shards=%d: memory diverged at %#x", banks, shards, addr)
						}
					}
					if ps := m.ParallelStats(); shards != 0 && ps.Shards == 0 {
						t.Fatalf("banks=%d shards=%d: parallel engine did not engage", banks, shards)
					}
				}
			}
		})
	}
}

// TestParallelVerifyChains runs one steady-state workload per scheme
// with the parVerifyChains debug switch armed: every scanned op's
// certified latency is cross-checked against what execution actually
// charges, and hit-path scheme work is routed through the full VM path
// with identity-translation panics armed. It is the runtime counterpart
// of the static peekpure certification — peekpure proves the Peek*
// methods mutate nothing, this test proves what they answer matches
// what execution then observes — and keeps the verify mode itself from
// rotting (it used to be a hand-flipped constant, compiled out in CI).
func TestParallelVerifyChains(t *testing.T) {
	prevVerify := htm.SetParVerifyChainsForTest(true)
	defer htm.SetParVerifyChainsForTest(prevVerify)
	prev := parrun.SetForcedWorkersForTest(4)
	defer parrun.SetForcedWorkersForTest(prev)

	cases := []struct {
		scheme string
		mk     func() htm.VersionManager
	}{
		{"SUV-TM", func() htm.VersionManager { return suvtm.New() }},
		{"LogTM-SE", func() htm.VersionManager { return logtmse.New() }},
		{"FasTM", func() htm.VersionManager { return fastm.New() }},
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			// A verify-mode disagreement panics inside Run; reaching the
			// identity checks below means every chain survived them.
			_, want, seqMem := parRun(t, "sessionstore", tc.mk(), 4, 0.2, 0)
			m, got, parMem := parRun(t, "sessionstore", tc.mk(), 4, 0.2, 4)
			if got.Cycles != want.Cycles {
				t.Errorf("verify mode: cycles %d, sequential %d", got.Cycles, want.Cycles)
			}
			if got.Counters != want.Counters {
				t.Errorf("verify mode: counters diverged:\npar %+v\nseq %+v", got.Counters, want.Counters)
			}
			wantImage := seqMem.Snapshot()
			gotImage := parMem.Snapshot()
			for addr, w := range wantImage {
				if gotImage[addr] != w {
					t.Fatalf("verify mode: memory diverged at %#x", addr)
				}
			}
			ps := m.ParallelStats()
			if ps.Windows == 0 {
				t.Fatal("verify mode: no windows executed — the switch was never exercised")
			}
		})
	}
}

// TestParallelEngagement pins down that the engine actually executes
// windows (not just falls through to sequential pops) on the workload
// built for it, and that the per-run counters are coherent.
func TestParallelEngagement(t *testing.T) {
	m, _, _ := parRun(t, "sessionstore", suvtm.New(), 4, 0.5, 4)
	ps := m.ParallelStats()
	if ps.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", ps.Shards)
	}
	if ps.Workers < 1 {
		t.Fatalf("Workers = %d, want >= 1", ps.Workers)
	}
	if ps.Windows == 0 {
		t.Fatal("no windows executed on the window-friendly workload")
	}
	if ps.ChainOps == 0 {
		t.Fatal("windows executed but no chain ops recorded")
	}
	if ps.Attempts < ps.Windows {
		t.Fatalf("Attempts (%d) < Windows (%d)", ps.Attempts, ps.Windows)
	}
	t.Logf("shards=%d workers=%d windows=%d chainOps=%d seqSteps=%d attempts=%d",
		ps.Shards, ps.Workers, ps.Windows, ps.ChainOps, ps.SeqSteps, ps.Attempts)
}

// TestParallelIneligibleFallsBack checks that runs the engine cannot
// parallelize (a scheme without a LocalPeeker, or attached observers)
// silently use the sequential loop.
func TestParallelIneligibleFallsBack(t *testing.T) {
	// DynTM has no LocalPeeker: Shards must be ignored.
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(arenaHeapBase, arenaHeapSize)
	gen, err := workload.Get("counter")
	if err != nil {
		t.Fatal(err)
	}
	a := gen(workload.GenConfig{Cores: 2, Seed: 1, Scale: 0.05}, alloc, memory)
	cfg := htm.DefaultConfig(2)
	cfg.Shards = 4
	cfg.CheckInterval = 1000 // observers also force the sequential loop
	m := htm.New(cfg, suvtm.New(), a.Programs, memory, alloc)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if ps := m.ParallelStats(); ps.Shards != 0 {
		t.Fatalf("engine engaged despite CheckInterval: %+v", ps)
	}
}
