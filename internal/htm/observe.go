package htm

import (
	"fmt"
	"sort"

	"suvtm/internal/faults"

	"suvtm/internal/metrics"
	"suvtm/internal/stats"
)

// observer is the machine's hook into the metrics layer: histograms fed
// at transaction boundaries plus the end-of-run breakout tables. It only
// exists when metrics collection is enabled, so the engine's hot paths
// pay a single nil check when it is not.
type observer struct {
	txDuration *metrics.Histogram // begin -> commit, per committed attempt
	txRetries  *metrics.Histogram // aborts consumed before each commit
	txReadSet  *metrics.Histogram // distinct lines read, at commit
	txWriteSet *metrics.Histogram // distinct lines written, at commit
	txWasted   *metrics.Histogram // begin -> abort, per aborted attempt

	col   *metrics.Collector
	sites map[uint32]*siteHists
}

// siteHists are the per-transaction-site histograms (one group per
// static Begin site in the workload).
type siteHists struct {
	duration *metrics.Histogram
	writeSet *metrics.Histogram
}

// EnableMetrics attaches a collector and registers every probe the
// simulator exports: transaction and conflict rates from the HTM layer,
// cache activity from the memory system, occupancy gauges from the
// redirect machinery, link traffic from the mesh, and the directory's
// message mix. Call before Run; a nil collector leaves metrics disabled.
func (m *Machine) EnableMetrics(col *metrics.Collector) {
	if col == nil {
		return
	}
	m.metrics = col
	m.obs = &observer{
		txDuration: col.NewHistogram("tx.duration", "cycles"),
		txRetries:  col.NewHistogram("tx.retries", "aborts"),
		txReadSet:  col.NewHistogram("tx.readset", "lines"),
		txWriteSet: col.NewHistogram("tx.writeset", "lines"),
		txWasted:   col.NewHistogram("tx.wasted", "cycles"),
		col:        col,
		sites:      make(map[uint32]*siteHists),
	}
	m.Mesh.EnableStats()

	sum := func(f func(*stats.Counters) uint64) func() float64 {
		return func() float64 {
			var t uint64
			for _, c := range m.Cores {
				t += f(&c.Counters)
			}
			return float64(t)
		}
	}
	// Transaction and conflict rates (per-interval deltas in the series).
	col.Watch("tx.commits", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.TxCommitted }))
	col.Watch("tx.aborts", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.TxAborted }))
	col.Watch("tx.nacks", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.NACKsReceived }))
	// Memory system: per-core L1s via the machine counters, the shared L2
	// via its own cache stats.
	col.Watch("mem.l1.hits", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.L1Hits }))
	col.Watch("mem.l1.misses", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.L1Misses }))
	col.Watch("mem.l2.lookups", metrics.Cumulative, func() float64 { s := m.L2.Stats(); return float64(s.Lookups.Value()) })
	col.Watch("mem.l2.hits", metrics.Cumulative, func() float64 { s := m.L2.Stats(); return float64(s.Hits.Value()) })
	col.Watch("mem.l2.evictions", metrics.Cumulative, func() float64 { s := m.L2.Stats(); return float64(s.Evictions.Value()) })
	// Interconnect and directory traffic.
	col.Watch("mesh.msgs", metrics.Cumulative, func() float64 { return float64(m.Mesh.Messages()) })
	col.Watch("dir.gets", metrics.Cumulative, func() float64 { s := m.Dir.Stats(); return float64(s.GETS.Value()) })
	col.Watch("dir.getm", metrics.Cumulative, func() float64 { s := m.Dir.Stats(); return float64(s.GETM.Value()) })
	col.Watch("dir.invalidations", metrics.Cumulative, func() float64 { s := m.Dir.Stats(); return float64(s.Invalidations.Value()) })
	// Robustness: injected-fault activity, protocol recovery and
	// forward-progress escalation (flat zero series on fault-free runs).
	col.Watch("faults.injected-nacks", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.InjectedNACKs }))
	col.Watch("mesh.retries", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.MeshRetries }))
	col.Watch("progress.escalations", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.StarveEscalations }))
	col.Watch("progress.token-grants", metrics.Cumulative, sum(func(c *stats.Counters) uint64 { return c.TokenGrants }))
	// Redirect machinery occupancy (instantaneous levels).
	col.Watch("redirect.entries", metrics.Level, func() float64 { return float64(m.Redirect.EntryCount()) })
	col.Watch("redirect.transient", metrics.Level, func() float64 {
		t := 0
		for i := range m.Cores {
			t += m.Redirect.TransientCount(i)
		}
		return float64(t)
	})
	col.Watch("redirect.swapped", metrics.Level, func() float64 { return float64(m.Redirect.SwappedOut()) })
	col.Watch("redirect.pool.pages", metrics.Level, func() float64 { return float64(m.Redirect.Pool().Pages()) })
}

// Metrics returns the attached collector (possibly nil).
func (m *Machine) Metrics() *metrics.Collector { return m.metrics }

// site returns (lazily creating) the histogram group for a Begin site.
func (o *observer) site(site uint32) *siteHists {
	sh, ok := o.sites[site]
	if !ok {
		sh = &siteHists{
			duration: o.col.NewHistogram(fmt.Sprintf("tx.duration.site%d", site), "cycles"),
			writeSet: o.col.NewHistogram(fmt.Sprintf("tx.writeset.site%d", site), "lines"),
		}
		o.sites[site] = sh
	}
	return sh
}

// onCommit records a committing attempt (called from sealCommit, before
// the transactional state is released).
func (o *observer) onCommit(m *Machine, c *Core) {
	dur := m.now - c.attemptStart
	o.txDuration.Observe(dur)
	o.txRetries.Observe(uint64(c.consecAborts))
	o.txReadSet.Observe(uint64(c.readSet.Len()))
	o.txWriteSet.Observe(uint64(c.writeSet.Len()))
	sh := o.site(c.Frames[0].Site)
	sh.duration.Observe(dur)
	sh.writeSet.Observe(uint64(c.writeSet.Len()))
}

// onAbort records an aborting attempt's wasted window.
func (o *observer) onAbort(m *Machine, c *Core) {
	o.txWasted.Observe(m.now - c.attemptStart)
}

// finish flushes the trailing sample interval and builds the snapshot
// breakout tables (directory message mix, mesh link utilisation).
func (o *observer) finish(m *Machine, end uint64) {
	o.col.Finish(end)

	ds := m.Dir.Stats() // banks merged in bank-ID order
	o.col.AddBreakout("dir.mix", []metrics.LabeledValue{
		{Label: "GETS", Value: float64(ds.GETS.Value())},
		{Label: "GETM", Value: float64(ds.GETM.Value())},
		{Label: "downgrades", Value: float64(ds.Downgrades.Value())},
		{Label: "invalidations", Value: float64(ds.Invalidations.Value())},
		{Label: "drops", Value: float64(ds.Drops.Value())},
	})

	loads := m.Mesh.LinkLoads()
	if len(loads) > 16 {
		loads = loads[:16] // the 16 hottest links tell the hotspot story
	}
	links := make([]metrics.LabeledValue, 0, len(loads))
	for _, l := range loads {
		fx, fy := m.Mesh.Coord(l.From)
		tx, ty := m.Mesh.Coord(l.To)
		links = append(links, metrics.LabeledValue{
			Label: fmt.Sprintf("(%d,%d)->(%d,%d)", fx, fy, tx, ty),
			Value: float64(l.Messages),
		})
	}
	o.col.AddBreakout("mesh.links", links)

	// Fault-window activity by kind, when a chaos plan drove the run.
	if m.faults != nil {
		fs := m.faults.Stats()
		mixf := make([]metrics.LabeledValue, 0, len(fs.PerKind))
		for k, n := range fs.PerKind {
			if n > 0 {
				mixf = append(mixf, metrics.LabeledValue{Label: faults.Kind(k).String(), Value: float64(n)})
			}
		}
		o.col.AddBreakout("faults.windows", mixf)
	}

	// Per-site commit mix, so the snapshot names the hot sites even
	// without digging into the histograms.
	sites := make([]uint32, 0, len(o.sites))
	//suv:orderinsensitive keys are collected then sorted before any use
	for s := range o.sites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	mix := make([]metrics.LabeledValue, 0, len(sites))
	for _, s := range sites {
		mix = append(mix, metrics.LabeledValue{
			Label: fmt.Sprintf("site %d", s),
			Value: float64(o.sites[s].duration.Count()),
		})
	}
	o.col.AddBreakout("tx.commits.by-site", mix)
}
