package htm_test

import (
	"errors"
	"testing"

	"suvtm/internal/faults"
	"suvtm/internal/htm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/sim"
	"suvtm/internal/workload"
)

// contendedProgs builds cores programs that all increment the same
// shared word in a transaction iters times — maximal write contention.
func contendedProgs(region workload.Region, cores, iters int) []workload.Program {
	progs := make([]workload.Program, cores)
	addr := region.WordAddr(0, 0)
	for c := range progs {
		b := workload.NewBuilder()
		for i := 0; i < iters; i++ {
			b.Begin(0)
			b.Load(0, addr)
			b.Compute(30) // widen the window so conflicts actually overlap
			b.AddImm(0, 1)
			b.Store(addr, 0)
			b.Commit()
		}
		progs[c] = b.Build()
	}
	return progs
}

// TestSerializationToken arms the escalation ladder with hair-trigger
// thresholds under maximal contention and checks the full token
// lifecycle: escalations fire, the token is granted and released
// (otherwise later grants could not happen and the run could not end),
// every transaction still commits, and the shared counter proves
// serializability.
func TestSerializationToken(t *testing.T) {
	const cores, iters = 8, 30
	r := newRig()
	region := workload.NewRegion(r.alloc, 8)

	cfg := htm.DefaultConfig(cores).WithProgressLadder()
	cfg.BoostAborts = 4
	cfg.HopelessAborts = 3
	cfg.MaxCycles = 50_000_000
	m := htm.New(cfg, logtmse.New(), contendedProgs(region, cores, iters), r.memory, r.alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Counters.TxCommitted != cores*iters {
		t.Errorf("committed %d transactions, want %d", res.Counters.TxCommitted, cores*iters)
	}
	if res.Counters.StarveEscalations == 0 {
		t.Error("no starvation escalation ever fired under hair-trigger thresholds")
	}
	if res.Counters.TokenGrants == 0 {
		t.Error("the serialization token was never granted")
	}
	got := m.ArchMem().Read(region.WordAddr(0, 0))
	if got != sim.Word(cores*iters) {
		t.Errorf("shared counter = %d, want %d (lost updates)", got, cores*iters)
	}
}

// TestInjectedNACKStorm drives a machine through a global NACK storm
// window and checks that accesses were refused, the run completed, and
// no update was lost.
func TestInjectedNACKStorm(t *testing.T) {
	const cores, iters = 4, 20
	r := newRig()
	region := workload.NewRegion(r.alloc, 8)

	cfg := htm.DefaultConfig(cores).WithProgressLadder()
	cfg.MaxCycles = 50_000_000
	m := htm.New(cfg, suvtm.New(), contendedProgs(region, cores, iters), r.memory, r.alloc)
	plan := &faults.Plan{Name: "test-storm", Events: []faults.Event{
		{Kind: faults.NACKStorm, At: 50, Dur: 3_000, Core: -1},
	}}
	if err := plan.Normalize(); err != nil {
		t.Fatal(err)
	}
	m.SetFaults(faults.NewInjector(plan))
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Counters.InjectedNACKs == 0 {
		t.Error("a global 3000-cycle NACK storm injected no NACKs")
	}
	if res.Counters.TxCommitted != cores*iters {
		t.Errorf("committed %d transactions, want %d", res.Counters.TxCommitted, cores*iters)
	}
	if got := m.ArchMem().Read(region.WordAddr(0, 0)); got != sim.Word(cores*iters) {
		t.Errorf("shared counter = %d, want %d", got, cores*iters)
	}
	if st := m.FaultStats(); st.Opened == 0 || st.Closed == 0 {
		t.Errorf("injector stats did not record the window: %+v", st)
	}
}

// TestWatchdogTypedError checks satellite requirement: a watchdog trip
// surfaces as a typed *WatchdogError carrying per-core snapshots,
// classifiable via errors.Is and extractable via errors.As.
func TestWatchdogTypedError(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 8)
	cfg := htm.DefaultConfig(2)
	cfg.MaxCycles = 50 // absurdly tight: trips immediately
	m := htm.New(cfg, suvtm.New(), contendedProgs(region, 2, 50), r.memory, r.alloc)
	_, err := m.Run()
	if !errors.Is(err, htm.ErrWatchdog) {
		t.Fatalf("errors.Is(err, ErrWatchdog) = false for %v", err)
	}
	var we *htm.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("errors.As failed to extract *WatchdogError from %v", err)
	}
	if we.MaxCycles != 50 || len(we.Cores) != 2 {
		t.Errorf("WatchdogError = {MaxCycles: %d, %d cores}, want {50, 2 cores}", we.MaxCycles, len(we.Cores))
	}
	if we.PostMortem() == "" {
		t.Error("empty post-mortem")
	}
}

// TestDeadlockTypedError checks that a drained event queue with
// unfinished cores (mismatched barriers) surfaces as *DeadlockError.
func TestDeadlockTypedError(t *testing.T) {
	r := newRig()
	b0 := workload.NewBuilder()
	b0.Compute(5)
	b0.Barrier(0) // never released: core 1 does not participate
	b1 := workload.NewBuilder()
	b1.Compute(5)
	m := htm.New(htm.DefaultConfig(2), suvtm.New(),
		[]workload.Program{b0.Build(), b1.Build()}, r.memory, r.alloc)
	_, err := m.Run()
	if !errors.Is(err, htm.ErrDeadlock) {
		t.Fatalf("errors.Is(err, ErrDeadlock) = false for %v", err)
	}
	var de *htm.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("errors.As failed to extract *DeadlockError from %v", err)
	}
	if de.Finished != 1 || de.Total != 2 {
		t.Errorf("DeadlockError = %d/%d finished, want 1/2", de.Finished, de.Total)
	}
}

// TestInvariantCheckerClean runs the periodic cross-structure audit on a
// healthy contended run: it must never fire.
func TestInvariantCheckerClean(t *testing.T) {
	r := newRig()
	region := workload.NewRegion(r.alloc, 8)
	cfg := htm.DefaultConfig(4)
	cfg.CheckInterval = 500
	cfg.MaxCycles = 50_000_000
	m := htm.New(cfg, suvtm.New(), contendedProgs(region, 4, 15), r.memory, r.alloc)
	if _, err := m.Run(); err != nil {
		t.Fatalf("invariant checker fired on a healthy run: %v", err)
	}
}
