package htm

// SetParVerifyChainsForTest arms or disarms the parallel engine's
// chain-verification mode and returns the previous value, so external
// tests (package htm_test cannot live inside htm: the scheme packages
// it needs import htm) can exercise the verify path the way a developer
// flipping parVerifyChains by hand would. Callers must toggle it only
// while no Machine is running.
func SetParVerifyChainsForTest(on bool) bool {
	prev := parVerifyChains
	parVerifyChains = on
	return prev
}
