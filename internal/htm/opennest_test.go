package htm_test

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// TestOpenCommitReleasesIsolation: after an open-nested commit, other
// cores can access the child's write-set while the parent is still
// running — unlike a closed-nested commit, which holds isolation until
// the outer commit.
func TestOpenCommitReleasesIsolation(t *testing.T) {
	run := func(open bool) (stalled uint64, xVal uint64) {
		r := newRig()
		x := workload.NewRegion(r.alloc, 1)
		other := workload.NewRegion(r.alloc, 1)

		// Core 0: outer transaction with a nested child writing X, then a
		// long tail of unrelated work before the outer commit.
		b0 := workload.NewBuilder()
		b0.Begin(0)
		b0.Begin(1)
		b0.Load(0, x.WordAddr(0, 0))
		b0.AddImm(0, 1)
		b0.Store(x.WordAddr(0, 0), 0)
		if open {
			b0.CommitOpen(nil)
		} else {
			b0.Commit()
		}
		b0.Load(1, other.WordAddr(0, 0))
		b0.Compute(4000) // the parent's long tail
		b0.Commit()
		b0.Barrier(0)

		// Core 1: one increment of X that collides with the child.
		b1 := workload.NewBuilder()
		b1.Compute(300)
		b1.Begin(0)
		b1.Load(0, x.WordAddr(0, 0))
		b1.AddImm(0, 1)
		b1.Store(x.WordAddr(0, 0), 0)
		b1.Commit()
		b1.Barrier(0)

		m, res := r.run(t, newSUV(), 2, []workload.Program{b0.Build(), b1.Build()})
		return res.PerCore[1].Cycles[stats.Stalled] + res.PerCore[1].Cycles[stats.Backoff],
			m.ArchMem().Read(x.WordAddr(0, 0))
	}

	closedWait, closedVal := run(false)
	openWait, openVal := run(true)
	if closedVal != 2 || openVal != 2 {
		t.Fatalf("values wrong: closed=%d open=%d, want 2", closedVal, openVal)
	}
	if openWait*4 >= closedWait {
		t.Fatalf("open commit did not release isolation early: open wait %d vs closed wait %d",
			openWait, closedWait)
	}
}

// TestCompensationRunsOnAbort: an open-committed child's effects survive
// the parent's abort only through the compensating action — the final
// value must equal the number of committed outer transactions, with
// every aborted attempt's published increment undone.
func TestCompensationRunsOnAbort(t *testing.T) {
	for name, mk := range allVMs() {
		t.Run(name, func(t *testing.T) {
			if name == "DynTM" || name == "DynTM+SUV" {
				// Under DynTM's lazy mode an open child cannot publish
				// early (buffered invisibility); the eager-only semantics
				// are covered by the other three schemes.
				t.Skip("open-nesting publication semantics are eager-only")
			}
			r := newRig()
			x := workload.NewRegion(r.alloc, 1)
			hot := workload.NewRegion(r.alloc, 1)
			const iters = 25

			// Core 0: each outer transaction open-commits an increment of
			// X (compensation: decrement), then conflicts on the hot word.
			b0 := workload.NewBuilder()
			for i := 0; i < iters; i++ {
				b0.Begin(0)
				b0.Begin(1)
				b0.Load(0, x.WordAddr(0, 0))
				b0.AddImm(0, 1)
				b0.Store(x.WordAddr(0, 0), 0)
				b0.CommitOpen(func(cb *workload.Builder) {
					cb.Load(2, x.WordAddr(0, 0))
					cb.AddImm(2, -1)
					cb.Store(x.WordAddr(0, 0), 2)
				})
				b0.Load(1, hot.WordAddr(0, 0))
				b0.AddImm(1, 1)
				b0.Compute(40)
				b0.Store(hot.WordAddr(0, 0), 1)
				b0.Commit()
			}
			b0.Barrier(0)

			// Core 1: hammers the hot word so core 0 aborts sometimes.
			b1 := workload.NewBuilder()
			for i := 0; i < 3*iters; i++ {
				b1.Begin(0)
				b1.Load(0, hot.WordAddr(0, 0))
				b1.AddImm(0, 1)
				b1.Compute(25)
				b1.Store(hot.WordAddr(0, 0), 0)
				b1.Commit()
			}
			b1.Barrier(0)

			m, res := r.run(t, mk(), 2, []workload.Program{b0.Build(), b1.Build()})
			if res.PerCore[0].Cycles[stats.Backoff] == 0 && res.Counters.TxAborted == 0 {
				t.Skip("no aborts; compensation path unexercised")
			}
			if got := m.ArchMem().Read(x.WordAddr(0, 0)); got != iters {
				t.Fatalf("X = %d, want %d (compensations must cancel aborted attempts' published increments)",
					got, iters)
			}
			if got := m.ArchMem().Read(hot.WordAddr(0, 0)); got != 4*iters {
				t.Fatalf("hot = %d, want %d", got, 4*iters)
			}
		})
	}
}

// TestOpenCommitSurvivesParentAbort: the child's published write itself
// (with no compensation registered) must survive a parent abort intact.
func TestOpenCommitValueSurvives(t *testing.T) {
	r := newRig()
	x := workload.NewRegion(r.alloc, 1)
	y := workload.NewRegion(r.alloc, 1)
	hot := workload.NewRegion(r.alloc, 1)

	// Core 0: open child stores a marker to X; the parent writes Y then
	// conflicts. After any abort, X keeps the last published marker while
	// Y is rolled back and re-done.
	b0 := workload.NewBuilder()
	for i := 0; i < 20; i++ {
		b0.Begin(0)
		b0.Begin(1)
		b0.StoreImm(x.WordAddr(0, 0), 777)
		b0.CommitOpen(nil)
		b0.Load(1, y.WordAddr(0, 0))
		b0.AddImm(1, 1)
		b0.Store(y.WordAddr(0, 0), 1)
		b0.Load(0, hot.WordAddr(0, 0))
		b0.AddImm(0, 1)
		b0.Compute(40)
		b0.Store(hot.WordAddr(0, 0), 0)
		b0.Commit()
	}
	b0.Barrier(0)

	b1 := workload.NewBuilder()
	for i := 0; i < 60; i++ {
		b1.Begin(0)
		b1.Load(0, hot.WordAddr(0, 0))
		b1.AddImm(0, 1)
		b1.Compute(25)
		b1.Store(hot.WordAddr(0, 0), 0)
		b1.Commit()
	}
	b1.Barrier(0)

	m, _ := r.run(t, newSUV(), 2, []workload.Program{b0.Build(), b1.Build()})
	if got := m.ArchMem().Read(x.WordAddr(0, 0)); got != 777 {
		t.Fatalf("X = %d, want 777 (open-committed value lost)", got)
	}
	if got := m.ArchMem().Read(y.WordAddr(0, 0)); got != 20 {
		t.Fatalf("Y = %d, want 20 (parent writes must be exact)", got)
	}
}

// TestCommitOpenBuilderChecks: the trace language rejects malformed
// compensation blocks and unbalanced open commits.
func TestCommitOpenBuilderChecks(t *testing.T) {
	t.Run("outside tx", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		workload.NewBuilder().CommitOpen(nil)
	})
	t.Run("tx in compensation", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		b := workload.NewBuilder()
		b.Begin(0)
		b.CommitOpen(func(cb *workload.Builder) { cb.Begin(1) })
	})
}

func newSUV() htm.VersionManager { return allVMs()["SUV-TM"]() }
