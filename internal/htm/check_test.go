package htm_test

import (
	"testing"

	"suvtm/internal/workload"
)

// TestCoherenceInvariants audits the directory/cache agreement after
// contended runs under every scheme: exactly one Modified holder per
// line, never alongside Shared copies, with the directory agreeing.
func TestCoherenceInvariants(t *testing.T) {
	for name, mk := range allVMs() {
		t.Run(name, func(t *testing.T) {
			r := newRig()
			region := workload.NewRegion(r.alloc, 16)
			progs := make([]workload.Program, 8)
			for c := range progs {
				b := workload.NewBuilder()
				for i := 0; i < 50; i++ {
					b.Begin(0)
					for k := 0; k < 3; k++ {
						addr := region.WordAddr((i+k+c)%16, (i*3+k)%8)
						b.Load(0, addr)
						b.AddImm(0, 1)
						b.Store(addr, 0)
					}
					b.Commit()
					b.Compute(9)
				}
				b.Barrier(0)
				progs[c] = b.Build()
			}
			m, _ := r.run(t, mk(), 8, progs)
			if err := m.CheckCoherence(); err != nil {
				t.Fatalf("coherence invariant violated: %v", err)
			}
		})
	}
}
