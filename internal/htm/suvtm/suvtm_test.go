package suvtm_test

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/mem"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

func newSetup() (*mem.Memory, *mem.Allocator) {
	return mem.NewMemory(), mem.NewAllocator(0x100000, 1<<30)
}

func run(t *testing.T, cfg htm.Config, progs []workload.Program, memory *mem.Memory, alloc *mem.Allocator) (*htm.Machine, *htm.Result) {
	t.Helper()
	m := htm.New(cfg, suvtm.New(), progs, memory, alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

// TestSingleUpdate: a committed transactional store must leave exactly
// one copy of the new value (at the redirected location) and the old
// value untouched at the original physical location — the single-update
// property the scheme is named after.
func TestSingleUpdate(t *testing.T) {
	memory, alloc := newSetup()
	region := workload.NewRegion(alloc, 1)
	addr := region.WordAddr(0, 0)
	memory.Write(addr, 41)
	b := workload.NewBuilder()
	b.Begin(0)
	b.Load(0, addr)
	b.AddImm(0, 1)
	b.Store(addr, 0)
	b.Commit()
	b.Barrier(0)
	m, res := run(t, htm.DefaultConfig(1), []workload.Program{b.Build()}, memory, alloc)

	if got := m.ArchMem().Read(addr); got != 42 {
		t.Fatalf("architectural value = %d, want 42", got)
	}
	// The physical original location still holds the old value: no
	// second data movement happened at commit.
	if raw := memory.Read(addr); raw != 41 {
		t.Fatalf("original location = %d, want untouched 41", raw)
	}
	if res.Counters.RedirectEntriesAdd != 1 {
		t.Fatalf("entries added = %d", res.Counters.RedirectEntriesAdd)
	}
	if target, ok := m.Redirect.GlobalTarget(sim.LineOf(addr)); !ok || target == sim.LineOf(addr) {
		t.Fatalf("no committed redirect mapping (target=%d ok=%v)", target, ok)
	}
}

// TestAbortIsFlash: SUV aborts must cost a small constant, independent
// of the write-set size — unlike LogTM-SE's log walk.
func TestAbortIsFlash(t *testing.T) {
	measure := func(writes int) uint64 {
		memory, alloc := newSetup()
		region := workload.NewRegion(alloc, writes)
		hot := workload.NewRegion(alloc, 1)
		b0 := workload.NewBuilder()
		for i := 0; i < 6; i++ {
			b0.Begin(0)
			for k := 0; k < writes; k++ {
				b0.StoreImm(region.WordAddr(k, 0), 1)
			}
			b0.Load(0, hot.WordAddr(0, 0))
			b0.AddImm(0, 1)
			b0.Store(hot.WordAddr(0, 0), 0)
			b0.Commit()
			b0.Compute(10)
		}
		b0.Barrier(0)
		b1 := workload.NewBuilder()
		for i := 0; i < 120; i++ {
			b1.Begin(0)
			b1.Load(0, hot.WordAddr(0, 0))
			b1.AddImm(0, 1)
			b1.Compute(60)
			b1.Store(hot.WordAddr(0, 0), 0)
			b1.Commit()
		}
		b1.Barrier(0)
		m := htm.New(htm.DefaultConfig(2), suvtm.New(), []workload.Program{b0.Build(), b1.Build()}, memory, alloc)
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if res.Counters.TxAborted == 0 {
			t.Skip("no aborts in this configuration")
		}
		return res.Breakdown.Cycles[stats.Aborting] / res.Counters.TxAborted
	}
	small := measure(4)
	large := measure(64)
	if large > small*2 {
		t.Fatalf("SUV abort cost scaled with write set: %d vs %d cycles/abort", small, large)
	}
}

// TestRedirectBackKeepsTableSmall: alternately updating the same
// variables must not grow the redirect table (Section IV-A's growth
// argument).
func TestRedirectBackKeepsTableSmall(t *testing.T) {
	memory, alloc := newSetup()
	region := workload.NewRegion(alloc, 8)
	b := workload.NewBuilder()
	for i := 0; i < 50; i++ {
		b.Begin(0)
		for k := 0; k < 8; k++ {
			b.Load(0, region.WordAddr(k, 0))
			b.AddImm(0, 1)
			b.Store(region.WordAddr(k, 0), 0)
		}
		b.Commit()
	}
	b.Barrier(0)
	m, res := run(t, htm.DefaultConfig(1), []workload.Program{b.Build()}, memory, alloc)
	if m.Redirect.EntryCount() > 8 {
		t.Fatalf("entry count = %d, want <= 8 despite 400 redirecting stores", m.Redirect.EntryCount())
	}
	if res.Counters.RedirectBacks == 0 {
		t.Fatal("no redirect-backs on repeated updates")
	}
	for k := 0; k < 8; k++ {
		if got := m.ArchMem().Read(region.WordAddr(k, 0)); got != 50 {
			t.Fatalf("word %d = %d, want 50", k, got)
		}
	}
}

// TestSummaryFiltersUnredirected: accesses to never-redirected lines
// must be filtered by the summary signature, not pay table lookups.
func TestSummaryFiltersUnredirected(t *testing.T) {
	memory, alloc := newSetup()
	private := workload.NewRegion(alloc, 64)
	b := workload.NewBuilder()
	for i := 0; i < 64; i++ {
		b.Load(1, private.WordAddr(i, 0)) // non-transactional reads
	}
	b.Barrier(0)
	_, res := run(t, htm.DefaultConfig(1), []workload.Program{b.Build()}, memory, alloc)
	if res.Counters.SummaryFiltered == 0 {
		t.Fatal("summary signature filtered nothing")
	}
	if res.Counters.RedirectLookups > res.Counters.SummaryFiltered/4 {
		t.Fatalf("too many lookups escaped the filter: %d lookups vs %d filtered",
			res.Counters.RedirectLookups, res.Counters.SummaryFiltered)
	}
}

// TestTableOverflowCounted: a transaction writing more distinct lines
// than the first-level table pins must be flagged as table-overflowed
// (Table V) yet still commit correctly.
func TestTableOverflowCounted(t *testing.T) {
	memory, alloc := newSetup()
	cfg := htm.DefaultConfig(1)
	cfg.Redirect.L1Entries = 16
	region := workload.NewRegion(alloc, 32)
	b := workload.NewBuilder()
	b.Begin(0)
	for k := 0; k < 32; k++ {
		b.StoreImm(region.WordAddr(k, 0), uint64(k))
	}
	b.Commit()
	b.Barrier(0)
	m, res := run(t, cfg, []workload.Program{b.Build()}, memory, alloc)
	if res.Counters.TableOverflowTx != 1 {
		t.Fatalf("table-overflow tx = %d, want 1", res.Counters.TableOverflowTx)
	}
	for k := 0; k < 32; k++ {
		if got := m.ArchMem().Read(region.WordAddr(k, 0)); got != uint64(k) {
			t.Fatalf("word %d = %d after overflow", k, got)
		}
	}
}

// TestNonTxWritesFollowRedirects: strong isolation — a plain store to a
// redirected address must land at the redirected location.
func TestNonTxWritesFollowRedirects(t *testing.T) {
	memory, alloc := newSetup()
	region := workload.NewRegion(alloc, 1)
	addr := region.WordAddr(0, 0)
	b := workload.NewBuilder()
	b.Begin(0)
	b.StoreImm(addr, 7)
	b.Commit()
	b.StoreImm(addr, 9) // non-transactional, after the line moved
	b.Barrier(0)
	m, _ := run(t, htm.DefaultConfig(1), []workload.Program{b.Build()}, memory, alloc)
	if got := m.ArchMem().Read(addr); got != 9 {
		t.Fatalf("architectural value = %d, want 9", got)
	}
}

// TestPoolPagesGrowOnDemand: the preserved pool claims pages lazily.
func TestPoolPagesGrowOnDemand(t *testing.T) {
	memory, alloc := newSetup()
	region := workload.NewRegion(alloc, 300)
	b := workload.NewBuilder()
	b.Begin(0)
	for k := 0; k < 300; k++ {
		b.StoreImm(region.WordAddr(k, 0), 1)
	}
	b.Commit()
	b.Barrier(0)
	m, _ := run(t, htm.DefaultConfig(1), []workload.Program{b.Build()}, memory, alloc)
	// 300 lines fit inside one 16-page stripe-spread group (2048 lines);
	// a second group would mean the pool over-claimed.
	if pages := m.Redirect.Pool().Pages(); pages != 16 {
		t.Fatalf("pool pages = %d, want one 16-page group for 300 lines", pages)
	}
}

func TestName(t *testing.T) {
	if suvtm.New().Name() != "SUV-TM" {
		t.Fatal("wrong name")
	}
}
