// Package suvtm implements the paper's contribution: the Single-Update
// Version-management scheme. Each transactional store is redirected to a
// line in the preserved pool (or back to the original address — the
// redirect-back optimization), the mapping is journaled in the redirect
// table, and commit and abort are flash state transitions over the
// journal (Figure 4(e)/(f)): exactly one data update ever happens,
// whichever way the transaction ends. Every memory access is filtered
// through the redirect summary signature (plus the write signature for
// the transaction's own transient entries) before paying for a table
// walk.
package suvtm

import (
	"suvtm/internal/htm"
	"suvtm/internal/redirect"
	"suvtm/internal/sim"
)

// VM is the SUV version manager. It can serve as a standalone eager
// scheme (SUV-TM) or as the version-management half of DynTM (D+S).
type VM struct{}

// New returns a SUV version manager.
func New() *VM { return &VM{} }

// Name implements htm.VersionManager.
func (v *VM) Name() string { return "SUV-TM" }

// Init implements htm.VersionManager; the machine already owns the
// redirect tables and summary signature.
func (v *VM) Init(m *htm.Machine) {}

// Mode implements htm.VersionManager: standalone SUV-TM runs eager (the
// paper implements the eager case; DynTM wraps this VM for lazy use).
func (v *VM) Mode(c *htm.Core) htm.ExecMode {
	if !c.InTx() {
		return htm.ModeNone
	}
	return htm.ModeEager
}

// Begin opens a redirect journal frame.
func (v *VM) Begin(m *htm.Machine, c *htm.Core) sim.Cycles {
	m.Redirect.BeginFrame(c.ID)
	return 2
}

// Translate filters the access through the redirect summary signature
// (and the core's own write signature, which covers its transient
// entries) and walks the redirect table only on a positive answer. This
// runs for every access, transactional or not — the cost of strong
// isolation the paper quantifies in Section V-C.
func (v *VM) Translate(m *htm.Machine, c *htm.Core, line sim.Line, write bool) (sim.Line, sim.Cycles) {
	own := c.TxActive() && c.WriteSig.Test(line)
	if !own && !m.Summary.Test(line) {
		c.Counters.SummaryFiltered++
		return line, 0
	}
	out := m.Redirect.Lookup(c.ID, line)
	c.Counters.RedirectLookups++
	switch out.Level {
	case redirect.LevelL1:
		c.Counters.RedirectL1Hits++
	case redirect.LevelL2:
		c.Counters.RedirectL2Hits++
	case redirect.LevelMemory:
		c.Counters.RedirectMemLookups++
	case redirect.LevelAbsent:
		if !own {
			c.Counters.SummaryFalsePos++
		}
	}
	return out.Target, out.Latency
}

// Load reads from the translated address.
func (v *VM) Load(m *htm.Machine, c *htm.Core, addr, targetAddr sim.Addr) (sim.Word, sim.Cycles) {
	return m.Memory.Read(targetAddr), 0
}

// Store performs the single update: transactional stores transition the
// redirect entry (new transient-add, redirect-back, or reuse) and write
// the value at the redirected location; non-transactional stores write
// through the committed mapping.
func (v *VM) Store(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) (sim.Line, sim.Cycles) {
	line := sim.LineOf(addr)
	if !c.TxActive() {
		target := m.Redirect.Resolve(c.ID, line)
		m.Memory.Write(translatedAddr(target, addr), val)
		return target, 0
	}
	out := m.Redirect.TxStore(c.ID, line)
	if out.NeedFill {
		// The normal write-miss fill deposits the original line's content
		// at the redirected location — not an extra data movement.
		m.Memory.CopyLine(out.FillFrom, out.Target)
	}
	m.Memory.Write(translatedAddr(out.Target, addr), val)
	if out.NewEntry {
		c.Counters.RedirectEntriesAdd++
		c.TLB.IndexOf(sim.AddrOf(out.Target))
	}
	if out.RedirectBack {
		c.Counters.RedirectBacks++
	}
	lat := out.ExtraLatency
	if out.PoolReclaim {
		// The preserved pool was exhausted: the allocation was served by
		// software reclamation of a committed pool page — slow, but the
		// transaction still proceeds (graceful degradation rather than a
		// hard failure).
		c.Counters.PoolReclaimStalls++
		lat += m.PoolReclaimPenalty()
	}
	return out.Target, lat
}

// CommitOuter flash-converts the journaled entries (Figure 4(e)) and
// updates the redirect summary signature. Only a transaction that
// overflowed the first-level table pays a software pass.
func (v *VM) CommitOuter(m *htm.Machine, c *htm.Core) sim.Cycles {
	lat := m.Config().CommitLatency
	if m.Redirect.TxOverflowed(c.ID) {
		// The first-level table overflowed (entry pressure or plain
		// capacity): the transaction completes through the software-walked
		// slow path instead of failing.
		c.Counters.TableOverflowTx++
		c.Counters.GracefulDegradation++
		lat += m.Config().MemLatency
	}
	for _, ev := range m.Redirect.CommitFrame(c.ID) {
		if ev.Added {
			m.Summary.Add(ev.Line)
		} else if ev.Removed {
			m.Summary.Delete(ev.Line)
		}
	}
	return lat
}

// CommitNested merges the innermost journal frame into its parent.
func (v *VM) CommitNested(m *htm.Machine, c *htm.Core) sim.Cycles {
	m.Redirect.CommitFrame(c.ID)
	return 1
}

// CommitOpen flash-publishes the innermost journal frame (open nesting):
// its entries take the Figure 4(e) transitions immediately and the
// summary signature is updated, while the outer frames stay speculative.
func (v *VM) CommitOpen(m *htm.Machine, c *htm.Core) sim.Cycles {
	for _, ev := range m.Redirect.CommitOpenFrame(c.ID) {
		if ev.Added {
			m.Summary.Add(ev.Line)
		} else if ev.Removed {
			m.Summary.Delete(ev.Line)
		}
	}
	return m.Config().CommitLatency
}

// Abort flash-reverts every open journal frame (Figure 4(f)): no data
// moves, so the roll-back window — and with it the repair pathology —
// all but disappears.
func (v *VM) Abort(m *htm.Machine, c *htm.Core) sim.Cycles {
	lat := m.Config().FastAbortFixed
	if m.Redirect.TxOverflowed(c.ID) {
		c.Counters.TableOverflowTx++
		c.Counters.GracefulDegradation++
		lat += m.Config().MemLatency
	}
	for m.Redirect.InFrame(c.ID) {
		m.Redirect.AbortFrame(c.ID)
	}
	return lat
}

// OnSpecEviction is a no-op: SUV keeps no speculative cache lines — both
// versions live at real addresses.
func (v *VM) OnSpecEviction(m *htm.Machine, c *htm.Core, line sim.Line) {}

// peekClear reports whether c's access to line is provably free of
// redirect state: either the summary signature dismisses it outright
// (no false negatives — the filtered Translate path), or the signature
// answered positive only by aliasing and the precise, side-effect-free
// table probe proves the line absent everywhere (the zero-latency
// LevelAbsent walk). Both paths leave Translate at latency 0 with the
// identity mapping, which is what the certified twins below replay.
func peekClear(m *htm.Machine, c *htm.Core, line sim.Line) bool {
	return !m.Summary.Test(line) || m.Redirect.PeekAbsent(c.ID, line)
}

// PeekLoad implements htm.LocalPeeker: a load is core-local exactly when
// the line provably has no redirect state — no transient entry of c's
// own (write signature) and no committed entry anywhere (summary
// signature, sharpened by the precise absent probe for aliases). A line
// with real redirect state — or one cached in the hardware walk tables,
// whose LRU the walk would reorder — conservatively parks the access on
// the sequential engine.
func (v *VM) PeekLoad(m *htm.Machine, c *htm.Core, line sim.Line) htm.AccessPeek {
	if c.TxActive() && c.WriteSig.Test(line) {
		return htm.AccessPeek{}
	}
	if !peekClear(m, c, line) {
		return htm.AccessPeek{}
	}
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// PeekStore implements htm.LocalPeeker. Only non-transactional stores
// through the identity mapping are core-local: the core must be outside
// any transaction (InTx, not just TxActive — a suspended transaction's
// transient redirect entries would still resolve the store elsewhere)
// and the line must be provably clear of redirect state, which proves
// Resolve is the identity and Store is a plain word write.
// Transactional stores always walk the redirect table (journal
// transitions, pool allocation) and stay sequential.
func (v *VM) PeekStore(m *htm.Machine, c *htm.Core, line sim.Line) htm.AccessPeek {
	if c.InTx() || !peekClear(m, c, line) {
		return htm.AccessPeek{}
	}
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// LoadLocal implements htm.LocalPeeker: a certified load replays the
// real Translate — the summary-filtered arm, or the pure LevelAbsent
// walk for an alias the precise probe certified — so every counter and
// the (zero) latency land exactly as the sequential path would, then
// reads the word through the identity mapping Translate just confirmed.
func (v *VM) LoadLocal(m *htm.Machine, c *htm.Core, addr sim.Addr) (sim.Word, sim.Cycles) {
	_, lat := v.Translate(m, c, sim.LineOf(addr), false)
	return m.Memory.Read(addr), lat
}

// PeekDirOp implements htm.LocalPeeker: a coherence request for a
// provably redirect-free line by a non-transactional core touches no
// redirect state at the home tile — the directory slice finds nothing
// to resolve. A line with real redirect state may have journal entries
// hanging off its directory path, and a transactional requester could
// be mid-redirect, so both park.
func (v *VM) PeekDirOp(m *htm.Machine, c *htm.Core, line sim.Line, write bool) htm.AccessPeek {
	if c.InTx() || !peekClear(m, c, line) {
		return htm.AccessPeek{}
	}
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// DirOpLocal implements htm.LocalPeeker: a certified directory request
// has no SUV-side effect — the line is provably redirect-free.
func (v *VM) DirOpLocal(m *htm.Machine, c *htm.Core, line sim.Line, write bool) sim.Cycles {
	return 0
}

// StoreLocal implements htm.LocalPeeker: a certified store replays the
// real Translate plus Store's non-transactional arm — Resolve, proven
// the identity by the peek, then the word write in place.
func (v *VM) StoreLocal(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) sim.Cycles {
	line := sim.LineOf(addr)
	_, lat := v.Translate(m, c, line, true)
	m.Memory.Write(translatedAddr(m.Redirect.Resolve(c.ID, line), addr), val)
	return lat
}

// translatedAddr rebases addr into target, keeping the in-line offset.
func translatedAddr(target sim.Line, addr sim.Addr) sim.Addr {
	return sim.AddrOf(target) | (addr & (sim.LineBytes - 1))
}
