// Package logtmse implements the LogTM-SE version manager (Yen et al.,
// HPCA 2007), the paper's baseline: eager version management through a
// per-thread undo log in cacheable virtual memory, in-place updates, and
// a software abort handler that walks the log backwards to restore old
// values — all while the transaction's signatures keep NACKing
// conflicting requests (the repair pathology of Figure 1).
package logtmse

import (
	"suvtm/internal/htm"
	"suvtm/internal/sim"
	"suvtm/internal/workload"
)

// logRegionLines sizes each core's private undo-log region; the log
// wraps, which is safe because a transaction's records are consumed at
// its own commit/abort.
const logRegionLines = 4096

type undoRec struct {
	line sim.Line
	vals [sim.WordsPerLine]sim.Word
}

type coreState struct {
	log     []undoRec
	logged  map[sim.Line]int // line -> index in log (first-touch filter)
	marks   []int            // nesting frame marks
	logBase workload.Region
	logPos  int
}

// VM is the LogTM-SE version manager.
type VM struct {
	st []coreState
}

// New returns a LogTM-SE version manager.
func New() *VM { return &VM{} }

// Name implements htm.VersionManager.
func (v *VM) Name() string { return "LogTM-SE" }

// Init allocates each core's private undo-log region.
func (v *VM) Init(m *htm.Machine) {
	v.st = make([]coreState, len(m.Cores))
	for i := range v.st {
		v.st[i] = coreState{
			logged:  make(map[sim.Line]int),
			logBase: workload.NewRegion(m.Alloc, logRegionLines),
		}
	}
}

// Mode implements htm.VersionManager: LogTM-SE is always eager.
func (v *VM) Mode(c *htm.Core) htm.ExecMode {
	if !c.InTx() {
		return htm.ModeNone
	}
	return htm.ModeEager
}

// Begin takes the register checkpoint and opens a log frame.
func (v *VM) Begin(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	s.marks = append(s.marks, len(s.log))
	return 2
}

// Translate is the identity: LogTM-SE updates in place.
func (v *VM) Translate(m *htm.Machine, c *htm.Core, line sim.Line, write bool) (sim.Line, sim.Cycles) {
	return line, 0
}

// Load reads the current (in-place) value.
func (v *VM) Load(m *htm.Machine, c *htm.Core, addr, targetAddr sim.Addr) (sim.Word, sim.Cycles) {
	return m.Memory.Read(addr), 0
}

// Store writes the undo record on the first touch of each line (one extra
// load plus one extra store per transactional write — Section II), then
// updates memory in place.
func (v *VM) Store(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) (sim.Line, sim.Cycles) {
	line := sim.LineOf(addr)
	var lat sim.Cycles
	if c.TxActive() {
		s := &v.st[c.ID]
		if _, seen := s.logged[line]; !seen {
			s.logged[line] = len(s.log)
			s.log = append(s.log, undoRec{line: line, vals: m.Memory.ReadLine(line)})
			// Read the old value out of the just-fetched line, then write
			// the 64-byte record into the (private, cacheable) log.
			lat += 1
			lat += m.AccessPrivate(c, s.logBase.Line(s.logPos%logRegionLines), true)
			s.logPos++
			c.Counters.UndoLogEntries++
		}
	}
	m.Memory.Write(addr, val)
	return line, lat
}

// CommitOuter discards the log: eager commit is cheap.
func (v *VM) CommitOuter(m *htm.Machine, c *htm.Core) sim.Cycles {
	v.reset(c.ID)
	return m.Config().CommitLatency
}

// CommitNested merges the innermost frame into its parent.
func (v *VM) CommitNested(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	s.marks = s.marks[:len(s.marks)-1]
	return 1
}

// CommitOpen publishes the innermost frame: its undo records are
// discarded, so a parent abort no longer rolls the child's writes back
// (the registered compensating action undoes them semantically). The
// parent and its open child should not overlap write sets — overlapping
// lines logged first by the parent are still restored by a parent abort.
func (v *VM) CommitOpen(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	mark := s.marks[len(s.marks)-1]
	for i := mark; i < len(s.log); i++ {
		delete(s.logged, s.log[i].line)
	}
	s.log = s.log[:mark]
	s.marks = s.marks[:len(s.marks)-1]
	return m.Config().CommitLatency
}

// Abort traps into the software handler and replays the undo log
// backwards, restoring each logged line. The machine holds the
// transaction's isolation for the whole returned duration.
func (v *VM) Abort(m *htm.Machine, c *htm.Core) sim.Cycles {
	s := &v.st[c.ID]
	cfg := m.Config()
	lat := cfg.TrapLatency
	c.Counters.SoftwareTraps++
	for i := len(s.log) - 1; i >= 0; i-- {
		rec := s.log[i]
		m.Memory.WriteLine(rec.line, rec.vals)
		// Fetch the log record, then write the old data back to the line
		// (a miss if the line was evicted during the transaction).
		lat += cfg.LogWalkPerLine
		lat += m.AccessPrivate(c, s.logBase.Line(i%logRegionLines), false)
		lat += m.AccessPrivate(c, rec.line, true)
		c.Counters.UndoLogRestores++
	}
	v.reset(c.ID)
	return lat
}

// OnSpecEviction is a no-op: LogTM-SE keeps no speculative lines — the
// signatures virtualize evicted transactional state.
func (v *VM) OnSpecEviction(m *htm.Machine, c *htm.Core, line sim.Line) {}

// PeekLoad implements htm.LocalPeeker: LogTM-SE loads are always
// in-place, zero-extra-latency word reads (Translate is the identity).
func (v *VM) PeekLoad(m *htm.Machine, c *htm.Core, line sim.Line) htm.AccessPeek {
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// PeekStore implements htm.LocalPeeker: a store is core-local unless it
// is the first transactional touch of the line, which appends the undo
// record through AccessPrivate (L2 and directory traffic). Already
// logged lines — and all non-transactional stores — write in place.
// A certified store never mutates the first-touch map, so the
// classification is stable across the window.
func (v *VM) PeekStore(m *htm.Machine, c *htm.Core, line sim.Line) htm.AccessPeek {
	if c.TxActive() {
		if _, seen := v.st[c.ID].logged[line]; !seen {
			return htm.AccessPeek{}
		}
	}
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// PeekDirOp implements htm.LocalPeeker: LogTM-SE keeps no per-line
// state at the directory or the L2, so every coherence request is
// scheme-neutral and carries no extra latency.
func (v *VM) PeekDirOp(m *htm.Machine, c *htm.Core, line sim.Line, write bool) htm.AccessPeek {
	return htm.AccessPeek{Target: line, Lat: 0, OK: true}
}

// DirOpLocal implements htm.LocalPeeker: nothing to do (see PeekDirOp).
func (v *VM) DirOpLocal(m *htm.Machine, c *htm.Core, line sim.Line, write bool) sim.Cycles {
	return 0
}

// LoadLocal implements htm.LocalPeeker: Translate is the identity and a
// load is a plain in-place word read.
func (v *VM) LoadLocal(m *htm.Machine, c *htm.Core, addr sim.Addr) (sim.Word, sim.Cycles) {
	return m.Memory.Read(addr), 0
}

// StoreLocal implements htm.LocalPeeker: a certified store is either
// non-transactional or to an already-logged line, so the first-touch
// branch of Store is dead and only the in-place write remains.
func (v *VM) StoreLocal(m *htm.Machine, c *htm.Core, addr sim.Addr, val sim.Word) sim.Cycles {
	m.Memory.Write(addr, val)
	return 0
}

func (v *VM) reset(id int) {
	s := &v.st[id]
	s.log = s.log[:0]
	s.marks = s.marks[:0]
	clear(s.logged)
	s.logPos = 0
}
