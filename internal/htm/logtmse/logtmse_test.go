package logtmse_test

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/mem"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

func runProg(t *testing.T, progs []workload.Program, memory *mem.Memory, alloc *mem.Allocator, cores int) (*htm.Machine, *htm.Result) {
	t.Helper()
	m := htm.New(htm.DefaultConfig(cores), logtmse.New(), progs, memory, alloc)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, res
}

// TestUndoLogFirstTouchOnly: repeated stores to the same line within a
// transaction log exactly one undo record.
func TestUndoLogFirstTouchOnly(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	region := workload.NewRegion(alloc, 2)
	b := workload.NewBuilder()
	b.Begin(0)
	for i := 0; i < 5; i++ {
		b.StoreImm(region.WordAddr(0, i), uint64(i))
	}
	b.StoreImm(region.WordAddr(1, 0), 99)
	b.Commit()
	b.Barrier(0)
	_, res := runProg(t, []workload.Program{b.Build()}, memory, alloc, 1)
	if res.Counters.UndoLogEntries != 2 {
		t.Fatalf("undo records = %d, want 2 (one per distinct line)", res.Counters.UndoLogEntries)
	}
}

// TestAbortRestoresValues: the software abort walk must restore every
// logged line exactly, including words written multiple times.
func TestAbortRestoresValues(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	region := workload.NewRegion(alloc, 4)
	hot := workload.NewRegion(alloc, 1)
	for i := 0; i < 4; i++ {
		memory.Write(region.WordAddr(i, 0), uint64(100+i))
	}
	// Core 0 repeatedly writes the region inside transactions that
	// conflict with core 1 on the hot word; aborted attempts must leave
	// the region untouched and the final state must reflect only commits.
	mkProg := func(id int) workload.Program {
		b := workload.NewBuilder()
		for i := 0; i < 30; i++ {
			b.Begin(0)
			if id == 0 {
				// Build the write set first so an abort triggered by the
				// hot-word conflict has records to replay.
				for k := 0; k < 4; k++ {
					b.Load(1, region.WordAddr(k, 0))
					b.AddImm(1, 1)
					b.Store(region.WordAddr(k, 0), 1)
				}
			}
			b.Load(0, hot.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Compute(30)
			b.Store(hot.WordAddr(0, 0), 0)
			b.Commit()
		}
		b.Barrier(0)
		return b.Build()
	}
	m, res := runProg(t, []workload.Program{mkProg(0), mkProg(1)}, memory, alloc, 2)
	if res.Counters.TxAborted == 0 {
		t.Fatal("no aborts — the test exercises nothing")
	}
	if res.Counters.UndoLogRestores == 0 {
		t.Fatal("aborts replayed no undo records")
	}
	for k := 0; k < 4; k++ {
		want := uint64(100 + k + 30)
		if got := m.ArchMem().Read(region.WordAddr(k, 0)); got != want {
			t.Fatalf("region[%d] = %d, want %d", k, got, want)
		}
	}
	if got := m.ArchMem().Read(hot.WordAddr(0, 0)); got != 60 {
		t.Fatalf("hot = %d, want 60", got)
	}
}

// TestSoftwareTrapPerAbort: every abort enters the software handler once.
func TestSoftwareTrapPerAbort(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	hot := workload.NewRegion(alloc, 1)
	progs := make([]workload.Program, 4)
	for c := range progs {
		b := workload.NewBuilder()
		for i := 0; i < 40; i++ {
			b.Begin(0)
			b.Load(0, hot.WordAddr(0, 0))
			b.AddImm(0, 1)
			b.Compute(15)
			b.Store(hot.WordAddr(0, 0), 0)
			b.Commit()
		}
		b.Barrier(0)
		progs[c] = b.Build()
	}
	_, res := runProg(t, progs, memory, alloc, 4)
	if res.Counters.TxAborted == 0 {
		t.Fatal("no aborts under contention")
	}
	if res.Counters.SoftwareTraps != res.Counters.TxAborted {
		t.Fatalf("traps = %d, aborts = %d", res.Counters.SoftwareTraps, res.Counters.TxAborted)
	}
}

// TestAbortCostGrowsWithWriteSet: the roll-back window must scale with
// the number of logged lines (the repair pathology's root cause).
func TestAbortCostGrowsWithWriteSet(t *testing.T) {
	measure := func(writes int) uint64 {
		memory := mem.NewMemory()
		alloc := mem.NewAllocator(0x100000, 1<<30)
		region := workload.NewRegion(alloc, writes)
		hot := workload.NewRegion(alloc, 1)
		// Core 0 builds a big write set, then touches the hot word last so
		// it aborts after logging everything; core 1 owns the hot word.
		b0 := workload.NewBuilder()
		for i := 0; i < 6; i++ {
			b0.Begin(0)
			for k := 0; k < writes; k++ {
				b0.StoreImm(region.WordAddr(k, 0), 1)
			}
			b0.Load(0, hot.WordAddr(0, 0))
			b0.AddImm(0, 1)
			b0.Store(hot.WordAddr(0, 0), 0)
			b0.Commit()
			b0.Compute(10)
		}
		b0.Barrier(0)
		b1 := workload.NewBuilder()
		for i := 0; i < 120; i++ {
			b1.Begin(0)
			b1.Load(0, hot.WordAddr(0, 0))
			b1.AddImm(0, 1)
			b1.Compute(60)
			b1.Store(hot.WordAddr(0, 0), 0)
			b1.Commit()
		}
		b1.Barrier(0)
		m := htm.New(htm.DefaultConfig(2), logtmse.New(), []workload.Program{b0.Build(), b1.Build()}, memory, alloc)
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if res.Counters.TxAborted == 0 {
			t.Skip("no aborts in this configuration")
		}
		return res.Breakdown.Cycles[stats.Aborting] / res.Counters.TxAborted
	}
	small := measure(4)
	large := measure(64)
	if large <= small {
		t.Fatalf("abort cost did not grow with write set: %d vs %d cycles/abort", small, large)
	}
}

func TestName(t *testing.T) {
	if logtmse.New().Name() != "LogTM-SE" {
		t.Fatal("wrong name")
	}
}
