package htm

import (
	"errors"
	"fmt"
	"strings"

	"suvtm/internal/sim"
)

// Sentinel errors for the two ways a run can fail. The machine returns
// structured *WatchdogError / *DeadlockError / *InvariantError values
// that unwrap to these, so callers can classify with errors.Is and dig
// out diagnostics with errors.As.
var (
	// ErrWatchdog means the simulation exceeded Config.MaxCycles without
	// finishing — forward progress was lost despite the escalation ladder.
	ErrWatchdog = errors.New("htm: watchdog: no forward progress")
	// ErrDeadlock means every schedulable event drained but some cores
	// never finished (mismatched barriers, or cores wedged waiting).
	ErrDeadlock = errors.New("htm: deadlock")
)

// CoreSnapshot is one core's state at the moment a run failed, the raw
// material of a post-mortem: what was it doing, how long since it last
// committed, how hard was it struggling.
type CoreSnapshot struct {
	Core              int
	Status            string     // engine status (running, aborting, barrier, ...)
	PC                int        // program counter
	InTx              bool       // has an open transaction
	Suspended         bool       // transaction descheduled (summary-signature mode)
	ConsecAborts      int        // consecutive aborts of the current struggle
	CyclesSinceCommit sim.Cycles // cycles since this core's last commit (or run start)
	TxAge             sim.Cycles // age of the open transaction (0 when not in one)
	HeldToken         bool       // held the global serialization token
}

// String renders the snapshot on one line.
func (s CoreSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core%-2d %-10s pc=%-6d consec-aborts=%-3d since-commit=%d",
		s.Core, s.Status, s.PC, s.ConsecAborts, s.CyclesSinceCommit)
	if s.InTx {
		fmt.Fprintf(&sb, " in-tx age=%d", s.TxAge)
	}
	if s.Suspended {
		sb.WriteString(" suspended")
	}
	if s.HeldToken {
		sb.WriteString(" TOKEN")
	}
	return sb.String()
}

// WatchdogError reports a watchdog trip with per-core diagnostics.
type WatchdogError struct {
	MaxCycles sim.Cycles     // the configured limit
	At        sim.Cycles     // cycle of the event that tripped it
	Cores     []CoreSnapshot // every core's state at the trip
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("htm: watchdog: simulation exceeded %d cycles (livelock?) at cycle %d", e.MaxCycles, e.At)
}

// Unwrap makes errors.Is(err, ErrWatchdog) work.
func (e *WatchdogError) Unwrap() error { return ErrWatchdog }

// PostMortem renders the per-core diagnostic table.
func (e *WatchdogError) PostMortem() string { return postMortem(e.Cores) }

// DeadlockError reports an exhausted event queue with unfinished cores.
type DeadlockError struct {
	Finished int            // cores that ran to completion
	Total    int            // total cores
	At       sim.Cycles     // last simulated cycle
	Cores    []CoreSnapshot // every core's state when the queue drained
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("htm: deadlock: %d of %d cores finished (mismatched barriers?)", e.Finished, e.Total)
}

// Unwrap makes errors.Is(err, ErrDeadlock) work.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// PostMortem renders the per-core diagnostic table.
func (e *DeadlockError) PostMortem() string { return postMortem(e.Cores) }

// InvariantError reports a periodic invariant-check failure (enabled via
// Config.CheckInterval): the machine's cross-structure state became
// inconsistent at cycle At.
type InvariantError struct {
	At    sim.Cycles
	Check string // which checker fired ("coherence", "redirect")
	Err   error  // the violated invariant
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("htm: invariant check (%s) failed at cycle %d: %v", e.Check, e.At, e.Err)
}

// Unwrap exposes the underlying invariant violation.
func (e *InvariantError) Unwrap() error { return e.Err }

// postMortem renders snapshots, one core per line.
func postMortem(cores []CoreSnapshot) string {
	var sb strings.Builder
	for _, s := range cores {
		sb.WriteString("  ")
		sb.WriteString(s.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String names the engine status for diagnostics.
func (s coreStatus) String() string {
	switch s {
	case statusRunning:
		return "running"
	case statusAborting:
		return "aborting"
	case statusBarrier:
		return "barrier"
	case statusLazyCommitWait:
		return "commit-wait"
	case statusTokenWait:
		return "token-wait"
	case statusFinished:
		return "finished"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// snapshotCores captures every core's diagnostic state at m.now.
func (m *Machine) snapshotCores() []CoreSnapshot {
	out := make([]CoreSnapshot, len(m.Cores))
	for i, c := range m.Cores {
		s := CoreSnapshot{
			Core:              c.ID,
			Status:            c.status.String(),
			PC:                c.PC,
			InTx:              c.InTx(),
			Suspended:         c.suspended,
			ConsecAborts:      c.consecAborts,
			CyclesSinceCommit: m.now - c.lastCommitAt,
			HeldToken:         m.tokenCore == c.ID,
		}
		if c.InTx() && c.hasTimestamp && m.now > c.Timestamp {
			s.TxAge = m.now - c.Timestamp
		}
		out[i] = s
	}
	return out
}
