// Package htm is the hardware-transactional-memory framework of the
// simulated CMP: it owns the cores, the memory hierarchy, the MESI
// directory, eager conflict detection over Bloom signatures with the
// LogTM Stall policy (timestamp-based possible-cycle abort), lazy commit
// arbitration for DynTM, the execution-time breakdown, and the engine
// loop that advances cores deterministically. Version-management schemes
// (LogTM-SE, FasTM, SUV-TM, DynTM) plug in through the VersionManager
// interface and live in subpackages.
package htm

import (
	"suvtm/internal/mem"
	"suvtm/internal/redirect"
	"suvtm/internal/sim"
)

// ConflictPolicy selects how an eager conflict is resolved (Section III:
// "the requesting core resolves the conflict by stalling or aborting the
// transaction. An alternative policy is to make the receiving core stall
// or abort its transaction to guarantee the execution of the requester").
type ConflictPolicy uint8

const (
	// PolicyStall is the paper's evaluation default: NACK the requester,
	// who stalls and retries; LogTM's possible-cycle detection aborts the
	// requester when a deadlock threatens.
	PolicyStall ConflictPolicy = iota
	// PolicyOlderWins is the alternative: when the requester's
	// transaction is older than the holder's, the holder aborts instead
	// (guaranteeing the requester's progress); otherwise the requester
	// stalls as usual. Used by the ablation study.
	PolicyOlderWins
)

// String names the policy.
func (p ConflictPolicy) String() string {
	switch p {
	case PolicyStall:
		return "Stall"
	case PolicyOlderWins:
		return "OlderWins"
	}
	return "ConflictPolicy(?)"
}

// Config carries every parameter of the simulated CMP (Table III) plus
// the TM framework's tuning constants.
type Config struct {
	Cores int
	Seed  uint64

	// Policy selects the conflict-resolution policy (the paper's
	// experiments all use PolicyStall; PolicyOlderWins backs the
	// ablation study).
	Policy ConflictPolicy

	// Memory hierarchy (Table III).
	L1         mem.CacheConfig // 32 KB 4-way, 64-byte lines
	L2         mem.CacheConfig // 8 MB 8-way, shared
	L1Latency  sim.Cycles      // 1
	L2Latency  sim.Cycles      // 15
	MemLatency sim.Cycles      // 150
	DirLatency sim.Cycles      // 6
	TLBEntries int             // 64

	// Interconnect (Table III): mesh with 2-cycle wire, 1-cycle route.
	WireLatency  sim.Cycles
	RouteLatency sim.Cycles

	// Conflict detection.
	SigBits       uint32     // 2 Kbit Bloom filters
	RetryInterval sim.Cycles // NACKed request retry spacing
	BackoffBase   sim.Cycles // randomized exponential backoff seed
	BackoffMax    sim.Cycles // backoff cap

	// Version management.
	TrapLatency     sim.Cycles // software abort-handler entry (LogTM-SE)
	LogWalkPerLine  sim.Cycles // fixed software cost per undo record replayed
	CommitLatency   sim.Cycles // eager commit bookkeeping (flash operations)
	FastAbortFixed  sim.Cycles // FasTM / SUV constant abort cost
	LazyMergePerLn  sim.Cycles // DynTM lazy commit: per-line merge cost
	LazyArbitration sim.Cycles // DynTM lazy commit: token acquisition overhead

	// SUV redirect machinery (Table III: 512-entry L1 table, 16K-entry
	// 8-way 10-cycle L2 table).
	Redirect redirect.Config

	// Robustness: protocol-level recovery from interconnect misbehavior.
	// A directory request unanswered for ProtocolTimeout cycles is
	// retransmitted over a rerouted path, up to MeshMaxRetries times,
	// bounding the damage an injected message delay can do (0 = off).
	ProtocolTimeout sim.Cycles
	MeshMaxRetries  int

	// Forward-progress escalation ladder. A transaction that has aborted
	// BoostAborts times in a row backs off beyond BackoffMax (boosted
	// backoff); at HopelessAborts consecutive aborts — or after
	// StarveThreshold cycles inside one transaction without committing —
	// it is granted the global serialization token and runs irrevocably
	// while other cores park at their next transaction begin ("hopeless
	// transaction" mode). Zero disables each rung, which is the default:
	// high-contention paper workloads legitimately see hundreds of
	// consecutive aborts that classic backoff resolves, so the ladder is
	// an opt-in for chaos/fault runs (WithProgressLadder) rather than a
	// change to the evaluated schemes' fault-free behavior.
	StarveThreshold sim.Cycles
	BoostAborts     int
	HopelessAborts  int

	// CheckInterval, when positive, runs the machine's invariant checker
	// (coherence + redirect cross-consistency) every so many cycles and
	// fails the run on the first violation. Debug aid; expensive.
	CheckInterval sim.Cycles

	// Watchdog: abort the simulation after this many cycles (0 = off).
	// The forward-progress ladder above should make this unreachable; it
	// remains as the last-resort backstop, now returning a typed
	// *WatchdogError with per-core diagnostics.
	MaxCycles sim.Cycles

	// Shards engages the deterministic parallel window engine for this
	// run (parallel.go): cores and their tile-local state are grouped
	// into Shards contiguous mesh blocks that execute provably-local
	// instruction chains concurrently inside conservative time windows
	// bounded by the mesh lookahead. 0 (the default) runs the classic
	// sequential event loop. Results are bit-identical for every value —
	// Shards is a host-throughput knob, never a model parameter — and
	// runs the engine cannot parallelize (fault injection, tracing,
	// schemes without a LocalPeeker) fall back to the sequential loop.
	Shards int

	// Banks partitions the coherence directory and the shared L2 into
	// this many independent banks keyed by one deterministic line→bank
	// map (the top bits of the L2 set index). Like Shards it is a
	// host-structure knob, never a model parameter: every bank count
	// yields bit-identical results (the partition is exact and per-bank
	// stats merge in bank-ID order), but cross-core window chains can
	// only execute concurrently when their footprints are bank-disjoint,
	// so more banks means more windows survive certification. 0 resolves
	// to 16 (rounded down to a power of two and clamped to the L2 set
	// count when overridden). The default is 16 rather than the core
	// count because the bank stripe repeats every L2-way-size bytes
	// (1 MB here): eight 128 KB-aligned per-core arenas span that whole
	// period, so at 8 banks any shared region is forced onto some
	// core's stripe, while at 16 the 64 KB stripes leave room for
	// shared structures on stripes no private arena touches.
	Banks int
}

// resolvedBanks returns the effective directory/L2 bank count: the
// configured value with the default applied, rounded down to a power of
// two and clamped to the L2 set count so the bank bits fit inside the
// set index.
func (c Config) resolvedBanks() int {
	b := c.Banks
	if b <= 0 {
		b = 16
	}
	for b&(b-1) != 0 {
		b &= b - 1
	}
	if sets := c.L2.Sets(); b > sets {
		b = sets
	}
	if b < 1 {
		b = 1
	}
	return b
}

// DefaultConfig returns the paper's Table III configuration for the given
// number of cores (the paper uses 16).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:           cores,
		Seed:            1,
		L1:              mem.CacheConfig{SizeBytes: 32 << 10, Ways: 4},
		L2:              mem.CacheConfig{SizeBytes: 8 << 20, Ways: 8},
		L1Latency:       1,
		L2Latency:       15,
		MemLatency:      150,
		DirLatency:      6,
		TLBEntries:      64,
		WireLatency:     2,
		RouteLatency:    1,
		SigBits:         2048,
		RetryInterval:   20,
		BackoffBase:     40,
		BackoffMax:      8192,
		TrapLatency:     170,
		LogWalkPerLine:  10,
		CommitLatency:   4,
		FastAbortFixed:  15,
		LazyMergePerLn:  15,
		LazyArbitration: 24,
		Redirect:        redirect.DefaultConfig(cores),
		ProtocolTimeout: 500,
		MeshMaxRetries:  3,
		MaxCycles:       2_000_000_000,
	}
}

// WithProgressLadder returns the config with the forward-progress
// escalation ladder armed at its standard thresholds. Chaos runs (and
// suvsim -faults) use it: under injected NACK storms, saturation and
// message delay, boosted backoff plus the serialization token bound how
// long any one transaction can starve, at the price of diverging from
// the paper's classic-backoff schedule once a rung engages.
func (c Config) WithProgressLadder() Config {
	c.StarveThreshold = 1_000_000
	c.BoostAborts = 24
	c.HopelessAborts = 48
	return c
}
