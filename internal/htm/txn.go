package htm

import (
	"suvtm/internal/forensics"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/trace"
	"suvtm/internal/workload"
)

// workloadOp aliases the trace op type for brevity in the access path.
type workloadOp = workload.Op

// doBegin opens a transaction frame: register checkpoint, site record,
// timestamp assignment (kept across retries so aborted transactions age
// and eventually win conflicts) and the scheme's begin work.
func (m *Machine) doBegin(c *Core, site uint32) {
	if m.parkAtBegin(c) {
		// Another core runs in hopeless-transaction mode: this outermost
		// begin waits for the serialization token to release.
		return
	}
	frame := TxFrame{BeginPC: c.PC, Site: site, Regs: c.Regs}
	if len(c.Frames) > 0 {
		// Nested frame: snapshot the signatures and precise sets so an
		// open-nested commit can restore the parent's isolation exactly.
		frame.savedReadSig = c.ReadSig.Clone()
		frame.savedWriteSig = c.WriteSig.Clone()
		frame.savedReadSet = c.readSet.Clone()
		frame.savedWriteSet = c.writeSet.Clone()
	}
	c.Frames = append(c.Frames, frame)
	if len(c.Frames) == 1 {
		if !c.hasTimestamp {
			c.Timestamp = m.now
			c.hasTimestamp = true
		}
		c.attemptStart = m.now
		c.Counters.TxStarted++
		m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.Begin, Other: -1, Info: uint64(site)})
	}
	lat := m.VM.Begin(m, c)
	m.finishOp(c, lat)
}

// doCommit closes the innermost frame. Nested commits merge into the
// parent; the outermost commit runs lazy arbitration when needed, flushes
// the attempt's deferred cycles into Trans, and releases isolation.
// c.commitAdvance (set by step) is how many ops the completing commit
// skips — 1 for commit_transaction, 1+N for an open commit with an
// N-op compensation block.
func (m *Machine) doCommit(c *Core) {
	if !c.InTx() {
		panic("htm: commit outside a transaction")
	}
	if c.Depth() > 1 {
		lat := m.VM.CommitNested(m, c)
		top := len(c.Frames) - 1
		// A closed nested commit keeps its children's compensations
		// pending on the parent.
		if len(c.Frames[top].comps) > 0 {
			c.Frames[top-1].comps = append(c.Frames[top-1].comps, c.Frames[top].comps...)
		}
		c.Frames = c.Frames[:top]
		m.advanceCommit(c, lat)
		return
	}

	if m.modeOf(c) == ModeLazy {
		if !m.lazyArbitrate(c) {
			return // waiting for the token or for eager conflicts to clear
		}
		m.killLazyReaders(c)
		mergeLat := m.cfg.LazyArbitration + m.VM.CommitOuter(m, c)
		m.commitBusyUntil = m.now + mergeLat
		c.Breakdown.Add(stats.Committing, mergeLat)
		m.sealCommit(c)
		c.PC += c.commitAdvance
		m.requeue(c, mergeLat)
		return
	}

	// An eager commit makes this transaction's writes durable, so lazy
	// transactions that speculatively read (or wrote) those lines can no
	// longer serialize and must abort — including ones whose cached
	// copies were already evicted, which invalidation-based detection
	// cannot see.
	m.killLazyReaders(c)
	lat := m.VM.CommitOuter(m, c)
	if lat == 0 {
		lat = 1
	}
	c.attemptCyc += lat
	m.sealCommit(c)
	c.PC += c.commitAdvance
	m.requeue(c, lat)
}

// advanceCommit charges lat, skips past the commit op (and any
// compensation block) and reschedules.
func (m *Machine) advanceCommit(c *Core, lat sim.Cycles) {
	if lat == 0 {
		lat = 1
	}
	m.chargeTx(c, lat)
	c.PC += c.commitAdvance
	m.requeue(c, lat)
}

// doCommitOpen publishes the innermost frame immediately (open nesting):
// the version manager makes the frame's effects durable, the parent's
// signatures are restored from the frame's begin snapshot (releasing the
// child's isolation), and the compensation block is registered with the
// parent. An outermost open commit is an ordinary commit whose
// compensation can never run.
func (m *Machine) doCommitOpen(c *Core, compLen int) {
	if !c.InTx() {
		panic("htm: open commit outside a transaction")
	}
	if c.Depth() == 1 {
		m.doCommit(c)
		return
	}
	lat := m.VM.CommitOpen(m, c)
	top := len(c.Frames) - 1
	frame := c.Frames[top]
	c.ReadSig.CopyFrom(frame.savedReadSig)
	c.WriteSig.CopyFrom(frame.savedWriteSig)
	c.readSet = frame.savedReadSet
	c.writeSet = frame.savedWriteSet
	parent := &c.Frames[top-1]
	parent.comps = append(parent.comps, frame.comps...)
	if compLen > 0 {
		parent.comps = append(parent.comps, compRange{pc: c.PC + 1, n: compLen})
	}
	c.Frames = c.Frames[:top]
	m.advanceCommit(c, lat)
}

// killLazyReaders dooms every active lazy transaction whose read or
// write signature intersects committer's write signature (committer
// wins).
func (m *Machine) killLazyReaders(committer *Core) {
	for _, h := range m.Cores {
		if h == committer || m.modeOf(h) != ModeLazy || h.abortPending {
			continue
		}
		if h.ID == m.tokenCore {
			// The serialization-token holder is irrevocable; it was the
			// only transaction allowed to run, so a committer here can only
			// be the holder itself (already excluded) or a non-parked core
			// draining a pre-grant commit — which must not kill the holder.
			continue
		}
		if committer.WriteSig.Intersects(h.ReadSig) || committer.WriteSig.Intersects(h.WriteSig) {
			// Attribute the kill to a concrete line when the precise sets
			// share one (the deterministic minimum common line); a doom
			// with no witness is a pure signature false positive. The
			// witness is observational only, so it is skipped entirely
			// when nothing will consume it.
			line, precise := forensics.NoLine, false
			if m.fxWants() {
				line, precise = commitWitness(committer, h)
			}
			h.doomBy(committer.ID, committer.txSite(), line, forensics.CauseCommitKill, true, precise)
		}
	}
}

// lazyArbitrate acquires the commit token and validates the committer
// against active eager transactions (whose isolation must be respected).
// It returns false after scheduling a retry when the commit cannot
// proceed yet.
func (m *Machine) lazyArbitrate(c *Core) bool {
	if m.now < m.commitBusyUntil {
		wait := m.commitBusyUntil - m.now
		c.Breakdown.Add(stats.Committing, wait)
		c.status = statusLazyCommitWait
		m.heap.Push(m.commitBusyUntil, c.ID)
		return false
	}
	for _, h := range m.Cores {
		if h == c || m.modeOf(h) != ModeEager {
			continue
		}
		if c.WriteSig.Intersects(h.ReadSig) || c.WriteSig.Intersects(h.WriteSig) {
			c.Breakdown.Add(stats.Committing, m.cfg.RetryInterval)
			c.Counters.NACKsReceived++
			h.Counters.NACKsSent++
			if m.fx.Enabled() {
				// A commit-time validation stall is a signature decision
				// like any other NACK: classify it against the precise
				// sets and attribute the retry interval to the witness
				// line.
				line, precise := commitWitness(c, h)
				ev := forensics.NACKEvent{
					Cycle: m.now, Requester: c.ID, Holder: h.ID,
					Line: line, Kind: forensics.Write,
					Cause: forensics.CauseLazyValidation,
					ReqSite: c.txSite(), HoldSite: h.txSite(),
					SigHit: true, Precise: precise,
					Stall: m.cfg.RetryInterval,
				}
				if line != forensics.NoLine {
					ev.Sharers = m.Dir.HolderCount(line)
				}
				if !precise {
					ev.AliasRate = maxf(h.WriteSig.AliasRate(), h.ReadSig.AliasRate())
				}
				m.fx.NACK(ev)
			}
			c.status = statusLazyCommitWait
			m.heap.Push(m.now+m.cfg.RetryInterval, c.ID)
			return false
		}
	}
	return true
}

// sealCommit finalizes a committed outermost transaction: deferred
// attempt cycles become Trans, overflow statistics are recorded, and all
// transactional state is released.
func (m *Machine) sealCommit(c *Core) {
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.Commit, Other: -1, Info: uint64(c.Frames[0].Site)})
	if m.obs != nil {
		m.obs.onCommit(m, c)
	}
	m.closeIsolationWindow(c)
	c.Breakdown.Add(stats.Trans, c.attemptCyc)
	c.Counters.TxCommitted++
	if c.overflowedL1 {
		c.Counters.CacheOverflowTx++
	}
	c.Frames = c.Frames[:len(c.Frames)-1]
	c.clearTxState()
	c.hasTimestamp = false
	c.consecAborts = 0
	c.escalated = false
	c.lastCommitAt = m.now
	if m.tokenCore == c.ID {
		m.releaseToken(c)
	}
}

// startAbort begins the roll-back window: the scheme undoes the
// transaction's effects on memory now, but the core's isolation
// (signatures) stays in force until the window closes — the mechanism
// behind the repair pathology of Figure 1. lead is latency already
// charged by the caller (the NACKed request that triggered the abort)
// that still has to elapse before the roll-back starts.
func (m *Machine) startAbort(c *Core, lead sim.Cycles) {
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.Abort, Other: -1, Info: uint64(c.Frames[0].Site)})
	if m.obs != nil {
		m.obs.onAbort(m, c)
	}
	m.fxAbort(c) // reads attemptCyc and the doom provenance before both reset
	c.Counters.TxAborted++
	if c.overflowedL1 {
		c.Counters.CacheOverflowTx++
	}
	lat := m.VM.Abort(m, c)
	if lat == 0 {
		lat = 1
	}
	c.Breakdown.Add(stats.Wasted, c.attemptCyc)
	c.attemptCyc = 0
	c.Breakdown.Add(stats.Aborting, lat)
	c.status = statusAborting
	c.abortEndAt = m.now + lead + lat
	m.heap.Push(c.abortEndAt, c.ID)
}

// finishAbort closes the roll-back window: isolation is released, the
// register checkpoint and PC are restored to the outermost begin — via
// the compensating actions of any open-nested children that committed
// inside the doomed transaction — and a randomized exponential backoff
// delays the retry.
func (m *Machine) finishAbort(c *Core) {
	// Isolation was held through the whole roll-back window (the repair
	// pathology): it releases only now.
	m.closeIsolationWindow(c)
	outer := c.Frames[0]
	var comps []compRange
	for _, f := range c.Frames {
		comps = append(comps, f.comps...)
	}
	c.Regs = outer.Regs
	c.PC = outer.BeginPC
	c.clearTxState()
	c.status = statusRunning
	c.consecAborts++
	if len(comps) > 0 {
		// Most recent compensation first (reverse registration order).
		for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
			comps[i], comps[j] = comps[j], comps[i]
		}
		c.afterCompPC = outer.BeginPC
		c.compQueue = comps[1:]
		c.PC = comps[0].pc
		c.compRemaining = comps[0].n
	}

	// Forward-progress escalation (progress.go): a struggle that reaches
	// BoostAborts consecutive aborts counts one starvation escalation and
	// enters boosted backoff; past HopelessAborts (or StarveThreshold
	// cycles of age) it competes for the serialization token, and a grant
	// retries immediately — the token already cleared the field.
	if m.cfg.BoostAborts > 0 && c.consecAborts >= m.cfg.BoostAborts && !c.escalated {
		c.escalated = true
		c.Counters.StarveEscalations++
		m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.StarveEscalate,
			Other: -1, Info: uint64(c.consecAborts)})
	}
	m.maybeEscalate(c)
	if m.tokenCore == c.ID {
		m.heap.Push(m.now+1, c.ID)
		return
	}
	window := backoffWindow(m.cfg.BackoffBase, m.cfg.BackoffMax, c.consecAborts, m.cfg.BoostAborts)
	backoff := window/2 + sim.Cycles(c.RNG.Uint64n(uint64(window/2+1)))
	c.Breakdown.Add(stats.Backoff, backoff)
	m.heap.Push(m.now+backoff, c.ID)
}

// doBarrier blocks the core until every core reaches barrier id, then
// releases all of them on the next cycle.
func (m *Machine) doBarrier(c *Core, id uint32) {
	bs := m.barriers[id]
	if bs == nil {
		bs = &barrierState{}
		m.barriers[id] = bs
	}
	bs.arrived++
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.BarrierArrive, Other: -1, Info: uint64(id)})
	if bs.arrived < m.participants {
		c.status = statusBarrier
		c.barrierID = id
		c.barrierAt = m.now
		bs.waiting = append(bs.waiting, c.ID)
		return
	}
	// Last arriver: release everyone at now+1.
	m.tracer.Record(trace.Event{Cycle: m.now, Core: c.ID, Kind: trace.BarrierRelease, Other: -1, Info: uint64(id)})
	release := m.now + 1
	for _, wid := range bs.waiting {
		w := m.Cores[wid]
		w.Breakdown.Add(stats.Barrier, release-w.barrierAt)
		w.status = statusRunning
		w.PC++
		if w.atEnd() {
			w.status = statusFinished
			w.finishedAt = release
			m.finished++
		} else {
			m.heap.Push(release, w.ID)
		}
	}
	c.Breakdown.Add(stats.Barrier, 1)
	c.PC++
	m.requeue(c, 1)
	delete(m.barriers, id)
}

// closeIsolationWindow accounts a finished attempt's writer isolation
// window (Section I: the key factor of contention the paper optimizes).
func (m *Machine) closeIsolationWindow(c *Core) {
	if c.windowStart == 0 {
		return
	}
	if m.now > c.windowStart {
		c.Counters.IsoWindowCycles += m.now - c.windowStart
	}
	c.Counters.IsoWindows++
	c.windowStart = 0
}
