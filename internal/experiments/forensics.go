package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/forensics"
	"suvtm/internal/stats"
)

// ForensicsOptions tunes a RunForensics comparison.
type ForensicsOptions struct {
	Cores int     // 0 = paper default (16)
	Seed  uint64  // 0 = 1
	Scale float64 // 0 = 1.0
	TopK  int     // hot-line/hot-site table depth (0 = forensics default)
	Batch BatchOptions
}

// ForensicsCompare holds one app's conflict forensics across schemes —
// the figure the paper never had: where SUV's redirect-back wins (or
// loses) cycles relative to LogTM-SE's log walk, split into true
// sharing vs signature aliasing, per scheme.
type ForensicsCompare struct {
	App     string
	Schemes []Scheme
	Reports map[Scheme]*forensics.Report
}

// RunForensics runs app under every scheme with the conflict-provenance
// collector attached and returns the per-scheme reports. Runs are
// deterministic, so the comparison is replay-stable.
func RunForensics(app string, schemes []Scheme, opt ForensicsOptions) (*ForensicsCompare, error) {
	if len(schemes) == 0 {
		schemes = append(append([]Scheme{}, Fig6Schemes...), Fig9Schemes...)
	}
	specs := make([]Spec, len(schemes))
	for i, s := range schemes {
		specs[i] = Spec{
			App: app, Scheme: s,
			Cores: opt.Cores, Seed: opt.Seed, Scale: opt.Scale,
			Forensics: true, ForensicsTopK: opt.TopK,
		}
	}
	outs, err := RunManyWith(specs, opt.Batch)
	if err != nil {
		return nil, err
	}
	cmp := &ForensicsCompare{
		App:     app,
		Schemes: append([]Scheme(nil), schemes...),
		Reports: make(map[Scheme]*forensics.Report, len(schemes)),
	}
	for i, out := range outs {
		cmp.Reports[schemes[i]] = out.Forensics
	}
	return cmp, nil
}

// Render formats the comparison: the per-scheme classification table,
// then each scheme's hottest line and site.
func (f *ForensicsCompare) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Conflict forensics: %s\n\n", f.App)

	tab := stats.NewTable("scheme", "nacks", "aborts", "true conf", "false pos",
		"fp rate", "pred alias", "stall cyc", "wasted cyc", "cascades")
	for _, s := range f.Schemes {
		r := f.Reports[s]
		if r == nil {
			tab.AddRow(string(s), "-", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		sum := &r.Summary
		tab.AddRow(string(s),
			fmt.Sprint(sum.NACKs), fmt.Sprint(sum.Aborts),
			fmt.Sprint(sum.TrueConflicts), fmt.Sprint(sum.FalsePositives),
			stats.Pct(sum.FalsePositiveRate), stats.Pct(sum.PredictedAliasRate),
			fmt.Sprint(sum.StallCycles), fmt.Sprint(sum.WastedCycles),
			fmt.Sprint(sum.Cascades))
	}
	sb.WriteString(tab.String())

	sb.WriteString("\nHottest contention points:\n")
	tab2 := stats.NewTable("scheme", "hot line", "line cyc", "sharers", "hot site", "site cyc", "friendly fire")
	for _, s := range f.Schemes {
		r := f.Reports[s]
		if r == nil {
			continue
		}
		line, lcyc, sharers := "-", "-", "-"
		if len(r.Lines) > 0 {
			l := r.Lines[0]
			line = fmt.Sprintf("%#x", l.Line)
			lcyc = fmt.Sprint(l.StallCycles + l.WastedCycles)
			sharers = fmt.Sprint(l.MaxSharers)
		}
		site, scyc := "-", "-"
		if len(r.Sites) > 0 {
			st := r.Sites[0]
			site = fmt.Sprint(st.Site)
			scyc = fmt.Sprint(st.StallCycles + st.WastedCycles)
		}
		tab2.AddRow(string(s), line, lcyc, sharers, site, scyc,
			fmt.Sprint(r.Summary.FriendlyFire))
	}
	sb.WriteString(tab2.String())
	return sb.String()
}
