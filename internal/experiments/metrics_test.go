package experiments

import (
	"strings"
	"testing"
)

// TestMetricsObservability runs one contended workload with every
// observability output enabled and checks the acceptance shape: a
// snapshot whose counters agree with the engine's own, one series row
// per sampling interval, and a Chrome trace with at least one complete
// span per committing core.
func TestMetricsObservability(t *testing.T) {
	spec := Spec{
		App: "counter", Scheme: SUVTM, Cores: 4, Scale: 0.3,
		SampleInterval: 1000, ChromeTrace: true, Metrics: true,
	}
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	snap := out.Metrics
	if snap == nil {
		t.Fatal("no snapshot")
	}
	if snap.Counters["tx.commits"] != out.Counters.TxCommitted {
		t.Fatalf("snapshot commits = %d, engine counted %d",
			snap.Counters["tx.commits"], out.Counters.TxCommitted)
	}
	if snap.Counters["tx.aborts"] != out.Counters.TxAborted {
		t.Fatalf("snapshot aborts = %d, engine counted %d",
			snap.Counters["tx.aborts"], out.Counters.TxAborted)
	}
	if snap.Meta["app"] != "counter" || snap.Meta["scheme"] != "SUV-TM" {
		t.Fatalf("meta = %v", snap.Meta)
	}
	var hasDuration bool
	for _, h := range snap.Histograms {
		if h.Name == "tx.duration" {
			hasDuration = true
			if h.Count != out.Counters.TxCommitted {
				t.Fatalf("tx.duration samples = %d, want %d commits", h.Count, out.Counters.TxCommitted)
			}
			if h.Min == 0 || h.Max < h.Min {
				t.Fatalf("tx.duration range [%d, %d]", h.Min, h.Max)
			}
		}
	}
	if !hasDuration {
		t.Fatal("tx.duration histogram missing")
	}
	if len(snap.Breakouts["dir.mix"]) == 0 || len(snap.Breakouts["mesh.links"]) == 0 {
		t.Fatalf("breakouts = %v", snap.Breakouts)
	}

	series := out.Series
	if series == nil || len(series.Rows) == 0 {
		t.Fatal("no series rows")
	}
	fullIntervals := int(out.Cycles / 1000)
	wantRows := fullIntervals
	if out.Cycles%1000 != 0 {
		wantRows++ // trailing partial interval
	}
	if len(series.Rows) != wantRows {
		t.Fatalf("series rows = %d, want %d for %d cycles at interval 1000",
			len(series.Rows), wantRows, out.Cycles)
	}
	var commits float64
	idx := -1
	for i, c := range series.Columns {
		if c == "tx.commits" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("columns = %v", series.Columns)
	}
	for _, row := range series.Rows {
		commits += row[idx]
	}
	if uint64(commits) != out.Counters.TxCommitted {
		t.Fatalf("per-interval commit deltas sum to %v, want %d", commits, out.Counters.TxCommitted)
	}

	ct := out.Chrome
	if ct == nil {
		t.Fatal("no chrome trace")
	}
	if ct.Spans() < int(out.Counters.TxCommitted) {
		t.Fatalf("chrome spans = %d, want at least %d (one per committed attempt)",
			ct.Spans(), out.Counters.TxCommitted)
	}
	var sb strings.Builder
	if err := ct.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		want := `"tid":` + string(rune('0'+core))
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("no trace events on core %d's track", core)
		}
	}
}

// TestMetricsAreObservationOnly re-runs a workload with and without the
// full observability stack and requires identical simulated cycles and
// counters: enabling metrics must never perturb the simulation.
func TestMetricsAreObservationOnly(t *testing.T) {
	base := Spec{App: "bank", Scheme: LogTMSE, Cores: 4, Scale: 0.3}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	probed := base
	probed.Metrics = true
	probed.SampleInterval = 500
	probed.ChromeTrace = true
	traced, err := Run(probed)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != traced.Cycles {
		t.Fatalf("metrics changed the simulation: %d vs %d cycles", plain.Cycles, traced.Cycles)
	}
	if plain.Counters != traced.Counters {
		t.Fatalf("metrics changed the counters:\n%+v\n%+v", plain.Counters, traced.Counters)
	}
}
