package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/htm"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
)

// Fig7Sizes are the first-level redirect-table sizes swept in Figure 7.
var Fig7Sizes = []int{64, 128, 256, 512, 1024, 2048}

// Fig8Sizes are the second-level table sizes swept in Figure 8(a).
var Fig8Sizes = []int{1024, 2048, 4096, 8192, 16384, 32768}

// Fig8Latencies are the second-level access latencies swept in Figure 8(b).
var Fig8Latencies = []sim.Cycles{0, 5, 10, 15, 20, 30}

// SweepPoint is one configuration of a sensitivity sweep, aggregated
// over the sweep's applications.
type SweepPoint struct {
	Param       int
	TotalCycles sim.Cycles
	MissRate    float64 // first-level redirect-table miss rate
	PerApp      map[string]*Outcome
}

// Sweep holds a parameter sweep's results in parameter order.
type Sweep struct {
	Name   string
	Apps   []string
	Points []SweepPoint
}

// runSweep executes SUV-TM over the apps for every parameter value.
func runSweep(opts Options, name string, params []int, tweak func(*htm.Config, int)) (*Sweep, error) {
	apps := opts.apps()
	var specs []Spec
	for _, p := range params {
		p := p
		for _, app := range apps {
			specs = append(specs, Spec{
				App: app, Scheme: SUVTM,
				Cores: opts.Cores, Seed: opts.Seed, Scale: opts.Scale,
				Tweak: func(cfg *htm.Config) { tweak(cfg, p) },
			})
		}
	}
	outcomes, err := RunManyWith(specs, opts.batch())
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Name: name, Apps: apps}
	i := 0
	for _, p := range params {
		pt := SweepPoint{Param: p, PerApp: make(map[string]*Outcome, len(apps))}
		var lookups, misses uint64
		for range apps {
			out := outcomes[i]
			i++
			if out.CheckErr != nil {
				return nil, fmt.Errorf("%s (param %d): %w", out.Spec.App, p, out.CheckErr)
			}
			pt.PerApp[out.Spec.App] = out
			pt.TotalCycles += out.Cycles
			lookups += out.Counters.RedirectLookups
			misses += out.Counters.RedirectLookups - out.Counters.RedirectL1Hits
		}
		if lookups > 0 {
			pt.MissRate = float64(misses) / float64(lookups)
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw, nil
}

// RunFig7 sweeps the first-level redirect-table size: Figure 7(a) plots
// the miss rate, Figure 7(b) the execution time. The paper finds a
// 512-entry table sufficient (no improvement beyond it).
func RunFig7(opts Options) (*Sweep, error) {
	return runSweep(opts, "Figure 7: first-level redirect-table size", Fig7Sizes,
		func(cfg *htm.Config, entries int) { cfg.Redirect.L1Entries = entries })
}

// RunFig8Size sweeps the shared second-level table size (Figure 8(a):
// gains plateau beyond 16K entries).
func RunFig8Size(opts Options) (*Sweep, error) {
	return runSweep(opts, "Figure 8(a): second-level redirect-table size", Fig8Sizes,
		func(cfg *htm.Config, entries int) { cfg.Redirect.L2Entries = entries })
}

// RunFig8Latency sweeps the second-level table access latency
// (Figure 8(b): execution time rises sharply past 10 cycles, while a
// zero-latency table helps by less than 5%).
func RunFig8Latency(opts Options) (*Sweep, error) {
	params := make([]int, len(Fig8Latencies))
	for i, l := range Fig8Latencies {
		params[i] = int(l)
	}
	return runSweep(opts, "Figure 8(b): second-level redirect-table latency", params,
		func(cfg *htm.Config, lat int) { cfg.Redirect.L2Latency = sim.Cycles(lat) })
}

// Render prints the sweep as parameter vs normalized execution time and
// miss rate (normalized to the first point), followed by the ASCII chart.
func (s *Sweep) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (apps: %s)\n", s.Name, strings.Join(s.Apps, ", "))
	tab := stats.NewTable("param", "total cycles", "norm time", "L1-table miss rate")
	base := float64(s.Points[0].TotalCycles)
	for _, pt := range s.Points {
		tab.AddRow(
			fmt.Sprintf("%d", pt.Param),
			fmt.Sprintf("%d", pt.TotalCycles),
			stats.F3(float64(pt.TotalCycles)/base),
			stats.Pct(pt.MissRate),
		)
	}
	sb.WriteString(tab.String())
	sb.WriteByte('\n')
	sb.WriteString(s.RenderChart(10))
	return sb.String()
}

// NormTime returns each point's total cycles normalized to the first.
func (s *Sweep) NormTime() []float64 {
	out := make([]float64, len(s.Points))
	base := float64(s.Points[0].TotalCycles)
	for i, pt := range s.Points {
		out[i] = float64(pt.TotalCycles) / base
	}
	return out
}

// MissRates returns the per-point first-level table miss rates.
func (s *Sweep) MissRates() []float64 {
	out := make([]float64, len(s.Points))
	for i, pt := range s.Points {
		out[i] = pt.MissRate
	}
	return out
}
