package experiments

import (
	"bytes"
	"strings"
	"testing"

	"suvtm/internal/htm"
)

// TestRunSeeds checks per-seed stats aggregation.
func TestRunSeeds(t *testing.T) {
	st, err := RunSeeds(Spec{App: "counter", Scheme: SUVTM, Cores: 4, Scale: 0.2}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cycles) != 3 {
		t.Fatalf("cycles = %v", st.Cycles)
	}
	if st.MeanCycles() <= 0 {
		t.Fatal("zero mean")
	}
	if st.CV() < 0 || st.CV() > 1 {
		t.Fatalf("implausible CV %v", st.CV())
	}
	// Different seeds must actually change the interleaving.
	if st.Cycles[0] == st.Cycles[1] && st.Cycles[1] == st.Cycles[2] {
		t.Fatal("seeds had no effect")
	}
}

// TestSeedStudyStable: the SUV-vs-LogTM win must hold across seeds, not
// just at seed 1.
func TestSeedStudyStable(t *testing.T) {
	study, err := RunSeedStudy(Options{Scale: 0.15, Apps: []string{"intruder", "yada"}},
		LogTMSE, SUVTM, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	mean, sd := study.MeanSpeedup()
	if mean <= 0 {
		t.Fatalf("SUV-TM does not beat LogTM-SE across seeds: mean %.1f%% (sd %.1f%%)", 100*mean, 100*sd)
	}
	out := study.Render()
	if !strings.Contains(out, "mean speedup") {
		t.Fatalf("render missing summary:\n%s", out)
	}
}

// TestMatrixCSV checks the tidy export round-trips structurally.
func TestMatrixCSV(t *testing.T) {
	mtx, err := RunMatrix(Options{Scale: 0.1, Apps: []string{"counter", "bank"}, Cores: 4},
		[]Scheme{LogTMSE, SUVTM})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mtx.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2*2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "app,scheme,cycles,norm_time") {
		t.Fatalf("header = %s", lines[0])
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != strings.Count(lines[0], ",") {
			t.Fatalf("ragged row: %s", l)
		}
	}
}

// TestSweepCSV checks the sweep export.
func TestSweepCSV(t *testing.T) {
	sw, err := runSweep(Options{Scale: 0.05, Apps: []string{"counter"}, Cores: 4},
		"test", []int{64, 128}, func(cfg *htm.Config, entries int) { cfg.Redirect.L1Entries = entries })
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("csv lines = %d:\n%s", got, buf.String())
	}
}
