package experiments

import (
	"strings"
	"testing"
)

// TestRenderBars checks the ASCII Figure 6 rendition: bars exist for
// every (app, scheme), the baseline bar is full width, and faster
// schemes get proportionally shorter bars.
func TestRenderBars(t *testing.T) {
	mtx, err := RunMatrix(Options{Scale: 0.15, Apps: []string{"counter"}, Cores: 8},
		[]Scheme{LogTMSE, SUVTM})
	if err != nil {
		t.Fatal(err)
	}
	out := mtx.RenderBars("test", 40)
	lines := strings.Split(out, "\n")
	var bars []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			bars = append(bars, l)
		}
	}
	if len(bars) != 2 {
		t.Fatalf("bars = %d:\n%s", len(bars), out)
	}
	width := func(l string) int {
		open := strings.Index(l, "|")
		close := strings.LastIndex(l, "|")
		return close - open - 1
	}
	if width(bars[0]) != 40 {
		t.Fatalf("baseline bar width = %d, want 40:\n%s", width(bars[0]), bars[0])
	}
	base := mtx.Get("counter", LogTMSE)
	mine := mtx.Get("counter", SUVTM)
	wantShorter := mine.Cycles < base.Cycles
	if wantShorter && width(bars[1]) >= width(bars[0]) {
		t.Fatalf("faster scheme's bar not shorter:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Fatal("missing legend")
	}
}

// TestRenderBarsNarrow exercises the rounding guard at tiny widths.
func TestRenderBarsNarrow(t *testing.T) {
	mtx, err := RunMatrix(Options{Scale: 0.05, Apps: []string{"private"}, Cores: 2},
		[]Scheme{SUVTM})
	if err != nil {
		t.Fatal(err)
	}
	out := mtx.RenderBars("narrow", 1)
	if !strings.Contains(out, "|") {
		t.Fatalf("no bar rendered:\n%s", out)
	}
}
