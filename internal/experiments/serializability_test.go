package experiments

import (
	"testing"

	"suvtm/internal/htm"
)

// allSchemes lists every scheme under test.
var allSchemes = []Scheme{LogTMSE, FasTM, SUVTM, DynTM, DynTMSUV}

// TestSerializabilityMicro hammers the micro-workloads and the
// high-contention STAMP parameter variants with several seeds: the
// generators' sum invariants fail on any lost or phantom update.
func TestSerializabilityMicro(t *testing.T) {
	for _, app := range []string{"counter", "bank", "list", "kmeans-high", "vacation-high"} {
		for _, s := range allSchemes {
			for seed := uint64(1); seed <= 3; seed++ {
				out, err := Run(Spec{App: app, Scheme: s, Cores: 16, Scale: 1, Seed: seed})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", app, s, seed, err)
				}
				if out.CheckErr != nil {
					t.Errorf("%s/%s seed %d: %v (aborts=%d)", app, s, seed, out.CheckErr, out.Counters.TxAborted)
				}
			}
		}
	}
}

// TestSerializabilityStamp runs every STAMP-analogue application under
// every scheme at reduced scale and checks the generator invariants.
func TestSerializabilityStamp(t *testing.T) {
	scale := 0.3
	if testing.Short() {
		scale = 0.1
	}
	var specs []Spec
	for _, app := range StampAppsForTest() {
		for _, s := range allSchemes {
			specs = append(specs, Spec{App: app, Scheme: s, Cores: 16, Scale: scale})
		}
	}
	outs, err := RunMany(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outs {
		if out.CheckErr != nil {
			t.Errorf("%s under %s: %v", out.Spec.App, out.Spec.Scheme, out.CheckErr)
		}
	}
}

// TestSerializabilityCoarseFullScale is the regression test for the
// isolation bugs found during bring-up (stale directory state after
// undo-log restores; premature lazy dooms): the coarse-grained apps at
// full scale with 16 cores.
func TestSerializabilityCoarseFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale coarse apps are slow")
	}
	for _, app := range []string{"labyrinth", "yada", "bayes"} {
		for _, s := range allSchemes {
			out, err := Run(Spec{App: app, Scheme: s, Cores: 16, Scale: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", app, s, err)
			}
			if out.CheckErr != nil {
				t.Errorf("%s/%s: %v", app, s, out.CheckErr)
			}
		}
	}
}

// TestDynTMCoarseNoLivelock is the regression test for the lazy-overflow
// livelock: yada and labyrinth must finish under both DynTM variants
// within a bounded cycle budget.
func TestDynTMCoarseNoLivelock(t *testing.T) {
	for _, app := range []string{"yada", "labyrinth"} {
		for _, s := range []Scheme{DynTM, DynTMSUV} {
			out, err := Run(Spec{App: app, Scheme: s, Cores: 16, Scale: 0.2,
				Tweak: func(cfg *htm.Config) { cfg.MaxCycles = 80_000_000 }})
			if err != nil {
				t.Fatalf("%s/%s: %v", app, s, err)
			}
			if out.CheckErr != nil {
				t.Errorf("%s/%s: %v", app, s, out.CheckErr)
			}
		}
	}
}

// TestDeterministicAcrossRuns: the same spec must give bit-identical
// results regardless of scheduling of other goroutines.
func TestDeterministicAcrossRuns(t *testing.T) {
	spec := Spec{App: "intruder", Scheme: SUVTM, Cores: 16, Scale: 0.2, Seed: 7}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Breakdown != b.Breakdown || a.Counters != b.Counters {
		t.Fatalf("non-deterministic results: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// StampAppsForTest returns the STAMP-analogue app list (indirection so
// the test does not import workload).
func StampAppsForTest() []string {
	return []string{"bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada"}
}
