package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/htm"
	"suvtm/internal/stats"
)

// Ablation studies for the design choices DESIGN.md calls out: the
// redirect-back optimization (Section IV-A), the Stall conflict policy
// (Section V-A) and the 2 Kbit signature sizing (Table III). These are
// not paper figures; they quantify why the paper's choices are what they
// are.

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Label    string
	Outcomes map[string]*Outcome // per app
}

// Ablation is a rendered study over a set of apps.
type Ablation struct {
	Name string
	Apps []string
	Rows []AblationRow
}

// runAblation simulates each app under each labelled configuration.
func runAblation(opts Options, name string, scheme Scheme, configs []struct {
	label string
	tweak func(*htm.Config)
}) (*Ablation, error) {
	apps := opts.apps()
	var specs []Spec
	for _, c := range configs {
		for _, app := range apps {
			specs = append(specs, Spec{
				App: app, Scheme: scheme,
				Cores: opts.Cores, Seed: opts.Seed, Scale: opts.Scale,
				Tweak: c.tweak,
			})
		}
	}
	outs, err := RunManyWith(specs, opts.batch())
	if err != nil {
		return nil, err
	}
	ab := &Ablation{Name: name, Apps: apps}
	i := 0
	for _, c := range configs {
		row := AblationRow{Label: c.label, Outcomes: make(map[string]*Outcome, len(apps))}
		for _, app := range apps {
			out := outs[i]
			i++
			if out.CheckErr != nil {
				return nil, fmt.Errorf("%s (%s): %w", app, c.label, out.CheckErr)
			}
			row.Outcomes[app] = out
		}
		ab.Rows = append(ab.Rows, row)
	}
	return ab, nil
}

// TotalCycles sums a row's cycles over all apps.
func (r AblationRow) TotalCycles() uint64 {
	var t uint64
	//suv:orderinsensitive unsigned-integer addition commutes bit-exactly
	for _, o := range r.Outcomes {
		t += o.Cycles
	}
	return t
}

// RunAblationRedirectBack compares SUV-TM with and without the
// redirect-back optimization: without it, re-redirected lines chain to
// fresh pool lines forever, so the committed entry count and preserved
// pool keep growing and the tables thrash.
func RunAblationRedirectBack(opts Options) (*Ablation, error) {
	return runAblation(opts, "Ablation: redirect-back optimization (SUV-TM)", SUVTM,
		[]struct {
			label string
			tweak func(*htm.Config)
		}{
			{"redirect-back ON (paper)", nil},
			{"redirect-back OFF", func(cfg *htm.Config) { cfg.Redirect.DisableRedirectBack = true }},
		})
}

// RunAblationPolicy compares the Stall policy against OlderWins (abort
// the younger holder) under SUV-TM.
func RunAblationPolicy(opts Options) (*Ablation, error) {
	return runAblation(opts, "Ablation: conflict-resolution policy (SUV-TM)", SUVTM,
		[]struct {
			label string
			tweak func(*htm.Config)
		}{
			{"Stall (paper)", nil},
			{"OlderWins", func(cfg *htm.Config) { cfg.Policy = htm.PolicyOlderWins }},
		})
}

// SigBitsSweep is the signature-size ablation domain.
var SigBitsSweep = []uint32{256, 512, 1024, 2048, 4096}

// RunAblationSigBits sweeps the Bloom-signature width: small signatures
// alias heavily, turning false positives into false conflicts.
func RunAblationSigBits(opts Options) (*Ablation, error) {
	var configs []struct {
		label string
		tweak func(*htm.Config)
	}
	for _, bits := range SigBitsSweep {
		bits := bits
		label := fmt.Sprintf("%d-bit signatures", bits)
		if bits == 2048 {
			label += " (paper)"
		}
		configs = append(configs, struct {
			label string
			tweak func(*htm.Config)
		}{label, func(cfg *htm.Config) { cfg.SigBits = bits }})
	}
	return runAblation(opts, "Ablation: signature size (SUV-TM)", SUVTM, configs)
}

// Render prints the study: per configuration, total cycles (normalized
// to the first row), aborts, false-positive conflicts and redirect-state
// footprint.
func (a *Ablation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (apps: %s)\n", a.Name, strings.Join(a.Apps, ", "))
	tab := stats.NewTable("configuration", "total cycles", "norm", "aborts", "false-pos", "entries", "pool pages")
	base := float64(a.Rows[0].TotalCycles())
	for _, row := range a.Rows {
		var aborts, falsePos, entries, pages uint64
		//suv:orderinsensitive unsigned-integer addition commutes bit-exactly
		for _, o := range row.Outcomes {
			aborts += o.Counters.TxAborted
			falsePos += o.Counters.FalsePositive
			entries += uint64(o.RedirectEn)
			pages += o.PoolPages
		}
		tab.AddRow(row.Label,
			fmt.Sprintf("%d", row.TotalCycles()),
			stats.F3(float64(row.TotalCycles())/base),
			fmt.Sprintf("%d", aborts),
			fmt.Sprintf("%d", falsePos),
			fmt.Sprintf("%d", entries),
			fmt.Sprintf("%d", pages))
	}
	sb.WriteString(tab.String())
	return sb.String()
}
