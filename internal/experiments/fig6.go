package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/stats"
)

// Fig6 is the paper's headline experiment: the execution-time breakdown
// of the eight STAMP-analogue applications under LogTM-SE (L), FasTM (F)
// and SUV-TM (S). The paper reports SUV-TM outperforming LogTM-SE and
// FasTM by 56% and 9% over all applications, and by 95% and 12% over the
// five high-contention applications.
type Fig6 struct {
	*Matrix
}

// PaperFig6 records the paper's headline speedups for EXPERIMENTS.md
// comparisons.
var PaperFig6 = struct {
	OverLogTMAll, OverFasTMAll   float64
	OverLogTMHigh, OverFasTMHigh float64
}{0.56, 0.09, 0.95, 0.12}

// RunFig6 executes the Figure 6 matrix.
func RunFig6(opts Options) (*Fig6, error) {
	mtx, err := RunMatrix(opts, Fig6Schemes)
	if err != nil {
		return nil, err
	}
	return &Fig6{Matrix: mtx}, nil
}

// Render prints the normalized breakdown and the headline speedup
// summary next to the paper's numbers.
func (f *Fig6) Render() string {
	var sb strings.Builder
	sb.WriteString(f.RenderBreakdown("Figure 6: execution-time breakdown (normalized to LogTM-SE)"))
	sb.WriteByte('\n')
	sb.WriteString(f.RenderBars("Figure 6 (stacked bars, width = time normalized to LogTM-SE):", 60))
	sb.WriteString("\nHeadline speedups (geometric mean of cycle ratios - 1):\n")
	tab := stats.NewTable("comparison", "scope", "measured", "paper")
	tab.AddRow("SUV-TM vs LogTM-SE", "all apps", stats.Pct(f.MeanSpeedup(LogTMSE, SUVTM, false)), stats.Pct(PaperFig6.OverLogTMAll))
	tab.AddRow("SUV-TM vs FasTM", "all apps", stats.Pct(f.MeanSpeedup(FasTM, SUVTM, false)), stats.Pct(PaperFig6.OverFasTMAll))
	tab.AddRow("SUV-TM vs LogTM-SE", "high-contention 5", stats.Pct(f.MeanSpeedup(LogTMSE, SUVTM, true)), stats.Pct(PaperFig6.OverLogTMHigh))
	tab.AddRow("SUV-TM vs FasTM", "high-contention 5", stats.Pct(f.MeanSpeedup(FasTM, SUVTM, true)), stats.Pct(PaperFig6.OverFasTMHigh))
	sb.WriteString(tab.String())
	sb.WriteString("\nPer-app speedup of SUV-TM:\n")
	tab2 := stats.NewTable("app", "vs LogTM-SE", "vs FasTM")
	overL := f.SpeedupOver(LogTMSE, SUVTM)
	overF := f.SpeedupOver(FasTM, SUVTM)
	for _, app := range f.Apps {
		tab2.AddRow(app, stats.Pct(overL[app]), stats.Pct(overF[app]))
	}
	sb.WriteString(tab2.String())
	return sb.String()
}

// Fig9 compares the original DynTM (D: FasTM version management) with
// DynTM+SUV (D+S). The paper reports D+S outperforming D by 9.8% over
// all applications and 18.6% over the high-contention five.
type Fig9 struct {
	*Matrix
}

// PaperFig9 records the paper's DynTM speedups.
var PaperFig9 = struct {
	All, High float64
}{0.098, 0.186}

// RunFig9 executes the Figure 9 matrix.
func RunFig9(opts Options) (*Fig9, error) {
	mtx, err := RunMatrix(opts, Fig9Schemes)
	if err != nil {
		return nil, err
	}
	return &Fig9{Matrix: mtx}, nil
}

// Render prints the D vs D+S breakdown (including the Committing
// component) and the speedup summary.
func (f *Fig9) Render() string {
	var sb strings.Builder
	sb.WriteString(f.RenderBreakdown("Figure 9: DynTM (D) vs DynTM+SUV (D+S), normalized to DynTM"))
	sb.WriteByte('\n')
	sb.WriteString(f.RenderBars("Figure 9 (stacked bars, width = time normalized to DynTM):", 60))
	sb.WriteString("\nHeadline speedups:\n")
	tab := stats.NewTable("comparison", "scope", "measured", "paper")
	tab.AddRow("DynTM+SUV vs DynTM", "all apps", stats.Pct(f.MeanSpeedup(DynTM, DynTMSUV, false)), stats.Pct(PaperFig9.All))
	tab.AddRow("DynTM+SUV vs DynTM", "high-contention 5", stats.Pct(f.MeanSpeedup(DynTM, DynTMSUV, true)), stats.Pct(PaperFig9.High))
	sb.WriteString(tab.String())
	var eager, lazy uint64
	for _, app := range f.Apps {
		if out := f.Get(app, DynTM); out != nil {
			eager += out.Counters.EagerTx
			lazy += out.Counters.LazyTx
		}
	}
	fmt.Fprintf(&sb, "\nDynTM selector: %d transactions ran eager, %d lazy\n", eager, lazy)
	return sb.String()
}
