package experiments

import (
	"strings"
	"testing"
)

// TestScalingShape: under a contended workload, SUV-TM's weak-scaling
// efficiency must dominate LogTM-SE's once contention kicks in, and
// both must be ~1.0 at one core.
func TestScalingShape(t *testing.T) {
	sc, err := RunScaling("intruder", []Scheme{LogTMSE, SUVTM}, []int{1, 4, 16}, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	logtm := sc.Efficiency(LogTMSE)
	suv := sc.Efficiency(SUVTM)
	if logtm[0] != 1.0 || suv[0] != 1.0 {
		t.Fatalf("1-core efficiency not 1.0: %v %v", logtm[0], suv[0])
	}
	if suv[2] <= logtm[2] {
		t.Fatalf("SUV-TM did not scale better at 16 cores: %.3f vs %.3f", suv[2], logtm[2])
	}
	out := sc.Render()
	if !strings.Contains(out, "Scaling study: intruder") {
		t.Fatalf("render header missing:\n%s", out)
	}
}

// TestScalingSingleCoreNoAborts: with one core there is no contention,
// so no scheme may abort.
func TestScalingSingleCoreNoAborts(t *testing.T) {
	sc, err := RunScaling("counter", allSchemes, []int{1}, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allSchemes {
		if n := sc.Points[0].PerSch[s].Counters.TxAborted; n != 0 {
			t.Errorf("%s aborted %d transactions on one core", s, n)
		}
	}
}
