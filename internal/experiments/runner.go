// Package experiments reproduces every table and figure of the paper's
// evaluation: the Figure 6 and Figure 9 execution-time breakdowns, the
// Table V overflow statistics, the Figure 7/8 redirect-table sensitivity
// sweeps, the Table I abort-ratio survey, and the Table VI/VII hardware
// model. Independent simulations run concurrently on a bounded worker
// pool; each simulation itself is single-goroutine and deterministic.
package experiments

import (
	"fmt"

	"suvtm/internal/faults"
	"suvtm/internal/forensics"
	"suvtm/internal/htm"
	"suvtm/internal/htm/dyntm"
	"suvtm/internal/htm/fastm"
	"suvtm/internal/htm/logtmse"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/mem"
	"suvtm/internal/metrics"
	"suvtm/internal/sim"
	"suvtm/internal/trace"
	"suvtm/internal/workload"
)

// Scheme identifies a version-management scheme under test.
type Scheme string

// The schemes the paper evaluates.
const (
	LogTMSE  Scheme = "LogTM-SE"
	FasTM    Scheme = "FasTM"
	SUVTM    Scheme = "SUV-TM"
	DynTM    Scheme = "DynTM"
	DynTMSUV Scheme = "DynTM+SUV"
)

// Fig6Schemes are the schemes of Figure 6, in the paper's L/F/S order.
var Fig6Schemes = []Scheme{LogTMSE, FasTM, SUVTM}

// Fig9Schemes are the schemes of Figure 9 (D and D+S).
var Fig9Schemes = []Scheme{DynTM, DynTMSUV}

// NewVM constructs a fresh version manager for a scheme.
func NewVM(s Scheme) (htm.VersionManager, error) {
	switch s {
	case LogTMSE:
		return logtmse.New(), nil
	case FasTM:
		return fastm.New(), nil
	case SUVTM:
		return suvtm.New(), nil
	case DynTM:
		return dyntm.New(), nil
	case DynTMSUV:
		return dyntm.NewWithSUV(), nil
	}
	return nil, fmt.Errorf("experiments: unknown scheme %q", s)
}

// heapBase is where simulated workload data begins; heapSize bounds the
// simulated physical address space handed to one run.
const (
	heapBase = 0x10_0000
	heapSize = 1 << 33
)

// Spec describes one simulation run.
type Spec struct {
	App    string
	Scheme Scheme
	Cores  int     // 0 = paper default (16)
	Seed   uint64  // 0 = 1
	Scale  float64 // 0 = 1.0
	// Tweak, if non-nil, adjusts the machine configuration (sensitivity
	// sweeps resize the redirect tables here).
	Tweak func(*htm.Config)
	// TraceEvents, when positive, records the last N transaction
	// lifecycle events into Outcome.Trace.
	TraceEvents int
	// Metrics enables counters/gauge/histogram collection and the
	// end-of-run snapshot (Outcome.Metrics).
	Metrics bool
	// SampleInterval, when positive, additionally samples a time series
	// every N simulated cycles (Outcome.Series), implying Metrics.
	SampleInterval sim.Cycles
	// ChromeTrace streams the full lifecycle-event sequence into a Chrome
	// trace-event builder (Outcome.Chrome), implying Metrics.
	ChromeTrace bool
	// FaultPlan, when non-empty, names a built-in chaos plan (see
	// faults.BuiltinNames) whose windows are injected into the run; the
	// forward-progress escalation ladder is armed alongside it. FaultSeed
	// parameterizes the plan's window placement (0 = 1).
	FaultPlan string
	FaultSeed uint64
	// Faults, when non-nil, injects this exact plan instead of building
	// one from FaultPlan/FaultSeed (replaying a decoded corpus file).
	Faults *faults.Plan
	// Forensics attaches a conflict-provenance collector and builds the
	// conflict report (Outcome.Forensics). Forensic runs always bypass
	// the run cache: the report lives outside the cached entry.
	Forensics bool
	// Shards engages the machine's deterministic parallel window engine
	// (htm.Config.Shards): results are bit-identical for every value, so
	// this is purely a host-throughput knob and is excluded from the run
	// cache fingerprint. The fleet clamps it so batch workers times
	// per-run shard workers never oversubscribe GOMAXPROCS (the clamp is
	// counted in FleetStats.ShardClamps).
	Shards int
	// Banks overrides the directory/L2 bank count (htm.Config.Banks).
	// Like Shards it is a host-structure knob with bit-identical results
	// for every value, excluded from the run cache fingerprint; it only
	// moves the window engine's certification rate (bank sweeps in
	// EXPERIMENTS.md). 0 keeps the default.
	Banks int
	// ForensicsTopK bounds the report's hot-site and hot-line tables
	// (0 = the forensics default).
	ForensicsTopK int
}

// wantMetrics reports whether any observability output is requested.
func (s *Spec) wantMetrics() bool {
	return s.Metrics || s.SampleInterval > 0 || s.ChromeTrace
}

// resolved returns the spec's effective cores/seed/scale with the
// paper's defaults applied.
func (s *Spec) resolved() (cores int, seed uint64, scale float64) {
	cores, seed, scale = s.Cores, s.Seed, s.Scale
	if cores == 0 {
		cores = 16
	}
	if seed == 0 {
		seed = 1
	}
	if scale == 0 {
		scale = 1.0
	}
	return cores, seed, scale
}

// Outcome is the result of one run plus identification and the
// post-run invariant check.
type Outcome struct {
	Spec Spec
	*htm.Result
	AppMeta    *workload.App // generator metadata; nil for cache-served outcomes
	CheckErr   error         // nil when the serializability invariants held
	PoolPages  uint64
	RedirectEn int             // live redirect entries at end of run
	Trace      *trace.Recorder // non-nil when Spec.TraceEvents > 0

	// Observability outputs, populated per the Spec's metrics fields.
	Metrics   *metrics.Snapshot    // non-nil when metrics were enabled
	Series    *metrics.Series      // non-nil when SampleInterval > 0
	Chrome    *metrics.ChromeTrace // non-nil when ChromeTrace was set
	Forensics *forensics.Report    // non-nil when Spec.Forensics was set

	// Parallel reports how much of the run the parallel window engine
	// covered and why the remainder fell back to the sequential engine
	// (zero-valued for sequential runs and cache-served outcomes).
	Parallel htm.ParallelStats
}

// Run executes one simulation, cold: fresh memory, directory and
// redirect state, no cache involvement. The fleet layer (RunMany,
// RunManyWith, RunCached) builds on runSpec to add arenas and caching.
func Run(spec Spec) (*Outcome, error) { return runSpec(spec, nil, soloShardCap()) }

// runSpec executes one simulation, drawing the big allocations from
// arena when non-nil (the per-worker reuse path of runBatch). shardCap
// bounds the run's effective Shards so concurrent batch workers never
// oversubscribe the host (see clampShards).
func runSpec(spec Spec, arena *machineArena, shardCap int) (*Outcome, error) {
	cores, seed, scale := spec.resolved()
	gen, err := workload.Get(spec.App)
	if err != nil {
		return nil, err
	}
	vm, err := NewVM(spec.Scheme)
	if err != nil {
		return nil, err
	}

	var memory *mem.Memory
	var alloc *mem.Allocator
	var pre htm.Prebuilt
	if arena != nil {
		memory, alloc, pre = arena.take()
	} else {
		memory = mem.NewMemory()
		alloc = mem.NewAllocator(heapBase, heapSize)
	}
	genCfg := workload.GenConfig{Cores: cores, Seed: seed, Scale: scale}
	var app *workload.App
	if arena != nil {
		app = arena.generate(workloadKey{spec.App, cores, seed, scale}, memory, alloc,
			func() *workload.App { return gen(genCfg, alloc, memory) })
	} else {
		app = gen(genCfg, alloc, memory)
	}

	plan := spec.Faults
	if plan == nil && spec.FaultPlan != "" {
		fseed := spec.FaultSeed
		if fseed == 0 {
			fseed = 1
		}
		plan, err = faults.Builtin(spec.FaultPlan, fseed, cores)
		if err != nil {
			return nil, err
		}
	}

	cfg := htm.DefaultConfig(cores)
	cfg.Seed = seed
	if plan != nil {
		// A chaos run arms the escalation ladder: injected storms are
		// exactly what boosted backoff and the serialization token exist
		// to survive.
		cfg = cfg.WithProgressLadder()
	}
	cfg.Shards = spec.Shards
	cfg.Banks = spec.Banks
	if spec.Tweak != nil {
		spec.Tweak(&cfg)
	}
	cfg.Shards = clampShards(cfg.Shards, shardCap)
	machine := htm.NewWith(cfg, vm, app.Programs, memory, alloc, pre)
	if arena != nil {
		arena.keep(machine)
	}
	if plan != nil {
		machine.SetFaults(faults.NewInjector(plan))
	}
	var rec *trace.Recorder
	if spec.TraceEvents > 0 {
		rec = trace.NewRecorder(spec.TraceEvents)
		machine.SetTracer(rec)
	}
	var col *metrics.Collector
	var chrome *metrics.ChromeTrace
	if spec.wantMetrics() {
		col = metrics.NewCollector(spec.SampleInterval)
		if spec.ChromeTrace {
			chrome = metrics.NewChromeTrace()
			col.AttachChromeTrace(chrome)
			// The Chrome trace needs the full event stream; piggyback on
			// the user's recorder or attach a minimal one.
			if rec == nil {
				rec = trace.NewRecorder(1)
				machine.SetTracer(rec)
			}
			rec.Stream(chrome)
		}
		machine.EnableMetrics(col)
	}
	var fx *forensics.Collector
	if spec.Forensics {
		fx = forensics.NewCollector(cores)
		machine.EnableForensics(fx)
	}
	res, err := machine.Run()
	out := &Outcome{
		Spec:       spec,
		Result:     res,
		AppMeta:    app,
		PoolPages:  machine.Redirect.Pool().Pages(),
		RedirectEn: machine.Redirect.EntryCount(),
		Chrome:     chrome,
		Parallel:   machine.ParallelStats(),
	}
	if spec.TraceEvents > 0 {
		out.Trace = rec
	}
	if fx != nil {
		rep := fx.Report(spec.ForensicsTopK)
		rep.App = spec.App
		rep.Scheme = string(spec.Scheme)
		rep.Seed = seed
		out.Forensics = rep
	}
	if col != nil {
		snap := col.Snapshot()
		snap.Meta["app"] = spec.App
		snap.Meta["scheme"] = string(spec.Scheme)
		snap.Meta["cores"] = fmt.Sprint(cores)
		snap.Meta["seed"] = fmt.Sprint(seed)
		if res != nil {
			snap.Meta["cycles"] = fmt.Sprint(res.Cycles)
		}
		out.Metrics = snap
		if spec.SampleInterval > 0 {
			out.Series = col.Series()
		}
	}
	if err != nil {
		// A failed run (watchdog, deadlock, invariant violation) still
		// carries its diagnostics: the machine flushed the collector
		// before erroring, so the partial Outcome holds the trace tail,
		// metrics snapshot and Chrome trace for the post-mortem.
		return out, fmt.Errorf("%s under %s: %w", spec.App, spec.Scheme, err)
	}
	if app.Check != nil {
		out.CheckErr = app.Check(machine.ArchMem())
	}
	return out, nil
}

// RunMany executes the specs concurrently on a worker pool sized to the
// machine (simulations are CPU-bound) and returns outcomes in spec
// order. It runs with the default fleet options: per-worker machine
// arenas, the run cache for pure specs, and longest-expected-first
// dispatch. The first simulation error stops further dispatch —
// in-flight runs finish, already-computed outcomes are returned for
// post-mortems (never-dispatched slots stay nil) along with the error.
func RunMany(specs []Spec) ([]*Outcome, error) {
	return RunManyWith(specs, BatchOptions{})
}

// Speedup returns how much faster b completed than a (the paper's
// "outperforms by N%": cycles(a)/cycles(b) - 1).
func Speedup(a, b *Outcome) float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(a.Cycles)/float64(b.Cycles) - 1
}
