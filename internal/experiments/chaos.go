package experiments

import (
	"errors"
	"fmt"
	"strings"

	"suvtm/internal/faults"
	"suvtm/internal/htm"
	"suvtm/internal/stats"
)

// AllSchemes is every version-management scheme the simulator implements.
var AllSchemes = []Scheme{LogTMSE, FasTM, SUVTM, DynTM, DynTMSUV}

// ChaosOptions configures a chaos sweep: every scheme crossed with every
// fault plan and every seed, each run twice to prove bit-identical
// replay. Zero values select the defaults in parentheses.
type ChaosOptions struct {
	App     string   // workload (intruder)
	Schemes []Scheme // schemes under test (all five)
	Plans   []string // built-in plan names (all of them)
	Seeds   []uint64 // workload+fault seeds (1, 2, 3)
	Cores   int      // simulated cores (8)
	Scale   float64  // workload scale (0.08)
	Replay  bool     // run every cell twice and compare
}

// ChaosRow is one cell of the sweep: a (scheme, plan, seed) run, its
// outcome (possibly partial, when Err is set), and — when replay was
// requested — whether the second run reproduced the first bit-for-bit.
type ChaosRow struct {
	Scheme Scheme
	Plan   string
	Seed   uint64

	Outcome     *Outcome
	Err         error
	ReplayMatch bool // meaningful only when Replay was requested and Err is nil
}

// Chaos is the sweep result.
type Chaos struct {
	App    string
	Replay bool
	Rows   []ChaosRow
}

// RunChaos executes the sweep. Individual run failures (watchdog,
// deadlock, invariant violation) land in their row's Err rather than
// aborting the sweep; only setup errors (unknown scheme/plan/app)
// return a top-level error.
func RunChaos(opts ChaosOptions) (*Chaos, error) {
	if opts.App == "" {
		opts.App = "intruder"
	}
	if len(opts.Schemes) == 0 {
		opts.Schemes = AllSchemes
	}
	if len(opts.Plans) == 0 {
		opts.Plans = faults.BuiltinNames()
	}
	if len(opts.Seeds) == 0 {
		opts.Seeds = []uint64{1, 2, 3}
	}
	if opts.Cores == 0 {
		opts.Cores = 8
	}
	if opts.Scale == 0 {
		opts.Scale = 0.08
	}
	for _, p := range opts.Plans {
		if _, err := faults.Builtin(p, 1, opts.Cores); err != nil {
			return nil, err
		}
	}

	var specs []Spec
	var rows []ChaosRow
	for _, scheme := range opts.Schemes {
		for _, plan := range opts.Plans {
			for _, seed := range opts.Seeds {
				rows = append(rows, ChaosRow{Scheme: scheme, Plan: plan, Seed: seed})
				spec := Spec{
					App: opts.App, Scheme: scheme, Cores: opts.Cores,
					Seed: seed, Scale: opts.Scale,
					FaultPlan: plan, FaultSeed: seed,
				}
				specs = append(specs, spec)
				if opts.Replay {
					specs = append(specs, spec)
				}
			}
		}
	}

	outcomes, errs := runAll(specs)
	stride := 1
	if opts.Replay {
		stride = 2
	}
	for i := range rows {
		rows[i].Outcome = outcomes[i*stride]
		rows[i].Err = errs[i*stride]
		if opts.Replay && rows[i].Err == nil && errs[i*stride+1] == nil {
			rows[i].ReplayMatch = sameRun(outcomes[i*stride], outcomes[i*stride+1])
		}
	}
	return &Chaos{App: opts.App, Replay: opts.Replay, Rows: rows}, nil
}

// runAll is RunMany without the first-error abort: chaos sweeps want
// every cell's individual verdict. Fault-injected specs bypass the run
// cache (so replay pairs genuinely re-simulate), but the per-worker
// arenas still apply — a replay that diverged under a reused arena
// would fail the sweep's bit-identity gate, which is exactly the
// property the arenas must preserve.
func runAll(specs []Spec) ([]*Outcome, []error) {
	return runBatch(specs, BatchOptions{Jobs: 8, KeepGoing: true})
}

// sameRun reports whether two outcomes are bit-identical where it
// matters: total cycles and the full machine-wide counter set.
func sameRun(a, b *Outcome) bool {
	if a == nil || b == nil || a.Result == nil || b.Result == nil {
		return false
	}
	return a.Cycles == b.Cycles && a.Counters == b.Counters
}

// Verify checks the robustness acceptance properties on every row:
// the run completed (no watchdog trip, no deadlock, no invariant
// violation), memory stayed serializable, transactions actually
// committed, and — when replay was requested — the rerun was
// bit-identical. The first violation is returned.
func (c *Chaos) Verify() error {
	for _, r := range c.Rows {
		id := fmt.Sprintf("%s/%s/plan=%s/seed=%d", c.App, r.Scheme, r.Plan, r.Seed)
		switch {
		case errors.Is(r.Err, htm.ErrWatchdog):
			return fmt.Errorf("chaos %s: watchdog tripped: %w", id, r.Err)
		case errors.Is(r.Err, htm.ErrDeadlock):
			return fmt.Errorf("chaos %s: deadlocked: %w", id, r.Err)
		case r.Err != nil:
			return fmt.Errorf("chaos %s: %w", id, r.Err)
		case r.Outcome.CheckErr != nil:
			return fmt.Errorf("chaos %s: serializability violated: %w", id, r.Outcome.CheckErr)
		case r.Outcome.Counters.TxCommitted == 0:
			return fmt.Errorf("chaos %s: no transaction ever committed", id)
		case c.Replay && !r.ReplayMatch:
			return fmt.Errorf("chaos %s: replay diverged from the original run", id)
		}
	}
	return nil
}

// Render prints the sweep as a table: per cell, cycles, commit/abort
// counts and the robustness counters that show the fault plan actually
// bit (injected NACKs, protocol retries, escalations, token grants,
// degraded completions).
func (c *Chaos) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos sweep (%s)\n", c.App)
	tab := stats.NewTable("scheme", "plan", "seed", "cycles", "commits", "aborts",
		"inj-nacks", "retries", "escal", "tokens", "degraded", "verdict")
	for _, r := range c.Rows {
		verdict := "ok"
		switch {
		case r.Err != nil:
			verdict = "FAILED"
		case r.Outcome.CheckErr != nil:
			verdict = "UNSERIALIZABLE"
		case c.Replay && !r.ReplayMatch:
			verdict = "NONDETERMINISTIC"
		}
		var cy, cm, ab, in, rt, es, tk, dg uint64
		if r.Outcome != nil && r.Outcome.Result != nil {
			cn := &r.Outcome.Counters
			cy, cm, ab = uint64(r.Outcome.Cycles), cn.TxCommitted, cn.TxAborted
			in, rt, es = cn.InjectedNACKs, cn.MeshRetries, cn.StarveEscalations
			tk, dg = cn.TokenGrants, cn.GracefulDegradation
		}
		tab.AddRow(string(r.Scheme), r.Plan, fmt.Sprint(r.Seed), fmt.Sprint(cy),
			fmt.Sprint(cm), fmt.Sprint(ab), fmt.Sprint(in), fmt.Sprint(rt),
			fmt.Sprint(es), fmt.Sprint(tk), fmt.Sprint(dg), verdict)
	}
	sb.WriteString(tab.String())
	return sb.String()
}
