package experiments

import (
	"encoding/csv"
	"fmt"
	"io"

	"suvtm/internal/stats"
)

// WriteCSV emits the matrix as tidy rows (one per app x scheme) for
// external plotting: cycles, normalized time, the full breakdown and the
// headline counters.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "scheme", "cycles", "norm_time"}
	for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
		header = append(header, "frac_"+comp.String())
	}
	header = append(header, "commits", "aborts", "abort_ratio",
		"cache_overflow_tx", "table_overflow_tx", "redirect_entries", "pool_pages")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, app := range m.Apps {
		base := m.Get(app, m.Schemes[0])
		for _, s := range m.Schemes {
			out := m.Get(app, s)
			if out == nil {
				continue
			}
			row := []string{
				app, string(s),
				fmt.Sprintf("%d", out.Cycles),
				fmt.Sprintf("%.6f", float64(out.Cycles)/float64(base.Cycles)),
			}
			fr := out.Breakdown.Fractions()
			for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
				row = append(row, fmt.Sprintf("%.6f", fr[comp]))
			}
			row = append(row,
				fmt.Sprintf("%d", out.Counters.TxCommitted),
				fmt.Sprintf("%d", out.Counters.TxAborted),
				fmt.Sprintf("%.6f", out.Counters.AbortRatio()),
				fmt.Sprintf("%d", out.Counters.CacheOverflowTx),
				fmt.Sprintf("%d", out.Counters.TableOverflowTx),
				fmt.Sprintf("%d", out.RedirectEn),
				fmt.Sprintf("%d", out.PoolPages),
			)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the sweep as (param, total_cycles, norm_time,
// miss_rate) rows.
func (s *Sweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"param", "total_cycles", "norm_time", "l1_table_miss_rate"}); err != nil {
		return err
	}
	base := float64(s.Points[0].TotalCycles)
	for _, pt := range s.Points {
		err := cw.Write([]string{
			fmt.Sprintf("%d", pt.Param),
			fmt.Sprintf("%d", pt.TotalCycles),
			fmt.Sprintf("%.6f", float64(pt.TotalCycles)/base),
			fmt.Sprintf("%.6f", pt.MissRate),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
