package experiments

import (
	"strings"
	"testing"
)

// TestFig1IsolationWindows verifies the paper's central mechanism as a
// measurement: under coarse, high-contention workloads, LogTM-SE's mean
// writer isolation window must exceed SUV-TM's (its abort roll-back
// keeps isolation in force), and window counts must match attempts that
// wrote something.
func TestFig1IsolationWindows(t *testing.T) {
	fig, err := RunFig1(Options{Scale: 0.2, Apps: []string{"yada", "bayes"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range fig.Apps {
		logtm := fig.MeanWindow(app, LogTMSE)
		suv := fig.MeanWindow(app, SUVTM)
		if logtm <= 0 || suv <= 0 {
			t.Fatalf("%s: zero windows measured (logtm=%v suv=%v)", app, logtm, suv)
		}
		if logtm <= suv {
			t.Errorf("%s: LogTM-SE window (%.0f) not longer than SUV-TM's (%.0f)", app, logtm, suv)
		}
		out := fig.Get(app, LogTMSE)
		attempts := out.Counters.TxCommitted + out.Counters.TxAborted
		if out.Counters.IsoWindows == 0 || out.Counters.IsoWindows > attempts {
			t.Errorf("%s: window count %d vs %d attempts", app, out.Counters.IsoWindows, attempts)
		}
	}
	if !strings.Contains(fig.Render(), "isolation window") {
		t.Fatal("render missing title")
	}
}
