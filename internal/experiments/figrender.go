package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/stats"
)

// componentGlyphs renders each breakdown component as one letter in the
// stacked bars (the paper's Figure 6/9 legend, compressed to ASCII):
// NoTrans, Trans, bArrier, bacKoff, Stalled, Wasted, abOrting,
// Committing.
var componentGlyphs = [stats.NumComponents]byte{'N', 'T', 'a', 'k', 'S', 'W', 'O', 'C'}

// RenderBars draws the matrix as horizontal stacked bars, one per
// (app, scheme), scaled so the first scheme's bar is barWidth characters
// — the ASCII rendition of the paper's Figure 6/9 stacked columns.
func (m *Matrix) RenderBars(title string, barWidth int) string {
	if barWidth <= 0 {
		barWidth = 60
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	sb.WriteString("legend: N=NoTrans T=Trans a=Barrier k=Backoff S=Stalled W=Wasted O=Aborting C=Committing\n\n")
	for _, app := range m.Apps {
		base := m.Get(app, m.Schemes[0])
		if base == nil {
			continue
		}
		for _, s := range m.Schemes {
			out := m.Get(app, s)
			if out == nil {
				continue
			}
			norm := float64(out.Cycles) / float64(base.Cycles)
			total := float64(out.Breakdown.Total())
			width := int(norm*float64(barWidth) + 0.5)
			if width < 1 {
				width = 1
			}
			var bar []byte
			for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
				share := 0.0
				if total > 0 {
					share = float64(out.Breakdown.Cycles[comp]) / total
				}
				n := int(share*float64(width) + 0.5)
				for i := 0; i < n; i++ {
					bar = append(bar, componentGlyphs[comp])
				}
			}
			if len(bar) == 0 {
				// Everything rounded away (very narrow bar): show the
				// largest component.
				max := stats.Component(0)
				for comp := stats.Component(1); comp < stats.NumComponents; comp++ {
					if out.Breakdown.Cycles[comp] > out.Breakdown.Cycles[max] {
						max = comp
					}
				}
				bar = append(bar, componentGlyphs[max])
			}
			// Rounding can drift by a character or two; clamp to width.
			if len(bar) > width {
				bar = bar[:width]
			}
			for len(bar) < width {
				bar = append(bar, bar[len(bar)-1])
			}
			fmt.Fprintf(&sb, "%-10s %-9s |%s| %.3f\n", app, s, string(bar), norm)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
