package experiments

import (
	"fmt"
	"sort"
	"strings"

	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// Options parameterize an experiment (defaults: 16 cores, seed 1,
// scale 1.0, all eight STAMP-analogue apps).
type Options struct {
	Cores int
	Seed  uint64
	Scale float64
	Apps  []string
	// Jobs bounds the concurrent simulations (0 = GOMAXPROCS).
	Jobs int
	// OnProgress, when non-nil, receives deterministic count-based
	// fleet-progress snapshots while the experiment's batches run (see
	// BatchOptions.OnProgress).
	OnProgress func(FleetProgress)
}

func (o Options) apps() []string {
	if len(o.Apps) == 0 {
		return workload.StampApps
	}
	return o.Apps
}

// batch converts the experiment options into per-batch fleet options.
func (o Options) batch() BatchOptions {
	return BatchOptions{Jobs: o.Jobs, OnProgress: o.OnProgress}
}

// Matrix holds the outcomes of an apps x schemes experiment.
type Matrix struct {
	Apps     []string
	Schemes  []Scheme
	Outcomes map[string]map[Scheme]*Outcome
}

// RunMatrix simulates every (app, scheme) pair concurrently.
func RunMatrix(opts Options, schemes []Scheme) (*Matrix, error) {
	apps := opts.apps()
	var specs []Spec
	for _, app := range apps {
		for _, s := range schemes {
			specs = append(specs, Spec{
				App: app, Scheme: s,
				Cores: opts.Cores, Seed: opts.Seed, Scale: opts.Scale,
			})
		}
	}
	outcomes, err := RunManyWith(specs, opts.batch())
	if err != nil {
		return nil, err
	}
	mtx := &Matrix{Apps: apps, Schemes: schemes, Outcomes: make(map[string]map[Scheme]*Outcome)}
	for _, out := range outcomes {
		if out == nil {
			continue
		}
		if out.CheckErr != nil {
			return nil, fmt.Errorf("%s under %s: %w", out.Spec.App, out.Spec.Scheme, out.CheckErr)
		}
		row := mtx.Outcomes[out.Spec.App]
		if row == nil {
			row = make(map[Scheme]*Outcome)
			mtx.Outcomes[out.Spec.App] = row
		}
		row[out.Spec.Scheme] = out
	}
	return mtx, nil
}

// Get returns the outcome for (app, scheme).
func (m *Matrix) Get(app string, s Scheme) *Outcome { return m.Outcomes[app][s] }

// SpeedupOver returns per-app speedups of scheme "mine" over scheme
// "base" (cycles(base)/cycles(mine) - 1), keyed by app.
func (m *Matrix) SpeedupOver(base, mine Scheme) map[string]float64 {
	out := make(map[string]float64, len(m.Apps))
	for _, app := range m.Apps {
		out[app] = Speedup(m.Get(app, base), m.Get(app, mine))
	}
	return out
}

// MeanSpeedup returns the average speedup of mine over base across apps
// (geometric mean of the cycle ratios, expressed as ratio-1, the way the
// paper summarizes "outperforms by N%"). If onlyHighContention is true,
// only the paper's five high-contention applications count.
func (m *Matrix) MeanSpeedup(base, mine Scheme, onlyHighContention bool) float64 {
	var ratios []float64
	for _, app := range m.Apps {
		if onlyHighContention && !workload.IsHighContention(app) {
			continue
		}
		b, s := m.Get(app, base), m.Get(app, mine)
		if b == nil || s == nil || s.Cycles == 0 {
			continue
		}
		ratios = append(ratios, float64(b.Cycles)/float64(s.Cycles))
	}
	return stats.GeoMean(ratios) - 1
}

// RenderBreakdown prints a paper-style normalized execution-time
// breakdown: for each app, one row per scheme with the total normalized
// to the first scheme and each component's share of that normalized
// total (this is exactly what the stacked bars of Figures 6 and 9 show).
func (m *Matrix) RenderBreakdown(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	header := []string{"app", "scheme", "norm"}
	for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
		header = append(header, comp.String())
	}
	header = append(header, "cycles", "commits", "aborts", "abort%")
	tab := stats.NewTable(header...)
	for _, app := range m.Apps {
		base := m.Get(app, m.Schemes[0])
		for _, s := range m.Schemes {
			out := m.Get(app, s)
			if out == nil {
				continue
			}
			norm := float64(out.Cycles) / float64(base.Cycles)
			row := []string{app, string(s), stats.F3(norm)}
			total := float64(out.Breakdown.Total())
			for comp := stats.Component(0); comp < stats.NumComponents; comp++ {
				share := 0.0
				if total > 0 {
					share = float64(out.Breakdown.Cycles[comp]) / total
				}
				row = append(row, stats.F3(share*norm))
			}
			row = append(row,
				fmt.Sprintf("%d", out.Cycles),
				fmt.Sprintf("%d", out.Counters.TxCommitted),
				fmt.Sprintf("%d", out.Counters.TxAborted),
				stats.Pct(out.Counters.AbortRatio()),
			)
			tab.AddRow(row...)
		}
	}
	sb.WriteString(tab.String())
	return sb.String()
}

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//suv:orderinsensitive keys are collected then sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
