package experiments

import "testing"

// TestSmokeAllSchemes runs the counter and bank micro-workloads under
// every scheme and checks the serializability invariants.
func TestSmokeAllSchemes(t *testing.T) {
	schemes := []Scheme{LogTMSE, FasTM, SUVTM, DynTM, DynTMSUV}
	for _, app := range []string{"counter", "bank", "private"} {
		for _, s := range schemes {
			t.Run(app+"/"+string(s), func(t *testing.T) {
				out, err := Run(Spec{App: app, Scheme: s, Cores: 4, Scale: 0.3})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if out.CheckErr != nil {
					t.Fatalf("invariant: %v", out.CheckErr)
				}
				if out.Counters.TxCommitted == 0 {
					t.Fatal("no transactions committed")
				}
				t.Logf("cycles=%d commits=%d aborts=%d breakdown=%s",
					out.Cycles, out.Counters.TxCommitted, out.Counters.TxAborted, out.Breakdown.String())
			})
		}
	}
}
