package experiments

import (
	"fmt"
	"strings"
)

// RenderChart draws the sweep as an ASCII scatter of normalized
// execution time (marker '*', left axis) and first-level-table miss rate
// (marker 'o', right axis) against the swept parameter — the terminal
// rendition of Figures 7 and 8.
func (s *Sweep) RenderChart(height int) string {
	if height <= 0 {
		height = 12
	}
	n := len(s.Points)
	if n == 0 {
		return ""
	}
	times := s.NormTime()
	misses := s.MissRates()

	minT, maxT := times[0], times[0]
	for _, v := range times {
		if v < minT {
			minT = v
		}
		if v > maxT {
			maxT = v
		}
	}
	if maxT == minT {
		maxT = minT + 1e-9
	}
	// Each point gets a fixed-width column.
	const colW = 8
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", n*colW))
	}
	put := func(col, row int, ch byte) {
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[height-1-row][col*colW+colW/2] = ch
	}
	for i := range s.Points {
		tRow := int(float64(height-1) * (times[i] - minT) / (maxT - minT))
		put(i, tRow, '*')
		mRow := int(float64(height-1) * misses[i]) // miss rate is already 0..1
		if grid[height-1-clampRow(mRow, height)][i*colW+colW/2] == ' ' {
			put(i, mRow, 'o')
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", s.Name)
	fmt.Fprintf(&sb, "'*' = normalized time [%.3f..%.3f]   'o' = L1-table miss rate [0..1]\n", minT, maxT)
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", n*colW) + "\n   ")
	for _, pt := range s.Points {
		fmt.Fprintf(&sb, "%-*d", colW, pt.Param)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func clampRow(r, height int) int {
	if r < 0 {
		return 0
	}
	if r >= height {
		return height - 1
	}
	return r
}
