package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"suvtm/internal/faults"
)

// TestChaosMatrix is the robustness acceptance gate: every scheme, under
// every built-in fault plan, across three seeds, run twice. Each cell
// must complete (no watchdog trip, no deadlock, no invariant violation),
// keep memory serializable, commit transactions, and reproduce
// bit-identically on replay.
func TestChaosMatrix(t *testing.T) {
	ch, err := RunChaos(ChaosOptions{Replay: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Verify(); err != nil {
		t.Log("\n" + ch.Render())
		t.Fatal(err)
	}
}

// TestChaosFaultsBite spot-checks that the sweep is not vacuous: each
// plan's signature counter actually moved for at least one cell, so a
// regression that silently disables an injection point fails loudly.
func TestChaosFaultsBite(t *testing.T) {
	ch, err := RunChaos(ChaosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	moved := map[string]bool{}
	for _, r := range ch.Rows {
		if r.Outcome == nil || r.Outcome.Result == nil {
			continue
		}
		cn := &r.Outcome.Counters
		switch r.Plan {
		case "nack-storm":
			moved[r.Plan] = moved[r.Plan] || cn.InjectedNACKs > 0
		case "mesh-delay", "mesh-dup":
			moved[r.Plan] = moved[r.Plan] || cn.MeshRetries > 0 || cn.MeshDuplicates > 0
		case "sig-storm":
			moved[r.Plan] = moved[r.Plan] || cn.FalsePositive > 0
		case "redirect-pressure", "pool-exhaust":
			moved[r.Plan] = moved[r.Plan] ||
				cn.GracefulDegradation > 0 || cn.PoolReclaimStalls > 0 ||
				cn.TableOverflowTx > 0
		case "mixed":
			moved[r.Plan] = moved[r.Plan] || cn.InjectedNACKs > 0 || cn.MeshRetries > 0
		}
	}
	for _, plan := range faults.BuiltinNames() {
		if !moved[plan] {
			t.Errorf("plan %q left no trace in any run's counters — injection point dead?", plan)
		}
	}
}

// TestGoldenPlans pins the built-in plan generators to the corpus under
// testdata/plans: the deterministic derivation (name, seed, cores) ->
// windows must never drift silently, or archived chaos results stop
// being reproducible. Regenerate deliberately with faults.EncodeString
// if a generator change is intended.
func TestGoldenPlans(t *testing.T) {
	for _, name := range faults.BuiltinNames() {
		p, err := faults.Builtin(name, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := faults.EncodeString(p)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "plans", name+".seed1.plan")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("golden corpus: %v", err)
		}
		if got != string(want) {
			t.Errorf("Builtin(%q, 1, 8) drifted from %s:\n--- got ---\n%s--- want ---\n%s",
				name, path, got, want)
		}
	}
}

// TestCorpusReplay decodes a golden plan from disk, injects it verbatim
// via Spec.Faults (the corpus-replay path, bypassing the generator), and
// checks the run is deterministic and serializable.
func TestCorpusReplay(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "plans", "nack-storm.seed1.plan"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.DecodeString(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{App: "intruder", Scheme: SUVTM, Cores: 8, Seed: 1, Scale: 0.08, Faults: plan}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.CheckErr != nil {
		t.Fatalf("serializability violated under corpus plan: %v", a.CheckErr)
	}
	if a.Counters.InjectedNACKs == 0 {
		t.Error("corpus nack-storm plan injected nothing")
	}
	if !sameRun(a, b) {
		t.Errorf("corpus replay diverged: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// TestReplayAcrossMachines re-runs one chaos cell on fresh machines by
// hand (no shared state with the sweep) and compares against a third run
// through the sweep itself, guarding the replay plumbing end to end.
func TestReplayAcrossMachines(t *testing.T) {
	spec := Spec{
		App: "intruder", Scheme: DynTMSUV, Cores: 8, Seed: 2, Scale: 0.08,
		FaultPlan: "mixed", FaultSeed: 2,
	}
	var runs [3]*Outcome
	for i := range runs {
		out, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = out
	}
	for i := 1; i < len(runs); i++ {
		if !sameRun(runs[0], runs[i]) {
			t.Fatalf("run %d diverged from run 0:\n run0: %d cycles %+v\n run%d: %d cycles %+v",
				i, runs[0].Cycles, runs[0].Counters, i, runs[i].Cycles, runs[i].Counters)
		}
	}
}

// TestChaosRenderShape keeps the report renderer wired to real data: a
// verdict column and one row per cell.
func TestChaosRenderShape(t *testing.T) {
	ch, err := RunChaos(ChaosOptions{
		Schemes: []Scheme{SUVTM}, Plans: []string{"nack-storm"}, Seeds: []uint64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Rows) != 1 {
		t.Fatalf("1-cell sweep produced %d rows", len(ch.Rows))
	}
	s := ch.Render()
	for _, want := range []string{"scheme", "verdict", "SUV-TM", "nack-storm", "ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, s)
		}
	}
}
