package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"suvtm/internal/faults"
	"suvtm/internal/parrun"
)

// TestParallelSpecBitIdentical drives the window engine through the
// experiments facade: for each spec, runs at Shards 1, 2, 4 and
// NumCPU must match the sequential run on every surface an Outcome
// exposes, and the serializability check must hold throughout.
func TestParallelSpecBitIdentical(t *testing.T) {
	prev := parrun.SetForcedWorkersForTest(4)
	defer parrun.SetForcedWorkersForTest(prev)
	specs := []Spec{
		{App: "sessionstore", Scheme: SUVTM, Cores: 4, Scale: 0.2},
		{App: "sessionstore", Scheme: LogTMSE, Cores: 4, Scale: 0.2},
		{App: "vacation", Scheme: SUVTM, Cores: 8, Scale: 0.05},
		{App: "ssca2", Scheme: FasTM, Cores: 4, Scale: 0.05},
	}
	for _, spec := range specs {
		want, err := Run(spec)
		if err != nil {
			t.Fatalf("%s/%s sequential: %v", spec.App, spec.Scheme, err)
		}
		if want.CheckErr != nil {
			t.Fatalf("%s/%s sequential: %v", spec.App, spec.Scheme, want.CheckErr)
		}
		for _, k := range []int{1, 2, 4, runtime.NumCPU()} {
			s := spec
			s.Shards = k
			got, err := Run(s)
			if err != nil {
				t.Fatalf("%s/%s shards=%d: %v", spec.App, spec.Scheme, k, err)
			}
			if got.CheckErr != nil {
				t.Fatalf("%s/%s shards=%d: %v", spec.App, spec.Scheme, k, got.CheckErr)
			}
			if !sameOutcome(want, got) {
				t.Errorf("%s/%s shards=%d diverged from sequential (%d vs %d cycles)",
					spec.App, spec.Scheme, k, got.Cycles, want.Cycles)
			}
		}
	}
}

// TestParallelChaosAndForensicsUnchanged pins the fallback contract:
// fault-injected (corpus-replayed) and forensic runs are ineligible for
// the window engine, so setting Shards on them must change nothing —
// including the forensics report, byte for byte.
func TestParallelChaosAndForensicsUnchanged(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "plans", "nack-storm.seed1.plan"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.DecodeString(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	chaos := Spec{App: "intruder", Scheme: SUVTM, Cores: 8, Seed: 1, Scale: 0.08, Faults: plan}
	a, err := Run(chaos)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Shards = 4
	b, err := Run(chaos)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(a, b) {
		t.Errorf("chaos replay changed under Shards=4: %d vs %d cycles", a.Cycles, b.Cycles)
	}

	fx := Spec{App: "bank", Scheme: SUVTM, Cores: 4, Scale: 0.2, Forensics: true}
	fa, err := Run(fx)
	if err != nil {
		t.Fatal(err)
	}
	fx.Shards = 4
	fb, err := Run(fx)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(fa, fb) {
		t.Errorf("forensic run changed under Shards=4: %d vs %d cycles", fa.Cycles, fb.Cycles)
	}
	if !reflect.DeepEqual(fa.Forensics, fb.Forensics) {
		t.Error("forensics report diverged under Shards=4")
	}
}

// TestParallelCacheKeyShardIndependent checks that Shards is excluded
// from the run-cache fingerprint: a sequential miss primes the entry a
// sharded run is then served from.
func TestParallelCacheKeyShardIndependent(t *testing.T) {
	if err := ResetRunCache(); err != nil {
		t.Fatal(err)
	}
	seq := Spec{App: "kmeans", Scheme: SUVTM, Cores: 4, Scale: 0.05}
	par := seq
	par.Shards = 4
	kSeq, err := fingerprintOf(seq)
	if err != nil {
		t.Fatal(err)
	}
	kPar, err := fingerprintOf(par)
	if err != nil {
		t.Fatal(err)
	}
	if kSeq != kPar {
		t.Fatal("fingerprint depends on Spec.Shards")
	}
	a, err := RunCached(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(par)
	if err != nil {
		t.Fatal(err)
	}
	if got := FleetSnapshot(); got.Hits == 0 {
		t.Fatalf("sharded run missed the cache entry its sequential twin stored: %+v", got)
	}
	if !sameRun(a, b) {
		t.Errorf("cache round-trip diverged: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// TestParallelOversubscriptionClamp pins the fleet's J*K bound: with as
// many batch workers as the host has processors, every multi-shard spec
// must be clamped (and counted), and outcomes must still match the
// sequential engine exactly.
func TestParallelOversubscriptionClamp(t *testing.T) {
	if err := ResetRunCache(); err != nil {
		t.Fatal(err)
	}
	jobs := runtime.GOMAXPROCS(0)
	specs := make([]Spec, jobs+1)
	for i := range specs {
		specs[i] = Spec{App: "counter", Scheme: SUVTM, Cores: 2, Seed: uint64(i + 1), Scale: 0.05, Shards: 64}
	}
	outs, err := RunManyWith(specs, BatchOptions{Jobs: jobs, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	snap := FleetSnapshot()
	if snap.ShardClamps == 0 {
		t.Fatalf("no shard clamps recorded for %d-shard specs under %d jobs", 64, jobs)
	}
	for i, out := range outs {
		want, err := Run(Spec{App: "counter", Scheme: SUVTM, Cores: 2, Seed: uint64(i + 1), Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if !sameRun(want, out) {
			t.Errorf("spec %d: clamped sharded run diverged from sequential", i)
		}
	}
	if err := ResetRunCache(); err != nil {
		t.Fatal(err)
	}
	if got := FleetSnapshot().ShardClamps; got != 0 {
		t.Fatalf("ResetRunCache left ShardClamps = %d", got)
	}
}
