package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/stats"
)

// Fig1 quantifies the paper's Figure 1 narrative directly: the mean
// writer isolation window — first write acquisition to isolation
// release, including the abort roll-back (repair) time — per scheme.
// The paper argues SUV wins precisely by shrinking this window; here it
// is measured rather than illustrated.
type Fig1 struct {
	*Matrix
}

// RunFig1 measures isolation windows for the Figure 6 schemes.
func RunFig1(opts Options) (*Fig1, error) {
	mtx, err := RunMatrix(opts, Fig6Schemes)
	if err != nil {
		return nil, err
	}
	return &Fig1{Matrix: mtx}, nil
}

// MeanWindow returns the mean isolation window for (app, scheme).
func (f *Fig1) MeanWindow(app string, s Scheme) float64 {
	return f.Get(app, s).Counters.MeanIsolationWindow()
}

// Render prints per-app mean isolation windows and the ratio between
// LogTM-SE and SUV-TM.
func (f *Fig1) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1 (quantified): mean writer isolation window, cycles\n")
	sb.WriteString("(first write acquisition -> isolation release, abort repair included)\n")
	header := []string{"app"}
	for _, s := range f.Schemes {
		header = append(header, string(s))
	}
	header = append(header, "LogTM/SUV")
	tab := stats.NewTable(header...)
	for _, app := range f.Apps {
		row := []string{app}
		for _, s := range f.Schemes {
			row = append(row, fmt.Sprintf("%.0f", f.MeanWindow(app, s)))
		}
		suv := f.MeanWindow(app, SUVTM)
		ratio := 0.0
		if suv > 0 {
			ratio = f.MeanWindow(app, LogTMSE) / suv
		}
		row = append(row, fmt.Sprintf("%.2fx", ratio))
		tab.AddRow(row...)
	}
	sb.WriteString(tab.String())
	sb.WriteString("\nShorter windows block the surrounding transactions for less time —\nthe mechanism behind every speedup in Figure 6.\n")
	return sb.String()
}
