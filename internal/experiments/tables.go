package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/mem"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// LiteratureAbort is one row of the paper's Table I: abort behaviour
// reported in prior studies, motivating abort-path optimization.
type LiteratureAbort struct {
	Study       string
	AbortRatio  string
	Environment string
}

// Table1Literature reproduces the survey rows of Table I.
var Table1Literature = []LiteratureAbort{
	{"LogTM [7]", "up to 15%", "Splash2 applications run under LogTM"},
	{"PTM [8]", "up to 24%", "Splash2 applications run under PTM"},
	{"LogTM-SE [9]", "30% to 40%", "Raytrace and BerkeleyDB under LogTM-SE"},
	{"FasTM [10]", "up to 4.0%", "Micro-benchmarks, Splash2 and STAMP under FasTM"},
	{"SBCR-HTM [11]", "up to 75.9%", "STAMP under HTM with speculation-based conflict resolution"},
	{"LiteTM [12]", "up to 79.4%", "STAMP under TokenTM"},
	{"Lee-TM [13]", "up to 72%", "Five implementations of Lee's routing algorithm under DSTM2"},
	{"TransPlant [14]", "up to 79%", "Generated programs with desired characteristics"},
	{"RMS-TM [15]", "up to 69%", "RMS applications under Intel's prototype STM compiler"},
}

// Table1 pairs the literature survey with abort ratios measured on this
// reproduction's workloads under the baseline scheme.
type Table1 struct {
	Measured *Matrix
}

// RunTable1 measures abort ratios of the eight apps under LogTM-SE.
func RunTable1(opts Options) (*Table1, error) {
	mtx, err := RunMatrix(opts, []Scheme{LogTMSE})
	if err != nil {
		return nil, err
	}
	return &Table1{Measured: mtx}, nil
}

// Render prints the literature survey and the measured ratios.
func (t *Table1) Render() string {
	var sb strings.Builder
	sb.WriteString("Table I: abort behaviours reported in published studies\n")
	tab := stats.NewTable("study", "abort ratio", "evaluation environment and workloads")
	for _, row := range Table1Literature {
		tab.AddRow(row.Study, row.AbortRatio, row.Environment)
	}
	sb.WriteString(tab.String())
	sb.WriteString("\nMeasured on this reproduction (LogTM-SE, Stall policy):\n")
	tab2 := stats.NewTable("app", "attempts", "aborted", "abort ratio", "contention")
	for _, app := range t.Measured.Apps {
		out := t.Measured.Get(app, LogTMSE)
		cont := "Low"
		if workload.IsHighContention(app) {
			cont = "High"
		}
		tab2.AddRow(app,
			fmt.Sprintf("%d", out.Counters.TxCommitted+out.Counters.TxAborted),
			fmt.Sprintf("%d", out.Counters.TxAborted),
			stats.Pct(out.Counters.AbortRatio()), cont)
	}
	sb.WriteString(tab2.String())
	return sb.String()
}

// RenderTable4 prints the Table IV workload characteristics, pairing the
// paper's reported per-transaction lengths with the generator metadata.
func RenderTable4() string {
	var sb strings.Builder
	sb.WriteString("Table IV: workload characteristics of the benchmarks\n")
	tab := stats.NewTable("app", "input parameters", "length", "contention")
	for _, name := range workload.StampApps {
		gen, err := workload.Get(name)
		if err != nil {
			continue
		}
		memory := mem.NewMemory()
		alloc := mem.NewAllocator(0x100000, 1<<33)
		app := gen(workload.GenConfig{Cores: 2, Seed: 1, Scale: 0.05}, alloc, memory)
		cont := "Low"
		if app.HighContention {
			cont = "High"
		}
		tab.AddRow(name, app.InputDesc, fmtLen(app.MeanTxLen), cont)
	}
	sb.WriteString(tab.String())
	return sb.String()
}

func fmtLen(n int) string {
	if n >= 1000 {
		return fmt.Sprintf("%.1fK", float64(n)/1000)
	}
	return fmt.Sprintf("%d", n)
}

// Table5Apps are the three coarse-grained apps whose overflow statistics
// the paper tabulates.
var Table5Apps = []string{"bayes", "labyrinth", "yada"}

// Table5 holds the overflow statistics experiment.
type Table5 struct {
	Mtx *Matrix
}

// RunTable5 measures transactional data overflows (LogTM-SE/FasTM) and
// redirect-table overflows (SUV-TM) on bayes, labyrinth and yada.
func RunTable5(opts Options) (*Table5, error) {
	opts.Apps = Table5Apps
	mtx, err := RunMatrix(opts, Fig6Schemes)
	if err != nil {
		return nil, err
	}
	return &Table5{Mtx: mtx}, nil
}

// Render prints the Table V analogue. For LogTM-SE and FasTM the
// relevant overflow is transactional data exceeding the L1 cache (FasTM
// additionally degenerates when a speculative line is evicted); SUV-TM
// keeps no speculative cache state — both versions live at real
// addresses — so its only virtualization event is a redirect-table
// overflow (a write-set beyond 512 distinct lines).
func (t *Table5) Render() string {
	var sb strings.Builder
	sb.WriteString("Table V: overflow statistics for bayes, labyrinth and yada\n")
	tab := stats.NewTable("app", "scheme", "attempts", "overflowed tx", "overflow kind",
		"spec evictions", "redirect entries", "pool pages")
	for _, app := range t.Mtx.Apps {
		for _, s := range t.Mtx.Schemes {
			out := t.Mtx.Get(app, s)
			overflow, kind := out.Counters.CacheOverflowTx, "L1 data cache"
			if s == SUVTM {
				overflow, kind = out.Counters.TableOverflowTx, "redirect table"
			}
			tab.AddRow(app, string(s),
				fmt.Sprintf("%d", out.Counters.TxCommitted+out.Counters.TxAborted),
				fmt.Sprintf("%d", overflow),
				kind,
				fmt.Sprintf("%d", out.Counters.SpecLineEvicted),
				fmt.Sprintf("%d", out.RedirectEn),
				fmt.Sprintf("%d", out.PoolPages))
		}
	}
	sb.WriteString(tab.String())
	sb.WriteString("\nThe redirect table is fully associative and holds a mapping per line, so\nSUV-TM only overflows past 512 distinct written lines, while the 4-way L1\noverflows on set conflicts — the mechanism behind the paper's 'redirect\ntable avoids nearly half of the transactional data overflow'.\n")
	return sb.String()
}
