package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// forensicSpec is a small run with genuine signature aliasing (vacation
// at this scale reports false positives under every scheme).
var forensicSpec = Spec{App: "vacation", Scheme: SUVTM, Scale: 0.2, Forensics: true}

// TestForensicsOracle is the acceptance oracle: the collector's two
// bookkeeping paths must agree — FalsePositives is exactly the gap
// between signature-reported hits and precise-set-confirmed hits — and
// the forensic totals must dominate the machine's own coarse counter.
func TestForensicsOracle(t *testing.T) {
	out, err := Run(forensicSpec)
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Forensics
	if rep == nil {
		t.Fatal("Spec.Forensics set but Outcome.Forensics is nil")
	}
	s := rep.Summary
	if s.SigHits == 0 {
		t.Fatal("seeded run produced no signature-reported conflicts")
	}
	if s.FalsePositives == 0 {
		t.Fatal("seeded run produced no false positives; the oracle is vacuous")
	}
	if s.FalsePositives != s.SigHits-s.PreciseHits {
		t.Errorf("oracle violated: FP=%d, sigHits-preciseHits=%d-%d=%d",
			s.FalsePositives, s.SigHits, s.PreciseHits, s.SigHits-s.PreciseHits)
	}
	if s.TrueConflicts+s.FalsePositives != s.SigHits {
		t.Errorf("true+false = %d+%d != sigHits=%d",
			s.TrueConflicts, s.FalsePositives, s.SigHits)
	}
	// The machine's FalsePositive counter covers only eager NACK
	// classification; forensics additionally classifies commit kills and
	// non-transactional dooms, so it can only see more.
	if s.FalsePositives < out.Counters.FalsePositive {
		t.Errorf("forensic FP=%d < machine counter FP=%d",
			s.FalsePositives, out.Counters.FalsePositive)
	}
	if s.Aborts != out.Counters.TxAborted {
		t.Errorf("forensic aborts=%d != machine TxAborted=%d",
			s.Aborts, out.Counters.TxAborted)
	}
	// Every abort was attributed: the per-cause events for abort causes
	// sum to the abort count (no event fell through as CauseNone).
	for _, c := range rep.Causes {
		if c.Cause == "none" {
			t.Errorf("unattributed events reached the report: %+v", c)
		}
	}
	if len(rep.Folds) == 0 || len(rep.Sites) == 0 || len(rep.Lines) == 0 {
		t.Errorf("report missing aggregates: %d folds, %d sites, %d lines",
			len(rep.Folds), len(rep.Sites), len(rep.Lines))
	}

	// Forensics is strictly observational: the same spec without it must
	// simulate bit-identically.
	plain := forensicSpec
	plain.Forensics = false
	bare, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cycles != out.Cycles || bare.Counters != out.Counters {
		t.Errorf("enabling forensics perturbed the run: %d vs %d cycles",
			bare.Cycles, out.Cycles)
	}
}

// TestForensicsReplayStable runs the same forensic spec twice (forensic
// runs bypass the run cache) and requires bit-identical reports — the
// provenance layer must not perturb or be perturbed by anything
// nondeterministic.
func TestForensicsReplayStable(t *testing.T) {
	render := func() []byte {
		out, err := Run(forensicSpec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := out.Forensics.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("two replays produced different forensic reports")
	}
}

// TestForensicsFleetRace runs forensic specs concurrently with progress
// streaming — under -race this checks that per-run collectors and the
// progress tracker are properly isolated/locked.
func TestForensicsFleetRace(t *testing.T) {
	resetFleetForTest(t)
	var specs []Spec
	for _, app := range []string{"intruder", "kmeans"} {
		for _, s := range []Scheme{LogTMSE, SUVTM} {
			specs = append(specs, Spec{App: app, Scheme: s, Cores: 4, Scale: 0.05,
				Forensics: true})
		}
	}
	var mu sync.Mutex
	var snaps []FleetProgress
	outs, err := RunManyWith(specs, BatchOptions{
		Jobs: 4,
		OnProgress: func(p FleetProgress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
		ProgressEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out == nil || out.Forensics == nil {
			t.Fatalf("spec %d missing forensic report", i)
		}
		// kmeans at this tiny scale is conflict-free; intruder is not.
		if specs[i].App == "intruder" &&
			out.Forensics.Summary.NACKs == 0 && out.Forensics.Summary.Aborts == 0 {
			t.Errorf("spec %d (%s/%s): empty forensic report",
				i, specs[i].App, specs[i].Scheme)
		}
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots streamed")
	}
	last := snaps[len(snaps)-1]
	if last.Done != len(specs) || last.Failed != 0 {
		t.Errorf("final snapshot done=%d failed=%d, want %d/0",
			last.Done, last.Failed, len(specs))
	}
	var schemes []string
	for _, sp := range last.Schemes {
		schemes = append(schemes, string(sp.Scheme))
	}
	if got := strings.Join(schemes, ","); got != "LogTM-SE,SUV-TM" {
		t.Errorf("scheme rollup = %q, want sorted LogTM-SE,SUV-TM", got)
	}
}

// TestRunForensicsRender drives the scheme-comparison entry point end
// to end and spot-checks the rendered tables.
func TestRunForensicsRender(t *testing.T) {
	cmp, err := RunForensics("intruder", Fig6Schemes, ForensicsOptions{
		Cores: 4, Scale: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Reports) != len(Fig6Schemes) {
		t.Fatalf("got %d reports, want %d", len(cmp.Reports), len(Fig6Schemes))
	}
	text := cmp.Render()
	for _, s := range Fig6Schemes {
		if !strings.Contains(text, string(s)) {
			t.Errorf("render missing scheme %s:\n%s", s, text)
		}
	}
	if !strings.Contains(text, "Hottest contention points") {
		t.Errorf("render missing contention table:\n%s", text)
	}
}
