package experiments

import (
	"fmt"
	"math"
	"strings"

	"suvtm/internal/stats"
)

// SeedStats summarizes one (app, scheme) configuration over several
// seeds: simulation results are deterministic per seed, so the spread
// here is the workload's sensitivity to interleaving, not measurement
// noise.
type SeedStats struct {
	Spec     Spec
	Seeds    []uint64
	Cycles   []float64
	AbortPct []float64
}

// RunSeeds executes spec once per seed.
func RunSeeds(spec Spec, seeds []uint64) (*SeedStats, error) {
	specs := make([]Spec, len(seeds))
	for i, s := range seeds {
		sp := spec
		sp.Seed = s
		specs[i] = sp
	}
	outs, err := RunMany(specs)
	if err != nil {
		return nil, err
	}
	st := &SeedStats{Spec: spec, Seeds: append([]uint64(nil), seeds...)}
	for _, out := range outs {
		if out.CheckErr != nil {
			return nil, fmt.Errorf("seed %d: %w", out.Spec.Seed, out.CheckErr)
		}
		st.Cycles = append(st.Cycles, float64(out.Cycles))
		st.AbortPct = append(st.AbortPct, 100*out.Counters.AbortRatio())
	}
	return st, nil
}

// MeanCycles returns the mean simulated cycles across seeds.
func (s *SeedStats) MeanCycles() float64 { return stats.Mean(s.Cycles) }

// StdevCycles returns the sample standard deviation of cycles.
func (s *SeedStats) StdevCycles() float64 { return stdev(s.Cycles) }

// CV returns the coefficient of variation of cycles (stdev/mean).
func (s *SeedStats) CV() float64 {
	m := s.MeanCycles()
	if m == 0 {
		return 0
	}
	return s.StdevCycles() / m
}

func stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := stats.Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// SeedStudy is a multi-seed Figure 6 style comparison: per-app speedups
// with seed spread, establishing that the headline numbers are not an
// artifact of one interleaving.
type SeedStudy struct {
	Apps    []string
	Seeds   []uint64
	Base    Scheme
	Mine    Scheme
	PerSeed map[uint64]map[string]float64 // seed -> app -> speedup
}

// RunSeedStudy measures mine-vs-base speedups per app per seed.
func RunSeedStudy(opts Options, base, mine Scheme, seeds []uint64) (*SeedStudy, error) {
	apps := opts.apps()
	study := &SeedStudy{Apps: apps, Seeds: seeds, Base: base, Mine: mine, PerSeed: map[uint64]map[string]float64{}}
	var specs []Spec
	for _, seed := range seeds {
		for _, app := range apps {
			for _, s := range []Scheme{base, mine} {
				specs = append(specs, Spec{App: app, Scheme: s, Cores: opts.Cores, Seed: seed, Scale: opts.Scale})
			}
		}
	}
	outs, err := RunMany(specs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, seed := range seeds {
		row := map[string]float64{}
		for _, app := range apps {
			b, m := outs[i], outs[i+1]
			i += 2
			if b.CheckErr != nil || m.CheckErr != nil {
				return nil, fmt.Errorf("%s seed %d: %v %v", app, seed, b.CheckErr, m.CheckErr)
			}
			row[app] = Speedup(b, m)
		}
		study.PerSeed[seed] = row
	}
	return study, nil
}

// MeanSpeedup returns the across-seed mean of per-app geometric-mean
// speedups and its standard deviation.
func (s *SeedStudy) MeanSpeedup() (mean, sd float64) {
	var perSeed []float64
	for _, seed := range s.Seeds {
		var ratios []float64
		for _, app := range s.Apps {
			ratios = append(ratios, 1+s.PerSeed[seed][app])
		}
		perSeed = append(perSeed, stats.GeoMean(ratios)-1)
	}
	return stats.Mean(perSeed), stdev(perSeed)
}

// Render prints the per-seed speedups and the summary.
func (s *SeedStudy) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Seed study: %s vs %s over %d seeds\n", s.Mine, s.Base, len(s.Seeds))
	header := append([]string{"seed"}, s.Apps...)
	header = append(header, "geomean")
	tab := stats.NewTable(header...)
	for _, seed := range s.Seeds {
		row := []string{fmt.Sprintf("%d", seed)}
		var ratios []float64
		for _, app := range s.Apps {
			sp := s.PerSeed[seed][app]
			ratios = append(ratios, 1+sp)
			row = append(row, stats.Pct(sp))
		}
		row = append(row, stats.Pct(stats.GeoMean(ratios)-1))
		tab.AddRow(row...)
	}
	sb.WriteString(tab.String())
	mean, sd := s.MeanSpeedup()
	fmt.Fprintf(&sb, "mean speedup %.1f%% (stdev %.1f%% across seeds)\n", 100*mean, 100*sd)
	return sb.String()
}
