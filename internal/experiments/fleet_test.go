package experiments

import (
	"context"
	"os"
	"reflect"
	"testing"
)

// fleetSpec is a small, fast run the cache tests reuse.
var fleetSpec = Spec{App: "intruder", Scheme: SUVTM, Cores: 4, Scale: 0.05}

// resetFleetForTest gives each test a cold cache with no disk tier and
// restores nothing (tests run sequentially in one package).
func resetFleetForTest(t *testing.T) {
	t.Helper()
	if err := SetRunCacheDir(""); err != nil {
		t.Fatal(err)
	}
	SetRunCacheVerify(0)
	if err := ResetRunCache(); err != nil {
		t.Fatal(err)
	}
}

func sameOutcome(a, b *Outcome) bool {
	if a == nil || b == nil || a.Result == nil || b.Result == nil {
		return false
	}
	return a.Cycles == b.Cycles && a.Breakdown == b.Breakdown &&
		a.Counters == b.Counters && reflect.DeepEqual(a.PerCore, b.PerCore) &&
		a.PoolPages == b.PoolPages && a.RedirectEn == b.RedirectEn
}

// TestRunManyStopsAfterFailure is the regression test for the RunMany
// doc-comment contract: once a run fails, no further specs are
// dispatched, but outcomes computed before the failure are kept.
func TestRunManyStopsAfterFailure(t *testing.T) {
	resetFleetForTest(t)
	good := fleetSpec
	bad := Spec{App: "no-such-app", Scheme: SUVTM}
	specs := []Spec{good, bad, good, good, good}
	// One worker + submission order makes the schedule deterministic:
	// the good spec at index 0 runs, index 1 fails, 2..4 never dispatch.
	outs, err := RunManyWith(specs, BatchOptions{Jobs: 1, NoSchedule: true})
	if err == nil {
		t.Fatal("expected the unknown-app error")
	}
	if outs[0] == nil || outs[0].Result == nil {
		t.Error("outcome computed before the failure was dropped")
	}
	for i := 2; i < len(specs); i++ {
		if outs[i] != nil {
			t.Errorf("spec %d was dispatched after the failure", i)
		}
	}

	// KeepGoing restores the run-everything behavior chaos sweeps need.
	outs, errs := runBatch(specs, BatchOptions{Jobs: 1, NoSchedule: true, KeepGoing: true})
	for i := range specs {
		wantErr := i == 1
		if (errs[i] != nil) != wantErr {
			t.Errorf("KeepGoing spec %d: err=%v", i, errs[i])
		}
		if !wantErr && (outs[i] == nil || outs[i].Result == nil) {
			t.Errorf("KeepGoing spec %d: missing outcome", i)
		}
	}
}

// TestRunCacheHitDeterminism: the same pure spec twice returns an
// identical Result, first as a miss, then served from the cache — and
// both match a cold Run.
func TestRunCacheHitDeterminism(t *testing.T) {
	resetFleetForTest(t)
	first, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(first[0], second[0]) {
		t.Error("cache-served outcome differs from the live run")
	}
	cold, err := Run(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(first[0], cold) {
		t.Error("fleet outcome differs from a cold Run")
	}
	s := FleetSnapshot()
	if s.Misses != 1 || s.Hits != 1 || s.Stores != 1 {
		t.Errorf("fleet stats = %+v", s)
	}
}

// TestRunCacheVerify arms spot-check mode and proves a clean cache
// passes while a poisoned entry fails the batch.
func TestRunCacheVerify(t *testing.T) {
	resetFleetForTest(t)
	SetRunCacheVerify(1) // re-simulate every hit
	if _, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{}); err != nil {
		t.Fatalf("verify of an honest cache failed: %v", err)
	}
	if s := FleetSnapshot(); s.Verified != 1 {
		t.Errorf("verified = %d, want 1", s.Verified)
	}

	// Poison the cached entry; the next hit must fail loudly.
	key, err := fingerprintOf(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := fleetCache.Load().Get(key)
	if !ok {
		t.Fatal("entry vanished")
	}
	poisoned := *e
	poisoned.Cycles++
	fleetCache.Load().Put(key, &poisoned)
	if _, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{}); err == nil {
		t.Fatal("verify did not catch a poisoned cache entry")
	}
}

// TestRunCacheBypass: metrics, trace, Chrome-trace and fault-injected
// specs must bypass the cache so their side outputs are real, and the
// bypass must be visible in the counters.
func TestRunCacheBypass(t *testing.T) {
	resetFleetForTest(t)
	impure := []Spec{
		{App: "intruder", Scheme: SUVTM, Cores: 4, Scale: 0.05, Metrics: true},
		{App: "intruder", Scheme: SUVTM, Cores: 4, Scale: 0.05, TraceEvents: 4},
		{App: "intruder", Scheme: SUVTM, Cores: 4, Scale: 0.05, ChromeTrace: true},
		{App: "intruder", Scheme: SUVTM, Cores: 4, Scale: 0.05, FaultPlan: "nack-storm"},
	}
	for _, spec := range impure {
		if Cacheable(spec) {
			t.Errorf("spec %+v should not be cacheable", spec)
		}
	}
	// Twice: were these cached, the second batch would serve stale
	// outcomes with nil Metrics/Trace.
	for round := 0; round < 2; round++ {
		outs, err := RunManyWith(impure, BatchOptions{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if outs[0].Metrics == nil {
			t.Fatal("metrics output missing")
		}
		if outs[1].Trace == nil {
			t.Fatal("trace output missing")
		}
		if outs[2].Chrome == nil {
			t.Fatal("Chrome trace output missing")
		}
		if outs[3].Counters.InjectedNACKs == 0 {
			t.Fatal("fault plan did not inject")
		}
	}
	s := FleetSnapshot()
	if s.Bypasses != 8 || s.Hits != 0 || s.Stores != 0 {
		t.Errorf("fleet stats = %+v", s)
	}
}

// TestRunCacheDiskTier drives the on-disk tier through the experiments
// layer: entries persist across an in-process cache reset, and a
// corrupted file falls back to a live run without erroring.
func TestRunCacheDiskTier(t *testing.T) {
	resetFleetForTest(t)
	dir := t.TempDir()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resetFleetForTest(t) })

	first, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key, err := fingerprintOf(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	path := fleetCache.Load().EntryPath(key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry not persisted: %v", err)
	}

	// Drop the memory tier; the disk tier must serve the same outcome.
	if err := ResetRunCache(); err != nil {
		t.Fatal(err)
	}
	warm, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(first[0], warm[0]) {
		t.Error("disk-served outcome differs")
	}
	if s := FleetSnapshot(); s.DiskHits != 1 {
		t.Errorf("fleet stats = %+v", s)
	}

	// Corrupt the entry: the next batch re-simulates, silently.
	if err := os.WriteFile(path, []byte("truncated garba"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ResetRunCache(); err != nil {
		t.Fatal(err)
	}
	live, err := RunManyWith([]Spec{fleetSpec}, BatchOptions{})
	if err != nil {
		t.Fatalf("corrupt entry broke the batch: %v", err)
	}
	if !sameOutcome(first[0], live[0]) {
		t.Error("post-corruption live outcome differs")
	}
	s := FleetSnapshot()
	if s.Corrupt != 1 || s.Misses != 1 {
		t.Errorf("fleet stats = %+v", s)
	}
}

// TestFleetMatchesCold: a heterogeneous batch under full fleet options
// (arenas, scheduling, cache) is bit-identical to cold Runs of the same
// specs.
func TestFleetMatchesCold(t *testing.T) {
	resetFleetForTest(t)
	specs := []Spec{
		{App: "intruder", Scheme: SUVTM, Cores: 4, Scale: 0.05},
		{App: "vacation", Scheme: LogTMSE, Cores: 4, Scale: 0.05},
		{App: "kmeans", Scheme: FasTM, Cores: 4, Scale: 0.05},
		{App: "intruder", Scheme: SUVTM, Cores: 4, Scale: 0.05}, // repeat: cache hit
		{App: "vacation", Scheme: SUVTM, Cores: 2, Scale: 0.05}, // geometry change mid-arena
	}
	outs, err := RunManyWith(specs, BatchOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		cold, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutcome(outs[i], cold) {
			t.Errorf("spec %d (%s/%s): fleet outcome differs from cold run", i, spec.App, spec.Scheme)
		}
	}
	s := FleetSnapshot()
	if s.Hits != 1 {
		t.Errorf("repeated spec was not deduped: %+v", s)
	}
	if s.ArenaReuses == 0 {
		t.Error("arenas were never reused")
	}
}

// TestDispatchOrder: longest-expected-first, stable among equals, and
// submission order under NoSchedule.
func TestDispatchOrder(t *testing.T) {
	costMu.Lock()
	costTable["intruder"] = 1000
	costTable["kmeans"] = 10
	costTable["bayes"] = 5000
	costMu.Unlock()
	specs := []Spec{
		{App: "kmeans", Scheme: SUVTM},
		{App: "bayes", Scheme: SUVTM},
		{App: "intruder", Scheme: SUVTM},
		{App: "bayes", Scheme: SUVTM, Scale: 0.5}, // half the expected work
	}
	got := dispatchOrder(specs, BatchOptions{})
	want := []int{1, 3, 2, 0} // bayes, bayes@0.5, intruder, kmeans
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dispatch order = %v, want %v", got, want)
	}
	got = dispatchOrder(specs, BatchOptions{NoSchedule: true})
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("NoSchedule order = %v", got)
	}

	// Identical specs keep submission order (chaos replay pairs).
	same := []Spec{
		{App: "intruder", Scheme: SUVTM},
		{App: "intruder", Scheme: SUVTM},
	}
	if got := dispatchOrder(same, BatchOptions{}); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("equal-cost order = %v, want [0 1]", got)
	}
}

// TestRunManyContextCancel pins the BatchOptions.Context contract: once
// the context is done, no further specs are dispatched (even with
// KeepGoing) and RunManyWith surfaces the context error for the
// never-dispatched slots.
func TestRunManyContextCancel(t *testing.T) {
	resetFleetForTest(t)
	specs := []Spec{fleetSpec, fleetSpec, fleetSpec, fleetSpec, fleetSpec}
	ctx, cancel := context.WithCancel(context.Background())
	// One worker + submission order + per-completion progress makes the
	// schedule deterministic: the callback cancels after run 0, so runs
	// 1..4 must never dispatch. NoCache keeps every dispatch a real run.
	outs, err := RunManyWith(specs, BatchOptions{
		Jobs: 1, NoSchedule: true, NoCache: true, KeepGoing: true,
		Context:    ctx,
		OnProgress: func(FleetProgress) { cancel() },
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if outs[0] == nil || outs[0].Result == nil {
		t.Error("the in-flight run at cancel time was dropped")
	}
	for i := 1; i < len(specs); i++ {
		if outs[i] != nil {
			t.Errorf("spec %d was dispatched after cancellation", i)
		}
	}

	// A pre-canceled context dispatches nothing at all.
	outs, err = RunManyWith(specs, BatchOptions{Jobs: 1, Context: ctx})
	if err != context.Canceled {
		t.Fatalf("pre-canceled err = %v, want context.Canceled", err)
	}
	for i, o := range outs {
		if o != nil {
			t.Errorf("spec %d ran under a pre-canceled context", i)
		}
	}

	// A batch that completes before cancellation reports no error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	outs, err = RunManyWith(specs[:2], BatchOptions{Jobs: 1, Context: ctx2})
	cancel2()
	if err != nil {
		t.Fatalf("completed batch err = %v", err)
	}
	for i, o := range outs {
		if o == nil || o.Result == nil {
			t.Errorf("spec %d missing outcome", i)
		}
	}
}
