package experiments

import (
	"fmt"
	"strings"

	"suvtm/internal/stats"
)

// ScalingCores is the default core-count sweep.
var ScalingCores = []int{1, 2, 4, 8, 16, 32}

// ScalingPoint is one (cores, scheme) measurement. Workload generators
// emit a fixed amount of work *per core*, so ideal scaling keeps cycles
// flat as cores grow; contention makes them rise. Speedup is reported as
// weak-scaling efficiency: cycles(1 core) / cycles(n cores).
type ScalingPoint struct {
	Cores    int
	PerSch   map[Scheme]*Outcome
	AbortPct map[Scheme]float64
}

// Scaling is a core-count study for one application.
type Scaling struct {
	App     string
	Schemes []Scheme
	Points  []ScalingPoint
}

// RunScaling sweeps the core count for app under the given schemes —
// the direct test of the paper's thesis that shorter isolation windows
// expose more thread parallelism.
func RunScaling(app string, schemes []Scheme, coreCounts []int, seed uint64, scale float64) (*Scaling, error) {
	if len(coreCounts) == 0 {
		coreCounts = ScalingCores
	}
	var specs []Spec
	for _, n := range coreCounts {
		for _, s := range schemes {
			specs = append(specs, Spec{App: app, Scheme: s, Cores: n, Seed: seed, Scale: scale})
		}
	}
	outs, err := RunMany(specs)
	if err != nil {
		return nil, err
	}
	sc := &Scaling{App: app, Schemes: schemes}
	i := 0
	for _, n := range coreCounts {
		pt := ScalingPoint{Cores: n, PerSch: map[Scheme]*Outcome{}, AbortPct: map[Scheme]float64{}}
		for _, s := range schemes {
			out := outs[i]
			i++
			if out.CheckErr != nil {
				return nil, fmt.Errorf("%s/%s at %d cores: %w", app, s, n, out.CheckErr)
			}
			pt.PerSch[s] = out
			pt.AbortPct[s] = 100 * out.Counters.AbortRatio()
		}
		sc.Points = append(sc.Points, pt)
	}
	return sc, nil
}

// Efficiency returns scheme's weak-scaling efficiency at each point:
// cycles at 1 core divided by cycles at n cores (1.0 = perfect).
func (sc *Scaling) Efficiency(s Scheme) []float64 {
	base := float64(sc.Points[0].PerSch[s].Cycles)
	out := make([]float64, len(sc.Points))
	for i, pt := range sc.Points {
		out[i] = base / float64(pt.PerSch[s].Cycles)
	}
	return out
}

// Render prints cycles, weak-scaling efficiency and abort ratios per
// core count and scheme.
func (sc *Scaling) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scaling study: %s (work per core is fixed; 1.0 efficiency = perfect weak scaling)\n", sc.App)
	header := []string{"cores"}
	for _, s := range sc.Schemes {
		header = append(header, string(s)+" cycles", string(s)+" eff", string(s)+" abort%")
	}
	tab := stats.NewTable(header...)
	effs := map[Scheme][]float64{}
	for _, s := range sc.Schemes {
		effs[s] = sc.Efficiency(s)
	}
	for i, pt := range sc.Points {
		row := []string{fmt.Sprintf("%d", pt.Cores)}
		for _, s := range sc.Schemes {
			row = append(row,
				fmt.Sprintf("%d", pt.PerSch[s].Cycles),
				stats.F3(effs[s][i]),
				fmt.Sprintf("%.1f", pt.AbortPct[s]))
		}
		tab.AddRow(row...)
	}
	sb.WriteString(tab.String())
	return sb.String()
}
