package experiments

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/mem"
	"suvtm/internal/sim"
	"suvtm/internal/workload"
)

// randomProgram builds a seeded random single-core program over a small
// region: nested transactions, loads, stores, register arithmetic — the
// whole trace language.
func randomProgram(seed uint64, region workload.Region, ops int) workload.Program {
	rng := sim.NewRNG(seed)
	b := workload.NewBuilder()
	depth := 0
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0:
			if depth < 3 {
				b.Begin(uint32(rng.Intn(4)))
				depth++
			}
		case 1:
			if depth > 0 {
				b.Commit()
				depth--
			}
		case 2, 3:
			b.Load(uint8(rng.Intn(workload.NumRegs)), region.WordAddr(rng.Intn(region.Lines), rng.Intn(8)))
		case 4, 5:
			b.Store(region.WordAddr(rng.Intn(region.Lines), rng.Intn(8)), uint8(rng.Intn(workload.NumRegs)))
		case 6:
			b.StoreImm(region.WordAddr(rng.Intn(region.Lines), rng.Intn(8)), rng.Uint64()%1000)
		case 7:
			b.AddImm(uint8(rng.Intn(workload.NumRegs)), int64(rng.Intn(21)-10))
		case 8:
			b.AddReg(uint8(rng.Intn(workload.NumRegs)), uint8(rng.Intn(workload.NumRegs)))
		case 9:
			b.Compute(uint32(rng.Intn(30)))
		}
	}
	for depth > 0 {
		b.Commit()
		depth--
	}
	b.Barrier(0)
	return b.Build()
}

// TestDifferentialSingleCore runs random programs on one core under
// every scheme and compares the architectural memory word-for-word
// against the sequential reference interpreter. Any version-management
// value bug — lost fill, wrong redirect target, bad undo record —
// diverges here.
func TestDifferentialSingleCore(t *testing.T) {
	const lines = 6
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		// Reference execution.
		refMem := mem.NewMemory()
		refAlloc := mem.NewAllocator(0x100000, 1<<30)
		refRegion := workload.NewRegion(refAlloc, lines)
		refProg := randomProgram(seed, refRegion, 300)
		if err := workload.Interpret(refProg, refMem); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}

		for _, scheme := range allSchemes {
			memory := mem.NewMemory()
			alloc := mem.NewAllocator(0x100000, 1<<30)
			region := workload.NewRegion(alloc, lines)
			prog := randomProgram(seed, region, 300)
			vm, err := NewVM(scheme)
			if err != nil {
				t.Fatal(err)
			}
			cfg := htm.DefaultConfig(1)
			m := htm.New(cfg, vm, []workload.Program{prog}, memory, alloc)
			if _, err := m.Run(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, scheme, err)
			}
			arch := m.ArchMem()
			for l := 0; l < lines; l++ {
				for w := 0; w < 8; w++ {
					got := arch.Read(region.WordAddr(l, w))
					want := refMem.Read(refRegion.WordAddr(l, w))
					if got != want {
						t.Fatalf("seed %d %s: line %d word %d = %d, want %d",
							seed, scheme, l, w, got, want)
					}
				}
			}
		}
	}
}

// TestDifferentialTinyCaches repeats the differential test with
// deliberately starved hardware (tiny L1, tiny redirect tables) so every
// overflow path is on the value-critical path.
func TestDifferentialTinyCaches(t *testing.T) {
	const lines = 10
	for seed := uint64(100); seed < 115; seed++ {
		refMem := mem.NewMemory()
		refAlloc := mem.NewAllocator(0x100000, 1<<30)
		refRegion := workload.NewRegion(refAlloc, lines)
		refProg := randomProgram(seed, refRegion, 400)
		if err := workload.Interpret(refProg, refMem); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, scheme := range allSchemes {
			memory := mem.NewMemory()
			alloc := mem.NewAllocator(0x100000, 1<<30)
			region := workload.NewRegion(alloc, lines)
			prog := randomProgram(seed, region, 400)
			vm, err := NewVM(scheme)
			if err != nil {
				t.Fatal(err)
			}
			cfg := htm.DefaultConfig(1)
			cfg.L1 = mem.CacheConfig{SizeBytes: 4 * sim.LineBytes, Ways: 2}
			cfg.Redirect.L1Entries = 3
			cfg.Redirect.L2Entries = 4
			cfg.Redirect.L2Ways = 2
			m := htm.New(cfg, vm, []workload.Program{prog}, memory, alloc)
			if _, err := m.Run(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, scheme, err)
			}
			arch := m.ArchMem()
			for l := 0; l < lines; l++ {
				for w := 0; w < 8; w++ {
					got := arch.Read(region.WordAddr(l, w))
					want := refMem.Read(refRegion.WordAddr(l, w))
					if got != want {
						t.Fatalf("seed %d %s (starved hw): line %d word %d = %d, want %d",
							seed, scheme, l, w, got, want)
					}
				}
			}
		}
	}
}

// TestAblationShapes checks the ablation studies' qualitative claims at
// reduced scale: disabling redirect-back grows the entry count; shrinking
// signatures increases false positives.
func TestAblationShapes(t *testing.T) {
	opts := Options{Scale: 0.15, Apps: []string{"intruder", "yada"}}
	rb, err := RunAblationRedirectBack(opts)
	if err != nil {
		t.Fatal(err)
	}
	entries := func(row AblationRow) (n uint64) {
		for _, o := range row.Outcomes {
			n += uint64(o.RedirectEn)
		}
		return
	}
	if entries(rb.Rows[1]) <= entries(rb.Rows[0]) {
		t.Errorf("disabling redirect-back did not grow the entry count: %d vs %d",
			entries(rb.Rows[1]), entries(rb.Rows[0]))
	}

	sig, err := RunAblationSigBits(Options{Scale: 0.15, Apps: []string{"intruder"}})
	if err != nil {
		t.Fatal(err)
	}
	fp := func(row AblationRow) (n uint64) {
		for _, o := range row.Outcomes {
			n += o.Counters.FalsePositive
		}
		return
	}
	if fp(sig.Rows[0]) <= fp(sig.Rows[len(sig.Rows)-1]) {
		t.Errorf("small signatures did not alias more: %d vs %d",
			fp(sig.Rows[0]), fp(sig.Rows[len(sig.Rows)-1]))
	}
	// The execution-time effect of aliasing is workload-dependent at tiny
	// scales; the full-scale trend is recorded in EXPERIMENTS.md.
	t.Logf("sig-size cycles: %d (256b) vs %d (4096b)",
		sig.Rows[0].TotalCycles(), sig.Rows[len(sig.Rows)-1].TotalCycles())
}
