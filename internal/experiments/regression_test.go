package experiments

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/htm/suvtm"
	"suvtm/internal/mem"
	"suvtm/internal/workload"
)

// TestSUVSingleCoreRMW bisects the SUV value path with one core and no
// conflicts: repeated transactional increments of a few words must sum
// exactly.
func TestSUVSingleCoreRMW(t *testing.T) {
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<30)
	region := workload.NewRegion(alloc, 8)
	b := workload.NewBuilder()
	const txs = 50
	for i := 0; i < txs; i++ {
		b.Begin(0)
		for k := 0; k < 4; k++ {
			addr := region.WordAddr((i+k)%8, (i*3+k)%8)
			b.Load(0, addr)
			b.AddImm(0, 1)
			b.Store(addr, 0)
		}
		b.Commit()
	}
	b.Barrier(0)
	prog := b.Build()

	cfg := htm.DefaultConfig(1)
	m := htm.New(cfg, suvtm.New(), []workload.Program{prog}, memory, alloc)
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	arch := m.ArchMem()
	var sum int64
	for i := 0; i < 8; i++ {
		for w := 0; w < 8; w++ {
			sum += int64(arch.Read(region.WordAddr(i, w)))
		}
	}
	if sum != txs*4 {
		t.Fatalf("sum = %d, want %d", sum, txs*4)
	}
}
