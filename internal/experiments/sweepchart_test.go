package experiments

import (
	"strings"
	"testing"
)

func TestRenderChart(t *testing.T) {
	s := &Sweep{
		Name: "test sweep",
		Points: []SweepPoint{
			{Param: 64, TotalCycles: 1000, MissRate: 0.5},
			{Param: 128, TotalCycles: 900, MissRate: 0.3},
			{Param: 256, TotalCycles: 800, MissRate: 0.2},
		},
	}
	out := s.RenderChart(8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart missing markers:\n%s", out)
	}
	for _, p := range []string{"64", "128", "256"} {
		if !strings.Contains(out, p) {
			t.Fatalf("axis missing %s:\n%s", p, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+8+2 {
		t.Fatalf("chart rows = %d:\n%s", len(lines), out)
	}
}

func TestRenderChartDegenerate(t *testing.T) {
	s := &Sweep{Name: "flat", Points: []SweepPoint{{Param: 1, TotalCycles: 100}}}
	if out := s.RenderChart(4); !strings.Contains(out, "*") {
		t.Fatalf("flat chart missing marker:\n%s", out)
	}
	empty := &Sweep{Name: "empty"}
	if empty.RenderChart(4) != "" {
		t.Fatal("empty sweep rendered a chart")
	}
}
