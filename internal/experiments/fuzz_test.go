package experiments

import (
	"testing"

	"suvtm/internal/htm"
	"suvtm/internal/mem"
	"suvtm/internal/sim"
	"suvtm/internal/workload"
)

// FuzzDifferentialSingleCore is the go-fuzz entry point over the
// sequential reference oracle: for any seed and hardware starvation
// level, every scheme's single-core architectural memory must match the
// interpreter word-for-word. Run with:
//
//	go test ./internal/experiments -fuzz FuzzDifferentialSingleCore
func FuzzDifferentialSingleCore(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(42), uint8(3))
	f.Add(uint64(0xdeadbeef), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, starve uint8) {
		const lines = 8
		refMem := mem.NewMemory()
		refAlloc := mem.NewAllocator(0x100000, 1<<30)
		refRegion := workload.NewRegion(refAlloc, lines)
		refProg := randomProgram(seed, refRegion, 250)
		if err := workload.Interpret(refProg, refMem); err != nil {
			t.Fatalf("reference: %v", err)
		}
		for _, scheme := range allSchemes {
			memory := mem.NewMemory()
			alloc := mem.NewAllocator(0x100000, 1<<30)
			region := workload.NewRegion(alloc, lines)
			prog := randomProgram(seed, region, 250)
			vm, err := NewVM(scheme)
			if err != nil {
				t.Fatal(err)
			}
			cfg := htm.DefaultConfig(1)
			switch starve % 4 {
			case 1:
				cfg.L1 = mem.CacheConfig{SizeBytes: 4 * sim.LineBytes, Ways: 2}
			case 2:
				cfg.Redirect.L1Entries = 2
				cfg.Redirect.L2Entries = 4
				cfg.Redirect.L2Ways = 2
			case 3:
				cfg.L1 = mem.CacheConfig{SizeBytes: 8 * sim.LineBytes, Ways: 2}
				cfg.Redirect.L1Entries = 3
				cfg.Redirect.L2Entries = 4
				cfg.Redirect.L2Ways = 2
			}
			m := htm.New(cfg, vm, []workload.Program{prog}, memory, alloc)
			if _, err := m.Run(); err != nil {
				t.Fatalf("%s: %v", scheme, err)
			}
			arch := m.ArchMem()
			for l := 0; l < lines; l++ {
				for w := 0; w < 8; w++ {
					got := arch.Read(region.WordAddr(l, w))
					want := refMem.Read(refRegion.WordAddr(l, w))
					if got != want {
						t.Fatalf("%s (starve %d): line %d word %d = %d, want %d",
							scheme, starve%4, l, w, got, want)
					}
				}
			}
		}
	})
}
