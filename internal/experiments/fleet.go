package experiments

// fleet.go is the campaign-throughput layer around Run: a
// content-addressed cache of pure outcomes (internal/runcache),
// per-worker machine arenas that reuse the big allocations (memory
// pages, directory pages, redirect tables) across consecutive runs, and
// straggler-aware longest-expected-first scheduling. Every path keeps
// simulations bit-identical to a cold Run — arenas reset to the
// freshly-constructed state, and the cache only ever serves a
// fingerprint that resolves to the exact same machine.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"suvtm/internal/faults"
	"suvtm/internal/htm"
	"suvtm/internal/mem"
	"suvtm/internal/runcache"
	"suvtm/internal/sim"
	"suvtm/internal/stats"
	"suvtm/internal/workload"
)

// BatchOptions tunes a RunManyWith batch. The zero value is the
// default fleet behavior: GOMAXPROCS workers, arenas on, cache on,
// straggler-aware dispatch, stop dispatching after the first failure.
type BatchOptions struct {
	// Context, when non-nil, cancels dispatch: once it is done, workers
	// finish their in-flight run and stop pulling queued specs — even
	// under KeepGoing. Slots that were never dispatched stay nil, and
	// RunManyWith surfaces the context's error when that happens. This
	// is the seam an aborted HTTP request or a draining daemon uses to
	// stop a batch mid-flight instead of simulating to the end.
	Context context.Context
	// Jobs bounds the number of concurrent workers (0 = GOMAXPROCS).
	Jobs int
	// KeepGoing runs every spec even after one fails (chaos sweeps want
	// each cell's individual verdict).
	KeepGoing bool
	// NoArena cold-constructs every machine instead of reusing
	// per-worker arenas (baseline measurements).
	NoArena bool
	// NoSchedule dispatches in submission order instead of
	// longest-expected-first.
	NoSchedule bool
	// NoCache skips the run cache entirely.
	NoCache bool
	// OnProgress, when non-nil, streams a FleetProgress snapshot after
	// every ProgressEvery completed runs (and once when the batch
	// drains). It is the telemetry seam a long campaign's consumer —
	// a progress bar, the future suvd — wires to. The callback runs on a
	// worker goroutine under the batch's progress lock: keep it fast and
	// do not call back into the fleet from inside it.
	OnProgress func(FleetProgress)
	// ProgressEvery is the completed-run granularity of OnProgress
	// (<=0 = every completion). Progress is count-based, never
	// wall-clock-based, so streaming stays deterministic for a fixed
	// batch regardless of host timing.
	ProgressEvery int
}

// SchemeProgress is one scheme's live totals within a running batch,
// aggregated over the runs that have completed so far.
type SchemeProgress struct {
	Scheme         Scheme
	Runs           int
	Failed         int
	Commits        uint64
	Aborts         uint64
	TrueConflicts  uint64 // forensic runs only (0 otherwise)
	FalsePositives uint64 // forensic runs count all sources; else Counters.FalsePositive
	WastedCycles   uint64 // cycles thrown away in aborted attempts
}

// FleetProgress is a streaming snapshot of a batch in flight: overall
// completion, the campaign-layer counters, and per-scheme conflict
// totals (sorted by scheme name, deterministically).
type FleetProgress struct {
	Done    int // completed runs (including failures)
	Total   int
	Failed  int
	Fleet   FleetStats
	Schemes []SchemeProgress
}

// String renders the snapshot as a one-line progress report.
func (p FleetProgress) String() string {
	var sb []byte
	sb = fmt.Appendf(sb, "fleet progress: %d/%d done", p.Done, p.Total)
	if p.Failed > 0 {
		sb = fmt.Appendf(sb, " (%d failed)", p.Failed)
	}
	for _, s := range p.Schemes {
		sb = fmt.Appendf(sb, " | %s: %d runs, %d commits, %d aborts", s.Scheme, s.Runs, s.Commits, s.Aborts)
		if s.FalsePositives > 0 || s.TrueConflicts > 0 {
			sb = fmt.Appendf(sb, ", %d true-conf, %d false-pos", s.TrueConflicts, s.FalsePositives)
		}
	}
	return string(sb)
}

// progressTracker accumulates per-scheme totals as runs complete and
// emits snapshots at the configured granularity.
type progressTracker struct {
	mu      sync.Mutex
	total   int
	done    int
	failed  int
	every   int
	sinceCb int
	schemes map[Scheme]*SchemeProgress
	emit    func(FleetProgress)
}

func newProgressTracker(total int, o BatchOptions) *progressTracker {
	if o.OnProgress == nil {
		return nil
	}
	every := o.ProgressEvery
	if every <= 0 {
		every = 1
	}
	return &progressTracker{
		total:   total,
		every:   every,
		schemes: make(map[Scheme]*SchemeProgress),
		emit:    o.OnProgress,
	}
}

// complete records one finished run and emits a snapshot when due. A
// nil tracker (no OnProgress) is a no-op.
func (t *progressTracker) complete(spec Spec, out *Outcome, err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	t.sinceCb++
	sp, ok := t.schemes[spec.Scheme]
	if !ok {
		sp = &SchemeProgress{Scheme: spec.Scheme}
		t.schemes[spec.Scheme] = sp
	}
	sp.Runs++
	if err != nil {
		t.failed++
		sp.Failed++
	}
	if out != nil && out.Result != nil {
		sp.Commits += out.Counters.TxCommitted
		sp.Aborts += out.Counters.TxAborted
		sp.WastedCycles += out.Breakdown.Cycles[stats.Wasted]
		if out.Forensics != nil {
			sp.TrueConflicts += out.Forensics.Summary.TrueConflicts
			sp.FalsePositives += out.Forensics.Summary.FalsePositives
		} else {
			sp.FalsePositives += out.Counters.FalsePositive
		}
	}
	if t.sinceCb >= t.every || t.done == t.total {
		t.sinceCb = 0
		t.emit(t.snapshotLocked())
	}
}

// finish emits the final snapshot if completions are still unreported
// (a batch that stopped dispatching after a failure never reaches
// done == total).
func (t *progressTracker) finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sinceCb > 0 {
		t.sinceCb = 0
		t.emit(t.snapshotLocked())
	}
}

// snapshotLocked builds a deterministic snapshot; the caller holds mu.
func (t *progressTracker) snapshotLocked() FleetProgress {
	p := FleetProgress{Done: t.done, Total: t.total, Failed: t.failed, Fleet: FleetSnapshot()}
	//suv:orderinsensitive the map is drained into a slice sorted below
	for _, sp := range t.schemes {
		p.Schemes = append(p.Schemes, *sp)
	}
	sort.Slice(p.Schemes, func(i, j int) bool { return p.Schemes[i].Scheme < p.Schemes[j].Scheme })
	return p
}

// RunManyWith executes the specs concurrently under the given fleet
// options, returning outcomes in spec order regardless of dispatch
// order. On failure it returns the first error in spec order among the
// runs that executed; see RunMany for the partial-outcome contract.
// When o.Context is canceled mid-batch, dispatch stops and the
// context's error is returned if any spec was never dispatched.
func RunManyWith(specs []Spec, o BatchOptions) ([]*Outcome, error) {
	outcomes, errs := runBatch(specs, o)
	for _, err := range errs {
		if err != nil {
			return outcomes, err
		}
	}
	if ctx := o.Context; ctx != nil && ctx.Err() != nil {
		for i := range outcomes {
			if outcomes[i] == nil && errs[i] == nil {
				return outcomes, ctx.Err()
			}
		}
	}
	return outcomes, nil
}

// RunCached is Run behind the fleet cache: a pure spec is served from
// (and stored to) the in-process and optional on-disk tiers, while
// specs with observability or fault-injection outputs fall through to a
// cold Run.
func RunCached(spec Spec) (*Outcome, error) {
	return runCachedSpec(spec, nil, BatchOptions{}, soloShardCap())
}

// soloShardCap is the shard bound for a run with no concurrent batch
// siblings: the whole host.
func soloShardCap() int { return runtime.GOMAXPROCS(0) }

// clampShards bounds a run's effective shard count to cap, counting
// every clamp that actually bit (FleetStats.ShardClamps). Shards never
// affect simulation results, so clamping is invisible beyond host
// throughput; the floor is 1 because Shards>=1 selects the window
// engine and only 0 selects the classic sequential loop.
func clampShards(shards, cap int) int {
	if shards > cap && cap >= 1 {
		fleetShardClamps.Add(1)
		return cap
	}
	return shards
}

// runBatch is the fleet engine: one goroutine per worker, each holding
// its own arena, pulling the next spec index from a shared cursor over
// the dispatch order. Results land at their spec index, so consumers
// see submission order no matter how the scheduler reordered execution.
func runBatch(specs []Spec, o BatchOptions) ([]*Outcome, []error) {
	if len(specs) == 0 {
		return nil, nil
	}
	workers := o.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	// With J batch workers each possibly running a K-shard machine, the
	// host would service J*K runnable goroutines; cap each run's shards
	// so J*K never exceeds GOMAXPROCS (shards are a pure host-throughput
	// knob, so the clamp cannot change any outcome).
	shardCap := runtime.GOMAXPROCS(0) / workers
	if shardCap < 1 {
		shardCap = 1
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	order := dispatchOrder(specs, o)
	outcomes := make([]*Outcome, len(specs))
	errs := make([]error, len(specs))
	progress := newProgressTracker(len(specs), o)
	var cursor atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var arena *machineArena
			if !o.NoArena {
				arena = arenaPool.Get().(*machineArena)
				defer arenaPool.Put(arena)
			}
			for {
				if ctx.Err() != nil {
					return
				}
				if !o.KeepGoing && failed.Load() {
					return
				}
				n := int(cursor.Add(1)) - 1
				if n >= len(order) {
					return
				}
				i := order[n]
				outcomes[i], errs[i] = runCachedSpec(specs[i], arena, o, shardCap)
				if errs[i] != nil {
					failed.Store(true)
				} else {
					observeCost(specs[i], outcomes[i])
				}
				progress.complete(specs[i], outcomes[i], errs[i])
			}
		}()
	}
	wg.Wait()
	progress.finish()
	return outcomes, errs
}

// arenaPool recycles worker arenas across runBatch calls, so a session
// that issues many small batches (the CLI sweep loop, benchmarks that
// batch per iteration) keeps its warm memory pages, prebuilt machine
// components and workload memo instead of rebuilding them per call.
// sync.Pool's GC integration is the eviction policy: idle warm state
// survives between nearby batches and is reclaimed under pressure.
var arenaPool = sync.Pool{New: func() any { return new(machineArena) }}

// machineArena is one worker's reusable machine state. The memory and
// allocator are reset between runs; the directory and redirect state
// are handed back to htm.NewWith, which resets them itself (they are
// geometry-dependent, so the reset needs the next run's config).
type machineArena struct {
	memory *mem.Memory
	alloc  *mem.Allocator
	pre    htm.Prebuilt

	// workloads memoizes generated workload images so a sweep that
	// revisits the same (app, cores, seed, scale) — the classic
	// scheme-comparison shape — regenerates nothing: the App is reused
	// and the memory image is replayed from the write journal.
	workloads map[workloadKey]*workloadMemo
	wlCost    int // total program ops pinned by the memo
}

// workloadKey identifies one generated workload image. Generation is a
// pure function of these four values: the scheme is deliberately absent
// (workloads are built before the version manager exists), and faults,
// tweaks and observability options all act downstream of generation.
type workloadKey struct {
	app   string
	cores int
	seed  uint64
	scale float64
}

// workloadMemo is one cached generation: the immutable App (programs
// are read-only during simulation; Check closures read memory only
// after the run), the memory write journal, and the allocator span the
// generator consumed.
type workloadMemo struct {
	app   *workload.App
	log   *mem.WriteLog
	start sim.Addr // allocator cursor when generation began
	bytes uint64   // allocator bytes generation consumed
	cost  int      // total program ops (memo budget unit)
}

// workloadMemoBudget caps the program ops one worker's memo may pin,
// bounding its host-heap footprint (programs dominate the retained
// bytes). Overflow flushes the whole memo: the budget exists to bound
// memory, not to maximize hit rate, and whole-map flushes keep the
// policy deterministic.
const workloadMemoBudget = 3 << 20

// generate returns the App for key, either replaying a memoized image
// into the freshly reset memory/allocator or running gen (journaled)
// and memoizing the result.
func (a *machineArena) generate(key workloadKey, memory *mem.Memory, alloc *mem.Allocator, gen func() *workload.App) *workload.App {
	if rec, ok := a.workloads[key]; ok && alloc.Next() == rec.start {
		rec.log.Replay(memory)
		alloc.Alloc(rec.bytes, 1)
		fleetWorkloadReplays.Add(1)
		return rec.app
	}
	start := alloc.Next()
	memory.StartJournal()
	app := gen()
	log := memory.StopJournal()
	cost := 0
	for i := range app.Programs {
		cost += len(app.Programs[i].Ops)
	}
	if a.wlCost+cost > workloadMemoBudget {
		clear(a.workloads)
		a.wlCost = 0
	}
	if cost <= workloadMemoBudget {
		if a.workloads == nil {
			a.workloads = make(map[workloadKey]*workloadMemo)
		}
		a.workloads[key] = &workloadMemo{
			app:   app,
			log:   log,
			start: start,
			bytes: uint64(alloc.Next() - start),
			cost:  cost,
		}
		a.wlCost += cost
	}
	return app
}

// take returns the arena's memory, allocator and prebuilt components
// ready for the next run, constructing them on first use.
func (a *machineArena) take() (*mem.Memory, *mem.Allocator, htm.Prebuilt) {
	if a.memory == nil {
		a.memory = mem.NewMemory()
		a.alloc = mem.NewAllocator(heapBase, heapSize)
	} else {
		a.memory.Reset()
		a.alloc.Reset(heapBase, heapSize)
		fleetArenaReuses.Add(1)
	}
	return a.memory, a.alloc, a.pre
}

// keep retains the machine's reusable components for the next run.
func (a *machineArena) keep(m *htm.Machine) {
	l1s := a.pre.L1s[:0]
	for _, c := range m.Cores {
		l1s = append(l1s, c.L1)
	}
	a.pre = htm.Prebuilt{Dir: m.Dir, Redirect: m.Redirect, L2: m.L2, L1s: l1s, Par: m.ParArena()}
}

// ---------------------------------------------------------------------
// Run cache glue.

var (
	fleetCache       atomic.Pointer[runcache.Cache]
	fleetCacheRoot   sync.Mutex // guards the configured disk root below
	fleetCacheDir    string
	fleetVerifyEvery atomic.Int64 // 0 = off; N = re-simulate 1st and every Nth hit
	fleetHitSeq      atomic.Uint64
	fleetVerified    atomic.Uint64
	fleetArenaReuses atomic.Uint64
	fleetShardClamps atomic.Uint64

	fleetWorkloadReplays atomic.Uint64
)

func init() { fleetCache.Store(runcache.New()) }

// SetRunCacheDir attaches (dir != "") or detaches (dir == "") the
// on-disk cache tier for this process.
func SetRunCacheDir(dir string) error {
	if err := fleetCache.Load().SetDir(dir); err != nil {
		return err
	}
	fleetCacheRoot.Lock()
	fleetCacheDir = dir
	fleetCacheRoot.Unlock()
	return nil
}

// SetRunCacheVerify arms spot-check mode: the first and every Nth cache
// hit is re-simulated and compared bit-for-bit against the cached
// entry; a divergence fails the run. 0 disables.
func SetRunCacheVerify(everyN int) {
	fleetVerifyEvery.Store(int64(everyN))
	fleetHitSeq.Store(0)
}

// ResetRunCache drops the in-process cache tier and zeroes the fleet
// counters, keeping any configured disk tier attached (tests and
// benchmarks use it to return to a cold or disk-only state).
func ResetRunCache() error {
	c := runcache.New()
	fleetCacheRoot.Lock()
	dir := fleetCacheDir
	fleetCacheRoot.Unlock()
	if dir != "" {
		if err := c.SetDir(dir); err != nil {
			return err
		}
	}
	fleetCache.Store(c)
	fleetHitSeq.Store(0)
	fleetVerified.Store(0)
	fleetArenaReuses.Store(0)
	fleetShardClamps.Store(0)
	fleetWorkloadReplays.Store(0)
	return nil
}

// FleetStats snapshots the campaign-layer counters: run-cache activity,
// verify spot-checks, and arena reuse, cumulative since process start
// or the last ResetRunCache.
type FleetStats struct {
	runcache.Stats
	Verified    uint64 // cache hits cross-checked against a live re-run
	ArenaReuses uint64 // machine constructions served from a warm arena
	ShardClamps uint64 // runs whose Spec.Shards was reduced to fit GOMAXPROCS

	WorkloadReplays uint64 // workload generations served by journal replay
}

// FleetSnapshot returns the current fleet counters.
func FleetSnapshot() FleetStats {
	return FleetStats{
		Stats:       fleetCache.Load().Stats(),
		Verified:    fleetVerified.Load(),
		ArenaReuses: fleetArenaReuses.Load(),
		ShardClamps: fleetShardClamps.Load(),

		WorkloadReplays: fleetWorkloadReplays.Load(),
	}
}

// String renders the counters as the one-line summary the sweep
// commands print.
func (s FleetStats) String() string {
	return fmt.Sprintf("fleet: %d cache hits (%d from disk), %d misses, %d bypasses, %d verified, %d corrupt entries, %d arena reuses, %d workload replays, %d shard clamps",
		s.Hits, s.DiskHits, s.Misses, s.Bypasses, s.Verified, s.Corrupt, s.ArenaReuses, s.WorkloadReplays, s.ShardClamps)
}

// Cacheable reports whether spec is a pure run the cache may serve.
// Trace, metrics, Chrome-trace, forensics and fault-injected runs carry
// outputs that live outside the cached entry, so they always bypass.
func Cacheable(spec Spec) bool {
	return spec.TraceEvents == 0 && !spec.wantMetrics() && !spec.Forensics &&
		spec.FaultPlan == "" && spec.Faults == nil
}

// Cached reports whether spec would be served from the run cache right
// now: pure (Cacheable) and fingerprint-resident in the memory or disk
// tier. The probe never simulates and never skews the hit/miss
// counters; suvd's load-shedding ladder uses it to admit only
// cache-servable work when degraded.
func Cached(spec Spec) bool {
	if !Cacheable(spec) {
		return false
	}
	key, err := fingerprintOf(spec)
	if err != nil {
		return false
	}
	return fleetCache.Load().Peek(key)
}

// fingerprintOf resolves spec exactly as runSpec does — defaults
// applied, progress ladder armed for fault runs, Spec.Tweak applied to
// the Table III config — and digests the canonical encoding. Tweak
// closures must therefore be deterministic functions of the config
// alone (every sweep/ablation tweak is).
func fingerprintOf(spec Spec) (runcache.Key, error) {
	cores, seed, scale := spec.resolved()
	plan := spec.Faults
	if plan == nil && spec.FaultPlan != "" {
		fseed := spec.FaultSeed
		if fseed == 0 {
			fseed = 1
		}
		var err error
		plan, err = faults.Builtin(spec.FaultPlan, fseed, cores)
		if err != nil {
			return runcache.Key{}, err
		}
	}
	cfg := htm.DefaultConfig(cores)
	cfg.Seed = seed
	if plan != nil {
		cfg = cfg.WithProgressLadder()
	}
	if spec.Tweak != nil {
		spec.Tweak(&cfg)
	}
	// Shards and Banks are host-throughput knobs with bit-identical
	// results, so sharded/banked and sequential/monolithic runs share
	// one cache entry.
	cfg.Shards = 0
	cfg.Banks = 0
	var planText string
	if plan != nil {
		var err error
		planText, err = faults.EncodeString(plan)
		if err != nil {
			return runcache.Key{}, err
		}
	}
	return runcache.KeyOf(spec.App, string(spec.Scheme), cores, seed, scale, cfg, planText), nil
}

// runCachedSpec is runSpec behind the cache: bypass impure specs, serve
// hits (spot-checking when armed), store successful invariant-clean
// outcomes on misses.
func runCachedSpec(spec Spec, arena *machineArena, o BatchOptions, shardCap int) (*Outcome, error) {
	if o.NoCache {
		return runSpec(spec, arena, shardCap)
	}
	c := fleetCache.Load()
	if !Cacheable(spec) {
		c.Bypass()
		return runSpec(spec, arena, shardCap)
	}
	key, err := fingerprintOf(spec)
	if err != nil {
		// Fingerprinting failed (unresolvable spec); let the live path
		// produce the authoritative error.
		return runSpec(spec, arena, shardCap)
	}
	if e, ok := c.Get(key); ok {
		if every := fleetVerifyEvery.Load(); every > 0 {
			if n := fleetHitSeq.Add(1); (n-1)%uint64(every) == 0 {
				fresh, ferr := runSpec(spec, arena, shardCap)
				if ferr != nil {
					return fresh, fmt.Errorf("runcache verify: live re-run failed: %w", ferr)
				}
				if !e.Equal(entryOf(fresh)) {
					return fresh, fmt.Errorf("runcache verify: cached outcome for %s under %s diverges from a live re-run (stale or corrupted cache dir?)", spec.App, spec.Scheme)
				}
				fleetVerified.Add(1)
			}
		}
		return outcomeFromEntry(spec, e), nil
	}
	out, err := runSpec(spec, arena, shardCap)
	if err == nil && out.CheckErr == nil {
		// A disk-write failure degrades the cache, not the run: the
		// entry still serves from memory, so the error is dropped.
		_ = c.Put(key, entryOf(out))
	}
	return out, err
}

// entryOf extracts the cacheable portion of a successful outcome.
func entryOf(out *Outcome) *runcache.Entry {
	if out == nil || out.Result == nil {
		return nil
	}
	return &runcache.Entry{
		Cycles:     out.Cycles,
		Breakdown:  out.Breakdown,
		PerCore:    append([]stats.Breakdown(nil), out.PerCore...),
		Counters:   out.Counters,
		PoolPages:  out.PoolPages,
		RedirectEn: out.RedirectEn,
	}
}

// outcomeFromEntry reconstitutes a cache-served Outcome. AppMeta stays
// nil (no generator ran) and CheckErr nil (only invariant-clean runs
// are ever stored).
func outcomeFromEntry(spec Spec, e *runcache.Entry) *Outcome {
	return &Outcome{
		Spec: spec,
		Result: &htm.Result{
			Cycles:    e.Cycles,
			Breakdown: e.Breakdown,
			PerCore:   append([]stats.Breakdown(nil), e.PerCore...),
			Counters:  e.Counters,
		},
		PoolPages:  e.PoolPages,
		RedirectEn: e.RedirectEn,
	}
}

// ---------------------------------------------------------------------
// Straggler-aware scheduling.

var (
	costMu    sync.Mutex
	costTable = make(map[string]float64) // app -> estimated cycles per unit scale
)

// dispatchOrder returns the order in which to execute specs:
// longest-expected-first (the classic LPT makespan heuristic), so a
// slow bayes run starts immediately instead of serializing the tail of
// the batch. The sort is stable, keeping submission order among equals
// — a batch of identical specs (chaos replays) executes unchanged.
func dispatchOrder(specs []Spec, o BatchOptions) []int {
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	if o.NoSchedule || len(specs) < 2 {
		return order
	}
	cost := make([]float64, len(specs))
	for i := range specs {
		cost[i] = expectedCost(specs[i])
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cost[order[a]] > cost[order[b]]
	})
	return order
}

// expectedCost estimates how long spec will simulate, in comparable
// units: the per-app cost table (observed cycles per unit scale once a
// run finishes, a generator-metadata estimate before that) times the
// spec's scale.
func expectedCost(spec Spec) float64 {
	_, _, scale := spec.resolved()
	return appCost(spec.App) * scale
}

// appCost returns the table entry for app, seeding it on first use.
func appCost(app string) float64 {
	costMu.Lock()
	c, ok := costTable[app]
	costMu.Unlock()
	if ok {
		return c
	}
	c = seedCost(app) // generation probe runs outside the lock
	costMu.Lock()
	if cur, exists := costTable[app]; exists {
		c = cur // an observed value raced in; prefer it
	} else {
		costTable[app] = c
	}
	costMu.Unlock()
	return c
}

// seedCost derives a first estimate from the workload generator's
// metadata (AppMeta): generate a tiny instance — a few thousand trace
// ops, microseconds of host time — and extrapolate ops per core per
// unit scale. High-contention apps weigh extra because their
// abort/retry traffic, not their op count, dominates campaign wall
// time; the nominal per-op cycle factor keeps seeded and observed
// entries in roughly the same units within one table. Unknown apps get
// +Inf so they dispatch first and fail the batch fast.
func seedCost(app string) float64 {
	gen, err := workload.Get(app)
	if err != nil {
		return math.Inf(1)
	}
	const (
		probeCores = 2
		probeScale = 0.05
		nominalCPI = 6 // rough simulated cycles per trace op
	)
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(heapBase, heapSize)
	meta := gen(workload.GenConfig{Cores: probeCores, Seed: 1, Scale: probeScale}, alloc, memory)
	cost := nominalCPI * float64(meta.TotalOps()) / (probeCores * probeScale)
	if meta.HighContention {
		cost *= 3
	}
	return cost
}

// observeCost refines the table with a finished run's actual cycle
// count, normalized per unit scale, as an equal-weight moving average.
func observeCost(spec Spec, out *Outcome) {
	if out == nil || out.Result == nil || out.Cycles == 0 {
		return
	}
	_, _, scale := spec.resolved()
	obs := float64(out.Cycles) / scale
	costMu.Lock()
	if cur, ok := costTable[spec.App]; ok && !math.IsInf(cur, 1) {
		costTable[spec.App] = (cur + obs) / 2
	} else {
		costTable[spec.App] = obs
	}
	costMu.Unlock()
}
