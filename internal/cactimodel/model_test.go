package cactimodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestTableVIIExact checks the model reproduces the paper's Table VII at
// the calibration configuration (512 entries x 8 bytes).
func TestTableVIIExact(t *testing.T) {
	want := map[int][4]float64{
		90: {1.382, 0.403, 0.434, 0.951},
		65: {0.995, 0.239, 0.260, 0.589},
		45: {0.588, 0.150, 0.163, 0.282},
		32: {0.412, 0.072, 0.078, 0.143},
	}
	for nm, w := range want {
		est, err := FullyAssociative(nm, 512, 64)
		if err != nil {
			t.Fatal(err)
		}
		got := [4]float64{est.AccessNs, est.ReadNj, est.WriteNj, est.AreaMm2}
		for i := range w {
			if math.Abs(got[i]-w[i]) > 1e-9 {
				t.Errorf("%d nm field %d = %v, want %v", nm, i, got[i], w[i])
			}
		}
	}
}

// TestSingleCycleAt45nm checks the paper's claim: a 512-entry access
// completes in one cycle with the 45 nm process at 1.2 GHz.
func TestSingleCycleAt45nm(t *testing.T) {
	est, err := FullyAssociative(45, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.CyclesAt(1.2); got != 1 {
		t.Fatalf("cycles = %d, want 1", got)
	}
	// At 90 nm the same table does not fit one cycle.
	est90, _ := FullyAssociative(90, 512, 64)
	if est90.CyclesAt(1.2) < 2 {
		t.Fatal("90 nm table implausibly fast")
	}
}

// TestScalingMonotonic property-checks that bigger tables are never
// faster, cheaper or smaller.
func TestScalingMonotonic(t *testing.T) {
	f := func(k uint8) bool {
		entries := 64 << (k % 6)
		small, err1 := FullyAssociative(45, entries, 64)
		big, err2 := FullyAssociative(45, entries*2, 64)
		if err1 != nil || err2 != nil {
			return false
		}
		return big.AccessNs > small.AccessNs &&
			big.ReadNj > small.ReadNj &&
			big.AreaMm2 > small.AreaMm2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowEntriesCheaper: the real 22-bit entry must cost less than
// CACTI's 64-bit minimum (the paper's halving argument).
func TestNarrowEntriesCheaper(t *testing.T) {
	wide, _ := FullyAssociative(45, 512, 64)
	narrow, err := FullyAssociative(45, 512, 22)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.AreaMm2 >= wide.AreaMm2 || narrow.ReadNj >= wide.ReadNj {
		t.Fatal("22-bit entries not cheaper than 64-bit")
	}
}

func TestUnknownNodeErrors(t *testing.T) {
	if _, err := FullyAssociative(28, 512, 64); err == nil {
		t.Fatal("unknown node did not error")
	}
	if _, err := FullyAssociative(45, 0, 64); err == nil {
		t.Fatal("zero entries did not error")
	}
}

// TestSectionVCNumbers checks the Section V-C arithmetic against the
// paper: 1.875 KiB per core (5.86% of a 32 KB L1), ~3 W upper-bound
// search power (~1.2% of Rock's TDP), 2.26 mm^2 (~0.6% of Rock's area).
func TestSectionVCNumbers(t *testing.T) {
	cost, err := SectionVC(16, 1.2, 2048, 2048, 512, 22)
	if err != nil {
		t.Fatal(err)
	}
	if cost.PerCoreBytes != 1920 {
		t.Errorf("per-core bytes = %v, want 1920", cost.PerCoreBytes)
	}
	if math.Abs(cost.PctOfL1-0.0586) > 0.001 {
		t.Errorf("pct of L1 = %v", cost.PctOfL1)
	}
	if math.Abs(cost.MaxPowerW-3.0) > 0.01 {
		t.Errorf("max power = %v W, want ~3", cost.MaxPowerW)
	}
	if math.Abs(cost.PctOfRockPower-0.012) > 0.001 {
		t.Errorf("pct of Rock power = %v", cost.PctOfRockPower)
	}
	if math.Abs(cost.TotalTableAreaM2-2.256) > 0.01 {
		t.Errorf("area = %v mm2, want ~2.26", cost.TotalTableAreaM2)
	}
	if math.Abs(cost.PctOfRockArea-0.0057) > 0.001 {
		t.Errorf("pct of Rock area = %v", cost.PctOfRockArea)
	}
}

func TestRenderers(t *testing.T) {
	t6 := RenderTable6()
	for _, p := range Table6 {
		if !strings.Contains(t6, p.Name) {
			t.Errorf("Table VI missing %s", p.Name)
		}
	}
	t7 := RenderTable7()
	for _, s := range []string{"90", "65", "45", "32", "1.382", "0.282"} {
		if !strings.Contains(t7, s) {
			t.Errorf("Table VII missing %q", s)
		}
	}
	vc := RenderSectionVC()
	if !strings.Contains(vc, "1.875 KiB") {
		t.Errorf("Section V-C missing storage:\n%s", vc)
	}
}
