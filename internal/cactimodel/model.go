// Package cactimodel is an analytical hardware-cost model for the SUV
// first-level redirect table: a fully-associative (CAM-tagged) array
// evaluated for access time, dynamic read/write energy and silicon area
// across CMOS technology nodes — reproducing the paper's Table VII,
// which the authors obtained from CACTI 5.3, plus the Section V-C
// storage/energy/area arithmetic and the Table VI survey of contemporary
// processors.
//
// The model is calibrated per node at the paper's reference
// configuration (512 entries x 8 bytes = 4 KB, the minimum line size
// CACTI accepts) and extrapolates with standard CAM scaling laws: access
// time grows with the match-line RC (~ sqrt of entry count), dynamic
// energy with the number of simultaneously searched entries and the
// entry width, and area with total bit count.
package cactimodel

import (
	"fmt"
	"math"
)

// NodeParams holds the per-technology calibration point: the CACTI 5.3
// outputs for the 512-entry, 8-byte-line fully-associative table
// (Table VII of the paper).
type NodeParams struct {
	Nm       int
	AccessNs float64
	ReadNj   float64
	WriteNj  float64
	AreaMm2  float64
}

// Nodes lists the calibrated technology nodes in Table VII order.
var Nodes = []NodeParams{
	{90, 1.382, 0.403, 0.434, 0.951},
	{65, 0.995, 0.239, 0.260, 0.589},
	{45, 0.588, 0.150, 0.163, 0.282},
	{32, 0.412, 0.072, 0.078, 0.143},
}

// refEntries and refEntryBits define the calibration configuration.
const (
	refEntries   = 512
	refEntryBits = 64
)

// Estimate is the model's output for one table configuration.
type Estimate struct {
	Nm       int
	Entries  int
	EntryBit int
	AccessNs float64
	ReadNj   float64
	WriteNj  float64
	AreaMm2  float64
}

// NodeByNm returns the calibration point for a technology node.
func NodeByNm(nm int) (NodeParams, error) {
	for _, n := range Nodes {
		if n.Nm == nm {
			return n, nil
		}
	}
	return NodeParams{}, fmt.Errorf("cactimodel: no calibration for %d nm", nm)
}

// FullyAssociative estimates a fully-associative table with the given
// geometry at a technology node.
//
// Scaling laws relative to the calibration point:
//   - access time ~ sqrt(entries): the match line and the entry decoder
//     deepen with the array;
//   - dynamic energy ~ entries (every match line is precharged and
//     searched) x entry width;
//   - area ~ entries x entry width (bit-cell dominated).
func FullyAssociative(nm, entries, entryBits int) (Estimate, error) {
	ref, err := NodeByNm(nm)
	if err != nil {
		return Estimate{}, err
	}
	if entries <= 0 || entryBits <= 0 {
		return Estimate{}, fmt.Errorf("cactimodel: bad geometry %dx%db", entries, entryBits)
	}
	er := float64(entries) / refEntries
	br := float64(entryBits) / refEntryBits
	return Estimate{
		Nm:       nm,
		Entries:  entries,
		EntryBit: entryBits,
		AccessNs: ref.AccessNs * math.Sqrt(er),
		ReadNj:   ref.ReadNj * er * (0.5 + 0.5*br),
		WriteNj:  ref.WriteNj * (0.5 + 0.5*er*br),
		AreaMm2:  ref.AreaMm2 * er * br,
	}, nil
}

// CyclesAt returns the pipeline cycles one access costs at the given
// clock (the paper checks the 45 nm table completes in 1 cycle at
// 1.2 GHz).
func (e Estimate) CyclesAt(clockGHz float64) int {
	cycle := 1.0 / clockGHz // ns
	n := int(math.Ceil(e.AccessNs / cycle))
	if n < 1 {
		n = 1
	}
	return n
}

// SUVCost aggregates the Section V-C per-core and whole-chip overheads
// of the SUV machinery.
type SUVCost struct {
	PerCoreBytes     float64 // summary signature + bit vector + L1 table payload
	PctOfL1          float64 // relative to a 32 KB L1 data cache
	MaxPowerW        float64 // upper bound on table search power across the CMP
	PctOfRockPower   float64
	TotalTableAreaM2 float64 // mm^2, halved per the paper's 22b-vs-64b argument
	PctOfRockArea    float64
}

// RockTDPWatts and RockAreaMm2 are the Rock processor reference points
// (Table VI).
const (
	RockTDPWatts = 250.0
	RockAreaMm2  = 396.0
)

// SectionVC computes the paper's Section V-C overhead arithmetic for a
// CMP with the given core count and clock, using the 45 nm estimate. The
// paper halves CACTI's energy and area because a real entry is 22 bits,
// not the 64-bit minimum CACTI models.
func SectionVC(cores int, clockGHz float64, summaryBits, onceBits, l1Entries, entryBits int) (SUVCost, error) {
	est, err := FullyAssociative(45, refEntries, refEntryBits)
	if err != nil {
		return SUVCost{}, err
	}
	perCoreBits := float64(summaryBits+onceBits) + float64(entryBits*l1Entries)
	perCoreBytes := perCoreBits / 8
	// Upper bound: every core searches the table every cycle, read and
	// write alternating; the 0.5 factor is the 22-bit vs 64-bit scaling.
	maxPower := 0.5 * (est.ReadNj + est.WriteNj) * 1e-9 * float64(cores) * clockGHz * 1e9
	area := 0.5 * float64(cores) * est.AreaMm2
	return SUVCost{
		PerCoreBytes:     perCoreBytes,
		PctOfL1:          perCoreBytes / float64(32<<10),
		MaxPowerW:        maxPower,
		PctOfRockPower:   maxPower / RockTDPWatts,
		TotalTableAreaM2: area,
		PctOfRockArea:    area / RockAreaMm2,
	}, nil
}
