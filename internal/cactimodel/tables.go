package cactimodel

import (
	"fmt"
	"strings"

	"suvtm/internal/stats"
)

// Processor is one row of the paper's Table VI: parameters of
// contemporary processors used to put the SUV overheads in context.
type Processor struct {
	Name    string
	TechNm  int
	ClockG  float64
	Cores   int
	Threads int
	TDPW    int
	AreaMm2 int
}

// Table6 reproduces Table VI.
var Table6 = []Processor{
	{"UltraSPARC T1", 90, 1.4, 8, 32, 72, 378},
	{"UltraSPARC T2", 65, 1.4, 8, 64, 84, 342},
	{"Rock Processor", 65, 2.3, 16, 32, 250, 396},
}

// RenderTable6 prints Table VI.
func RenderTable6() string {
	var sb strings.Builder
	sb.WriteString("Table VI: parameters of some contemporary processors\n")
	tab := stats.NewTable("processor", "tech (nm)", "clock (GHz)", "cores/threads", "TDP (W)", "area (mm2)")
	for _, p := range Table6 {
		tab.AddRow(p.Name,
			fmt.Sprintf("%d", p.TechNm),
			fmt.Sprintf("%.1f", p.ClockG),
			fmt.Sprintf("%d/%d", p.Cores, p.Threads),
			fmt.Sprintf("%d", p.TDPW),
			fmt.Sprintf("%d", p.AreaMm2))
	}
	sb.WriteString(tab.String())
	return sb.String()
}

// RenderTable7 prints the Table VII estimates for the 512-entry
// fully-associative first-level table across technology nodes.
func RenderTable7() string {
	var sb strings.Builder
	sb.WriteString("Table VII: overheads of the first-level fully-associative table\n")
	tab := stats.NewTable("tech (nm)", "access time (ns)", "read (nJ)", "write (nJ)", "area (mm2)", "cycles @1.2GHz")
	for _, n := range Nodes {
		est, err := FullyAssociative(n.Nm, 512, 64)
		if err != nil {
			continue
		}
		tab.AddRow(
			fmt.Sprintf("%d", n.Nm),
			fmt.Sprintf("%.3f", est.AccessNs),
			fmt.Sprintf("%.3f", est.ReadNj),
			fmt.Sprintf("%.3f", est.WriteNj),
			fmt.Sprintf("%.3f", est.AreaMm2),
			fmt.Sprintf("%d", est.CyclesAt(1.2)))
	}
	sb.WriteString(tab.String())
	return sb.String()
}

// RenderSectionVC prints the Section V-C complexity summary for the
// paper's 16-core configuration.
func RenderSectionVC() string {
	cost, err := SectionVC(16, 1.2, 2048, 2048, 512, 22)
	if err != nil {
		return err.Error()
	}
	var sb strings.Builder
	sb.WriteString("Section V-C: complexity of SUV (16 cores, 1.2 GHz, 45 nm)\n")
	tab := stats.NewTable("metric", "value", "paper")
	tab.AddRow("per-core storage", fmt.Sprintf("%.3f KiB", cost.PerCoreBytes/1024), "1.875 KiB")
	tab.AddRow("fraction of 32KB L1", stats.Pct(cost.PctOfL1), "5.86%")
	tab.AddRow("max table search power", fmt.Sprintf("%.2f W", cost.MaxPowerW), "~3 W")
	tab.AddRow("fraction of Rock TDP", stats.Pct(cost.PctOfRockPower), "~1.2%")
	tab.AddRow("total table area", fmt.Sprintf("%.2f mm2", cost.TotalTableAreaM2), "2.26 mm2")
	tab.AddRow("fraction of Rock area", stats.Pct(cost.PctOfRockArea), "0.6%")
	sb.WriteString(tab.String())
	return sb.String()
}
