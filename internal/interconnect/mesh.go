// Package interconnect models the on-chip network of the simulated CMP:
// a 2-D mesh with XY (dimension-ordered) routing, 2-cycle wire latency
// and 1-cycle route latency per hop (Table III). The model is
// contention-free: it composes per-hop latencies rather than simulating
// individual flits, which is sufficient for the relative execution-time
// comparisons the paper reports.
package interconnect

import (
	"fmt"
	"sort"

	"suvtm/internal/sim"
)

// Mesh is a W x H grid of tiles. Tile i sits at (i % W, i / W). Each tile
// hosts one core plus one slice of the shared L2/directory; a line's home
// tile is chosen by address interleaving.
type Mesh struct {
	width, height int
	wireLat       sim.Cycles // per-hop wire latency
	routeLat      sim.Cycles // per-hop router latency

	// Link accounting (observability; nil = disabled). links holds one
	// traversal count per directed link, indexed tile*4+direction.
	links []uint64
	msgs  uint64
}

// Directed link directions out of a tile (index into the per-tile group
// of four link counters).
const (
	linkEast = iota
	linkWest
	linkSouth
	linkNorth
	linkDirs
)

// NewMesh builds a mesh for n tiles with the given per-hop latencies.
// n must be a product of a (near-)square factorization; 16 cores yield a
// 4x4 mesh as in the paper.
func NewMesh(n int, wireLat, routeLat sim.Cycles) *Mesh {
	w, h := Dimensions(n)
	return &Mesh{width: w, height: h, wireLat: wireLat, routeLat: routeLat}
}

// Dimensions returns the most square WxH factorization of n tiles.
func Dimensions(n int) (w, h int) {
	if n <= 0 {
		panic(fmt.Sprintf("interconnect: bad tile count %d", n))
	}
	best := 1
	for f := 1; f*f <= n; f++ {
		if n%f == 0 {
			best = f
		}
	}
	return n / best, best
}

// Width returns the mesh width in tiles.
func (m *Mesh) Width() int { return m.width }

// Height returns the mesh height in tiles.
func (m *Mesh) Height() int { return m.height }

// Tiles returns the total number of tiles.
func (m *Mesh) Tiles() int { return m.width * m.height }

// Coord returns the (x, y) position of tile id.
func (m *Mesh) Coord(id int) (x, y int) {
	return id % m.width, id / m.width
}

// Hops returns the Manhattan (XY-routed) hop count between two tiles.
func (m *Mesh) Hops(from, to int) int {
	fx, fy := m.Coord(from)
	tx, ty := m.Coord(to)
	dx := fx - tx
	if dx < 0 {
		dx = -dx
	}
	dy := fy - ty
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the one-way message latency between two tiles. A
// message to the local tile still pays one router traversal.
func (m *Mesh) Latency(from, to int) sim.Cycles {
	if m.links != nil {
		m.record(from, to)
	}
	hops := sim.Cycles(m.Hops(from, to))
	return hops*(m.wireLat+m.routeLat) + m.routeLat
}

// RoundTrip returns the request+response latency between two tiles.
func (m *Mesh) RoundTrip(from, to int) sim.Cycles {
	return m.Latency(from, to) + m.Latency(to, from)
}

// EnableStats turns on per-link traffic accounting: every subsequent
// Latency/RoundTrip walks its XY route and counts each directed link
// traversed. Disabled (the default), the cost is one nil check.
func (m *Mesh) EnableStats() {
	if m.links == nil {
		m.links = make([]uint64, m.Tiles()*linkDirs)
	}
}

// Messages returns the number of one-way messages recorded (0 until
// EnableStats).
func (m *Mesh) Messages() uint64 { return m.msgs }

// record walks the XY route from -> to, counting each directed link.
func (m *Mesh) record(from, to int) {
	m.msgs++
	fx, fy := m.Coord(from)
	tx, ty := m.Coord(to)
	for fx != tx {
		dir, next := linkEast, fx+1
		if tx < fx {
			dir, next = linkWest, fx-1
		}
		m.links[(fy*m.width+fx)*linkDirs+dir]++
		fx = next
	}
	for fy != ty {
		dir, next := linkSouth, fy+1
		if ty < fy {
			dir, next = linkNorth, fy-1
		}
		m.links[(fy*m.width+fx)*linkDirs+dir]++
		fy = next
	}
}

// LinkLoad is the traffic over one directed link between adjacent tiles.
type LinkLoad struct {
	From, To int
	Messages uint64
}

// LinkLoads returns every directed link with non-zero traffic, busiest
// first (ties break on link position for determinism). Empty until
// EnableStats.
func (m *Mesh) LinkLoads() []LinkLoad {
	var out []LinkLoad
	for i, n := range m.links {
		if n == 0 {
			continue
		}
		tile, dir := i/linkDirs, i%linkDirs
		x, y := m.Coord(tile)
		switch dir {
		case linkEast:
			x++
		case linkWest:
			x--
		case linkSouth:
			y++
		case linkNorth:
			y--
		}
		out = append(out, LinkLoad{From: tile, To: y*m.width + x, Messages: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Messages != out[j].Messages {
			return out[i].Messages > out[j].Messages
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// HomeTile returns the tile whose L2/directory slice owns line
// (low-order line-address interleaving across tiles, matching the
// 4-memory-controller banked organization of Table III).
func (m *Mesh) HomeTile(line sim.Line) int {
	return int(line % sim.Line(m.Tiles()))
}

// MaxLatency returns the worst-case one-way latency across the mesh,
// used for broadcast-style operations (invalidation fan-out).
func (m *Mesh) MaxLatency() sim.Cycles {
	hops := sim.Cycles(m.width - 1 + m.height - 1)
	return hops*(m.wireLat+m.routeLat) + m.routeLat
}

// Lookahead returns the conservative-PDES lookahead bound of the mesh:
// the minimum latency of any cross-tile message (one hop: wire + two
// router traversals). No tile can observe an effect originating at a
// different tile sooner than this many cycles after it was sent, so a
// shard that has drained all events up to cycle T may safely execute
// purely tile-local work up to T+Lookahead()-1 before the next merge.
// At the Table III latencies (wire 2, route 1) this is 4 cycles.
func (m *Mesh) Lookahead() sim.Cycles {
	la := m.wireLat + 2*m.routeLat
	if la < 1 {
		la = 1
	}
	return la
}

// ShardOf maps a tile to one of `shards` contiguous tile blocks
// (tile*shards/tiles). Contiguous-by-ID blocks keep each shard's tiles
// mesh-adjacent under the row-major tile layout, and the mapping is a
// pure function of (tile, shards, mesh size) so shard assignment can
// never depend on host scheduling.
func (m *Mesh) ShardOf(tile, shards int) int {
	n := m.Tiles()
	if shards <= 1 || n == 0 {
		return 0
	}
	if shards > n {
		shards = n
	}
	return tile * shards / n
}
