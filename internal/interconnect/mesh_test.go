package interconnect

import (
	"testing"
	"testing/quick"
)

func TestDimensions(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{16, 4, 4}, {8, 4, 2}, {4, 2, 2}, {1, 1, 1}, {12, 4, 3}, {2, 2, 1},
	}
	for _, c := range cases {
		w, h := Dimensions(c.n)
		if w != c.w || h != c.h {
			t.Errorf("Dimensions(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

func TestMeshHops(t *testing.T) {
	m := NewMesh(16, 2, 1) // 4x4, Table III latencies
	if m.Hops(0, 0) != 0 {
		t.Fatal("self hops != 0")
	}
	if m.Hops(0, 15) != 6 { // (3,3) from (0,0)
		t.Fatalf("corner-to-corner hops = %d, want 6", m.Hops(0, 15))
	}
	if m.Hops(0, 3) != 3 || m.Hops(0, 12) != 3 {
		t.Fatal("row/column hop counts wrong")
	}
}

func TestMeshLatency(t *testing.T) {
	m := NewMesh(16, 2, 1)
	// Local: one router traversal.
	if m.Latency(5, 5) != 1 {
		t.Fatalf("local latency = %d", m.Latency(5, 5))
	}
	// One hop: wire(2) + route(1) per hop + final route(1) = 4.
	if m.Latency(0, 1) != 4 {
		t.Fatalf("one-hop latency = %d", m.Latency(0, 1))
	}
	if m.RoundTrip(0, 1) != 8 {
		t.Fatalf("round trip = %d", m.RoundTrip(0, 1))
	}
	if m.MaxLatency() != 6*3+1 {
		t.Fatalf("max latency = %d", m.MaxLatency())
	}
}

func TestMeshSymmetry(t *testing.T) {
	m := NewMesh(16, 2, 1)
	f := func(a, b uint8) bool {
		x, y := int(a%16), int(b%16)
		return m.Latency(x, y) == m.Latency(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshTriangleInequality(t *testing.T) {
	m := NewMesh(16, 2, 1)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%16), int(b%16), int(c%16)
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeTileDistribution(t *testing.T) {
	m := NewMesh(16, 2, 1)
	counts := make([]int, 16)
	for line := uint64(0); line < 1600; line++ {
		counts[m.HomeTile(line)]++
	}
	for tile, n := range counts {
		if n != 100 {
			t.Fatalf("tile %d owns %d lines, want 100", tile, n)
		}
	}
}

func TestMeshBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 tiles")
		}
	}()
	NewMesh(0, 2, 1)
}

// TestParallelLookahead pins the conservative lookahead bound: it must
// equal the cheapest cross-tile latency (one hop), never exceed any
// actual Latency between distinct tiles, and stay >= 1 even for
// degenerate zero-latency meshes.
func TestParallelLookahead(t *testing.T) {
	m := NewMesh(16, 2, 1)
	if got := m.Lookahead(); got != 4 {
		t.Fatalf("Lookahead() = %d, want 4 at Table III latencies", got)
	}
	for from := 0; from < m.Tiles(); from++ {
		for to := 0; to < m.Tiles(); to++ {
			if from == to {
				continue
			}
			if lat := m.Latency(from, to); lat < m.Lookahead() {
				t.Fatalf("Latency(%d,%d) = %d < Lookahead %d", from, to, lat, m.Lookahead())
			}
		}
	}
	if got := NewMesh(4, 0, 0).Lookahead(); got != 1 {
		t.Fatalf("degenerate Lookahead() = %d, want 1", got)
	}
}

// TestParallelShardOf checks the tile->shard map: total (every tile
// mapped), monotone (contiguous blocks), balanced (sizes differ by at
// most one), and saturating for shards > tiles.
func TestParallelShardOf(t *testing.T) {
	for _, tiles := range []int{1, 2, 4, 8, 16, 12} {
		m := NewMesh(tiles, 2, 1)
		for _, shards := range []int{1, 2, 3, 4, 7, 16, 64} {
			eff := shards
			if eff > tiles {
				eff = tiles
			}
			counts := make([]int, eff)
			prev := 0
			for tile := 0; tile < tiles; tile++ {
				s := m.ShardOf(tile, shards)
				if s < 0 || s >= eff {
					t.Fatalf("ShardOf(%d,%d) = %d out of range [0,%d)", tile, shards, s, eff)
				}
				if s < prev {
					t.Fatalf("ShardOf not monotone at tile %d (shards %d)", tile, shards)
				}
				prev = s
				counts[s]++
			}
			min, max := tiles, 0
			for _, n := range counts {
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			if min == 0 || max-min > 1 {
				t.Fatalf("tiles=%d shards=%d unbalanced: %v", tiles, shards, counts)
			}
		}
	}
}
