package interconnect

import (
	"testing"
	"testing/quick"
)

func TestDimensions(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{16, 4, 4}, {8, 4, 2}, {4, 2, 2}, {1, 1, 1}, {12, 4, 3}, {2, 2, 1},
	}
	for _, c := range cases {
		w, h := Dimensions(c.n)
		if w != c.w || h != c.h {
			t.Errorf("Dimensions(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

func TestMeshHops(t *testing.T) {
	m := NewMesh(16, 2, 1) // 4x4, Table III latencies
	if m.Hops(0, 0) != 0 {
		t.Fatal("self hops != 0")
	}
	if m.Hops(0, 15) != 6 { // (3,3) from (0,0)
		t.Fatalf("corner-to-corner hops = %d, want 6", m.Hops(0, 15))
	}
	if m.Hops(0, 3) != 3 || m.Hops(0, 12) != 3 {
		t.Fatal("row/column hop counts wrong")
	}
}

func TestMeshLatency(t *testing.T) {
	m := NewMesh(16, 2, 1)
	// Local: one router traversal.
	if m.Latency(5, 5) != 1 {
		t.Fatalf("local latency = %d", m.Latency(5, 5))
	}
	// One hop: wire(2) + route(1) per hop + final route(1) = 4.
	if m.Latency(0, 1) != 4 {
		t.Fatalf("one-hop latency = %d", m.Latency(0, 1))
	}
	if m.RoundTrip(0, 1) != 8 {
		t.Fatalf("round trip = %d", m.RoundTrip(0, 1))
	}
	if m.MaxLatency() != 6*3+1 {
		t.Fatalf("max latency = %d", m.MaxLatency())
	}
}

func TestMeshSymmetry(t *testing.T) {
	m := NewMesh(16, 2, 1)
	f := func(a, b uint8) bool {
		x, y := int(a%16), int(b%16)
		return m.Latency(x, y) == m.Latency(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshTriangleInequality(t *testing.T) {
	m := NewMesh(16, 2, 1)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%16), int(b%16), int(c%16)
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeTileDistribution(t *testing.T) {
	m := NewMesh(16, 2, 1)
	counts := make([]int, 16)
	for line := uint64(0); line < 1600; line++ {
		counts[m.HomeTile(line)]++
	}
	for tile, n := range counts {
		if n != 100 {
			t.Fatalf("tile %d owns %d lines, want 100", tile, n)
		}
	}
}

func TestMeshBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 tiles")
		}
	}()
	NewMesh(0, 2, 1)
}
