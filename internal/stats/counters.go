package stats

// Counters records discrete simulation events for one core. The machine
// sums per-core counters into a machine-wide view when reporting.
type Counters struct {
	// Transaction outcomes.
	TxStarted   uint64 // transaction attempts begun (including retries)
	TxCommitted uint64 // transactions committed
	TxAborted   uint64 // transaction attempts aborted

	// Conflict events.
	NACKsSent     uint64 // requests this core refused
	NACKsReceived uint64 // requests by this core that were refused
	CycleAborts   uint64 // aborts triggered by possible-cycle detection
	RemoteAborts  uint64 // aborts triggered by a committing lazy transaction
	FalsePositive uint64 // conflicts caused by signature aliasing

	// Memory system.
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64
	L2Misses      uint64
	Writebacks    uint64
	Invalidations uint64

	// Transactional data overflow (Table V): a transaction's speculative
	// write-set no longer fits the L1 cache (LogTM-SE virtualizes it via
	// the log; FasTM degenerates; SUV redirects around it).
	CacheOverflowTx  uint64 // transactions that overflowed the L1 data cache
	SpecLineEvicted  uint64 // speculative lines evicted (FasTM overflow events)
	UndoLogEntries   uint64 // undo-log records written (LogTM-SE / degenerated FasTM)
	UndoLogRestores  uint64 // undo-log records replayed on abort
	SoftwareTraps    uint64 // traps into the software abort handler
	LazyCommitMerges uint64 // write-set lines merged at lazy commit (DynTM)

	// SUV redirect machinery.
	RedirectLookups    uint64 // redirect-table lookups actually performed
	RedirectL1Hits     uint64 // lookups satisfied by the first-level table
	RedirectL2Hits     uint64 // lookups satisfied by the shared second-level table
	RedirectMemLookups uint64 // lookups that searched swapped-out entries in memory
	RedirectEntriesAdd uint64 // transient entries added
	RedirectBacks      uint64 // redirect-back optimizations (entry deleted+re-added)
	SummaryFiltered    uint64 // accesses filtered out by the redirect summary signature
	SummaryFalsePos    uint64 // summary-signature false positives (wasteful lookups)
	TableOverflowTx    uint64 // transactions that overflowed the redirect tables (Table V)
	PoolPagesAlloc     uint64 // pages allocated in the preserved redirect pool

	// DynTM selector.
	EagerTx uint64 // transactions executed in eager mode
	LazyTx  uint64 // transactions executed in lazy mode

	// Robustness: fault injection, protocol recovery, and forward-progress
	// escalation.
	InjectedNACKs       uint64 // memory accesses refused by an injected NACK storm
	MeshTimeouts        uint64 // directory-request deadlines that expired (delayed messages)
	MeshRetries         uint64 // protocol retransmissions sent after a timeout
	MeshDuplicates      uint64 // duplicated requests reprocessed idempotently
	PoolReclaimStalls   uint64 // redirect-pool allocations served via software reclamation
	StarveEscalations   uint64 // starving transactions escalated to boosted backoff
	TokenGrants         uint64 // global serialization token grants (hopeless-transaction mode)
	GracefulDegradation uint64 // transactions completed through a degenerated fallback path

	// Isolation windows (the paper's central quantity): for every
	// transaction attempt that wrote at least one line, the cycles from
	// its first write acquisition until its isolation was released —
	// at commit completion, or at the END of the abort roll-back (the
	// Figure 1 repair window is included).
	IsoWindowCycles uint64
	IsoWindows      uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.TxStarted += other.TxStarted
	c.TxCommitted += other.TxCommitted
	c.TxAborted += other.TxAborted
	c.NACKsSent += other.NACKsSent
	c.NACKsReceived += other.NACKsReceived
	c.CycleAborts += other.CycleAborts
	c.RemoteAborts += other.RemoteAborts
	c.FalsePositive += other.FalsePositive
	c.L1Hits += other.L1Hits
	c.L1Misses += other.L1Misses
	c.L2Hits += other.L2Hits
	c.L2Misses += other.L2Misses
	c.Writebacks += other.Writebacks
	c.Invalidations += other.Invalidations
	c.CacheOverflowTx += other.CacheOverflowTx
	c.SpecLineEvicted += other.SpecLineEvicted
	c.UndoLogEntries += other.UndoLogEntries
	c.UndoLogRestores += other.UndoLogRestores
	c.SoftwareTraps += other.SoftwareTraps
	c.LazyCommitMerges += other.LazyCommitMerges
	c.RedirectLookups += other.RedirectLookups
	c.RedirectL1Hits += other.RedirectL1Hits
	c.RedirectL2Hits += other.RedirectL2Hits
	c.RedirectMemLookups += other.RedirectMemLookups
	c.RedirectEntriesAdd += other.RedirectEntriesAdd
	c.RedirectBacks += other.RedirectBacks
	c.SummaryFiltered += other.SummaryFiltered
	c.SummaryFalsePos += other.SummaryFalsePos
	c.TableOverflowTx += other.TableOverflowTx
	c.PoolPagesAlloc += other.PoolPagesAlloc
	c.EagerTx += other.EagerTx
	c.LazyTx += other.LazyTx
	c.InjectedNACKs += other.InjectedNACKs
	c.MeshTimeouts += other.MeshTimeouts
	c.MeshRetries += other.MeshRetries
	c.MeshDuplicates += other.MeshDuplicates
	c.PoolReclaimStalls += other.PoolReclaimStalls
	c.StarveEscalations += other.StarveEscalations
	c.TokenGrants += other.TokenGrants
	c.GracefulDegradation += other.GracefulDegradation
	c.IsoWindowCycles += other.IsoWindowCycles
	c.IsoWindows += other.IsoWindows
}

// AbortRatio returns aborted attempts as a fraction of all attempts
// (the metric of Table I). Zero attempts yields zero.
func (c *Counters) AbortRatio() float64 {
	attempts := c.TxCommitted + c.TxAborted
	if attempts == 0 {
		return 0
	}
	return float64(c.TxAborted) / float64(attempts)
}

// RedirectL1MissRate returns the first-level redirect-table miss rate
// (Figure 7a). Zero lookups yields zero.
func (c *Counters) RedirectL1MissRate() float64 {
	if c.RedirectLookups == 0 {
		return 0
	}
	return float64(c.RedirectLookups-c.RedirectL1Hits) / float64(c.RedirectLookups)
}

// MeanIsolationWindow returns the average writer isolation window in
// cycles (0 when no windows were measured).
func (c *Counters) MeanIsolationWindow() float64 {
	if c.IsoWindows == 0 {
		return 0
	}
	return float64(c.IsoWindowCycles) / float64(c.IsoWindows)
}
