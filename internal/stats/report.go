package stats

import (
	"fmt"
	"math"
	"strings"
)

// Speedup returns how much faster "mine" is than "base" expressed the way
// the paper reports it: (base/mine - 1), so 0.56 means "outperforms by 56%".
func Speedup(base, mine float64) float64 {
	if mine == 0 {
		return 0
	}
	return base/mine - 1
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
// It returns 0 for an empty (or all-non-positive) input.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table is a minimal fixed-width text-table builder used by the
// experiment harness to print paper-style tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// F3 formats a float with three decimals.
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }
