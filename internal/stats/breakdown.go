// Package stats implements the execution-time accounting used throughout
// the paper's evaluation: every simulated cycle of every core is
// attributed to exactly one component of the Figure 6 / Figure 9
// breakdown, and event counters record commits, aborts, NACKs and the
// overflow statistics of Table V.
package stats

import (
	"fmt"
	"strings"

	"suvtm/internal/sim"
)

// Component is one slice of the execution-time breakdown. The first
// three (NoTrans, Trans, Barrier) are necessary costs; the rest are
// overheads of serializing transactions (Section V-B of the paper).
type Component uint8

const (
	// NoTrans is time due to non-transactional work.
	NoTrans Component = iota
	// Trans is time due to un-stalled transactional work that ultimately
	// committed.
	Trans
	// Barrier is time waiting on a barrier (including the final join).
	Barrier
	// Backoff is time stalling after an abort before retrying.
	Backoff
	// Stalled is time stalling to resolve a conflict (NACK retries).
	Stalled
	// Wasted is time due to work performed by a transaction attempt that
	// was later aborted.
	Wasted
	// Aborting is time due to rolling back state during an abort (e.g.
	// walking the undo log in LogTM-SE).
	Aborting
	// Committing is time spent in commit arbitration and write-set merge
	// (lazy transactions in DynTM, Figure 9).
	Committing

	// NumComponents is the number of breakdown components.
	NumComponents
)

var componentNames = [NumComponents]string{
	"NoTrans", "Trans", "Barrier", "Backoff", "Stalled", "Wasted", "Aborting", "Committing",
}

// String returns the paper's name for the component.
func (c Component) String() string {
	if c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// Breakdown accumulates attributed cycles per component for one core.
type Breakdown struct {
	Cycles [NumComponents]sim.Cycles
}

// Add attributes n cycles to component c.
func (b *Breakdown) Add(c Component, n sim.Cycles) {
	b.Cycles[c] += n
}

// Total returns the sum over all components.
func (b *Breakdown) Total() sim.Cycles {
	var t sim.Cycles
	for _, v := range b.Cycles {
		t += v
	}
	return t
}

// Overhead returns the sum of the serialization-overhead components
// (Backoff + Stalled + Wasted + Aborting + Committing).
func (b *Breakdown) Overhead() sim.Cycles {
	return b.Cycles[Backoff] + b.Cycles[Stalled] + b.Cycles[Wasted] +
		b.Cycles[Aborting] + b.Cycles[Committing]
}

// AddAll accumulates another breakdown into this one.
func (b *Breakdown) AddAll(other *Breakdown) {
	for i := range b.Cycles {
		b.Cycles[i] += other.Cycles[i]
	}
}

// Fractions returns each component as a fraction of the total. If the
// total is zero all fractions are zero.
func (b *Breakdown) Fractions() [NumComponents]float64 {
	var f [NumComponents]float64
	total := b.Total()
	if total == 0 {
		return f
	}
	for i, v := range b.Cycles {
		f[i] = float64(v) / float64(total)
	}
	return f
}

// String renders the breakdown as a single human-readable line.
func (b *Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%d", b.Total())
	for i := Component(0); i < NumComponents; i++ {
		if b.Cycles[i] > 0 {
			fmt.Fprintf(&sb, " %s=%d", i, b.Cycles[i])
		}
	}
	return sb.String()
}
