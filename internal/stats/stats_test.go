package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Add(NoTrans, 10)
	b.Add(Trans, 20)
	b.Add(Stalled, 5)
	b.Add(Aborting, 7)
	if b.Total() != 42 {
		t.Fatalf("Total = %d", b.Total())
	}
	if b.Overhead() != 12 {
		t.Fatalf("Overhead = %d", b.Overhead())
	}
	var c Breakdown
	c.Add(Trans, 8)
	b.AddAll(&c)
	if b.Cycles[Trans] != 28 {
		t.Fatalf("AddAll lost cycles")
	}
}

func TestBreakdownFractions(t *testing.T) {
	var b Breakdown
	f := b.Fractions()
	for _, v := range f {
		if v != 0 {
			t.Fatal("empty breakdown has nonzero fraction")
		}
	}
	b.Add(NoTrans, 25)
	b.Add(Trans, 75)
	f = b.Fractions()
	if f[NoTrans] != 0.25 || f[Trans] != 0.75 {
		t.Fatalf("fractions = %v", f)
	}
}

// TestBreakdownNormalization table-drives the percentage normalization:
// fractions are cycles/total, an all-zero breakdown reports all zeros
// (no NaN from the zero denominator), and single-component breakdowns
// normalize to exactly 1.
func TestBreakdownNormalization(t *testing.T) {
	cases := []struct {
		name   string
		cycles [NumComponents]uint64
		want   [NumComponents]float64
	}{
		{name: "zero total stays zero"},
		{
			name:   "single component is the whole",
			cycles: [NumComponents]uint64{0, 100},
			want:   [NumComponents]float64{0, 1},
		},
		{
			name:   "even split",
			cycles: [NumComponents]uint64{25, 25, 25, 25},
			want:   [NumComponents]float64{0.25, 0.25, 0.25, 0.25},
		},
		{
			name:   "paper-style mix",
			cycles: [NumComponents]uint64{10, 50, 0, 0, 20, 15, 5, 0},
			want:   [NumComponents]float64{0.10, 0.50, 0, 0, 0.20, 0.15, 0.05, 0},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var b Breakdown
			for i, v := range c.cycles {
				b.Add(Component(i), v)
			}
			got := b.Fractions()
			for i := range got {
				if math.IsNaN(got[i]) {
					t.Fatalf("component %d is NaN", i)
				}
				if math.Abs(got[i]-c.want[i]) > 1e-12 {
					t.Fatalf("fractions = %v, want %v", got, c.want)
				}
			}
		})
	}
}

// TestCountersRatioDenominators table-drives the ratio accessors around
// their zero-denominator guards.
func TestCountersRatioDenominators(t *testing.T) {
	cases := []struct {
		name                   string
		c                      Counters
		abort, missRate, meanW float64
	}{
		{name: "all zero"},
		{
			name:  "commits only",
			c:     Counters{TxCommitted: 50},
			abort: 0,
		},
		{
			name:  "aborts only",
			c:     Counters{TxAborted: 5},
			abort: 1,
		},
		{
			name:     "lookups all hit",
			c:        Counters{RedirectLookups: 10, RedirectL1Hits: 10},
			missRate: 0,
		},
		{
			name:     "lookups all miss",
			c:        Counters{RedirectLookups: 10},
			missRate: 1,
		},
		{
			name:  "windows measured",
			c:     Counters{IsoWindowCycles: 90, IsoWindows: 3},
			meanW: 30,
		},
		{
			name: "window cycles without windows",
			c:    Counters{IsoWindowCycles: 90},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checks := []struct {
				what      string
				got, want float64
			}{
				{"AbortRatio", tc.c.AbortRatio(), tc.abort},
				{"RedirectL1MissRate", tc.c.RedirectL1MissRate(), tc.missRate},
				{"MeanIsolationWindow", tc.c.MeanIsolationWindow(), tc.meanW},
			}
			for _, ch := range checks {
				if math.IsNaN(ch.got) || math.IsInf(ch.got, 0) {
					t.Fatalf("%s = %v (zero denominator leaked)", ch.what, ch.got)
				}
				if math.Abs(ch.got-ch.want) > 1e-12 {
					t.Fatalf("%s = %v, want %v", ch.what, ch.got, ch.want)
				}
			}
		})
	}
}

// TestFractionsSumToOne property-checks normalization.
func TestFractionsSumToOne(t *testing.T) {
	f := func(vals [NumComponents]uint16) bool {
		var b Breakdown
		var any bool
		for i, v := range vals {
			b.Add(Component(i), uint64(v))
			any = any || v > 0
		}
		if !any {
			return true
		}
		var sum float64
		for _, x := range b.Fractions() {
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComponentNames(t *testing.T) {
	want := []string{"NoTrans", "Trans", "Barrier", "Backoff", "Stalled", "Wasted", "Aborting", "Committing"}
	for i, w := range want {
		if Component(i).String() != w {
			t.Errorf("Component(%d) = %s, want %s", i, Component(i), w)
		}
	}
	if !strings.Contains(Component(99).String(), "99") {
		t.Error("out-of-range component string")
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.Add(Trans, 7)
	s := b.String()
	if !strings.Contains(s, "total=7") || !strings.Contains(s, "Trans=7") {
		t.Fatalf("String = %q", s)
	}
}

func TestCountersAddAndRatios(t *testing.T) {
	a := Counters{TxCommitted: 30, TxAborted: 10, RedirectLookups: 100, RedirectL1Hits: 90}
	b := Counters{TxCommitted: 10, TxAborted: 10, NACKsSent: 5}
	a.Add(&b)
	if a.TxCommitted != 40 || a.TxAborted != 20 || a.NACKsSent != 5 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if got := a.AbortRatio(); math.Abs(got-20.0/60.0) > 1e-12 {
		t.Fatalf("AbortRatio = %v", got)
	}
	if got := a.RedirectL1MissRate(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RedirectL1MissRate = %v", got)
	}
	var zero Counters
	if zero.AbortRatio() != 0 || zero.RedirectL1MissRate() != 0 {
		t.Fatal("zero counters gave nonzero ratios")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("GeoMean of non-positives = %v", g)
	}
}

func TestSpeedupAndMean(t *testing.T) {
	if s := Speedup(150, 100); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Speedup = %v", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Fatalf("Speedup div0 = %v", s)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("a", "bb")
	tab.AddRow("x")
	tab.AddRow("longer", "y", "dropped")
	s := tab.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "bb") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "longer") || strings.Contains(s, "dropped") {
		t.Fatalf("rows wrong:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %s", Pct(0.123))
	}
	if F3(1.23456) != "1.235" {
		t.Fatalf("F3 = %s", F3(1.23456))
	}
}
