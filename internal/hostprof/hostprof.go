// Package hostprof wires the -cpuprofile/-memprofile flags of the
// command-line tools to runtime/pprof. It profiles the simulator
// process itself (host time and host allocations, the quantities the
// hot-path benchmarks track), not the simulated machine.
package hostprof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile to be written to memPath (if non-empty) when the
// returned stop function runs. stop is idempotent and never nil; call
// it on every exit path — os.Exit skips deferred calls, so error paths
// that exit directly must call it explicitly first.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return func() {}, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return func() {}, err
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hostprof:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hostprof:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hostprof:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hostprof:", err)
			}
		}
	}, nil
}
