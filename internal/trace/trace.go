// Package trace records transaction-lifecycle events from a simulation
// into a bounded ring buffer: begins, commits, aborts, NACKs, barrier
// crossings, suspensions. Attach a Recorder to a machine to debug
// conflict pathologies ("who kept NACKing whom before this abort?")
// without drowning in per-access logs.
package trace

import (
	"fmt"
	"strings"

	"suvtm/internal/faults"
	"suvtm/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	Begin Kind = iota
	Commit
	Abort
	NACK
	RemoteKill
	BarrierArrive
	BarrierRelease
	Suspend
	Resume
	// FaultOn / FaultOff bracket an injected fault window (Info carries
	// the faults.Kind; Other is the targeted core or -1 for all).
	FaultOn
	FaultOff
	// StarveEscalate marks a starving core entering boosted backoff
	// (Info carries its consecutive-abort count).
	StarveEscalate
	// TokenAcquire / TokenRelease bracket hopeless-transaction mode: the
	// core holds the global serialization token and runs irrevocably.
	TokenAcquire
	TokenRelease
	numKinds
)

var kindNames = [numKinds]string{
	"begin", "commit", "abort", "nack", "remote-kill",
	"barrier-arrive", "barrier-release", "suspend", "resume",
	"fault-on", "fault-off", "starve-escalate", "token-acquire", "token-release",
}

// String names the kind.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NoLine marks an event whose conflicting line is unknown (a remote
// kill decided signature-to-signature with no precise witness).
const NoLine = ^sim.Line(0)

// Event is one recorded occurrence.
type Event struct {
	Cycle sim.Cycles
	Core  int
	Kind  Kind
	// Line is the conflicting line (NACK, remote-kill), NoLine when the
	// kill had no line witness, or zero for kinds without one.
	Line sim.Line
	// Other is the peer core (NACK holder, remote-kill committer), or -1.
	Other int
	// Info carries a kind-specific datum: transaction site for
	// begin/commit/abort, barrier id for barrier events.
	Info uint64
}

// String renders the event on one line.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10d core%-2d %-15s", e.Cycle, e.Core, e.Kind)
	//suv:nonexhaustive kinds without an extra payload render only the common prefix above
	switch e.Kind {
	case NACK:
		if e.Other < 0 {
			fmt.Fprintf(&sb, " line=%#x holder=injected", e.Line)
		} else {
			fmt.Fprintf(&sb, " line=%#x holder=core%d", e.Line, e.Other)
		}
	case FaultOn, FaultOff:
		if e.Other < 0 {
			fmt.Fprintf(&sb, " fault=%s core=*", faults.Kind(e.Info))
		} else {
			fmt.Fprintf(&sb, " fault=%s core=%d", faults.Kind(e.Info), e.Other)
		}
	case StarveEscalate:
		fmt.Fprintf(&sb, " consec-aborts=%d", e.Info)
	case TokenAcquire, TokenRelease:
		fmt.Fprintf(&sb, " consec-aborts=%d", e.Info)
	case RemoteKill:
		if e.Other < 0 {
			sb.WriteString(" by=?")
		} else {
			fmt.Fprintf(&sb, " by=core%d", e.Other)
		}
		if e.Line != NoLine && e.Line != 0 {
			fmt.Fprintf(&sb, " line=%#x", e.Line)
		}
	case BarrierArrive, BarrierRelease:
		fmt.Fprintf(&sb, " id=%d", e.Info)
	default:
		fmt.Fprintf(&sb, " site=%d", e.Info)
	}
	return sb.String()
}

// Sink receives every recorded event as it happens. Attach one with
// Recorder.Stream to export a full run (the ring buffer only retains a
// bounded tail) — e.g. into a Chrome trace-event file.
type Sink interface {
	Emit(Event)
}

// Recorder is a bounded ring buffer of events, optionally streaming to a
// Sink. A nil *Recorder is a valid no-op sink, so call sites never need
// nil checks beyond the method's own.
type Recorder struct {
	events []Event
	next   int
	filled bool
	total  uint64
	mask   uint32 // bit per Kind; 0 = everything
	sink   Sink
}

// NewRecorder creates a recorder keeping the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Only restricts recording to the given kinds (call before the run).
func (r *Recorder) Only(kinds ...Kind) *Recorder {
	r.mask = 0
	for _, k := range kinds {
		r.mask |= 1 << uint(k)
	}
	return r
}

// Stream attaches a sink receiving every event as it is recorded. The
// sink sees the unfiltered stream: the Only mask governs only what the
// ring buffer retains (and what Total counts).
func (r *Recorder) Stream(s Sink) *Recorder {
	r.sink = s
	return r
}

// Record appends an event; on a nil recorder it is a no-op.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.sink != nil {
		r.sink.Emit(e)
	}
	if r.mask != 0 && r.mask&(1<<uint(e.Kind)) == 0 {
		return
	}
	r.total++
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Total returns how many events were recorded (including overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump renders the retained events, newest last.
func (r *Recorder) Dump() string {
	var sb strings.Builder
	for _, e := range r.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
