package trace

import (
	"strings"
	"testing"
)

func TestRingBufferRetention(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Cycle: uint64(i), Core: i, Kind: Begin})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle = %d, want %d (chronological order)", i, e.Cycle, 6+i)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Cycle: 1, Kind: Commit})
	r.Record(Event{Cycle: 2, Kind: Abort})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("events = %v", evs)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: NACK}) // must not panic
	if r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil recorder returned data")
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(16).Only(Abort, NACK)
	r.Record(Event{Kind: Begin})
	r.Record(Event{Kind: Abort})
	r.Record(Event{Kind: NACK})
	r.Record(Event{Kind: Commit})
	if r.Total() != 2 {
		t.Fatalf("filtered total = %d, want 2", r.Total())
	}
}

func TestEventStrings(t *testing.T) {
	cases := []Event{
		{Cycle: 5, Core: 2, Kind: NACK, Line: 0x40, Other: 7},
		{Cycle: 6, Core: 1, Kind: Begin, Info: 3},
		{Cycle: 7, Core: 0, Kind: RemoteKill, Other: 4},
		{Cycle: 8, Core: 3, Kind: BarrierArrive, Info: 1},
	}
	wants := []string{"holder=core7", "site=3", "by=core4", "id=1"}
	for i, e := range cases {
		if !strings.Contains(e.String(), wants[i]) {
			t.Errorf("event %d = %q, want substring %q", i, e.String(), wants[i])
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty string")
	}
	dump := NewRecorder(2)
	dump.Record(cases[0])
	if !strings.Contains(dump.Dump(), "nack") {
		t.Error("Dump missing event")
	}
}
