package trace

import (
	"strings"
	"testing"
)

func TestRingBufferRetention(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Cycle: uint64(i), Core: i, Kind: Begin})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != uint64(6+i) {
			t.Fatalf("event %d cycle = %d, want %d (chronological order)", i, e.Cycle, 6+i)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestPartialFill(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Cycle: 1, Kind: Commit})
	r.Record(Event{Cycle: 2, Kind: Abort})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("events = %v", evs)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: NACK}) // must not panic
	if r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil recorder returned data")
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(16).Only(Abort, NACK)
	r.Record(Event{Kind: Begin})
	r.Record(Event{Kind: Abort})
	r.Record(Event{Kind: NACK})
	r.Record(Event{Kind: Commit})
	if r.Total() != 2 {
		t.Fatalf("filtered total = %d, want 2", r.Total())
	}
}

func TestOnlyMaskGovernsRetentionAndTotal(t *testing.T) {
	// The mask must keep filtered-out events from both the ring buffer
	// and the Total count, even across wrap-around.
	r := NewRecorder(2).Only(Abort)
	for i := 0; i < 5; i++ {
		r.Record(Event{Cycle: uint64(10 + i), Kind: Abort})
		r.Record(Event{Cycle: uint64(100 + i), Kind: Begin})
		r.Record(Event{Cycle: uint64(200 + i), Kind: NACK})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5 (only the aborts)", r.Total())
	}
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("retained = %d, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Kind != Abort {
			t.Fatalf("retained filtered-out event %v", e)
		}
	}
	if evs[0].Cycle != 13 || evs[1].Cycle != 14 {
		t.Fatalf("retained wrong tail: %v", evs)
	}
}

func TestEventsPreSizesPartialCopy(t *testing.T) {
	r := NewRecorder(1024)
	r.Record(Event{Cycle: 1, Kind: Begin})
	r.Record(Event{Cycle: 2, Kind: Commit})
	evs := r.Events()
	if len(evs) != 2 || cap(evs) != 2 {
		t.Fatalf("partial copy len=%d cap=%d, want an exact-size copy", len(evs), cap(evs))
	}
	// The copy must be detached from the ring: later records don't alias.
	r.Record(Event{Cycle: 3, Kind: Abort})
	if evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("snapshot mutated: %v", evs)
	}
}

// collectSink accumulates streamed events for tests.
type collectSink struct{ got []Event }

func (s *collectSink) Emit(e Event) { s.got = append(s.got, e) }

func TestStreamSinkSeesUnfilteredStream(t *testing.T) {
	sink := &collectSink{}
	r := NewRecorder(4).Only(Abort).Stream(sink)
	r.Record(Event{Cycle: 1, Kind: Begin})
	r.Record(Event{Cycle: 2, Kind: Abort})
	r.Record(Event{Cycle: 3, Kind: Commit})
	if len(sink.got) != 3 {
		t.Fatalf("sink saw %d events, want all 3 (mask must not filter the stream)", len(sink.got))
	}
	if r.Total() != 1 {
		t.Fatalf("total = %d, want 1 (mask still governs the ring)", r.Total())
	}
	if sink.got[0].Kind != Begin || sink.got[2].Kind != Commit {
		t.Fatalf("sink order wrong: %v", sink.got)
	}
}

func TestEventStrings(t *testing.T) {
	cases := []Event{
		{Cycle: 5, Core: 2, Kind: NACK, Line: 0x40, Other: 7},
		{Cycle: 6, Core: 1, Kind: Begin, Info: 3},
		{Cycle: 7, Core: 0, Kind: RemoteKill, Other: 4},
		{Cycle: 8, Core: 3, Kind: BarrierArrive, Info: 1},
	}
	wants := []string{"holder=core7", "site=3", "by=core4", "id=1"}
	for i, e := range cases {
		if !strings.Contains(e.String(), wants[i]) {
			t.Errorf("event %d = %q, want substring %q", i, e.String(), wants[i])
		}
	}
	// A remote kill with no known committer must not render a bogus core.
	unknown := Event{Cycle: 9, Core: 5, Kind: RemoteKill, Other: -1}
	if s := unknown.String(); !strings.Contains(s, "by=?") || strings.Contains(s, "core-1") {
		t.Errorf("unknown killer = %q, want by=?", s)
	}
	// A remote kill with a precise doom witness renders the killing line;
	// one without (NoLine or zero) stays silent.
	witnessed := Event{Cycle: 10, Core: 2, Kind: RemoteKill, Other: 4, Line: 0x4f}
	if s := witnessed.String(); !strings.Contains(s, "line=0x4f") {
		t.Errorf("witnessed kill = %q, want line=0x4f", s)
	}
	unwitnessed := Event{Cycle: 11, Core: 2, Kind: RemoteKill, Other: 4, Line: NoLine}
	if s := unwitnessed.String(); strings.Contains(s, "line=") {
		t.Errorf("unwitnessed kill = %q, want no line", s)
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind has empty string")
	}
	dump := NewRecorder(2)
	dump.Record(cases[0])
	if !strings.Contains(dump.Dump(), "nack") {
		t.Error("Dump missing event")
	}
}
