// Package bank defines the deterministic line→bank geometry shared by
// the coherence directory and the shared L2 cache, plus the epoch-stamp
// claim table the parallel window engine uses to prove that no two
// shards touch the same bank inside one window.
//
// The bank of a line is a contiguous run of set-index bits:
//
//	bank(line) = (line >> shift) & (banks-1)
//
// with shift chosen by the machine so the bank bits are the TOP bits of
// the L2 set index. Two consequences carry the whole design:
//
//   - Banking the L2 is a pure relabeling: lines that share an L2 set
//     share a bank (set = bank·2^shift + localSet), so per-bank LRU
//     clocks and stats partition the monolithic cache's behaviour
//     without changing a single victim choice.
//   - The granule is coarse (L2 sets / banks sets, i.e. megabytes/banks
//     of address space per stripe), so a workload whose phases give each
//     core its own arena naturally gives each core its own banks — which
//     is exactly what lets cross-core window chains certify as
//     bank-disjoint.
//
// Like Config.Shards, the bank count is a host-structure knob, never a
// model parameter: simulated results are bit-identical for every bank
// count, which TestParallelBitIdentical and the banked-vs-monolithic
// oracle tests enforce.
//
// This package is part of the deterministic core (suvlint detmap
// patrol): any per-bank aggregation must iterate in bank-ID order,
// never map order.
package bank

import (
	"fmt"

	"suvtm/internal/sim"
)

// Map is the line→bank geometry. The zero value is a single-bank map
// (every line in bank 0, Local the identity).
type Map struct {
	banks int
	shift uint
	logK  uint
}

// NewMap builds a map of `banks` banks (a power of two) whose bank bits
// are line bits [shift, shift+log2(banks)).
func NewMap(banks int, shift uint) Map {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic(fmt.Sprintf("bank: bank count %d is not a positive power of two", banks))
	}
	logK := uint(0)
	for 1<<logK < banks {
		logK++
	}
	return Map{banks: banks, shift: shift, logK: logK}
}

// Banks returns the bank count (1 for the zero Map).
func (m Map) Banks() int {
	if m.banks == 0 {
		return 1
	}
	return m.banks
}

// Shift returns the position of the lowest bank bit.
func (m Map) Shift() uint { return m.shift }

// Of returns line's bank.
//
//suv:hotpath
func (m Map) Of(line sim.Line) int {
	return int((line >> m.shift) & sim.Line(m.Banks()-1))
}

// Local returns line's dense in-bank index: the bank bits are compressed
// out, so each bank's paged storage is indexed as densely as the
// monolithic structure was. For a single-bank map this is the identity.
//
//suv:hotpath
func (m Map) Local(line sim.Line) sim.Line {
	lo := line & (sim.Line(1)<<m.shift - 1)
	return lo | (line>>(m.shift+m.logK))<<m.shift
}

// Line reconstructs the line from (bank, local) — Local's inverse, used
// by the oracle tests to prove the partition is lossless.
func (m Map) Line(bankID int, local sim.Line) sim.Line {
	lo := local & (sim.Line(1)<<m.shift - 1)
	hi := local >> m.shift
	return lo | sim.Line(bankID)<<m.shift | hi<<(m.shift+m.logK)
}

// Stamps is a per-bank epoch claim table. The window engine begins one
// epoch per window attempt; a bank claimed by one core this epoch
// rejects claims by every other core, proving the certified chains'
// directory/L2 footprints are bank-disjoint without clearing anything
// between attempts.
type Stamps struct {
	mark  []uint32
	owner []int32
	epoch uint32
}

// Reset sizes the table for `banks` banks and invalidates every claim.
func (s *Stamps) Reset(banks int) {
	if cap(s.mark) < banks {
		s.mark = make([]uint32, banks)
		s.owner = make([]int32, banks)
	} else {
		s.mark = s.mark[:banks]
		s.owner = s.owner[:banks]
		clear(s.mark)
	}
	s.epoch = 0
}

// Begin opens a new claim epoch; prior epochs' claims lapse implicitly.
// It runs once per window attempt on the engine's certification path,
// so like Claim it must stay allocation-free (the wrap-clear reuses the
// table in place).
//
//suv:hotpath
func (s *Stamps) Begin() {
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stale marks could alias the new epoch
		clear(s.mark)
		s.epoch = 1
	}
}

// Claim records that `core` will touch bank b this epoch. It reports
// false when another core already claimed b — the caller must park the
// op on the sequential loop. Re-claims by the owning core succeed.
//
//suv:hotpath
func (s *Stamps) Claim(b, core int) bool {
	if s.mark[b] != s.epoch {
		s.mark[b] = s.epoch
		s.owner[b] = int32(core)
		return true
	}
	return s.owner[b] == int32(core)
}
