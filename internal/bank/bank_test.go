package bank

import (
	"testing"

	"suvtm/internal/sim"
)

// TestMapPartition proves (Of, Local) is a bijection with Line as its
// inverse: every line lands in exactly one bank at a dense local index,
// and distinct lines never collide.
func TestMapPartition(t *testing.T) {
	for _, banks := range []int{1, 2, 4, 8} {
		m := NewMap(banks, 11) // the default geometry: 16384 L2 sets
		seen := map[sim.Line]sim.Line{}
		for _, line := range []sim.Line{0, 1, 2047, 2048, 4095, 4096, 16383, 16384, 1 << 20, 1<<20 + 7, 1<<30 + 12345} {
			b := m.Of(line)
			if b < 0 || b >= banks {
				t.Fatalf("banks=%d: Of(%d) = %d out of range", banks, line, b)
			}
			local := m.Local(line)
			if got := m.Line(b, local); got != line {
				t.Fatalf("banks=%d: Line(%d, %d) = %d, want %d", banks, b, local, got, line)
			}
			key := sim.Line(b)<<40 | local
			if prev, dup := seen[key]; dup {
				t.Fatalf("banks=%d: lines %d and %d collide at bank %d local %d", banks, prev, line, b, local)
			}
			seen[key] = line
		}
	}
}

// TestMapZeroValue: the zero Map is a working single-bank identity map.
func TestMapZeroValue(t *testing.T) {
	var m Map
	if m.Banks() != 1 {
		t.Fatalf("zero Map banks = %d, want 1", m.Banks())
	}
	if m.Of(12345) != 0 || m.Local(12345) != 12345 {
		t.Fatalf("zero Map is not the identity: Of=%d Local=%d", m.Of(12345), m.Local(12345))
	}
}

// TestMapDense: with the bank bits inside the set-index range, local
// indices of one bank's lines are consecutive across each granule
// boundary (the directory's paged storage stays as dense as monolithic).
func TestMapDense(t *testing.T) {
	m := NewMap(4, 11)
	granule := sim.Line(1) << 11
	// Lines granule*k + i of bank b map to local granule*floor(k/4)+i.
	for k := sim.Line(0); k < 16; k++ {
		base := k * granule
		wantLocal := (k/4)*granule + 3
		if got := m.Local(base + 3); got != wantLocal {
			t.Fatalf("Local(%d) = %d, want %d", base+3, got, wantLocal)
		}
		if got := m.Of(base); got != int(k%4) {
			t.Fatalf("Of(%d) = %d, want %d", base, got, k%4)
		}
	}
}

func TestStamps(t *testing.T) {
	var s Stamps
	s.Reset(8)
	s.Begin()
	if !s.Claim(3, 1) || !s.Claim(3, 1) {
		t.Fatal("owner re-claim must succeed")
	}
	if s.Claim(3, 2) {
		t.Fatal("cross-core claim of a held bank must fail")
	}
	if !s.Claim(4, 2) {
		t.Fatal("claim of a free bank must succeed")
	}
	s.Begin()
	if !s.Claim(3, 2) {
		t.Fatal("claims must lapse at the next epoch")
	}
}

// TestStampsEpochWrap: a uint32 epoch wrap must not resurrect claims.
func TestStampsEpochWrap(t *testing.T) {
	var s Stamps
	s.Reset(2)
	s.epoch = ^uint32(0) - 1
	s.Begin() // -> MaxUint32
	if !s.Claim(0, 7) {
		t.Fatal("claim before wrap")
	}
	s.Begin() // wraps: marks cleared, epoch 1
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	if !s.Claim(0, 3) {
		t.Fatal("stale pre-wrap claim must not block a new core")
	}
}

// TestBankHotPathAllocs is the runtime counterpart of the //suv:hotpath
// annotations on Of/Local/Begin/Claim: the epoch-claim path runs once
// per certified op per window attempt inside the parallel engine, so a
// single allocation here multiplies across every window of every run.
// The wrap-clear branch in Begin is exercised too (epoch forced to the
// uint32 boundary) since that is where an accidental reallocation would
// hide.
func TestBankHotPathAllocs(t *testing.T) {
	m := NewMap(16, 4)
	var s Stamps
	s.Reset(16)
	line := sim.Line(0)
	allocs := testing.AllocsPerRun(100, func() {
		s.Begin()
		for i := 0; i < 16; i++ {
			b := m.Of(line)
			_ = m.Local(line)
			if !s.Claim(b, i&3) && !s.Claim(b, 0) {
				line++
			}
			line += 1 << 4 // walk the bank bits
		}
	})
	if allocs != 0 {
		t.Fatalf("epoch-claim path allocated %.1f times per run, want 0", allocs)
	}

	// Wrap path: Begin must clear in place, not reallocate.
	s.epoch = ^uint32(0)
	allocs = testing.AllocsPerRun(10, func() {
		s.Begin()
		s.epoch = ^uint32(0)
	})
	if allocs != 0 {
		t.Fatalf("epoch wrap-clear allocated %.1f times per run, want 0", allocs)
	}
}
