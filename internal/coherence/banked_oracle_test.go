package coherence

import (
	"fmt"
	"math/rand"
	"testing"

	"suvtm/internal/sim"
)

// TestBankedDirectoryMatchesMonolithic is the banking oracle: a banked
// directory is a pure partition of the monolithic one, so an identical
// operation stream must leave every K-banked instance (K ∈ {1,2,4,8})
// in a state indistinguishable from the single-bank reference — same
// answers to every query after every step, same tracked-line count,
// same aggregated protocol stats at the end. Lines are drawn from a
// pool that collides across banks (dense low lines, aliased high lines,
// far-map giants) so bank selection, in-bank index folding, and the
// map fallback all get exercised.
func TestBankedDirectoryMatchesMonolithic(t *testing.T) {
	const cores = 8
	const shift = 4 // bank bits well inside the pool's line spread
	lines := make([]sim.Line, 0, 80)
	for i := sim.Line(0); i < 48; i++ {
		lines = append(lines, i)
	}
	for i := sim.Line(0); i < 16; i++ {
		lines = append(lines, 1<<20+i*13) // spread over banks, shared pages
	}
	for i := sim.Line(0); i < 16; i++ {
		lines = append(lines, 1<<40+i*512) // beyond dirDirectPages: map path
	}

	for _, banks := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("banks=%d", banks), func(t *testing.T) {
			mono := NewDirectory(cores)
			banked := NewDirectoryBanked(cores, banks, shift)
			rng := rand.New(rand.NewSource(int64(banks) * 1237))
			for step := 0; step < 20000; step++ {
				line := lines[rng.Intn(len(lines))]
				core := rng.Intn(cores)
				switch rng.Intn(4) {
				case 0:
					mono.AddSharer(line, core)
					banked.AddSharer(line, core)
				case 1:
					if got, want := banked.SetOwner(line, core), mono.SetOwner(line, core); got != want {
						t.Fatalf("step %d: SetOwner(%d, %d) invalidated %d, mono %d", step, line, core, got, want)
					}
				case 2:
					mono.Downgrade(line, core)
					banked.Downgrade(line, core)
				case 3:
					mono.Drop(line, core)
					banked.Drop(line, core)
				}
				if got, want := banked.Owner(line), mono.Owner(line); got != want {
					t.Fatalf("step %d: Owner(%d) = %d, mono %d", step, line, got, want)
				}
				if got, want := banked.Sharers(line), mono.Sharers(line); got != want {
					t.Fatalf("step %d: Sharers(%d) = %#x, mono %#x", step, line, got, want)
				}
				if got, want := banked.HolderCount(line), mono.HolderCount(line); got != want {
					t.Fatalf("step %d: HolderCount(%d) = %d, mono %d", step, line, got, want)
				}
			}
			for _, line := range lines {
				if got, want := banked.SharerList(line), mono.SharerList(line); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("final SharerList(%d) = %v, mono %v", line, got, want)
				}
				for c := 0; c < cores; c++ {
					if got, want := banked.HoldsModified(line, c), mono.HoldsModified(line, c); got != want {
						t.Fatalf("final HoldsModified(%d, %d) = %v, mono %v", line, c, got, want)
					}
				}
			}
			if got, want := banked.Tracked(), mono.Tracked(); got != want {
				t.Fatalf("Tracked = %d, mono %d", got, want)
			}
			if got, want := banked.Stats(), mono.Stats(); got != want {
				t.Fatalf("Stats = %+v, mono %+v", got, want)
			}
		})
	}
}
