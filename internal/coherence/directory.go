// Package coherence implements the global sharing state of the simulated
// CMP: a full-map bit-vector directory (Table III) over 64-byte lines.
// The directory answers, for any line, who owns it in Modified state and
// which cores hold Shared copies, and performs the bookkeeping for
// GETS/GETM/eviction transitions of the MESI protocol. Conflict
// *detection* (signature checks, NACKs) is layered on top by the HTM
// machine; the directory itself is TM-agnostic.
//
// The directory is banked: entries, stats and the tracked-line count are
// partitioned into K independent banks keyed by the deterministic
// line→bank map shared with the L2 (bank.Map). Banking is behaviorally
// invisible — lines partition exactly, queries route to one bank, and
// Stats/Tracked sum the banks in bank-ID order — but it gives the
// parallel window engine disjoint mutable state: two cores whose window
// chains touch different banks can fill and evict concurrently without
// ever sharing a page table, a counter, or a tracked count.
package coherence

import (
	"math/bits"

	"suvtm/internal/bank"
	"suvtm/internal/metrics"
	"suvtm/internal/sim"
)

// maxCores bounds the sharer bit-vector width.
const maxCores = 64

// Paged-entry geometry: directory state is a two-level structure of
// fixed-size pages indexed directly by the line's dense in-bank index,
// so the per-access owner/sharer reads are indexed loads instead of map
// probes.
const (
	dirPageShift = 10 // 1024 entries per page
	dirPageSize  = 1 << dirPageShift
	dirPageMask  = dirPageSize - 1

	// dirDirectPages bounds the directly-indexed page table (in-bank
	// line indices below 2^27, i.e. an 8 GiB physical space per bank);
	// pathological line numbers beyond it fall back to a map.
	dirDirectPages = 1 << 17
)

// DirStats counts the directory's protocol message mix for the
// observability layer: how a run's coherence traffic splits into read
// fills, write fills, downgrades, invalidations and evictions. Plain
// adds, no timing effect.
type DirStats struct {
	GETS          metrics.Counter // shared fills recorded (AddSharer)
	GETM          metrics.Counter // exclusive fills recorded (SetOwner)
	Downgrades    metrics.Counter // Modified owners demoted to Shared
	Invalidations metrics.Counter // copies invalidated by exclusive fills
	Drops         metrics.Counter // evictions / explicit copy removals
}

// add folds o into s (bank aggregation; plain sums).
func (s *DirStats) add(o *DirStats) {
	s.GETS.Add(o.GETS.Value())
	s.GETM.Add(o.GETM.Value())
	s.Downgrades.Add(o.Downgrades.Value())
	s.Invalidations.Add(o.Invalidations.Value())
	s.Drops.Add(o.Drops.Value())
}

// entry is the directory state for one line. The zero value is the
// untracked state (no owner, no sharers): owner is stored +1 so that
// owner==0 means "none" and zero-filled pages need no initialization.
type entry struct {
	sharers uint64 // bit per core with a Shared copy
	ownerP1 int8   // owning core + 1, or 0 for none
}

func (e *entry) owner() int { return int(e.ownerP1) - 1 }
func (e *entry) live() bool { return e.ownerP1 != 0 || e.sharers != 0 }

type dirPage [dirPageSize]entry

// dirBank is one bank's private state: paged entry storage, stats and
// the tracked-line count. Nothing in it is shared with other banks, so
// banks mutate concurrently during parallel windows.
type dirBank struct {
	pages   []*dirPage
	far     map[uint64]*dirPage
	tracked int // lines with any cached copy
	stats   DirStats
}

// Directory is a full-map directory over all lines ever referenced,
// partitioned into banks by a shared line→bank map.
type Directory struct {
	cores int
	bm    bank.Map
	banks []dirBank

	// Retry configures the timeout/retransmission protocol (zero value:
	// disabled); RetryStats accumulates its activity. See retry.go. Both
	// stay global: the retry layer only runs on the sequential engine.
	Retry      RetryPolicy
	RetryStats RetryStats
}

// NewDirectory creates a single-bank directory for the given core count
// (tests and callers indifferent to banking).
func NewDirectory(cores int) *Directory { return NewDirectoryBanked(cores, 1, 0) }

// NewDirectoryBanked creates a directory partitioned into `banks` banks
// whose bank bits are line bits [shift, shift+log2(banks)) — the same
// map the machine gives the L2, so "bank-disjoint" means the same thing
// for both structures.
func NewDirectoryBanked(cores, banks int, shift uint) *Directory {
	if cores <= 0 || cores > maxCores {
		panic("coherence: unsupported core count")
	}
	return &Directory{cores: cores, bm: bank.NewMap(banks, shift), banks: make([]dirBank, banks)}
}

// Reset returns the directory to the untracked state for a (possibly
// different) core count while keeping the entry pages allocated. Because
// the zero entry is the untracked state, a reset directory is
// indistinguishable from a fresh one; stats and the retry policy are
// cleared along with the sharing state. Bank geometry is kept.
func (d *Directory) Reset(cores int) {
	if cores <= 0 || cores > maxCores {
		panic("coherence: unsupported core count")
	}
	d.cores = cores
	for b := range d.banks {
		bk := &d.banks[b]
		for _, p := range bk.pages {
			if p != nil {
				*p = dirPage{}
			}
		}
		bk.far = nil
		bk.tracked = 0
		bk.stats = DirStats{}
	}
	d.Retry = RetryPolicy{}
	d.RetryStats = RetryStats{}
}

// ResetBanked is Reset with a (possibly different) bank geometry. A
// matching geometry keeps the allocated pages (the arena-reuse path); a
// change rebuilds the bank array fresh.
func (d *Directory) ResetBanked(cores, banks int, shift uint) {
	if d.bm == bank.NewMap(banks, shift) && len(d.banks) == banks {
		d.Reset(cores)
		return
	}
	*d = *NewDirectoryBanked(cores, banks, shift)
}

// Banks returns the bank count.
func (d *Directory) Banks() int { return len(d.banks) }

// BankOf returns line's bank — the window engine's claim key.
//
//suv:hotpath
func (d *Directory) BankOf(line sim.Line) int { return d.bm.Of(line) }

// peek returns the entry for line, or nil when the line is untracked
// (its page may not even exist). The pointer stays valid until the next
// mutation of the directory.
//
//suv:hotpath
func (d *Directory) peek(line sim.Line) *entry {
	bk := &d.banks[d.bm.Of(line)]
	local := d.bm.Local(line)
	pi := local >> dirPageShift
	if pi < uint64(len(bk.pages)) {
		if p := bk.pages[pi]; p != nil {
			return &p[local&dirPageMask]
		}
		return nil
	}
	if pi >= dirDirectPages {
		if p := bk.far[pi]; p != nil {
			return &p[local&dirPageMask]
		}
	}
	return nil
}

// at returns the entry for line, materializing its page on first touch.
// It also returns the bank, whose stats and tracked count the mutating
// callers update — bank-local, so concurrent window chains on disjoint
// banks never share a write.
func (d *Directory) at(line sim.Line) (*entry, *dirBank) {
	bk := &d.banks[d.bm.Of(line)]
	local := d.bm.Local(line)
	pi := local >> dirPageShift
	if pi >= dirDirectPages {
		if bk.far == nil {
			bk.far = make(map[uint64]*dirPage)
		}
		p := bk.far[pi]
		if p == nil {
			p = new(dirPage)
			bk.far[pi] = p
		}
		return &p[local&dirPageMask], bk
	}
	if pi >= uint64(len(bk.pages)) {
		grown := make([]*dirPage, max(pi+1, uint64(2*len(bk.pages))))
		copy(grown, bk.pages)
		bk.pages = grown
	}
	p := bk.pages[pi]
	if p == nil {
		p = new(dirPage)
		bk.pages[pi] = p
	}
	return &p[local&dirPageMask], bk
}

// Stats returns the protocol message mix summed over banks in bank-ID
// order (the canonical merge order; the sums are commutative, the order
// is the determinism contract).
func (d *Directory) Stats() DirStats {
	var s DirStats
	for b := range d.banks {
		s.add(&d.banks[b].stats)
	}
	return s
}

// Owner returns the core holding line in Modified state, or -1.
//
//suv:hotpath
func (d *Directory) Owner(line sim.Line) int {
	if e := d.peek(line); e != nil {
		return e.owner()
	}
	return -1
}

// Sharers returns the bit-vector of cores holding Shared copies.
//
//suv:hotpath
func (d *Directory) Sharers(line sim.Line) uint64 {
	if e := d.peek(line); e != nil {
		return e.sharers
	}
	return 0
}

// SharerCount returns the number of cores holding Shared copies without
// allocating.
//
//suv:hotpath
func (d *Directory) SharerCount(line sim.Line) int {
	return bits.OnesCount64(d.Sharers(line))
}

// HolderCount returns the number of cores holding any copy of line —
// the Shared sharers plus a Modified owner when present. Conflict
// forensics records it as the line's contention degree at conflict
// time.
//
//suv:hotpath
func (d *Directory) HolderCount(line sim.Line) int {
	e := d.peek(line)
	if e == nil {
		return 0
	}
	n := bits.OnesCount64(e.sharers)
	if e.owner() >= 0 {
		n++
	}
	return n
}

// ForEachSharer calls fn for every sharer core id in ascending order.
// The sharer set is read once up front, so fn may mutate the directory
// (Drop, SetOwner) without disturbing the iteration.
//
//suv:hotpath
func (d *Directory) ForEachSharer(line sim.Line, fn func(core int)) {
	s := d.Sharers(line)
	for s != 0 {
		fn(bits.TrailingZeros64(s))
		s &= s - 1
	}
}

// AppendSharers appends the sharer core ids in ascending order to buf
// and returns it — the zero-alloc variant of SharerList for callers
// holding a reusable buffer.
func (d *Directory) AppendSharers(buf []int, line sim.Line) []int {
	s := d.Sharers(line)
	for s != 0 {
		buf = append(buf, bits.TrailingZeros64(s))
		s &= s - 1
	}
	return buf
}

// SharerList returns the sharer core ids in ascending order. It
// allocates a fresh slice per call; hot paths should use ForEachSharer
// or AppendSharers instead.
func (d *Directory) SharerList(line sim.Line) []int {
	var out []int
	return d.AppendSharers(out, line)
}

// AddSharer records a GETS fill: core now holds line Shared. A Modified
// owner (core itself or a remote one) is downgraded to a sharer — its
// cache keeps a Shared copy after servicing the read, per MESI.
//
//suv:hotpath
func (d *Directory) AddSharer(line sim.Line, core int) {
	e, bk := d.at(line)
	bk.stats.GETS.Inc()
	if !e.live() {
		bk.tracked++
	}
	if e.ownerP1 != 0 {
		e.sharers |= 1 << uint(e.owner())
		e.ownerP1 = 0
	}
	e.sharers |= 1 << uint(core)
}

// SetOwner records a GETM fill: core now holds line Modified and every
// other copy is invalidated. It returns how many remote copies were
// invalidated (the previous owner and/or sharers, excluding core
// itself) without materializing the list — the request path only needs
// the count for accounting, and building a slice here was the last
// allocating call on the directory hot path.
//
//suv:hotpath
func (d *Directory) SetOwner(line sim.Line, core int) int {
	e, bk := d.at(line)
	if !e.live() {
		bk.tracked++
	}
	invalidated := 0
	if e.ownerP1 != 0 && e.owner() != core {
		invalidated++
	}
	invalidated += bits.OnesCount64(e.sharers &^ (1 << uint(core)))
	bk.stats.GETM.Inc()
	bk.stats.Invalidations.Add(uint64(invalidated))
	e.ownerP1 = int8(core) + 1
	e.sharers = 0
	return invalidated
}

// Downgrade converts core's Modified ownership of line into a Shared
// copy (a remote GETS hit the owner). No-op if core is not the owner.
func (d *Directory) Downgrade(line sim.Line, core int) {
	e := d.peek(line)
	if e == nil || e.owner() != core {
		return
	}
	d.banks[d.bm.Of(line)].stats.Downgrades.Inc()
	e.ownerP1 = 0
	e.sharers |= 1 << uint(core)
}

// Drop removes core's copy of line (eviction or invalidation).
func (d *Directory) Drop(line sim.Line, core int) {
	e := d.peek(line)
	if e == nil || !e.live() {
		return
	}
	bk := &d.banks[d.bm.Of(line)]
	bk.stats.Drops.Inc()
	if e.owner() == core {
		e.ownerP1 = 0
	}
	e.sharers &^= 1 << uint(core)
	if !e.live() {
		bk.tracked--
	}
}

// HoldsModified reports whether core owns line in Modified state.
func (d *Directory) HoldsModified(line sim.Line, core int) bool {
	return d.Owner(line) == core
}

// Tracked returns the number of lines with any cached copy, summed over
// banks in bank-ID order (tests).
func (d *Directory) Tracked() int {
	n := 0
	for b := range d.banks {
		n += d.banks[b].tracked
	}
	return n
}
