// Package coherence implements the global sharing state of the simulated
// CMP: a full-map bit-vector directory (Table III) over 64-byte lines.
// The directory answers, for any line, who owns it in Modified state and
// which cores hold Shared copies, and performs the bookkeeping for
// GETS/GETM/eviction transitions of the MESI protocol. Conflict
// *detection* (signature checks, NACKs) is layered on top by the HTM
// machine; the directory itself is TM-agnostic.
package coherence

import (
	"suvtm/internal/metrics"
	"suvtm/internal/sim"
)

// maxCores bounds the sharer bit-vector width.
const maxCores = 64

// DirStats counts the directory's protocol message mix for the
// observability layer: how a run's coherence traffic splits into read
// fills, write fills, downgrades, invalidations and evictions. Plain
// adds, no timing effect.
type DirStats struct {
	GETS          metrics.Counter // shared fills recorded (AddSharer)
	GETM          metrics.Counter // exclusive fills recorded (SetOwner)
	Downgrades    metrics.Counter // Modified owners demoted to Shared
	Invalidations metrics.Counter // copies invalidated by exclusive fills
	Drops         metrics.Counter // evictions / explicit copy removals
}

// entry is the directory state for one line.
type entry struct {
	owner   int8   // core holding the line Modified, or -1
	sharers uint64 // bit per core with a Shared copy
}

// Directory is a full-map directory over all lines ever referenced.
type Directory struct {
	cores   int
	entries map[sim.Line]entry

	// Stats accumulates the protocol message mix.
	Stats DirStats

	// Retry configures the timeout/retransmission protocol (zero value:
	// disabled); RetryStats accumulates its activity. See retry.go.
	Retry      RetryPolicy
	RetryStats RetryStats
}

// NewDirectory creates a directory for the given core count.
func NewDirectory(cores int) *Directory {
	if cores <= 0 || cores > maxCores {
		panic("coherence: unsupported core count")
	}
	return &Directory{cores: cores, entries: make(map[sim.Line]entry)}
}

// Owner returns the core holding line in Modified state, or -1.
func (d *Directory) Owner(line sim.Line) int {
	e, ok := d.entries[line]
	if !ok {
		return -1
	}
	return int(e.owner)
}

// Sharers returns the bit-vector of cores holding Shared copies.
func (d *Directory) Sharers(line sim.Line) uint64 {
	return d.entries[line].sharers
}

// SharerList returns the sharer core ids in ascending order.
func (d *Directory) SharerList(line sim.Line) []int {
	var out []int
	s := d.entries[line].sharers
	for c := 0; c < d.cores; c++ {
		if s&(1<<uint(c)) != 0 {
			out = append(out, c)
		}
	}
	return out
}

// AddSharer records a GETS fill: core now holds line Shared. A Modified
// owner (core itself or a remote one) is downgraded to a sharer — its
// cache keeps a Shared copy after servicing the read, per MESI.
func (d *Directory) AddSharer(line sim.Line, core int) {
	d.Stats.GETS.Inc()
	e := d.get(line)
	if e.owner >= 0 {
		e.sharers |= 1 << uint(e.owner)
		e.owner = -1
	}
	e.sharers |= 1 << uint(core)
	d.entries[line] = e
}

// SetOwner records a GETM fill: core now holds line Modified and every
// other copy is invalidated. It returns the cores whose copies were
// invalidated (the previous owner and/or sharers, excluding core itself).
func (d *Directory) SetOwner(line sim.Line, core int) []int {
	e := d.get(line)
	var invalidated []int
	if e.owner >= 0 && int(e.owner) != core {
		invalidated = append(invalidated, int(e.owner))
	}
	for c := 0; c < d.cores; c++ {
		if c != core && e.sharers&(1<<uint(c)) != 0 {
			invalidated = append(invalidated, c)
		}
	}
	d.Stats.GETM.Inc()
	d.Stats.Invalidations.Add(uint64(len(invalidated)))
	e.owner = int8(core)
	e.sharers = 0
	d.entries[line] = e
	return invalidated
}

// Downgrade converts core's Modified ownership of line into a Shared
// copy (a remote GETS hit the owner). No-op if core is not the owner.
func (d *Directory) Downgrade(line sim.Line, core int) {
	e := d.get(line)
	if int(e.owner) == core {
		d.Stats.Downgrades.Inc()
		e.owner = -1
		e.sharers |= 1 << uint(core)
		d.entries[line] = e
	}
}

// Drop removes core's copy of line (eviction or invalidation).
func (d *Directory) Drop(line sim.Line, core int) {
	e, ok := d.entries[line]
	if !ok {
		return
	}
	d.Stats.Drops.Inc()
	if int(e.owner) == core {
		e.owner = -1
	}
	e.sharers &^= 1 << uint(core)
	if e.owner < 0 && e.sharers == 0 {
		delete(d.entries, line)
		return
	}
	d.entries[line] = e
}

// HoldsModified reports whether core owns line in Modified state.
func (d *Directory) HoldsModified(line sim.Line, core int) bool {
	return d.Owner(line) == core
}

// Tracked returns the number of lines with any cached copy (tests).
func (d *Directory) Tracked() int { return len(d.entries) }

func (d *Directory) get(line sim.Line) entry {
	e, ok := d.entries[line]
	if !ok {
		return entry{owner: -1}
	}
	return e
}
