package coherence

import (
	"testing"
	"testing/quick"
)

func TestDirectoryBasicTransitions(t *testing.T) {
	d := NewDirectory(4)
	if d.Owner(10) != -1 {
		t.Fatal("untracked line has an owner")
	}
	d.AddSharer(10, 0)
	d.AddSharer(10, 2)
	if got := d.SharerList(10); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("sharers = %v", got)
	}
	inv := d.SetOwner(10, 1)
	if len(inv) != 2 {
		t.Fatalf("invalidated = %v, want cores 0 and 2", inv)
	}
	if d.Owner(10) != 1 || d.Sharers(10) != 0 {
		t.Fatal("ownership transition wrong")
	}
}

func TestDirectoryOwnerToSharerOnGETS(t *testing.T) {
	d := NewDirectory(4)
	d.SetOwner(7, 3)
	d.Downgrade(7, 3)
	if d.Owner(7) != -1 {
		t.Fatal("owner survived downgrade")
	}
	if got := d.SharerList(7); len(got) != 1 || got[0] != 3 {
		t.Fatalf("sharers after downgrade = %v", got)
	}
	// Downgrading a non-owner is a no-op.
	d.SetOwner(8, 1)
	d.Downgrade(8, 2)
	if d.Owner(8) != 1 {
		t.Fatal("downgrade by non-owner changed state")
	}
}

func TestDirectorySetOwnerSelf(t *testing.T) {
	d := NewDirectory(4)
	d.SetOwner(5, 2)
	inv := d.SetOwner(5, 2)
	if len(inv) != 0 {
		t.Fatalf("self re-own invalidated %v", inv)
	}
}

func TestDirectoryDrop(t *testing.T) {
	d := NewDirectory(4)
	d.AddSharer(1, 0)
	d.AddSharer(1, 1)
	d.Drop(1, 0)
	if got := d.SharerList(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("sharers after drop = %v", got)
	}
	d.Drop(1, 1)
	if d.Tracked() != 0 {
		t.Fatal("empty line still tracked")
	}
	d.Drop(1, 2) // dropping an untracked line is a no-op
}

func TestDirectoryAddSharerDowngradesSelfOwner(t *testing.T) {
	d := NewDirectory(4)
	d.SetOwner(9, 1)
	d.AddSharer(9, 1)
	if d.Owner(9) != -1 {
		t.Fatal("owner survived self GETS downgrade")
	}
	if d.HoldsModified(9, 1) {
		t.Fatal("owner kept Modified after self GETS downgrade")
	}
}

// TestDirectoryInvariant property-checks that a line never has both an
// owner and sharers after arbitrary operation sequences.
func TestDirectoryInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory(8)
		for _, op := range ops {
			line := uint64(op % 13)
			core := int(op>>4) % 8
			switch op % 3 {
			case 0:
				d.AddSharer(line, core)
			case 1:
				d.SetOwner(line, core)
			case 2:
				d.Drop(line, core)
			}
			if d.Owner(line) >= 0 && d.Sharers(line) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryBadCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 cores")
		}
	}()
	NewDirectory(0)
}
