package coherence

import (
	"testing"
	"testing/quick"

	"suvtm/internal/sim"
)

func TestDirectoryBasicTransitions(t *testing.T) {
	d := NewDirectory(4)
	if d.Owner(10) != -1 {
		t.Fatal("untracked line has an owner")
	}
	d.AddSharer(10, 0)
	d.AddSharer(10, 2)
	if got := d.SharerList(10); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("sharers = %v", got)
	}
	inv := d.SetOwner(10, 1)
	if inv != 2 {
		t.Fatalf("invalidated = %d, want 2 (cores 0 and 2)", inv)
	}
	if d.Owner(10) != 1 || d.Sharers(10) != 0 {
		t.Fatal("ownership transition wrong")
	}
}

func TestDirectoryOwnerToSharerOnGETS(t *testing.T) {
	d := NewDirectory(4)
	d.SetOwner(7, 3)
	d.Downgrade(7, 3)
	if d.Owner(7) != -1 {
		t.Fatal("owner survived downgrade")
	}
	if got := d.SharerList(7); len(got) != 1 || got[0] != 3 {
		t.Fatalf("sharers after downgrade = %v", got)
	}
	// Downgrading a non-owner is a no-op.
	d.SetOwner(8, 1)
	d.Downgrade(8, 2)
	if d.Owner(8) != 1 {
		t.Fatal("downgrade by non-owner changed state")
	}
}

func TestDirectorySetOwnerSelf(t *testing.T) {
	d := NewDirectory(4)
	d.SetOwner(5, 2)
	inv := d.SetOwner(5, 2)
	if inv != 0 {
		t.Fatalf("self re-own invalidated %d copies", inv)
	}
}

func TestDirectoryDrop(t *testing.T) {
	d := NewDirectory(4)
	d.AddSharer(1, 0)
	d.AddSharer(1, 1)
	d.Drop(1, 0)
	if got := d.SharerList(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("sharers after drop = %v", got)
	}
	d.Drop(1, 1)
	if d.Tracked() != 0 {
		t.Fatal("empty line still tracked")
	}
	d.Drop(1, 2) // dropping an untracked line is a no-op
}

func TestDirectoryAddSharerDowngradesSelfOwner(t *testing.T) {
	d := NewDirectory(4)
	d.SetOwner(9, 1)
	d.AddSharer(9, 1)
	if d.Owner(9) != -1 {
		t.Fatal("owner survived self GETS downgrade")
	}
	if d.HoldsModified(9, 1) {
		t.Fatal("owner kept Modified after self GETS downgrade")
	}
}

// TestDirectoryInvariant property-checks that a line never has both an
// owner and sharers after arbitrary operation sequences.
func TestDirectoryInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDirectory(8)
		for _, op := range ops {
			line := uint64(op % 13)
			core := int(op>>4) % 8
			switch op % 3 {
			case 0:
				d.AddSharer(line, core)
			case 1:
				d.SetOwner(line, core)
			case 2:
				d.Drop(line, core)
			}
			if d.Owner(line) >= 0 && d.Sharers(line) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryBadCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 cores")
		}
	}()
	NewDirectory(0)
}

// TestDirectorySharerIteration checks the zero-alloc sharer accessors
// against SharerList, including mutation from inside the callback (the
// invalidation pattern the HTM machine uses).
func TestDirectorySharerIteration(t *testing.T) {
	d := NewDirectory(16)
	for _, c := range []int{1, 4, 9, 15} {
		d.AddSharer(42, c)
	}
	if got := d.SharerCount(42); got != 4 {
		t.Fatalf("SharerCount = %d, want 4", got)
	}
	var seen []int
	d.ForEachSharer(42, func(core int) { seen = append(seen, core) })
	want := d.SharerList(42)
	if len(seen) != len(want) {
		t.Fatalf("ForEachSharer saw %v, want %v", seen, want)
	}
	for i := range seen {
		if seen[i] != want[i] {
			t.Fatalf("ForEachSharer saw %v, want %v", seen, want)
		}
	}
	if buf := d.AppendSharers(make([]int, 0, 8), 42); len(buf) != 4 || buf[0] != 1 || buf[3] != 15 {
		t.Fatalf("AppendSharers = %v", buf)
	}
	// Dropping sharers mid-iteration must not disturb the visit order.
	var dropped []int
	d.ForEachSharer(42, func(core int) {
		d.Drop(42, core)
		dropped = append(dropped, core)
	})
	if len(dropped) != 4 || d.SharerCount(42) != 0 || d.Tracked() != 0 {
		t.Fatalf("drop-in-callback: dropped %v, count %d, tracked %d", dropped, d.SharerCount(42), d.Tracked())
	}
}

// TestDirectoryTrackedCounter pins the Tracked bookkeeping across the
// full transition mix now that entries are paged instead of deleted.
func TestDirectoryTrackedCounter(t *testing.T) {
	d := NewDirectory(4)
	d.AddSharer(1, 0)
	d.AddSharer(1, 1)
	d.SetOwner(2, 3)
	if d.Tracked() != 2 {
		t.Fatalf("Tracked = %d, want 2", d.Tracked())
	}
	d.Drop(1, 0)
	d.Drop(1, 1)
	if d.Tracked() != 1 {
		t.Fatalf("Tracked after drops = %d, want 1", d.Tracked())
	}
	d.Drop(1, 1) // dropping a dead line is a no-op
	d.Drop(2, 3)
	if d.Tracked() != 0 {
		t.Fatalf("Tracked after all drops = %d, want 0", d.Tracked())
	}
	// Re-touching a dead-but-paged line revives it exactly once.
	d.AddSharer(1, 2)
	if d.Tracked() != 1 {
		t.Fatalf("Tracked after revive = %d, want 1", d.Tracked())
	}
}

// TestDirectoryHotPathAllocs asserts the steady-state directory
// round-trip (the acquire path's fills and drops) allocates nothing
// once the touched pages exist.
func TestDirectoryHotPathAllocs(t *testing.T) {
	d := NewDirectory(16)
	d.AddSharer(100, 0)
	d.Drop(100, 0)
	if allocs := testing.AllocsPerRun(200, func() {
		d.AddSharer(100, 1)
		d.AddSharer(100, 2)
		d.ForEachSharer(100, func(core int) { d.Drop(100, core) })
		d.SetOwner(100, 3)
		_ = d.Owner(100)
		_ = d.Sharers(100)
		d.Drop(100, 3)
		// GETM over live sharers — the invalidation count used to be
		// materialized as a slice, the last allocating directory call.
		d.AddSharer(100, 4)
		d.AddSharer(100, 5)
		if inv := d.SetOwner(100, 6); inv != 2 {
			panic("invalidation count wrong")
		}
		d.Drop(100, 6)
	}); allocs != 0 {
		t.Fatalf("directory hot path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestDirectoryFarPages exercises the overflow page table for line
// numbers beyond the directly-indexed range.
func TestDirectoryFarPages(t *testing.T) {
	d := NewDirectory(8)
	far := sim.Line(1) << 40
	d.AddSharer(far, 5)
	if d.Sharers(far) != 1<<5 || d.Tracked() != 1 {
		t.Fatalf("far line not tracked: sharers %b tracked %d", d.Sharers(far), d.Tracked())
	}
	d.Drop(far, 5)
	if d.Tracked() != 0 {
		t.Fatalf("far line not dropped")
	}
}
