package coherence

import (
	"suvtm/internal/metrics"
	"suvtm/internal/sim"
)

// RetryPolicy is the directory protocol's defense against a misbehaving
// interconnect: a requester that has not heard back within Timeout cycles
// retransmits, up to MaxRetries times. Retransmissions take an
// adaptively-rerouted (fault-free) path, so the protocol bounds the
// damage an injected message delay can do to one request at roughly
// Timeout + base latency instead of the full injected delay. The zero
// value disables retransmission (a delayed message simply arrives late).
type RetryPolicy struct {
	Timeout    sim.Cycles // cycles without a response before retransmitting
	MaxRetries int        // retransmissions per request before giving up
}

// RetryStats counts the retry protocol's activity, in the DirStats
// plain-adds style.
type RetryStats struct {
	Timeouts   metrics.Counter // response deadlines that expired
	Retries    metrics.Counter // retransmissions sent (one per timeout)
	Duplicates metrics.Counter // duplicated requests reprocessed idempotently
}

// resolve simulates one request whose first transmission suffers
// `injected` extra interconnect delay on top of the nominal `base`
// round-trip. It returns when a response finally arrives and how many
// timeouts fired on the way.
func (p RetryPolicy) resolve(base, injected sim.Cycles) (arrival sim.Cycles, timeouts int) {
	arrival = base + injected
	if p.Timeout == 0 {
		return arrival, 0
	}
	for k := 1; k <= p.MaxRetries; k++ {
		deadline := sim.Cycles(k) * p.Timeout
		if arrival <= deadline {
			break // a response lands before this deadline expires
		}
		timeouts++
		if retry := deadline + base; retry < arrival {
			arrival = retry
		}
	}
	return arrival, timeouts
}

// Deliver charges one directory request against the retry protocol:
// base is the nominal request latency, injected the fault-injected
// interconnect delay afflicting it (0 when healthy), and dupCost the
// directory-occupancy cost of idempotently reprocessing a duplicated
// request (0 when not duplicated). It returns the effective latency the
// requester observes and accumulates the retry statistics.
//
// Duplication is safe by construction: AddSharer and SetOwner are
// idempotent, so the duplicate changes no sharing state — it only burns
// a directory slot, which is the cost modeled here.
func (d *Directory) Deliver(base, injected, dupCost sim.Cycles) sim.Cycles {
	lat := base
	if injected > 0 {
		arrival, timeouts := d.Retry.resolve(base, injected)
		lat = arrival
		d.RetryStats.Timeouts.Add(uint64(timeouts))
		d.RetryStats.Retries.Add(uint64(timeouts))
	}
	if dupCost > 0 {
		d.RetryStats.Duplicates.Inc()
		lat += dupCost
	}
	return lat
}
