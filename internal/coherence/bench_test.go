package coherence

import (
	"testing"

	"suvtm/internal/sim"
)

// BenchmarkDirectoryRoundtrip models the directory traffic of one memory
// operation: a shared fill, an exclusive fill that invalidates the
// sharers, and the eviction drop — the exact sequence the HTM machine's
// acquire path generates under contention.
func BenchmarkDirectoryRoundtrip(b *testing.B) {
	d := NewDirectory(16)
	const lines = 1 << 12
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		line := sim.Line(i) & (lines - 1)
		d.AddSharer(line, i&15)
		d.AddSharer(line, (i+1)&15)
		d.SetOwner(line, (i+2)&15)
		sink += d.Owner(line)
		d.Drop(line, (i+2)&15)
	}
	_ = sink
}
