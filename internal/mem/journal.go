package mem

import "suvtm/internal/sim"

// WriteLog is an ordered record of every data-plane mutation a Memory
// received while journaling was on. Replaying the log onto a reset
// memory reproduces the journaled image exactly — the same values, the
// same written-footprint bits, in the same order — which is what lets
// the fleet's workload memo skip regenerating a workload it has already
// built: the generators mutate memory only through Write/WriteLine (and
// CopyLine, journaled for completeness), so the log plus the generated
// App is the whole observable output of a generator run.
type WriteLog struct {
	entries []journalEntry
}

// journalEntry is one recorded mutation: a single word write, or a full
// line write (WriteLine/CopyLine) when isLine is set.
type journalEntry struct {
	addr   sim.Addr // word address; line-base address for line entries
	val    sim.Word
	vals   [sim.WordsPerLine]sim.Word
	isLine bool
}

func (l *WriteLog) word(addr sim.Addr, val sim.Word) {
	l.entries = append(l.entries, journalEntry{addr: addr, val: val})
}

func (l *WriteLog) line(line sim.Line, vals [sim.WordsPerLine]sim.Word) {
	l.entries = append(l.entries, journalEntry{
		addr:   sim.Addr(line) << sim.LineShift,
		vals:   vals,
		isLine: true,
	})
}

// Len returns the number of recorded mutations.
func (l *WriteLog) Len() int { return len(l.entries) }

// Replay applies the log to m in recording order.
func (l *WriteLog) Replay(m *Memory) {
	for i := range l.entries {
		e := &l.entries[i]
		if e.isLine {
			m.WriteLine(sim.LineOf(e.addr), e.vals)
		} else {
			m.Write(e.addr, e.val)
		}
	}
}

// StartJournal begins recording every subsequent Write, WriteLine and
// CopyLine into a fresh log. Journaling is a generation-time facility:
// it must be stopped before simulation starts (the hot data plane pays
// one predictable nil-check while recording is off).
func (m *Memory) StartJournal() {
	if m.journal != nil {
		panic("mem: StartJournal while already journaling")
	}
	m.journal = new(WriteLog)
}

// StopJournal ends recording and returns the accumulated log.
func (m *Memory) StopJournal() *WriteLog {
	l := m.journal
	if l == nil {
		panic("mem: StopJournal without StartJournal")
	}
	m.journal = nil
	return l
}
