package mem

import (
	"testing"
	"testing/quick"

	"suvtm/internal/sim"
)

func smallCache() *Cache {
	// 4 sets x 2 ways.
	return NewCache(CacheConfig{SizeBytes: 4 * 2 * sim.LineBytes, Ways: 2})
}

func TestCacheConfigGeometry(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 32 << 10, Ways: 4}
	if cfg.Sets() != 128 {
		t.Fatalf("Sets = %d, want 128", cfg.Sets())
	}
	if cfg.Lines() != 512 {
		t.Fatalf("Lines = %d, want 512", cfg.Lines())
	}
}

func TestCacheInsertLookup(t *testing.T) {
	c := smallCache()
	if _, hit := c.Lookup(100); hit {
		t.Fatal("hit on empty cache")
	}
	v := c.Insert(100, Shared, false)
	if v.Valid {
		t.Fatal("eviction from empty set")
	}
	if st, hit := c.Lookup(100); !hit || st != Shared {
		t.Fatalf("lookup after insert: %v %v", st, hit)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache()
	// Lines 0, 4, 8 all map to set 0 (4 sets).
	c.Insert(0, Shared, false)
	c.Insert(4, Shared, false)
	c.Lookup(0) // make line 4 the LRU
	v := c.Insert(8, Shared, false)
	if !v.Valid || v.Line != 4 {
		t.Fatalf("victim = %+v, want line 4", v)
	}
	if _, hit := c.Peek(4); hit {
		t.Fatal("evicted line still present")
	}
	if _, hit := c.Peek(0); !hit {
		t.Fatal("MRU line was evicted")
	}
}

func TestCacheAvoidSpecVictim(t *testing.T) {
	c := smallCache()
	c.Insert(0, Modified, false)
	c.MarkSpec(0, true)
	c.Insert(4, Shared, false)
	// Line 0 is LRU but speculative; avoidSpec must evict line 4.
	v := c.Insert(8, Shared, true)
	if !v.Valid || v.Line != 4 || v.Spec {
		t.Fatalf("victim = %+v, want non-spec line 4", v)
	}
}

func TestCacheForcedSpecEviction(t *testing.T) {
	c := smallCache()
	c.Insert(0, Modified, false)
	c.MarkSpec(0, true)
	c.Insert(4, Modified, false)
	c.MarkSpec(4, true)
	v := c.Insert(8, Shared, true)
	if !v.Valid || !v.Spec {
		t.Fatalf("victim = %+v, want a speculative line (overflow)", v)
	}
}

func TestCacheDirtyTracking(t *testing.T) {
	c := smallCache()
	c.Insert(3, Modified, false)
	if c.IsDirty(3) {
		t.Fatal("fresh line dirty")
	}
	c.MarkDirty(3)
	if !c.IsDirty(3) {
		t.Fatal("MarkDirty ineffective")
	}
	c.SetState(3, Shared)
	if c.IsDirty(3) {
		t.Fatal("downgrade kept dirty bit")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Insert(5, Modified, false)
	c.MarkDirty(5)
	dirty, present := c.Invalidate(5)
	if !dirty || !present {
		t.Fatalf("Invalidate = (%v,%v)", dirty, present)
	}
	if _, hit := c.Peek(5); hit {
		t.Fatal("line survived invalidation")
	}
	if d, p := c.Invalidate(5); d || p {
		t.Fatal("double invalidation reported a line")
	}
}

func TestCacheFlashSpecOps(t *testing.T) {
	c := smallCache()
	for _, l := range []sim.Line{0, 1, 2} {
		c.Insert(l, Modified, false)
		c.MarkSpec(l, true)
	}
	c.Insert(3, Shared, false)
	if got := c.CountSpec(); got != 3 {
		t.Fatalf("CountSpec = %d", got)
	}
	if n := c.FlashClearSpec(); n != 3 {
		t.Fatalf("FlashClearSpec = %d", n)
	}
	if c.CountSpec() != 0 {
		t.Fatal("spec bits survived flash clear")
	}

	c.MarkSpec(1, true)
	c.MarkSpec(2, true)
	lines := c.FlashInvalidateSpec()
	if len(lines) != 2 {
		t.Fatalf("FlashInvalidateSpec = %v", lines)
	}
	for _, l := range lines {
		if _, hit := c.Peek(l); hit {
			t.Fatalf("spec line %d survived flash invalidate", l)
		}
	}
	if _, hit := c.Peek(3); !hit {
		t.Fatal("non-spec line was invalidated")
	}
}

func TestCacheInsertOverPresentUpdatesState(t *testing.T) {
	c := smallCache()
	c.Insert(7, Shared, false)
	v := c.Insert(7, Modified, false)
	if v.Valid {
		t.Fatal("re-insert evicted something")
	}
	if st, _ := c.Peek(7); st != Modified {
		t.Fatalf("state = %v, want Modified", st)
	}
	if c.CountValid() != 1 {
		t.Fatalf("CountValid = %d", c.CountValid())
	}
}

// TestCacheNeverExceedsCapacity property-checks that arbitrary insert
// sequences keep every set within its associativity.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(lines []uint16) bool {
		c := smallCache()
		for _, l := range lines {
			c.Insert(sim.Line(l%64), Shared, l%3 == 0)
		}
		return c.CountValid() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count did not panic")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 3 * sim.LineBytes, Ways: 1})
}

func TestSetIndex(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 32 << 10, Ways: 4}) // 128 sets
	if c.SetIndex(0x80) != 0 {
		t.Fatalf("SetIndex(0x80) = %d", c.SetIndex(0x80))
	}
	if c.SetIndex(0x7f) != 127 {
		t.Fatalf("SetIndex(0x7f) = %d", c.SetIndex(0x7f))
	}
}
