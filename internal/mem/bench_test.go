package mem

import (
	"testing"

	"suvtm/internal/sim"
)

// BenchmarkMemoryLine exercises the memory data plane the way the
// simulator's hot path does: a word write, a word read, a full line
// write-back and a line fill, over a working set large enough to defeat
// trivial caching but small enough to stay resident.
func BenchmarkMemoryLine(b *testing.B) {
	m := NewMemory()
	const lines = 1 << 12
	var vals [sim.WordsPerLine]sim.Word
	for i := range vals {
		vals[i] = sim.Word(i)
	}
	for line := sim.Line(0); line < lines; line++ {
		m.WriteLine(line, vals)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink sim.Word
	for i := 0; i < b.N; i++ {
		line := sim.Line(i) & (lines - 1)
		addr := sim.AddrOf(line)
		m.Write(addr, sim.Word(i))
		sink += m.Read(addr)
		m.WriteLine(line, vals)
		got := m.ReadLine(line)
		sink += got[0]
	}
	_ = sink
}

// BenchmarkMemoryCopyLine measures the line-granularity copy SUV issues
// on every first transactional store (the write-miss fill).
func BenchmarkMemoryCopyLine(b *testing.B) {
	m := NewMemory()
	const lines = 1 << 12
	var vals [sim.WordsPerLine]sim.Word
	for i := range vals {
		vals[i] = sim.Word(i * 3)
	}
	for line := sim.Line(0); line < lines; line++ {
		m.WriteLine(line, vals)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := sim.Line(i) & (lines - 1)
		m.CopyLine(src, src^1)
	}
}
