package mem

import (
	"fmt"
	"math/rand"
	"testing"

	"suvtm/internal/sim"
)

// TestBankedCacheMatchesMonolithic is the banking oracle for the shared
// cache: banking only splits the LRU clock and the stats counters per
// bank — every set still belongs to exactly one bank, so relative LRU
// order inside a set, and with it every victim choice, must be
// identical to the single-bank reference under any operation stream.
// The line pool is sized to overflow sets (forcing real evictions) and
// spans several banks of the 8-set geometry.
func TestBankedCacheMatchesMonolithic(t *testing.T) {
	for _, banks := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("banks=%d", banks), func(t *testing.T) {
			cfg := CacheConfig{SizeBytes: 8 * 2 * sim.LineBytes, Ways: 2} // 8 sets, 2 ways
			mono := NewCache(cfg)
			cfgB := cfg
			cfgB.Banks = banks
			banked := NewCache(cfgB)
			if banked.Banks() != banks {
				t.Fatalf("Banks() = %d, want %d", banked.Banks(), banks)
			}

			lines := make([]sim.Line, 0, 48)
			for i := sim.Line(0); i < 48; i++ {
				lines = append(lines, i*5) // 6 distinct tags per set
			}
			states := []LineState{Shared, Modified}
			rng := rand.New(rand.NewSource(int64(banks) * 733))
			for step := 0; step < 20000; step++ {
				line := lines[rng.Intn(len(lines))]
				switch rng.Intn(6) {
				case 0:
					sm, okm := mono.Lookup(line)
					sb, okb := banked.Lookup(line)
					if sm != sb || okm != okb {
						t.Fatalf("step %d: Lookup(%d) = (%v,%v), mono (%v,%v)", step, line, sb, okb, sm, okm)
					}
				case 1:
					st := states[rng.Intn(len(states))]
					avoid := rng.Intn(4) == 0
					vm := mono.Insert(line, st, avoid)
					vb := banked.Insert(line, st, avoid)
					if vm != vb {
						t.Fatalf("step %d: Insert(%d) victim %+v, mono %+v", step, line, vb, vm)
					}
				case 2:
					dm, pm := mono.Invalidate(line)
					db, pb := banked.Invalidate(line)
					if dm != db || pm != pb {
						t.Fatalf("step %d: Invalidate(%d) = (%v,%v), mono (%v,%v)", step, line, db, pb, dm, pm)
					}
				case 3:
					mono.MarkDirty(line)
					banked.MarkDirty(line)
				case 4:
					spec := rng.Intn(2) == 0
					mono.MarkSpec(line, spec)
					banked.MarkSpec(line, spec)
					if mono.IsSpec(line) != banked.IsSpec(line) {
						t.Fatalf("step %d: IsSpec(%d) diverged", step, line)
					}
				case 5:
					st := states[rng.Intn(len(states))]
					mono.SetState(line, st)
					banked.SetState(line, st)
				}
				sm, okm := mono.Peek(line)
				sb, okb := banked.Peek(line)
				if sm != sb || okm != okb {
					t.Fatalf("step %d: Peek(%d) = (%v,%v), mono (%v,%v)", step, line, sb, okb, sm, okm)
				}
				if mono.IsDirty(line) != banked.IsDirty(line) {
					t.Fatalf("step %d: IsDirty(%d) diverged", step, line)
				}
			}
			if got, want := banked.CountValid(), mono.CountValid(); got != want {
				t.Fatalf("CountValid = %d, mono %d", got, want)
			}
			if got, want := banked.Stats(), mono.Stats(); got != want {
				t.Fatalf("Stats = %+v, mono %+v", got, want)
			}
		})
	}
}
