package mem

import "suvtm/internal/sim"

// TLB is a small fully-associative translation buffer. SUV's first-level
// redirect entries do not store full redirected addresses; they store a
// TLB index plus an in-page offset (Figure 3), so the TLB must pin the
// pages of the preserved redirect pool while entries reference them.
//
// The simulator runs with an identity virtual-to-physical mapping, so the
// TLB here exists to model the index space of redirect entries and to
// count translation traffic; it never changes an address.
type TLB struct {
	entries []sim.Addr // page base addresses, LRU-ordered (front = MRU)
	size    int
	hits    uint64
	misses  uint64
}

// NewTLB creates a TLB with the given number of entries.
func NewTLB(size int) *TLB {
	return &TLB{size: size}
}

// IndexOf returns the TLB slot holding the page of addr, inserting it on
// a miss (LRU replacement). The boolean reports whether it was a hit.
func (t *TLB) IndexOf(addr sim.Addr) (int, bool) {
	page := addr &^ (PageBytes - 1)
	for i, p := range t.entries {
		if p == page {
			t.hits++
			// Move to front (MRU).
			copy(t.entries[1:i+1], t.entries[:i])
			t.entries[0] = page
			return 0, true
		}
	}
	t.misses++
	if len(t.entries) < t.size {
		t.entries = append([]sim.Addr{page}, t.entries...)
	} else {
		copy(t.entries[1:], t.entries[:len(t.entries)-1])
		t.entries[0] = page
	}
	return 0, false
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// Size returns the capacity.
func (t *TLB) Size() int { return t.size }
