package mem

import (
	"testing"
	"testing/quick"

	"suvtm/internal/sim"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read(0x100) != 0 {
		t.Fatal("unwritten word not zero")
	}
	m.Write(0x100, 42)
	if m.Read(0x100) != 42 {
		t.Fatal("write lost")
	}
	// Unaligned access maps to the containing word.
	m.Write(0x105, 7)
	if m.Read(0x100) != 7 {
		t.Fatal("unaligned write did not alias the word")
	}
}

func TestMemoryLineOps(t *testing.T) {
	m := NewMemory()
	var vals [sim.WordsPerLine]sim.Word
	for i := range vals {
		vals[i] = sim.Word(i * 11)
	}
	m.WriteLine(4, vals)
	got := m.ReadLine(4)
	if got != vals {
		t.Fatalf("ReadLine = %v, want %v", got, vals)
	}
	m.CopyLine(4, 9)
	if m.ReadLine(9) != vals {
		t.Fatal("CopyLine mismatch")
	}
	if m.Read(sim.AddrOf(9)+16) != 22 {
		t.Fatal("copied word not addressable")
	}
}

// TestMemoryLineRoundTrip property-checks WriteLine/ReadLine identity.
func TestMemoryLineRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(line uint16, vals [sim.WordsPerLine]sim.Word) bool {
		m.WriteLine(sim.Line(line), vals)
		return m.ReadLine(sim.Line(line)) == vals
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorLayout(t *testing.T) {
	a := NewAllocator(0x1000, 1<<20)
	r1 := a.Alloc(100, 64)
	r2 := a.Alloc(100, 64)
	if r1%64 != 0 || r2%64 != 0 {
		t.Fatal("misaligned allocations")
	}
	if r2 < r1+100 {
		t.Fatal("overlapping allocations")
	}
	page := a.AllocPage()
	if page%PageBytes != 0 {
		t.Fatalf("page %#x not page-aligned", page)
	}
	line := a.AllocLines(3)
	if sim.AddrOf(line) < page+PageBytes {
		t.Fatal("line allocation overlaps page")
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	a := NewAllocator(0, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustion did not panic")
		}
	}()
	a.Alloc(256, 64)
}

func TestAllocatorBadAlignPanics(t *testing.T) {
	a := NewAllocator(0, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("bad alignment did not panic")
		}
	}()
	a.Alloc(8, 3)
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(2)
	if _, hit := tlb.IndexOf(0 * PageBytes); hit {
		t.Fatal("hit on empty TLB")
	}
	tlb.IndexOf(1 * PageBytes)
	if _, hit := tlb.IndexOf(0 * PageBytes); !hit {
		t.Fatal("page 0 evicted too early")
	}
	tlb.IndexOf(2 * PageBytes) // evicts page 1 (LRU)
	if _, hit := tlb.IndexOf(1 * PageBytes); hit {
		t.Fatal("LRU page survived")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 4 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBSamePageAliases(t *testing.T) {
	tlb := NewTLB(4)
	tlb.IndexOf(100)
	if _, hit := tlb.IndexOf(PageBytes - 1); !hit {
		t.Fatal("same-page address missed")
	}
}
