package mem

import (
	"testing"
	"testing/quick"

	"suvtm/internal/sim"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read(0x100) != 0 {
		t.Fatal("unwritten word not zero")
	}
	m.Write(0x100, 42)
	if m.Read(0x100) != 42 {
		t.Fatal("write lost")
	}
	// Unaligned access maps to the containing word.
	m.Write(0x105, 7)
	if m.Read(0x100) != 7 {
		t.Fatal("unaligned write did not alias the word")
	}
}

func TestMemoryLineOps(t *testing.T) {
	m := NewMemory()
	var vals [sim.WordsPerLine]sim.Word
	for i := range vals {
		vals[i] = sim.Word(i * 11)
	}
	m.WriteLine(4, vals)
	got := m.ReadLine(4)
	if got != vals {
		t.Fatalf("ReadLine = %v, want %v", got, vals)
	}
	m.CopyLine(4, 9)
	if m.ReadLine(9) != vals {
		t.Fatal("CopyLine mismatch")
	}
	if m.Read(sim.AddrOf(9)+16) != 22 {
		t.Fatal("copied word not addressable")
	}
}

// TestMemoryLineRoundTrip property-checks WriteLine/ReadLine identity.
func TestMemoryLineRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(line uint16, vals [sim.WordsPerLine]sim.Word) bool {
		m.WriteLine(sim.Line(line), vals)
		return m.ReadLine(sim.Line(line)) == vals
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorLayout(t *testing.T) {
	a := NewAllocator(0x1000, 1<<20)
	r1 := a.Alloc(100, 64)
	r2 := a.Alloc(100, 64)
	if r1%64 != 0 || r2%64 != 0 {
		t.Fatal("misaligned allocations")
	}
	if r2 < r1+100 {
		t.Fatal("overlapping allocations")
	}
	page := a.AllocPage()
	if page%PageBytes != 0 {
		t.Fatalf("page %#x not page-aligned", page)
	}
	line := a.AllocLines(3)
	if sim.AddrOf(line) < page+PageBytes {
		t.Fatal("line allocation overlaps page")
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	a := NewAllocator(0, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustion did not panic")
		}
	}()
	a.Alloc(256, 64)
}

func TestAllocatorBadAlignPanics(t *testing.T) {
	a := NewAllocator(0, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("bad alignment did not panic")
		}
	}()
	a.Alloc(8, 3)
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(2)
	if _, hit := tlb.IndexOf(0 * PageBytes); hit {
		t.Fatal("hit on empty TLB")
	}
	tlb.IndexOf(1 * PageBytes)
	if _, hit := tlb.IndexOf(0 * PageBytes); !hit {
		t.Fatal("page 0 evicted too early")
	}
	tlb.IndexOf(2 * PageBytes) // evicts page 1 (LRU)
	if _, hit := tlb.IndexOf(1 * PageBytes); hit {
		t.Fatal("LRU page survived")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 4 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBSamePageAliases(t *testing.T) {
	tlb := NewTLB(4)
	tlb.IndexOf(100)
	if _, hit := tlb.IndexOf(PageBytes - 1); !hit {
		t.Fatal("same-page address missed")
	}
}

// TestMemorySnapshotSparseEquivalence property-checks that the paged
// memory's Snapshot/Footprint match a sparse map oracle under a random
// mix of word writes, line writes and line copies: exactly the words
// ever stored are enumerated — zero-valued writes included, untouched
// page remainders excluded.
func TestMemorySnapshotSparseEquivalence(t *testing.T) {
	m := NewMemory()
	oracle := make(map[sim.Addr]sim.Word)
	rng := sim.NewRNG(7)
	oracleWriteLine := func(line sim.Line, vals [sim.WordsPerLine]sim.Word) {
		base := sim.AddrOf(line)
		for i, v := range vals {
			oracle[base+sim.Addr(i*8)] = v
		}
	}
	for i := 0; i < 5000; i++ {
		// Spread across pages, including the high overflow range.
		addr := sim.Addr(rng.Uint64n(1 << 22))
		if rng.Uint64n(50) == 0 {
			addr += 1 << 40
		}
		switch rng.Uint64n(4) {
		case 0:
			val := sim.Word(rng.Uint64n(3)) // zero values must still count
			m.Write(addr, val)
			oracle[sim.WordAddr(addr)] = val
		case 1:
			var vals [sim.WordsPerLine]sim.Word
			for j := range vals {
				vals[j] = sim.Word(rng.Uint64n(100))
			}
			m.WriteLine(sim.LineOf(addr), vals)
			oracleWriteLine(sim.LineOf(addr), vals)
		case 2:
			src := sim.LineOf(sim.Addr(rng.Uint64n(1 << 22)))
			m.CopyLine(src, sim.LineOf(addr))
			var vals [sim.WordsPerLine]sim.Word
			base := sim.AddrOf(src)
			for j := range vals {
				vals[j] = oracle[base+sim.Addr(j*8)]
			}
			oracleWriteLine(sim.LineOf(addr), vals)
		case 3:
			if m.Read(addr) != oracle[sim.WordAddr(addr)] {
				t.Fatalf("Read(%#x) = %d, oracle %d", addr, m.Read(addr), oracle[sim.WordAddr(addr)])
			}
		}
	}
	if m.Footprint() != len(oracle) {
		t.Fatalf("Footprint = %d, oracle %d", m.Footprint(), len(oracle))
	}
	snap := m.Snapshot()
	if len(snap) != len(oracle) {
		t.Fatalf("Snapshot has %d words, oracle %d", len(snap), len(oracle))
	}
	for addr, val := range oracle {
		if snap[addr] != val {
			t.Fatalf("Snapshot[%#x] = %d, oracle %d", addr, snap[addr], val)
		}
	}
}

// TestMemoryZeroWriteCountsInFootprint pins the sparse-map semantics the
// paged rewrite must preserve: storing zero to a fresh address is a
// written word.
func TestMemoryZeroWriteCountsInFootprint(t *testing.T) {
	m := NewMemory()
	m.Write(0x2000, 0)
	if m.Footprint() != 1 {
		t.Fatalf("Footprint after zero write = %d, want 1", m.Footprint())
	}
	snap := m.Snapshot()
	if v, ok := snap[0x2000]; !ok || v != 0 {
		t.Fatalf("Snapshot missing zero-valued word: %v %v", v, ok)
	}
	if _, ok := snap[0x2008]; ok {
		t.Fatal("Snapshot enumerated an unwritten neighbour word")
	}
}

// TestMemoryHotPathAllocs asserts the steady-state data plane performs
// zero heap allocations once pages exist.
func TestMemoryHotPathAllocs(t *testing.T) {
	m := NewMemory()
	var vals [sim.WordsPerLine]sim.Word
	for i := range vals {
		vals[i] = sim.Word(i)
	}
	m.Write(0x1000, 1)
	m.WriteLine(4, vals)
	m.WriteLine(9, vals)
	if allocs := testing.AllocsPerRun(200, func() {
		m.Write(0x1000, 2)
		_ = m.Read(0x1000)
		m.WriteLine(4, vals)
		_ = m.ReadLine(4)
		m.CopyLine(4, 9)
	}); allocs != 0 {
		t.Fatalf("memory hot path allocates %.1f objects/op, want 0", allocs)
	}
}
