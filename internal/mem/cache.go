package mem

import (
	"fmt"

	"suvtm/internal/metrics"
	"suvtm/internal/sim"
)

// LineState is the local coherence state of a cached line. Exclusive and
// Modified are collapsed into Modified plus a dirty flag; the global view
// (owner, sharers) lives in the coherence directory.
type LineState uint8

const (
	// Invalid means the line is not present.
	Invalid LineState = iota
	// Shared means the line is present read-only, possibly in other caches.
	Shared
	// Modified means this cache owns the line exclusively and may write it.
	Modified
)

// String returns a short name for the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// CacheConfig describes a set-associative cache geometry.
type CacheConfig struct {
	SizeBytes int // total capacity in bytes
	Ways      int // associativity
	// Banks partitions the cache's shared scalar state (LRU clock,
	// stats, touched-set journal) into independent banks keyed by the
	// top bits of the set index; 0 means 1. Within a set, nothing
	// changes — a line's set, ways and victim choices are identical for
	// every bank count, because LRU comparisons are intra-set and each
	// set belongs to exactly one bank whose clock is strictly increasing
	// along that set's access sequence. Banking only decides which
	// scalars an access touches, which is what lets the parallel window
	// engine run bank-disjoint fills concurrently. The machine derives
	// the L2's bank count from htm.Config.Banks; L1s stay single-banked.
	Banks int
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (sim.LineBytes * c.Ways)
}

// normalized resolves the Banks default (0 -> 1) so configs that differ
// only in the spelling of "unbanked" compare equal in Reset.
func (c CacheConfig) normalized() CacheConfig {
	if c.Banks == 0 {
		c.Banks = 1
	}
	return c
}

// Lines returns the total number of lines the cache can hold.
func (c CacheConfig) Lines() int { return c.SizeBytes / sim.LineBytes }

type cacheWay struct {
	line  sim.Line
	state LineState
	dirty bool
	spec  bool // holds speculative (transactional) data — FasTM / DynTM lazy
	lru   uint64
}

// CacheStats counts cache activity for the observability layer. The
// counters are plain adds with no timing effect; Lookup counts demand
// lookups (Peek, used by invariant checks, does not count).
type CacheStats struct {
	Lookups   metrics.Counter // Lookup calls
	Hits      metrics.Counter // Lookup calls that found the line
	Inserts   metrics.Counter // lines filled
	Evictions metrics.Counter // valid victims displaced by fills
}

// cacheBank is one bank's private scalar state: everything an access
// mutates beyond its own set. Banks never share a mutable word, so
// accesses to different banks commute — and may run concurrently inside
// a certified parallel window.
type cacheBank struct {
	lruClock    uint64
	stats       CacheStats
	touchedSets []sim.Line
}

// Cache is a set-associative, write-back cache with true LRU replacement.
// It tracks tags and per-line flags only; data values live in Memory.
type Cache struct {
	cfg  CacheConfig // normalized (Banks >= 1)
	sets [][]cacheWay
	// tagSets mirrors each way's line number in a dense parallel array so
	// the hot membership scan touches one cache line instead of the full
	// way structs. Tags of Invalid ways are stale (never cleared); find
	// confirms validity on a tag match before trusting it.
	tagSets [][]sim.Line
	setMask sim.Line

	// Banked scalar state: bank b covers sets [b<<bankShift,
	// (b+1)<<bankShift) — the bank bits are the TOP bits of the set
	// index, matching the directory's bank.Map, so "same bank" means the
	// same thing for both structures.
	banks     []cacheBank
	bankShift uint

	// setTouched tracks which sets have been filled since construction
	// (or the last Reset) so Reset invalidates only the footprint a run
	// actually used — the 8 MB L2 has 16384 sets, and small workloads
	// touch a fraction of them. Indexed per set (disjoint across banks);
	// the companion journal of touched set indices lives in each bank.
	setTouched []bool
}

// NewCache builds a cache with the given geometry. The number of sets
// must be a power of two, and the bank count a power of two not
// exceeding it.
func NewCache(cfg CacheConfig) *Cache {
	cfg = cfg.normalized()
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache set count %d is not a positive power of two", sets))
	}
	if cfg.Banks&(cfg.Banks-1) != 0 || cfg.Banks > sets {
		panic(fmt.Sprintf("mem: cache bank count %d is not a power of two <= %d sets", cfg.Banks, sets))
	}
	c := &Cache{cfg: cfg, setMask: sim.Line(sets - 1)}
	c.sets = make([][]cacheWay, sets)
	c.tagSets = make([][]sim.Line, sets)
	// One flat backing array for every way keeps construction at a few
	// allocations regardless of geometry (the 8 MB L2 has 16384 sets).
	backing := make([]cacheWay, sets*cfg.Ways)
	tagBacking := make([]sim.Line, sets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		c.tagSets[i] = tagBacking[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	c.setTouched = make([]bool, sets)
	c.banks = make([]cacheBank, cfg.Banks)
	setsPerBank := sets / cfg.Banks
	for b := range c.banks {
		c.banks[b].touchedSets = make([]sim.Line, 0, setsPerBank)
	}
	for 1<<c.bankShift < setsPerBank {
		c.bankShift++
	}
	return c
}

// bankOf returns the bank owning line's set.
//
//suv:hotpath
func (c *Cache) bankOf(line sim.Line) *cacheBank {
	return &c.banks[(line&c.setMask)>>c.bankShift]
}

// Banks returns the bank count.
func (c *Cache) Banks() int { return len(c.banks) }

// BankOf returns the bank index of line's set — the window engine's
// claim key, identical to the directory's for the machine-chosen
// geometry.
//
//suv:hotpath
func (c *Cache) BankOf(line sim.Line) int { return int((line & c.setMask) >> c.bankShift) }

// Stats returns the activity counters summed over banks in bank-ID
// order (the canonical merge order).
func (c *Cache) Stats() CacheStats {
	var s CacheStats
	for b := range c.banks {
		bs := &c.banks[b].stats
		s.Lookups.Add(bs.Lookups.Value())
		s.Hits.Add(bs.Hits.Value())
		s.Inserts.Add(bs.Inserts.Value())
		s.Evictions.Add(bs.Evictions.Value())
	}
	return s
}

// Reset returns the cache to its post-construction state while keeping
// the way arrays (an arena-reuse path: the 8 MB L2's backing array is
// the single largest per-run allocation). Every valid way is
// invalidated and the stats are zeroed; stale tags and LRU stamps stay
// in place — find ignores Invalid ways, and victim selection only
// compares stamps among ways filled after the reset, so a reset cache
// is behaviorally identical to a fresh one. A geometry change rebuilds.
func (c *Cache) Reset(cfg CacheConfig) {
	if cfg.normalized() != c.cfg {
		*c = *NewCache(cfg)
		return
	}
	for b := range c.banks {
		bk := &c.banks[b]
		for _, si := range bk.touchedSets {
			set := c.sets[si]
			for i := range set {
				set[i].state = Invalid
				set[i].dirty = false
				set[i].spec = false
			}
			c.setTouched[si] = false
		}
		bk.touchedSets = bk.touchedSets[:0]
		bk.stats = CacheStats{}
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// SetIndex returns the set index for line (used by the SUV redirect-entry
// geometry, which stores L1 set-index bits — Figure 3).
func (c *Cache) SetIndex(line sim.Line) int { return int(line & c.setMask) }

// find locates line's way, moving a hit to way 0 so the repeat lookups
// that dominate the access pattern (peek + demand + dirty-mark on the
// same line) match on the first tag probe. The swap changes only the
// physical way a line occupies, which nothing observes: ways within a
// set are interchangeable, every scan (reuse, free-way, victim) covers
// the whole set, and victim selection compares the lru stamps — unique,
// and carried along in the swap — never positions.
//
//suv:hotpath
func (c *Cache) find(line sim.Line) *cacheWay {
	si := line & c.setMask
	tags := c.tagSets[si]
	set := c.sets[si]
	for i := range tags {
		if tags[i] == line && set[i].state != Invalid {
			if i != 0 {
				tags[0], tags[i] = tags[i], tags[0]
				set[0], set[i] = set[i], set[0]
				return &set[0]
			}
			return &set[i]
		}
	}
	return nil
}

// Lookup reports whether line is present and in what state. A hit
// refreshes the line's LRU position.
//
//suv:hotpath
func (c *Cache) Lookup(line sim.Line) (LineState, bool) {
	bk := c.bankOf(line)
	bk.stats.Lookups.Inc()
	w := c.find(line)
	if w == nil {
		return Invalid, false
	}
	bk.stats.Hits.Inc()
	bk.lruClock++
	w.lru = bk.lruClock
	return w.state, true
}

// Peek is Lookup without the LRU side effect.
//
//suv:hotpath
func (c *Cache) Peek(line sim.Line) (LineState, bool) {
	w := c.find(line)
	if w == nil {
		return Invalid, false
	}
	return w.state, true
}

// IsSpec reports whether line is present and holds speculative data.
func (c *Cache) IsSpec(line sim.Line) bool {
	w := c.find(line)
	return w != nil && w.spec
}

// IsDirty reports whether line is present and dirty.
func (c *Cache) IsDirty(line sim.Line) bool {
	w := c.find(line)
	return w != nil && w.dirty
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Line  sim.Line
	Dirty bool
	Spec  bool
	Valid bool // false when Insert found a free way
}

// Insert fills line with the given state, evicting the LRU way if the set
// is full and returning the victim. When avoidSpec is true, non-speculative
// ways are preferred as victims (FasTM tries to pin speculative data in the
// L1); if only speculative ways remain the LRU speculative way is evicted,
// which the caller must treat as a transactional overflow.
//
//suv:hotpath
func (c *Cache) Insert(line sim.Line, state LineState, avoidSpec bool) Victim {
	if state == Invalid {
		panic("mem: Insert with Invalid state")
	}
	si := line & c.setMask
	set := c.sets[si]
	tags := c.tagSets[si]
	bk := &c.banks[si>>c.bankShift]
	if !c.setTouched[si] {
		c.setTouched[si] = true
		bk.touchedSets = append(bk.touchedSets, si)
	}
	bk.lruClock++
	// Re-use the existing way on an insert-over-present (state change).
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			set[i].state = state
			set[i].lru = bk.lruClock
			return Victim{}
		}
	}
	bk.stats.Inserts.Inc()
	// Free way?
	for i := range set {
		if set[i].state == Invalid {
			set[i] = cacheWay{line: line, state: state, lru: bk.lruClock}
			tags[i] = line
			return Victim{}
		}
	}
	// Choose an LRU victim, preferring non-speculative ways if asked.
	victim := -1
	for i := range set {
		if avoidSpec && set[i].spec {
			continue
		}
		if victim < 0 || set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if victim < 0 { // every way speculative: forced speculative eviction
		for i := range set {
			if victim < 0 || set[i].lru < set[victim].lru {
				victim = i
			}
		}
	}
	bk.stats.Evictions.Inc()
	v := Victim{Line: set[victim].line, Dirty: set[victim].dirty, Spec: set[victim].spec, Valid: true}
	set[victim] = cacheWay{line: line, state: state, lru: bk.lruClock}
	tags[victim] = line
	return v
}

// ForEachWayOf visits every valid way in line's set — the eviction
// candidates an Insert of line could displace. The parallel window
// engine's scan uses it to claim the banks a certified fill might touch
// (every candidate's directory entry and write-back L2 set) before any
// chain runs.
func (c *Cache) ForEachWayOf(line sim.Line, fn func(way sim.Line, state LineState, dirty, spec bool)) {
	set := c.sets[line&c.setMask]
	for i := range set {
		if set[i].state != Invalid {
			fn(set[i].line, set[i].state, set[i].dirty, set[i].spec)
		}
	}
}

// SetState changes the state of a present line; it is a no-op when the
// line is absent. Downgrading to Shared clears the dirty flag (the caller
// is responsible for the write-back).
func (c *Cache) SetState(line sim.Line, state LineState) {
	if w := c.find(line); w != nil {
		w.state = state
		if state != Modified {
			w.dirty = false
		}
	}
}

// MarkDirty flags a present line as dirty.
func (c *Cache) MarkDirty(line sim.Line) {
	if w := c.find(line); w != nil {
		w.dirty = true
	}
}

// ClearDirty removes the dirty flag from a present line (after write-back).
func (c *Cache) ClearDirty(line sim.Line) {
	if w := c.find(line); w != nil {
		w.dirty = false
	}
}

// MarkSpec flags a present line as holding speculative data.
func (c *Cache) MarkSpec(line sim.Line, spec bool) {
	if w := c.find(line); w != nil {
		w.spec = spec
	}
}

// Invalidate removes line and reports whether it was present and dirty.
func (c *Cache) Invalidate(line sim.Line) (wasDirty bool, wasPresent bool) {
	if w := c.find(line); w != nil {
		wasDirty = w.dirty
		w.state = Invalid
		w.dirty = false
		w.spec = false
		return wasDirty, true
	}
	return false, false
}

// FlashClearSpec clears the speculative flag on every line (FasTM commit:
// speculative data becomes the committed version in a single cycle).
// It returns the number of lines cleared.
func (c *Cache) FlashClearSpec() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].spec {
				c.sets[s][i].spec = false
				n++
			}
		}
	}
	return n
}

// FlashInvalidateSpec invalidates every speculative line (FasTM abort:
// the pre-transaction version is refetched from the L2 on demand). It
// returns the invalidated lines so the caller can restore their values.
func (c *Cache) FlashInvalidateSpec() []sim.Line {
	var out []sim.Line
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].spec {
				out = append(out, c.sets[s][i].line)
				c.sets[s][i] = cacheWay{}
			}
		}
	}
	return out
}

// CountSpec returns the number of speculative lines currently held.
func (c *Cache) CountSpec() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].spec {
				n++
			}
		}
	}
	return n
}

// ForEach visits every valid line (coherence auditing, tests).
func (c *Cache) ForEach(fn func(line sim.Line, state LineState, dirty, spec bool)) {
	for s := range c.sets {
		for i := range c.sets[s] {
			w := &c.sets[s][i]
			if w.state != Invalid {
				fn(w.line, w.state, w.dirty, w.spec)
			}
		}
	}
}

// CountValid returns the number of valid lines (tests).
func (c *Cache) CountValid() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].state != Invalid {
				n++
			}
		}
	}
	return n
}
