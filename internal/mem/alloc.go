package mem

import (
	"fmt"

	"suvtm/internal/sim"
)

// PageBytes is the allocation granularity of the simulated OS and of the
// SUV preserved redirect pool (Figure 3 uses a 7-bit in-page line offset:
// 128 lines x 64 bytes = 8 KiB pages).
const PageBytes = 128 * sim.LineBytes

// Allocator is a bump allocator over the simulated physical address
// space. It lays out workload heaps, per-thread private regions (stacks,
// undo logs) and the SUV preserved pool in disjoint regions.
type Allocator struct {
	next sim.Addr
	top  sim.Addr
}

// NewAllocator creates an allocator over [base, base+size).
func NewAllocator(base sim.Addr, size uint64) *Allocator {
	return &Allocator{next: base, top: base + size}
}

// Reset rewinds the allocator to a fresh [base, base+size) region,
// making it equivalent to NewAllocator(base, size). Regions handed out
// before the reset must no longer be used.
func (a *Allocator) Reset(base sim.Addr, size uint64) {
	a.next, a.top = base, base+size
}

// Alloc returns the base address of a fresh region of size bytes aligned
// to align (a power of two). It panics when the address space is
// exhausted, which indicates a mis-sized workload, not a runtime error.
func (a *Allocator) Alloc(size uint64, align uint64) sim.Addr {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: bad alignment %d", align))
	}
	base := (a.next + align - 1) &^ (align - 1)
	if base+size > a.top {
		panic(fmt.Sprintf("mem: out of simulated memory (want %d bytes at %#x, top %#x)", size, base, a.top))
	}
	a.next = base + size
	return base
}

// AllocLines allocates n cache lines and returns the first line number.
func (a *Allocator) AllocLines(n int) sim.Line {
	base := a.Alloc(uint64(n)*sim.LineBytes, sim.LineBytes)
	return sim.LineOf(base)
}

// AllocPage allocates one page and returns its base address.
func (a *Allocator) AllocPage() sim.Addr {
	return a.Alloc(PageBytes, PageBytes)
}

// Used returns the number of bytes handed out so far.
func (a *Allocator) Used(base sim.Addr) uint64 { return uint64(a.next - base) }

// Next returns the next free address (tests).
func (a *Allocator) Next() sim.Addr { return a.next }
