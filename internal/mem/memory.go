// Package mem models the storage side of the simulated CMP: the flat
// value-accurate physical memory, the set-associative write-back caches
// (32KB 4-way L1 per core, 8MB 8-way shared L2 — Table III), a small TLB
// model and the bump allocator that lays out workload heaps and the SUV
// preserved redirect pool.
//
// Values are tracked exactly so that the version-management schemes can
// be tested for atomicity: a committed transaction's writes must all be
// visible, and an aborted transaction must leave memory bit-identical to
// its pre-transaction state.
package mem

import "suvtm/internal/sim"

// Memory is the flat, value-accurate physical memory. It stores 8-byte
// words sparsely; unwritten locations read as zero.
type Memory struct {
	words map[sim.Addr]sim.Word
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{words: make(map[sim.Addr]sim.Word)}
}

// Read returns the word at addr (aligned down to 8 bytes).
func (m *Memory) Read(addr sim.Addr) sim.Word {
	return m.words[sim.WordAddr(addr)]
}

// Write stores val at addr (aligned down to 8 bytes).
func (m *Memory) Write(addr sim.Addr, val sim.Word) {
	m.words[sim.WordAddr(addr)] = val
}

// ReadLine returns the eight words of line.
func (m *Memory) ReadLine(line sim.Line) [sim.WordsPerLine]sim.Word {
	var out [sim.WordsPerLine]sim.Word
	base := sim.AddrOf(line)
	for i := range out {
		out[i] = m.words[base+sim.Addr(i*8)]
	}
	return out
}

// WriteLine stores the eight words of line.
func (m *Memory) WriteLine(line sim.Line, vals [sim.WordsPerLine]sim.Word) {
	base := sim.AddrOf(line)
	for i, v := range vals {
		m.words[base+sim.Addr(i*8)] = v
	}
}

// CopyLine copies the contents of line src to line dst. Under SUV this
// models the cache fill that deposits the original line's content at the
// redirected location on the first transactional store (it is the normal
// write-miss fill, not an extra data movement).
func (m *Memory) CopyLine(src, dst sim.Line) {
	m.WriteLine(dst, m.ReadLine(src))
}

// Footprint returns the number of distinct words ever written, used by
// tests and capacity diagnostics.
func (m *Memory) Footprint() int { return len(m.words) }

// Snapshot returns a copy of the full memory image (tests only; the
// simulator itself never copies memory wholesale).
func (m *Memory) Snapshot() map[sim.Addr]sim.Word {
	out := make(map[sim.Addr]sim.Word, len(m.words))
	for k, v := range m.words {
		out[k] = v
	}
	return out
}
