// Package mem models the storage side of the simulated CMP: the flat
// value-accurate physical memory, the set-associative write-back caches
// (32KB 4-way L1 per core, 8MB 8-way shared L2 — Table III), a small TLB
// model and the bump allocator that lays out workload heaps and the SUV
// preserved redirect pool.
//
// Values are tracked exactly so that the version-management schemes can
// be tested for atomicity: a committed transaction's writes must all be
// visible, and an aborted transaction must leave memory bit-identical to
// its pre-transaction state.
package mem

import (
	"math/bits"
	"slices"

	"suvtm/internal/sim"
)

// Paged-memory geometry: the host-side backing store is a two-level
// structure of fixed-size pages of 8-byte words, so every simulated
// access is an indexed load/store instead of a map probe. The host page
// size (32 KiB of data) is unrelated to the simulated OS PageBytes.
const (
	memPageWordShift = 12 // 4096 words = 32 KiB of data per host page
	memPageWords     = 1 << memPageWordShift
	memPageWordMask  = memPageWords - 1

	// memDirectPages bounds the directly-indexed page table: word
	// addresses below memDirectPages*memPageWords*8 (32 GiB) — every
	// address the bump allocator can hand out in practice — resolve
	// through a flat slice; pathological addresses beyond it fall back
	// to a map so a stray huge address cannot balloon the table.
	memDirectPages = 1 << 20
)

// memPage is one fixed-size page of backing words plus a written bitmap.
// The bitmap preserves the sparse-memory semantics of the original
// map-backed implementation: Footprint and Snapshot see exactly the
// words ever stored (even if the stored value was zero), not whole
// zero-filled pages.
type memPage struct {
	words   [memPageWords]sim.Word
	written [memPageWords / 64]uint64
}

// Memory is the flat, value-accurate physical memory. Pages are
// zero-filled on demand; unwritten locations read as zero. The data
// plane (Read/Write/ReadLine/WriteLine/CopyLine) is O(1) indexed and
// allocation-free once a page exists.
type Memory struct {
	pages    []*memPage          // page table, indexed by wordIndex >> memPageWordShift
	far      map[uint64]*memPage // overflow for page indices >= memDirectPages
	written  int                 // distinct words ever written
	journal  *WriteLog           // non-nil while StartJournal is recording
	zeroLine [sim.WordsPerLine]sim.Word
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{}
}

// peek returns the page holding word index w, or nil if none exists yet.
//
//suv:hotpath
func (m *Memory) peek(w uint64) *memPage {
	pi := w >> memPageWordShift
	if pi < uint64(len(m.pages)) {
		return m.pages[pi]
	}
	if pi >= memDirectPages {
		return m.far[pi]
	}
	return nil
}

// page returns the page holding word index w, materializing it (and
// growing the page table) on first touch.
func (m *Memory) page(w uint64) *memPage {
	pi := w >> memPageWordShift
	if pi >= memDirectPages {
		if m.far == nil {
			m.far = make(map[uint64]*memPage)
		}
		p := m.far[pi]
		if p == nil {
			p = new(memPage)
			m.far[pi] = p
		}
		return p
	}
	if pi >= uint64(len(m.pages)) {
		grown := make([]*memPage, max(pi+1, uint64(2*len(m.pages))))
		copy(grown, m.pages)
		m.pages = grown
	}
	p := m.pages[pi]
	if p == nil {
		p = new(memPage)
		m.pages[pi] = p
	}
	return p
}

// markWritten sets the written bit for in-page word offset off and keeps
// the footprint counter exact.
func (p *memPage) markWritten(off uint64, written *int) {
	idx, bit := off>>6, uint64(1)<<(off&63)
	if p.written[idx]&bit == 0 {
		p.written[idx] |= bit
		*written++
	}
}

// Read returns the word at addr (aligned down to 8 bytes).
//
//suv:hotpath
func (m *Memory) Read(addr sim.Addr) sim.Word {
	w := addr >> 3
	if p := m.peek(w); p != nil {
		return p.words[w&memPageWordMask]
	}
	return 0
}

// Written reports whether the word at addr has ever been stored to.
// For such a word, a subsequent Write is a pure in-place overwrite: no
// page materialization, no footprint-bitmap mutation — which is what
// lets the parallel window engine issue concurrent Writes to disjoint
// already-written words without synchronization.
//
//suv:hotpath
func (m *Memory) Written(addr sim.Addr) bool {
	w := addr >> 3
	p := m.peek(w)
	if p == nil {
		return false
	}
	off := w & memPageWordMask
	return p.written[off>>6]&(1<<(off&63)) != 0
}

// Write stores val at addr (aligned down to 8 bytes).
//
//suv:hotpath
func (m *Memory) Write(addr sim.Addr, val sim.Word) {
	if m.journal != nil {
		m.journal.word(addr, val)
	}
	w := addr >> 3
	p := m.page(w)
	off := w & memPageWordMask
	p.markWritten(off, &m.written)
	p.words[off] = val
}

// ReadLine returns the eight words of line. A cache line never straddles
// a host page (both are power-of-two sized and line-aligned), so this is
// a single indexed copy.
//
//suv:hotpath
func (m *Memory) ReadLine(line sim.Line) [sim.WordsPerLine]sim.Word {
	w := line << (sim.LineShift - 3)
	if p := m.peek(w); p != nil {
		off := w & memPageWordMask
		return [sim.WordsPerLine]sim.Word(p.words[off : off+sim.WordsPerLine])
	}
	return m.zeroLine
}

// WriteLine stores the eight words of line.
//
//suv:hotpath
func (m *Memory) WriteLine(line sim.Line, vals [sim.WordsPerLine]sim.Word) {
	if m.journal != nil {
		m.journal.line(line, vals)
	}
	w := line << (sim.LineShift - 3)
	p := m.page(w)
	off := w & memPageWordMask
	copy(p.words[off:off+sim.WordsPerLine], vals[:])
	m.markLineWritten(p, off)
}

// markLineWritten marks the eight line words at in-page offset off as
// written. The offset is 8-word aligned, so the line's bits occupy one
// byte of a single bitmap word.
//
//suv:hotpath
func (m *Memory) markLineWritten(p *memPage, off uint64) {
	idx, mask := off>>6, uint64(0xFF)<<(off&63)
	if fresh := mask &^ p.written[idx]; fresh != 0 {
		p.written[idx] |= fresh
		m.written += bits.OnesCount64(fresh)
	}
}

// CopyLine copies the contents of line src to line dst. Under SUV this
// models the cache fill that deposits the original line's content at the
// redirected location on the first transactional store (it is the normal
// write-miss fill, not an extra data movement).
//
//suv:hotpath
func (m *Memory) CopyLine(src, dst sim.Line) {
	sw := src << (sim.LineShift - 3)
	sp := m.peek(sw)
	dw := dst << (sim.LineShift - 3)
	dp := m.page(dw)
	doff := dw & memPageWordMask
	if sp == nil {
		for i := range sim.WordsPerLine {
			dp.words[doff+uint64(i)] = 0
		}
	} else {
		soff := sw & memPageWordMask
		copy(dp.words[doff:doff+sim.WordsPerLine], sp.words[soff:soff+sim.WordsPerLine])
	}
	m.markLineWritten(dp, doff)
	if m.journal != nil {
		// Journal the copy as a value line-write: replay does not depend
		// on the source line still holding the same contents.
		m.journal.line(dst, [sim.WordsPerLine]sim.Word(dp.words[doff:doff+sim.WordsPerLine]))
	}
}

// Reset returns the memory to the empty image while keeping the backing
// pages allocated, so a Memory reused across simulations serves the next
// run's writes without growing the host heap. A reset memory is
// indistinguishable from a fresh NewMemory(): every address reads zero
// and the footprint is empty (zero-filled retained pages behave exactly
// like absent ones).
func (m *Memory) Reset() {
	for _, p := range m.pages {
		if p != nil {
			*p = memPage{}
		}
	}
	m.far = nil
	m.written = 0
	m.journal = nil
}

// Footprint returns the number of distinct words ever written, used by
// tests and capacity diagnostics.
func (m *Memory) Footprint() int { return m.written }

// Snapshot returns a copy of the written memory image — exactly the
// words ever stored, not whole zero-filled pages (tests only; the
// simulator itself never copies memory wholesale).
func (m *Memory) Snapshot() map[sim.Addr]sim.Word {
	out := make(map[sim.Addr]sim.Word, m.written)
	m.ForEachWritten(func(addr sim.Addr, val sim.Word) {
		out[addr] = val
	})
	return out
}

// ForEachWritten visits every written word in ascending address order:
// direct pages first, then overflow pages in ascending page order, so
// the visit sequence (and anything derived from it — digests, golden
// memory-image comparisons) is identical on every run.
func (m *Memory) ForEachWritten(fn func(addr sim.Addr, val sim.Word)) {
	emit := func(pi uint64, p *memPage) {
		base := pi << memPageWordShift
		for idx, bm := range p.written {
			for bm != 0 {
				b := uint64(bits.TrailingZeros64(bm))
				bm &= bm - 1
				w := base + uint64(idx)<<6 + b
				fn(sim.Addr(w<<3), p.words[w&memPageWordMask])
			}
		}
	}
	for pi, p := range m.pages {
		if p != nil {
			emit(uint64(pi), p)
		}
	}
	if len(m.far) > 0 {
		farIdx := make([]uint64, 0, len(m.far))
		//suv:orderinsensitive indices are collected then sorted before any page is visited
		for pi := range m.far {
			farIdx = append(farIdx, pi)
		}
		slices.Sort(farIdx)
		for _, pi := range farIdx {
			emit(pi, m.far[pi])
		}
	}
}
