package workload

import "suvtm/internal/mem"

func init() { Register("list", GenList) }

// GenList models the classic transactional ordered linked list: each
// transaction traverses the list from the head (a long chain of
// transactional reads whose length grows with the key's position) and
// updates one node. Unlike the write-heavy STAMP analogues, its read
// sets dominate its write sets, so most conflicts are read-write on the
// hot head of the list — the canonical "long reader vs short writer"
// shape that eager conflict detection serializes.
func GenList(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		nodes       = 256 // one node per line: key + payload
		txPerThread = 120
	)
	list := NewRegion(alloc, nodes)
	txs := cfg.scaled(txPerThread)
	programs := make([]Program, cfg.Cores)
	var adds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*43 + 907)
		b := NewBuilder()
		for t := 0; t < txs; t++ {
			b.Compute(30)
			// Position determines traversal length: node k requires
			// reading nodes 0..k (the sorted-list walk).
			pos := rng.Intn(nodes)
			b.Begin(0)
			step := 1 + pos/24 // sample the walk, bounded read set
			for k := 0; k <= pos; k += step {
				b.Load(1, list.WordAddr(k, 0)) // read the node's key/next
				b.Compute(4)
			}
			rmwAdd(b, list.WordAddr(pos, 1), 1) // update the payload
			b.Commit()
			adds++
			b.Compute(40)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	return &App{
		Name:           "list",
		HighContention: true,
		InputDesc:      "-n256 ordered-list traversals",
		MeanTxLen:      90,
		Programs:       programs,
		Check:          checkRegionSum("list", list, 8, adds),
	}
}
