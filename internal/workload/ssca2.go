package workload

import "suvtm/internal/mem"

func init() { Register("ssca2", GenSSCA2) }

// GenSSCA2 models STAMP ssca2 (-s13 -i1.0 -u1.0 -l3 -p3): scalable graph
// kernel 1, constructing a large directed multigraph. Transactions are
// the smallest in STAMP (Table IV: ~21 instructions) — a couple of
// adjacency-array appends at uniformly random nodes of a big graph — so
// conflicts are rare and the workload is low-contention.
func GenSSCA2(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		graphLines  = 8192 // 2^13 nodes, one adjacency header line each
		txPerThread = 300
	)
	graph := NewRegion(alloc, graphLines)

	txs := cfg.scaled(txPerThread)
	programs := make([]Program, cfg.Cores)
	var adds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*31 + 601)
		b := NewBuilder()
		for t := 0; t < txs; t++ {
			b.Compute(12) // generate the edge (non-transactional)
			b.Begin(0)
			for k := 0; k < 3; k++ {
				idx := rng.Intn(graphLines)
				rmwAdd(b, graph.WordAddr(idx, (idx+k)%8), 1)
			}
			b.Commit()
			adds += 3
			b.Compute(8)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	return &App{
		Name:      "ssca2",
		InputDesc: "-s13 -i1.0 -u1.0 -l3 -p3",
		MeanTxLen: 21,
		Programs:  programs,
		Check:     checkRegionSum("ssca2", graph, 8, adds),
	}
}
