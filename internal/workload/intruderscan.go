package workload

import (
	"fmt"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

func init() { Register("intruderscan", GenIntruderScan) }

// GenIntruderScan is the phase-alternating variant of intruder built for
// the parallel window engine's conflict benchmark: rounds of a long
// non-transactional scan over a private, L1-overflowing buffer — the
// phase the cross-core certified-miss tier should parallelize — fenced
// by barriers from short intruder-style bursts on the shared work queue
// and detector dictionary, the conflict-heavy phase that must fall back
// to the sequential engine.
//
// The layout is bank-aware: the directory/L2 bank stripe repeats every
// L2-way-size bytes (1 MB on the default machine), so every capture
// buffer is 64 KB (twice the L1, so each sweep round misses throughout)
// aligned to 128 KB — an even 64 KB stripe — while the shared detector
// structures are hash-distributed across the odd stripes, the way a
// real intruder dictionary scatters its buckets across the heap. At
// the default 16 banks the odd stripes are disjoint from every buffer
// stripe, so a sweep's fills and upgrades never contest a detector
// bank, and the residual evictions of detector lines left in the L1s
// by the transactional bursts spread over eight banks instead of
// serializing the window engine on one.
func GenIntruderScan(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		scanLines = 1024      // 64 KB per core: twice the 32 KB L1, every scan round misses
		stripe    = 64 << 10  // one bank stripe: 1 MB L2 way-size / 16 banks
		bankAlign = 128 << 10 // buffers sit on even stripes; detector chunks on odd ones
		dictLines = 256
		dictChunk = 32 // dictLines/dictChunk chunks, one per odd stripe
		rounds    = 4
		txPerRnd  = 10
	)
	// oddStripe positions the allocator inside the next odd stripe; the
	// skipped padding is dead address space (the simulated memory is
	// sparse, so it costs nothing).
	oddStripe := func() {
		if base := alloc.Alloc(sim.LineBytes, stripe); (uint64(base)/stripe)%2 == 0 {
			alloc.Alloc(sim.LineBytes, stripe)
		}
	}
	var dictChunks [dictLines / dictChunk]Region
	for k := range dictChunks {
		oddStripe()
		dictChunks[k] = NewRegion(alloc, dictChunk)
	}
	// The queue is the hottest shared line of all — every transaction
	// pops it — so it rides on the LAST chunk's stripe: buckets are laid
	// out in index order and the Zipf sampler skews toward low indices,
	// making that the coldest detector bank.
	queue := NewRegion(alloc, 1)
	// dictWord addresses word idx%8 of bucket idx through the chunked
	// layout.
	dictWord := func(idx int) sim.Addr {
		return dictChunks[idx/dictChunk].WordAddr(idx%dictChunk, idx%8)
	}
	zipfD := NewZipf(dictLines, 0.6)

	bufs := make([]Region, cfg.Cores)
	for c := range bufs {
		base := alloc.Alloc(scanLines*sim.LineBytes, bankAlign)
		bufs[c] = Region{Base: base, Lines: scanLines}
		// Materialize every scanned word at generation time: certified
		// stores require already-written targets, and a real capture
		// buffer is mapped before the detector loop starts.
		for i := 0; i < scanLines; i++ {
			m.Write(bufs[c].WordAddr(i, 0), 0)
		}
	}

	rnds := cfg.scaled(rounds)
	programs := make([]Program, cfg.Cores)
	var deqs, dictAdds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*23 + 509)
		b := NewBuilder()
		b.Reserve(rnds*(2+scanLines*10+txPerRnd*9) + 1)
		for r := 0; r < rnds; r++ {
			// Scan phase: every core sweeps its private capture buffer,
			// checksumming and stamping each fragment in place. The
			// barrier guarantees no transaction is live anywhere during
			// the sweep, so the engine's machine-wide noTx gate holds.
			b.Barrier(uint32(2 * r))
			for i := 0; i < scanLines; i++ {
				// One fragment: fetch the header (the L1 miss), read the
				// payload words out of the now-resident line, fold them
				// through the checksum registers, stamp the header and
				// write it back in place (Shared→Modified upgrade).
				b.Load(1, bufs[c].WordAddr(i, 0))
				b.Load(3, bufs[c].WordAddr(i, 2))
				b.Load(4, bufs[c].WordAddr(i, 4))
				b.Load(5, bufs[c].WordAddr(i, 6))
				b.AddReg(2, 1)
				b.AddReg(2, 3)
				b.AddReg(2, 4)
				b.AddReg(2, 5)
				b.AddImm(1, 1)
				b.Store(bufs[c].WordAddr(i, 0), 1)
			}
			// Conflict phase: intruder-shaped bursts — pop the shared
			// queue (one hot word) and fold the fragment into the
			// Zipf-skewed dictionary.
			b.Barrier(uint32(2*r + 1))
			for t := 0; t < txPerRnd; t++ {
				b.Begin(0)
				rmwAdd(b, queue.WordAddr(0, 0), 1)
				idx := zipfD.Sample(rng)
				rmwAdd(b, dictWord(idx), 1)
				b.Commit()
				deqs++
				dictAdds++
				b.Compute(20)
			}
		}
		b.Barrier(uint32(2 * rnds))
		programs[c] = b.Build()
	}
	scanAdds := int64(cfg.Cores) * int64(rnds) * scanLines
	return &App{
		Name:           "intruderscan",
		HighContention: true,
		InputDesc:      fmt.Sprintf("-b%d -r%d -t%d", scanLines, rnds, txPerRnd),
		MeanTxLen:      9,
		Programs:       programs,
		Check: combineChecks(
			checkRegionSum("intruderscan/queue", queue, 1, deqs),
			func(mr MemReader) error {
				var sum int64
				for i := 0; i < dictLines; i++ {
					sum += int64(mr.Read(dictWord(i)))
				}
				if sum != dictAdds {
					return fmt.Errorf("intruderscan: dict sum = %d, want %d", sum, dictAdds)
				}
				return nil
			},
			func(mr MemReader) error {
				var sum int64
				for c := range bufs {
					for i := 0; i < scanLines; i++ {
						sum += int64(mr.Read(bufs[c].WordAddr(i, 0)))
					}
				}
				if sum != scanAdds {
					return fmt.Errorf("intruderscan: buffer sum = %d, want %d", sum, scanAdds)
				}
				return nil
			},
		),
	}
}
