package workload

import "suvtm/internal/mem"

func init() { Register("yada", GenYada) }

// GenYada models STAMP yada (-a20 -i 633.2): Delaunay mesh refinement.
// Each transaction retriangulates the cavity around a bad triangle —
// coarse transactions (Table IV: ~6.8K instructions) whose cavities
// cluster around the same poor-quality areas of the shared mesh
// (Zipf-skewed), so concurrent refinements collide often. Every fourth
// refinement triggers a cascade whose write-set spans hundreds of lines,
// contributing the redirect-table and cache overflows of Table V.
func GenYada(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		meshLines   = 4096
		txPerThread = 24
		normalReads = 40
		normalWrite = 30
		cascadeWr   = 520
	)
	mesh := NewRegion(alloc, meshLines)
	zipfM := NewZipf(meshLines, 0.7)

	txs := cfg.scaled(txPerThread)
	programs := make([]Program, cfg.Cores)
	var adds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*41 + 809)
		b := NewBuilder()
		for t := 0; t < txs; t++ {
			b.Compute(500) // pop a bad triangle from the private heap
			writes := normalWrite
			if t%4 == 3 {
				writes = cascadeWr // refinement cascade
			}
			b.Begin(0)
			for k := 0; k < normalReads; k++ {
				b.Load(1, mesh.WordAddr(zipfM.Sample(rng), k%8))
				if k%8 == 7 {
					b.Compute(80) // in-circle tests
				}
			}
			b.Compute(900)
			for k := 0; k < writes; k++ {
				idx := zipfM.Sample(rng)
				rmwAdd(b, mesh.WordAddr(idx, (idx*11+k)%8), 1)
				if k%16 == 15 {
					b.Compute(50)
				}
			}
			b.Commit()
			adds += int64(writes)
			b.Compute(300)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	return &App{
		Name:           "yada",
		HighContention: true,
		InputDesc:      "-a20 -i 633.2",
		MeanTxLen:      6800,
		Programs:       programs,
		Check:          checkRegionSum("yada", mesh, 8, adds),
	}
}
