package workload

import (
	"fmt"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

func init() { Register("sessionstore", GenSessionStore) }

// GenSessionStore models an in-memory session store fronting a shared
// catalog: each core services a stream of requests against its own
// session table — an L1-resident private region it reads, computes over
// and updates in place — and only rarely opens a transaction to bump a
// counter in the shared, Zipf-skewed catalog. The request loop is the
// simulator's best case for long core-local instruction chains (every
// steady-state access is an L1 hit on a previously written private
// word), which makes this the steady-state workload of the parallel
// window engine's throughput benchmark; the shared-catalog transactions
// keep the invariant check end-to-end transactional.
func GenSessionStore(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		sessionLines = 256 // 16 KB per core: half the 32 KB L1, 2 ways of each set
		catalogLines = 64
		txEvery      = 211 // requests per shared-catalog transaction (prime: no beat with the session stride)
	)
	catalog := NewZipf(catalogLines, 1.2)
	shared := NewRegion(alloc, catalogLines)
	sessions := make([]Region, cfg.Cores)
	for c := range sessions {
		sessions[c] = NewRegion(alloc, sessionLines)
		for i := 0; i < sessionLines; i++ {
			m.Write(sessions[c].WordAddr(i, 0), 0)
		}
	}

	requests := cfg.scaled(1200)
	programs := make([]Program, cfg.Cores)
	var privAdds, txAdds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*31 + 1009)
		b := NewBuilder()
		b.Reserve(sessionLines*3 + requests*25 + (requests/txEvery+2)*6 + 1)
		// Prime the session table: one update per line pulls it into the
		// L1 exclusively, so the request loop below runs entirely on
		// Modified hits.
		for i := 0; i < sessionLines; i++ {
			rmwAdd(b, sessions[c].WordAddr(i, 0), 1)
			privAdds++
		}
		for r := 0; r < requests; r++ {
			// Parse/route the request, look up the session, touch a few
			// neighbors (LRU bookkeeping), update the session record.
			b.Compute(8)
			s := rng.Intn(sessionLines)
			b.Load(1, sessions[c].WordAddr(s, 0))
			b.AddReg(2, 1)
			b.Load(1, sessions[c].WordAddr((s+7)%sessionLines, 0))
			b.AddReg(2, 1)
			// Fold the loaded fields through the record update's register
			// work at instruction grain — checksum, touch counter, LRU
			// stamp arithmetic. A request-servicing loop spends most of its
			// instructions here, between the memory touches, and modeling
			// them as individual ops (rather than one coarse Compute event)
			// is what an instruction-grain execution-driven trace looks like.
			b.LoadImm(3, sim.Word(r))
			for k := 0; k < 7; k++ {
				b.AddReg(3, 1)
				b.AddImm(3, int64(2*k+1))
			}
			b.AddReg(2, 3)
			b.Compute(6)
			rmwAdd(b, sessions[c].WordAddr(s, 0), 1)
			privAdds++
			if r%txEvery == txEvery-1 || r == requests-1 {
				// Rare shared-catalog update: a short transaction against
				// the Zipf-popular entries (the final request always issues
				// one so scaled-down test runs stay transactional).
				b.Begin(0)
				b.Compute(10)
				rmwAdd(b, shared.WordAddr(catalog.Sample(rng), 0), 1)
				b.Commit()
				txAdds++
			}
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	return &App{
		Name:      "sessionstore",
		InputDesc: fmt.Sprintf("-s%d -r%d -t%d", sessionLines, requests, txEvery),
		MeanTxLen: 7,
		Programs:  programs,
		Check: combineChecks(
			checkRegionSum("sessionstore/catalog", shared, 1, txAdds),
			func(mr MemReader) error {
				var sum int64
				for c := range sessions {
					for i := 0; i < sessionLines; i++ {
						sum += int64(mr.Read(sessions[c].WordAddr(i, 0)))
					}
				}
				if sum != privAdds {
					return fmt.Errorf("sessionstore: session sum = %d, want %d", sum, privAdds)
				}
				return nil
			},
		),
	}
}
