package workload

import "suvtm/internal/mem"

func init() { Register("intruder", GenIntruder) }

// GenIntruder models STAMP intruder (-a10 -l4 -n2038 -s1): network
// intrusion detection. Every iteration dequeues a packet from a single
// shared work queue (one hot line touched by every thread — the classic
// high-contention point) and then reassembles the flow in a shared
// dictionary with Zipf-skewed buckets. Transactions are short
// (Table IV: ~237 instructions) but abort often.
func GenIntruder(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		dictLines  = 256
		flowLines  = 512
		iterations = 150
	)
	queue := NewRegion(alloc, 1) // head/tail counters: the hot line
	dict := NewRegion(alloc, dictLines)
	flows := NewRegion(alloc, flowLines)
	zipfD := NewZipf(dictLines, 0.6)

	iters := cfg.scaled(iterations)
	programs := make([]Program, cfg.Cores)
	var deqs, dictAdds, flowAdds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*19 + 307)
		b := NewBuilder()
		for t := 0; t < iters; t++ {
			// getPacket: pop from the shared queue (single hot word).
			b.Begin(0)
			rmwAdd(b, queue.WordAddr(0, 0), 1)
			fl := rng.Intn(flowLines)
			rmwAdd(b, flows.WordAddr(fl, fl%8), 1)
			b.Commit()
			deqs++
			flowAdds++
			b.Compute(60) // decode the fragment (non-transactional)
			// insert reassembled flow into the detector dictionary.
			b.Begin(1)
			b.Compute(40)
			for k := 0; k < 5; k++ {
				idx := zipfD.Sample(rng)
				rmwAdd(b, dict.WordAddr(idx, (idx+k)%8), 1)
			}
			b.Commit()
			dictAdds += 5
			b.Compute(30)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	return &App{
		Name:           "intruder",
		HighContention: true,
		InputDesc:      "-a10 -l4 -n2038 -s1",
		MeanTxLen:      237,
		Programs:       programs,
		Check: combineChecks(
			checkRegionSum("intruder/queue", queue, 1, deqs),
			checkRegionSum("intruder/dict", dict, 8, dictAdds),
			checkRegionSum("intruder/flows", flows, 8, flowAdds),
		),
	}
}
