package workload

import (
	"fmt"

	"suvtm/internal/mem"
)

func init() {
	Register("counter", GenCounter)
	Register("bank", GenBank)
}

// GenCounter is the smallest possible high-contention workload: every
// core transactionally increments the same shared counter word. The final
// counter value must equal cores x increments regardless of scheme —
// the canonical atomicity smoke test.
func GenCounter(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	shared := NewRegion(alloc, 1)
	incs := cfg.scaled(200)
	addr := shared.WordAddr(0, 0)

	programs := make([]Program, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		b := NewBuilder()
		for i := 0; i < incs; i++ {
			b.Begin(0)
			rmwAdd(b, addr, 1)
			b.Commit()
			b.Compute(10)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	want := int64(cfg.Cores * incs)
	return &App{
		Name:      "counter",
		InputDesc: fmt.Sprintf("-c%d -i%d", cfg.Cores, incs),
		MeanTxLen: 4,
		Programs:  programs,
		Check: func(m MemReader) error {
			got := int64(m.Read(addr))
			if got != want {
				return fmt.Errorf("counter: value = %d, want %d", got, want)
			}
			return nil
		},
		HighContention: true,
	}
}

// GenBank models transactional money transfers between accounts: each
// transaction moves a random amount between two random accounts. The
// total balance is invariant under serializable execution, and any
// version-management bug (lost undo, partially visible redo) breaks it.
func GenBank(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const accounts = 64
	const initial = 1000
	region := NewRegion(alloc, accounts) // one account per line, word 0
	for i := 0; i < accounts; i++ {
		m.Write(region.WordAddr(i, 0), initial)
	}
	transfers := cfg.scaled(150)

	programs := make([]Program, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c))
		b := NewBuilder()
		for i := 0; i < transfers; i++ {
			from := rng.Intn(accounts)
			to := rng.Intn(accounts - 1)
			if to >= from {
				to++
			}
			amount := int64(rng.Range(1, 20))
			b.Begin(0)
			rmwAdd(b, region.WordAddr(from, 0), -amount)
			b.Compute(5)
			rmwAdd(b, region.WordAddr(to, 0), amount)
			b.Commit()
			b.Compute(20)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	want := int64(accounts * initial)
	return &App{
		Name:           "bank",
		InputDesc:      fmt.Sprintf("-a%d -t%d", accounts, transfers),
		MeanTxLen:      12,
		Programs:       programs,
		Check:          checkRegionSum("bank", region, 1, want),
		HighContention: true,
	}
}

// GenPrivate builds a workload with no sharing at all: each core updates
// only its own region. Useful as a zero-conflict baseline in tests — no
// scheme should ever abort it.
func GenPrivate(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	perCore := 32
	txs := cfg.scaled(100)
	regions := make([]Region, cfg.Cores)
	for c := range regions {
		regions[c] = NewRegion(alloc, perCore)
	}
	programs := make([]Program, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c) + 77)
		b := NewBuilder()
		for i := 0; i < txs; i++ {
			b.Begin(0)
			for k := 0; k < 4; k++ {
				rmwAdd(b, regions[c].WordAddr(rng.Intn(perCore), 0), 1)
			}
			b.Commit()
			b.Compute(15)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	var checks []func(MemReader) error
	for c := 0; c < cfg.Cores; c++ {
		checks = append(checks, checkRegionSum("private", regions[c], 1, int64(txs*4)))
	}
	return &App{
		Name:      "private",
		InputDesc: fmt.Sprintf("-r%d -t%d", perCore, txs),
		MeanTxLen: 14,
		Programs:  programs,
		Check:     combineChecks(checks...),
	}
}

func init() { Register("private", GenPrivate) }
