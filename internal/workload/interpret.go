package workload

import (
	"fmt"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// Interpret executes a single program sequentially against memory — the
// functional reference semantics of the trace language, with no timing,
// no conflicts and no aborts (a single thread's transactions always
// commit). Differential tests compare each HTM scheme's single-core
// architectural memory against this oracle.
func Interpret(p Program, m *mem.Memory) error {
	var regs [NumRegs]sim.Word
	depth := 0
	for i := 0; i < len(p.Ops); i++ {
		op := p.Ops[i]
		switch op.Kind {
		case OpCompute:
		case OpLoad:
			regs[op.Reg] = m.Read(op.Addr)
		case OpStore:
			m.Write(op.Addr, regs[op.Reg])
		case OpStoreImm:
			m.Write(op.Addr, op.Val)
		case OpLoadImm:
			regs[op.Reg] = op.Val
		case OpAddImm:
			regs[op.Reg] += op.Val
		case OpAddReg:
			regs[op.Reg] += regs[op.Reg2]
		case OpBegin:
			depth++
		case OpCommit:
			depth--
			if depth < 0 {
				return fmt.Errorf("workload: op %d: commit without begin", i)
			}
		case OpBarrier:
			if depth != 0 {
				return fmt.Errorf("workload: op %d: barrier inside transaction", i)
			}
		case OpSuspend, OpResume:
			// Scheduling has no functional effect.
		case OpCommitOpen:
			depth--
			if depth < 0 {
				return fmt.Errorf("workload: op %d: open commit without begin", i)
			}
			// A sequential execution never aborts, so the compensation
			// block is skipped.
			i += int(op.N)
		default:
			return fmt.Errorf("workload: op %d: unknown kind %d", i, op.Kind)
		}
	}
	if depth != 0 {
		return fmt.Errorf("workload: unbalanced transactions at end of program")
	}
	return nil
}
