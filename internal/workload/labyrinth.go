package workload

import "suvtm/internal/mem"

func init() { Register("labyrinth", GenLabyrinth) }

// GenLabyrinth models STAMP labyrinth (-i random-x32-y32-z3-n64): Lee
// path routing over a shared 3-D grid. Each transaction privately copies
// a grid neighbourhood, expands a route and writes the path back — the
// coarsest transactions in STAMP (Table IV: ~317K instructions) with
// write-sets of hundreds of contiguous lines that overflow both the L1
// data cache and, at full size, the 512-entry redirect table (Table V).
// Route endpoints are Zipf-skewed so concurrent routes overlap, making
// the workload both coarse-grained and high-contention.
func GenLabyrinth(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		gridLines   = 3072 // 32x32x3 grid plus routing metadata
		segments    = 24   // candidate route neighbourhoods
		segLines    = 300  // lines written back by a typical route
		cascadeWr   = 700  // long reroute: overflows cache and table
		readLines   = 200
		txPerThread = 6
	)
	grid := NewRegion(alloc, gridLines)
	zipfSeg := NewZipf(segments, 0.9)

	txs := cfg.scaled(txPerThread)
	programs := make([]Program, cfg.Cores)
	var adds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*29 + 503)
		b := NewBuilder()
		for t := 0; t < txs; t++ {
			b.Compute(800) // pick work from the route list
			seg := zipfSeg.Sample(rng)
			base := seg * (gridLines / segments)
			writes := segLines
			if t%3 == 2 {
				writes = cascadeWr // long reroute across many segments
			}
			b.Begin(0)
			// Copy the neighbourhood (transactional reads).
			for k := 0; k < readLines; k++ {
				b.Load(1, grid.WordAddr(base+k, k%8))
				if k%16 == 15 {
					b.Compute(30)
				}
			}
			b.Compute(1500) // expansion (private compute)
			// Write the route back (huge contiguous write-set).
			for k := 0; k < writes; k++ {
				idx := base + k
				rmwAdd(b, grid.WordAddr(idx, (idx*5+k)%8), 1)
				if k%32 == 31 {
					b.Compute(40)
				}
			}
			b.Commit()
			adds += int64(writes)
			b.Compute(500)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	return &App{
		Name:           "labyrinth",
		HighContention: true,
		InputDesc:      "-i random-x32-y32-z3-n64.txt",
		MeanTxLen:      317000,
		Programs:       programs,
		Check:          checkRegionSum("labyrinth", grid, 8, adds),
	}
}
