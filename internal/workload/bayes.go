package workload

import "suvtm/internal/mem"

func init() { Register("bayes", GenBayes) }

// GenBayes models STAMP bayes (-v32 -r1024 -n2 -p20 -s0 -i2 -e2):
// Bayesian-network structure learning. Transactions are very coarse
// (Table IV: ~43K instructions) and rewrite large parts of a shared
// adjacency/score structure, so write-sets are in the hundreds of lines,
// overlap heavily between threads (high contention) and periodically
// overflow the L1 data cache (Table V). A third of the transactions are
// "subtree relearn" cascades with write-sets large enough to stress even
// the 512-entry redirect table.
func GenBayes(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		adjLines    = 1024 // shared adjacency matrix + score cache
		normalReads = 80
		normalWrite = 120
		cascadeWr   = 560
		txPerThread = 8
	)
	adj := NewRegion(alloc, adjLines)
	private := make([]Region, cfg.Cores)
	for c := range private {
		private[c] = NewRegion(alloc, 64)
	}
	zipfR := NewZipf(adjLines, 0.5)

	programs := make([]Program, cfg.Cores)
	txs := cfg.scaled(txPerThread)
	var totalAdds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*13 + 101)
		b := NewBuilder()
		for t := 0; t < txs; t++ {
			// Score recomputation over private scratch (non-transactional).
			for k := 0; k < 8; k++ {
				b.Load(1, private[c].WordAddr(rng.Intn(64), k%8))
			}
			b.Compute(400)

			writes := normalWrite
			if t%3 == 2 {
				writes = cascadeWr // subtree relearn: huge write-set
			}
			b.Begin(0)
			for k := 0; k < normalReads; k++ {
				b.Load(1, adj.WordAddr(zipfR.Sample(rng), k%8))
				if k%10 == 9 {
					b.Compute(40)
				}
			}
			for k := 0; k < writes; k++ {
				idx := zipfR.Sample(rng)
				rmwAdd(b, adj.WordAddr(idx, (idx*7+k)%8), 1)
				if k%20 == 19 {
					b.Compute(60)
				}
			}
			b.Commit()
			totalAdds += int64(writes)
			b.Compute(600)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	return &App{
		Name:           "bayes",
		HighContention: true,
		InputDesc:      "-v32 -r1024 -n2 -p20 -s0 -i2 -e2",
		MeanTxLen:      43000,
		Programs:       programs,
		Check:          checkRegionSum("bayes", adj, 8, totalAdds),
	}
}
