package workload

import (
	"fmt"
	"sort"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// MemReader is the architectural view of simulated memory an invariant
// check reads: the machine resolves committed SUV redirects, so a check
// always sees the value the program would load at an address.
type MemReader interface {
	Read(addr sim.Addr) sim.Word
}

// App is a generated transactional application: one program per core
// plus metadata and an end-of-run invariant check. Because a core retries
// each transaction until it commits, generators know exactly how many
// transactional updates will be applied, so Check can verify
// serializability (every committed update visible exactly once, no
// aborted update visible) on the final memory image.
type App struct {
	Name           string
	HighContention bool
	InputDesc      string // Table IV input-parameters analogue
	MeanTxLen      int    // Table IV per-transaction instruction count analogue
	Programs       []Program
	Check          func(m MemReader) error
}

// TotalOps returns the total number of trace ops across all programs.
func (a *App) TotalOps() int {
	n := 0
	for _, p := range a.Programs {
		n += len(p.Ops)
	}
	return n
}

// TotalTx returns the number of OpBegin ops across all programs (the
// number of transactions that must eventually commit).
func (a *App) TotalTx() int {
	n := 0
	for _, p := range a.Programs {
		for _, op := range p.Ops {
			if op.Kind == OpBegin {
				n++
			}
		}
	}
	return n
}

// GenConfig parameterizes a generator run.
type GenConfig struct {
	Cores int
	Seed  uint64
	// Scale multiplies transaction counts (and, for the coarsest apps,
	// lengths); 1.0 is the benchmark size, tests use smaller values.
	Scale float64
}

// scaled applies the scale factor with a floor of 1.
func (c GenConfig) scaled(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n)*s + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

func (c GenConfig) rng(salt uint64) *sim.RNG {
	return sim.NewRNG(c.Seed*0x9e3779b97f4a7c15 + salt + 1)
}

// GenFunc builds an App, allocating its data structures from alloc and
// initializing values in m.
type GenFunc func(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App

var registry = map[string]GenFunc{}

// Register adds a generator under name; it panics on duplicates.
func Register(name string, fn GenFunc) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate generator " + name)
	}
	registry[name] = fn
}

// Get returns the generator registered under name.
func Get(name string) (GenFunc, error) {
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q", name)
	}
	return fn, nil
}

// Names returns all registered generator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	//suv:orderinsensitive names are collected then sorted before any use
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StampApps lists the eight STAMP-analogue applications in the paper's
// Table IV order.
var StampApps = []string{
	"bayes", "genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada",
}

// HighContentionApps lists the five high-contention, coarse-grained
// applications the paper's headline numbers single out.
var HighContentionApps = []string{"bayes", "genome", "intruder", "labyrinth", "yada"}

// IsHighContention reports whether name is one of the high-contention five.
func IsHighContention(name string) bool {
	for _, n := range HighContentionApps {
		if n == name {
			return true
		}
	}
	return false
}

// rmwAdd emits the canonical transactional read-modify-write used by the
// generators' invariants: load word, add delta, store back. Concurrent
// rmwAdds to the same word must linearize under a correct HTM, so the
// final sum equals the number of committed adds.
func rmwAdd(b *Builder, addr sim.Addr, delta int64) {
	b.Load(0, addr)
	b.AddImm(0, delta)
	b.Store(addr, 0)
}

// checkRegionSum returns a Check verifying that the words of region sum
// to want (each generator arranges all transactional adds to land in
// region words with known totals).
func checkRegionSum(name string, region Region, words int, want int64) func(MemReader) error {
	return func(m MemReader) error {
		var sum int64
		for i := 0; i < region.Lines; i++ {
			for w := 0; w < words; w++ {
				sum += int64(m.Read(region.WordAddr(i, w)))
			}
		}
		if sum != want {
			return fmt.Errorf("%s: region sum = %d, want %d (serializability violated)", name, sum, want)
		}
		return nil
	}
}

// combineChecks runs each check in order, returning the first failure.
func combineChecks(checks ...func(MemReader) error) func(MemReader) error {
	return func(m MemReader) error {
		for _, c := range checks {
			if c == nil {
				continue
			}
			if err := c(m); err != nil {
				return err
			}
		}
		return nil
	}
}
