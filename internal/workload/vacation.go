package workload

import "suvtm/internal/mem"

func init() {
	Register("vacation", GenVacation)
	Register("vacation-high", GenVacationHigh)
}

// GenVacation models STAMP vacation (-n4 -q60 -u90 -r16384 -t4096): a
// travel reservation system. Each client transaction walks the
// reservation trees (many reads over a 16K-record table) and updates a
// handful of records; the huge key space keeps contention low while
// transactions stay medium-grained (Table IV: ~2.1K instructions). This
// is STAMP's "low" parameterization, the one the paper's Table IV uses.
func GenVacation(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	return genVacation(cfg, alloc, m, "vacation", 16384, 4, false)
}

// GenVacationHigh models STAMP vacation's "high" parameterization
// (-n4 -q90 -u98 -r1048576 -t4194304 scaled): clients query a much
// narrower slice of the tables with a higher update fraction, so
// reservations collide.
func GenVacationHigh(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	return genVacation(cfg, alloc, m, "vacation-high", 1024, 8, true)
}

func genVacation(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory, name string, tableLines, updates int, high bool) *App {
	const (
		txPerThread = 50
		treeReads   = 20
	)
	tables := NewRegion(alloc, tableLines)

	txs := cfg.scaled(txPerThread)
	programs := make([]Program, cfg.Cores)
	var adds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*37 + 701)
		b := NewBuilder()
		for t := 0; t < txs; t++ {
			b.Compute(300) // build the client request
			b.Begin(0)
			for k := 0; k < treeReads; k++ {
				b.Load(1, tables.WordAddr(rng.Intn(tableLines), k%8))
				if k%4 == 3 {
					b.Compute(60) // comparisons along the tree path
				}
			}
			b.Compute(400)
			for k := 0; k < updates; k++ {
				idx := rng.Intn(tableLines)
				rmwAdd(b, tables.WordAddr(idx, (idx*3+k)%8), 1)
			}
			b.Commit()
			adds += int64(updates)
			b.Compute(200)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	input := "-n4 -q60 -u90 -r16384 -t4096"
	if high {
		input = "-n4 -q90 -u98 (scaled)"
	}
	return &App{
		Name:           name,
		InputDesc:      input,
		MeanTxLen:      2100,
		Programs:       programs,
		HighContention: high,
		Check:          checkRegionSum(name, tables, 8, adds),
	}
}
