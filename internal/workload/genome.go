package workload

import "suvtm/internal/mem"

func init() { Register("genome", GenGenome) }

// GenGenome models STAMP genome (-g256 -s16 -n16384): gene sequencing in
// two barrier-separated phases. Phase 1 deduplicates DNA segments by
// inserting them into a shared hash set — duplicate segments hash to the
// same buckets, so the Zipf-skewed bucket choice makes the phase
// high-contention. Phase 2 string-matches segments against a larger,
// mostly-uniform overlap table with lower contention. Transactions are
// medium-grained (Table IV: ~1.7K instructions).
func GenGenome(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	const (
		buckets     = 512
		overlap     = 2048
		insertTxPer = 60
		matchTxPer  = 60
	)
	hash := NewRegion(alloc, buckets)
	table := NewRegion(alloc, overlap)
	zipfB := NewZipf(buckets, 0.8)

	inserts := cfg.scaled(insertTxPer)
	matches := cfg.scaled(matchTxPer)
	programs := make([]Program, cfg.Cores)
	var hashAdds, tableAdds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*17 + 211)
		b := NewBuilder()
		// Phase 1: segment deduplication into the shared hash set.
		for t := 0; t < inserts; t++ {
			b.Compute(200) // hash the segment (non-transactional)
			b.Begin(0)
			b.Compute(300)
			for k := 0; k < 4; k++ {
				idx := zipfB.Sample(rng)
				b.Load(1, hash.WordAddr(idx, k%8)) // probe chain
				rmwAdd(b, hash.WordAddr(idx, (idx+k)%8), 1)
			}
			b.Commit()
			hashAdds += 4
			b.Compute(150)
		}
		b.Barrier(0)
		// Phase 2: overlap matching over the larger table.
		for t := 0; t < matches; t++ {
			b.Compute(250)
			b.Begin(1)
			b.Compute(400)
			for k := 0; k < 6; k++ {
				b.Load(1, table.WordAddr(rng.Intn(overlap), k%8))
			}
			for k := 0; k < 2; k++ {
				idx := rng.Intn(overlap)
				rmwAdd(b, table.WordAddr(idx, (idx*3+k)%8), 1)
			}
			b.Commit()
			tableAdds += 2
			b.Compute(100)
		}
		b.Barrier(1)
		programs[c] = b.Build()
	}
	return &App{
		Name:           "genome",
		HighContention: true,
		InputDesc:      "-g256 -s16 -n16384",
		MeanTxLen:      1700,
		Programs:       programs,
		Check: combineChecks(
			checkRegionSum("genome/hash", hash, 8, hashAdds),
			checkRegionSum("genome/table", table, 8, tableAdds),
		),
	}
}
