package workload

import (
	"testing"
	"testing/quick"

	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

func genApp(t *testing.T, name string, cores int, scale float64) (*App, *mem.Memory) {
	t.Helper()
	gen, err := Get(name)
	if err != nil {
		t.Fatalf("Get(%q): %v", name, err)
	}
	memory := mem.NewMemory()
	alloc := mem.NewAllocator(0x100000, 1<<33)
	return gen(GenConfig{Cores: cores, Seed: 1, Scale: scale}, alloc, memory), memory
}

func TestRegistryComplete(t *testing.T) {
	for _, name := range StampApps {
		if _, err := Get(name); err != nil {
			t.Errorf("STAMP app %q not registered: %v", name, err)
		}
	}
	if _, err := Get("no-such-app"); err == nil {
		t.Error("unknown app did not error")
	}
	names := Names()
	if len(names) < len(StampApps)+3 {
		t.Errorf("registry too small: %v", names)
	}
}

func TestHighContentionFive(t *testing.T) {
	want := map[string]bool{"bayes": true, "genome": true, "intruder": true, "labyrinth": true, "yada": true}
	for _, name := range StampApps {
		if IsHighContention(name) != want[name] {
			t.Errorf("IsHighContention(%q) = %v", name, IsHighContention(name))
		}
	}
	for _, name := range StampApps {
		app, _ := genApp(t, name, 2, 0.05)
		if app.HighContention != want[name] {
			t.Errorf("%s metadata HighContention = %v", name, app.HighContention)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range StampApps {
		a, _ := genApp(t, name, 4, 0.1)
		b, _ := genApp(t, name, 4, 0.1)
		if len(a.Programs) != len(b.Programs) {
			t.Fatalf("%s: program counts differ", name)
		}
		for c := range a.Programs {
			if len(a.Programs[c].Ops) != len(b.Programs[c].Ops) {
				t.Fatalf("%s core %d: op counts differ", name, c)
			}
			for i := range a.Programs[c].Ops {
				if a.Programs[c].Ops[i] != b.Programs[c].Ops[i] {
					t.Fatalf("%s core %d op %d differs", name, c, i)
				}
			}
		}
	}
}

func TestGeneratorsWellFormed(t *testing.T) {
	for _, name := range Names() {
		app, _ := genApp(t, name, 4, 0.1)
		if len(app.Programs) != 4 {
			t.Errorf("%s: %d programs for 4 cores", name, len(app.Programs))
		}
		if app.TotalTx() == 0 {
			t.Errorf("%s: no transactions", name)
		}
		for c, p := range app.Programs {
			depth := 0
			barriers := []uint32{}
			for _, op := range p.Ops {
				switch op.Kind {
				case OpBegin:
					depth++
				case OpCommit:
					depth--
					if depth < 0 {
						t.Fatalf("%s core %d: commit without begin", name, c)
					}
				case OpBarrier:
					if depth != 0 {
						t.Fatalf("%s core %d: barrier inside transaction", name, c)
					}
					barriers = append(barriers, op.N)
				}
			}
			if depth != 0 {
				t.Fatalf("%s core %d: unbalanced transactions", name, c)
			}
			if len(barriers) == 0 {
				t.Errorf("%s core %d: no final barrier", name, c)
			}
		}
		// Every core must execute the same barrier sequence.
		ref := barrierSeq(app.Programs[0])
		for c := 1; c < len(app.Programs); c++ {
			got := barrierSeq(app.Programs[c])
			if len(got) != len(ref) {
				t.Fatalf("%s: core %d barrier count differs", name, c)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s: core %d barrier order differs", name, c)
				}
			}
		}
	}
}

func barrierSeq(p Program) []uint32 {
	var out []uint32
	for _, op := range p.Ops {
		if op.Kind == OpBarrier {
			out = append(out, op.N)
		}
	}
	return out
}

func TestScaleChangesSize(t *testing.T) {
	small, _ := genApp(t, "vacation", 4, 0.1)
	big, _ := genApp(t, "vacation", 4, 1.0)
	if small.TotalOps() >= big.TotalOps() {
		t.Fatalf("scale had no effect: %d vs %d ops", small.TotalOps(), big.TotalOps())
	}
}

func TestScaledFloor(t *testing.T) {
	cfg := GenConfig{Scale: 0.0001}
	if got := cfg.scaled(100); got != 1 {
		t.Fatalf("scaled floor = %d, want 1", got)
	}
	cfg = GenConfig{} // zero scale defaults to 1.0
	if got := cfg.scaled(100); got != 100 {
		t.Fatalf("default scale = %d, want 100", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := map[string]func(*Builder){
		"commit without begin": func(b *Builder) { b.Commit() },
		"barrier inside tx":    func(b *Builder) { b.Begin(0); b.Barrier(0) },
		"build with open tx":   func(b *Builder) { b.Begin(0); b.Build() },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f(NewBuilder())
		})
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.LoadImm(1, 5).Compute(10).Begin(3).Load(0, 0x40).AddImm(0, 2).Store(0x40, 0).Commit().Barrier(7)
	p := b.Build()
	kinds := []OpKind{OpLoadImm, OpCompute, OpBegin, OpLoad, OpAddImm, OpStore, OpCommit, OpBarrier}
	if len(p.Ops) != len(kinds) {
		t.Fatalf("ops = %d, want %d", len(p.Ops), len(kinds))
	}
	for i, k := range kinds {
		if p.Ops[i].Kind != k {
			t.Fatalf("op %d = %v, want kind %v", i, p.Ops[i], k)
		}
	}
	if p.Ops[2].N != 3 || p.Ops[7].N != 7 {
		t.Fatal("site/barrier ids lost")
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{
		{Kind: OpCompute, N: 5}, {Kind: OpLoad, Reg: 1, Addr: 0x40},
		{Kind: OpStore, Reg: 2, Addr: 0x80}, {Kind: OpStoreImm, Addr: 0xc0, Val: 9},
		{Kind: OpLoadImm, Reg: 3, Val: 4}, {Kind: OpAddImm, Reg: 0, Val: ^sim.Word(0)},
		{Kind: OpAddReg, Reg: 1, Reg2: 2}, {Kind: OpBegin, N: 1}, {Kind: OpCommit},
		{Kind: OpBarrier, N: 2},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Fatalf("empty String for %#v", op)
		}
	}
}

func TestRegionAddressing(t *testing.T) {
	alloc := mem.NewAllocator(0x1000, 1<<20)
	r := NewRegion(alloc, 4)
	if r.LineAddr(0) != r.Base {
		t.Fatal("LineAddr(0) != Base")
	}
	if r.LineAddr(4) != r.LineAddr(0) {
		t.Fatal("modulo wrap failed")
	}
	if r.LineAddr(-1) != r.LineAddr(3) {
		t.Fatal("negative index wrap failed")
	}
	if r.WordAddr(1, 3) != r.LineAddr(1)+24 {
		t.Fatal("WordAddr offset wrong")
	}
	if !r.Contains(r.LineAddr(3)) || r.Contains(r.Base+4*sim.LineBytes) {
		t.Fatal("Contains wrong")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	rng := sim.NewRNG(3)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(rng)]++
	}
	if counts[0] <= counts[50]*5 {
		t.Fatalf("zipf not skewed: head %d vs mid %d", counts[0], counts[50])
	}
	// Uniform when s = 0.
	u := NewZipf(10, 0)
	counts = make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[u.Sample(rng)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("uniform zipf bucket %d = %d", i, c)
		}
	}
}

// TestZipfInRange property-checks the sampler's domain.
func TestZipfInRange(t *testing.T) {
	f := func(n uint8, seed uint64) bool {
		domain := int(n%50) + 1
		z := NewZipf(domain, 0.8)
		rng := sim.NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := z.Sample(rng)
			if v < 0 || v >= domain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContentionVariantsRegistered(t *testing.T) {
	for _, name := range []string{"kmeans-high", "vacation-high"} {
		app, _ := genApp(t, name, 4, 0.1)
		if !app.HighContention {
			t.Errorf("%s not marked high-contention", name)
		}
		if app.TotalTx() == 0 {
			t.Errorf("%s generated no transactions", name)
		}
	}
	// The low variants keep the paper's Table IV classification.
	for _, name := range []string{"kmeans", "vacation"} {
		app, _ := genApp(t, name, 4, 0.1)
		if app.HighContention {
			t.Errorf("%s wrongly marked high-contention", name)
		}
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("counter", GenCounter)
}
