// Package workload defines the transactional instruction streams the
// simulated cores execute, and provides generators for the eight
// STAMP-analogue applications of Table IV plus micro-workloads used by
// tests and examples.
//
// Programs are tiny register-machine traces: loads and stores move 8-byte
// words between simulated memory and eight per-core registers, arithmetic
// ops combine registers, and Begin/Commit ops delimit transactions. On an
// abort the core's register checkpoint and program counter are restored
// to the matching Begin, so a transaction body re-executes exactly — the
// behaviour an execution-driven simulator needs for value-accurate
// version-management testing.
package workload

import (
	"fmt"

	"suvtm/internal/sim"
)

// NumRegs is the number of architectural registers per core covered by
// the register checkpoint.
const NumRegs = 8

// OpKind enumerates trace operations.
type OpKind uint8

const (
	// OpCompute models N cycles of non-memory work.
	OpCompute OpKind = iota
	// OpLoad loads the word at Addr into register Reg.
	OpLoad
	// OpStore stores register Reg to the word at Addr.
	OpStore
	// OpStoreImm stores the immediate Val to the word at Addr.
	OpStoreImm
	// OpLoadImm sets register Reg to Val.
	OpLoadImm
	// OpAddImm adds Val (two's-complement) to register Reg.
	OpAddImm
	// OpAddReg adds register Reg2 into register Reg.
	OpAddReg
	// OpBegin starts a transaction. N is the static transaction site id
	// (used by DynTM's history-based selector).
	OpBegin
	// OpCommit ends the innermost transaction.
	OpCommit
	// OpBarrier waits until every core reaches barrier N.
	OpBarrier
	// OpSuspend deschedules the thread mid-transaction (Section IV-C):
	// the transaction's signatures stay in force — the summary-signature
	// mechanism adopted from LogTM-SE — while the core runs other
	// (non-transactional) work until OpResume. N is the context-switch
	// cost in cycles.
	OpSuspend
	// OpResume reschedules the suspended transaction.
	OpResume
	// OpCommitOpen commits the innermost transaction as an OPEN nested
	// transaction (Section IV-C): its effects publish immediately and its
	// isolation is released while the parent continues. The N ops that
	// follow are the registered compensating action — skipped in normal
	// flow, executed if the parent later aborts.
	OpCommitOpen
)

// Op is a single trace operation.
type Op struct {
	Kind OpKind
	Reg  uint8
	Reg2 uint8
	N    uint32
	Addr sim.Addr
	Val  sim.Word
}

// String renders an op for diagnostics.
func (o Op) String() string {
	switch o.Kind {
	case OpCompute:
		return fmt.Sprintf("compute %d", o.N)
	case OpLoad:
		return fmt.Sprintf("r%d = load [%#x]", o.Reg, o.Addr)
	case OpStore:
		return fmt.Sprintf("store [%#x] = r%d", o.Addr, o.Reg)
	case OpStoreImm:
		return fmt.Sprintf("store [%#x] = %d", o.Addr, o.Val)
	case OpLoadImm:
		return fmt.Sprintf("r%d = %d", o.Reg, o.Val)
	case OpAddImm:
		return fmt.Sprintf("r%d += %d", o.Reg, int64(o.Val))
	case OpAddReg:
		return fmt.Sprintf("r%d += r%d", o.Reg, o.Reg2)
	case OpBegin:
		return fmt.Sprintf("begin_transaction site=%d", o.N)
	case OpCommit:
		return "commit_transaction"
	case OpBarrier:
		return fmt.Sprintf("barrier %d", o.N)
	case OpSuspend:
		return fmt.Sprintf("suspend_thread cost=%d", o.N)
	case OpResume:
		return "resume_thread"
	case OpCommitOpen:
		return fmt.Sprintf("commit_open_transaction comp=%d", o.N)
	}
	return fmt.Sprintf("op(%d)", o.Kind)
}

// Program is the full instruction stream for one core.
type Program struct {
	Ops []Op
}

// Builder assembles a Program.
type Builder struct {
	ops   []Op
	depth int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Reserve pre-grows the op buffer for at least n more ops. Generators
// that know their program size up front use it to skip the append
// doublings — at benchmark scales the copies otherwise rival the cost
// of simulating the ops.
func (b *Builder) Reserve(n int) *Builder {
	if n > cap(b.ops)-len(b.ops) {
		grown := make([]Op, len(b.ops), len(b.ops)+n)
		copy(grown, b.ops)
		b.ops = grown
	}
	return b
}

// Compute appends n cycles of non-memory work (no-op for n == 0).
func (b *Builder) Compute(n uint32) *Builder {
	if n > 0 {
		b.ops = append(b.ops, Op{Kind: OpCompute, N: n})
	}
	return b
}

// Load appends a load of addr into reg.
func (b *Builder) Load(reg uint8, addr sim.Addr) *Builder {
	b.ops = append(b.ops, Op{Kind: OpLoad, Reg: reg, Addr: addr})
	return b
}

// Store appends a store of reg to addr.
func (b *Builder) Store(addr sim.Addr, reg uint8) *Builder {
	b.ops = append(b.ops, Op{Kind: OpStore, Reg: reg, Addr: addr})
	return b
}

// StoreImm appends a store of the immediate val to addr.
func (b *Builder) StoreImm(addr sim.Addr, val sim.Word) *Builder {
	b.ops = append(b.ops, Op{Kind: OpStoreImm, Addr: addr, Val: val})
	return b
}

// LoadImm appends reg = val.
func (b *Builder) LoadImm(reg uint8, val sim.Word) *Builder {
	b.ops = append(b.ops, Op{Kind: OpLoadImm, Reg: reg, Val: val})
	return b
}

// AddImm appends reg += delta.
func (b *Builder) AddImm(reg uint8, delta int64) *Builder {
	b.ops = append(b.ops, Op{Kind: OpAddImm, Reg: reg, Val: sim.Word(delta)})
	return b
}

// AddReg appends reg += reg2.
func (b *Builder) AddReg(reg, reg2 uint8) *Builder {
	b.ops = append(b.ops, Op{Kind: OpAddReg, Reg: reg, Reg2: reg2})
	return b
}

// Begin opens a transaction with the given static site id.
func (b *Builder) Begin(site uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: OpBegin, N: site})
	b.depth++
	return b
}

// Commit closes the innermost transaction.
func (b *Builder) Commit() *Builder {
	if b.depth == 0 {
		panic("workload: Commit without Begin")
	}
	b.ops = append(b.ops, Op{Kind: OpCommit})
	b.depth--
	return b
}

// Barrier appends a barrier with id.
func (b *Builder) Barrier(id uint32) *Builder {
	if b.depth != 0 {
		panic("workload: Barrier inside a transaction")
	}
	b.ops = append(b.ops, Op{Kind: OpBarrier, N: id})
	return b
}

// Suspend deschedules the thread mid-transaction; the ops until Resume
// model the other thread's (non-transactional) work on the same core.
func (b *Builder) Suspend(switchCost uint32) *Builder {
	if b.depth == 0 {
		panic("workload: Suspend outside a transaction")
	}
	b.ops = append(b.ops, Op{Kind: OpSuspend, N: switchCost})
	return b
}

// Resume reschedules the suspended transaction.
func (b *Builder) Resume(switchCost uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: OpResume, N: switchCost})
	return b
}

// CommitOpen commits the innermost transaction as an open nested
// transaction: its effects publish immediately. comp builds the
// compensating action the parent runs if it later aborts; the
// compensation may use loads, stores, arithmetic and compute, but not
// transactions or barriers.
func (b *Builder) CommitOpen(comp func(cb *Builder)) *Builder {
	if b.depth == 0 {
		panic("workload: CommitOpen without Begin")
	}
	cb := NewBuilder()
	if comp != nil {
		comp(cb)
	}
	for _, op := range cb.ops {
		//suv:nonexhaustive deliberate blacklist: data ops are legal in compensations, only control ops are rejected
		switch op.Kind {
		case OpBegin, OpCommit, OpCommitOpen, OpBarrier, OpSuspend, OpResume:
			panic("workload: compensation blocks may only contain straight-line ops")
		}
	}
	b.ops = append(b.ops, Op{Kind: OpCommitOpen, N: uint32(len(cb.ops))})
	b.ops = append(b.ops, cb.ops...)
	b.depth--
	return b
}

// Build finalizes the program. It panics on an unbalanced transaction.
func (b *Builder) Build() Program {
	if b.depth != 0 {
		panic("workload: Build with open transaction")
	}
	return Program{Ops: b.ops}
}

// Len returns the number of ops appended so far.
func (b *Builder) Len() int { return len(b.ops) }
