package workload

import (
	"math"
	"sort"

	"suvtm/internal/sim"
)

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. High-contention STAMP-analogue generators use it to skew
// accesses toward hot lines (shared queue heads, popular hash buckets,
// overlapping mesh cavities).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n items with exponent s. s == 0 yields a
// uniform distribution.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf over empty domain")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one index using rng.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }
