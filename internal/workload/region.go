package workload

import (
	"suvtm/internal/mem"
	"suvtm/internal/sim"
)

// Region is a contiguous run of cache lines in the simulated address
// space, used by generators to lay out shared data structures.
type Region struct {
	Base  sim.Addr
	Lines int
}

// NewRegion allocates a region of n lines.
func NewRegion(alloc *mem.Allocator, n int) Region {
	line := alloc.AllocLines(n)
	return Region{Base: sim.AddrOf(line), Lines: n}
}

// LineAddr returns the base address of the i-th line (i taken modulo the
// region size, so samplers can pass raw indices).
func (r Region) LineAddr(i int) sim.Addr {
	if r.Lines == 0 {
		panic("workload: empty region")
	}
	i %= r.Lines
	if i < 0 {
		i += r.Lines
	}
	return r.Base + sim.Addr(i)*sim.LineBytes
}

// WordAddr returns the address of word w (0..7) in the i-th line.
func (r Region) WordAddr(i, w int) sim.Addr {
	return r.LineAddr(i) + sim.Addr(w%sim.WordsPerLine)*8
}

// Line returns the line number of the i-th line.
func (r Region) Line(i int) sim.Line { return sim.LineOf(r.LineAddr(i)) }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr sim.Addr) bool {
	return addr >= r.Base && addr < r.Base+sim.Addr(r.Lines)*sim.LineBytes
}
