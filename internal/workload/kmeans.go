package workload

import "suvtm/internal/mem"

func init() {
	Register("kmeans", GenKmeans)
	Register("kmeans-high", GenKmeansHigh)
}

// GenKmeans models STAMP kmeans (-m40 -n40 -t0.05 -i random-n2048-d16-c16):
// K-means clustering. Distance computation over the (private) points is
// non-transactional; the only transactions are short center updates
// (Table IV: ~106 instructions) spread uniformly across 16 clusters, so
// contention is low. This is STAMP's "low" parameterization, the one the
// paper's Table IV uses.
func GenKmeans(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	return genKmeans(cfg, alloc, m, "kmeans", 16, false)
}

// GenKmeansHigh models STAMP kmeans's "high" parameterization
// (-m15 -n15): only a handful of clusters, so concurrent center updates
// collide far more often.
func GenKmeansHigh(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory) *App {
	return genKmeans(cfg, alloc, m, "kmeans-high", 4, true)
}

func genKmeans(cfg GenConfig, alloc *mem.Allocator, m *mem.Memory, name string, clusters int, high bool) *App {
	const (
		linesPerClus = 2 // 16 dims x 8B = 2 lines
		pointBatches = 200
	)
	centers := NewRegion(alloc, clusters*linesPerClus)
	points := make([]Region, cfg.Cores)
	for c := range points {
		points[c] = NewRegion(alloc, 128) // private slice of the input
	}

	batches := cfg.scaled(pointBatches)
	programs := make([]Program, cfg.Cores)
	var adds int64
	for c := 0; c < cfg.Cores; c++ {
		rng := cfg.rng(uint64(c)*23 + 401)
		b := NewBuilder()
		for t := 0; t < batches; t++ {
			// Assign step: read the point, compute distances (no tx).
			for k := 0; k < 4; k++ {
				b.Load(1, points[c].WordAddr(rng.Intn(128), k%8))
			}
			b.Compute(50)
			// Update step: accumulate into the chosen cluster's center.
			cl := rng.Intn(clusters)
			b.Begin(0)
			b.Compute(30)
			for k := 0; k < 3; k++ {
				idx := cl*linesPerClus + k%linesPerClus
				rmwAdd(b, centers.WordAddr(idx, (k*3)%8), 1)
			}
			b.Commit()
			adds += 3
			b.Compute(15)
		}
		b.Barrier(0)
		programs[c] = b.Build()
	}
	input := "-m40 -n40 -t0.05 -i random-n2048-d16-c16.txt"
	if high {
		input = "-m15 -n15 -t0.05 -i random-n2048-d16-c16.txt"
	}
	return &App{
		Name:           name,
		InputDesc:      input,
		MeanTxLen:      106,
		Programs:       programs,
		HighContention: high,
		Check:          checkRegionSum(name, centers, 8, adds),
	}
}
