package metrics

import (
	"encoding/json"
	"strings"
	"testing"

	"suvtm/internal/trace"
)

func TestChromeTraceSpans(t *testing.T) {
	ct := NewChromeTrace()
	// Core 0: abort then commit; core 1: left open at the end of the run.
	ct.Emit(trace.Event{Cycle: 10, Core: 0, Kind: trace.Begin, Info: 3})
	ct.Emit(trace.Event{Cycle: 25, Core: 0, Kind: trace.Abort, Info: 3})
	ct.Emit(trace.Event{Cycle: 40, Core: 0, Kind: trace.Begin, Info: 3})
	ct.Emit(trace.Event{Cycle: 55, Core: 0, Kind: trace.Commit, Info: 3})
	ct.Emit(trace.Event{Cycle: 50, Core: 1, Kind: trace.Begin, Info: 7})
	ct.Emit(trace.Event{Cycle: 52, Core: 1, Kind: trace.NACK, Line: 0x1000, Other: 0})
	ct.CloseOpen(90)

	if ct.Spans() != 3 {
		t.Fatalf("spans = %d, want 3 (abort + commit + unfinished)", ct.Spans())
	}

	var sb strings.Builder
	if err := ct.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	outcomes := map[string]int{}
	threads := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			outcomes[e.Args["outcome"].(string)]++
			if e.Dur <= 0 {
				t.Fatalf("span %q has non-positive duration %v", e.Name, e.Dur)
			}
		case "M":
			threads++
		}
	}
	if outcomes["abort"] != 1 || outcomes["commit"] != 1 || outcomes["unfinished"] != 1 {
		t.Fatalf("outcomes = %v", outcomes)
	}
	if threads != 2 {
		t.Fatalf("thread metadata records = %d, want 2", threads)
	}
}

func TestChromeTraceZeroWidthSpanIsVisible(t *testing.T) {
	ct := NewChromeTrace()
	ct.Emit(trace.Event{Cycle: 5, Core: 0, Kind: trace.Begin})
	ct.Emit(trace.Event{Cycle: 5, Core: 0, Kind: trace.Commit})
	var sb strings.Builder
	if err := ct.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"dur":1`) {
		t.Fatalf("zero-width span not widened: %s", sb.String())
	}
}

func TestChromeTraceCommitWithoutBeginIgnored(t *testing.T) {
	ct := NewChromeTrace()
	ct.Emit(trace.Event{Cycle: 5, Core: 0, Kind: trace.Commit})
	if ct.Spans() != 0 {
		t.Fatalf("spans = %d, want 0", ct.Spans())
	}
}

func TestChromeTraceCounterTrack(t *testing.T) {
	col := NewCollector(10)
	ct := NewChromeTrace()
	col.AttachChromeTrace(ct)
	v := 0.0
	col.Watch("aborts", Cumulative, func() float64 { return v })
	v = 4
	col.Tick(10)
	v = 6
	col.Finish(20)

	var sb strings.Builder
	if err := ct.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	var values []float64
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" && e.Name == "aborts" {
			values = append(values, e.Args["value"].(float64))
		}
	}
	if len(values) != 2 || values[0] != 4 || values[1] != 2 {
		t.Fatalf("counter samples = %v, want [4 2] (per-interval deltas)", values)
	}
}

// TestChromeTraceRemoteKillLine checks the killing line renders in the
// instant's args when the doom had a precise witness, and is omitted
// when it did not.
func TestChromeTraceRemoteKillLine(t *testing.T) {
	ct := NewChromeTrace()
	ct.Emit(trace.Event{Cycle: 5, Core: 0, Kind: trace.RemoteKill, Other: 3, Line: 0x4f})
	ct.Emit(trace.Event{Cycle: 6, Core: 1, Kind: trace.RemoteKill, Other: 3, Line: trace.NoLine})
	var sb strings.Builder
	if err := ct.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e.Name != "remote-kill" {
			continue
		}
		line, hasLine := e.Args["line"]
		switch e.Tid {
		case 0:
			if !hasLine || line != "0x4f" {
				t.Errorf("witnessed kill args = %v, want line=0x4f", e.Args)
			}
		case 1:
			if hasLine {
				t.Errorf("unwitnessed kill args = %v, want no line", e.Args)
			}
		}
	}
}

func TestNilChromeTraceIsNoOp(t *testing.T) {
	var ct *ChromeTrace
	ct.Emit(trace.Event{Kind: trace.Begin})
	ct.CounterSample(1, "x", 2)
	ct.CloseOpen(10)
	if ct.Spans() != 0 || ct.Events() != 0 {
		t.Fatal("nil chrome trace returned data")
	}
	if err := ct.WriteJSON(&strings.Builder{}); err == nil {
		t.Fatal("nil chrome trace write succeeded")
	}
}
