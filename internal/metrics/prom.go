package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), the scrape-ready sibling of WriteJSON:
// cumulative probes become counters, level probes gauges, and each
// histogram a classic Prometheus histogram with cumulative `le` buckets
// plus `_sum` and `_count`. Snapshot metadata (app, scheme, cores,
// seed) is attached to every sample as labels, so a future suvd can
// serve many concurrent runs from one endpoint. Output is sorted by
// metric name — deterministic for a deterministic run.
func (s *Snapshot) WriteProm(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("metrics: nil snapshot")
	}
	bw := bufio.NewWriter(w)
	labels := promLabels(s.Meta)

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s%s %d\n", pn, labels, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s%s %s\n", pn, labels, promFloat(s.Gauges[name]))
	}

	for i := range s.Histograms {
		writePromHistogram(bw, &s.Histograms[i], s.Meta)
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram with cumulative le buckets.
func writePromHistogram(bw *bufio.Writer, h *HistogramSnapshot, meta map[string]string) {
	pn := promName(h.Name)
	fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
	if h.Unit != "" {
		fmt.Fprintf(bw, "# HELP %s value unit: %s\n", pn, h.Unit)
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		fmt.Fprintf(bw, "%s_bucket%s %d\n",
			pn, promLabelsWith(meta, "le", strconv.FormatUint(b.High, 10)), cum)
	}
	// The bucket list covers only observed ranges; +Inf carries the full
	// count per the exposition format's contract.
	fmt.Fprintf(bw, "%s_bucket%s %d\n", pn, promLabelsWith(meta, "le", "+Inf"), h.Count)
	fmt.Fprintf(bw, "%s_sum%s %d\n", pn, promLabels(meta), h.Sum)
	fmt.Fprintf(bw, "%s_count%s %d\n", pn, promLabels(meta), h.Count)
}

// promName converts an internal probe name ("tx.duration.site3") into a
// valid Prometheus metric name ("suv_tx_duration_site3").
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("suv_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabels renders the metadata as a sorted label set, or "" when
// there is none.
func promLabels(meta map[string]string) string {
	return promLabelsWith(meta, "", "")
}

// promLabelsWith renders the metadata labels plus one extra pair
// (skipped when extraKey is empty).
func promLabelsWith(meta map[string]string, extraKey, extraVal string) string {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", promName(k)[len("suv_"):], meta[k])
	}
	if extraKey != "" {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	}
	if sb.Len() == 0 {
		return ""
	}
	return "{" + sb.String() + "}"
}

// promFloat formats a float sample value (integers render without a
// decimal point, matching client_golang's behavior).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
