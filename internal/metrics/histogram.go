package metrics

import "math/bits"

// NumBuckets is the number of log₂ buckets: bucket 0 holds the value 0,
// bucket k (k ≥ 1) holds values in [2^(k-1), 2^k - 1], so every uint64
// lands in exactly one of the 65 buckets.
const NumBuckets = 65

// BucketOf returns the bucket index of v (bits.Len64: 0 for 0, else the
// position of the highest set bit plus one).
func BucketOf(v uint64) int { return bits.Len64(v) }

// BucketLow returns the smallest value in bucket b.
func BucketLow(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1 << uint(b-1)
}

// BucketHigh returns the largest value in bucket b.
func BucketHigh(b int) uint64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// Histogram is a log₂-bucketed histogram of uint64 samples (cycle
// latencies, set sizes, retry counts). Observe is allocation-free: a
// bit-scan plus four adds into a fixed array. A nil *Histogram is a
// valid no-op, so optional instrumentation needs no call-site checks.
type Histogram struct {
	name   string
	unit   string
	counts [NumBuckets]uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

// NewHistogram creates a standalone (unregistered) histogram; use
// Collector.NewHistogram to register one for snapshot export.
func NewHistogram(name, unit string) *Histogram {
	return &Histogram{name: name, unit: unit}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[BucketOf(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// high edge of the bucket in which the quantile sample falls, clamped to
// the observed maximum. Bucketed histograms resolve quantiles to a
// factor of two, which is enough to separate "hundreds of cycles" from
// "tens of thousands".
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for b := 0; b < NumBuckets; b++ {
		seen += h.counts[b]
		if seen > rank {
			hi := BucketHigh(b)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// BucketCount is one non-empty bucket of a histogram snapshot.
type BucketCount struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the exportable summary of a histogram.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Unit    string        `json:"unit,omitempty"`
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	Mean    float64       `json:"mean"`
	P50     uint64        `json:"p50"`
	P90     uint64        `json:"p90"`
	P99     uint64        `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram (zero-valued on a nil receiver).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Name: h.name, Unit: h.unit,
		Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
		Mean: h.Mean(),
		P50:  h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	for b := 0; b < NumBuckets; b++ {
		if h.counts[b] > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Low: BucketLow(b), High: BucketHigh(b), Count: h.counts[b]})
		}
	}
	return s
}
